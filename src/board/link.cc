#include "board/link.hh"

#include <algorithm>

#include "sim/domain.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace dpu::board {

namespace {

/** Stat cell prefix for the (src, dst) channel. */
std::string
chPrefix(unsigned s, unsigned d)
{
    return "ch" + std::to_string(s) + "to" + std::to_string(d);
}

} // namespace

LinkFabric::LinkFabric(unsigned n_dpus, const LinkParams &params)
    : n(n_dpus), p(params), queues(n), chans(std::size_t(n) * n),
      inbox(std::size_t(n) * n), handlers(n), unhandled(n),
      stats("link")
{
    sim_assert(n >= 1, "a board fabric needs at least one DPU");
    sim_assert(p.gbPerSec > 0, "link bandwidth must be positive");
    // Sends run in the source chip's execution domain; make sure the
    // cross-cutting planes are sized for it.
    sim::faultPlane().ensureDomains(n);
    sim::tracer().ensureDomains(n);
    stats.addFlushHook([this] { foldStats(); });
}

void
LinkFabric::attach(unsigned dpu, sim::EventQueue &q)
{
    sim_assert(dpu < n, "bad fabric endpoint %u", dpu);
    queues[dpu] = &q;
}

void
LinkFabric::onRpc(unsigned dst, RpcHandler handler)
{
    sim_assert(dst < n, "bad fabric endpoint %u", dst);
    handlers[dst] = std::move(handler);
}

sim::Tick
LinkFabric::serTicks(std::uint64_t bytes) const
{
    const double wire = double(std::max<std::uint64_t>(
        bytes, p.flitBytes));
    // ps per byte = 1000 / (GB/s); pure integer-in, integer-out so
    // the timing is a reproducible function of (bytes, params).
    return sim::Tick(wire * (1000.0 / p.gbPerSec) + 0.5);
}

sim::Tick
LinkFabric::transit(unsigned src, unsigned dst, std::uint64_t bytes,
                    bool &dropped, LinkTraffic cls)
{
    sim_assert(src < n && dst < n && src != dst,
               "bad fabric route %u -> %u", src, dst);
    sim_assert(queues[src], "DPU %u has no attached queue", src);
    // The whole decision happens on the source chip: its clock, its
    // channel row, its fault-domain stream. That keeps the outcome a
    // pure function of the send, whatever thread runs it.
    sim::DomainScope domain(src);
    Channel &c = chan(src, dst);
    const sim::Tick now = queues[src]->now();
    const sim::Tick ser = serTicks(bytes);
    const sim::Tick tx_start = std::max(now, c.nextFree);
    const sim::Tick tx_done = tx_start + ser;
    c.nextFree = tx_done;

    sim::Tick extra = 0;
    std::uint64_t mag = 0;
    sim::FaultPlane &fp = sim::faultPlane();
    const int unit = int(src * n + dst);
    if (fp.active() &&
        fp.fires(sim::FaultSite::LinkDelay, now, unit, &mag)) {
        extra = mag ? sim::Tick(mag) : p.hopLatency;
        ++c.delays;
    }
    dropped = fp.active() &&
              fp.fires(sim::FaultSite::LinkDrop, now, unit, &mag);

    // Account by fate, exclusively: a message is carried workload,
    // dropped (either class; the wire time is burned regardless),
    // or delivered migration traffic. The classes sum to the total
    // offered to the wire.
    if (dropped) {
        ++c.drops;
        c.dropBytes += bytes;
        c.dropTicks += ser;
    } else if (cls == LinkTraffic::Migration) {
        ++c.migMsgs;
        c.migBytes += bytes;
        c.migTicks += ser;
    } else {
        ++c.msgs;
        c.bytes += bytes;
        c.busyTicks += ser;
    }
    return tx_done + p.hopLatency + extra;
}

void
LinkFabric::sendRpc(unsigned src, unsigned dst, std::uint64_t payload)
{
    bool dropped = false;
    const sim::Tick arrive =
        transit(src, dst, 8, dropped, LinkTraffic::Workload);
    if (dropped)
        return; // lost in the fabric; sender-level recovery applies
    inbox[src * n + dst].push_back({arrive, payload, {}});
}

sim::Tick
LinkFabric::startBulk(unsigned src, unsigned dst,
                      std::uint64_t bytes, bool &dropped,
                      LinkTraffic cls)
{
    return transit(src, dst, bytes, dropped, cls);
}

void
LinkFabric::postDelivery(unsigned src, unsigned dst, sim::Tick when,
                         std::function<void()> fn)
{
    sim_assert(src < n && dst < n, "bad fabric route %u -> %u", src,
               dst);
    sim_assert(fn, "bulk delivery needs an action");
    inbox[src * n + dst].push_back({when, 0, std::move(fn)});
}

void
LinkFabric::drainInbound(unsigned dst)
{
    sim_assert(dst < n, "bad fabric endpoint %u", dst);
    sim::EventQueue *q = queues[dst];
    for (unsigned src = 0; src < n; ++src) {
        std::vector<Pending> &mb = inbox[src * n + dst];
        if (mb.empty())
            continue;
        sim_assert(q, "DPU %u has no attached queue", dst);
        for (Pending &m : mb) {
            sim_assert(m.when >= q->now(),
                       "late delivery %u -> %u (lookahead beyond "
                       "the hop latency?)",
                       src, dst);
            if (m.fn) {
                q->schedule(m.when, std::move(m.fn),
                            sim::EvTag::Link);
            } else {
                q->schedule(m.when,
                            [this, src, dst,
                             payload = m.payload] {
                                if (handlers[dst])
                                    handlers[dst](src, payload);
                                else
                                    ++unhandled[dst];
                            },
                            sim::EvTag::Link);
            }
        }
        mb.clear();
    }
}

std::size_t
LinkFabric::inboundPending() const
{
    std::size_t total = 0;
    for (const auto &mb : inbox)
        total += mb.size();
    return total;
}

void
LinkFabric::foldStats()
{
    std::uint64_t msgs = 0, bytes = 0, drops = 0, delays = 0;
    std::uint64_t drop_bytes = 0, mig_msgs = 0, mig_bytes = 0;
    for (unsigned s = 0; s < n; ++s) {
        for (unsigned d = 0; d < n; ++d) {
            const Channel &c = chan(s, d);
            msgs += c.msgs;
            bytes += c.bytes;
            drops += c.drops;
            delays += c.delays;
            drop_bytes += c.dropBytes;
            mig_msgs += c.migMsgs;
            mig_bytes += c.migBytes;
            if (c.msgs) {
                const std::string ch = chPrefix(s, d);
                stats.counter(ch + ".bytes") = c.bytes;
                stats.counter(ch + ".busyTicks") = c.busyTicks;
            }
        }
    }
    // Cells appear exactly when the eager version would have created
    // them, so stat snapshots keep their golden key sets.
    if (msgs) {
        stats.counter("msgs") = msgs;
        stats.counter("bytes") = bytes;
    }
    if (drops) {
        stats.counter("drops") = drops;
        stats.counter("dropBytes") = drop_bytes;
    }
    if (delays)
        stats.counter("delayed") = delays;
    if (mig_msgs) {
        stats.counter("migMsgs") = mig_msgs;
        stats.counter("migBytes") = mig_bytes;
    }
    std::uint64_t unh = 0;
    for (unsigned d = 0; d < n; ++d)
        unh += unhandled[d];
    if (unh)
        stats.counter("unhandledRpcs") = unh;
}

std::uint64_t
LinkFabric::bytesCarried() const
{
    std::uint64_t total = 0;
    for (const Channel &c : chans)
        total += c.bytes;
    return total;
}

std::uint64_t
LinkFabric::messages() const
{
    std::uint64_t total = 0;
    for (const Channel &c : chans)
        total += c.msgs;
    return total;
}

std::uint64_t
LinkFabric::droppedBytes() const
{
    std::uint64_t total = 0;
    for (const Channel &c : chans)
        total += c.dropBytes;
    return total;
}

std::uint64_t
LinkFabric::migrationBytes() const
{
    std::uint64_t total = 0;
    for (const Channel &c : chans)
        total += c.migBytes;
    return total;
}

std::uint64_t
LinkFabric::migrationMessages() const
{
    std::uint64_t total = 0;
    for (const Channel &c : chans)
        total += c.migMsgs;
    return total;
}

std::uint64_t
LinkFabric::offeredBytes() const
{
    return bytesCarried() + droppedBytes() + migrationBytes();
}

double
LinkFabric::utilization(unsigned src, unsigned dst) const
{
    // Host-phase query; after a run every partition clock is aligned
    // on the board's final tick, so any attached queue will do.
    const sim::EventQueue *q = queues[0];
    if (!q || q->now() == 0)
        return 0;
    return double(chan(src, dst).busyTicks) / double(q->now());
}

double
LinkFabric::peakUtilization() const
{
    double peak = 0;
    for (unsigned s = 0; s < n; ++s)
        for (unsigned d = 0; d < n; ++d)
            if (s != d)
                peak = std::max(peak, utilization(s, d));
    return peak;
}

} // namespace dpu::board

#include "board/link.hh"

#include <algorithm>

#include "sim/fault.hh"
#include "sim/logging.hh"

namespace dpu::board {

namespace {

/** Stat cell prefix for the (src, dst) channel. */
std::string
chPrefix(unsigned s, unsigned d)
{
    return "ch" + std::to_string(s) + "to" + std::to_string(d);
}

} // namespace

LinkFabric::LinkFabric(sim::EventQueue &eq_, unsigned n_dpus,
                       const LinkParams &params)
    : eq(eq_), n(n_dpus), p(params), chans(std::size_t(n) * n),
      handlers(n), stats("link")
{
    sim_assert(n >= 1, "a board fabric needs at least one DPU");
    sim_assert(p.gbPerSec > 0, "link bandwidth must be positive");
}

void
LinkFabric::onRpc(unsigned dst, RpcHandler handler)
{
    sim_assert(dst < n, "bad fabric endpoint %u", dst);
    handlers[dst] = std::move(handler);
}

sim::Tick
LinkFabric::serTicks(std::uint64_t bytes) const
{
    const double wire = double(std::max<std::uint64_t>(
        bytes, p.flitBytes));
    // ps per byte = 1000 / (GB/s); pure integer-in, integer-out so
    // the timing is a reproducible function of (bytes, params).
    return sim::Tick(wire * (1000.0 / p.gbPerSec) + 0.5);
}

sim::Tick
LinkFabric::transit(unsigned src, unsigned dst, std::uint64_t bytes,
                    bool &dropped)
{
    sim_assert(src < n && dst < n && src != dst,
               "bad fabric route %u -> %u", src, dst);
    Channel &c = chan(src, dst);
    const sim::Tick now = eq.now();
    const sim::Tick ser = serTicks(bytes);
    const sim::Tick tx_start = std::max(now, c.nextFree);
    const sim::Tick tx_done = tx_start + ser;
    c.nextFree = tx_done;
    c.busyTicks += ser;
    c.bytes += bytes;
    ++c.msgs;
    totalBytes += bytes;
    ++totalMsgs;
    ++stats.counter("msgs");
    stats.counter("bytes") += bytes;
    const std::string ch = chPrefix(src, dst);
    stats.counter(ch + ".bytes") += bytes;
    stats.counter(ch + ".busyTicks") = c.busyTicks;

    sim::Tick extra = 0;
    std::uint64_t mag = 0;
    sim::FaultPlane &fp = sim::faultPlane();
    const int unit = int(src * n + dst);
    if (fp.active() &&
        fp.fires(sim::FaultSite::LinkDelay, now, unit, &mag)) {
        extra = mag ? sim::Tick(mag) : p.hopLatency;
        ++stats.counter("delayed");
    }
    dropped = fp.active() &&
              fp.fires(sim::FaultSite::LinkDrop, now, unit, &mag);
    if (dropped)
        ++stats.counter("drops");
    return tx_done + p.hopLatency + extra;
}

void
LinkFabric::sendRpc(unsigned src, unsigned dst, std::uint64_t payload)
{
    bool dropped = false;
    const sim::Tick arrive = transit(src, dst, 8, dropped);
    if (dropped)
        return; // lost in the fabric; sender-level recovery applies
    eq.schedule(arrive,
                [this, src, dst, payload] {
                    if (handlers[dst])
                        handlers[dst](src, payload);
                    else
                        ++stats.counter("unhandledRpcs");
                },
                sim::EvTag::Link);
}

void
LinkFabric::sendBulk(unsigned src, unsigned dst, std::uint64_t bytes,
                     BulkHandler deliver)
{
    sim_assert(deliver, "bulk transfer needs a delivery hook");
    bool dropped = false;
    const sim::Tick arrive = transit(src, dst, bytes, dropped);
    const bool ok = !dropped;
    eq.schedule(arrive,
                [h = std::move(deliver), ok] { h(ok); },
                sim::EvTag::Link);
}

double
LinkFabric::utilization(unsigned src, unsigned dst) const
{
    if (eq.now() == 0)
        return 0;
    return double(chan(src, dst).busyTicks) / double(eq.now());
}

double
LinkFabric::peakUtilization() const
{
    double peak = 0;
    for (unsigned s = 0; s < n; ++s)
        for (unsigned d = 0; d < n; ++d)
            if (s != d)
                peak = std::max(peak, utilization(s, d));
    return peak;
}

} // namespace dpu::board

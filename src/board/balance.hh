/**
 * @file
 * Intra-board live re-sharding: hot-DPU detection, migration
 * planning, and execution of partition hand-offs over the real DMS
 * descriptor + link-fabric path.
 *
 * PR 8 gave the rack a feedback loop between boards; below the board
 * boundary, shards stayed frozen at construction. This module closes
 * that tier with the same architecture — windowed EWMA load
 * tracking, a deterministic greedy planner, and the drain-then-
 * switch protocol — but where the rack charges a flat state
 * transfer, the board EXECUTES it the way the paper says data should
 * move: the source DPU stages the partition's DDR-resident range
 * into DMEM with a real DdrToDmem descriptor chain (dms::HandoffExec
 * driving dms::planRangeHandoff plans), each staged chunk ships as
 * bulk DMA over the LinkFabric (snapshot-at-issue, bounded
 * retransmit, Migration traffic class so workload accounting stays
 * clean), and the destination lands it through DmemToDdr descriptors
 * (dms::HandoffLander).
 *
 * The split between planning and execution is what keeps parallel
 * runs bit-identical (DESIGN.md §17):
 *
 *  - planning, the routing flip, and migration harvesting happen in
 *    the HOST PHASE, at window boundaries, when every partition
 *    clock is parked on the same tick;
 *  - execution happens IN THE KERNEL: the staging chain runs as DMS
 *    completion events on the source partition, chunk deliveries
 *    ride the fabric's epoch mailboxes (delivery ticks at least one
 *    hop beyond the issuing epoch), and landing descriptors run on
 *    the destination partition. No cross-partition state is touched
 *    outside those paths.
 *
 * Failure handling mirrors the rack tier: a chunk dropped by
 * link.drop is retransmitted a bounded number of times from the
 * snapshot; an exhausted or error-completed migration aborts cleanly
 * once its engines drain (the partition stays home, the planner may
 * retry next window); a migration that cannot drain — a wedged DMAC
 * never completes its descriptor — times out at a window boundary
 * and permanently poisons the affected engine roles so no later plan
 * touches them. Deltas absorbed during the forwarding epoch ship to
 * the new home as they arrive, exactly like PR 8.
 */

#ifndef DPU_BOARD_BALANCE_HH
#define DPU_BOARD_BALANCE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "dms/handoff_exec.hh"
#include "mem/addr.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace dpu::board {

class Board;

/** Knobs of the deterministic hot-shard planner (shared with the
 *  rack tier, which wraps it — see rack/balance.hh). */
struct PlannerParams
{
    /** A DPU is hot above hotFactor x mean DPU load (>= 1). */
    double hotFactor = 1.5;
    /** Migration budget per window boundary. */
    unsigned maxMigrationsPerWindow = 1;
    /** Partitions below this EWMA load never migrate (not worth
     *  the state transfer). */
    double minPartitionLoad = 4.0;
};

/** Windowed per-partition load: current-window counts + EWMA. */
class LoadTracker
{
  public:
    explicit LoadTracker(unsigned n_partitions);

    unsigned size() const { return unsigned(counts.size()); }

    /** Count one request aimed at @p partition. */
    void record(unsigned partition);

    /** Close the window: fold counts into the EWMAs and reset.
     *  The first roll primes each EWMA with its raw count. */
    void roll(double alpha);

    /** Smoothed (EWMA) load of @p partition. */
    double load(unsigned partition) const;
    /** Requests seen for @p partition in the open window. */
    std::uint64_t windowLoad(unsigned partition) const;
    /** All smoothed loads, indexed by partition. */
    const std::vector<double> &loads() const { return ewma; }
    /** Lifetime requests recorded against @p partition. */
    std::uint64_t totalLoad(unsigned partition) const;
    unsigned rollsDone() const { return rolls; }

  private:
    std::vector<std::uint64_t> counts; ///< open window
    std::vector<std::uint64_t> totals; ///< lifetime
    std::vector<double> ewma;
    unsigned rolls = 0;
};

/** One planned partition move. */
struct MigrationStep
{
    unsigned partition = 0;
    unsigned from = 0;
    unsigned to = 0;
    /** The partition's smoothed load at planning time. */
    double load = 0;
};

/**
 * Plan up to maxMigrationsPerWindow moves off hot nodes.
 *
 * @p loads   per-partition EWMA loads (LoadTracker::loads()).
 * @p home    partition -> owning node, updated in place as steps
 *            are planned (so one call never plans two moves of the
 *            same partition).
 * @p n_nodes node (DPU or board) count.
 * @p frozen  partitions that may not move (in-flight migrations);
 *            indexed by partition, may be empty.
 *
 * Deterministic: identical inputs give identical plans. Every
 * choice breaks ties by lowest index, and a move requires strict
 * improvement (the destination, with the partition added, must stay
 * below the source's current load) so planning cannot oscillate.
 */
std::vector<MigrationStep>
planMigrations(const std::vector<double> &loads,
               std::vector<unsigned> &home, unsigned n_nodes,
               const PlannerParams &p,
               const std::vector<bool> &frozen = {});

/** Board-balancer knobs. Defaults leave it OFF (window = 0) so
 *  existing topologies and goldens are untouched. */
struct BalanceParams
{
    /** Observation-window length in ticks; 0 disables balancing. */
    sim::Tick window = 0;
    /** EWMA weight of the newest window, in (0, 1]. */
    double ewmaAlpha = 0.4;
    /** A DPU is hot above hotFactor x mean DPU load (>= 1). */
    double hotFactor = 1.5;
    /** Migration budget per window boundary. */
    unsigned maxMigrationsPerWindow = 1;
    /** Partitions below this EWMA load never migrate. */
    double minPartitionLoad = 4.0;
    /** Key partitions the board's requests hash into. */
    unsigned keyPartitions = 16;
    /** DMS-owned state bytes per partition (the migrated range). */
    std::uint64_t stateBytesPerPartition = 64 * 1024;
    /** DDR base of the per-partition state ranges (identical on
     *  every DPU; clear of the offload arenas). */
    mem::Addr stateBase = mem::Addr(192) << 20;
    /** Staging-chunk / DMEM-buffer bytes (<= 2048, the engine
     *  roles' ping-pong buffer size). */
    std::uint32_t stagingBufBytes = 2048;
    /** Engine core driving the hand-off descriptor chains on each
     *  DPU; ~0u picks the chip's last core. Must not be managed by
     *  the offload scheduler. */
    unsigned engineCore = ~0u;
    /** A migration not fully landed this long after launch is
     *  aborted at the next window boundary; its engine roles are
     *  poisoned (a wedged DMAC never completes). */
    sim::Tick migrationTimeout = sim::Tick(2'000'000'000); // 2 ms
    /** Forwarding-epoch delta shipped per request absorbed at the
     *  old home while its partition is in flight. */
    std::uint64_t deltaBytesPerRequest = 256;

    PlannerParams
    planner() const
    {
        return {hotFactor, maxMigrationsPerWindow, minPartitionLoad};
    }
};

/**
 * The board-tier balancer: owns the tracker, the partition->DPU home
 * map, the per-DPU hand-off engines, and every in-flight migration.
 * Driven by host::BoardScheduler, which calls record() per routed
 * request and onWindowBoundary() between runFor() segments.
 */
class BoardBalancer
{
  public:
    /** Fired (host phase) when a migration commits, BEFORE the
     *  partition's home map entry flips: (partition, from, to). */
    using CommitHook =
        std::function<void(unsigned part, unsigned from, unsigned to)>;

    /** Migration accounting (host-phase written). */
    struct Report
    {
        std::uint64_t planned = 0;   ///< migrations launched
        std::uint64_t committed = 0;
        std::uint64_t aborted = 0;   ///< failed + timed out
        std::uint64_t timeoutAborts = 0;
        std::uint64_t chunkRetries = 0; ///< link-drop retransmits
        std::uint64_t forwarded = 0; ///< forwarding-epoch requests
        std::uint64_t deltaBytes = 0;
        std::uint64_t deltaDropped = 0; ///< delta msgs lost on wire
        std::uint64_t stateBytes = 0;   ///< committed state moved
        std::uint64_t staleDeliveries = 0;
    };

    /** Seeds each partition's state pattern into its initial home's
     *  DDR and builds the per-DPU engine roles (host phase, before
     *  the board runs). @p initial_home maps partition -> DPU. */
    BoardBalancer(Board &brd, std::vector<unsigned> initial_home,
                  const BalanceParams &params);
    ~BoardBalancer();

    // ------------------------------------------------------------
    // Host-phase driving API
    // ------------------------------------------------------------

    /** Count one request routed to @p part; if the partition is in
     *  flight, ship its forwarding-epoch delta to the new home. */
    void record(unsigned part);

    /** Window boundary @p boundary (== the board clock): harvest
     *  finished migrations, roll the tracker, plan and launch new
     *  ones (unless draining). */
    void onWindowBoundary(sim::Tick boundary);

    /** Stop planning new migrations (the driver is draining). */
    void setDraining(bool d) { draining = d; }

    /** True while any migration is staging/shipping/landing. */
    bool migrationsActive() const;

    void onCommit(CommitHook hook) { commitHook = std::move(hook); }

    // ------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------

    unsigned nPartitions() const { return unsigned(home.size()); }
    unsigned homeOf(unsigned part) const;
    mem::Addr stateAddr(unsigned part) const;
    /** The partition's state range, read from its CURRENT home. */
    std::vector<std::uint8_t> stateImage(unsigned part) const;
    /** Expected byte @p i of partition @p part's state pattern. */
    static std::uint8_t statePattern(unsigned part, std::uint64_t i);

    LoadTracker &tracker() { return track; }
    const Report &report() const { return rep; }
    const BalanceParams &params() const { return p; }
    /** Engine roles poisoned by timed-out migrations (diagnostics). */
    bool srcPoisoned(unsigned dpu) const;
    bool dstPoisoned(unsigned dpu) const;

  private:
    enum class MigState : std::uint8_t
    {
        Active,
        Committed,
        Aborted,
    };

    /** One live or finished migration. Host-phase fields are only
     *  touched at window boundaries; srcFailed / srcRetries are
     *  written by the source partition's thread and read host-phase
     *  (the boundary's barrier orders the two). */
    struct Migration
    {
        unsigned part = 0;
        unsigned from = 0;
        unsigned to = 0;
        sim::Tick launchedAt = 0;
        unsigned gen = 0; ///< lander generation token
        dms::HandoffPlan plan;
        unsigned chunks = 0;
        MigState state = MigState::Active;
        // --- source-thread written ---
        bool srcFailed = false;
        unsigned srcRetries = 0;
    };

    /** Per-DPU hand-off engine roles on the engine core. */
    struct Engines
    {
        std::unique_ptr<dms::HandoffExec> exec;     ///< source role
        std::unique_ptr<dms::HandoffLander> lander; ///< dest role
        bool srcBusy = false;
        bool dstBusy = false;
        bool srcPoisoned = false;
        bool dstPoisoned = false;
    };

    void seedState(unsigned part, unsigned dpu);
    void launch(const MigrationStep &step, sim::Tick boundary);
    void srcStart(Migration &m);
    void onChunkStaged(Migration &m, unsigned chunk, bool error);
    void ship(Migration &m, unsigned chunk,
              std::shared_ptr<std::vector<std::uint8_t>> payload,
              unsigned attempts);
    void harvest(sim::Tick boundary);
    void foldStats();

    Board &brd;
    BalanceParams p;
    unsigned engineCore;
    LoadTracker track;
    std::vector<unsigned> home; ///< partition -> DPU (routing truth)
    std::vector<bool> frozen;   ///< partition in flight
    std::vector<Engines> engines;
    /** Owning store; stable addresses (events capture Migration&). */
    std::vector<std::unique_ptr<Migration>> migrations;
    /** Active migration per partition, else nullptr. */
    std::vector<Migration *> inflight;
    CommitHook commitHook;
    Report rep;
    bool draining = false;
    sim::StatGroup stats;
};

} // namespace dpu::board

#endif // DPU_BOARD_BALANCE_HH

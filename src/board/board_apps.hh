/**
 * @file
 * Cross-DPU board workloads.
 *
 * Two of the paper's applications, re-staged at board scale:
 *
 *  - Sharded SQL partition/aggregate (runShardedSql): every DPU
 *    radix-partitions its local table slice 32 ways with the DMS
 *    hash engine (Figure 10/13); partition p is owned by DPU
 *    p % nDpus, so non-owned partitions are staged to DDR and
 *    shipped to their owner over the link fabric (bulk DMA + an RPC
 *    doorbell carrying the row count). Owners then aggregate
 *    COUNT/SUM per partition — the partitioned-hash-join building
 *    block — with one core per (partition, source DPU) region so
 *    the reduce stays parallel at any board size.
 *
 *  - Distributed HyperLogLog (runDistributedHll): every DPU builds
 *    per-lane sketches with the CRC32+NTZ kernel (Section 5.4),
 *    max-merges them on-chip, ships the chip sketch to DPU 0 over
 *    the fabric, and DPU 0 merges the board sketch. Register max
 *    is order-independent, so the final sketch must be bit-exact
 *    against a host replay while the estimate stays inside the
 *    usual HLL error band.
 *
 * Both runners drive the Board's shared event kernel in phases,
 * validate against straight-C++ host references, and report wall
 * (simulated) time plus link statistics. Everything is seeded; the
 * same (config, board) pair reproduces bit-identical results and
 * stats.
 */

#ifndef DPU_BOARD_BOARD_APPS_HH
#define DPU_BOARD_BOARD_APPS_HH

#include <cstdint>

#include "board/board.hh"

namespace dpu::board {

/** Global partition fan-out (the DMS radix width, Figure 13). */
constexpr unsigned sqlPartitions = 32;

struct ShardedSqlConfig
{
    /** Table rows staged on (and partitioned by) each DPU. */
    std::uint32_t rowsPerDpu = 1 << 15;
    std::uint64_t seed = 0x5eed;
};

struct ShardedSqlResult
{
    bool valid = false;
    /** Rows processed across the board (rowsPerDpu * nDpus). */
    std::uint64_t rows = 0;
    double seconds = 0;
    std::uint64_t bytesShipped = 0;
    /** Doorbell RPCs lost to link faults (recovered host-side). */
    std::uint64_t doorbellsLost = 0;
    double peakLinkUtilization = 0;

    double
    rowsPerSec() const
    {
        return seconds > 0 ? double(rows) / seconds : 0;
    }
};

/** Hash-partitioned COUNT/SUM aggregate across the board. */
ShardedSqlResult runShardedSql(Board &b, const ShardedSqlConfig &cfg);

struct DistHllConfig
{
    std::uint64_t elementsPerDpu = 1 << 14;
    /** Distinct-value pool the per-DPU streams draw from. */
    std::uint64_t cardinality = 1 << 12;
    unsigned pBits = 10; ///< 1024 registers
    unsigned nLanes = 8; ///< cores per DPU building sketches
    std::uint64_t seed = 7;
};

struct DistHllResult
{
    bool valid = false;
    /** Board sketch bit-identical to the host-replayed merge. */
    bool sketchExact = false;
    double estimate = 0;
    std::uint64_t trueDistinct = 0;
    double errorFrac = 0;
    double seconds = 0;
};

/** Distributed HLL with cross-DPU sketch merge on DPU 0. */
DistHllResult runDistributedHll(Board &b, const DistHllConfig &cfg);

} // namespace dpu::board

#endif // DPU_BOARD_BOARD_APPS_HH

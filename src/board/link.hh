/**
 * @file
 * Inter-DPU link fabric timing model.
 *
 * A board carries N DPUs connected pairwise by full-duplex
 * serial links (think PCIe/Interlaken lanes off each chip's A9
 * complex). The fabric models each ordered (src, dst) pair as an
 * independent channel with a store-and-forward cost:
 *
 *   txStart  = max(now, channel.nextFree)
 *   txDone   = txStart + serialization(bytes)
 *   delivery = txDone + hopLatency [+ link.delay magnitude]
 *
 * so concurrent messages on one channel serialize while opposite
 * directions and disjoint pairs proceed in parallel. Two traffic
 * classes share the channels:
 *
 *  - RPCs: pointer-sized control messages (ATE-style doorbells)
 *    delivered to a per-DPU handler;
 *  - bulk transfers: DMS-descriptor-sized payloads between DDR
 *    spaces; the fabric only models the wire time and invokes the
 *    caller's delivery hook, which performs the byte copy
 *    (board::Board::dma composes the two).
 *
 * Parallel execution. Every DPU owns its own sim::EventQueue
 * partition (board::Board runs them under a sim::EpochRunner), so
 * the fabric never schedules into another chip's queue directly.
 * A send runs entirely on the source chip — channel occupancy,
 * fault decisions and the delivery tick are all computed
 * synchronously against the source clock — and the delivery is
 * parked in the per-(src, dst) epoch mailbox. At each epoch barrier
 * the runner calls drainInbound(dst) on the thread that owns dst,
 * which schedules every parked delivery into dst's queue in
 * deterministic (src, send order) sequence. Because the runner's
 * lookahead never exceeds hopLatency, a delivery tick is always at
 * or beyond the end of the epoch that produced it, so the receiving
 * clock has never passed it. That makes the parallel schedule a
 * pure function of the simulated traffic: any thread count yields
 * bit-identical stats, traces and memory images.
 *
 * Faults ride the process-wide plane (sim/fault.hh): `link.drop`
 * loses a message after it burned its wire time (RPCs vanish, bulk
 * deliveries are lost so the sender retries), `link.delay` adds
 * `mag` ticks to one delivery. The fault `unit` of a channel is
 * src * nDpus + dst; decisions draw from the SOURCE chip's domain
 * stream (the fabric enters DomainScope(src) for the decision), so
 * they too are independent of thread interleaving.
 *
 * Everything lands in the "link" StatGroup: aggregate msgs / bytes /
 * drops / delays plus per-channel bytes and busy ticks, from which
 * utilization() derives per-channel and peak occupancy. The cells
 * are fed from per-channel shadows owned by the source thread and
 * folded in a flush hook, so parallel partitions never touch the
 * shared map.
 */

#ifndef DPU_BOARD_LINK_HH
#define DPU_BOARD_LINK_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace dpu::board {

/** Link timing knobs (defaults: a modest 12 GB/s board link). */
struct LinkParams
{
    /** Propagation + SerDes + endpoint turnaround per message. */
    sim::Tick hopLatency = sim::Tick(600'000); // 600 ns
    /** Per-direction serialization bandwidth. */
    double gbPerSec = 12.0;
    /** Minimum wire occupancy per message (header flit). */
    std::uint32_t flitBytes = 64;
};

/**
 * Bulk-transfer traffic class. Workload bytes are what the apps
 * moved; Migration bytes are the balancer's re-shard traffic
 * (state chunks + forwarding-epoch deltas). The split keeps
 * utilization/bytes JSON honest: re-sharding burns wire time on
 * the same channels but is accounted separately, mirroring the
 * rack tier's carried/dropped/migration counters.
 */
enum class LinkTraffic : std::uint8_t
{
    Workload,
    Migration,
};

/** The board's N x N channel matrix. */
class LinkFabric
{
  public:
    /** Per-DPU RPC delivery hook: (source DPU, payload). */
    using RpcHandler =
        std::function<void(unsigned src, std::uint64_t payload)>;
    /** Bulk delivery hook: ok=false means the link dropped it. */
    using BulkHandler = std::function<void(bool ok)>;

    LinkFabric(unsigned n_dpus, const LinkParams &params);

    unsigned size() const { return n; }
    const LinkParams &params() const { return p; }

    /** Bind DPU @p dpu's event-queue partition (host phase). */
    void attach(unsigned dpu, sim::EventQueue &q);

    /** Install DPU @p dst's RPC handler (replaces any previous). */
    void onRpc(unsigned dst, RpcHandler handler);

    /**
     * Post a pointer-sized RPC from DPU @p src to DPU @p dst. A
     * dropped RPC vanishes (senders needing reliability must
     * timeout and retry, as with ATE messages). Runs on the source
     * chip; delivery is parked until drainInbound(dst).
     */
    void sendRpc(unsigned src, unsigned dst, std::uint64_t payload);

    /**
     * Occupy the (src, dst) channel with @p bytes of payload and
     * decide the message's fate now, against the source clock.
     * @return the delivery tick; @p dropped reports a link.drop
     * (wire time spent, payload lost — the caller owns retries).
     * @p cls attributes the bytes: workload vs migration.
     */
    sim::Tick startBulk(unsigned src, unsigned dst,
                        std::uint64_t bytes, bool &dropped,
                        LinkTraffic cls = LinkTraffic::Workload);

    /**
     * Park @p fn in the (src, dst) mailbox for execution on DPU
     * @p dst's queue at tick @p when (a delivery tick returned by
     * startBulk). Drained at the next epoch barrier.
     */
    void postDelivery(unsigned src, unsigned dst, sim::Tick when,
                      std::function<void()> fn);

    /**
     * Schedule every parked delivery bound for @p dst into dst's
     * queue, sources in ascending order, each channel in send
     * order. Called by the epoch runner on the thread owning dst
     * (and by hand after host-phase sends in tests).
     */
    void drainInbound(unsigned dst);

    /** Parked deliveries across all mailboxes (diagnostics). */
    std::size_t inboundPending() const;

    /** Fraction of simulated time the (src, dst) channel spent
     *  serializing (0 when the clock has not advanced). */
    double utilization(unsigned src, unsigned dst) const;

    /** Busiest channel's utilization — the scaling bottleneck. */
    double peakUtilization() const;

    /** Workload bytes that reached their destination. */
    std::uint64_t bytesCarried() const;
    /** Workload messages that reached their destination. */
    std::uint64_t messages() const;
    /** Bytes lost to link.drop (wire time was still burned). */
    std::uint64_t droppedBytes() const;
    /** Migration-class bytes delivered (re-shard traffic). */
    std::uint64_t migrationBytes() const;
    std::uint64_t migrationMessages() const;
    /** Everything offered to the wire:
     *  carried + dropped + migration. */
    std::uint64_t offeredBytes() const;

    sim::StatGroup &statGroup() { return stats; }

  private:
    /** One ordered (src, dst) channel; owned by src's thread. The
     *  byte/msg/tick tallies are exclusive by message fate — every
     *  message lands in exactly one of carried (bytes/msgs/
     *  busyTicks), dropped, or migration — so the classes sum to
     *  the offered total. */
    struct Channel
    {
        sim::Tick nextFree = 0;
        sim::Tick busyTicks = 0; ///< carried workload wire time
        std::uint64_t bytes = 0; ///< carried workload bytes
        std::uint64_t msgs = 0;  ///< carried workload messages
        std::uint64_t drops = 0;
        std::uint64_t delays = 0;
        std::uint64_t dropBytes = 0;
        sim::Tick dropTicks = 0;
        std::uint64_t migMsgs = 0;
        std::uint64_t migBytes = 0;
        sim::Tick migTicks = 0;
    };

    /** One parked delivery: an RPC payload or a bulk action. */
    struct Pending
    {
        sim::Tick when = 0;
        std::uint64_t payload = 0;
        std::function<void()> fn; ///< non-empty = bulk delivery
    };

    Channel &chan(unsigned s, unsigned d) { return chans[s * n + d]; }
    const Channel &
    chan(unsigned s, unsigned d) const
    {
        return chans[s * n + d];
    }

    /** Wire ticks for @p bytes at the configured bandwidth. */
    sim::Tick serTicks(std::uint64_t bytes) const;

    /**
     * Occupy the channel and decide the message's fate against the
     * source clock, in the source's fault domain. @return the
     * delivery tick; @p dropped reports a link.drop firing.
     */
    sim::Tick transit(unsigned src, unsigned dst,
                      std::uint64_t bytes, bool &dropped,
                      LinkTraffic cls);

    /** Fold the channel shadows into the StatGroup cells. */
    void foldStats();

    unsigned n;
    LinkParams p;
    std::vector<sim::EventQueue *> queues;
    std::vector<Channel> chans;
    /** Epoch mailboxes, indexed src * n + dst. A mailbox is written
     *  by src's thread in the compute phase and read by dst's thread
     *  in the drain phase; the runner's barriers order the two. */
    std::vector<std::vector<Pending>> inbox;
    std::vector<RpcHandler> handlers;
    /** Per-dst count of RPCs delivered with no handler installed. */
    std::vector<std::uint64_t> unhandled;
    sim::StatGroup stats;
};

} // namespace dpu::board

#endif // DPU_BOARD_LINK_HH

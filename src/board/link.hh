/**
 * @file
 * Inter-DPU link fabric timing model.
 *
 * A board carries N DPUs connected pairwise by full-duplex
 * serial links (think PCIe/Interlaken lanes off each chip's A9
 * complex). The fabric models each ordered (src, dst) pair as an
 * independent channel with a store-and-forward cost:
 *
 *   txStart  = max(now, channel.nextFree)
 *   txDone   = txStart + serialization(bytes)
 *   delivery = txDone + hopLatency [+ link.delay magnitude]
 *
 * so concurrent messages on one channel serialize while opposite
 * directions and disjoint pairs proceed in parallel. Two traffic
 * classes share the channels:
 *
 *  - RPCs: pointer-sized control messages (ATE-style doorbells)
 *    delivered to a per-DPU handler;
 *  - bulk transfers: DMS-descriptor-sized payloads between DDR
 *    spaces; the fabric only models the wire time and invokes the
 *    caller's delivery hook, which performs the byte copy
 *    (board::Board::dma composes the two).
 *
 * Faults ride the process-wide plane (sim/fault.hh): `link.drop`
 * loses a message after it burned its wire time (RPCs vanish, bulk
 * deliveries report !ok so the sender can retry), `link.delay` adds
 * `mag` ticks to one delivery. The fault `unit` of a channel is
 * src * nDpus + dst.
 *
 * Everything lands in the "link" StatGroup: aggregate msgs / bytes /
 * drops / delays plus per-channel bytes and busy ticks, from which
 * utilization() derives per-channel and peak occupancy.
 */

#ifndef DPU_BOARD_LINK_HH
#define DPU_BOARD_LINK_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace dpu::board {

/** Link timing knobs (defaults: a modest 12 GB/s board link). */
struct LinkParams
{
    /** Propagation + SerDes + endpoint turnaround per message. */
    sim::Tick hopLatency = sim::Tick(600'000); // 600 ns
    /** Per-direction serialization bandwidth. */
    double gbPerSec = 12.0;
    /** Minimum wire occupancy per message (header flit). */
    std::uint32_t flitBytes = 64;
};

/** The board's N x N channel matrix. */
class LinkFabric
{
  public:
    /** Per-DPU RPC delivery hook: (source DPU, payload). */
    using RpcHandler =
        std::function<void(unsigned src, std::uint64_t payload)>;
    /** Bulk delivery hook: ok=false means the link dropped it. */
    using BulkHandler = std::function<void(bool ok)>;

    LinkFabric(sim::EventQueue &eq, unsigned n_dpus,
               const LinkParams &params);

    unsigned size() const { return n; }
    const LinkParams &params() const { return p; }

    /** Install DPU @p dst's RPC handler (replaces any previous). */
    void onRpc(unsigned dst, RpcHandler handler);

    /**
     * Post a pointer-sized RPC from DPU @p src to DPU @p dst. A
     * dropped RPC vanishes (senders needing reliability must
     * timeout and retry, as with ATE messages).
     */
    void sendRpc(unsigned src, unsigned dst, std::uint64_t payload);

    /**
     * Occupy the (src, dst) channel with @p bytes of payload and
     * schedule @p deliver at the arrival tick. ok=false signals a
     * link.drop: the wire time was spent but the payload was lost.
     */
    void sendBulk(unsigned src, unsigned dst, std::uint64_t bytes,
                  BulkHandler deliver);

    /** Fraction of simulated time the (src, dst) channel spent
     *  serializing (0 when the clock has not advanced). */
    double utilization(unsigned src, unsigned dst) const;

    /** Busiest channel's utilization — the scaling bottleneck. */
    double peakUtilization() const;

    std::uint64_t bytesCarried() const { return totalBytes; }
    std::uint64_t messages() const { return totalMsgs; }

    sim::StatGroup &statGroup() { return stats; }

  private:
    struct Channel
    {
        sim::Tick nextFree = 0;
        sim::Tick busyTicks = 0;
        std::uint64_t bytes = 0;
        std::uint64_t msgs = 0;
    };

    Channel &chan(unsigned s, unsigned d) { return chans[s * n + d]; }
    const Channel &
    chan(unsigned s, unsigned d) const
    {
        return chans[s * n + d];
    }

    /** Wire ticks for @p bytes at the configured bandwidth. */
    sim::Tick serTicks(std::uint64_t bytes) const;

    /**
     * Occupy the channel and decide the message's fate. @return
     * the delivery tick; @p dropped reports a link.drop firing.
     */
    sim::Tick transit(unsigned src, unsigned dst,
                      std::uint64_t bytes, bool &dropped);

    sim::EventQueue &eq;
    unsigned n;
    LinkParams p;
    std::vector<Channel> chans;
    std::vector<RpcHandler> handlers;
    std::uint64_t totalBytes = 0;
    std::uint64_t totalMsgs = 0;
    sim::StatGroup stats;
};

} // namespace dpu::board

#endif // DPU_BOARD_LINK_HH

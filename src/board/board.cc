#include "board/board.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dpu::board {

Board::Board(const BoardParams &params)
    : p(params), link(p.nDpus, p.link)
{
    sim_assert(p.nDpus >= 1, "a board carries at least one DPU");
    queues.reserve(p.nDpus);
    dpus.reserve(p.nDpus);
    hosts.reserve(p.nDpus);
    for (unsigned d = 0; d < p.nDpus; ++d) {
        queues.push_back(std::make_unique<sim::EventQueue>());
        link.attach(d, *queues[d]);
        dpus.push_back(std::make_unique<soc::Soc>(*queues[d], p.soc));
        hosts.push_back(
            std::make_unique<soc::HostA9>(*queues[d], dpus[d]->mbc()));
    }
    dmaShadows.resize(p.nDpus);
    link.statGroup().addFlushHook([this] {
        std::uint64_t retries = 0, failed = 0;
        for (const DmaShadow &s : dmaShadows) {
            retries += s.retries;
            failed += s.failed;
        }
        if (retries)
            link.statGroup().counter("bulkRetries") = retries;
        if (failed)
            link.statGroup().counter("bulkFailed") = failed;
    });

    std::vector<sim::EventQueue *> qs;
    qs.reserve(p.nDpus);
    for (auto &q : queues)
        qs.push_back(q.get());
    sim::ParallelParams pp;
    pp.threads = p.threads;
    pp.lookahead = p.lookahead
                       ? std::min(p.lookahead, p.link.hopLatency)
                       : p.link.hopLatency;
    pp.pinCores = p.pinCores;
    runner = std::make_unique<sim::EpochRunner>(
        std::move(qs), pp, [this](unsigned d) { link.drainInbound(d); });
}

sim::Tick
Board::now() const
{
    if (const sim::EventQueue *q = sim::activeEventQueue())
        return q->now();
    return boardNow;
}

sim::Tick
Board::run()
{
    boardNow = runner->run();
    return boardNow;
}

sim::Tick
Board::runFor(sim::Tick limit)
{
    boardNow = runner->run(boardNow + limit);
    return boardNow;
}

bool
Board::allFinished() const
{
    for (const auto &d : dpus)
        if (!d->allFinished())
            return false;
    return true;
}

const sim::EpochRunner::Stats &
Board::runnerStats() const
{
    return runner->stats();
}

unsigned
Board::runnerThreads() const
{
    return runner->workers();
}

void
Board::dma(unsigned src_dpu, mem::Addr src_addr, unsigned dst_dpu,
           mem::Addr dst_addr, std::uint64_t bytes,
           LinkFabric::BulkHandler done)
{
    sim_assert(src_dpu < nDpus() && dst_dpu < nDpus() &&
                   src_dpu != dst_dpu,
               "bad DMA route %u -> %u", src_dpu, dst_dpu);
    sim_assert(sim::activeEventQueue() == nullptr ||
                   sim::activeEventQueue() == queues[src_dpu].get(),
               "dma %u -> %u issued from another chip's partition",
               src_dpu, dst_dpu);
    auto buf = std::make_shared<std::vector<std::uint8_t>>(bytes);
    dpus[src_dpu]->memory().store().read(src_addr, buf->data(),
                                         bytes);
    dmaAttempt(src_dpu, dst_dpu, dst_addr, std::move(buf),
               std::move(done), 1 + p.dmaRetries);
}

void
Board::dmaAttempt(unsigned src_dpu, unsigned dst_dpu,
                  mem::Addr dst_addr,
                  std::shared_ptr<std::vector<std::uint8_t>> buf,
                  LinkFabric::BulkHandler done, unsigned attempts)
{
    // Runs on the source chip (issue context or a retry event), so
    // the fate is known immediately and everything that follows is
    // a plain schedule: the byte copy rides the fabric mailbox to
    // the destination partition, completion and retries stay on the
    // source partition at the delivery tick — exactly when the old
    // shared-queue delivery event would have run them.
    bool dropped = false;
    const sim::Tick arrive =
        link.startBulk(src_dpu, dst_dpu, buf->size(), dropped);
    if (!dropped) {
        link.postDelivery(
            src_dpu, dst_dpu, arrive,
            [this, dst_dpu, dst_addr, buf] {
                dpus[dst_dpu]->memory().store().write(
                    dst_addr, buf->data(), buf->size());
            });
        if (done)
            queues[src_dpu]->schedule(
                arrive, [done = std::move(done)] { done(true); },
                sim::EvTag::Link);
        return;
    }
    if (attempts > 1) {
        ++dmaShadows[src_dpu].retries;
        queues[src_dpu]->schedule(
            arrive,
            [this, src_dpu, dst_dpu, dst_addr, buf = std::move(buf),
             done = std::move(done), attempts]() mutable {
                dmaAttempt(src_dpu, dst_dpu, dst_addr,
                           std::move(buf), std::move(done),
                           attempts - 1);
            },
            sim::EvTag::Link);
        return;
    }
    ++dmaShadows[src_dpu].failed;
    if (done)
        queues[src_dpu]->schedule(
            arrive, [done = std::move(done)] { done(false); },
            sim::EvTag::Link);
}

} // namespace dpu::board

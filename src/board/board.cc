#include "board/board.hh"

#include "sim/logging.hh"

namespace dpu::board {

Board::Board(const BoardParams &params)
    : p(params), link(eq, p.nDpus, p.link)
{
    sim_assert(p.nDpus >= 1, "a board carries at least one DPU");
    dpus.reserve(p.nDpus);
    hosts.reserve(p.nDpus);
    for (unsigned d = 0; d < p.nDpus; ++d) {
        dpus.push_back(std::make_unique<soc::Soc>(eq, p.soc));
        hosts.push_back(
            std::make_unique<soc::HostA9>(eq, dpus[d]->mbc()));
    }
}

sim::Tick
Board::run()
{
    eq.run();
    return eq.now();
}

sim::Tick
Board::runFor(sim::Tick limit)
{
    eq.run(eq.now() + limit);
    return eq.now();
}

bool
Board::allFinished() const
{
    for (const auto &d : dpus)
        if (!d->allFinished())
            return false;
    return true;
}

void
Board::dma(unsigned src_dpu, mem::Addr src_addr, unsigned dst_dpu,
           mem::Addr dst_addr, std::uint64_t bytes,
           LinkFabric::BulkHandler done)
{
    sim_assert(src_dpu < nDpus() && dst_dpu < nDpus() &&
                   src_dpu != dst_dpu,
               "bad DMA route %u -> %u", src_dpu, dst_dpu);
    auto buf = std::make_shared<std::vector<std::uint8_t>>(bytes);
    dpus[src_dpu]->memory().store().read(src_addr, buf->data(),
                                         bytes);
    dmaAttempt(src_dpu, dst_dpu, dst_addr, std::move(buf),
               std::move(done), 1 + p.dmaRetries);
}

void
Board::dmaAttempt(unsigned src_dpu, unsigned dst_dpu,
                  mem::Addr dst_addr,
                  std::shared_ptr<std::vector<std::uint8_t>> buf,
                  LinkFabric::BulkHandler done, unsigned attempts)
{
    const std::uint64_t bytes = buf->size();
    link.sendBulk(
        src_dpu, dst_dpu, bytes,
        [this, src_dpu, dst_dpu, dst_addr, buf = std::move(buf),
         done = std::move(done), attempts](bool ok) mutable {
            if (ok) {
                dpus[dst_dpu]->memory().store().write(
                    dst_addr, buf->data(), buf->size());
                if (done)
                    done(true);
                return;
            }
            if (attempts > 1) {
                ++link.statGroup().counter("bulkRetries");
                dmaAttempt(src_dpu, dst_dpu, dst_addr,
                           std::move(buf), std::move(done),
                           attempts - 1);
                return;
            }
            ++link.statGroup().counter("bulkFailed");
            if (done)
                done(false);
        });
}

} // namespace dpu::board

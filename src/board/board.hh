/**
 * @file
 * A multi-DPU board: N chips, one event kernel, one link fabric.
 *
 * The paper evaluates a single 32-dpCore DPU; its DMS partitioner
 * and ATE fabric, however, compose beyond one chip, and the serving
 * deployment model (Section 2.4) places many DPUs behind one host.
 * The Board models that next tier: every Soc is constructed on the
 * Board's shared sim::EventQueue, so all chips advance on one
 * deterministic timeline, and a LinkFabric carries inter-DPU RPC
 * doorbells and DDR-to-DDR bulk transfers.
 *
 * Bulk data movement (dma()) is descriptor-style: the payload is
 * snapshotted from the source chip's functional DDR store when the
 * descriptor is issued, occupies the (src, dst) link channel for its
 * serialization time, and lands in the destination store at the
 * delivery tick. Link-level drops are retried a bounded number of
 * times before the completion hook reports failure; DDR-side timing
 * on the endpoints is not charged (the link, two orders of magnitude
 * slower than a DDR channel, is the modelled bottleneck — see
 * DESIGN.md §12).
 *
 * Each DPU also gets its own HostA9 (the per-chip offload driver
 * endpoint); host::BoardScheduler runs one OffloadScheduler per chip
 * on top of these.
 */

#ifndef DPU_BOARD_BOARD_HH
#define DPU_BOARD_BOARD_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "board/link.hh"
#include "sim/event_queue.hh"
#include "soc/host_a9.hh"
#include "soc/soc.hh"

namespace dpu::board {

struct BoardParams
{
    unsigned nDpus = 2;
    soc::SocParams soc = soc::dpu40nm();
    LinkParams link{};
    /** Bulk-transfer retransmissions before dma() reports failure. */
    unsigned dmaRetries = 4;
};

/** N DPUs sharing one event kernel, connected by a LinkFabric. */
class Board
{
  public:
    explicit Board(const BoardParams &params);

    unsigned nDpus() const { return unsigned(dpus.size()); }
    const BoardParams &params() const { return p; }

    sim::EventQueue &eventQueue() { return eq; }
    sim::Tick now() const { return eq.now(); }
    double seconds() const { return double(eq.now()) * 1e-12; }

    soc::Soc &dpu(unsigned d) { return *dpus[d]; }
    soc::HostA9 &host(unsigned d) { return *hosts[d]; }
    LinkFabric &fabric() { return link; }

    /** Run the shared kernel until it drains; @return end tick. */
    sim::Tick run();

    /** Run with a simulated-time limit (deadlock detection). */
    sim::Tick runFor(sim::Tick limit);

    /** True when every started kernel on every chip has returned. */
    bool allFinished() const;

    /**
     * Ship @p bytes from DPU @p src_dpu's DDR at @p src_addr to DPU
     * @p dst_dpu's DDR at @p dst_addr over the fabric. The payload
     * is snapshotted now; the destination bytes appear at the
     * delivery tick. Dropped transfers are retransmitted up to
     * params().dmaRetries times, then @p done (optional) reports
     * false.
     */
    void dma(unsigned src_dpu, mem::Addr src_addr, unsigned dst_dpu,
             mem::Addr dst_addr, std::uint64_t bytes,
             LinkFabric::BulkHandler done = {});

  private:
    void dmaAttempt(unsigned src_dpu, unsigned dst_dpu,
                    mem::Addr dst_addr,
                    std::shared_ptr<std::vector<std::uint8_t>> buf,
                    LinkFabric::BulkHandler done, unsigned attempts);

    BoardParams p;
    sim::EventQueue eq;
    std::vector<std::unique_ptr<soc::Soc>> dpus;
    std::vector<std::unique_ptr<soc::HostA9>> hosts;
    LinkFabric link;
};

} // namespace dpu::board

#endif // DPU_BOARD_BOARD_HH

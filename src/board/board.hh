/**
 * @file
 * A multi-DPU board: N chips, N event-kernel partitions, one link
 * fabric, one epoch runner.
 *
 * The paper evaluates a single 32-dpCore DPU; its DMS partitioner
 * and ATE fabric, however, compose beyond one chip, and the serving
 * deployment model (Section 2.4) places many DPUs behind one host.
 * The Board models that next tier: every Soc is constructed on its
 * OWN sim::EventQueue partition, and a sim::EpochRunner advances the
 * partitions in conservative epochs bounded by the LinkFabric's
 * store-and-forward latency — serially with threads=1 (the default),
 * or on a worker pool with BoardParams::threads > 1. Cross-chip
 * traffic (RPC doorbells, bulk DMA) moves only through the fabric's
 * epoch mailboxes, so the simulated schedule — every stat, trace
 * record and memory image — is bit-identical at any thread count
 * (see DESIGN.md §13).
 *
 * Bulk data movement (dma()) is descriptor-style: the payload is
 * snapshotted from the source chip's functional DDR store when the
 * descriptor is issued, occupies the (src, dst) link channel for its
 * serialization time, and lands in the destination store at the
 * delivery tick (executed on the destination's partition). Link-level
 * drops are retried a bounded number of times before the completion
 * hook reports failure; DDR-side timing on the endpoints is not
 * charged (the link, two orders of magnitude slower than a DDR
 * channel, is the modelled bottleneck — see DESIGN.md §12).
 *
 * Each DPU also gets its own HostA9 (the per-chip offload driver
 * endpoint); host::BoardScheduler runs one OffloadScheduler per chip
 * on top of these.
 */

#ifndef DPU_BOARD_BOARD_HH
#define DPU_BOARD_BOARD_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "board/balance.hh"
#include "board/link.hh"
#include "sim/event_queue.hh"
#include "sim/parallel.hh"
#include "soc/host_a9.hh"
#include "soc/soc.hh"

namespace dpu::board {

struct BoardParams
{
    unsigned nDpus = 2;
    soc::SocParams soc = soc::dpu40nm();
    LinkParams link{};
    /** Bulk-transfer retransmissions before dma() reports failure. */
    unsigned dmaRetries = 4;
    /** Worker threads for the epoch runner (1 = serial epochs; the
     *  schedule is identical either way). */
    unsigned threads = 1;
    /** Pin workers to cores (Linux only; best effort). */
    bool pinCores = false;
    /** Epoch lookahead in ticks; 0 picks the link hop latency, the
     *  largest window that keeps cross-chip delivery conservative.
     *  Values above the hop latency are clamped to it. */
    sim::Tick lookahead = 0;
    /** Intra-board live re-sharding knobs (board/balance.hh). The
     *  default window = 0 disables the balancer entirely; the host
     *  BoardScheduler builds one when enabled. */
    BalanceParams balance{};
};

/** N DPUs on per-chip kernel partitions, connected by a LinkFabric. */
class Board
{
  public:
    explicit Board(const BoardParams &params);

    unsigned nDpus() const { return unsigned(dpus.size()); }
    const BoardParams &params() const { return p; }

    /** DPU @p d's event-queue partition. */
    sim::EventQueue &eventQueue(unsigned d = 0) { return *queues[d]; }

    /** The board clock: the executing partition's clock from inside
     *  an event, the common aligned tick from the host phase. */
    sim::Tick now() const;

    double seconds() const { return double(now()) * 1e-12; }

    soc::Soc &dpu(unsigned d) { return *dpus[d]; }
    soc::HostA9 &host(unsigned d) { return *hosts[d]; }
    LinkFabric &fabric() { return link; }

    /** Run every partition until the board drains; @return end tick. */
    sim::Tick run();

    /** Run with a simulated-time limit (deadlock detection). */
    sim::Tick runFor(sim::Tick limit);

    /** True when every started kernel on every chip has returned. */
    bool allFinished() const;

    /** Epoch-runner counters (epochs, idle skips; diagnostics). */
    const sim::EpochRunner::Stats &runnerStats() const;

    /** Worker threads the runner actually uses. */
    unsigned runnerThreads() const;

    /**
     * Ship @p bytes from DPU @p src_dpu's DDR at @p src_addr to DPU
     * @p dst_dpu's DDR at @p dst_addr over the fabric. The payload
     * is snapshotted now; the destination bytes appear at the
     * delivery tick. Dropped transfers are retransmitted up to
     * params().dmaRetries times, then @p done (optional) reports
     * false. @p done runs on the SOURCE chip's partition at the
     * final delivery tick. Callable from the host phase or from
     * events on the source chip's partition.
     */
    void dma(unsigned src_dpu, mem::Addr src_addr, unsigned dst_dpu,
             mem::Addr dst_addr, std::uint64_t bytes,
             LinkFabric::BulkHandler done = {});

  private:
    void dmaAttempt(unsigned src_dpu, unsigned dst_dpu,
                    mem::Addr dst_addr,
                    std::shared_ptr<std::vector<std::uint8_t>> buf,
                    LinkFabric::BulkHandler done, unsigned attempts);

    /** Per-source-DPU DMA recovery tallies (src thread owned). */
    struct DmaShadow
    {
        std::uint64_t retries = 0;
        std::uint64_t failed = 0;
    };

    BoardParams p;
    std::vector<std::unique_ptr<sim::EventQueue>> queues;
    LinkFabric link;
    std::vector<std::unique_ptr<soc::Soc>> dpus;
    std::vector<std::unique_ptr<soc::HostA9>> hosts;
    std::vector<DmaShadow> dmaShadows;
    std::unique_ptr<sim::EpochRunner> runner;
    /** Host-phase board clock: the common tick every partition was
     *  aligned on at the end of the last run. */
    sim::Tick boardNow = 0;
};

} // namespace dpu::board

#endif // DPU_BOARD_BOARD_HH

#include "board/board_apps.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>
#include <vector>

#include "apps/common.hh"
#include "apps/hll.hh"
#include "rt/dms_ctl.hh"
#include "rt/partition.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "util/crc32.hh"

namespace dpu::board {

namespace {

/** Contiguous [begin, begin+count) share of @p total for @p lane. */
struct Slice
{
    std::uint64_t begin = 0;
    std::uint64_t count = 0;
};

Slice
laneSlice(std::uint64_t total, unsigned n_lanes, unsigned lane)
{
    const std::uint64_t per = (total + n_lanes - 1) / n_lanes;
    const std::uint64_t b = std::min<std::uint64_t>(total, lane * per);
    const std::uint64_t e = std::min<std::uint64_t>(total, b + per);
    return {b, e - b};
}

/** Dump @p bytes of DMEM at @p src_off to DDR @p dst, synchronous. */
void
dumpToDdr(rt::DmsCtl &ctl, std::uint16_t src_off, mem::Addr dst,
          std::uint32_t bytes)
{
    ctl.dmemToDdr().rows(bytes / 4).width(4).from(src_off).to(dst)
        .event(6).noAutoInc().push(1);
    ctl.wfe(6);
    ctl.clearEvent(6);
}

/** Per-DPU key/value table, regenerable host-side for validation. */
std::vector<std::uint32_t>
sqlTable(const ShardedSqlConfig &cfg, unsigned dpu)
{
    sim::Rng rng{cfg.seed ^ (0x9e3779b97f4a7c15ull * (dpu + 1))};
    std::vector<std::uint32_t> v(std::size_t(cfg.rowsPerDpu) * 2);
    for (std::uint32_t r = 0; r < cfg.rowsPerDpu; ++r) {
        v[r] = std::uint32_t(rng.next());            // key column
        v[cfg.rowsPerDpu + r] = std::uint32_t(rng.below(1 << 16));
    }
    return v;
}

} // namespace

ShardedSqlResult
runShardedSql(Board &b, const ShardedSqlConfig &cfg)
{
    ShardedSqlResult res;
    const unsigned n = b.nDpus();
    sim_assert(sqlPartitions % n == 0,
               "board size %u must divide the %u-way partition "
               "fan-out (owner cores map 1:1)",
               n, sqlPartitions);
    const std::uint32_t rows = cfg.rowsPerDpu;
    const std::uint32_t stride = rows * 4;
    const std::uint16_t buf_bytes = 1024 + 4;

    // DDR layout, identical on every DPU. Staging slots carry 4x
    // the mean partition share plus slack so a skewed CRC split
    // cannot overrun (P(>4x mean) is negligible at these sizes).
    const mem::Addr table_base = 0x100000;
    const std::uint64_t slot =
        apps::alignUp(std::uint64_t(rows) / sqlPartitions * 8 * 4 +
                          4096,
                      4096);
    const mem::Addr stage_base =
        apps::alignUp(table_base + std::uint64_t(rows) * 8 + 65536,
                      4096);
    const mem::Addr recv_base = stage_base + sqlPartitions * slot;
    const mem::Addr partial_base =
        recv_base + std::uint64_t(n) * sqlPartitions * slot;
    const std::uint64_t ddr_need =
        partial_base + sqlPartitions * std::uint64_t(n) * 16 + 8192;
    sim_assert(ddr_need <= b.dpu(0).params().ddrBytes,
               "sharded SQL layout needs %llu MB of DDR per DPU",
               (unsigned long long)(ddr_need >> 20));

    // ------------------------------------------------------------
    // Stage each DPU's table slice (host-side, functional).
    // ------------------------------------------------------------
    for (unsigned d = 0; d < n; ++d)
        apps::stage(b.dpu(d), table_base, sqlTable(cfg, d));

    // Host-side control metadata: per (dpu, partition) row counts
    // observed by the consumers, and the counts announced to owners
    // by doorbell RPCs.
    std::vector<std::uint64_t> counts(std::size_t(n) * sqlPartitions,
                                      0);
    std::vector<std::uint64_t> recvCounts(
        std::size_t(n) * n * sqlPartitions, 0);
    // One byte per slot, not vector<bool>: the doorbell handlers run
    // on the owning DPU's partition, and bit-packing would let two
    // owners' writes share a byte.
    std::vector<std::uint8_t> recvSeen(
        std::size_t(n) * n * sqlPartitions, 0);

    // ------------------------------------------------------------
    // Phase A: every DPU hash-partitions its slice 32 ways; each
    // consumer core drains its partition ring to a DDR staging slot.
    // ------------------------------------------------------------
    for (unsigned d = 0; d < n; ++d) {
        soc::Soc *s = &b.dpu(d);
        for (unsigned id = 0; id < sqlPartitions; ++id) {
            s->start(id, [&counts, s, d, id, table_base, stride,
                          rows, buf_bytes, stage_base,
                          slot](core::DpCore &c) {
                rt::DmsCtl ctl(c, s->dmsFor(id));
                if (id == 0) {
                    rt::PartitionJob job;
                    job.table = table_base;
                    job.nRows = rows;
                    job.nCols = 2;
                    job.colWidth = 4;
                    job.colStride = stride;
                    job.chunkRows = 128;
                    job.dstBufBytes = buf_bytes;
                    rt::runPartition(ctl, job);
                }
                const mem::Addr dst = stage_base + id * slot;
                std::uint64_t got = 0;
                rt::consumePartition(
                    ctl, 0, buf_bytes, 2, 16,
                    [&](std::uint32_t off, std::uint32_t nrows) {
                        // Stage the sealed buffer's tuples behind
                        // the previous ones, synchronously (the
                        // ring slot is reused after return).
                        ctl.dmemToDdr()
                            .rows(nrows * 2)
                            .width(4)
                            .from(off)
                            .to(dst + got * 8)
                            .event(9)
                            .noAutoInc()
                            .push(1);
                        ctl.wfe(9);
                        ctl.clearEvent(9);
                        got += nrows;
                        c.dualIssue(nrows, nrows);
                    });
                counts[d * sqlPartitions + id] = got;
                if (id == 0) {
                    ctl.wfe(30);
                    ctl.clearEvent(30);
                }
            });
        }
    }
    b.run();
    if (!b.allFinished())
        return res;

    // ------------------------------------------------------------
    // Exchange: ship every non-owned partition to its owner, then
    // announce the row count with a doorbell RPC. The DMA layer
    // retries link drops; a lost doorbell is recovered from the
    // host's control metadata after the exchange drains.
    // ------------------------------------------------------------
    for (unsigned o = 0; o < n; ++o) {
        b.fabric().onRpc(o, [&recvCounts, &recvSeen, n,
                             o](unsigned src, std::uint64_t payload) {
            const unsigned part = unsigned(payload >> 48);
            const std::uint64_t cnt =
                payload & ((1ull << 48) - 1);
            recvCounts[(std::uint64_t(o) * n + src) *
                           sqlPartitions +
                       part] = cnt;
            recvSeen[(std::uint64_t(o) * n + src) * sqlPartitions +
                     part] = 1;
        });
    }

    // DMA completions run on the source chip's partition: give each
    // source its own failure tally and sum after the run.
    std::vector<std::uint64_t> dmaFails(n, 0);
    for (unsigned d = 0; d < n; ++d) {
        for (unsigned p = 0; p < sqlPartitions; ++p) {
            const unsigned o = p % n;
            if (o == d)
                continue;
            const std::uint64_t cnt =
                counts[d * sqlPartitions + p];
            const mem::Addr dst =
                recv_base +
                (std::uint64_t(d) * sqlPartitions + p) * slot;
            if (cnt == 0) {
                // Nothing to ship; the doorbell alone announces
                // the empty partition.
                b.fabric().sendRpc(
                    d, o, (std::uint64_t(p) << 48) | 0);
                continue;
            }
            b.dma(d, stage_base + p * slot, o, dst, cnt * 8,
                  [&b, fail = &dmaFails[d], d, o, p, cnt](bool ok) {
                      if (!ok) {
                          ++*fail;
                          return;
                      }
                      b.fabric().sendRpc(
                          d, o,
                          (std::uint64_t(p) << 48) | cnt);
                  });
        }
    }
    b.run();
    for (std::uint64_t f : dmaFails)
        if (f)
            return res; // link gave up past its retry budget

    // Doorbells lost to link.drop: the offload driver falls back to
    // its own dispatch bookkeeping (it staged the transfers).
    for (unsigned o = 0; o < n; ++o) {
        for (unsigned d = 0; d < n; ++d) {
            if (o == d)
                continue;
            for (unsigned p = 0; p < sqlPartitions; ++p) {
                if (p % n != o)
                    continue;
                const std::size_t ri =
                    (std::uint64_t(o) * n + d) * sqlPartitions + p;
                if (!recvSeen[ri]) {
                    ++res.doorbellsLost;
                    recvCounts[ri] = counts[d * sqlPartitions + p];
                }
            }
        }
    }

    // ------------------------------------------------------------
    // Phase B: owners aggregate COUNT/SUM per (partition, source)
    // region — one core per region keeps all 32 cores of every
    // owner busy at any board size.
    // ------------------------------------------------------------
    for (unsigned o = 0; o < n; ++o) {
        soc::Soc *s = &b.dpu(o);
        std::vector<unsigned> owned;
        for (unsigned p = 0; p < sqlPartitions; ++p)
            if (p % n == o)
                owned.push_back(p);
        for (unsigned k = 0; k < unsigned(owned.size()) * n; ++k) {
            const unsigned p = owned[k / n];
            const unsigned src = k % n;
            const std::uint64_t nrows =
                src == o
                    ? counts[o * sqlPartitions + p]
                    : recvCounts[(std::uint64_t(o) * n + src) *
                                     sqlPartitions +
                                 p];
            const mem::Addr region =
                src == o
                    ? stage_base + p * slot
                    : recv_base +
                          (std::uint64_t(src) * sqlPartitions + p) *
                              slot;
            const mem::Addr out =
                partial_base + (std::uint64_t(p) * n + src) * 16;
            s->start(k, [s, nrows, region, out](core::DpCore &c) {
                rt::DmsCtl ctl(c, s->dmsFor(c.id()));
                std::uint64_t cnt = 0, sum = 0;
                if (nrows) {
                    rt::StreamReader in(ctl, region, nrows * 8, 0,
                                        2048, 2, 0, 0);
                    in.forEach([&](std::uint32_t off,
                                   std::uint32_t blen) {
                        for (std::uint32_t i = 0; i < blen; i += 8) {
                            sum += c.dmem().load<std::uint32_t>(
                                off + i + 4);
                            ++cnt;
                        }
                        c.dualIssue(blen / 8 * 2, blen / 8 * 2);
                    });
                }
                c.dmem().store<std::uint64_t>(0x6000, cnt);
                c.dmem().store<std::uint64_t>(0x6008, sum);
                c.dualIssue(4, 4);
                dumpToDdr(ctl, 0x6000, out, 16);
            });
        }
    }
    b.run();
    if (!b.allFinished())
        return res;

    res.rows = std::uint64_t(rows) * n;
    res.seconds = b.seconds();
    res.bytesShipped = b.fabric().bytesCarried();
    res.peakLinkUtilization = b.fabric().peakUtilization();

    // ------------------------------------------------------------
    // Host reference: replay every table, partition by the same
    // CRC32 radix the hash engine applies, and compare the owners'
    // partial aggregates bit-exactly.
    // ------------------------------------------------------------
    std::vector<std::uint64_t> expCnt(sqlPartitions, 0);
    std::vector<std::uint64_t> expSum(sqlPartitions, 0);
    for (unsigned d = 0; d < n; ++d) {
        auto t = sqlTable(cfg, d);
        for (std::uint32_t r = 0; r < rows; ++r) {
            const unsigned p =
                util::crc32Key(t[r]) & (sqlPartitions - 1);
            ++expCnt[p];
            expSum[p] += t[rows + r];
        }
    }
    for (unsigned p = 0; p < sqlPartitions; ++p) {
        const unsigned o = p % n;
        std::uint64_t cnt = 0, sum = 0;
        for (unsigned src = 0; src < n; ++src) {
            auto part = apps::unstage<std::uint64_t>(
                b.dpu(o),
                partial_base + (std::uint64_t(p) * n + src) * 16, 2);
            cnt += part[0];
            sum += part[1];
        }
        if (cnt != expCnt[p] || sum != expSum[p])
            return res;
    }
    res.valid = true;
    return res;
}

// ----------------------------------------------------------------
// Distributed HLL
// ----------------------------------------------------------------

namespace {

/** Per-DPU element stream (same distinct pool on every DPU). */
apps::HllConfig
hllGen(const DistHllConfig &cfg, unsigned dpu)
{
    apps::HllConfig g;
    g.nElements = cfg.elementsPerDpu;
    g.cardinality = cfg.cardinality;
    g.pBits = cfg.pBits;
    g.seed = cfg.seed ^ (0xd15c0ull * (dpu + 1));
    return g;
}

/** The kernel's CRC64 composition, replayed host-side. */
std::uint64_t
crcMix(std::uint64_t e)
{
    const std::uint32_t lo = util::crc32Key64(e);
    const std::uint32_t hi =
        util::crc32Key(lo ^ std::uint32_t(e >> 32));
    return (std::uint64_t(hi) << 32) | lo;
}

} // namespace

DistHllResult
runDistributedHll(Board &b, const DistHllConfig &cfg)
{
    DistHllResult res;
    const unsigned n = b.nDpus();
    const std::uint32_t m = 1u << cfg.pBits;
    sim_assert(m <= 4096, "board HLL keeps the sketch in DMEM");
    sim_assert(cfg.nLanes >= 1 && cfg.nLanes <= 32,
               "board HLL lanes must fit one DPU");

    const mem::Addr data_base = 0x100000;
    const mem::Addr lane_regs = apps::alignUp(
        data_base + cfg.elementsPerDpu * 8 + 4096, 4096);
    const mem::Addr dpu_sketch =
        apps::alignUp(lane_regs + std::uint64_t(cfg.nLanes) * m,
                      4096);
    const mem::Addr recv_sketch = dpu_sketch + apps::alignUp(m, 4096);
    const mem::Addr final_sketch =
        recv_sketch + apps::alignUp(std::uint64_t(n) * m, 4096);
    sim_assert(final_sketch + m <= b.dpu(0).params().ddrBytes,
               "board HLL layout overruns DDR");

    for (unsigned d = 0; d < n; ++d)
        apps::stage(b.dpu(d), data_base,
                    apps::hlldetail::makeElements(hllGen(cfg, d)));

    // ------------------------------------------------------------
    // Phase 1: per-lane sketches (CRC32 + NTZ, Section 5.4).
    // ------------------------------------------------------------
    for (unsigned d = 0; d < n; ++d) {
        soc::Soc *s = &b.dpu(d);
        for (unsigned lane = 0; lane < cfg.nLanes; ++lane) {
            s->start(lane, [s, lane, cfg, m, data_base,
                            lane_regs](core::DpCore &c) {
                const Slice sl = laneSlice(cfg.elementsPerDpu,
                                           cfg.nLanes, lane);
                rt::DmsCtl ctl(c, s->dmsFor(c.id()));
                constexpr std::uint32_t tile = 4096;
                const std::uint32_t reg_off = 2 * tile;
                std::vector<std::uint8_t> regs(m, 0);
                if (sl.count) {
                    rt::StreamReader in(ctl, data_base + sl.begin * 8,
                                        sl.count * 8, 0, tile, 2, 0,
                                        0);
                    in.forEach([&](std::uint32_t off,
                                   std::uint32_t blen) {
                        for (std::uint32_t i = 0; i < blen; i += 8) {
                            const std::uint64_t e =
                                c.dmem().load<std::uint64_t>(off + i);
                            const std::uint32_t lo = c.crcHash64(e);
                            const std::uint32_t hi = c.crcHash(
                                lo ^ std::uint32_t(e >> 32));
                            const std::uint64_t h =
                                (std::uint64_t(hi) << 32) | lo;
                            (void)c.ntz(h << cfg.pBits | 1);
                            apps::hlldetail::update(h, cfg.pBits,
                                                    true, regs);
                            c.dualIssue(3, 3);
                        }
                    });
                }
                c.dmem().write(reg_off, regs.data(), m);
                c.dualIssue(m / 8, m / 8);
                dumpToDdr(ctl, std::uint16_t(reg_off),
                          lane_regs + std::uint64_t(lane) * m, m);
            });
        }
    }
    b.run();
    if (!b.allFinished())
        return res;

    // ------------------------------------------------------------
    // Phase 2: on-chip max-merge of the lane sketches (core 0).
    // ------------------------------------------------------------
    for (unsigned d = 0; d < n; ++d) {
        soc::Soc *s = &b.dpu(d);
        s->start(0, [s, cfg, m, lane_regs, dpu_sketch](
                        core::DpCore &c) {
            rt::DmsCtl ctl(c, s->dmsFor(c.id()));
            std::vector<std::uint8_t> merged(m, 0);
            std::uint64_t pos = 0;
            rt::StreamReader in(ctl, lane_regs,
                                std::uint64_t(cfg.nLanes) * m, 0,
                                2048, 2, 0, 0);
            in.forEach([&](std::uint32_t off, std::uint32_t blen) {
                for (std::uint32_t i = 0; i < blen; ++i) {
                    const std::uint8_t r =
                        c.dmem().load<std::uint8_t>(off + i);
                    std::uint8_t &cell = merged[(pos + i) % m];
                    cell = std::max(cell, r);
                }
                c.dualIssue(blen / 4, blen / 4);
                pos += blen;
            });
            const std::uint32_t out_off = 0x4000;
            c.dmem().write(out_off, merged.data(), m);
            c.dualIssue(m / 8, m / 8);
            dumpToDdr(ctl, std::uint16_t(out_off), dpu_sketch, m);
        });
    }
    b.run();
    if (!b.allFinished())
        return res;

    // ------------------------------------------------------------
    // Phase 3: ship every chip sketch to DPU 0 over the fabric
    // (DPU 0's own sketch moves locally, host-side).
    // ------------------------------------------------------------
    std::vector<std::uint64_t> dmaFails(n, 0);
    {
        std::vector<std::uint8_t> own(m);
        b.dpu(0).memory().store().read(dpu_sketch, own.data(), m);
        b.dpu(0).memory().store().write(recv_sketch, own.data(), m);
    }
    for (unsigned d = 1; d < n; ++d)
        b.dma(d, dpu_sketch, 0,
              recv_sketch + std::uint64_t(d) * m, m,
              [fail = &dmaFails[d]](bool ok) { *fail += !ok; });
    b.run();
    for (std::uint64_t f : dmaFails)
        if (f)
            return res;

    // ------------------------------------------------------------
    // Phase 4: DPU 0 merges the board sketch.
    // ------------------------------------------------------------
    {
        soc::Soc *s = &b.dpu(0);
        s->start(0, [s, n, m, recv_sketch,
                     final_sketch](core::DpCore &c) {
            rt::DmsCtl ctl(c, s->dmsFor(c.id()));
            std::vector<std::uint8_t> merged(m, 0);
            std::uint64_t pos = 0;
            rt::StreamReader in(ctl, recv_sketch,
                                std::uint64_t(n) * m, 0, 2048, 2, 0,
                                0);
            in.forEach([&](std::uint32_t off, std::uint32_t blen) {
                for (std::uint32_t i = 0; i < blen; ++i) {
                    const std::uint8_t r =
                        c.dmem().load<std::uint8_t>(off + i);
                    std::uint8_t &cell = merged[(pos + i) % m];
                    cell = std::max(cell, r);
                }
                c.dualIssue(blen / 4, blen / 4);
                pos += blen;
            });
            const std::uint32_t out_off = 0x4000;
            c.dmem().write(out_off, merged.data(), m);
            c.dualIssue(m / 8, m / 8);
            dumpToDdr(ctl, std::uint16_t(out_off), final_sketch, m);
        });
    }
    b.run();
    if (!b.allFinished())
        return res;

    // ------------------------------------------------------------
    // Host reference: replay every stream through the same CRC
    // composition, merge, and compare bit-exactly.
    // ------------------------------------------------------------
    std::vector<std::uint8_t> expect(m, 0);
    std::set<std::uint64_t> distinct;
    for (unsigned d = 0; d < n; ++d) {
        auto data = apps::hlldetail::makeElements(hllGen(cfg, d));
        for (std::uint64_t e : data) {
            distinct.insert(e);
            apps::hlldetail::update(crcMix(e), cfg.pBits, true,
                                    expect);
        }
    }
    auto got =
        apps::unstage<std::uint8_t>(b.dpu(0), final_sketch, m);
    res.sketchExact = got == expect;
    res.trueDistinct = distinct.size();
    res.estimate = apps::hlldetail::estimate(got);
    res.errorFrac =
        std::abs(res.estimate - double(res.trueDistinct)) /
        double(res.trueDistinct);
    res.seconds = b.seconds();
    res.valid = res.sketchExact && res.errorFrac < 0.15;
    return res;
}

} // namespace dpu::board

#include "board/balance.hh"

#include <algorithm>

#include "board/board.hh"
#include "dms/handoff.hh"
#include "sim/logging.hh"

namespace dpu::board {

// ----------------------------------------------------------------
// LoadTracker
// ----------------------------------------------------------------

LoadTracker::LoadTracker(unsigned n_partitions)
    : counts(n_partitions, 0), totals(n_partitions, 0),
      ewma(n_partitions, 0.0)
{
    sim_assert(n_partitions >= 1,
               "load tracker needs at least one partition");
}

void
LoadTracker::record(unsigned partition)
{
    sim_assert(partition < counts.size(),
               "load recorded for unknown partition %u", partition);
    ++counts[partition];
    ++totals[partition];
}

void
LoadTracker::roll(double alpha)
{
    sim_assert(alpha > 0 && alpha <= 1,
               "EWMA alpha must be in (0, 1], got %f", alpha);
    for (std::size_t i = 0; i < counts.size(); ++i) {
        const double cur = double(counts[i]);
        // Prime with the raw first window so a cold tracker does
        // not need several windows to see an obvious hot spot.
        ewma[i] = rolls == 0 ? cur
                             : alpha * cur + (1.0 - alpha) * ewma[i];
        counts[i] = 0;
    }
    ++rolls;
}

double
LoadTracker::load(unsigned partition) const
{
    sim_assert(partition < ewma.size(),
               "load queried for unknown partition %u", partition);
    return ewma[partition];
}

std::uint64_t
LoadTracker::windowLoad(unsigned partition) const
{
    sim_assert(partition < counts.size(),
               "load queried for unknown partition %u", partition);
    return counts[partition];
}

std::uint64_t
LoadTracker::totalLoad(unsigned partition) const
{
    sim_assert(partition < totals.size(),
               "load queried for unknown partition %u", partition);
    return totals[partition];
}

// ----------------------------------------------------------------
// Planner
// ----------------------------------------------------------------

std::vector<MigrationStep>
planMigrations(const std::vector<double> &loads,
               std::vector<unsigned> &home, unsigned n_nodes,
               const PlannerParams &p,
               const std::vector<bool> &frozen)
{
    sim_assert(loads.size() == home.size(),
               "partition load/home tables disagree: %zu vs %zu",
               loads.size(), home.size());
    std::vector<MigrationStep> plan;
    if (n_nodes < 2)
        return plan;

    std::vector<double> node(n_nodes, 0.0);
    double total = 0;
    for (std::size_t part = 0; part < home.size(); ++part) {
        sim_assert(home[part] < n_nodes,
                   "partition %zu homed off the tier (node %u)",
                   part, home[part]);
        node[home[part]] += loads[part];
        total += loads[part];
    }
    const double mean = total / double(n_nodes);

    while (plan.size() < p.maxMigrationsPerWindow) {
        // Hottest node, lowest index on ties.
        unsigned src = 0;
        for (unsigned b = 1; b < n_nodes; ++b)
            if (node[b] > node[src])
                src = b;
        if (node[src] <= p.hotFactor * mean || mean <= 0)
            break;

        // Coldest node, lowest index on ties.
        unsigned dst = src == 0 ? 1 : 0;
        for (unsigned b = 0; b < n_nodes; ++b)
            if (b != src && node[b] < node[dst])
                dst = b;

        // Heaviest movable partition on src whose move strictly
        // improves the pair: the destination must stay below the
        // source's pre-move load, else the hot spot just relocates
        // (and the next window would bounce it straight back).
        int pick = -1;
        for (std::size_t part = 0; part < home.size(); ++part) {
            if (home[part] != src)
                continue;
            if (part < frozen.size() && frozen[part])
                continue;
            if (loads[part] < p.minPartitionLoad)
                continue;
            if (node[dst] + loads[part] >= node[src])
                continue;
            if (pick < 0 || loads[part] > loads[pick])
                pick = int(part);
        }
        if (pick < 0)
            break;

        MigrationStep step;
        step.partition = unsigned(pick);
        step.from = src;
        step.to = dst;
        step.load = loads[pick];
        plan.push_back(step);

        home[pick] = dst;
        node[src] -= loads[pick];
        node[dst] += loads[pick];
    }
    return plan;
}

// ----------------------------------------------------------------
// BoardBalancer
// ----------------------------------------------------------------

namespace {

/** Engine-role layouts: disjoint channels, buffers, chain windows
 *  and events, so one DPU can source and land concurrently. */
dms::HandoffExecParams
srcRole(std::uint32_t buf_bytes)
{
    dms::HandoffExecParams r;
    r.channel = 0;
    r.bufBase = 0x5000;
    r.bufBytes = std::uint16_t(buf_bytes);
    r.chainBase = 0x6000;
    r.chainBytes = 0x800;
    r.eventA = 16;
    r.eventB = 17;
    return r;
}

dms::HandoffExecParams
dstRole(std::uint32_t buf_bytes)
{
    dms::HandoffExecParams r;
    r.channel = 1;
    r.bufBase = 0x4000;
    r.bufBytes = std::uint16_t(buf_bytes);
    r.chainBase = 0x6800;
    r.chainBytes = 32; // two 16 B slots, ping/pong
    r.eventA = 18;
    r.eventB = 19;
    return r;
}

} // namespace

BoardBalancer::BoardBalancer(Board &brd_,
                             std::vector<unsigned> initial_home,
                             const BalanceParams &params)
    : brd(brd_), p(params),
      engineCore(params.engineCore == ~0u
                     ? brd_.dpu(0).nCores() - 1
                     : params.engineCore),
      track(unsigned(initial_home.size())),
      home(std::move(initial_home)),
      frozen(home.size(), false), inflight(home.size(), nullptr),
      stats("board.balance")
{
    sim_assert(p.window > 0, "balancer built with window = 0");
    sim_assert(!home.empty(), "balancer needs key partitions");
    sim_assert(p.stateBytesPerPartition > 0 &&
                   p.stateBytesPerPartition % 8 == 0,
               "partition state bytes must be a positive multiple "
               "of the column width");
    sim_assert(p.stagingBufBytes > 0 && p.stagingBufBytes <= 2048,
               "staging buffer must be 1..2048 bytes");
    sim_assert(engineCore < brd.dpu(0).nCores(),
               "engine core %u off the chip", engineCore);

    engines.resize(brd.nDpus());
    for (unsigned d = 0; d < brd.nDpus(); ++d) {
        soc::Soc &chip = brd.dpu(d);
        const unsigned local =
            engineCore % chip.params().coresPerComplex;
        dms::Dms &dms = chip.dmsFor(engineCore);
        mem::Dmem &dmem = chip.core(engineCore).dmem();
        engines[d].exec = std::make_unique<dms::HandoffExec>(
            dms, local, dmem, srcRole(p.stagingBufBytes));
        engines[d].lander = std::make_unique<dms::HandoffLander>(
            dms, local, dmem, dstRole(p.stagingBufBytes));
    }

    for (unsigned part = 0; part < home.size(); ++part) {
        sim_assert(home[part] < brd.nDpus(),
                   "partition %u homed off the board", part);
        seedState(part, home[part]);
    }

    stats.addFlushHook([this] { foldStats(); });
}

BoardBalancer::~BoardBalancer() = default;

std::uint8_t
BoardBalancer::statePattern(unsigned part, std::uint64_t i)
{
    return std::uint8_t(0x5A ^ (part * 131) ^ (i * 0x9E) ^ (i >> 8));
}

mem::Addr
BoardBalancer::stateAddr(unsigned part) const
{
    return p.stateBase + mem::Addr(part) * p.stateBytesPerPartition;
}

unsigned
BoardBalancer::homeOf(unsigned part) const
{
    sim_assert(part < home.size(), "unknown partition %u", part);
    return home[part];
}

void
BoardBalancer::seedState(unsigned part, unsigned dpu)
{
    std::vector<std::uint8_t> img(p.stateBytesPerPartition);
    for (std::uint64_t i = 0; i < img.size(); ++i)
        img[i] = statePattern(part, i);
    brd.dpu(dpu).memory().store().write(stateAddr(part), img.data(),
                                        img.size());
}

std::vector<std::uint8_t>
BoardBalancer::stateImage(unsigned part) const
{
    sim_assert(part < home.size(), "unknown partition %u", part);
    std::vector<std::uint8_t> img(p.stateBytesPerPartition);
    const_cast<Board &>(brd)
        .dpu(home[part])
        .memory()
        .store()
        .read(stateAddr(part), img.data(), img.size());
    return img;
}

bool
BoardBalancer::srcPoisoned(unsigned dpu) const
{
    return engines[dpu].srcPoisoned;
}

bool
BoardBalancer::dstPoisoned(unsigned dpu) const
{
    return engines[dpu].dstPoisoned;
}

bool
BoardBalancer::migrationsActive() const
{
    for (const auto &m : migrations)
        if (m->state == MigState::Active)
            return true;
    return false;
}

void
BoardBalancer::record(unsigned part)
{
    track.record(part);
    Migration *m = inflight[part];
    if (!m)
        return;
    // Forwarding epoch: the request lands at the old home (the map
    // has not flipped); ship its delta to the new home so the moved
    // state stays current. Host-phase send — deterministic, and the
    // delivery tick is at least one hop into the next segment.
    ++rep.forwarded;
    rep.deltaBytes += p.deltaBytesPerRequest;
    bool dropped = false;
    const sim::Tick at = brd.fabric().startBulk(
        m->from, m->to, p.deltaBytesPerRequest, dropped,
        LinkTraffic::Migration);
    if (dropped) {
        ++rep.deltaDropped; // deltas are best-effort, like PR-8
        return;
    }
    brd.fabric().postDelivery(m->from, m->to, at, [] {});
}

void
BoardBalancer::launch(const MigrationStep &step, sim::Tick boundary)
{
    auto owned = std::make_unique<Migration>();
    Migration &m = *owned;
    m.part = step.partition;
    m.from = step.from;
    m.to = step.to;
    m.launchedAt = boundary;
    m.plan = dms::planRangeHandoff(stateAddr(m.part),
                                   p.stateBytesPerPartition,
                                   p.stagingBufBytes, 8);
    m.chunks = unsigned(m.plan.chunks.size());
    m.gen = engines[m.to].lander->expect(m.chunks);

    frozen[m.part] = true;
    inflight[m.part] = &m;
    engines[m.from].srcBusy = true;
    engines[m.to].dstBusy = true;
    ++rep.planned;

    // Execution starts inside the kernel, on the source partition.
    brd.eventQueue(m.from).schedule(
        boundary, [this, mp = &m] { srcStart(*mp); },
        sim::EvTag::Link);
    migrations.push_back(std::move(owned));
}

void
BoardBalancer::srcStart(Migration &m)
{
    engines[m.from].exec->start(
        m.plan, [this, mp = &m](unsigned chunk, bool error) {
            onChunkStaged(*mp, chunk, error);
        });
}

void
BoardBalancer::onChunkStaged(Migration &m, unsigned chunk,
                             bool error)
{
    dms::HandoffExec &exec = *engines[m.from].exec;
    if (error) {
        // dms.descError: the buffer is garbage. Keep draining the
        // chain (every chunk must be released) but ship nothing
        // more; the migration aborts once the engines empty.
        m.srcFailed = true;
        exec.release(chunk);
        return;
    }
    // Snapshot the staged bytes before releasing the buffer to the
    // chain (the next descriptor overwrites it).
    const dms::HandoffChunk &hc = m.plan.chunks[chunk];
    auto payload = std::make_shared<std::vector<std::uint8_t>>(
        hc.bytes());
    const dms::HandoffExecParams &role = exec.params();
    brd.dpu(m.from).core(engineCore).dmem().read(
        role.bufBase + (chunk & 1) * role.bufBytes, payload->data(),
        payload->size());
    exec.release(chunk);
    ship(m, chunk, std::move(payload),
         1 + brd.params().dmaRetries);
}

void
BoardBalancer::ship(Migration &m, unsigned chunk,
                    std::shared_ptr<std::vector<std::uint8_t>>
                        payload,
                    unsigned attempts)
{
    if (m.srcFailed)
        return; // a sibling chunk exhausted its retries; give up
    bool dropped = false;
    const sim::Tick at = brd.fabric().startBulk(
        m.from, m.to, payload->size(), dropped,
        LinkTraffic::Migration);
    if (!dropped) {
        const mem::Addr ddr = m.plan.chunks[chunk].ddrAddr;
        const std::uint8_t width = m.plan.chunks[chunk].colWidth;
        brd.fabric().postDelivery(
            m.from, m.to, at,
            [this, mp = &m, chunk, ddr, width,
             payload = std::move(payload)] {
                engines[mp->to].lander->deliver(mp->gen, chunk, ddr,
                                                *payload, width);
            });
        return;
    }
    ++m.srcRetries;
    if (attempts <= 1) {
        m.srcFailed = true; // retransmit budget exhausted
        return;
    }
    // Retransmit from the snapshot once the wire time is burned.
    brd.eventQueue(m.from).schedule(
        at,
        [this, mp = &m, chunk, payload = std::move(payload),
         attempts] { ship(*mp, chunk, payload, attempts - 1); },
        sim::EvTag::Link);
}

void
BoardBalancer::harvest(sim::Tick boundary)
{
    std::uint64_t stale = 0;
    for (const Engines &e : engines)
        stale += e.lander->staleDeliveries();
    rep.staleDeliveries = stale;

    for (auto &owned : migrations) {
        Migration &m = *owned;
        if (m.state != MigState::Active)
            continue;
        Engines &se = engines[m.from];
        Engines &de = engines[m.to];
        dms::HandoffLander &lander = *de.lander;

        if (!m.srcFailed && lander.landed() == m.chunks) {
            // Commit: every chunk landed in the destination DDR.
            // Flip the single partition AFTER the hook (the router
            // observes the old home while it runs, mirroring the
            // PR-8 drain-then-switch order).
            if (commitHook)
                commitHook(m.part, m.from, m.to);
            home[m.part] = m.to;
            frozen[m.part] = false;
            inflight[m.part] = nullptr;
            se.srcBusy = false;
            de.dstBusy = false;
            m.state = MigState::Committed;
            ++rep.committed;
            rep.chunkRetries += m.srcRetries;
            rep.stateBytes += m.plan.totalBytes();
            continue;
        }

        if (boundary >= m.launchedAt + p.migrationTimeout) {
            // A wedged DMAC never completes its descriptor: the
            // staging chain (or the landing slot) is stuck for
            // good. Poison the involved engine roles so no later
            // plan touches them; the partition stays home.
            lander.cancel();
            se.srcPoisoned = true;
            de.dstPoisoned = true;
            frozen[m.part] = false;
            inflight[m.part] = nullptr;
            m.state = MigState::Aborted;
            ++rep.aborted;
            ++rep.timeoutAborts;
            rep.chunkRetries += m.srcRetries;
            continue;
        }

        if (m.srcFailed && !se.exec->active() && !lander.busy()) {
            // Clean abort: retransmits exhausted (or a descError
            // poisoned the staging chain) and both engines have
            // drained. The partition stays home; the planner may
            // retry it next window.
            lander.cancel();
            frozen[m.part] = false;
            inflight[m.part] = nullptr;
            se.srcBusy = false;
            de.dstBusy = false;
            m.state = MigState::Aborted;
            ++rep.aborted;
            rep.chunkRetries += m.srcRetries;
            continue;
        }
    }
}

void
BoardBalancer::onWindowBoundary(sim::Tick boundary)
{
    harvest(boundary);
    track.roll(p.ewmaAlpha);
    if (draining)
        return;

    // Plan on a scratch copy: the live map only flips at commit.
    std::vector<unsigned> scratch = home;
    const std::vector<MigrationStep> steps = planMigrations(
        track.loads(), scratch, brd.nDpus(), p.planner(), frozen);
    for (const MigrationStep &s : steps) {
        Engines &se = engines[s.from];
        Engines &de = engines[s.to];
        if (se.srcBusy || se.srcPoisoned || de.dstBusy ||
            de.dstPoisoned)
            continue; // engine role occupied; retry next window
        if (brd.dpu(s.from).dmsFor(engineCore).dmac().hung() ||
            brd.dpu(s.to).dmsFor(engineCore).dmac().hung())
            continue; // wedged DMAC cannot run a hand-off
        launch(s, boundary);
    }
}

void
BoardBalancer::foldStats()
{
    std::uint64_t stale = 0;
    for (const Engines &e : engines)
        stale += e.lander->staleDeliveries();
    rep.staleDeliveries = stale;
    if (rep.planned) {
        stats.counter("planned") = rep.planned;
        stats.counter("committed") = rep.committed;
        stats.counter("aborted") = rep.aborted;
        stats.counter("stateBytes") = rep.stateBytes;
    }
    if (rep.timeoutAborts)
        stats.counter("timeoutAborts") = rep.timeoutAborts;
    if (rep.chunkRetries)
        stats.counter("chunkRetries") = rep.chunkRetries;
    if (rep.forwarded) {
        stats.counter("forwarded") = rep.forwarded;
        stats.counter("deltaBytes") = rep.deltaBytes;
    }
    if (rep.deltaDropped)
        stats.counter("deltaDropped") = rep.deltaDropped;
    if (rep.staleDeliveries)
        stats.counter("staleDeliveries") = rep.staleDeliveries;
}

} // namespace dpu::board

/**
 * @file
 * Inter-board rack network timing model.
 *
 * The paper's deployment put 500+ DPUs behind an Infiniband fabric
 * (Section 6); a rack here is N boards fed by one front-end over a
 * network that is slower and fatter-grained than the intra-board
 * LinkFabric: a few microseconds of stack+switch latency per
 * message instead of 600 ns, and a per-board ingress pipe instead
 * of an all-pairs channel matrix.
 *
 * The model is intentionally host-phase only. Rack routing is
 * static — every request's destination board and delivery tick are
 * decided at enqueue time, before any board simulates a single
 * event — so the network never needs to schedule into a board's
 * event-queue partitions. Each board has one ingress channel with
 * the same store-and-forward shape as the board links:
 *
 *   txStart  = max(arrival, channel.nextFree)
 *   txDone   = txStart + serialization(bytes)
 *   delivery = txDone + hopLatency [+ rack.netDelay magnitude]
 *
 * so a burst aimed at one board queues behind itself while other
 * boards' ingress pipes stay clear. Because delivery ticks are
 * computed in admission order in the host phase, the whole rack
 * schedule stays a pure function of the trace: bit-identical at
 * any --threads count.
 *
 * Faults ride the process-wide plane (sim/fault.hh), domain 0 —
 * admission runs in the host phase, in a fixed order, so the
 * decisions replay exactly: `rack.netDrop` loses a request after
 * it burned its wire time (the scheduler fails over to the next
 * replica), `rack.netDelay` adds `mag` ticks to one delivery. The
 * fault `unit` is the destination board.
 *
 * Everything lands in the "racknet" StatGroup: aggregate msgs /
 * bytes / drops / delays plus per-board ingress bytes and busy
 * ticks, from which utilization() derives occupancy. Accounting
 * follows the xfer_stat idiom — carried vs lost vs migration
 * traffic are tracked per channel: a dropped message burns wire
 * time (nextFree still advances, so later deliveries queue behind
 * it) but its bytes land in dropBytes, never in bytes /
 * busyTicks / bytesCarried(), so utilization and carried-byte
 * stats describe traffic that actually reached a board. Partition
 * hand-offs (rack/balance.hh) tag their transfers Migration and
 * are broken out as migBytes on top of the carried totals.
 */

#ifndef DPU_RACK_NET_HH
#define DPU_RACK_NET_HH

#include <cstdint>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace dpu::rack {

/** Rack network knobs (defaults: a 4 GB/s ingress pipe per board
 *  behind ~5 us of fabric+stack latency). */
struct NetParams
{
    /** Switch traversal + NIC + driver stack per message. */
    sim::Tick hopLatency = sim::Tick(5'000'000); // 5 us
    /** Per-board ingress serialization bandwidth. */
    double gbPerSec = 4.0;
    /** Minimum wire occupancy per message (header + RDMA setup). */
    std::uint32_t flitBytes = 256;
};

/** What a rack message carries (xfer_stat-style breakdown). */
enum class NetTraffic : std::uint8_t
{
    Request,   ///< front-end request payloads
    Migration, ///< partition-state hand-offs (rack/balance.hh)
    Probe,     ///< health-monitor heartbeats (rack/health.hh)
};

/** N per-board ingress channels behind one front-end. */
class RackNet
{
  public:
    RackNet(unsigned n_boards, const NetParams &params);

    unsigned size() const { return n; }
    const NetParams &params() const { return p; }

    /**
     * Carry @p bytes of @p cls traffic to board @p dst, arriving
     * at the front-end at tick @p now. @return the delivery tick
     * at the board's host; @p dropped reports a rack.netDrop
     * firing (wire time spent, payload lost — the caller owns
     * failover / migration abort). Host-phase only. Calls should
     * come in roughly nondecreasing @p now order; locally
     * out-of-order sends (e.g. failover-penalty retries landing
     * behind later arrivals) are tolerated — tx starts at
     * max(now, nextFree), so the channel never rewinds.
     */
    sim::Tick deliver(unsigned dst, std::uint64_t bytes,
                      sim::Tick now, bool &dropped,
                      NetTraffic cls = NetTraffic::Request);

    /**
     * Ticks the board @p dst ingress pipe is already committed
     * past @p now (queued serialization of earlier messages). The
     * brown-out controller uses it to predict a request's delivery
     * delay from observable front-end state.
     */
    sim::Tick backlog(unsigned dst, sim::Tick now) const;

    /** Wire (serialization) ticks @p bytes would occupy. */
    sim::Tick wireTicks(std::uint64_t bytes) const
    {
        return serTicks(bytes);
    }

    /** Fraction of [0, end] the board @p dst ingress pipe spent
     *  serializing traffic that was actually delivered. */
    double utilization(unsigned dst, sim::Tick end) const;

    /** Busiest ingress pipe's utilization over [0, end]. */
    double peakUtilization(sim::Tick end) const;

    /** Bytes delivered to boards (dropped payloads excluded). */
    std::uint64_t bytesCarried() const;
    /** Bytes lost to rack.netDrop (wire time burned, not carried). */
    std::uint64_t droppedBytes() const;
    /** Carried bytes that were partition-migration payload. */
    std::uint64_t migrationBytes() const;
    /** Carried bytes that were health-probe payload. */
    std::uint64_t probeBytes() const;
    /** Delivery attempts, dropped ones included. */
    std::uint64_t messages() const;
    std::uint64_t drops() const;

    sim::StatGroup &statGroup() { return stats; }

  private:
    /** One board's ingress channel. */
    struct Channel
    {
        sim::Tick nextFree = 0;
        sim::Tick busyTicks = 0; ///< carried traffic only
        std::uint64_t bytes = 0; ///< carried traffic only
        std::uint64_t msgs = 0;
        std::uint64_t drops = 0;
        std::uint64_t delays = 0;
        /** Wire time / payload burned by dropped messages. */
        sim::Tick dropTicks = 0;
        std::uint64_t dropBytes = 0;
        /** Carried migration traffic (subset of bytes/msgs). */
        std::uint64_t migBytes = 0;
        std::uint64_t migMsgs = 0;
        /** Carried heartbeat traffic (subset of bytes/msgs). */
        std::uint64_t probeBytes = 0;
        std::uint64_t probeMsgs = 0;
    };

    /** Wire ticks for @p bytes at the configured bandwidth. */
    sim::Tick serTicks(std::uint64_t bytes) const;

    /** Fold the channel tallies into the StatGroup cells. */
    void foldStats();

    unsigned n;
    NetParams p;
    std::vector<Channel> chans;
    sim::StatGroup stats;
};

} // namespace dpu::rack

#endif // DPU_RACK_NET_HH

#include "rack/rack.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dpu::rack {

Rack::Rack(const RackParams &params)
    : p(params), network(p.nBoards, p.net)
{
    sim_assert(p.nBoards >= 1, "a rack carries at least one board");
    boards.reserve(p.nBoards);
    for (unsigned b = 0; b < p.nBoards; ++b)
        boards.push_back(std::make_unique<board::Board>(p.board));
}

sim::Tick
Rack::run()
{
    // Sequential in board order: boards only interact at admission
    // time (host phase), so ordering their runs is a presentation
    // choice, not a synchronization one — see the file header.
    for (auto &b : boards)
        rackNow = std::max(rackNow, b->run());
    return rackNow;
}

bool
Rack::allFinished() const
{
    for (const auto &b : boards)
        if (!b->allFinished())
            return false;
    return true;
}

} // namespace dpu::rack

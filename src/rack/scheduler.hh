/**
 * @file
 * Rack-level request scheduling: placement, replica routing with
 * failover, bounded cluster admission, and live rebalancing.
 *
 * The front-end owns four decisions per request, all made at
 * admission time (host phase), which keeps the whole rack
 * bit-deterministic (see rack/rack.hh):
 *
 *  1. Placement — the request's key hashes onto one of
 *     `keyPartitions` key-range partitions; the partition selects a
 *     board through a mutable host::PartitionRouter map whose
 *     default is bit-identical to the replica-group hash policy
 *     (host/router.hh), so a rack that never rebalances routes
 *     exactly as before. The replication factor only widens the
 *     failover list.
 *
 *  2. Routing with failover — the candidates are tried in order: a
 *     board inside a `rack.boardDown` fault window is skipped, a
 *     board whose admission window is full is skipped, and a
 *     request the network drops (`rack.netDrop`) fails over to the
 *     next replica, paying a fresh network transit. A request that
 *     exhausts its replicas is rejected at the front-end.
 *
 *  3. Bounded admission — per-board sliding-window rate cap
 *     (admitPerWindow requests per admitWindow ticks): a request at
 *     tick T is shed when admitPerWindow admissions already landed
 *     in the half-open window (T - admitWindow, T]. The per-DPU
 *     OffloadScheduler queue bound still applies underneath once
 *     the board simulates.
 *
 *  4. Rebalancing (balance.window > 0) — every arrival first
 *     advances the balancer clock: partition loads roll into EWMAs
 *     at each window boundary, planMigrations() (rack/balance.hh)
 *     picks moves off hot boards, and each move ships its partition
 *     state to the new home over the RackNet as Migration traffic.
 *     The transfer's delivery tick opens a *forwarding epoch*: the
 *     partition map is left pointing at the source, arrivals keep
 *     draining there (counted as forwarded, each shipping a small
 *     delta to the destination), and only when an arrival finds the
 *     transfer delivered does the map flip — drain-then-switch, so
 *     no in-flight job is ever lost or duplicated. A transfer the
 *     network drops aborts its migration: the partition simply
 *     stays where it was (fault-safe, retried at a later window).
 *     Because every decision happens at enqueue time in trace
 *     order, rebalancing is bit-identical at any --threads count.
 *
 * Inside a board the request is routed to a DPU by the board's own
 * BoardScheduler policy (hash), and everything from PR 2-6 applies:
 * deadlines, reaping, quarantine, availability accounting.
 *
 * summary() folds the per-board serving summaries into one rack
 * view (host/summary.hh: submitted-weighted availability, rank
 * percentiles) and adds the front-end counters plus the headline
 * "users served per simulated second".
 */

#ifndef DPU_RACK_SCHEDULER_HH
#define DPU_RACK_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "host/board_offload.hh"
#include "host/router.hh"
#include "rack/balance.hh"
#include "rack/rack.hh"

namespace dpu::rack {

/** Placement / admission / rebalancing knobs. */
struct PlacementParams
{
    /** Key-range partitions the key space hashes onto. */
    unsigned keyPartitions = 64;
    /** Boards per replica group (clamped to the board count). */
    unsigned replication = 2;
    /** Admission window length; 0 disables the front-end cap. */
    sim::Tick admitWindow = 0;
    /** Requests admitted per board per window (with admitWindow). */
    unsigned admitPerWindow = 0;
    /** Hot-shard balancer; balance.window = 0 keeps it off. */
    BalanceParams balance{};
};

/** One front-end request: a serving job plus its placement key. */
struct RackRequest
{
    host::JobRequest job;
    /** Placement key (user / row id); drives the replica group. */
    std::uint64_t key = 0;
    /** Request payload carried over the rack network. */
    std::uint64_t bytes = 2048;
};

/** Front-end verdict for one request. */
enum class AdmitResult : std::uint8_t
{
    Admitted,   ///< delivered to a board scheduler
    Rejected,   ///< every replica's admission window was full
    BoardsDown, ///< every replica inside a boardDown window
    NetLost,    ///< dropped by the network on every replica
};

/** Rack-wide aggregate (valid after the rack has run). */
struct RackSummary
{
    host::ServingSummary serving; ///< folded over all boards
    std::uint64_t offered = 0;    ///< enqueueAt calls
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;   ///< admission-window rejects
    std::uint64_t boardsDown = 0; ///< lost to board outages
    std::uint64_t netLost = 0;    ///< lost to network drops
    std::uint64_t failovers = 0;  ///< non-primary deliveries
    // Balancer activity (all zero with balance.window = 0).
    std::uint64_t migStarted = 0;
    std::uint64_t migCommitted = 0;
    std::uint64_t migAborted = 0;  ///< transfer dropped in flight
    std::uint64_t forwarded = 0;   ///< drained at src mid-migration
    std::uint64_t migrationBytes = 0; ///< carried hand-off payload
    std::uint64_t netDroppedBytes = 0;
    /** The headline: completed requests per simulated second over
     *  the first-enqueue..last-finish window. */
    double usersPerSimSec = 0;
    /** Offered requests actually served (admission + serving). */
    double servedFraction = 0;
    double netPeakUtilization = 0;
};

/** The key-range partition @p key hashes onto (pure function). */
unsigned keyPartition(std::uint64_t key, unsigned key_partitions);

/** Default (hash) home board of @p partition — where an
 *  un-rebalanced rack places it. Pure function; lets workload
 *  generators find partitions that collide on one board. */
unsigned partitionHome(unsigned partition, unsigned n_boards);

/** The rack front-end: placement, failover, admission, balance. */
class RackScheduler
{
  public:
    /**
     * @p per_dpu parameterizes every per-DPU scheduler; its
     * statName is extended to "<statName>.b<board>.dpu<d>".
     * Board-internal routing is the hash policy.
     */
    RackScheduler(Rack &r, host::OffloadParams per_dpu,
                  PlacementParams place = {});

    unsigned nBoards() const { return rack.nBoards(); }
    host::BoardScheduler &boardScheduler(unsigned b)
    {
        return *boardScheds[b];
    }
    const PlacementParams &placement() const { return place; }

    /** The key-range partition @p key hashes onto. */
    unsigned partitionOf(std::uint64_t key) const;

    /** Current home board of @p partition (override or hash). */
    unsigned homeOf(unsigned partition) const;

    /** Primary board of @p key's replica group. */
    unsigned primaryOf(std::uint64_t key) const;

    /** @p key's replica group, failover order (primary first). */
    std::vector<unsigned> replicasOf(std::uint64_t key) const;

    /**
     * Open-loop arrival: @p req reaches the front-end at tick
     * @p when. Calls must come in nondecreasing @p when order (a
     * trace). @return the front-end verdict; on Admitted,
     * @p board_out (when non-null) reports the serving board.
     */
    AdmitResult enqueueAt(sim::Tick when, RackRequest req,
                          unsigned *board_out = nullptr);

    /** Start every board's shard schedulers (then run the rack). */
    void start();

    /** Rack-wide aggregate; valid after rack.run(). */
    RackSummary summary() const;

    // --- balancer observability (tests / benches) ---------------
    /** Smoothed load of @p partition (EWMA over windows). */
    double partitionLoad(unsigned partition) const;
    unsigned migrationsInFlight() const
    {
        return unsigned(inflight.size());
    }
    std::uint64_t migrationsStarted() const { return migStarted; }
    std::uint64_t migrationsCommitted() const
    {
        return migCommitted;
    }
    std::uint64_t migrationsAborted() const { return migAborted; }
    std::uint64_t forwardedRequests() const { return forwardedCnt; }

  private:
    /** One migration inside its forwarding epoch. */
    struct InFlight
    {
        MigrationStep step;
        sim::Tick startedAt = 0;
        sim::Tick readyAt = 0; ///< transfer delivery tick
        std::uint64_t forwardedReqs = 0;
    };

    /** True when board @p b sits in a rack.boardDown window. */
    bool boardDown(unsigned b, sim::Tick now);

    /** True when board @p b's admission window is full at @p now
     *  (advances the window). */
    bool admissionFull(unsigned b, sim::Tick now);

    /** Roll windows / plan / commit everything due by @p when. */
    void advanceBalancer(sim::Tick when);
    /** Flip the map for transfers delivered by @p when. */
    void commitReady(sim::Tick when);
    /** Ship state for @p step at @p when; open an epoch. */
    void startMigration(const MigrationStep &step, sim::Tick when);
    /** The in-flight record for @p partition, or nullptr. */
    InFlight *inflightOf(unsigned partition);

    Rack &rack;
    PlacementParams place;
    /** Mutable partition -> board map (also the replica policy). */
    std::unique_ptr<host::PartitionRouter> partMap;
    std::vector<std::unique_ptr<host::BoardScheduler>> boardScheds;
    /** Per-board admitted-request times inside the current window. */
    std::vector<std::deque<sim::Tick>> windows;
    sim::Tick lastOffer = 0;

    // Balancer state (host phase only).
    LoadTracker tracker;
    std::vector<bool> frozen;      ///< partitions mid-migration
    std::vector<InFlight> inflight;
    sim::Tick nextRollAt = 0;      ///< next window boundary; 0 = off

    // Front-end tallies (host phase only), folded into the "rack"
    // stat group by a flush hook.
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejectedCnt = 0;
    std::uint64_t boardsDownCnt = 0;
    std::uint64_t netLostCnt = 0;
    std::uint64_t failoverCnt = 0;
    std::uint64_t migStarted = 0;
    std::uint64_t migCommitted = 0;
    std::uint64_t migAborted = 0;
    std::uint64_t forwardedCnt = 0;
    std::vector<std::uint64_t> boardAdmitted;
    sim::StatGroup stats;
};

} // namespace dpu::rack

#endif // DPU_RACK_SCHEDULER_HH

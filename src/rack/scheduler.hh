/**
 * @file
 * Rack-level request scheduling: placement, replica routing with
 * failover, and bounded cluster admission.
 *
 * The front-end owns three decisions per request, all made at
 * admission time (host phase), which keeps the whole rack
 * bit-deterministic (see rack/rack.hh):
 *
 *  1. Placement — the request's key hashes onto one of
 *     `keyPartitions` key-range partitions; the partition selects a
 *     replica group through the shared host::Router replica-group
 *     policy (host/router.hh), so group membership is a pure
 *     function of the key and the board count — independent of the
 *     per-board DPU count and of the replication factor, which
 *     only widens the failover list.
 *
 *  2. Routing with failover — the group's boards are tried in
 *     candidate order: a board inside a `rack.boardDown` fault
 *     window is skipped, a board whose admission window is full is
 *     skipped, and a request the network drops (`rack.netDrop`)
 *     fails over to the next replica, paying a fresh network
 *     transit. A request that exhausts its replicas is rejected at
 *     the front-end.
 *
 *  3. Bounded admission — per-board sliding-window rate cap
 *     (admitPerWindow requests per admitWindow ticks). The
 *     per-DPU OffloadScheduler queue bound still applies underneath
 *     once the board simulates.
 *
 * Inside a board the request is routed to a DPU by the board's own
 * BoardScheduler policy (hash), and everything from PR 2-6 applies:
 * deadlines, reaping, quarantine, availability accounting.
 *
 * summary() folds the per-board serving summaries into one rack
 * view and adds the front-end counters plus the headline
 * "users served per simulated second".
 */

#ifndef DPU_RACK_SCHEDULER_HH
#define DPU_RACK_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "host/board_offload.hh"
#include "rack/rack.hh"

namespace dpu::rack {

/** Placement / admission knobs. */
struct PlacementParams
{
    /** Key-range partitions the key space hashes onto. */
    unsigned keyPartitions = 64;
    /** Boards per replica group (clamped to the board count). */
    unsigned replication = 2;
    /** Admission window length; 0 disables the front-end cap. */
    sim::Tick admitWindow = 0;
    /** Requests admitted per board per window (with admitWindow). */
    unsigned admitPerWindow = 0;
};

/** One front-end request: a serving job plus its placement key. */
struct RackRequest
{
    host::JobRequest job;
    /** Placement key (user / row id); drives the replica group. */
    std::uint64_t key = 0;
    /** Request payload carried over the rack network. */
    std::uint64_t bytes = 2048;
};

/** Front-end verdict for one request. */
enum class AdmitResult : std::uint8_t
{
    Admitted,   ///< delivered to a board scheduler
    Rejected,   ///< every replica's admission window was full
    BoardsDown, ///< every replica inside a boardDown window
    NetLost,    ///< dropped by the network on every replica
};

/** Rack-wide aggregate (valid after the rack has run). */
struct RackSummary
{
    host::ServingSummary serving; ///< folded over all boards
    std::uint64_t offered = 0;    ///< enqueueAt calls
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;   ///< admission-window rejects
    std::uint64_t boardsDown = 0; ///< lost to board outages
    std::uint64_t netLost = 0;    ///< lost to network drops
    std::uint64_t failovers = 0;  ///< non-primary deliveries
    /** The headline: completed requests per simulated second over
     *  the first-enqueue..last-finish window. */
    double usersPerSimSec = 0;
    /** Offered requests actually served (admission + serving). */
    double servedFraction = 0;
    double netPeakUtilization = 0;
};

/** The rack front-end: placement, failover, admission. */
class RackScheduler
{
  public:
    /**
     * @p per_dpu parameterizes every per-DPU scheduler; its
     * statName is extended to "<statName>.b<board>.dpu<d>".
     * Board-internal routing is the hash policy.
     */
    RackScheduler(Rack &r, host::OffloadParams per_dpu,
                  PlacementParams place = {});

    unsigned nBoards() const { return rack.nBoards(); }
    host::BoardScheduler &boardScheduler(unsigned b)
    {
        return *boardScheds[b];
    }
    const PlacementParams &placement() const { return place; }

    /** The key-range partition @p key hashes onto. */
    unsigned partitionOf(std::uint64_t key) const;

    /** Primary board of @p key's replica group. */
    unsigned primaryOf(std::uint64_t key) const;

    /** @p key's replica group, failover order (primary first). */
    std::vector<unsigned> replicasOf(std::uint64_t key) const;

    /**
     * Open-loop arrival: @p req reaches the front-end at tick
     * @p when. Calls must come in nondecreasing @p when order (a
     * trace). @return the front-end verdict; on Admitted,
     * @p board_out (when non-null) reports the serving board.
     */
    AdmitResult enqueueAt(sim::Tick when, RackRequest req,
                          unsigned *board_out = nullptr);

    /** Start every board's shard schedulers (then run the rack). */
    void start();

    /** Rack-wide aggregate; valid after rack.run(). */
    RackSummary summary() const;

  private:
    /** True when board @p b sits in a rack.boardDown window. */
    bool boardDown(unsigned b, sim::Tick now);

    /** True when board @p b's admission window is full at @p now
     *  (advances the window). */
    bool admissionFull(unsigned b, sim::Tick now);

    Rack &rack;
    PlacementParams place;
    std::unique_ptr<host::Router> groupRouter;
    std::vector<std::unique_ptr<host::BoardScheduler>> boardScheds;
    /** Per-board admitted-request times inside the current window. */
    std::vector<std::deque<sim::Tick>> windows;
    sim::Tick lastOffer = 0;

    // Front-end tallies (host phase only), folded into the "rack"
    // stat group by a flush hook.
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejectedCnt = 0;
    std::uint64_t boardsDownCnt = 0;
    std::uint64_t netLostCnt = 0;
    std::uint64_t failoverCnt = 0;
    sim::StatGroup stats;
};

} // namespace dpu::rack

#endif // DPU_RACK_SCHEDULER_HH

/**
 * @file
 * Rack-level request scheduling: placement, replica routing with
 * failover, bounded cluster admission, and live rebalancing.
 *
 * The front-end owns four decisions per request, all made at
 * admission time (host phase), which keeps the whole rack
 * bit-deterministic (see rack/rack.hh):
 *
 *  1. Placement — the request's key hashes onto one of
 *     `keyPartitions` key-range partitions; the partition selects a
 *     board through a mutable host::PartitionRouter map whose
 *     default is bit-identical to the replica-group hash policy
 *     (host/router.hh), so a rack that never rebalances routes
 *     exactly as before. The replication factor only widens the
 *     failover list.
 *
 *  2. Routing with failover — the candidates are tried in order: a
 *     board the failure detector (rack/health.hh) has declared
 *     Down or still holds in Probation is skipped on its verdict
 *     alone, a board whose admission window is full is skipped,
 *     and an attempt that draws no completion ack — the network
 *     dropped it (`rack.netDrop`) or the board was dead at the
 *     delivery tick (`rack.boardDown` / `rack.boardCrash`, checked
 *     inside the health module's board fault model, never here) —
 *     fails over to the next replica after an `ackTimeout`
 *     penalty, paying a fresh network transit. A request that
 *     exhausts its replicas is rejected at the front-end. The
 *     routing decision reads detector state only; the fault plane
 *     is consulted solely at the physical injection points
 *     (RackNet::deliver, HealthMonitor::aliveAt).
 *
 *  3. Bounded admission — per-board sliding-window rate cap
 *     (admitPerWindow requests per admitWindow ticks): a request at
 *     tick T is shed when admitPerWindow admissions already landed
 *     in the half-open window (T - admitWindow, T]. The per-DPU
 *     OffloadScheduler queue bound still applies underneath once
 *     the board simulates.
 *
 *  4. Rebalancing (balance.window > 0) — every arrival first
 *     advances the balancer clock: partition loads roll into EWMAs
 *     at each window boundary, planMigrations() (rack/balance.hh)
 *     picks moves off hot boards, and each move ships its partition
 *     state to the new home over the RackNet as Migration traffic.
 *     The transfer's delivery tick opens a *forwarding epoch*: the
 *     partition map is left pointing at the source, arrivals keep
 *     draining there (counted as forwarded, each shipping a small
 *     delta to the destination), and only when an arrival finds the
 *     transfer delivered does the map flip — drain-then-switch, so
 *     no in-flight job is ever lost or duplicated. A transfer the
 *     network drops aborts its migration: the partition simply
 *     stays where it was (fault-safe, retried at a later window).
 *     Because every decision happens at enqueue time in trace
 *     order, rebalancing is bit-identical at any --threads count.
 *
 *  5. Health, repair and brown-out (health.heartbeatPeriod > 0) —
 *     every arrival first advances the HealthMonitor: due
 *     heartbeat rounds ride the RackNet, pending ack/miss
 *     observations resolve, and each board's state machine steps.
 *     When a board is declared Down the repair controller takes
 *     over: in-flight migrations touching the board abort, the
 *     board is evicted from every partition's replica set (the
 *     surviving replica is promoted to primary via an explicit
 *     PartitionRouter replica-set override), and the replication
 *     factor is restored by shipping partition state to a fresh
 *     board as a Migration transfer under the same
 *     drain-then-switch rules — the partition is frozen against
 *     balancer moves until the copy commits, and a dropped
 *     transfer is retried at the next arrival. Once every repair
 *     attributed to a crashed board commits, the crash latch
 *     clears and heartbeats walk the board back through
 *     Probation. The brown-out controller sheds requests at the
 *     front-end (AdmitResult::Shed) when a candidate is Suspect or
 *     its admission window is nearly full AND the predicted
 *     delivery delay (ingress backlog + wire + hop, plus the ack
 *     timeout a Suspect board risks) exceeds a fraction of the
 *     request's deadline — degrading gracefully instead of
 *     queueing doomed work.
 *
 * Inside a board the request is routed to a DPU by the board's own
 * BoardScheduler policy (hash), and everything from PR 2-6 applies:
 * deadlines, reaping, quarantine, availability accounting.
 *
 * summary() folds the per-board serving summaries into one rack
 * view (host/summary.hh: submitted-weighted availability, rank
 * percentiles) and adds the front-end counters plus the headline
 * "users served per simulated second".
 */

#ifndef DPU_RACK_SCHEDULER_HH
#define DPU_RACK_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "host/board_offload.hh"
#include "host/router.hh"
#include "rack/balance.hh"
#include "rack/health.hh"
#include "rack/rack.hh"

namespace dpu::rack {

/** Placement / admission / rebalancing knobs. */
struct PlacementParams
{
    /** Key-range partitions the key space hashes onto. */
    unsigned keyPartitions = 64;
    /** Boards per replica group (clamped to the board count). */
    unsigned replication = 2;
    /** Admission window length; 0 disables the front-end cap. */
    sim::Tick admitWindow = 0;
    /** Requests admitted per board per window (with admitWindow). */
    unsigned admitPerWindow = 0;
    /** Hot-shard balancer; balance.window = 0 keeps it off. */
    BalanceParams balance{};
    /** Failure detection / repair / brown-out;
     *  health.heartbeatPeriod = 0 keeps it all off. */
    HealthParams health{};
};

/** One front-end request: a serving job plus its placement key. */
struct RackRequest
{
    host::JobRequest job;
    /** Placement key (user / row id); drives the replica group. */
    std::uint64_t key = 0;
    /** Request payload carried over the rack network. */
    std::uint64_t bytes = 2048;
};

/** Front-end verdict for one request. */
enum class AdmitResult : std::uint8_t
{
    Admitted,   ///< delivered to a board scheduler
    Rejected,   ///< every replica's admission window was full
    BoardsDown, ///< every replica down (detector or no ack)
    NetLost,    ///< dropped by the network on every replica
    Shed,       ///< brown-out: predicted to miss its deadline
};

/** Rack-wide aggregate (valid after the rack has run). */
struct RackSummary
{
    host::ServingSummary serving; ///< folded over all boards
    std::uint64_t offered = 0;    ///< enqueueAt calls
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;   ///< admission-window rejects
    std::uint64_t boardsDown = 0; ///< lost to board outages
    std::uint64_t netLost = 0;    ///< lost to network drops
    std::uint64_t shed = 0;       ///< brown-out front-end sheds
    /** Non-primary deliveries forced by outage signals (detector
     *  verdicts, missing acks, network drops). */
    std::uint64_t failovers = 0;
    /** Non-primary deliveries where every skipped replica was
     *  merely admission-full or shed — load spreading, not
     *  failure (PR 9 split these out of `failovers`). */
    std::uint64_t admitReroutes = 0;
    // Balancer activity (all zero with balance.window = 0).
    std::uint64_t migStarted = 0;
    std::uint64_t migCommitted = 0;
    std::uint64_t migAborted = 0;  ///< transfer dropped in flight
    std::uint64_t forwarded = 0;   ///< drained at src mid-migration
    std::uint64_t migrationBytes = 0; ///< carried hand-off payload
    std::uint64_t netDroppedBytes = 0;
    // Health / repair activity (all zero with heartbeatPeriod = 0).
    std::uint64_t probes = 0;          ///< heartbeats sent
    std::uint64_t repairsStarted = 0;  ///< re-replication attempts
    std::uint64_t repairsCommitted = 0;
    /** The headline: completed requests per simulated second over
     *  the first-enqueue..last-finish window. */
    double usersPerSimSec = 0;
    /** Offered requests actually served (admission + serving). */
    double servedFraction = 0;
    double netPeakUtilization = 0;
};

/** The key-range partition @p key hashes onto (pure function). */
unsigned keyPartition(std::uint64_t key, unsigned key_partitions);

/** Default (hash) home board of @p partition — where an
 *  un-rebalanced rack places it. Pure function; lets workload
 *  generators find partitions that collide on one board. */
unsigned partitionHome(unsigned partition, unsigned n_boards);

/** The rack front-end: placement, failover, admission, balance. */
class RackScheduler
{
  public:
    /**
     * @p per_dpu parameterizes every per-DPU scheduler; its
     * statName is extended to "<statName>.b<board>.dpu<d>".
     * Board-internal routing is the hash policy.
     */
    RackScheduler(Rack &r, host::OffloadParams per_dpu,
                  PlacementParams place = {});

    unsigned nBoards() const { return rack.nBoards(); }
    host::BoardScheduler &boardScheduler(unsigned b)
    {
        return *boardScheds[b];
    }
    const PlacementParams &placement() const { return place; }

    /** The failure detector (inert when heartbeatPeriod = 0). */
    HealthMonitor &health() { return *mon; }
    const HealthMonitor &health() const { return *mon; }

    /** The key-range partition @p key hashes onto. */
    unsigned partitionOf(std::uint64_t key) const;

    /** Current home board of @p partition (override or hash). */
    unsigned homeOf(unsigned partition) const;

    /** Primary board of @p key's replica group. */
    unsigned primaryOf(std::uint64_t key) const;

    /** @p key's replica group, failover order (primary first). */
    std::vector<unsigned> replicasOf(std::uint64_t key) const;

    /**
     * Open-loop arrival: @p req reaches the front-end at tick
     * @p when. Calls must come in nondecreasing @p when order (a
     * trace). @return the front-end verdict; on Admitted,
     * @p board_out (when non-null) reports the serving board.
     */
    AdmitResult enqueueAt(sim::Tick when, RackRequest req,
                          unsigned *board_out = nullptr);

    /** Start every board's shard schedulers (then run the rack). */
    void start();

    /** Rack-wide aggregate; valid after rack.run(). */
    RackSummary summary() const;

    // --- balancer observability (tests / benches) ---------------
    /** Smoothed load of @p partition (EWMA over windows). */
    double partitionLoad(unsigned partition) const;
    unsigned migrationsInFlight() const
    {
        return unsigned(inflight.size());
    }
    std::uint64_t migrationsStarted() const { return migStarted; }
    std::uint64_t migrationsCommitted() const
    {
        return migCommitted;
    }
    std::uint64_t migrationsAborted() const { return migAborted; }
    std::uint64_t forwardedRequests() const { return forwardedCnt; }

    // --- health / repair observability (tests / benches) --------
    std::uint64_t shedCount() const { return shedCnt; }
    std::uint64_t admitRerouteCount() const
    {
        return admitRerouteCnt;
    }
    std::uint64_t repairsStarted() const { return repairStarted; }
    std::uint64_t repairsCommitted() const
    {
        return repairCommitted;
    }
    /** Entries currently held in @p b's admission window (S1
     *  regression probe: must stay bounded, and empty with the
     *  window cap disabled). */
    std::size_t admitWindowDepth(unsigned b) const
    {
        return windows[b].size();
    }

  private:
    /** One migration inside its forwarding epoch. */
    struct InFlight
    {
        MigrationStep step;
        sim::Tick startedAt = 0;
        sim::Tick readyAt = 0; ///< transfer delivery tick
        std::uint64_t forwardedReqs = 0;
        /** Repair re-replication (append a replica on commit)
         *  rather than a balancer move (re-home on commit). */
        bool repair = false;
        /** The Down board this repair is making whole again. */
        unsigned attributed = 0;
    };

    /** One owed re-replication not yet shipping (no target yet,
     *  or its transfer was dropped / its target died). */
    struct RepairJob
    {
        unsigned partition = 0;
        unsigned attributed = 0;
    };

    /** True when board @p b's admission window is full at @p now
     *  (advances the window). */
    bool admissionFull(unsigned b, sim::Tick now);

    /** Brown-out verdict for one candidate (see file header). */
    bool shouldShed(unsigned b, sim::Tick send_at,
                    const RackRequest &req) const;

    /** Probes, observations, transitions, repair pump. */
    void advanceHealth(sim::Tick when);
    /** React to detector transitions drained since the last call. */
    void processTransitions();
    /** Evict Down board @p b everywhere; promote + queue repairs. */
    void repairBoard(unsigned b);
    /** Try to ship every owed re-replication at @p when. */
    void pumpRepairs(sim::Tick when);
    /** @p partition's live candidate list (detector-agnostic). */
    std::vector<unsigned> currentReplicas(unsigned partition) const;
    /** Least-loaded routable board outside @p exclude, or -1. */
    int pickReplacement(const std::vector<unsigned> &exclude) const;

    /** Roll windows / plan / commit everything due by @p when. */
    void advanceBalancer(sim::Tick when);
    /** Flip the map for transfers delivered by @p when. */
    void commitReady(sim::Tick when);
    /** Ship state for @p step at @p when; open an epoch. */
    void startMigration(const MigrationStep &step, sim::Tick when);
    /** The in-flight record for @p partition, or nullptr. */
    InFlight *inflightOf(unsigned partition);

    Rack &rack;
    PlacementParams place;
    /** Mutable partition -> board map (also the replica policy). */
    std::unique_ptr<host::PartitionRouter> partMap;
    std::vector<std::unique_ptr<host::BoardScheduler>> boardScheds;
    /** Failure detector + board fault model (host phase only). */
    std::unique_ptr<HealthMonitor> mon;
    /** Per-board admitted-request times inside the current window. */
    std::vector<std::deque<sim::Tick>> windows;
    sim::Tick lastOffer = 0;
    /** Fallback deadline for shed prediction (per-DPU default). */
    sim::Tick defaultDeadline = 0;

    // Balancer state (host phase only).
    LoadTracker tracker;
    std::vector<bool> frozen;      ///< partitions mid-migration
    std::vector<InFlight> inflight;
    sim::Tick nextRollAt = 0;      ///< next window boundary; 0 = off

    // Repair state (host phase only).
    std::vector<RepairJob> owedRepairs; ///< queued / retrying
    /** Repairs still owed per Down board; the crash latch clears
     *  when a board's count returns to zero. */
    std::vector<unsigned> outstandingRepairs;
    std::size_t seenTransitions = 0; ///< detector log cursor

    // Front-end tallies (host phase only), folded into the "rack"
    // stat group by a flush hook.
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejectedCnt = 0;
    std::uint64_t boardsDownCnt = 0;
    std::uint64_t netLostCnt = 0;
    std::uint64_t shedCnt = 0;
    std::uint64_t failoverCnt = 0;
    std::uint64_t admitRerouteCnt = 0;
    std::uint64_t repairStarted = 0;
    std::uint64_t repairCommitted = 0;
    std::uint64_t migStarted = 0;
    std::uint64_t migCommitted = 0;
    std::uint64_t migAborted = 0;
    std::uint64_t forwardedCnt = 0;
    std::vector<std::uint64_t> boardAdmitted;
    sim::StatGroup stats;
};

} // namespace dpu::rack

#endif // DPU_RACK_SCHEDULER_HH

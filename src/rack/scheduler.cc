#include "rack/scheduler.hh"

#include <algorithm>
#include <limits>

#include "sim/fault.hh"
#include "sim/logging.hh"
#include "util/crc32.hh"

namespace dpu::rack {

RackScheduler::RackScheduler(Rack &r, host::OffloadParams per_dpu,
                             PlacementParams place_)
    : rack(r), place(place_),
      groupRouter(host::makeReplicaGroupRouter(
          std::min(std::max(place_.replication, 1u), r.nBoards()))),
      windows(r.nBoards()), stats("rack")
{
    sim_assert(place.keyPartitions >= 1,
               "placement needs at least one key partition");
    const std::string prefix = per_dpu.statName;
    boardScheds.reserve(rack.nBoards());
    for (unsigned b = 0; b < rack.nBoards(); ++b) {
        host::OffloadParams p = per_dpu;
        p.statName = prefix + ".b" + std::to_string(b);
        boardScheds.push_back(
            std::make_unique<host::BoardScheduler>(
                rack.board(b), std::move(p),
                host::makeHashRouter()));
    }
    stats.addFlushHook([this] {
        if (offered)
            stats.counter("offered") = offered;
        if (admitted)
            stats.counter("admitted") = admitted;
        if (rejectedCnt)
            stats.counter("rejected") = rejectedCnt;
        if (boardsDownCnt)
            stats.counter("boardsDown") = boardsDownCnt;
        if (netLostCnt)
            stats.counter("netLost") = netLostCnt;
        if (failoverCnt)
            stats.counter("failovers") = failoverCnt;
    });
}

unsigned
RackScheduler::partitionOf(std::uint64_t key) const
{
    // Pure function of the key alone: the partition is the stable
    // placement unit that survives cluster reshapes.
    std::uint32_t h = util::crc32Key(std::uint32_t(key));
    h = util::crc32Key(h ^ std::uint32_t(key >> 32));
    return h % place.keyPartitions;
}

unsigned
RackScheduler::primaryOf(std::uint64_t key) const
{
    host::RouteInfo info;
    info.key = partitionOf(key);
    info.hasKey = true;
    return groupRouter->route(info, rack.nBoards());
}

std::vector<unsigned>
RackScheduler::replicasOf(std::uint64_t key) const
{
    host::RouteInfo info;
    info.key = partitionOf(key);
    info.hasKey = true;
    std::vector<unsigned> out;
    groupRouter->candidates(info, rack.nBoards(), out);
    return out;
}

bool
RackScheduler::boardDown(unsigned b, sim::Tick now)
{
    sim::FaultPlane &fp = sim::faultPlane();
    return fp.active() &&
           fp.fires(sim::FaultSite::RackBoardDown, now, int(b));
}

bool
RackScheduler::admissionFull(unsigned b, sim::Tick now)
{
    if (!place.admitWindow || !place.admitPerWindow)
        return false;
    std::deque<sim::Tick> &w = windows[b];
    const sim::Tick horizon =
        now > place.admitWindow ? now - place.admitWindow : 0;
    while (!w.empty() && w.front() < horizon)
        w.pop_front();
    return w.size() >= place.admitPerWindow;
}

AdmitResult
RackScheduler::enqueueAt(sim::Tick when, RackRequest req,
                         unsigned *board_out)
{
    sim_assert(when >= lastOffer,
               "rack arrivals must be offered in trace order");
    lastOffer = when;
    ++offered;

    const std::vector<unsigned> group = replicasOf(req.key);
    bool sawFull = false, sawDrop = false;
    for (std::size_t i = 0; i < group.size(); ++i) {
        const unsigned b = group[i];
        if (boardDown(b, when))
            continue;
        if (admissionFull(b, when)) {
            sawFull = true;
            continue;
        }
        bool dropped = false;
        const sim::Tick delivered =
            rack.net().deliver(b, req.bytes, when, dropped);
        if (dropped) {
            sawDrop = true;
            continue;
        }
        windows[b].push_back(when);
        ++admitted;
        if (i > 0)
            ++failoverCnt;
        if (board_out)
            *board_out = b;
        boardScheds[b]->enqueueAt(delivered, std::move(req.job));
        return AdmitResult::Admitted;
    }
    // Attribution order mirrors severity: a drop means the request
    // physically reached the fabric; a full window means the
    // front-end shed it; otherwise every replica was down.
    if (sawDrop) {
        ++netLostCnt;
        return AdmitResult::NetLost;
    }
    if (sawFull) {
        ++rejectedCnt;
        return AdmitResult::Rejected;
    }
    ++boardsDownCnt;
    return AdmitResult::BoardsDown;
}

void
RackScheduler::start()
{
    for (auto &s : boardScheds)
        s->start();
}

RackSummary
RackScheduler::summary() const
{
    RackSummary sum;
    sum.offered = offered;
    sum.admitted = admitted;
    sum.rejected = rejectedCnt;
    sum.boardsDown = boardsDownCnt;
    sum.netLost = netLostCnt;
    sum.failovers = failoverCnt;

    // Fold the per-board serving summaries the way BoardScheduler
    // folds its shards: counts summed, availability averaged,
    // percentiles recomputed over every completed job.
    std::vector<double> lat;
    constexpr sim::Tick noTick =
        std::numeric_limits<sim::Tick>::max();
    sim::Tick first = noTick, last = 0;
    double avail = 0;
    for (const auto &bs : boardScheds) {
        const host::ServingSummary part = bs->summary();
        sum.serving.submitted += part.submitted;
        sum.serving.accepted += part.accepted;
        sum.serving.rejected += part.rejected;
        sum.serving.dispatched += part.dispatched;
        sum.serving.completed += part.completed;
        sum.serving.timedOut += part.timedOut;
        sum.serving.validationFailed += part.validationFailed;
        sum.serving.lateJobs += part.lateJobs;
        sum.serving.wedgedGroups += part.wedgedGroups;
        sum.serving.requeued += part.requeued;
        sum.serving.quarantines += part.quarantines;
        sum.serving.wedgeTimeouts += part.wedgeTimeouts;
        avail += part.availability;
        for (unsigned d = 0; d < bs->nShards(); ++d) {
            for (const host::JobRecord &rec : bs->shard(d).jobs()) {
                first = std::min(first, rec.enqueuedAt);
                last = std::max(last, rec.finishedAt);
                if (rec.state == host::JobState::Completed)
                    lat.push_back(rec.latencyUs());
            }
        }
    }
    if (!boardScheds.empty())
        sum.serving.availability =
            avail / double(boardScheds.size());

    std::sort(lat.begin(), lat.end());
    auto pct = [&](double q) {
        if (lat.empty())
            return 0.0;
        std::size_t rank =
            std::size_t(q * double(lat.size()) + 0.5);
        if (rank > 0)
            --rank;
        return lat[std::min(rank, lat.size() - 1)];
    };
    sum.serving.p50Us = pct(0.50);
    sum.serving.p95Us = pct(0.95);
    sum.serving.p99Us = pct(0.99);
    if (!lat.empty()) {
        double s = 0;
        for (double l : lat)
            s += l;
        sum.serving.meanUs = s / double(lat.size());
        sum.serving.maxUs = lat.back();
    }
    if (sum.serving.completed > 0 && last > first) {
        const double windowSec = double(last - first) * 1e-12;
        sum.serving.throughputJobsPerSec =
            double(sum.serving.completed) / windowSec;
        sum.usersPerSimSec = sum.serving.throughputJobsPerSec;
    }
    if (offered)
        sum.servedFraction =
            double(sum.serving.completed) / double(offered);
    sum.netPeakUtilization = rack.net().peakUtilization(rack.now());
    return sum;
}

} // namespace dpu::rack

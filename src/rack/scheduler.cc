#include "rack/scheduler.hh"

#include <algorithm>

#include "host/summary.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"
#include "util/crc32.hh"

namespace dpu::rack {

unsigned
keyPartition(std::uint64_t key, unsigned key_partitions)
{
    sim_assert(key_partitions >= 1,
               "placement needs at least one key partition");
    // Pure function of the key alone: the partition is the stable
    // placement unit that survives cluster reshapes.
    std::uint32_t h = util::crc32Key(std::uint32_t(key));
    h = util::crc32Key(h ^ std::uint32_t(key >> 32));
    return h % key_partitions;
}

unsigned
partitionHome(unsigned partition, unsigned n_boards)
{
    host::RouteInfo info;
    info.key = partition;
    info.hasKey = true;
    return host::routeHash(info) % n_boards;
}

RackScheduler::RackScheduler(Rack &r, host::OffloadParams per_dpu,
                             PlacementParams place_)
    : rack(r), place(place_),
      partMap(host::makePartitionRouter(
          place_.keyPartitions,
          std::min(std::max(place_.replication, 1u), r.nBoards()))),
      windows(r.nBoards()), tracker(place_.keyPartitions),
      frozen(place_.keyPartitions, false),
      boardAdmitted(r.nBoards(), 0), stats("rack")
{
    sim_assert(place.keyPartitions >= 1,
               "placement needs at least one key partition");
    if (place.balance.window) {
        sim_assert(place.balance.ewmaAlpha > 0 &&
                       place.balance.ewmaAlpha <= 1,
                   "balance EWMA alpha must be in (0, 1], got %f",
                   place.balance.ewmaAlpha);
        sim_assert(place.balance.hotFactor >= 1.0,
                   "balance hotFactor below 1 would flag every "
                   "board hot (got %f)",
                   place.balance.hotFactor);
        nextRollAt = place.balance.window;
    }
    const std::string prefix = per_dpu.statName;
    boardScheds.reserve(rack.nBoards());
    for (unsigned b = 0; b < rack.nBoards(); ++b) {
        host::OffloadParams p = per_dpu;
        p.statName = prefix + ".b" + std::to_string(b);
        boardScheds.push_back(
            std::make_unique<host::BoardScheduler>(
                rack.board(b), std::move(p),
                host::makeHashRouter()));
    }
    stats.addFlushHook([this] {
        if (offered)
            stats.counter("offered") = offered;
        if (admitted)
            stats.counter("admitted") = admitted;
        if (rejectedCnt)
            stats.counter("rejected") = rejectedCnt;
        if (boardsDownCnt)
            stats.counter("boardsDown") = boardsDownCnt;
        if (netLostCnt)
            stats.counter("netLost") = netLostCnt;
        if (failoverCnt)
            stats.counter("failovers") = failoverCnt;
        if (migStarted)
            stats.counter("migStarted") = migStarted;
        if (migCommitted)
            stats.counter("migCommitted") = migCommitted;
        if (migAborted)
            stats.counter("migAborted") = migAborted;
        if (forwardedCnt)
            stats.counter("forwarded") = forwardedCnt;
        if (place.balance.window) {
            // Per-shard serving accounting only matters (and only
            // folds) when the balancer is live, so un-balanced
            // goldens stay byte-identical.
            for (unsigned b = 0; b < boardAdmitted.size(); ++b)
                if (boardAdmitted[b])
                    stats.counter("b" + std::to_string(b) +
                                  ".admitted") = boardAdmitted[b];
        }
    });
}

unsigned
RackScheduler::partitionOf(std::uint64_t key) const
{
    return keyPartition(key, place.keyPartitions);
}

unsigned
RackScheduler::homeOf(unsigned partition) const
{
    return partMap->homeOf(partition, rack.nBoards());
}

unsigned
RackScheduler::primaryOf(std::uint64_t key) const
{
    host::RouteInfo info;
    info.key = partitionOf(key);
    info.hasKey = true;
    return partMap->route(info, rack.nBoards());
}

std::vector<unsigned>
RackScheduler::replicasOf(std::uint64_t key) const
{
    host::RouteInfo info;
    info.key = partitionOf(key);
    info.hasKey = true;
    std::vector<unsigned> out;
    partMap->candidates(info, rack.nBoards(), out);
    return out;
}

double
RackScheduler::partitionLoad(unsigned partition) const
{
    return tracker.load(partition);
}

bool
RackScheduler::boardDown(unsigned b, sim::Tick now)
{
    sim::FaultPlane &fp = sim::faultPlane();
    return fp.active() &&
           fp.fires(sim::FaultSite::RackBoardDown, now, int(b));
}

bool
RackScheduler::admissionFull(unsigned b, sim::Tick now)
{
    if (!place.admitWindow || !place.admitPerWindow)
        return false;
    std::deque<sim::Tick> &w = windows[b];
    // The window is the half-open (now - admitWindow, now]: an
    // admission exactly admitWindow old has aged out (keeping it
    // made the cap span admitWindow + 1 ticks).
    if (now >= place.admitWindow) {
        const sim::Tick horizon = now - place.admitWindow;
        while (!w.empty() && w.front() <= horizon)
            w.pop_front();
    }
    return w.size() >= place.admitPerWindow;
}

RackScheduler::InFlight *
RackScheduler::inflightOf(unsigned partition)
{
    for (InFlight &m : inflight)
        if (m.step.partition == partition)
            return &m;
    return nullptr;
}

void
RackScheduler::commitReady(sim::Tick when)
{
    for (std::size_t i = 0; i < inflight.size();) {
        InFlight &m = inflight[i];
        if (m.readyAt > when) {
            ++i;
            continue;
        }
        // Drain-then-switch: everything enqueued before this tick
        // went to (and will finish at) the old home; everything
        // after routes to the new one. No job is in limbo.
        partMap->reassign(m.step.partition, m.step.to);
        frozen[m.step.partition] = false;
        ++migCommitted;
        inflight.erase(inflight.begin() +
                       std::vector<InFlight>::difference_type(i));
    }
}

void
RackScheduler::startMigration(const MigrationStep &step,
                              sim::Tick when)
{
    // State volume scales with the traffic the partition absorbed:
    // a fixed snapshot base plus per-request working set.
    const std::uint64_t bytes =
        place.balance.stateBytesBase +
        place.balance.stateBytesPerRequest *
            tracker.totalLoad(step.partition);
    bool dropped = false;
    const sim::Tick ready = rack.net().deliver(
        step.to, bytes, when, dropped, NetTraffic::Migration);
    ++migStarted;
    if (dropped) {
        // The transfer died on the wire: abort, leave the partition
        // at its source. A later window may retry.
        ++migAborted;
        return;
    }
    InFlight m;
    m.step = step;
    m.startedAt = when;
    m.readyAt = ready;
    frozen[step.partition] = true;
    inflight.push_back(m);
}

void
RackScheduler::advanceBalancer(sim::Tick when)
{
    while (nextRollAt && when >= nextRollAt) {
        const sim::Tick boundary = nextRollAt;
        nextRollAt += place.balance.window;
        // Commit transfers delivered by this boundary before
        // planning, so the plan sees the freshest committed map.
        commitReady(boundary);
        tracker.roll(place.balance.ewmaAlpha);
        std::vector<unsigned> home(place.keyPartitions);
        for (unsigned p2 = 0; p2 < place.keyPartitions; ++p2)
            home[p2] = partMap->homeOf(p2, rack.nBoards());
        const std::vector<MigrationStep> plan = planMigrations(
            tracker.loads(), home, rack.nBoards(), place.balance,
            frozen);
        for (const MigrationStep &s : plan)
            startMigration(s, boundary);
    }
    commitReady(when);
}

AdmitResult
RackScheduler::enqueueAt(sim::Tick when, RackRequest req,
                         unsigned *board_out)
{
    sim_assert(when >= lastOffer,
               "rack arrivals must be offered in trace order");
    lastOffer = when;
    ++offered;

    const unsigned part = partitionOf(req.key);
    if (place.balance.window) {
        advanceBalancer(when);
        // Offered demand, not admitted: rejects are load too.
        tracker.record(part);
    }

    host::RouteInfo info;
    info.key = part;
    info.hasKey = true;
    std::vector<unsigned> group;
    partMap->candidates(info, rack.nBoards(), group);
    bool sawFull = false, sawDrop = false;
    for (std::size_t i = 0; i < group.size(); ++i) {
        const unsigned b = group[i];
        if (boardDown(b, when))
            continue;
        if (admissionFull(b, when)) {
            sawFull = true;
            continue;
        }
        bool dropped = false;
        const sim::Tick delivered =
            rack.net().deliver(b, req.bytes, when, dropped);
        if (dropped) {
            sawDrop = true;
            continue;
        }
        windows[b].push_back(when);
        ++admitted;
        ++boardAdmitted[b];
        if (i > 0)
            ++failoverCnt;
        if (board_out)
            *board_out = b;
        if (InFlight *m = inflightOf(part);
            m && b == m->step.from) {
            // Forwarding epoch: the request drains at the source,
            // and its delta rides to the new home so the snapshot
            // in flight stays current. A dropped delta only costs
            // accounting (the commit re-sends nothing — state is
            // modeled, not materialized).
            ++forwardedCnt;
            ++m->forwardedReqs;
            bool deltaDropped = false;
            rack.net().deliver(m->step.to,
                               place.balance.stateBytesPerRequest,
                               when, deltaDropped,
                               NetTraffic::Migration);
        }
        boardScheds[b]->enqueueAt(delivered, std::move(req.job));
        return AdmitResult::Admitted;
    }
    // Attribution order mirrors severity: a drop means the request
    // physically reached the fabric; a full window means the
    // front-end shed it; otherwise every replica was down.
    if (sawDrop) {
        ++netLostCnt;
        return AdmitResult::NetLost;
    }
    if (sawFull) {
        ++rejectedCnt;
        return AdmitResult::Rejected;
    }
    ++boardsDownCnt;
    return AdmitResult::BoardsDown;
}

void
RackScheduler::start()
{
    for (auto &s : boardScheds)
        s->start();
}

RackSummary
RackScheduler::summary() const
{
    RackSummary sum;
    sum.offered = offered;
    sum.admitted = admitted;
    sum.rejected = rejectedCnt;
    sum.boardsDown = boardsDownCnt;
    sum.netLost = netLostCnt;
    sum.failovers = failoverCnt;
    sum.migStarted = migStarted;
    sum.migCommitted = migCommitted;
    sum.migAborted = migAborted;
    sum.forwarded = forwardedCnt;
    sum.migrationBytes = rack.net().migrationBytes();
    sum.netDroppedBytes = rack.net().droppedBytes();

    // Fold per-DPU shard summaries directly (host/summary.hh):
    // availability weighted by each shard's submitted jobs,
    // percentiles recomputed over every completed job.
    host::SummaryFold fold;
    for (const auto &bs : boardScheds)
        for (unsigned d = 0; d < bs->nShards(); ++d)
            fold.add(bs->shard(d).summary(), bs->shard(d).jobs());
    sum.serving = fold.finish();
    sum.usersPerSimSec = sum.serving.throughputJobsPerSec;
    if (offered)
        sum.servedFraction =
            double(sum.serving.completed) / double(offered);
    sum.netPeakUtilization = rack.net().peakUtilization(rack.now());
    return sum;
}

} // namespace dpu::rack

#include "rack/scheduler.hh"

#include <algorithm>

#include "host/summary.hh"
#include "sim/logging.hh"
#include "util/crc32.hh"

namespace dpu::rack {

unsigned
keyPartition(std::uint64_t key, unsigned key_partitions)
{
    sim_assert(key_partitions >= 1,
               "placement needs at least one key partition");
    // Pure function of the key alone: the partition is the stable
    // placement unit that survives cluster reshapes.
    std::uint32_t h = util::crc32Key(std::uint32_t(key));
    h = util::crc32Key(h ^ std::uint32_t(key >> 32));
    return h % key_partitions;
}

unsigned
partitionHome(unsigned partition, unsigned n_boards)
{
    host::RouteInfo info;
    info.key = partition;
    info.hasKey = true;
    return host::routeHash(info) % n_boards;
}

RackScheduler::RackScheduler(Rack &r, host::OffloadParams per_dpu,
                             PlacementParams place_)
    : rack(r), place(place_),
      partMap(host::makePartitionRouter(
          place_.keyPartitions,
          std::min(std::max(place_.replication, 1u), r.nBoards()))),
      mon(std::make_unique<HealthMonitor>(r.net(), r.nBoards(),
                                          place_.health)),
      windows(r.nBoards()), tracker(place_.keyPartitions),
      frozen(place_.keyPartitions, false),
      outstandingRepairs(r.nBoards(), 0),
      boardAdmitted(r.nBoards(), 0), stats("rack")
{
    sim_assert(place.keyPartitions >= 1,
               "placement needs at least one key partition");
    defaultDeadline = per_dpu.defaultTimeout;
    if (mon->monitoring()) {
        sim_assert(place.health.shedPressure > 0 &&
                       place.health.shedPressure <= 1,
                   "health shedPressure must be in (0, 1], got %f",
                   place.health.shedPressure);
        sim_assert(place.health.shedDeadlineFrac > 0,
                   "health shedDeadlineFrac must be positive, "
                   "got %f",
                   place.health.shedDeadlineFrac);
    }
    if (place.balance.window) {
        sim_assert(place.balance.ewmaAlpha > 0 &&
                       place.balance.ewmaAlpha <= 1,
                   "balance EWMA alpha must be in (0, 1], got %f",
                   place.balance.ewmaAlpha);
        sim_assert(place.balance.hotFactor >= 1.0,
                   "balance hotFactor below 1 would flag every "
                   "board hot (got %f)",
                   place.balance.hotFactor);
        nextRollAt = place.balance.window;
    }
    const std::string prefix = per_dpu.statName;
    boardScheds.reserve(rack.nBoards());
    for (unsigned b = 0; b < rack.nBoards(); ++b) {
        host::OffloadParams p = per_dpu;
        p.statName = prefix + ".b" + std::to_string(b);
        boardScheds.push_back(
            std::make_unique<host::BoardScheduler>(
                rack.board(b), std::move(p),
                host::makeHashRouter()));
    }
    stats.addFlushHook([this] {
        if (offered)
            stats.counter("offered") = offered;
        if (admitted)
            stats.counter("admitted") = admitted;
        if (rejectedCnt)
            stats.counter("rejected") = rejectedCnt;
        if (boardsDownCnt)
            stats.counter("boardsDown") = boardsDownCnt;
        if (netLostCnt)
            stats.counter("netLost") = netLostCnt;
        if (shedCnt)
            stats.counter("shed") = shedCnt;
        if (failoverCnt)
            stats.counter("failovers") = failoverCnt;
        if (admitRerouteCnt)
            stats.counter("admitReroutes") = admitRerouteCnt;
        if (repairStarted)
            stats.counter("repairStarted") = repairStarted;
        if (repairCommitted)
            stats.counter("repairCommitted") = repairCommitted;
        if (migStarted)
            stats.counter("migStarted") = migStarted;
        if (migCommitted)
            stats.counter("migCommitted") = migCommitted;
        if (migAborted)
            stats.counter("migAborted") = migAborted;
        if (forwardedCnt)
            stats.counter("forwarded") = forwardedCnt;
        if (place.balance.window) {
            // Per-shard serving accounting only matters (and only
            // folds) when the balancer is live, so un-balanced
            // goldens stay byte-identical.
            for (unsigned b = 0; b < boardAdmitted.size(); ++b)
                if (boardAdmitted[b])
                    stats.counter("b" + std::to_string(b) +
                                  ".admitted") = boardAdmitted[b];
        }
    });
}

unsigned
RackScheduler::partitionOf(std::uint64_t key) const
{
    return keyPartition(key, place.keyPartitions);
}

unsigned
RackScheduler::homeOf(unsigned partition) const
{
    return partMap->homeOf(partition, rack.nBoards());
}

unsigned
RackScheduler::primaryOf(std::uint64_t key) const
{
    host::RouteInfo info;
    info.key = partitionOf(key);
    info.hasKey = true;
    return partMap->route(info, rack.nBoards());
}

std::vector<unsigned>
RackScheduler::replicasOf(std::uint64_t key) const
{
    host::RouteInfo info;
    info.key = partitionOf(key);
    info.hasKey = true;
    std::vector<unsigned> out;
    partMap->candidates(info, rack.nBoards(), out);
    return out;
}

double
RackScheduler::partitionLoad(unsigned partition) const
{
    return tracker.load(partition);
}

bool
RackScheduler::admissionFull(unsigned b, sim::Tick now)
{
    if (!place.admitWindow || !place.admitPerWindow)
        return false;
    std::deque<sim::Tick> &w = windows[b];
    // The window is the half-open (now - admitWindow, now]: an
    // admission exactly admitWindow old has aged out (keeping it
    // made the cap span admitWindow + 1 ticks).
    if (now >= place.admitWindow) {
        const sim::Tick horizon = now - place.admitWindow;
        while (!w.empty() && w.front() <= horizon)
            w.pop_front();
    }
    return w.size() >= place.admitPerWindow;
}

RackScheduler::InFlight *
RackScheduler::inflightOf(unsigned partition)
{
    for (InFlight &m : inflight)
        if (m.step.partition == partition)
            return &m;
    return nullptr;
}

void
RackScheduler::commitReady(sim::Tick when)
{
    for (std::size_t i = 0; i < inflight.size();) {
        InFlight &m = inflight[i];
        if (m.readyAt > when) {
            ++i;
            continue;
        }
        if (m.repair) {
            // The fresh copy is whole: append its board to the
            // partition's replica set (the primary is untouched —
            // this restores width, it does not re-home).
            std::vector<unsigned> set =
                currentReplicas(m.step.partition);
            bool already = false;
            for (unsigned s : set)
                already |= s == m.step.to;
            if (!already) {
                set.push_back(m.step.to);
                partMap->setReplicas(m.step.partition, set);
            }
            frozen[m.step.partition] = false;
            ++repairCommitted;
            sim_assert(outstandingRepairs[m.attributed] > 0,
                       "repair committed for board %u with none "
                       "outstanding",
                       m.attributed);
            if (--outstandingRepairs[m.attributed] == 0)
                mon->markRepaired(m.attributed);
        } else {
            // Drain-then-switch: everything enqueued before this
            // tick went to (and will finish at) the old home;
            // everything after routes to the new one. No job is in
            // limbo.
            partMap->reassign(m.step.partition, m.step.to);
            frozen[m.step.partition] = false;
            ++migCommitted;
        }
        inflight.erase(inflight.begin() +
                       std::vector<InFlight>::difference_type(i));
    }
}

void
RackScheduler::startMigration(const MigrationStep &step,
                              sim::Tick when)
{
    // State volume scales with the traffic the partition absorbed:
    // a fixed snapshot base plus per-request working set.
    const std::uint64_t bytes =
        place.balance.stateBytesBase +
        place.balance.stateBytesPerRequest *
            tracker.totalLoad(step.partition);
    bool dropped = false;
    const sim::Tick ready = rack.net().deliver(
        step.to, bytes, when, dropped, NetTraffic::Migration);
    ++migStarted;
    if (dropped) {
        // The transfer died on the wire: abort, leave the partition
        // at its source. A later window may retry.
        ++migAborted;
        return;
    }
    InFlight m;
    m.step = step;
    m.startedAt = when;
    m.readyAt = ready;
    frozen[step.partition] = true;
    inflight.push_back(m);
}

std::vector<unsigned>
RackScheduler::currentReplicas(unsigned partition) const
{
    host::RouteInfo info;
    info.key = partition;
    info.hasKey = true;
    std::vector<unsigned> out;
    partMap->candidates(info, rack.nBoards(), out);
    return out;
}

int
RackScheduler::pickReplacement(
    const std::vector<unsigned> &exclude) const
{
    // Deterministic: least admitted traffic wins, lowest index
    // breaks ties. Only boards the detector trusts are eligible —
    // re-replicating onto a Suspect board would race its verdict.
    int best = -1;
    for (unsigned b = 0; b < rack.nBoards(); ++b) {
        if (mon->state(b) != BoardHealth::Healthy)
            continue;
        bool used = false;
        for (unsigned e : exclude)
            used |= e == b;
        if (used)
            continue;
        if (best < 0 ||
            boardAdmitted[b] < boardAdmitted[unsigned(best)])
            best = int(b);
    }
    return best;
}

void
RackScheduler::repairBoard(unsigned b)
{
    // 1. In-flight transfers touching the dead board are void: a
    // source that died mid-drain loses its epoch, a dead target
    // can't take delivery. Abort cleanly; eviction below re-homes
    // whatever lived there, and an aborted repair is re-queued so
    // its partition still gets a new copy.
    for (std::size_t i = 0; i < inflight.size();) {
        InFlight &m = inflight[i];
        if (m.step.from != b && m.step.to != b) {
            ++i;
            continue;
        }
        frozen[m.step.partition] = false;
        if (m.repair)
            owedRepairs.push_back(
                {m.step.partition, m.attributed});
        else
            ++migAborted;
        inflight.erase(inflight.begin() +
                       std::vector<InFlight>::difference_type(i));
    }

    // 2. Evict b from every replica set it serves. The strongest
    // survivor is promoted to primary; the lost width is owed as a
    // re-replication shipped by pumpRepairs().
    for (unsigned p2 = 0; p2 < place.keyPartitions; ++p2) {
        std::vector<unsigned> set = currentReplicas(p2);
        bool member = false;
        for (unsigned s : set)
            member |= s == b;
        if (!member)
            continue;
        std::vector<unsigned> survivors;
        for (unsigned s : set)
            if (s != b)
                survivors.push_back(s);
        if (survivors.empty()) {
            // Replication 1 and the only copy died: re-provision
            // onto the coldest healthy board (the real system
            // restores from its durable store).
            const int r = pickReplacement(survivors);
            if (r < 0)
                continue; // whole rack dark; leave it routed at b
            survivors.push_back(unsigned(r));
        }
        partMap->setReplicas(p2, survivors);
        if (survivors.size() < partMap->replicationWidth()) {
            bool owed = frozen[p2];
            for (const RepairJob &j : owedRepairs)
                owed |= j.partition == p2;
            if (!owed) {
                owedRepairs.push_back({p2, b});
                ++outstandingRepairs[b];
            }
        }
    }
    if (outstandingRepairs[b] == 0)
        mon->markRepaired(b);
}

void
RackScheduler::pumpRepairs(sim::Tick when)
{
    if (owedRepairs.empty())
        return;
    std::vector<RepairJob> still;
    for (const RepairJob &j : owedRepairs) {
        std::vector<unsigned> set = currentReplicas(j.partition);
        const int target = pickReplacement(set);
        if (target < 0) {
            // No healthy board free to hold the copy; keep owing.
            still.push_back(j);
            continue;
        }
        const std::uint64_t bytes =
            place.balance.stateBytesBase +
            place.balance.stateBytesPerRequest *
                tracker.totalLoad(j.partition);
        bool dropped = false;
        const sim::Tick ready =
            rack.net().deliver(unsigned(target), bytes, when,
                               dropped, NetTraffic::Migration);
        ++repairStarted;
        if (dropped) {
            // Wire time burned, copy lost: retried at the next
            // arrival (the obligation survives).
            still.push_back(j);
            continue;
        }
        InFlight m;
        m.step.partition = j.partition;
        m.step.from = set.empty() ? unsigned(target) : set[0];
        m.step.to = unsigned(target);
        m.startedAt = when;
        m.readyAt = ready;
        m.repair = true;
        m.attributed = j.attributed;
        frozen[j.partition] = true;
        inflight.push_back(m);
    }
    owedRepairs = std::move(still);
}

void
RackScheduler::processTransitions()
{
    const std::vector<HealthTransition> &log = mon->transitions();
    for (; seenTransitions < log.size(); ++seenTransitions) {
        const HealthTransition &t = log[seenTransitions];
        if (t.to == BoardHealth::Down && place.health.repair)
            repairBoard(t.board);
    }
}

void
RackScheduler::advanceHealth(sim::Tick when)
{
    if (!mon->monitoring())
        return;
    mon->advanceTo(when);
    processTransitions();
    pumpRepairs(when);
    // With the balancer off nothing else drives commitReady, and
    // repair transfers still need their drain-then-switch commit.
    if (!place.balance.window)
        commitReady(when);
}

bool
RackScheduler::shouldShed(unsigned b, sim::Tick send_at,
                          const RackRequest &req) const
{
    if (!mon->monitoring())
        return false;
    const bool suspect = mon->suspectVerdict(b);
    bool pressured = suspect;
    if (!pressured && place.admitWindow && place.admitPerWindow)
        pressured = double(windows[b].size()) >=
                    place.health.shedPressure *
                        double(place.admitPerWindow);
    if (!pressured)
        return false;
    // Predict the front-end delay from observable state: the
    // ingress pipe's committed backlog, this request's wire time,
    // the hop, plus the ack-timeout stall a Suspect board risks.
    const sim::Tick predicted =
        rack.net().backlog(b, send_at) +
        rack.net().wireTicks(req.bytes) +
        rack.net().params().hopLatency +
        (suspect ? place.health.ackTimeout : 0);
    const sim::Tick deadline =
        req.job.timeout ? req.job.timeout : defaultDeadline;
    return double(predicted) >
           double(deadline) * place.health.shedDeadlineFrac;
}

void
RackScheduler::advanceBalancer(sim::Tick when)
{
    while (nextRollAt && when >= nextRollAt) {
        const sim::Tick boundary = nextRollAt;
        nextRollAt += place.balance.window;
        // Commit transfers delivered by this boundary before
        // planning, so the plan sees the freshest committed map.
        commitReady(boundary);
        tracker.roll(place.balance.ewmaAlpha);
        std::vector<unsigned> home(place.keyPartitions);
        for (unsigned p2 = 0; p2 < place.keyPartitions; ++p2)
            home[p2] = partMap->homeOf(p2, rack.nBoards());
        const std::vector<MigrationStep> plan = planMigrations(
            tracker.loads(), home, rack.nBoards(), place.balance,
            frozen);
        for (const MigrationStep &s : plan) {
            // An evicted board carries no load, so the planner
            // sees it as the coldest target — but shipping state
            // onto a board the detector distrusts would hand
            // partitions right back to the failure. (A rejoined
            // board is Healthy again and soaks up load normally.)
            if (mon->monitoring() &&
                mon->state(s.to) != BoardHealth::Healthy)
                continue;
            startMigration(s, boundary);
        }
    }
    commitReady(when);
}

AdmitResult
RackScheduler::enqueueAt(sim::Tick when, RackRequest req,
                         unsigned *board_out)
{
    sim_assert(when >= lastOffer,
               "rack arrivals must be offered in trace order");
    lastOffer = when;
    ++offered;

    advanceHealth(when);

    const unsigned part = partitionOf(req.key);
    if (place.balance.window) {
        advanceBalancer(when);
        // Offered demand, not admitted: rejects are load too.
        tracker.record(part);
    }

    host::RouteInfo info;
    info.key = part;
    info.hasKey = true;
    std::vector<unsigned> group;
    partMap->candidates(info, rack.nBoards(), group);
    bool sawFull = false, sawDrop = false, sawShed = false;
    // Why the previous candidates were skipped decides whether a
    // non-primary delivery counts as a failover (outage signals)
    // or a mere admission re-route (load shedding/spreading).
    bool outagePrior = false, admitPrior = false;
    // Every attempt that draws no ack stalls the front-end for
    // ackTimeout before the next replica is tried.
    sim::Tick penalty = 0;
    for (std::size_t i = 0; i < group.size(); ++i) {
        const unsigned b = group[i];
        if (!mon->routable(b)) {
            // Detector verdict (Down/Probation): no oracle here.
            outagePrior = true;
            continue;
        }
        const sim::Tick sendAt = when + penalty;
        if (admissionFull(b, sendAt)) {
            sawFull = true;
            admitPrior = true;
            continue;
        }
        if (shouldShed(b, sendAt, req)) {
            sawShed = true;
            admitPrior = true;
            continue;
        }
        bool dropped = false;
        const sim::Tick delivered =
            rack.net().deliver(b, req.bytes, sendAt, dropped);
        if (dropped) {
            // No ack will ever come back, and the front-end can't
            // tell a fabric drop from a dead board — both feed the
            // detector the same miss.
            mon->observeMiss(b, sendAt + place.health.ackTimeout);
            sawDrop = true;
            outagePrior = true;
            penalty += place.health.ackTimeout;
            continue;
        }
        if (!mon->aliveAt(b, delivered)) {
            // Delivered into a dead board (the injection point for
            // rack.boardDown / rack.boardCrash): same observable
            // outcome, a missing ack.
            mon->observeMiss(b, sendAt + place.health.ackTimeout);
            outagePrior = true;
            penalty += place.health.ackTimeout;
            continue;
        }
        mon->observeAck(
            b, delivered + rack.net().params().hopLatency);
        if (place.admitWindow && place.admitPerWindow)
            windows[b].push_back(sendAt);
        ++admitted;
        ++boardAdmitted[b];
        if (i > 0) {
            if (outagePrior)
                ++failoverCnt;
            else if (admitPrior)
                ++admitRerouteCnt;
        }
        if (board_out)
            *board_out = b;
        if (InFlight *m = inflightOf(part);
            m && b == m->step.from) {
            // Forwarding epoch: the request drains at the source,
            // and its delta rides to the new home so the snapshot
            // in flight stays current. A dropped delta only costs
            // accounting (the commit re-sends nothing — state is
            // modeled, not materialized).
            ++forwardedCnt;
            ++m->forwardedReqs;
            bool deltaDropped = false;
            rack.net().deliver(m->step.to,
                               place.balance.stateBytesPerRequest,
                               sendAt, deltaDropped,
                               NetTraffic::Migration);
        }
        boardScheds[b]->enqueueAt(delivered, std::move(req.job));
        return AdmitResult::Admitted;
    }
    // Attribution order mirrors how far the request got: a drop
    // means it physically reached the fabric; a shed means the
    // brown-out controller chose to fail it fast; a full window
    // means the rate cap shed it; otherwise every replica was
    // down (detector verdict or missing acks).
    if (sawDrop) {
        ++netLostCnt;
        return AdmitResult::NetLost;
    }
    if (sawShed) {
        ++shedCnt;
        return AdmitResult::Shed;
    }
    if (sawFull) {
        ++rejectedCnt;
        return AdmitResult::Rejected;
    }
    ++boardsDownCnt;
    return AdmitResult::BoardsDown;
}

void
RackScheduler::start()
{
    for (auto &s : boardScheds)
        s->start();
}

RackSummary
RackScheduler::summary() const
{
    RackSummary sum;
    sum.offered = offered;
    sum.admitted = admitted;
    sum.rejected = rejectedCnt;
    sum.boardsDown = boardsDownCnt;
    sum.netLost = netLostCnt;
    sum.shed = shedCnt;
    sum.failovers = failoverCnt;
    sum.admitReroutes = admitRerouteCnt;
    sum.probes = mon->probesSent();
    sum.repairsStarted = repairStarted;
    sum.repairsCommitted = repairCommitted;
    sum.migStarted = migStarted;
    sum.migCommitted = migCommitted;
    sum.migAborted = migAborted;
    sum.forwarded = forwardedCnt;
    sum.migrationBytes = rack.net().migrationBytes();
    sum.netDroppedBytes = rack.net().droppedBytes();

    // Fold per-DPU shard summaries directly (host/summary.hh):
    // availability weighted by each shard's submitted jobs,
    // percentiles recomputed over every completed job.
    host::SummaryFold fold;
    for (const auto &bs : boardScheds)
        for (unsigned d = 0; d < bs->nShards(); ++d)
            fold.add(bs->shard(d).summary(), bs->shard(d).jobs());
    sum.serving = fold.finish();
    sum.usersPerSimSec = sum.serving.throughputJobsPerSec;
    if (offered)
        sum.servedFraction =
            double(sum.serving.completed) / double(offered);
    sum.netPeakUtilization = rack.net().peakUtilization(rack.now());
    return sum;
}

} // namespace dpu::rack

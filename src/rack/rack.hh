/**
 * @file
 * A rack of multi-DPU boards behind one front-end.
 *
 * The paper deployed 500+ DPUs behind an Infiniband fabric but
 * evaluated one SoC; the board tier (DESIGN.md §12-13) composed
 * chips into a board, and the Rack composes boards into the
 * cluster the deployment section describes. Each board is a full
 * board::Board — its own event-kernel partitions, link fabric and
 * epoch runner — and the boards are joined only by the host-phase
 * RackNet (rack/net.hh) plus the static placement decisions of
 * rack::RackScheduler.
 *
 * Determinism. Boards never exchange simulated traffic with each
 * other mid-run: all cross-board interaction happens at admission
 * time, in the host phase, before any board advances. run()
 * therefore advances the boards sequentially in board order, each
 * under its own (possibly multi-threaded) epoch runner, and the
 * whole rack schedule is the composition of N independently
 * bit-deterministic board schedules — identical at every --threads
 * count and under seeded fault replay, exactly as the board tier
 * guarantees per board.
 *
 * All boards share the process-wide fault/trace domains [0,
 * dpusPerBoard): domain d is "DPU d of the currently running
 * board". Because boards run in a fixed order, each domain's
 * streams are consumed in a fixed order too, so replay holds; the
 * cost is that fault streams are correlated across boards at equal
 * DPU index, which chaos coverage does not care about.
 */

#ifndef DPU_RACK_RACK_HH
#define DPU_RACK_RACK_HH

#include <memory>
#include <vector>

#include "board/board.hh"
#include "rack/net.hh"

namespace dpu::rack {

/** Rack shape: N identical boards plus the inter-board network.
 *  Prefer building through topo::ClusterTopology, which validates
 *  the shape and fills this in. */
struct RackParams
{
    unsigned nBoards = 2;
    /** Per-board shape (chips, links, epoch-runner threads). */
    board::BoardParams board{};
    /** Inter-board network timing. */
    NetParams net{};
};

/** N boards joined by a host-phase rack network. */
class Rack
{
  public:
    explicit Rack(const RackParams &params);

    unsigned nBoards() const { return unsigned(boards.size()); }
    unsigned nDpus() const { return nBoards() * p.board.nDpus; }
    const RackParams &params() const { return p; }

    board::Board &board(unsigned b) { return *boards[b]; }
    const board::Board &board(unsigned b) const
    {
        return *boards[b];
    }

    RackNet &net() { return network; }

    /**
     * Run every board until it drains, in board order. @return the
     * rack end tick: the latest board's final tick (all boards
     * started from tick 0, so per-board clocks are directly
     * comparable).
     */
    sim::Tick run();

    /** Latest board end tick so far (valid after run()). */
    sim::Tick now() const { return rackNow; }

    double seconds() const { return double(rackNow) * 1e-12; }

    /** True when every board drained every started kernel. */
    bool allFinished() const;

  private:
    RackParams p;
    RackNet network;
    std::vector<std::unique_ptr<board::Board>> boards;
    sim::Tick rackNow = 0;
};

} // namespace dpu::rack

#endif // DPU_RACK_RACK_HH

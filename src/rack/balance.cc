#include "rack/balance.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dpu::rack {

LoadTracker::LoadTracker(unsigned n_partitions)
    : counts(n_partitions, 0), totals(n_partitions, 0),
      ewma(n_partitions, 0.0)
{
    sim_assert(n_partitions >= 1,
               "load tracker needs at least one partition");
}

void
LoadTracker::record(unsigned partition)
{
    sim_assert(partition < counts.size(),
               "load recorded for unknown partition %u", partition);
    ++counts[partition];
    ++totals[partition];
}

void
LoadTracker::roll(double alpha)
{
    sim_assert(alpha > 0 && alpha <= 1,
               "EWMA alpha must be in (0, 1], got %f", alpha);
    for (std::size_t i = 0; i < counts.size(); ++i) {
        const double cur = double(counts[i]);
        // Prime with the raw first window so a cold tracker does
        // not need several windows to see an obvious hot spot.
        ewma[i] = rolls == 0 ? cur
                             : alpha * cur + (1.0 - alpha) * ewma[i];
        counts[i] = 0;
    }
    ++rolls;
}

double
LoadTracker::load(unsigned partition) const
{
    sim_assert(partition < ewma.size(),
               "load queried for unknown partition %u", partition);
    return ewma[partition];
}

std::uint64_t
LoadTracker::windowLoad(unsigned partition) const
{
    sim_assert(partition < counts.size(),
               "load queried for unknown partition %u", partition);
    return counts[partition];
}

std::uint64_t
LoadTracker::totalLoad(unsigned partition) const
{
    sim_assert(partition < totals.size(),
               "load queried for unknown partition %u", partition);
    return totals[partition];
}

std::vector<MigrationStep>
planMigrations(const std::vector<double> &loads,
               std::vector<unsigned> &home, unsigned n_boards,
               const BalanceParams &p,
               const std::vector<bool> &frozen)
{
    sim_assert(loads.size() == home.size(),
               "partition load/home tables disagree: %zu vs %zu",
               loads.size(), home.size());
    std::vector<MigrationStep> plan;
    if (n_boards < 2)
        return plan;

    std::vector<double> board(n_boards, 0.0);
    double total = 0;
    for (std::size_t part = 0; part < home.size(); ++part) {
        sim_assert(home[part] < n_boards,
                   "partition %zu homed off the rack (board %u)",
                   part, home[part]);
        board[home[part]] += loads[part];
        total += loads[part];
    }
    const double mean = total / double(n_boards);

    while (plan.size() < p.maxMigrationsPerWindow) {
        // Hottest board, lowest index on ties.
        unsigned src = 0;
        for (unsigned b = 1; b < n_boards; ++b)
            if (board[b] > board[src])
                src = b;
        if (board[src] <= p.hotFactor * mean || mean <= 0)
            break;

        // Coldest board, lowest index on ties.
        unsigned dst = src == 0 ? 1 : 0;
        for (unsigned b = 0; b < n_boards; ++b)
            if (b != src && board[b] < board[dst])
                dst = b;

        // Heaviest movable partition on src whose move strictly
        // improves the pair: the destination must stay below the
        // source's pre-move load, else the hot spot just relocates
        // (and the next window would bounce it straight back).
        int pick = -1;
        for (std::size_t part = 0; part < home.size(); ++part) {
            if (home[part] != src)
                continue;
            if (part < frozen.size() && frozen[part])
                continue;
            if (loads[part] < p.minPartitionLoad)
                continue;
            if (board[dst] + loads[part] >= board[src])
                continue;
            if (pick < 0 || loads[part] > loads[pick])
                pick = int(part);
        }
        if (pick < 0)
            break;

        MigrationStep step;
        step.partition = unsigned(pick);
        step.from = src;
        step.to = dst;
        step.load = loads[pick];
        plan.push_back(step);

        home[pick] = dst;
        board[src] -= loads[pick];
        board[dst] += loads[pick];
    }
    return plan;
}

} // namespace dpu::rack

#include "rack/balance.hh"

namespace dpu::rack {

std::vector<MigrationStep>
planMigrations(const std::vector<double> &loads,
               std::vector<unsigned> &home, unsigned n_boards,
               const BalanceParams &p,
               const std::vector<bool> &frozen)
{
    board::PlannerParams planner;
    planner.hotFactor = p.hotFactor;
    planner.maxMigrationsPerWindow = p.maxMigrationsPerWindow;
    planner.minPartitionLoad = p.minPartitionLoad;
    return board::planMigrations(loads, home, n_boards, planner,
                                 frozen);
}

} // namespace dpu::rack

/**
 * @file
 * Open-loop arrival-trace generation: traffic shaped like millions
 * of users hitting a serving cluster.
 *
 * The generator produces a time-sorted event stream from three
 * superimposed effects, all seed-deterministic (sim::Rng, never
 * wall clock):
 *
 *  - a diurnal load curve: the base Poisson rate is modulated by
 *    1 + amp * sin(2*pi * t / period), the classic day/night swing
 *    compressed into simulated time;
 *  - bursts: seed-placed windows during which the instantaneous
 *    rate is multiplied (flash crowds, upstream retries);
 *  - Zipfian keys: request keys are drawn from a Zipf(s)
 *    distribution over the key space, so a handful of hot keys —
 *    and through placement, hot replica groups — carry a large
 *    share of the traffic.
 *
 * Arrivals are drawn by thinning a homogeneous Poisson process at
 * the peak rate, which keeps the stream exact for any rate curve
 * and trivially deterministic. Each event also carries an app
 * index (uniform over the configured mix) and a per-request seed.
 */

#ifndef DPU_RACK_TRACE_HH
#define DPU_RACK_TRACE_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace dpu::rack {

/** Arrival-trace shape. */
struct TraceConfig
{
    /** Mean arrival rate at the diurnal midline (requests/sec of
     *  simulated time, cluster-wide). */
    double ratePerSec = 20000;
    /** Trace length in simulated seconds. */
    double durationSec = 0.01;
    /** Diurnal modulation amplitude in [0, 1). */
    double diurnalAmp = 0.5;
    /** Diurnal period in simulated seconds (a "day"). */
    double diurnalPeriodSec = 0.01;
    /** Expected bursts per simulated second. */
    double burstsPerSec = 200;
    /** Burst length in simulated seconds. */
    double burstLenSec = 0.0005;
    /** Rate multiplier inside a burst. */
    double burstMultiplier = 3.0;
    /** Key-space size. */
    std::uint64_t nKeys = 1 << 16;
    /** Zipf exponent (0 = uniform; ~0.99 = web-like skew). */
    double zipf = 0.99;
    /** Apps in the mix (events carry an index into it). */
    unsigned nApps = 1;
    std::uint64_t seed = 1;

    // --- skew step (hot-shard workloads) ------------------------
    /** When the hot step begins, in simulated seconds; negative
     *  (or past the duration) disables it. */
    double hotStepAtSec = -1;
    /** Fraction of post-step arrivals redirected onto hotStepKeys,
     *  in [0, 1]. */
    double hotStepFraction = 0;
    /** The keys post-step traffic concentrates on — typically
     *  chosen so their partitions collide on one board (see
     *  rack::partitionHome). Empty disables the step. */
    std::vector<std::uint64_t> hotStepKeys;
};

/** One arrival. */
struct TraceEvent
{
    sim::Tick at = 0;
    std::uint64_t key = 0;
    unsigned appIdx = 0;
    /** Per-request dataset seed. */
    std::uint64_t seed = 0;
};

/** Deterministic trace for @p cfg, sorted by arrival tick. */
std::vector<TraceEvent> generateTrace(const TraceConfig &cfg);

/**
 * Seed-deterministic Zipf(s) sampler over [0, n): a cumulative
 * table built once, binary-searched per draw. Exposed for tests
 * (hot-key mass assertions) and reuse by future skew workloads.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::uint64_t n, double s);

    /** Draw a rank in [0, n); rank 0 is the hottest key. */
    std::uint64_t sample(double u01) const;

    /** Probability mass of the @p k hottest keys. */
    double headMass(std::uint64_t k) const;

  private:
    std::vector<double> cdf;
};

} // namespace dpu::rack

#endif // DPU_RACK_TRACE_HH

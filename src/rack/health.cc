#include "rack/health.hh"

#include "sim/fault.hh"
#include "sim/logging.hh"

namespace dpu::rack {

const char *
boardHealthName(BoardHealth s)
{
    switch (s) {
    case BoardHealth::Healthy:
        return "healthy";
    case BoardHealth::Suspect:
        return "suspect";
    case BoardHealth::Down:
        return "down";
    case BoardHealth::Probation:
        return "probation";
    }
    return "?";
}

HealthMonitor::HealthMonitor(RackNet &net_, unsigned n_boards,
                             HealthParams p)
    : net(net_), prm(p), n(n_boards), boards(n_boards)
{
    sim_assert(n >= 1, "health monitor needs at least one board");
    if (!monitoring())
        return;
    sim_assert(prm.ackTimeout > 0,
               "health: ackTimeout must be positive");
    sim_assert(prm.suspectAfter >= 1,
               "health: suspectAfter must be >= 1");
    sim_assert(prm.downAfter >= prm.suspectAfter,
               "health: downAfter (%u) below suspectAfter (%u) "
               "would skip the Suspect state",
               prm.downAfter, prm.suspectAfter);
    sim_assert(prm.rejoinAfter >= 1,
               "health: rejoinAfter must be >= 1");
    nextProbeAt = prm.heartbeatPeriod;
    stats = std::make_unique<sim::StatGroup>("health");
    stats->addFlushHook([this] { foldStats(); });
}

void
HealthMonitor::foldStats()
{
    if (probeCnt)
        stats->counter("probes") = probeCnt;
    if (ackCnt)
        stats->counter("acks") = ackCnt;
    if (missCnt)
        stats->counter("misses") = missCnt;
    if (suspectCnt)
        stats->counter("suspects") = suspectCnt;
    if (downCnt)
        stats->counter("downs") = downCnt;
    if (rejoinCnt)
        stats->counter("rejoins") = rejoinCnt;
}

bool
HealthMonitor::aliveAt(unsigned b, sim::Tick t)
{
    sim_assert(b < n, "board %u off the rack (%u boards)", b, n);
    BoardState &bs = boards[b];
    sim::FaultPlane &fp = sim::faultPlane();
    if (fp.active() &&
        fp.fires(sim::FaultSite::RackBoardCrash, t, int(b))) {
        // A crash is sticky: the board's partition state is gone,
        // and only the repair controller (markRepaired) brings the
        // hardware back.
        bs.crashedLatch = true;
    }
    if (bs.crashedLatch)
        return false;
    return !(fp.active() &&
             fp.fires(sim::FaultSite::RackBoardDown, t, int(b)));
}

void
HealthMonitor::markRepaired(unsigned b)
{
    sim_assert(b < n, "board %u off the rack (%u boards)", b, n);
    boards[b].crashedLatch = false;
}

void
HealthMonitor::push(unsigned b, sim::Tick at, bool ack)
{
    Obs o;
    o.at = at;
    o.seq = seqGen++;
    o.board = b;
    o.ack = ack;
    pending.push(o);
}

void
HealthMonitor::observeAck(unsigned b, sim::Tick at)
{
    if (!monitoring())
        return;
    sim_assert(b < n, "board %u off the rack (%u boards)", b, n);
    push(b, at, true);
}

void
HealthMonitor::observeMiss(unsigned b, sim::Tick at)
{
    if (!monitoring())
        return;
    sim_assert(b < n, "board %u off the rack (%u boards)", b, n);
    push(b, at, false);
}

void
HealthMonitor::transition(unsigned b, BoardHealth to, sim::Tick at)
{
    HealthTransition t;
    t.at = at;
    t.board = b;
    t.from = boards[b].st;
    t.to = to;
    log.push_back(t);
    boards[b].st = to;
    switch (to) {
    case BoardHealth::Suspect:
        ++suspectCnt;
        break;
    case BoardHealth::Down:
        ++downCnt;
        break;
    case BoardHealth::Healthy:
        if (t.from == BoardHealth::Probation)
            ++rejoinCnt;
        break;
    case BoardHealth::Probation:
        break;
    }
}

void
HealthMonitor::resolve(const Obs &o)
{
    BoardState &bs = boards[o.board];
    if (o.ack) {
        ++ackCnt;
        bs.consecMiss = 0;
        ++bs.consecAck;
        switch (bs.st) {
        case BoardHealth::Suspect:
            // One good ack clears a suspicion: misses are
            // ambiguous (drop or death), acks are not.
            transition(o.board, BoardHealth::Healthy, o.at);
            break;
        case BoardHealth::Down:
            transition(o.board, BoardHealth::Probation, o.at);
            bs.consecAck = 1;
            break;
        case BoardHealth::Probation:
            if (bs.consecAck >= prm.rejoinAfter)
                transition(o.board, BoardHealth::Healthy, o.at);
            break;
        case BoardHealth::Healthy:
            break;
        }
        return;
    }
    ++missCnt;
    bs.consecAck = 0;
    ++bs.consecMiss;
    switch (bs.st) {
    case BoardHealth::Healthy:
        if (bs.consecMiss >= prm.suspectAfter)
            transition(o.board, BoardHealth::Suspect, o.at);
        break;
    case BoardHealth::Suspect:
        if (bs.consecMiss >= prm.downAfter)
            transition(o.board, BoardHealth::Down, o.at);
        break;
    case BoardHealth::Probation:
        // Probation is strict: any relapse goes straight back.
        transition(o.board, BoardHealth::Down, o.at);
        break;
    case BoardHealth::Down:
        break;
    }
}

void
HealthMonitor::sendProbes(sim::Tick at)
{
    // Fixed board order per round: the probe schedule is part of
    // the deterministic host phase.
    for (unsigned b = 0; b < n; ++b) {
        ++probeCnt;
        bool dropped = false;
        const sim::Tick delivered = net.deliver(
            b, prm.probeBytes, at, dropped, NetTraffic::Probe);
        if (!dropped && aliveAt(b, delivered)) {
            // The pong is a flit-sized message; the return hop's
            // latency dominates, so model it as one hopLatency.
            push(b, delivered + net.params().hopLatency, true);
        } else {
            push(b, at + prm.ackTimeout, false);
        }
    }
}

void
HealthMonitor::advanceTo(sim::Tick now)
{
    if (!monitoring())
        return;
    while (nextProbeAt <= now) {
        sendProbes(nextProbeAt);
        nextProbeAt += prm.heartbeatPeriod;
    }
    while (!pending.empty() && pending.top().at <= now) {
        const Obs o = pending.top();
        pending.pop();
        resolve(o);
    }
}

} // namespace dpu::rack

#include "rack/trace.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace dpu::rack {

ZipfSampler::ZipfSampler(std::uint64_t n, double s)
{
    sim_assert(n >= 1, "zipf sampler needs a non-empty key space");
    sim_assert(s >= 0, "zipf exponent must be non-negative");
    cdf.resize(n);
    double acc = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        acc += 1.0 / std::pow(double(i + 1), s);
        cdf[i] = acc;
    }
    for (double &v : cdf)
        v /= acc;
}

std::uint64_t
ZipfSampler::sample(double u01) const
{
    const auto it =
        std::lower_bound(cdf.begin(), cdf.end(), u01);
    return std::uint64_t(it == cdf.end() ? cdf.size() - 1
                                         : it - cdf.begin());
}

double
ZipfSampler::headMass(std::uint64_t k) const
{
    if (k == 0)
        return 0;
    return cdf[std::min<std::uint64_t>(k, cdf.size()) - 1];
}

std::vector<TraceEvent>
generateTrace(const TraceConfig &cfg)
{
    sim_assert(cfg.ratePerSec > 0 && cfg.durationSec > 0,
               "trace needs a positive rate and duration");
    sim_assert(cfg.diurnalAmp >= 0 && cfg.diurnalAmp < 1,
               "diurnal amplitude must sit in [0, 1)");
    sim_assert(cfg.burstMultiplier >= 1,
               "a burst cannot slow traffic down");
    sim_assert(cfg.nApps >= 1, "trace needs at least one app");
    sim_assert(cfg.hotStepFraction >= 0 && cfg.hotStepFraction <= 1,
               "hot-step fraction must sit in [0, 1]");
    const bool hotStep = cfg.hotStepAtSec >= 0 &&
                         cfg.hotStepAtSec < cfg.durationSec &&
                         cfg.hotStepFraction > 0 &&
                         !cfg.hotStepKeys.empty();

    sim::Rng rng(cfg.seed * 0x9e3779b97f4a7c15ull + 0x7ac3ull);

    // Seed-placed burst windows over the trace, sorted.
    std::vector<std::pair<double, double>> bursts;
    const double expected = cfg.burstsPerSec * cfg.durationSec;
    const std::uint64_t nBursts = std::uint64_t(expected + 0.5);
    for (std::uint64_t i = 0; i < nBursts; ++i) {
        const double start = rng.uniform() * cfg.durationSec;
        bursts.emplace_back(start, start + cfg.burstLenSec);
    }
    std::sort(bursts.begin(), bursts.end());
    auto inBurst = [&](double t) {
        // Bursts are few; linear probe from a binary-search start.
        auto it = std::upper_bound(
            bursts.begin(), bursts.end(),
            std::make_pair(t, std::numeric_limits<double>::max()));
        while (it != bursts.begin()) {
            --it;
            if (t < it->second)
                return true;
            if (it->first + cfg.burstLenSec < t)
                break;
        }
        return false;
    };

    // Instantaneous rate and its peak, for Poisson thinning.
    auto rateAt = [&](double t) {
        double r = cfg.ratePerSec *
                   (1.0 + cfg.diurnalAmp *
                              std::sin(2.0 * M_PI * t /
                                       cfg.diurnalPeriodSec));
        if (inBurst(t))
            r *= cfg.burstMultiplier;
        return r;
    };
    const double peak = cfg.ratePerSec * (1.0 + cfg.diurnalAmp) *
                        cfg.burstMultiplier;

    ZipfSampler keys(cfg.nKeys, cfg.zipf);

    std::vector<TraceEvent> out;
    out.reserve(std::size_t(cfg.ratePerSec * cfg.durationSec));
    double t = 0;
    while (true) {
        // Exponential gap at the peak rate...
        double u = rng.uniform();
        if (u <= 0)
            u = 1e-18;
        t += -std::log(u) / peak;
        if (t >= cfg.durationSec)
            break;
        // ...thinned down to the instantaneous rate.
        if (rng.uniform() * peak > rateAt(t))
            continue;
        TraceEvent ev;
        ev.at = sim::Tick(t * 1e12);
        ev.key = keys.sample(rng.uniform());
        // Skew step: past the step time, a fixed fraction of
        // traffic collapses onto the hot key set. The extra draws
        // happen only post-step, so the trace prefix is
        // bit-identical with and without the step configured.
        if (hotStep && t >= cfg.hotStepAtSec &&
            rng.uniform() < cfg.hotStepFraction)
            ev.key = cfg.hotStepKeys[rng.below(
                unsigned(cfg.hotStepKeys.size()))];
        ev.appIdx = unsigned(rng.below(cfg.nApps));
        ev.seed = rng.next();
        out.push_back(ev);
    }
    return out;
}

} // namespace dpu::rack

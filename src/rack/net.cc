#include "rack/net.hh"

#include <algorithm>

#include "sim/fault.hh"
#include "sim/logging.hh"

namespace dpu::rack {

RackNet::RackNet(unsigned n_boards, const NetParams &params)
    : n(n_boards), p(params), chans(n), stats("racknet")
{
    sim_assert(n >= 1, "a rack network needs at least one board");
    sim_assert(p.gbPerSec > 0,
               "rack network bandwidth must be positive");
    stats.addFlushHook([this] { foldStats(); });
}

sim::Tick
RackNet::serTicks(std::uint64_t bytes) const
{
    const double wire =
        double(std::max<std::uint64_t>(bytes, p.flitBytes));
    // ps per byte = 1000 / (GB/s), same shape as the board links.
    return sim::Tick(wire * (1000.0 / p.gbPerSec) + 0.5);
}

sim::Tick
RackNet::deliver(unsigned dst, std::uint64_t bytes, sim::Tick now,
                 bool &dropped, NetTraffic cls)
{
    sim_assert(dst < n, "request aimed off the rack (board %u)",
               dst);
    Channel &c = chans[dst];
    const sim::Tick ser = serTicks(bytes);
    const sim::Tick tx_start = std::max(now, c.nextFree);
    const sim::Tick tx_done = tx_start + ser;
    // The wire is occupied either way — a drop happens in the
    // switch, after serialization — so nextFree always advances.
    c.nextFree = tx_done;
    ++c.msgs;

    // Admission runs in the host phase (domain 0) in a fixed order,
    // so these draws replay exactly under the same spec + seed.
    sim::Tick extra = 0;
    std::uint64_t mag = 0;
    sim::FaultPlane &fp = sim::faultPlane();
    if (fp.active() &&
        fp.fires(sim::FaultSite::RackNetDelay, now, int(dst),
                 &mag)) {
        extra = mag ? sim::Tick(mag) : p.hopLatency;
        ++c.delays;
    }
    dropped = fp.active() &&
              fp.fires(sim::FaultSite::RackNetDrop, now, int(dst),
                       &mag);
    if (dropped) {
        // Lost payloads never reached a board: keep them out of
        // the carried-byte and utilization accounting.
        ++c.drops;
        c.dropBytes += bytes;
        c.dropTicks += ser;
    } else {
        c.busyTicks += ser;
        c.bytes += bytes;
        if (cls == NetTraffic::Migration) {
            c.migBytes += bytes;
            ++c.migMsgs;
        } else if (cls == NetTraffic::Probe) {
            c.probeBytes += bytes;
            ++c.probeMsgs;
        }
    }
    return tx_done + p.hopLatency + extra;
}

sim::Tick
RackNet::backlog(unsigned dst, sim::Tick now) const
{
    sim_assert(dst < n, "bad rack endpoint %u", dst);
    const Channel &c = chans[dst];
    return c.nextFree > now ? c.nextFree - now : 0;
}

void
RackNet::foldStats()
{
    std::uint64_t msgs = 0, bytes = 0, drops = 0, delays = 0;
    std::uint64_t dropb = 0, migb = 0, migm = 0;
    std::uint64_t prbb = 0, prbm = 0;
    for (unsigned b = 0; b < n; ++b) {
        const Channel &c = chans[b];
        msgs += c.msgs;
        bytes += c.bytes;
        drops += c.drops;
        delays += c.delays;
        dropb += c.dropBytes;
        migb += c.migBytes;
        migm += c.migMsgs;
        prbb += c.probeBytes;
        prbm += c.probeMsgs;
        if (c.msgs) {
            const std::string ch = "board" + std::to_string(b);
            stats.counter(ch + ".bytes") = c.bytes;
            stats.counter(ch + ".busyTicks") = c.busyTicks;
            if (c.dropBytes)
                stats.counter(ch + ".dropBytes") = c.dropBytes;
            if (c.migBytes)
                stats.counter(ch + ".migBytes") = c.migBytes;
        }
    }
    if (msgs) {
        stats.counter("msgs") = msgs;
        stats.counter("bytes") = bytes;
    }
    if (drops)
        stats.counter("drops") = drops;
    if (dropb)
        stats.counter("dropBytes") = dropb;
    if (migb) {
        stats.counter("migBytes") = migb;
        stats.counter("migMsgs") = migm;
    }
    if (prbb) {
        stats.counter("probeBytes") = prbb;
        stats.counter("probeMsgs") = prbm;
    }
    if (delays)
        stats.counter("delayed") = delays;
}

std::uint64_t
RackNet::bytesCarried() const
{
    std::uint64_t total = 0;
    for (const Channel &c : chans)
        total += c.bytes;
    return total;
}

std::uint64_t
RackNet::droppedBytes() const
{
    std::uint64_t total = 0;
    for (const Channel &c : chans)
        total += c.dropBytes;
    return total;
}

std::uint64_t
RackNet::migrationBytes() const
{
    std::uint64_t total = 0;
    for (const Channel &c : chans)
        total += c.migBytes;
    return total;
}

std::uint64_t
RackNet::probeBytes() const
{
    std::uint64_t total = 0;
    for (const Channel &c : chans)
        total += c.probeBytes;
    return total;
}

std::uint64_t
RackNet::messages() const
{
    std::uint64_t total = 0;
    for (const Channel &c : chans)
        total += c.msgs;
    return total;
}

std::uint64_t
RackNet::drops() const
{
    std::uint64_t total = 0;
    for (const Channel &c : chans)
        total += c.drops;
    return total;
}

double
RackNet::utilization(unsigned dst, sim::Tick end) const
{
    sim_assert(dst < n, "bad rack endpoint %u", dst);
    if (end == 0)
        return 0;
    return double(chans[dst].busyTicks) / double(end);
}

double
RackNet::peakUtilization(sim::Tick end) const
{
    double peak = 0;
    for (unsigned b = 0; b < n; ++b)
        peak = std::max(peak, utilization(b, end));
    return peak;
}

} // namespace dpu::rack

/**
 * @file
 * Observed-signal board failure detection for the rack tier.
 *
 * The paper's 500+ DPU deployment (Section 6) loses boards as a
 * matter of routine, and no production front-end gets to peek at a
 * fault injector to learn about it. This module replaces the
 * oracle read RackScheduler::boardDown used to do on the routing
 * path with a detector driven purely by signals the front-end can
 * actually see:
 *
 *  - completion acks: every admitted request's delivery either
 *    comes back acknowledged (board alive at the delivery tick) or
 *    times out (board dead, or the rack.netDrop fabric ate it —
 *    the front-end cannot tell the difference, which is exactly
 *    why drops alone must not flip a board to Down);
 *
 *  - heartbeat probes: every `heartbeatPeriod` ticks the monitor
 *    sends one small probe per board over the RackNet. Probes are
 *    real traffic (NetTraffic::Probe): they burn wire time on the
 *    board's ingress pipe and are subject to rack.netDrop /
 *    rack.netDelay like any other message. A probe that reaches a
 *    live board acks one hop later; a probe that is dropped or
 *    lands on a dead board times out after `ackTimeout`.
 *
 * Signals feed a per-board hysteresis state machine:
 *
 *     Healthy --(suspectAfter consecutive misses)--> Suspect
 *     Suspect --(downAfter consecutive misses)-----> Down
 *     Suspect --(one ack)--------------------------> Healthy
 *     Down    --(one ack)--------------------------> Probation
 *     Probation --(rejoinAfter consecutive acks)---> Healthy
 *     Probation --(one miss)-----------------------> Down
 *
 * Down and Probation boards are not routable; Suspect boards still
 * serve (the brown-out controller may shed deadline-risky requests
 * aimed at them). Observations are resolved in (tick, sequence)
 * order from a pending queue, and probes are emitted on a fixed
 * host-phase schedule, so the detector — like everything else at
 * admission time — is a pure function of the trace and stays
 * bit-identical at every --threads count.
 *
 * The monitor also owns the *board fault model*: aliveAt() is the
 * injection point where `rack.boardDown` (transient window) and
 * `rack.boardCrash` (state lost; the board stays dead past its
 * window until markRepaired()) consult the fault plane. These are
 * the only fault-plane reads left on the rack side of a request —
 * they model the physical outcome of a send at the board, exactly
 * like RackNet::deliver models a drop in the switch — and the
 * routing decision itself sees nothing but detector verdicts. The
 * oracle survives only as a test probe (tests compare transition
 * ticks against injected fault windows to measure detection
 * latency and false positives).
 *
 * Monitoring is opt-in: with heartbeatPeriod = 0 the monitor sends
 * no probes, records no observations and keeps every board
 * Healthy, so un-monitored racks run the exact pre-detector
 * admission schedule and their goldens stay byte-identical.
 */

#ifndef DPU_RACK_HEALTH_HH
#define DPU_RACK_HEALTH_HH

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "rack/net.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace dpu::rack {

/** Detector verdict for one board. */
enum class BoardHealth : std::uint8_t
{
    Healthy,   ///< serving normally
    Suspect,   ///< missed heartbeats; still routable, shed-eligible
    Down,      ///< declared failed; unroutable, repair triggered
    Probation, ///< acking again; unroutable until rejoin hysteresis
};

/** Printable name of a verdict ("healthy", "suspect", ...). */
const char *boardHealthName(BoardHealth s);

/** Failure-detection / brown-out knobs. Defaults leave monitoring
 *  OFF (heartbeatPeriod = 0) so existing racks and goldens are
 *  untouched; dead-board failover still works per-request via ack
 *  timeouts even when monitoring is off. */
struct HealthParams
{
    /** Probe cadence in ticks; 0 disables detection entirely. */
    sim::Tick heartbeatPeriod = 0;
    /** Probe payload carried per board per round. */
    std::uint64_t probeBytes = 128;
    /** No ack within this many ticks of a send = one miss. Also
     *  the failover penalty a dead/dropped attempt costs. */
    sim::Tick ackTimeout = sim::Tick(50'000'000); // 50 us
    /** Consecutive misses before Healthy -> Suspect. */
    unsigned suspectAfter = 2;
    /** Consecutive misses before Suspect -> Down (>= suspectAfter). */
    unsigned downAfter = 4;
    /** Consecutive Probation acks before rejoining Healthy. */
    unsigned rejoinAfter = 3;
    /** Promote/re-replicate partitions off Down boards. */
    bool repair = true;
    /** Brown-out: admission-window occupancy fraction above which
     *  a board counts as pressured even while Healthy. */
    double shedPressure = 0.9;
    /** Brown-out: shed when the predicted front-end delay exceeds
     *  this fraction of the request's deadline. */
    double shedDeadlineFrac = 0.25;
};

/** One detector state change (tests measure detection latency and
 *  false positives against these). */
struct HealthTransition
{
    sim::Tick at = 0; ///< tick the deciding observation carried
    unsigned board = 0;
    BoardHealth from = BoardHealth::Healthy;
    BoardHealth to = BoardHealth::Healthy;
};

/** Per-board failure detector + board fault model. */
class HealthMonitor
{
  public:
    HealthMonitor(RackNet &net, unsigned n_boards, HealthParams p);

    const HealthParams &params() const { return prm; }
    unsigned size() const { return n; }

    /** True when detection is armed (heartbeatPeriod > 0). */
    bool monitoring() const { return prm.heartbeatPeriod > 0; }

    // --- board fault model (the injection point) ----------------

    /**
     * Is board @p b physically able to ack a message at @p t?
     * Consults rack.boardDown (transient) and rack.boardCrash
     * (latched until markRepaired) fault rules — the only
     * fault-plane reads on the rack request path. Host phase only;
     * consumes injection opportunities.
     */
    bool aliveAt(unsigned b, sim::Tick t);

    /** True while @p b's crash latch is set (state lost). */
    bool crashed(unsigned b) const { return boards[b].crashedLatch; }

    /** Repair finished re-provisioning @p b: clear the crash
     *  latch so probes can bring it back through Probation. */
    void markRepaired(unsigned b);

    // --- observable signals -------------------------------------

    /** A send to @p b was acknowledged; the ack arrived at @p at. */
    void observeAck(unsigned b, sim::Tick at);

    /** A send to @p b timed out; the miss is known at @p at. */
    void observeMiss(unsigned b, sim::Tick at);

    /**
     * Advance the monitor's clock to @p now: emit every heartbeat
     * round due by @p now (probes ride the RackNet and generate
     * ack/miss observations of their own), then resolve every
     * pending observation whose tick has passed, in (tick, seq)
     * order. Call from the admission path before routing, in trace
     * order. No-op while monitoring is off.
     */
    void advanceTo(sim::Tick now);

    // --- verdicts -----------------------------------------------

    BoardHealth state(unsigned b) const { return boards[b].st; }

    /** Routing verdict: Healthy and Suspect boards serve. */
    bool
    routable(unsigned b) const
    {
        return boards[b].st == BoardHealth::Healthy ||
               boards[b].st == BoardHealth::Suspect;
    }

    bool
    suspectVerdict(unsigned b) const
    {
        return boards[b].st == BoardHealth::Suspect;
    }

    /** Every state change so far, in decision order. */
    const std::vector<HealthTransition> &
    transitions() const
    {
        return log;
    }

    std::uint64_t probesSent() const { return probeCnt; }
    std::uint64_t acksSeen() const { return ackCnt; }
    std::uint64_t missesSeen() const { return missCnt; }

    /** The "health" stat group; nullptr while monitoring is off. */
    sim::StatGroup *statGroup() { return stats.get(); }

  private:
    /** One pending ack/miss, resolved at its observation tick. */
    struct Obs
    {
        sim::Tick at = 0;
        std::uint64_t seq = 0; ///< push order; total-order tiebreak
        unsigned board = 0;
        bool ack = false;
    };

    struct ObsLater
    {
        bool
        operator()(const Obs &a, const Obs &b) const
        {
            return a.at != b.at ? a.at > b.at : a.seq > b.seq;
        }
    };

    struct BoardState
    {
        BoardHealth st = BoardHealth::Healthy;
        unsigned consecMiss = 0;
        unsigned consecAck = 0;
        bool crashedLatch = false;
    };

    /** Queue an observation for deterministic resolution. */
    void push(unsigned b, sim::Tick at, bool ack);

    /** Apply one resolved observation to its board's machine. */
    void resolve(const Obs &o);

    /** Record a state change (log + counters). */
    void transition(unsigned b, BoardHealth to, sim::Tick at);

    /** One probe round: ping every board at @p at. */
    void sendProbes(sim::Tick at);

    void foldStats();

    RackNet &net;
    HealthParams prm;
    unsigned n;
    std::vector<BoardState> boards;
    std::priority_queue<Obs, std::vector<Obs>, ObsLater> pending;
    std::uint64_t seqGen = 0;
    sim::Tick nextProbeAt = 0; ///< 0 = monitoring off
    std::vector<HealthTransition> log;

    std::uint64_t probeCnt = 0;
    std::uint64_t ackCnt = 0;
    std::uint64_t missCnt = 0;
    std::uint64_t suspectCnt = 0;
    std::uint64_t downCnt = 0;
    std::uint64_t rejoinCnt = 0;
    /** Created only when monitoring is on, so un-monitored runs
     *  keep their stat snapshots byte-identical. */
    std::unique_ptr<sim::StatGroup> stats;
};

} // namespace dpu::rack

#endif // DPU_RACK_HEALTH_HH

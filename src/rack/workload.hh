/**
 * @file
 * Trace-to-request materialization: the glue between the arrival
 * generator (rack/trace.hh) and the serving stack.
 *
 * A RequestMix is an ordered list of registry apps with per-app
 * option overrides (small working sets for cluster-scale runs). A
 * TraceEvent's appIdx picks the mix entry, its key becomes the
 * placement key, and its seed the per-request dataset seed — so
 * bench_rack and the rack tests materialize identical request
 * streams from identical traces.
 */

#ifndef DPU_RACK_WORKLOAD_HH
#define DPU_RACK_WORKLOAD_HH

#include <string>
#include <utility>
#include <vector>

#include "rack/scheduler.hh"
#include "rack/trace.hh"

namespace dpu::rack {

/** One mix entry: a registry app plus option overrides. */
struct MixApp
{
    std::string name;
    std::vector<std::pair<std::string, std::string>> opts;
};

/** The standard serving mix at cluster-scale (small) sizes. */
std::vector<MixApp> servingMix();

/** Materialize @p ev against @p mix (asserts the app resolves). */
RackRequest makeRequest(const TraceEvent &ev,
                        const std::vector<MixApp> &mix);

} // namespace dpu::rack

#endif // DPU_RACK_WORKLOAD_HH

#include "rack/workload.hh"

#include "apps/registry.hh"
#include "sim/logging.hh"

namespace dpu::rack {

std::vector<MixApp>
servingMix()
{
    // The bench_board serving mix, shrunk so a single request is a
    // few hundred microseconds of chip time: cluster runs are about
    // placement and tails, not per-request depth.
    return {
        {"filter", {{"rowsPerCore", "4096"}}},
        {"groupby-low", {{"nRows", "16384"}}},
        {"hll-crc",
         {{"nElements", "8192"}, {"cardinality", "2048"}}},
        {"json", {{"nRecords", "512"}}},
    };
}

RackRequest
makeRequest(const TraceEvent &ev, const std::vector<MixApp> &mix)
{
    sim_assert(!mix.empty(), "request mix is empty");
    const MixApp &m = mix[ev.appIdx % mix.size()];
    const apps::AppSpec *spec = apps::findApp(m.name);
    sim_assert(spec, "mix app \"%s\" missing from registry",
               m.name.c_str());
    RackRequest req;
    req.job.app = spec->name;
    req.job.cfg = spec->makeConfig();
    for (const auto &[k, v] : m.opts)
        sim_assert(spec->set(req.job.cfg, k, v),
                   "app %s rejected option %s=%s",
                   spec->name.c_str(), k.c_str(), v.c_str());
    req.job.seed = ev.seed;
    req.key = ev.key;
    return req;
}

} // namespace dpu::rack

/**
 * @file
 * Hot-shard detection and migration planning for the rack tier.
 *
 * Static hash placement (rack/scheduler.hh) is blind to skew: a
 * Zipf hot spot lands whole partition groups on one board, whose
 * per-DPU queues saturate while the rest of the rack idles. The
 * balancer turns placement into a feedback loop, all of it inside
 * the host phase so the rack stays bit-deterministic:
 *
 *  - LoadTracker keeps a per-partition request count for the
 *    current observation window plus an EWMA across windows
 *    (load = alpha * window + (1 - alpha) * ewma), so a transient
 *    burst does not trigger a migration but a sustained step does.
 *
 *  - planMigrations() runs at each window boundary: it folds the
 *    partition EWMAs into per-board loads, flags boards hotter
 *    than `hotFactor` x the rack mean, and greedily picks up to
 *    `maxMigrationsPerWindow` (partition, from, to) moves onto the
 *    coldest boards. Every choice breaks ties by lowest index and
 *    requires strict improvement (the destination, with the
 *    partition added, must stay below the source's current load),
 *    so planning is deterministic and cannot oscillate a partition
 *    between two equally-loaded boards.
 *
 * The RackScheduler executes the plan with a drain-then-switch
 * protocol (see scheduler.hh): state ships over the RackNet as
 * Migration traffic, arrivals keep draining at the source during
 * the transfer (the forwarding epoch), and the partition map only
 * flips once the transfer's delivery tick passes.
 */

#ifndef DPU_RACK_BALANCE_HH
#define DPU_RACK_BALANCE_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace dpu::rack {

/** Balancer knobs. Defaults leave it OFF (window = 0) so existing
 *  topologies and goldens are untouched. */
struct BalanceParams
{
    /** Observation-window length in ticks; 0 disables balancing. */
    sim::Tick window = 0;
    /** EWMA weight of the newest window, in (0, 1]. */
    double ewmaAlpha = 0.4;
    /** A board is hot above hotFactor x mean board load (>= 1). */
    double hotFactor = 1.5;
    /** Migration budget per window boundary. */
    unsigned maxMigrationsPerWindow = 1;
    /** Partitions below this EWMA load never migrate (not worth
     *  the state transfer). */
    double minPartitionLoad = 4.0;
    /** Partition state shipped per migration: a fixed base... */
    std::uint64_t stateBytesBase = 64 * 1024;
    /** ...plus this much per request the partition absorbed (its
     *  working set grows with traffic). */
    std::uint64_t stateBytesPerRequest = 256;
};

/** Windowed per-partition load: current-window counts + EWMA. */
class LoadTracker
{
  public:
    explicit LoadTracker(unsigned n_partitions);

    unsigned size() const { return unsigned(counts.size()); }

    /** Count one request aimed at @p partition. */
    void record(unsigned partition);

    /** Close the window: fold counts into the EWMAs and reset.
     *  The first roll primes each EWMA with its raw count. */
    void roll(double alpha);

    /** Smoothed (EWMA) load of @p partition. */
    double load(unsigned partition) const;
    /** Requests seen for @p partition in the open window. */
    std::uint64_t windowLoad(unsigned partition) const;
    /** All smoothed loads, indexed by partition. */
    const std::vector<double> &loads() const { return ewma; }
    /** Lifetime requests recorded against @p partition. */
    std::uint64_t totalLoad(unsigned partition) const;
    unsigned rollsDone() const { return rolls; }

  private:
    std::vector<std::uint64_t> counts; ///< open window
    std::vector<std::uint64_t> totals; ///< lifetime
    std::vector<double> ewma;
    unsigned rolls = 0;
};

/** One planned partition move. */
struct MigrationStep
{
    unsigned partition = 0;
    unsigned from = 0;
    unsigned to = 0;
    /** The partition's smoothed load at planning time. */
    double load = 0;
};

/**
 * Plan up to maxMigrationsPerWindow moves off hot boards.
 *
 * @p loads       per-partition EWMA loads (LoadTracker::loads()).
 * @p home        partition -> owning board, updated in place as
 *                steps are planned (so one call never plans two
 *                moves of the same partition).
 * @p n_boards    board count.
 * @p frozen      partitions that may not move (in-flight
 *                migrations); indexed by partition, may be empty.
 *
 * Deterministic: identical inputs give identical plans.
 */
std::vector<MigrationStep>
planMigrations(const std::vector<double> &loads,
               std::vector<unsigned> &home, unsigned n_boards,
               const BalanceParams &p,
               const std::vector<bool> &frozen = {});

} // namespace dpu::rack

#endif // DPU_RACK_BALANCE_HH

/**
 * @file
 * Hot-shard detection and migration planning for the rack tier.
 *
 * Static hash placement (rack/scheduler.hh) is blind to skew: a
 * Zipf hot spot lands whole partition groups on one board, whose
 * per-DPU queues saturate while the rest of the rack idles. The
 * balancer turns placement into a feedback loop, all of it inside
 * the host phase so the rack stays bit-deterministic.
 *
 * The mechanism — windowed EWMA load tracking plus a deterministic
 * greedy planner — is shared with the board tier (it moved to
 * board/balance.hh when the DPU-level balancer learned to execute
 * migrations through the real DMS descriptor path); this header
 * keeps the rack-tier spelling: LoadTracker and MigrationStep are
 * aliases, and planMigrations() takes the rack's BalanceParams.
 *
 * The RackScheduler executes the plan with a drain-then-switch
 * protocol (see scheduler.hh): state ships over the RackNet as
 * Migration traffic, arrivals keep draining at the source during
 * the transfer (the forwarding epoch), and the partition map only
 * flips once the transfer's delivery tick passes.
 */

#ifndef DPU_RACK_BALANCE_HH
#define DPU_RACK_BALANCE_HH

#include <cstdint>
#include <vector>

#include "board/balance.hh"
#include "sim/types.hh"

namespace dpu::rack {

/** Balancer knobs. Defaults leave it OFF (window = 0) so existing
 *  topologies and goldens are untouched. */
struct BalanceParams
{
    /** Observation-window length in ticks; 0 disables balancing. */
    sim::Tick window = 0;
    /** EWMA weight of the newest window, in (0, 1]. */
    double ewmaAlpha = 0.4;
    /** A board is hot above hotFactor x mean board load (>= 1). */
    double hotFactor = 1.5;
    /** Migration budget per window boundary. */
    unsigned maxMigrationsPerWindow = 1;
    /** Partitions below this EWMA load never migrate (not worth
     *  the state transfer). */
    double minPartitionLoad = 4.0;
    /** Partition state shipped per migration: a fixed base... */
    std::uint64_t stateBytesBase = 64 * 1024;
    /** ...plus this much per request the partition absorbed (its
     *  working set grows with traffic). */
    std::uint64_t stateBytesPerRequest = 256;
};

/** Windowed per-partition load: current-window counts + EWMA. */
using LoadTracker = board::LoadTracker;

/** One planned partition move. */
using MigrationStep = board::MigrationStep;

/**
 * Plan up to maxMigrationsPerWindow moves off hot boards; see
 * board::planMigrations for the algorithm and its laws.
 *
 * Deterministic: identical inputs give identical plans.
 */
std::vector<MigrationStep>
planMigrations(const std::vector<double> &loads,
               std::vector<unsigned> &home, unsigned n_boards,
               const BalanceParams &p,
               const std::vector<bool> &frozen = {});

} // namespace dpu::rack

#endif // DPU_RACK_BALANCE_HH

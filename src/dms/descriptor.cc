#include "dms/descriptor.hh"

#include "sim/logging.hh"

namespace dpu::dms {

namespace {

/** Insert @p value into @p word at bits [hi:lo]. */
void
put(std::uint32_t &word, unsigned hi, unsigned lo, std::uint32_t value)
{
    const std::uint32_t width = hi - lo + 1;
    const std::uint32_t mask =
        width >= 32 ? ~0u : ((1u << width) - 1u);
    sim_assert((value & ~mask) == 0,
               "descriptor field overflow: value=%u bits=[%u:%u]",
               value, hi, lo);
    word |= (value & mask) << lo;
}

/** Extract bits [hi:lo] from @p word. */
std::uint32_t
get(std::uint32_t word, unsigned hi, unsigned lo)
{
    const std::uint32_t width = hi - lo + 1;
    const std::uint32_t mask =
        width >= 32 ? ~0u : ((1u << width) - 1u);
    return (word >> lo) & mask;
}

std::uint32_t
widthCode(std::uint8_t bytes)
{
    switch (bytes) {
      case 1: return 0;
      case 2: return 1;
      case 4: return 2;
      case 8: return 3;
      default: panic("bad column width %u", bytes);
    }
}

std::uint8_t
widthBytes(std::uint32_t code)
{
    return std::uint8_t(1u << code);
}

} // namespace

EncodedDesc
encode(const Descriptor &d)
{
    EncodedDesc e;
    auto &w = e.w;

    // Word 0 is common: Type, Notify(+en), Wait(+en), LinkAddr.
    sim_assert(std::uint32_t(d.type) <= 0xf,
               "descriptor type does not fit the 4-bit field");
    put(w[0], 31, 28, std::uint32_t(d.type));
    if (d.notifyEvent >= 0) {
        put(w[0], 27, 27, 1);
        put(w[0], 25, 21, std::uint32_t(d.notifyEvent));
    }
    if (d.waitEvent >= 0) {
        put(w[0], 26, 26, 1);
        put(w[0], 20, 16, std::uint32_t(d.waitEvent));
    }

    switch (d.type) {
      case DescType::DdrToDmem:
      case DescType::DmemToDdr:
        // Exactly the Table 2 layout.
        put(w[0], 15, 0, d.linkAddr);
        put(w[1], 30, 28, widthCode(d.colWidth));
        put(w[1], 25, 25, d.gatherSrc);
        put(w[1], 24, 24, d.scatterDst);
        put(w[1], 23, 23, d.rle);
        put(w[1], 17, 17, d.srcAddrInc);
        put(w[1], 16, 16, d.dstAddrInc);
        sim_assert(d.ddrAddr < (1ull << 36), "DDR addr beyond 36 bits");
        if (d.gatherSrc || d.scatterDst) {
            // Gather/scatter moves are element aligned, so DDR addr
            // bits [1:0] are free to carry the BV memory bank.
            sim_assert((d.ddrAddr & 0x3) == 0,
                       "gather/scatter base must be 4 B aligned");
            put(w[1], 3, 2, std::uint32_t(d.ddrAddr >> 2) & 0x3);
            put(w[1], 1, 0, d.ibank);
        } else {
            put(w[1], 3, 0, std::uint32_t(d.ddrAddr & 0xf));
        }
        sim_assert(d.rows < (1u << 16), "rows beyond 16 bits: %u",
                   d.rows);
        put(w[2], 31, 16, d.rows);
        put(w[2], 15, 0, d.dmemAddr);
        w[3] = std::uint32_t(d.ddrAddr >> 4);
        break;

      case DescType::DdrToDms:
        // LinkAddr is unused for this type; it carries the
        // projection mask.
        put(w[0], 15, 0, d.colMask);
        sim_assert(d.colMask == 0 ||
                   __builtin_popcount(d.colMask) == d.nCols,
                   "colMask must select exactly nCols columns");
        put(w[1], 31, 31, d.srcAddrInc);
        put(w[1], 30, 28, widthCode(d.colWidth));
        sim_assert(d.colStride < (1u << 24),
                   "column stride beyond 24 bits: %u", d.colStride);
        put(w[1], 27, 4, d.colStride);
        put(w[1], 3, 0, std::uint32_t(d.ddrAddr & 0xf));
        put(w[2], 31, 16, d.rows);
        put(w[2], 15, 8, d.nCols);
        put(w[2], 7, 0, d.ibank);
        w[3] = std::uint32_t(d.ddrAddr >> 4);
        break;

      case DescType::DmsToDmem:
        put(w[1], 30, 28, widthCode(d.colWidth));
        put(w[1], 23, 16, d.nCols);
        put(w[1], 9, 8, d.ibank);
        put(w[1], 1, 0, d.cidBank);
        put(w[2], 31, 16, d.rows);
        break;

      case DescType::DmemToDms:
        put(w[1], 23, 23, d.rle);
        put(w[1], 1, 0, d.ibank);
        put(w[2], 31, 16, d.rows);
        put(w[2], 15, 0, d.dmemAddr);
        break;

      case DescType::DmsToDdr:
        put(w[1], 30, 28, widthCode(d.colWidth));
        put(w[1], 27, 25, std::uint32_t(d.imem));
        put(w[1], 24, 23, d.ibank);
        put(w[1], 3, 0, std::uint32_t(d.ddrAddr & 0xf));
        put(w[2], 31, 16, d.rows);
        w[3] = std::uint32_t(d.ddrAddr >> 4);
        break;

      case DescType::DmsToDms:
        put(w[1], 28, 26, std::uint32_t(d.imem));
        put(w[1], 25, 24, d.ibank);
        put(w[1], 23, 21, std::uint32_t(d.imem2));
        put(w[1], 20, 19, d.ibank2);
        put(w[2], 31, 16, d.rows);
        break;

      case DescType::HashCol:
        put(w[1], 30, 28, widthCode(d.colWidth));
        put(w[1], 23, 23, d.rangeMode);
        put(w[1], 21, 14, d.nCols);
        put(w[1], 9, 8, d.ibank);
        put(w[1], 5, 4, d.ibank2);
        put(w[1], 1, 0, d.cidBank);
        put(w[2], 31, 16, d.rows);
        break;

      case DescType::Loop:
        put(w[0], 15, 0, d.linkAddr);
        put(w[1], 15, 0, d.iterations);
        break;

      case DescType::EventCtl:
        put(w[1], 1, 0, std::uint32_t(d.eventOp));
        w[2] = d.eventMask;
        break;

      case DescType::HashProg:
        put(w[1], 0, 0, d.hashUseCrc);
        put(w[1], 15, 8, d.radixBits);
        put(w[1], 23, 16, d.radixShift);
        break;

      case DescType::RangeProg:
      case DescType::PartDstCfg:
        put(w[2], 31, 16, d.rows);
        put(w[2], 15, 0, d.dmemAddr);
        break;

      case DescType::PartFlush:
      case DescType::Nop:
        break;
    }
    return e;
}

Descriptor
decode(const EncodedDesc &e)
{
    const auto &w = e.w;
    Descriptor d;

    d.type = DescType(get(w[0], 31, 28));
    d.notifyEvent =
        get(w[0], 27, 27) ? std::int8_t(get(w[0], 25, 21)) : -1;
    d.waitEvent =
        get(w[0], 26, 26) ? std::int8_t(get(w[0], 20, 16)) : -1;

    switch (d.type) {
      case DescType::DdrToDmem:
      case DescType::DmemToDdr:
        d.linkAddr = std::uint16_t(get(w[0], 15, 0));
        d.colWidth = widthBytes(get(w[1], 30, 28));
        d.gatherSrc = get(w[1], 25, 25);
        d.scatterDst = get(w[1], 24, 24);
        d.rle = get(w[1], 23, 23);
        d.srcAddrInc = get(w[1], 17, 17);
        d.dstAddrInc = get(w[1], 16, 16);
        d.rows = get(w[2], 31, 16);
        d.dmemAddr = std::uint16_t(get(w[2], 15, 0));
        if (d.gatherSrc || d.scatterDst) {
            // DDRAddr[1:0] carry the BV memory bank (see encode).
            d.ibank = std::uint8_t(get(w[1], 1, 0));
            d.ddrAddr =
                (mem::Addr(w[3]) << 4) | (get(w[1], 3, 2) << 2);
        } else {
            d.ddrAddr = (mem::Addr(w[3]) << 4) | get(w[1], 3, 0);
        }
        break;

      case DescType::DdrToDms:
        d.colMask = std::uint16_t(get(w[0], 15, 0));
        d.srcAddrInc = get(w[1], 31, 31);
        d.colWidth = widthBytes(get(w[1], 30, 28));
        d.colStride = get(w[1], 27, 4);
        d.rows = get(w[2], 31, 16);
        d.nCols = std::uint8_t(get(w[2], 15, 8));
        d.ibank = std::uint8_t(get(w[2], 7, 0));
        d.imem = IMem::Cmem;
        d.ddrAddr = (mem::Addr(w[3]) << 4) | get(w[1], 3, 0);
        break;

      case DescType::DmsToDmem:
        d.colWidth = widthBytes(get(w[1], 30, 28));
        d.nCols = std::uint8_t(get(w[1], 23, 16));
        d.ibank = std::uint8_t(get(w[1], 9, 8));
        d.cidBank = std::uint8_t(get(w[1], 1, 0));
        d.imem = IMem::Cmem;
        d.rows = get(w[2], 31, 16);
        break;

      case DescType::DmemToDms:
        d.rle = get(w[1], 23, 23);
        d.ibank = std::uint8_t(get(w[1], 1, 0));
        d.imem = IMem::Bv;
        d.rows = get(w[2], 31, 16);
        d.dmemAddr = std::uint16_t(get(w[2], 15, 0));
        break;

      case DescType::DmsToDdr:
        d.colWidth = widthBytes(get(w[1], 30, 28));
        d.imem = IMem(get(w[1], 27, 25));
        d.ibank = std::uint8_t(get(w[1], 24, 23));
        d.rows = get(w[2], 31, 16);
        d.ddrAddr = (mem::Addr(w[3]) << 4) | get(w[1], 3, 0);
        break;

      case DescType::DmsToDms:
        d.imem = IMem(get(w[1], 28, 26));
        d.ibank = std::uint8_t(get(w[1], 25, 24));
        d.imem2 = IMem(get(w[1], 23, 21));
        d.ibank2 = std::uint8_t(get(w[1], 20, 19));
        d.rows = get(w[2], 31, 16);
        break;

      case DescType::HashCol:
        d.colWidth = widthBytes(get(w[1], 30, 28));
        d.rangeMode = get(w[1], 23, 23);
        d.nCols = std::uint8_t(get(w[1], 21, 14));
        d.ibank = std::uint8_t(get(w[1], 9, 8));
        d.ibank2 = std::uint8_t(get(w[1], 5, 4));
        d.cidBank = std::uint8_t(get(w[1], 1, 0));
        d.imem = IMem::Cmem;
        d.imem2 = IMem::Crc;
        d.rows = get(w[2], 31, 16);
        break;

      case DescType::Loop:
        d.linkAddr = std::uint16_t(get(w[0], 15, 0));
        d.iterations = std::uint16_t(get(w[1], 15, 0));
        break;

      case DescType::EventCtl:
        d.eventOp = EventOp(get(w[1], 1, 0));
        d.eventMask = w[2];
        break;

      case DescType::HashProg:
        d.hashUseCrc = get(w[1], 0, 0);
        d.radixBits = std::uint8_t(get(w[1], 15, 8));
        d.radixShift = std::uint8_t(get(w[1], 23, 16));
        break;

      case DescType::RangeProg:
      case DescType::PartDstCfg:
        d.rows = get(w[2], 31, 16);
        d.dmemAddr = std::uint16_t(get(w[2], 15, 0));
        break;

      case DescType::PartFlush:
      case DescType::Nop:
        break;
    }
    return d;
}

const char *
descTypeName(DescType t)
{
    switch (t) {
      case DescType::Nop: return "Nop";
      case DescType::DdrToDmem: return "DdrToDmem";
      case DescType::DmemToDdr: return "DmemToDdr";
      case DescType::DdrToDms: return "DdrToDms";
      case DescType::DmsToDmem: return "DmsToDmem";
      case DescType::DmemToDms: return "DmemToDms";
      case DescType::DmsToDdr: return "DmsToDdr";
      case DescType::DmsToDms: return "DmsToDms";
      case DescType::HashCol: return "HashCol";
      case DescType::Loop: return "Loop";
      case DescType::EventCtl: return "EventCtl";
      case DescType::HashProg: return "HashProg";
      case DescType::RangeProg: return "RangeProg";
      case DescType::PartDstCfg: return "PartDstCfg";
      case DescType::PartFlush: return "PartFlush";
    }
    return "?";
}

} // namespace dpu::dms

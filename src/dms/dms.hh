/**
 * @file
 * The Data Movement System, assembled (Figure 6): per-core DMADs,
 * the shared DMAC, and the per-core event files, plus the three
 * core-facing primitives software uses — push, wfe and clear_event
 * (Section 3.1, "DMS Interface and Execution Model").
 */

#ifndef DPU_DMS_DMS_HH
#define DPU_DMS_DMS_HH

#include <memory>
#include <vector>

#include "core/dp_core.hh"
#include "dms/dmac.hh"
#include "dms/dmad.hh"
#include "dms/dms_context.hh"

namespace dpu::dms {

/** The whole DMS block of one DPU. */
class Dms
{
  public:
    /**
     * @param base_core Global id of the complex's first core (0 on
     *                  the 40 nm die; 32*k for the 16 nm complexes).
     */
    Dms(sim::EventQueue &eq, mem::MainMemory &mm, unsigned n_cores,
        const DmsParams &params = DmsParams{},
        unsigned base_core = 0);

    /** Bind core @p id's DMEM (done by the SoC during construction). */
    void attachCore(unsigned id, mem::Dmem *dmem);

    // ------------------------------------------------------------
    // Core-side instructions (call from inside a core's kernel)
    // ------------------------------------------------------------

    /**
     * The push instruction: identify a descriptor by its DMEM
     * offset and one of the two channels (Section 3.1).
     */
    void push(core::DpCore &c, unsigned channel,
              std::uint16_t desc_addr);

    /** Wait-For-Event: block until event @p ev of this core is set. */
    void wfe(core::DpCore &c, unsigned ev);

    /** Outcome of a bounded wait (see wfeFor). */
    enum class WfeResult : std::uint8_t
    {
        Ok,      ///< event set, completion was clean
        Error,   ///< event set, descriptor completed with error
        Timeout, ///< deadline reached before the event set
    };

    /**
     * Bounded wait-for-event: like wfe() but gives up after
     * @p timeout ticks and reports descriptor error completions
     * (injected or real) instead of handing back a poisoned buffer.
     */
    WfeResult wfeFor(core::DpCore &c, unsigned ev, sim::Tick timeout);

    /** Clear event @p ev (consumer hands the buffer back). */
    void clearEvent(core::DpCore &c, unsigned ev);

    /** Non-blocking event test (poll form of wfe). */
    bool
    eventSet(unsigned core_id, unsigned ev) const
    {
        return ctx.events[core_id].isSet(ev);
    }

    /** True when @p ev of @p core_id completed with error status. */
    bool
    eventError(unsigned core_id, unsigned ev) const
    {
        return ctx.events[core_id].errorSet(ev);
    }

    // ------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------

    EventFile &events(unsigned core_id) { return ctx.events[core_id]; }
    Dmac &dmac() { return *dmacUnit; }
    Dmad &dmad(unsigned core_id) { return *dmads[core_id]; }
    DmsContext &context() { return ctx; }

  private:
    /** Map a core to its id local to this complex. */
    unsigned localId(const core::DpCore &c) const;

    DmsContext ctx;
    unsigned baseCore;
    std::unique_ptr<Dmac> dmacUnit;
    std::vector<std::unique_ptr<Dmad>> dmads;
};

} // namespace dpu::dms

#endif // DPU_DMS_DMS_HH

/**
 * @file
 * Partition-range hand-off staging plans.
 *
 * When the rack balancer re-homes a key partition (rack/balance.hh),
 * the owning DPU has to stage that partition's DMS-resident state
 * out of DDR so it can be shipped over the rack network. A hand-off
 * is planned as a chain of DdrToDmem descriptors: each chunk pulls
 * up to 64 KB-class slices into DMEM double buffers, from where the
 * host NIC path picks them up. The chunking respects the Table 2
 * encoding limit — Rows is a 16-bit field, so one descriptor moves
 * at most 65535 elements — and the plan is a pure function of
 * (base, bytes, chunk, width), so both ends of a migration compute
 * identical chunk boundaries without exchanging metadata.
 */

#ifndef DPU_DMS_HANDOFF_HH
#define DPU_DMS_HANDOFF_HH

#include <cstdint>
#include <vector>

#include "dms/descriptor.hh"
#include "mem/addr.hh"

namespace dpu::dms {

/** One contiguous DDR slice of a hand-off. */
struct HandoffChunk
{
    mem::Addr ddrAddr = 0;
    std::uint32_t rows = 0;    ///< elements in this slice (<= 65535)
    std::uint8_t colWidth = 8; ///< element width in bytes

    std::uint64_t bytes() const
    {
        return std::uint64_t(rows) * colWidth;
    }
};

/** A staged partition hand-off: ordered, non-overlapping chunks
 *  covering [base, base + totalBytes). */
struct HandoffPlan
{
    mem::Addr base = 0;
    std::vector<HandoffChunk> chunks;

    std::uint64_t totalBytes() const;

    /**
     * Emit the DdrToDmem descriptor chain that stages the plan
     * through a double buffer at @p dmem_base. Consecutive chunks
     * alternate completion events @p event_a / @p event_b so the
     * consumer can drain one buffer while the next fills (the
     * Listing 1 ping-pong idiom).
     */
    std::vector<Descriptor> descriptors(std::uint16_t dmem_base,
                                        std::uint16_t buf_bytes,
                                        std::int8_t event_a = 0,
                                        std::int8_t event_b = 1) const;
};

/**
 * Chunk a partition's byte range into a hand-off plan. @p bytes
 * must be a multiple of @p col_width; @p chunk_bytes caps each
 * slice and is clamped to the 65535-row descriptor limit.
 */
HandoffPlan planRangeHandoff(mem::Addr base, std::uint64_t bytes,
                             std::uint64_t chunk_bytes = 256 * 1024,
                             std::uint8_t col_width = 8);

} // namespace dpu::dms

#endif // DPU_DMS_HANDOFF_HH

/**
 * @file
 * Per-dpCore DMS event files.
 *
 * The DMS associates 32 binary events with each dpCore (Section
 * 3.1, "Flow control and synchronization"). Descriptors wait on and
 * set events; cores wait with the wfe instruction and clear events
 * after consuming buffers. Waiters are recorded on both edges:
 * cores (and the DMAD) wait for SET, descriptor preconditions wait
 * for CLEAR.
 */

#ifndef DPU_DMS_EVENT_FILE_HH
#define DPU_DMS_EVENT_FILE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/logging.hh"

namespace dpu::dms {

/** Number of binary events per dpCore. */
constexpr unsigned eventsPerCore = 32;

/** The 32 events of a single core, with edge-triggered callbacks. */
class EventFile
{
  public:
    using Callback = std::function<void()>;

    bool
    isSet(unsigned ev) const
    {
        sim_assert(ev < eventsPerCore, "event id %u out of range", ev);
        return (bits >> ev) & 1;
    }

    std::uint32_t word() const { return bits; }

    /** Set @p ev and fire any on-set callbacks. */
    void
    set(unsigned ev)
    {
        sim_assert(ev < eventsPerCore, "event id %u out of range", ev);
        if ((bits >> ev) & 1)
            return;
        bits |= 1u << ev;
        fire(onSet[ev]);
    }

    /** Clear @p ev (and its error flag), firing on-clear callbacks. */
    void
    clear(unsigned ev)
    {
        sim_assert(ev < eventsPerCore, "event id %u out of range", ev);
        errBits &= ~(1u << ev);
        if (!((bits >> ev) & 1))
            return;
        bits &= ~(1u << ev);
        fire(onClear[ev]);
    }

    /**
     * Flag @p ev as completed-with-error. The producing descriptor
     * still set()s the event (waiters must wake), but consumers that
     * check errorSet() before touching the buffer observe the fault.
     * The flag persists until the event is cleared.
     */
    void
    markError(unsigned ev)
    {
        sim_assert(ev < eventsPerCore, "event id %u out of range", ev);
        errBits |= 1u << ev;
    }

    /** True when @p ev last completed with error status. */
    bool
    errorSet(unsigned ev) const
    {
        sim_assert(ev < eventsPerCore, "event id %u out of range", ev);
        return (errBits >> ev) & 1;
    }

    /** Run @p cb once, the next time @p ev becomes set. */
    void
    whenSet(unsigned ev, Callback cb)
    {
        sim_assert(ev < eventsPerCore, "event id %u out of range", ev);
        onSet[ev].push_back(std::move(cb));
    }

    /** Run @p cb once, the next time @p ev becomes clear. */
    void
    whenClear(unsigned ev, Callback cb)
    {
        sim_assert(ev < eventsPerCore, "event id %u out of range", ev);
        onClear[ev].push_back(std::move(cb));
    }

  private:
    void
    fire(std::vector<Callback> &list)
    {
        // Swap out first: callbacks may register new waiters.
        std::vector<Callback> run;
        run.swap(list);
        for (auto &cb : run)
            cb();
    }

    std::uint32_t bits = 0;
    std::uint32_t errBits = 0;
    std::vector<Callback> onSet[eventsPerCore];
    std::vector<Callback> onClear[eventsPerCore];
};

} // namespace dpu::dms

#endif // DPU_DMS_EVENT_FILE_HH

#include "dms/dmac.hh"

#include <algorithm>
#include <cstring>

#include "sim/fault.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"
#include "util/crc32.hh"

namespace dpu::dms {

namespace {

/** dpCores per DMAX complex (8 cores per macro, Figure 1). */
constexpr unsigned coresPerDmax = 8;

sim::Tick
cyc(sim::Cycles c)
{
    return sim::dpCoreClock.cyclesToTicks(c);
}

} // namespace

Dmac::Dmac(DmsContext &ctx_)
    : ctx(ctx_), stats("dmac"), partDst(ctx_.nCores())
{
}

sim::Tick
Dmac::dmaxTicks(std::uint32_t bytes) const
{
    std::uint32_t cycles =
        (bytes + ctx.params.dmaxBytesPerCycle - 1) /
        ctx.params.dmaxBytesPerCycle;
    return cyc(cycles);
}

sim::Tick
Dmac::ddrStream(mem::Addr addr, std::uint8_t *buf, std::uint32_t bytes,
                bool write, sim::Tick start)
{
    const unsigned window = ctx.params.axiWindow;
    std::vector<sim::Tick> inflight(window, start);
    sim::Tick done = start;
    std::uint32_t off = 0;
    unsigned i = 0;
    while (off < bytes) {
        std::uint32_t chunk = std::min(bytes - off, axiMaxBytes);
        sim::Tick earliest = std::max(start, inflight[i % window]);
        done = write
                   ? ctx.mm.dmsWrite(addr + off, buf + off, chunk,
                                     earliest)
                   : ctx.mm.dmsRead(addr + off, buf + off, chunk,
                                    earliest);
        inflight[i % window] = done;
        off += chunk;
        ++i;
    }
    return done;
}

std::vector<Dmac::Run>
Dmac::maskRuns(const Descriptor &d, std::uint32_t rows) const
{
    std::vector<Run> runs;
    const auto &bank = bvm[d.ibank];
    if (d.rle) {
        // RID mode: the bank holds 32-bit row ids, ascending.
        sim_assert(rows * 4 <= bvBankBytes,
                   "RID list overflows BV bank: %u rids", rows);
        std::uint32_t prev = ~0u;
        for (std::uint32_t i = 0; i < rows; ++i) {
            std::uint32_t rid;
            std::memcpy(&rid, bank.data() + i * 4, 4);
            if (!runs.empty() && rid == prev + 1) {
                ++runs.back().nRows;
            } else {
                runs.push_back({rid, 1});
            }
            prev = rid;
        }
    } else {
        // Bit-vector mode: one bit per row.
        sim_assert((rows + 7) / 8 <= bvBankBytes,
                   "bit vector overflows BV bank: %u rows", rows);
        for (std::uint32_t i = 0; i < rows; ++i) {
            bool sel = (bank[i >> 3] >> (i & 7)) & 1;
            if (!sel)
                continue;
            if (!runs.empty() &&
                runs.back().firstRow + runs.back().nRows == i) {
                ++runs.back().nRows;
            } else {
                runs.push_back({i, 1});
            }
        }
    }
    return runs;
}

void
Dmac::wedge(unsigned core, const char *cause)
{
    // A wedge is permanent: the flag feeds host-side death
    // attribution (the reaper reads hung()), the counter and the
    // trace instant make the cause visible in stats and timelines.
    wedged = true;
    ++stats.counter(cause);
    ++stats.counter("wedges");
    DPU_TRACE_INSTANT(sim::TraceCat::Dms, ctx.baseCore + core,
                      "dmacWedge", ctx.eq.now(), "core",
                      ctx.baseCore + core);
}

void
Dmac::execute(unsigned core, const Descriptor &d, mem::Addr eff_ddr,
              std::uint32_t eff_dmem, sim::Tick issue, DoneFn done)
{
    ++stats.counter("descriptors");
    // The front-end handles one incoming descriptor at a time.
    // Internal pipeline-stage commands (hash, partition store,
    // flush) ride the already-dispatched chain and skip it.
    if (d.type != DescType::HashCol &&
        d.type != DescType::DmsToDmem &&
        d.type != DescType::PartFlush &&
        d.type != DescType::DmsToDms) {
        dispatcher = std::max(dispatcher, issue) +
                     ctx.params.dmacDispatch;
        issue = dispatcher;
        // Injected fault: the controller locks up mid-dispatch and
        // the descriptor never completes — the same observable shape
        // as the gather-bug erratum, but schedulable on any data
        // descriptor so recovery paths can be exercised at will.
        if (sim::faultPlane().active() &&
            sim::faultPlane().fires(sim::FaultSite::DmsWedge,
                                    ctx.eq.now(),
                                    int(ctx.baseCore + core))) {
            wedge(core, "injectedWedges");
            warn("fault plane: DMAC wedged on dispatch (core %u)",
                 ctx.baseCore + core);
            return;
        }
    }
    switch (d.type) {
      case DescType::DdrToDmem:
        execDdrToDmem(core, d, eff_ddr, eff_dmem, issue,
                      std::move(done));
        return;
      case DescType::DmemToDdr:
        execDmemToDdr(core, d, eff_ddr, eff_dmem, issue,
                      std::move(done));
        return;
      case DescType::DdrToDms:
        execDdrToDms(core, d, eff_ddr, issue, std::move(done));
        return;
      case DescType::HashCol:
        execHashCol(d, issue, std::move(done));
        return;
      case DescType::DmsToDmem:
        execStorePart(core, d, issue, std::move(done));
        return;
      case DescType::PartFlush:
        execPartFlush(issue, std::move(done));
        return;
      case DescType::DmemToDms:
        execDmemToDms(core, d, eff_dmem, issue, std::move(done));
        return;
      case DescType::DmsToDdr:
        execDmsToDdr(d, eff_ddr, issue, std::move(done));
        return;
      case DescType::DmsToDms:
        execDmsToDms(d, issue, std::move(done));
        return;
      default:
        panic("DMAC cannot execute descriptor type %d", int(d.type));
    }
}

void
Dmac::execDdrToDmem(unsigned core, const Descriptor &d,
                    mem::Addr ddr, std::uint32_t dmem,
                    sim::Tick issue, DoneFn done)
{
    const unsigned m = core / coresPerDmax;
    const std::uint32_t bytes = d.rows * d.colWidth;
    sim_assert(dmem + bytes <= mem::dmemBytes,
               "DDR->DMEM overflows DMEM: off=%u bytes=%u", dmem,
               bytes);

    // Dispatch overhead overlaps with the engine's previous
    // transfer; the engine itself is busy only while moving data.
    sim::Tick start =
        std::max(issue + ctx.params.descOverhead, loadEngine[m]);
    mem::Dmem &dst = *ctx.dmems[core];
    sim::Tick t;

    if (d.gatherSrc) {
        if (ctx.params.emulateGatherBug && gathersActive > 0) {
            // RTL erratum: the BV-count FIFO overflows and the DMAD
            // stalls indefinitely (Section 3.4). The descriptor
            // never completes.
            wedge(core, "gatherBugHangs");
            warn("DMAC gather-bug erratum triggered: DMAD wedged");
            return;
        }
        ++gathersActive;
        ++stats.counter("gathers");
        auto runs = maskRuns(d, d.rows);
        t = start;
        std::uint32_t out = dmem;
        // The DMS fetches at burst granularity: runs separated by
        // less than one 64 B burst merge into a covering segment
        // whose unselected bytes are fetched and DISCARDED. Dense
        // masks therefore gather near line rate; sparse masks pay
        // for bytes they do not keep.
        const std::uint32_t merge_gap =
            std::max<std::uint32_t>(1, 64 / d.colWidth);
        std::size_t i = 0;
        std::vector<std::uint8_t> seg_buf;
        while (i < runs.size()) {
            std::size_t j = i;
            std::uint32_t seg_first = runs[i].firstRow;
            std::uint32_t seg_end =
                runs[i].firstRow + runs[i].nRows;
            while (j + 1 < runs.size() &&
                   runs[j + 1].firstRow - seg_end < merge_gap) {
                ++j;
                seg_end = runs[j].firstRow + runs[j].nRows;
            }
            std::uint32_t seg_bytes =
                (seg_end - seg_first) * d.colWidth;
            seg_buf.resize(seg_bytes);
            t = ddrStream(ddr + mem::Addr(seg_first) * d.colWidth,
                          seg_buf.data(), seg_bytes, false,
                          t + ctx.params.gatherRunOverhead);
            for (std::size_t k = i; k <= j; ++k) {
                std::uint32_t run_bytes =
                    runs[k].nRows * d.colWidth;
                sim_assert(out + run_bytes <= mem::dmemBytes,
                           "gather output overflows DMEM");
                std::memcpy(dst.raw() + out,
                            seg_buf.data() +
                                (runs[k].firstRow - seg_first) *
                                    d.colWidth,
                            run_bytes);
                out += run_bytes;
            }
            i = j + 1;
        }
        std::uint32_t moved = out - dmem;
        sim::Tick bus = std::max(dmaxBus[m], start) + dmaxTicks(moved);
        dmaxBus[m] = bus;
        t = std::max(t, bus);
        ctx.eq.schedule(std::max(t, ctx.eq.now()),
                        [this] { --gathersActive; },
                        sim::EvTag::Dms);
        stats.counter("bytesToDmem") += moved;
    } else {
        t = ddrStream(ddr, dst.raw() + dmem, bytes, false, start);
        sim::Tick bus = std::max(dmaxBus[m], start) + dmaxTicks(bytes);
        dmaxBus[m] = bus;
        t = std::max(t, bus);
        stats.counter("bytesToDmem") += bytes;
    }

    // The engine is occupied while ISSUING the request stream (its
    // AXI front-end runs at the DMAX rate); data returns complete
    // later. This lets requests from the macro's other cores queue
    // at the DDR controller early enough for their activations to
    // overlap this transfer — which is what the real controller's
    // command queue achieves.
    loadEngine[m] = start + dmaxTicks(bytes);
    DPU_TRACE_COMPLETE(sim::TraceCat::Dms,
                       sim::dmstrack::loadEngine +
                           ctx.baseCore / coresPerDmax + m,
                       "DdrToDmem", start, t - start, "bytes", bytes,
                       "core", ctx.baseCore + core);
    done(t);
}

void
Dmac::execDmemToDdr(unsigned core, const Descriptor &d,
                    mem::Addr ddr, std::uint32_t dmem,
                    sim::Tick issue, DoneFn done)
{
    const unsigned m = core / coresPerDmax;
    const std::uint32_t bytes = d.rows * d.colWidth;
    sim_assert(dmem + bytes <= mem::dmemBytes,
               "DMEM->DDR overflows DMEM: off=%u bytes=%u", dmem,
               bytes);

    sim::Tick start =
        std::max(issue + ctx.params.descOverhead, storeEngine[m]);
    mem::Dmem &src = *ctx.dmems[core];
    sim::Tick t;

    if (d.scatterDst) {
        ++stats.counter("scatters");
        auto runs = maskRuns(d, d.rows);
        t = start;
        std::uint32_t in = dmem;
        for (const Run &run : runs) {
            std::uint32_t run_bytes = run.nRows * d.colWidth;
            t = ddrStream(ddr + mem::Addr(run.firstRow) * d.colWidth,
                          src.raw() + in, run_bytes, true,
                          t + ctx.params.gatherRunOverhead);
            in += run_bytes;
        }
        std::uint32_t moved = in - dmem;
        sim::Tick bus = std::max(dmaxBus[m], start) + dmaxTicks(moved);
        dmaxBus[m] = bus;
        t = std::max(t, bus);
        stats.counter("bytesFromDmem") += moved;
    } else {
        t = ddrStream(ddr, src.raw() + dmem, bytes, true, start);
        sim::Tick bus = std::max(dmaxBus[m], start) + dmaxTicks(bytes);
        dmaxBus[m] = bus;
        t = std::max(t, bus);
        stats.counter("bytesFromDmem") += bytes;
    }

    storeEngine[m] = start + dmaxTicks(bytes); // issue occupancy
    DPU_TRACE_COMPLETE(sim::TraceCat::Dms,
                       sim::dmstrack::storeEngine +
                           ctx.baseCore / coresPerDmax + m,
                       "DmemToDdr", start, t - start, "bytes", bytes,
                       "core", ctx.baseCore + core);
    done(t);
}

void
Dmac::execDdrToDms(unsigned core, const Descriptor &d, mem::Addr ddr,
                   sim::Tick issue, DoneFn done)
{
    const unsigned m = core / coresPerDmax;
    const unsigned tuple = unsigned(d.nCols) * d.colWidth;
    const std::uint32_t bytes = d.rows * tuple;
    sim_assert(d.ibank < nCmemBanks, "bad CMEM bank %u", d.ibank);
    sim_assert(bytes <= cmemBankBytes,
               "tuple chunk overflows CMEM bank: %u bytes", bytes);

    sim::Tick start = std::max({issue + ctx.params.descOverhead,
                                loadEngine[m], cmemBusy[d.ibank]});

    // Fetch one column at a time (Section 3.4: "As DMS fetches one
    // column at a time, it observes a small latency overhead in
    // fetching non-contiguous DRAM pages"). A projection mask
    // selects which source columns feed the packed tuples.
    unsigned src_cols[16];
    if (d.colMask) {
        unsigned k = 0;
        for (unsigned b = 0; b < 16; ++b)
            if (d.colMask & (1u << b))
                src_cols[k++] = b;
        sim_assert(k == d.nCols, "colMask/nCols mismatch");
    } else {
        for (unsigned b = 0; b < d.nCols; ++b)
            src_cols[b] = b;
    }
    auto &bank = cmem[d.ibank];
    std::vector<std::uint8_t> colbuf(d.rows * d.colWidth);
    // The engine issues all column requests up front; their row
    // activations overlap even though the data bus serializes.
    sim::Tick t = start;
    for (unsigned c = 0; c < d.nCols; ++c) {
        mem::Addr src = ddr + mem::Addr(src_cols[c]) * d.colStride;
        t = std::max(t, ddrStream(src, colbuf.data(),
                                  d.rows * d.colWidth, false,
                                  start));
        // Transpose the column into row-major tuples.
        for (std::uint32_t r = 0; r < d.rows; ++r) {
            std::memcpy(bank.data() + r * tuple + c * d.colWidth,
                        colbuf.data() + r * d.colWidth, d.colWidth);
        }
    }

    stats.counter("bytesToCmem") += bytes;
    loadEngine[m] = start + dmaxTicks(bytes); // issue occupancy
    cmemBusy[d.ibank] = t;
    DPU_TRACE_COMPLETE(sim::TraceCat::Dms,
                       sim::dmstrack::loadEngine +
                           ctx.baseCore / coresPerDmax + m,
                       "DdrToDms", start, t - start, "bytes", bytes,
                       "bank", d.ibank);
    done(t);
}

void
Dmac::execHashCol(const Descriptor &d, sim::Tick issue, DoneFn done)
{
    sim_assert(d.ibank < nCmemBanks && d.ibank2 < nCrcBanks &&
               d.cidBank < nCidBanks, "bad hash banks");
    sim_assert(d.rows <= cidBankBytes,
               "hash chunk exceeds CID capacity: %u rows", d.rows);
    sim_assert(d.rows * 4 <= crcBankBytes,
               "hash chunk exceeds CRC capacity: %u rows", d.rows);
    sim_assert(!d.rangeMode || rangeProgrammed,
               "range partitioning without RangeProg");

    sim::Tick start = std::max({issue, hashEngine, cmemBusy[d.ibank],
                                crcBusy[d.ibank2],
                                cidBusy[d.cidBank]});

    const unsigned tuple = unsigned(d.nCols) * d.colWidth;
    const auto &src = cmem[d.ibank];
    auto &crc_bank = crcm[d.ibank2];
    auto &cid_bank = cidm[d.cidBank];
    const std::uint32_t radix_mask = (1u << radixBits) - 1u;

    for (std::uint32_t r = 0; r < d.rows; ++r) {
        std::uint64_t key = 0;
        std::memcpy(&key, src.data() + r * tuple, d.colWidth);
        std::uint32_t h = hashUseCrc
                              ? util::crc32(&key, d.colWidth)
                              : std::uint32_t(key);
        std::memcpy(crc_bank.data() + r * 4, &h, 4);

        std::uint8_t cid;
        if (d.rangeMode) {
            // First range whose bound is >= key; bounds ascending.
            auto it = std::lower_bound(rangeBounds.begin(),
                                       rangeBounds.end(), key);
            cid = std::uint8_t(
                std::min<std::ptrdiff_t>(it - rangeBounds.begin(),
                                         31));
        } else {
            cid = std::uint8_t((h >> radixShift) & radix_mask);
        }
        cid_bank[r] = cid;
    }

    sim::Cycles cycles =
        ctx.params.hashSetupCycles +
        (d.rows + ctx.params.hashKeysPerCycle - 1) /
            ctx.params.hashKeysPerCycle;
    sim::Tick t = start + cyc(cycles);
    stats.counter("keysHashed") += d.rows;

    hashEngine = t;
    cmemBusy[d.ibank] = t;
    crcBusy[d.ibank2] = t;
    cidBusy[d.cidBank] = t;
    DPU_TRACE_COMPLETE(sim::TraceCat::Dms,
                       sim::dmstrack::hashEngine + ctx.baseCore,
                       "HashCol", start, t - start, "rows", d.rows,
                       "bank", d.ibank);
    done(t);
}

void
Dmac::programHash(const Descriptor &d)
{
    hashUseCrc = d.hashUseCrc;
    radixBits = d.radixBits;
    radixShift = d.radixShift;
    sim_assert(radixBits >= 1 && radixBits <= 8, "bad radix bits %u",
               radixBits);
}

void
Dmac::programRange(unsigned core, const Descriptor &d)
{
    // 32 x 8 B ascending boundaries in the pusher's DMEM.
    for (unsigned i = 0; i < 32; ++i) {
        rangeBounds[i] = ctx.dmems[core]->load<std::uint64_t>(
            d.dmemAddr + i * 8);
        sim_assert(i == 0 || rangeBounds[i] >= rangeBounds[i - 1],
                   "range bounds must ascend (entry %u)", i);
    }
    rangeProgrammed = true;
}

void
Dmac::configPartDst(unsigned core, const Descriptor &d)
{
    // A reconfiguration starts a fresh partition phase.

    // d.rows entries of 8 B each: {u16 base, u16 bufBytes,
    // u8 firstEvent, u8 nBufs, u16 pad}; entry i configures core i.
    sim_assert(d.rows <= ctx.nCores(), "too many partition dsts: %u",
               d.rows);
    const mem::Dmem &src = *ctx.dmems[core];
    for (std::uint32_t i = 0; i < d.rows; ++i) {
        std::uint32_t off = d.dmemAddr + i * 8;
        PartDst &p = partDst[i];
        p.base = src.load<std::uint16_t>(off);
        p.bufBytes = src.load<std::uint16_t>(off + 2);
        p.firstEvent = src.load<std::uint8_t>(off + 4);
        p.nBufs = src.load<std::uint8_t>(off + 5);
        p.curBuf = 0;
        p.fill = 0;
        p.rowsInBuf = 0;
        p.busyMask = 0;
        p.configured = p.nBufs > 0;
        if (p.configured) {
            sim_assert(p.base + std::uint32_t(p.bufBytes) * p.nBufs <=
                       mem::dmemBytes,
                       "partition ring overflows DMEM of core %u", i);
            sim_assert(p.firstEvent + p.nBufs <= eventsPerCore,
                       "partition events out of range for core %u", i);
            sim_assert(p.bufBytes > 4, "partition buffer too small");
        }
    }
}

void
Dmac::finalizeBuffer(unsigned dst_core, sim::Tick t, bool final_buf)
{
    PartDst &p = partDst[dst_core];
    const unsigned buf = p.curBuf;
    std::uint32_t buf_base =
        p.base + std::uint32_t(buf) * p.bufBytes;
    std::uint32_t hdr =
        p.rowsInBuf | (final_buf ? 0x80000000u : 0u);
    ctx.dmems[dst_core]->store<std::uint32_t>(buf_base, hdr);

    // Mark the buffer busy until the consumer clears its event; the
    // clear edge releases it and kicks a stalled store pipeline.
    p.busyMask |= std::uint8_t(1u << buf);
    unsigned ev = p.firstEvent + buf;
    ctx.events[dst_core].whenClear(ev, [this, dst_core, buf] {
        partDst[dst_core].busyMask &= std::uint8_t(~(1u << buf));
        ctx.eq.scheduleIn(0,
                          [this] {
                              if (partActive && !partQueue.empty()) {
                                  partQueue.front().t = std::max(
                                      partQueue.front().t,
                                      ctx.eq.now());
                                  partStep();
                              }
                          },
                          sim::EvTag::Dms);
    });

    ctx.scheduleSet(dst_core, ev, t);
    ++stats.counter("partBuffersSealed");
}

void
Dmac::execStorePart(unsigned core, const Descriptor &d,
                    sim::Tick issue, DoneFn done)
{
    sim_assert(d.ibank < nCmemBanks && d.cidBank < nCidBanks,
               "bad partition banks");
    PartJob job;
    job.core = core;
    job.d = d;
    job.row = 0;
    job.t = std::max({issue, cmemBusy[d.ibank], cidBusy[d.cidBank]});
    job.traceStart = job.t;
    job.done = std::move(done);
    partQueue.push_back(std::move(job));
    if (!partActive) {
        partActive = true;
        partStep();
    }
}

void
Dmac::partStep()
{
    while (!partQueue.empty()) {
        PartJob &job = partQueue.front();

        if (job.flush) {
            // Seal every configured destination's current buffer
            // (possibly with zero rows — the 'final' header bit
            // unblocks waiting consumers either way).
            while (job.row < ctx.nCores()) {
                unsigned dst = job.row;
                PartDst &p = partDst[dst];
                if (!p.configured) {
                    ++job.row;
                    continue;
                }
                if (p.busyMask & (1u << p.curBuf)) {
                    // The buffer to seal is still owned by the
                    // consumer; the seal-time clear hook resumes us.
                    ++stats.counter("partStalls");
                    DPU_TRACE_INSTANT(sim::TraceCat::Dms,
                                      sim::dmstrack::partPipe +
                                          ctx.baseCore,
                                      "partStall", ctx.eq.now(),
                                      "dst", dst);
                    return;
                }
                finalizeBuffer(dst, job.t, true);
                p.curBuf = std::uint8_t((p.curBuf + 1) % p.nBufs);
                p.fill = 0;
                p.rowsInBuf = 0;
                ++job.row;
            }
            sim::Tick t = job.t;
            DPU_TRACE_COMPLETE(sim::TraceCat::Dms,
                               sim::dmstrack::partPipe + ctx.baseCore,
                               "PartFlush", job.traceStart,
                               t - job.traceStart, nullptr, 0,
                               nullptr, 0);
            DoneFn fn = std::move(job.done);
            partQueue.pop_front();
            if (!partQueue.empty())
                partQueue.front().t =
                    std::max(partQueue.front().t, t);
            fn(t);
            continue;
        }

        const Descriptor &d = job.d;
        const unsigned tuple = unsigned(d.nCols) * d.colWidth;
        const auto &src = cmem[d.ibank];
        const auto &cids = cidm[d.cidBank];
        const sim::Tick per_row =
            cyc(std::max<std::uint32_t>(
                1, tuple / ctx.params.storeBytesPerCycle));

        while (job.row < d.rows) {
            std::uint32_t r = job.row;
            unsigned dst = cids[r];
            sim_assert(dst < ctx.nCores(),
                       "partition CID %u out of range", dst);
            PartDst &p = partDst[dst];
            sim_assert(p.configured,
                       "partition to unconfigured core %u", dst);

            if (p.fill + tuple > std::uint32_t(p.bufBytes) - 4) {
                // Seal the buffer and move to the next one.
                finalizeBuffer(dst, job.t);
                p.curBuf = std::uint8_t((p.curBuf + 1) % p.nBufs);
                p.fill = 0;
                p.rowsInBuf = 0;
            }
            if (p.busyMask & (1u << p.curBuf)) {
                // Back-pressure: the consumer still owns the next
                // buffer; the seal-time clear hook resumes us.
                ++stats.counter("partStalls");
                DPU_TRACE_INSTANT(sim::TraceCat::Dms,
                                  sim::dmstrack::partPipe +
                                      ctx.baseCore,
                                  "partStall", ctx.eq.now(),
                                  "dst", dst);
                return;
            }

            std::uint32_t buf_base =
                p.base + std::uint32_t(p.curBuf) * p.bufBytes;
            ctx.dmems[dst]->write(buf_base + 4 + p.fill,
                                  src.data() + r * tuple, tuple);
            p.fill = std::uint16_t(p.fill + tuple);
            ++p.rowsInBuf;
            job.t += per_row;
            ++job.row;
            ++stats.counter("rowsPartitioned");
        }

        cmemBusy[d.ibank] = job.t;
        cidBusy[d.cidBank] = job.t;
        sim::Tick t = job.t;
        DPU_TRACE_COMPLETE(sim::TraceCat::Dms,
                           sim::dmstrack::partPipe + ctx.baseCore,
                           "StorePart", job.traceStart,
                           t - job.traceStart, "rows", d.rows,
                           nullptr, 0);
        DoneFn fn = std::move(job.done);
        partQueue.pop_front();
        if (!partQueue.empty())
            partQueue.front().t = std::max(partQueue.front().t, t);
        fn(t);
    }
    partActive = false;
}

void
Dmac::execPartFlush(sim::Tick issue, DoneFn done)
{
    // Flushing must happen strictly after every queued store and
    // respects buffer ownership like any other seal, so it runs as
    // a job on the serialized partition pipeline.
    PartJob job;
    job.core = 0;
    job.flush = true;
    job.row = 0;
    job.t = issue + cyc(ctx.nCores());
    job.traceStart = job.t;
    job.done = std::move(done);
    partQueue.push_back(std::move(job));
    if (!partActive) {
        partActive = true;
        partStep();
    }
}

void
Dmac::execDmemToDms(unsigned core, const Descriptor &d,
                    std::uint32_t dmem, sim::Tick issue, DoneFn done)
{
    sim_assert(d.ibank < nBvBanks, "bad BV bank %u", d.ibank);
    const std::uint32_t bytes = d.rle ? d.rows * 4 : d.rows;
    sim_assert(bytes <= bvBankBytes,
               "BV/RID load overflows BV bank: %u bytes", bytes);

    const unsigned m = core / coresPerDmax;
    sim::Tick start = std::max({issue, bvBusy[d.ibank], dmaxBus[m]}) +
                      ctx.params.descOverhead;
    ctx.dmems[core]->read(dmem, bvm[d.ibank].data(), bytes);
    sim::Tick t = start + dmaxTicks(bytes);
    dmaxBus[m] = t;
    bvBusy[d.ibank] = t;
    stats.counter("bvBytesLoaded") += bytes;
    done(t);
}

void
Dmac::execDmsToDdr(const Descriptor &d, mem::Addr ddr,
                   sim::Tick issue, DoneFn done)
{
    std::uint8_t *bank = nullptr;
    std::uint32_t cap = 0;
    switch (d.imem) {
      case IMem::Crc:
        sim_assert(d.ibank < nCrcBanks, "bad CRC bank");
        bank = crcm[d.ibank].data();
        cap = crcBankBytes;
        break;
      case IMem::Cid:
        sim_assert(d.ibank < nCidBanks, "bad CID bank");
        bank = cidm[d.ibank].data();
        cap = cidBankBytes;
        break;
      case IMem::Cmem:
        sim_assert(d.ibank < nCmemBanks, "bad CMEM bank");
        bank = cmem[d.ibank].data();
        cap = cmemBankBytes;
        break;
      case IMem::Bv:
        sim_assert(d.ibank < nBvBanks, "bad BV bank");
        bank = bvm[d.ibank].data();
        cap = bvBankBytes;
        break;
      default:
        panic("DMS->DDR from no internal memory");
    }
    std::uint32_t bytes = d.rows * d.colWidth;
    sim_assert(bytes <= cap, "DMS->DDR exceeds bank: %u bytes", bytes);

    sim::Tick start = std::max(issue, storeEngine[0]) +
                      ctx.params.descOverhead;
    sim::Tick t = ddrStream(ddr, bank, bytes, true, start);
    storeEngine[0] = t;
    stats.counter("bytesDmsToDdr") += bytes;
    done(t);
}

void
Dmac::execDmsToDms(const Descriptor &d, sim::Tick issue, DoneFn done)
{
    auto bankOf = [this](IMem m, unsigned b,
                         std::uint32_t &cap) -> std::uint8_t * {
        switch (m) {
          case IMem::Cmem: cap = cmemBankBytes; return cmem[b].data();
          case IMem::Crc: cap = crcBankBytes; return crcm[b].data();
          case IMem::Cid: cap = cidBankBytes; return cidm[b].data();
          case IMem::Bv: cap = bvBankBytes; return bvm[b].data();
          default: panic("bad internal memory operand");
        }
    };
    std::uint32_t src_cap = 0, dst_cap = 0;
    std::uint8_t *src = bankOf(d.imem, d.ibank, src_cap);
    std::uint8_t *dst = bankOf(d.imem2, d.ibank2, dst_cap);
    std::uint32_t bytes = d.rows;
    sim_assert(bytes <= src_cap && bytes <= dst_cap,
               "DMS->DMS move exceeds bank: %u bytes", bytes);
    std::memcpy(dst, src, bytes);
    sim::Tick t = issue + ctx.params.descOverhead + dmaxTicks(bytes);
    done(t);
}

} // namespace dpu::dms

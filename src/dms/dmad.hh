/**
 * @file
 * The per-dpCore DMAD (DMA DMEM unit, Section 3.1).
 *
 * Software pushes a DMEM pointer naming a 16 B descriptor onto one
 * of two channels; the DMAD fetches and decodes it, links it onto
 * the channel's active list, and walks the list: honouring loop
 * control descriptors (with a fixed iteration count and source/
 * destination auto-increment registers), event preconditions (a data
 * descriptor whose notify event is still set waits for the consumer
 * to clear it), and a bounded in-flight window to the DMAC (max 4
 * descriptors outstanding, Section 3.1).
 */

#ifndef DPU_DMS_DMAD_HH
#define DPU_DMS_DMAD_HH

#include <cstdint>
#include <vector>

#include "dms/descriptor.hh"
#include "dms/dmac.hh"
#include "dms/dms_context.hh"

namespace dpu::dms {

/** Number of DMS channels per dpCore (read + write, typically). */
constexpr unsigned channelsPerCore = 2;

/** One dpCore's descriptor front-end. */
class Dmad
{
  public:
    Dmad(DmsContext &ctx, Dmac &dmac, unsigned core_id);

    /**
     * Push the descriptor stored at DMEM offset @p desc_addr onto
     * channel @p ch. Called from glue code at the pushing core's
     * current simulated time; the DMAD fetches the 16 B from DMEM.
     */
    void push(unsigned ch, std::uint16_t desc_addr);

    /** True when the channel has no pending or in-flight work. */
    bool idle(unsigned ch) const;

    /** Drop all completed state (start of a fresh program phase). */
    void reset();

  private:
    struct Entry
    {
        Descriptor d;
        std::uint16_t dmemAddr = 0;   ///< where the descriptor lives
        /** Loop bookkeeping. */
        std::uint16_t remaining = 0;
    };

    struct Channel
    {
        std::vector<Entry> list;
        std::size_t pc = 0;
        unsigned inflight = 0;
        /** Events this channel has promised to set at a future tick
         *  (prevents a loop from re-reading a stale clear state). */
        std::uint32_t pendingSet = 0;
        bool waiting = false;   ///< parked on an event edge
        /**
         * Per-channel auto-increment address registers (Section
         * 3.1: "It also has source and destination address
         * registers to support auto-increment functionality within
         * DMS loops"). The first descriptor executed with the
         * AddrInc flag arms the register; every subsequent one
         * consumes and advances it — which is why Listing 1 can
         * pass the SAME src_addr to both ping-pong descriptors.
         */
        bool srcArmed = false;
        mem::Addr srcReg = 0;
        bool dstArmed = false;
        std::uint32_t dstReg = 0;
    };

    void process(unsigned ch);
    /**
     * Schedule the completion of an in-flight data descriptor at
     * tick @p t: close its trace span, set the notify event (with
     * error status when @p error), release the in-flight slot and
     * resume the channel.
     */
    void completeAt(sim::Tick t, unsigned ch, int notify,
                    std::uint32_t span_id, const char *desc_name,
                    bool error);
    /** Park the channel until @p ev of this core clears. */
    void parkOnClear(unsigned ch, unsigned ev);
    /** Park the channel until @p ev of this core sets. */
    void parkOnSet(unsigned ch, unsigned ev);
    std::size_t findEntry(const Channel &c,
                          std::uint16_t link_addr) const;

    DmsContext &ctx;
    Dmac &dmac;
    unsigned coreId;
    std::vector<Channel> channels;
};

} // namespace dpu::dms

#endif // DPU_DMS_DMAD_HH

/**
 * @file
 * Shared state handed to the DMS sub-blocks (DMAD, DMAX, DMAC):
 * the event queue, main memory, every core's DMEM, the per-core
 * event files, and the tuning parameters.
 */

#ifndef DPU_DMS_DMS_CONTEXT_HH
#define DPU_DMS_DMS_CONTEXT_HH

#include <vector>

#include "dms/dms_params.hh"
#include "dms/event_file.hh"
#include "mem/dmem.hh"
#include "mem/main_memory.hh"
#include "sim/event_queue.hh"
#include "sim/trace.hh"

namespace dpu::dms {

/** Plumbing shared by the DMS blocks. */
struct DmsContext
{
    DmsContext(sim::EventQueue &eq_, mem::MainMemory &mm_,
               unsigned n_cores, const DmsParams &p)
        : eq(eq_), mm(mm_), params(p), dmems(n_cores, nullptr),
          events(n_cores)
    {
    }

    sim::EventQueue &eq;
    mem::MainMemory &mm;
    DmsParams params;

    /** Global id of this complex's core 0 (trace track numbering). */
    unsigned baseCore = 0;

    /** Per-core scratchpads, registered by the SoC at build time. */
    std::vector<mem::Dmem *> dmems;

    /** Per-core 32-event files. */
    std::vector<EventFile> events;

    unsigned nCores() const { return unsigned(dmems.size()); }

    /** Set event @p ev of core @p core at tick @p when. */
    void
    scheduleSet(unsigned core, unsigned ev, sim::Tick when)
    {
        eq.schedule(std::max(when, eq.now()),
                    [this, core, ev] {
                        DPU_TRACE_INSTANT(sim::TraceCat::Dms,
                                          baseCore + core, "evSet",
                                          eq.now(), "event", ev);
                        events[core].set(ev);
                    },
                    sim::EvTag::Dms);
    }
};

} // namespace dpu::dms

#endif // DPU_DMS_DMS_CONTEXT_HH

#include "dms/handoff_exec.hh"

#include <algorithm>

#include "dms/dms.hh"
#include "sim/logging.hh"

namespace dpu::dms {

// ----------------------------------------------------------------
// HandoffExec (source role)
// ----------------------------------------------------------------

HandoffExec::HandoffExec(Dms &dms_, unsigned core_id,
                         mem::Dmem &dmem_,
                         const HandoffExecParams &params)
    : dms(dms_), coreId(core_id), dmem(dmem_), p(params)
{
    sim_assert(p.channel < channelsPerCore,
               "hand-off channel %u out of range", p.channel);
    sim_assert(p.eventA != p.eventB &&
                   p.eventA < eventsPerCore &&
                   p.eventB < eventsPerCore,
               "hand-off needs two distinct events");
    sim_assert(std::uint32_t(p.bufBase) + 2u * p.bufBytes <=
                   mem::Dmem::size,
               "staging buffers overrun DMEM");
    sim_assert(std::uint32_t(p.chainBase) + p.chainBytes <=
                   mem::Dmem::size,
               "descriptor chain overruns DMEM");
}

unsigned
HandoffExec::eventOf(unsigned chunk) const
{
    return (chunk & 1) ? p.eventB : p.eventA;
}

void
HandoffExec::start(const HandoffPlan &plan, ChunkFn on_staged)
{
    sim_assert(!active(), "hand-off exec already running a plan");
    sim_assert(!plan.chunks.empty(), "empty hand-off plan");
    sim_assert(on_staged, "staged-chunk consumer required");

    descs = plan.descriptors(p.bufBase, p.bufBytes,
                             std::int8_t(p.eventA),
                             std::int8_t(p.eventB));
    sim_assert(descs.size() * 16 <= p.chainBytes,
               "plan chain (%zu descriptors) overruns the chain "
               "window", descs.size());

    cb = std::move(on_staged);
    total = unsigned(descs.size());
    staged = 0;
    released = 0;
    nextFor[0] = 0;
    nextFor[1] = 1;

    EventFile &ev = dms.events(coreId);
    sim_assert(!ev.isSet(p.eventA) && !ev.isSet(p.eventB),
               "hand-off events dirty at start");
    ev.whenSet(p.eventA, [this] { onStaged(0); });
    if (total > 1)
        ev.whenSet(p.eventB, [this] { onStaged(1); });

    // Encode the whole chain into DMEM, then push it. Descriptor
    // i+2 shares buffer (and event) with descriptor i, so the DMAD
    // parks it on the wait-for-clear precondition until release(i).
    Dmad &dmad = dms.dmad(coreId);
    for (unsigned i = 0; i < total; ++i) {
        const EncodedDesc e = encode(descs[i]);
        dmem.write(p.chainBase + 16u * i, e.w.data(), 16);
    }
    for (unsigned i = 0; i < total; ++i)
        dmad.push(p.channel, std::uint16_t(p.chainBase + 16u * i));
}

void
HandoffExec::onStaged(unsigned buf)
{
    const unsigned chunk = nextFor[buf];
    sim_assert(chunk < total, "spurious staging completion");
    nextFor[buf] += 2;
    ++staged;
    // Re-arm before the consumer runs: release() clears the event,
    // and the next set edge belongs to chunk + 2.
    if (nextFor[buf] < total)
        dms.events(coreId).whenSet(eventOf(buf),
                                   [this, buf] { onStaged(buf); });
    const bool err = dms.events(coreId).errorSet(eventOf(chunk));
    cb(chunk, err);
}

void
HandoffExec::release(unsigned chunk)
{
    sim_assert(chunk < total, "release of unknown chunk %u", chunk);
    sim_assert(released < staged, "release before staging");
    ++released;
    dms.events(coreId).clear(eventOf(chunk));
}

// ----------------------------------------------------------------
// HandoffLander (destination role)
// ----------------------------------------------------------------

HandoffLander::HandoffLander(Dms &dms_, unsigned core_id,
                             mem::Dmem &dmem_,
                             const HandoffExecParams &params)
    : dms(dms_), coreId(core_id), dmem(dmem_), p(params)
{
    sim_assert(p.channel < channelsPerCore,
               "hand-off channel %u out of range", p.channel);
    sim_assert(p.eventA != p.eventB &&
                   p.eventA < eventsPerCore &&
                   p.eventB < eventsPerCore,
               "hand-off needs two distinct events");
    sim_assert(std::uint32_t(p.bufBase) + 2u * p.bufBytes <=
                   mem::Dmem::size,
               "bounce buffers overrun DMEM");
    sim_assert(std::uint32_t(p.chainBase) + 32u <= mem::Dmem::size,
               "descriptor slots overrun DMEM");
}

unsigned
HandoffLander::eventOf(unsigned chunk) const
{
    return (chunk & 1) ? p.eventB : p.eventA;
}

unsigned
HandoffLander::expect(unsigned total_chunks, LandedFn on_landed)
{
    sim_assert(total_chunks > 0, "expecting an empty migration");
    sim_assert(!busy(), "lander re-armed while busy");
    ++gen;
    total = total_chunks;
    landedCnt = 0;
    failedCnt = 0;
    cb = std::move(on_landed);
    return gen;
}

void
HandoffLander::deliver(unsigned generation, unsigned chunk,
                       mem::Addr ddr,
                       const std::vector<std::uint8_t> &payload,
                       std::uint8_t col_width)
{
    if (generation != gen) {
        ++staleCnt; // an aborted migration's leftovers; drop
        return;
    }
    sim_assert(chunk < total, "delivery of unknown chunk %u", chunk);
    sim_assert(!payload.empty() && payload.size() <= p.bufBytes,
               "chunk payload does not fit the bounce buffer");
    sim_assert(col_width > 0 && payload.size() % col_width == 0,
               "chunk payload not a whole number of rows");
    fifo.push_back({chunk, ddr, payload, col_width});
    pump();
}

void
HandoffLander::pump()
{
    // Land the first queued chunk whose ping/pong buffer is free;
    // repeat while progress is possible. Retransmitted chunks can
    // arrive out of order, so selection is by buffer parity, never
    // arrival order.
    bool progress = true;
    while (progress) {
        progress = false;
        for (auto it = fifo.begin(); it != fifo.end(); ++it) {
            const unsigned buf = it->chunk & 1;
            if (bufBusy[buf])
                continue;
            Queued q = std::move(*it);
            fifo.erase(it);
            bufBusy[buf] = true;
            land(q);
            progress = true;
            break;
        }
    }
}

void
HandoffLander::land(const Queued &q)
{
    const unsigned buf = q.chunk & 1;
    const std::uint16_t buf_addr =
        std::uint16_t(p.bufBase + buf * p.bufBytes);
    dmem.write(buf_addr, q.payload.data(), q.payload.size());

    Descriptor d;
    d.type = DescType::DmemToDdr;
    d.notifyEvent = std::int8_t(eventOf(q.chunk));
    d.colWidth = q.colWidth;
    d.rows = std::uint32_t(q.payload.size() / q.colWidth);
    d.ddrAddr = q.ddr;
    d.dmemAddr = buf_addr;
    const EncodedDesc e = encode(d);
    const std::uint16_t slot =
        std::uint16_t(p.chainBase + 16u * buf);
    dmem.write(slot, e.w.data(), 16);

    dms.events(coreId).whenSet(
        eventOf(q.chunk),
        [this, g = gen, buf, chunk = q.chunk] {
            onLanded(g, buf, chunk);
        });
    dms.dmad(coreId).push(p.channel, slot);
}

void
HandoffLander::onLanded(unsigned expect_gen, unsigned buf,
                        unsigned chunk)
{
    EventFile &ev = dms.events(coreId);
    const bool err = ev.errorSet(eventOf(chunk));
    ev.clear(eventOf(chunk));
    bufBusy[buf] = false;
    if (expect_gen == gen) {
        if (err)
            ++failedCnt;
        else
            ++landedCnt;
        if (cb)
            cb(chunk, err);
    }
    pump();
}

void
HandoffLander::cancel()
{
    ++gen;
    fifo.clear();
    total = 0;
    cb = {};
}

bool
HandoffLander::busy() const
{
    return bufBusy[0] || bufBusy[1] || !fifo.empty();
}

} // namespace dpu::dms

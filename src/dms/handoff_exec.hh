/**
 * @file
 * Hand-off plan execution: drive planRangeHandoff() staging plans
 * through the real descriptor path.
 *
 * PR 8 introduced the plans — pure chunking functions that both ends
 * of a migration can compute independently — but nothing executed
 * them: the rack tier charges a flat transfer, and the DMS model
 * never sees the bytes. This driver closes that gap for the board
 * tier. Two halves, one per endpoint role:
 *
 *  - HandoffExec (source DPU): encodes the plan's DdrToDmem chain
 *    into a dedicated engine core's DMEM, pushes the whole chain on
 *    one DMS channel, and surfaces each chunk as it lands in the
 *    ping-pong staging buffer. The chain self-throttles exactly the
 *    way Listing 1's double buffer does: descriptor i+2 reuses
 *    buffer i's completion event as its notify event, so the DMAD
 *    parks it until the consumer release()s chunk i (clearing the
 *    event). The consumer snapshots the buffer, releases, and ships
 *    the bytes over the link fabric.
 *
 *  - HandoffLander (destination DPU): receives chunk payloads (in
 *    any order — link retransmits reorder them), lands each through
 *    a DMEM bounce buffer with a DmemToDdr descriptor, and reports
 *    completion per chunk. A generation token makes deliveries from
 *    an aborted migration harmlessly stale instead of corrupting a
 *    successor.
 *
 * Both halves run entirely on their own DPU's event-queue partition:
 * the exec's callbacks fire from DMS completion events on the source
 * partition, the lander's from delivered bulk messages on the
 * destination partition. Cross-DPU coordination is the caller's job
 * (board/balance.hh ships chunks through LinkFabric mailboxes), so
 * parallel board runs stay bit-identical.
 */

#ifndef DPU_DMS_HANDOFF_EXEC_HH
#define DPU_DMS_HANDOFF_EXEC_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "dms/handoff.hh"
#include "mem/dmem.hh"

namespace dpu::dms {

class Dms;

/** DMEM/channel/event layout of one hand-off engine role. The
 *  defaults keep the exec and lander roles of one core disjoint, so
 *  a DPU can source one migration while landing another. */
struct HandoffExecParams
{
    /** DMS channel the role owns (0 = exec, 1 = lander default). */
    unsigned channel = 0;
    /** DMEM offset of the ping buffer; pong lives at +bufBytes. */
    std::uint16_t bufBase = 0x5000;
    /** Bytes per staging buffer (>= the plan's chunk size). */
    std::uint16_t bufBytes = 0x800;
    /** DMEM offset where descriptors are encoded (16 B each). */
    std::uint16_t chainBase = 0x6000;
    /** DMEM bytes reserved for the descriptor chain. */
    std::uint16_t chainBytes = 0x800;
    /** Ping / pong completion events. */
    std::uint8_t eventA = 16;
    std::uint8_t eventB = 17;
};

/**
 * Source half: stage a plan's chunks into DMEM through the real
 * DdrToDmem descriptor chain, one callback per staged chunk.
 */
class HandoffExec
{
  public:
    /** @p on_staged fires on the owning partition as each chunk's
     *  descriptor completes; @p error reports a descriptor-level
     *  error completion (dms.descError) — the buffer is garbage. */
    using ChunkFn = std::function<void(unsigned chunk, bool error)>;

    /** @p core_id is the engine core's id LOCAL to @p dms's complex;
     *  @p dmem is that core's DMEM. */
    HandoffExec(Dms &dms, unsigned core_id, mem::Dmem &dmem,
                const HandoffExecParams &params);

    /** Encode + push the whole chain (event context, source DPU).
     *  One plan at a time: asserts !active(). */
    void start(const HandoffPlan &plan, ChunkFn on_staged);

    /** Consumer done with @p chunk's buffer: clear its event so the
     *  chain refills it. Every staged chunk must be released, even
     *  after an error, or the chain wedges by design. */
    void release(unsigned chunk);

    /** True from start() until every chunk was released. */
    bool
    active() const
    {
        return total > 0 && released < total;
    }

    unsigned chunksStaged() const { return staged; }
    unsigned chunksReleased() const { return released; }
    /** The encoded chain of the current/last plan (test probe). */
    const std::vector<Descriptor> &chain() const { return descs; }
    const HandoffExecParams &params() const { return p; }

  private:
    void onStaged(unsigned buf);
    unsigned eventOf(unsigned chunk) const;

    Dms &dms;
    unsigned coreId;
    mem::Dmem &dmem;
    HandoffExecParams p;
    std::vector<Descriptor> descs;
    ChunkFn cb;
    unsigned total = 0;
    unsigned staged = 0;
    unsigned released = 0;
    /** Next chunk index each buffer's event announces. */
    unsigned nextFor[2] = {0, 1};
};

/**
 * Destination half: land delivered chunk payloads into DDR through
 * DmemToDdr descriptors, tolerating reordered and stale deliveries.
 */
class HandoffLander
{
  public:
    /** Fires on the owning partition as each chunk's descriptor
     *  completes; @p error flags a descriptor error completion. */
    using LandedFn = std::function<void(unsigned chunk, bool error)>;

    HandoffLander(Dms &dms, unsigned core_id, mem::Dmem &dmem,
                  const HandoffExecParams &params);

    /**
     * Arm the lander for a migration of @p total_chunks (host
     * phase). @return the generation token deliveries must carry;
     * deliveries with any other token are dropped as stale.
     */
    unsigned expect(unsigned total_chunks, LandedFn on_landed = {});

    /**
     * Deliver one chunk (event context, destination DPU): copy
     * @p payload into the bounce buffer and land it at @p ddr via a
     * DmemToDdr descriptor. Out-of-order chunks queue until their
     * ping/pong buffer frees.
     */
    void deliver(unsigned generation, unsigned chunk, mem::Addr ddr,
                 const std::vector<std::uint8_t> &payload,
                 std::uint8_t col_width);

    /** Abandon the armed migration (host phase): later deliveries
     *  go stale, queued ones are discarded. In-flight descriptors
     *  still complete; wait for !busy() before re-arming. */
    void cancel();

    /** Buffers occupied or deliveries queued. */
    bool busy() const;

    unsigned landed() const { return landedCnt; }
    unsigned failed() const { return failedCnt; }
    std::uint64_t staleDeliveries() const { return staleCnt; }
    unsigned generation() const { return gen; }
    const HandoffExecParams &params() const { return p; }

  private:
    struct Queued
    {
        unsigned chunk = 0;
        mem::Addr ddr = 0;
        std::vector<std::uint8_t> payload;
        std::uint8_t colWidth = 8;
    };

    void pump();
    void land(const Queued &q);
    void onLanded(unsigned expect_gen, unsigned buf, unsigned chunk);
    unsigned eventOf(unsigned chunk) const;

    Dms &dms;
    unsigned coreId;
    mem::Dmem &dmem;
    HandoffExecParams p;
    LandedFn cb;
    std::deque<Queued> fifo;
    bool bufBusy[2] = {false, false};
    unsigned gen = 0;
    unsigned total = 0;
    unsigned landedCnt = 0;
    unsigned failedCnt = 0;
    std::uint64_t staleCnt = 0;
};

} // namespace dpu::dms

#endif // DPU_DMS_HANDOFF_EXEC_HH

/**
 * @file
 * DMS descriptors: the 16-byte macro-instructions that software uses
 * to program the Data Movement System (Section 3.3).
 *
 * Two classes exist, data and control. Data descriptors cover the
 * six source->destination combinations of Table 1; control
 * descriptors program loops, events, and the hash/range engines.
 *
 * The DDR<->DMEM data descriptor is encoded bit-exactly per Table 2:
 *
 *   Word0  Type[31:28] Notify[25:21] Wait[20:16] LinkAddr[15:0]
 *   Word1  ColWidth[30:28] GatherSrc[25] ScatterDst[24] RLE[23]
 *          SrcAddrInc[17] DstAddrInc[16] DDRAddr[3:0]
 *   Word2  Rows[31:16] DMEMAddr[15:0]
 *   Word3  DDRAddr[35:4]
 *
 * The paper's table does not show enable bits for Notify/Wait (event
 * 0 is a legal event in Listing 1, so 0 cannot mean "none"); we use
 * word0 bits 27 and 26 as NotifyEn/WaitEn, and note the assumption.
 * Layouts for the descriptor types the paper does not table-ize
 * (internal-memory moves, loop, event, engine programming) are our
 * own design in the same 4x32-bit style.
 */

#ifndef DPU_DMS_DESCRIPTOR_HH
#define DPU_DMS_DESCRIPTOR_HH

#include <array>
#include <cstdint>

#include "mem/addr.hh"

namespace dpu::dms {

/** Descriptor type tag (word0 bits 31:28 plus an extension space). */
enum class DescType : std::uint8_t
{
    Nop = 0,
    /** DDR -> DMEM data move (stride/gather source). */
    DdrToDmem = 1,
    /** DMEM -> DDR data move (scatter destination). */
    DmemToDdr = 2,
    /** DDR -> DMS column memories (partition pipeline load). */
    DdrToDms = 3,
    /** DMS -> DMEM partition store stage. */
    DmsToDmem = 4,
    /** DMEM -> DMS: load RID/BV masks into bit-vector memory. */
    DmemToDms = 5,
    /** DMS -> DDR: dump CRC/CID memory to DRAM. */
    DmsToDdr = 6,
    /** DMS -> DMS internal move. */
    DmsToDms = 7,
    /** Hash/range stage: CMEM -> CRC memory -> CID memory. */
    HashCol = 8,
    /** Loop control: jump back LinkAddr, fixed iteration count. */
    Loop = 9,
    /** Event control: set/clear/wait event masks. */
    EventCtl = 10,
    /** Program the hash engine (CRC on/off, radix bits/shift). */
    HashProg = 11,
    /** Program the range engine (32 boundaries from DMEM). */
    RangeProg = 12,
    /** Configure partition output buffers (table in DMEM). */
    PartDstCfg = 13,
    /** Flush partial partition output buffers to their cores. */
    PartFlush = 14,
};

/** Which internal DMAC SRAM a descriptor operand names. */
enum class IMem : std::uint8_t
{
    None = 0,
    Cmem = 1,   ///< 3 x 8 KB column memories
    Crc = 2,    ///< 2 x 1 KB CRC memories
    Cid = 3,    ///< 2 x 256 B core-id memories
    Bv = 4,     ///< 4 x 4 KB bit-vector memories
};

/** Event-control sub-operations. */
enum class EventOp : std::uint8_t
{
    Set = 0,
    Clear = 1,
    WaitClear = 2,  ///< proceed when all events in mask are clear
    WaitSet = 3,    ///< proceed when all events in mask are set
};

/**
 * Decoded descriptor. Software builds these via the rt:: helpers,
 * encodes them into DMEM, and pushes the DMEM pointer to a DMS
 * channel; the DMAD decodes them back out of DMEM.
 */
struct Descriptor
{
    DescType type = DescType::Nop;

    /**
     * Completion event (0..31, -1 = none). Data descriptors use it
     * double-duty exactly as Listing 1 implies: execution WAITS
     * until the event is clear (the buffer was consumed), and SETS
     * it when the transfer completes.
     */
    std::int8_t notifyEvent = -1;

    /** Extra wait-for-clear precondition event (-1 = none). */
    std::int8_t waitEvent = -1;

    /** Loop target / chain link (DMEM address of a descriptor). */
    std::uint16_t linkAddr = 0;

    // --- data movement operands -----------------------------------
    std::uint8_t colWidth = 4;      ///< element width: 1/2/4/8 B
    std::uint32_t rows = 0;         ///< element count (16 bits)
    mem::Addr ddrAddr = 0;          ///< 36-bit DDR address
    std::uint16_t dmemAddr = 0;     ///< offset in pusher's DMEM

    bool gatherSrc = false;         ///< DDR source selected by BV/RID
    bool scatterDst = false;        ///< DDR destination by BV/RID
    bool rle = false;               ///< BV interpreted as RID list
    bool srcAddrInc = false;        ///< auto-increment DDR addr in loops
    bool dstAddrInc = false;        ///< auto-increment DMEM addr in loops

    // --- internal memory operands (DDR<->DMS, DMS<->DMS, Hash) ----
    IMem imem = IMem::None;         ///< primary internal operand
    std::uint8_t ibank = 0;
    IMem imem2 = IMem::None;        ///< secondary internal operand
    std::uint8_t ibank2 = 0;
    std::uint8_t cidBank = 0;       ///< CID memory bank (hash/store)

    /** DdrToDms tuple load: number of equal-width columns gathered
     *  into row-major tuples, and the DDR distance between column
     *  arrays (column-major table layout). */
    std::uint8_t nCols = 1;
    std::uint32_t colStride = 0;
    /**
     * Optional projection (Section 2.1: the DMS performs
     * "partitioning and projection while transferring data"): when
     * non-zero, bit i selects source column i; exactly nCols bits
     * must be set and the packed tuple holds the selected columns
     * in index order. Zero means columns 0..nCols-1.
     */
    std::uint16_t colMask = 0;

    // --- loop ------------------------------------------------------
    std::uint16_t iterations = 0;

    // --- event control ----------------------------------------------
    EventOp eventOp = EventOp::Set;
    std::uint32_t eventMask = 0;

    // --- hash/range programming -------------------------------------
    bool hashUseCrc = true;         ///< CRC32 the key vs raw key bits
    std::uint8_t radixBits = 5;     ///< 5 bits -> 32-way
    std::uint8_t radixShift = 0;
    bool rangeMode = false;         ///< HashCol consults range engine

    bool operator==(const Descriptor &) const = default;
};

/** The 16-byte wire form living in DMEM. */
struct EncodedDesc
{
    std::array<std::uint32_t, 4> w{};
};

/** Encode to the 16 B wire format (Table 2 layout for DDR<->DMEM). */
EncodedDesc encode(const Descriptor &d);

/** Decode from the wire format. */
Descriptor decode(const EncodedDesc &e);

/** Static display name for a descriptor type ("DdrToDmem", ...). */
const char *descTypeName(DescType t);

} // namespace dpu::dms

#endif // DPU_DMS_DESCRIPTOR_HH

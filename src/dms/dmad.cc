#include "dms/dmad.hh"

#include "sim/fault.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace dpu::dms {

Dmad::Dmad(DmsContext &ctx_, Dmac &dmac_, unsigned core_id)
    : ctx(ctx_), dmac(dmac_), coreId(core_id),
      channels(channelsPerCore)
{
}

void
Dmad::push(unsigned ch, std::uint16_t desc_addr)
{
    sim_assert(ch < channelsPerCore, "bad DMS channel %u", ch);

    // A push onto an idle channel starts a fresh chain: retire the
    // completed active list and re-arm the auto-increment registers.
    Channel &chan = channels[ch];
    if (!chan.waiting && chan.pc >= chan.list.size() &&
        chan.inflight == 0) {
        chan.list.clear();
        chan.pc = 0;
        chan.srcArmed = false;
        chan.dstArmed = false;
    }

    EncodedDesc e;
    ctx.dmems[coreId]->read(desc_addr, e.w.data(), sizeof(e.w));
    Entry entry;
    entry.d = decode(e);
    entry.dmemAddr = desc_addr;
    entry.remaining = entry.d.iterations;

    DPU_TRACE_INSTANT(sim::TraceCat::Dms, ctx.baseCore + coreId,
                      "push", ctx.eq.now(), "ch", ch);
    channels[ch].list.push_back(entry);
    process(ch);
}

bool
Dmad::idle(unsigned ch) const
{
    const Channel &c = channels[ch];
    return c.pc >= c.list.size() && c.inflight == 0;
}

void
Dmad::reset()
{
    for (Channel &c : channels) {
        sim_assert(c.inflight == 0,
                   "DMAD reset with descriptors in flight (core %u)",
                   coreId);
        c.list.clear();
        c.pc = 0;
        c.pendingSet = 0;
        c.waiting = false;
        c.srcArmed = false;
        c.dstArmed = false;
    }
}

std::size_t
Dmad::findEntry(const Channel &c, std::uint16_t link_addr) const
{
    for (std::size_t i = 0; i < c.list.size(); ++i) {
        if (c.list[i].dmemAddr == link_addr)
            return i;
    }
    panic("loop target %#x not on active list (core %u)", link_addr,
          coreId);
}

void
Dmad::parkOnClear(unsigned ch, unsigned ev)
{
    Channel &c = channels[ch];
    c.waiting = true;
    ctx.events[coreId].whenClear(ev, [this, ch] {
        channels[ch].waiting = false;
        ctx.eq.scheduleIn(0, [this, ch] { process(ch); },
                          sim::EvTag::Dms);
    });
}

void
Dmad::parkOnSet(unsigned ch, unsigned ev)
{
    Channel &c = channels[ch];
    c.waiting = true;
    ctx.events[coreId].whenSet(ev, [this, ch] {
        channels[ch].waiting = false;
        ctx.eq.scheduleIn(0, [this, ch] { process(ch); },
                          sim::EvTag::Dms);
    });
}

void
Dmad::completeAt(sim::Tick t, unsigned ch, int notify,
                 std::uint32_t span_id, const char *desc_name,
                 bool error)
{
    ctx.eq.schedule(
        std::max(t, ctx.eq.now()),
        [this, ch, notify, span_id, desc_name, error] {
            if (span_id) {
                DPU_TRACE_SPAN_END(sim::TraceCat::Dms,
                                   ctx.baseCore + coreId, desc_name,
                                   span_id, ctx.eq.now());
            }
            Channel &chan = channels[ch];
            if (notify >= 0) {
                chan.pendingSet &= ~(1u << unsigned(notify));
                if (error)
                    ctx.events[coreId].markError(unsigned(notify));
                ctx.events[coreId].set(unsigned(notify));
            }
            --chan.inflight;
            process(ch);
        },
        sim::EvTag::Dms);
}

void
Dmad::process(unsigned ch)
{
    Channel &c = channels[ch];
    if (c.waiting)
        return;

    while (c.pc < c.list.size()) {
        Entry &e = c.list[c.pc];
        Descriptor &d = e.d;

        switch (d.type) {
          case DescType::Loop:
            if (e.remaining > 0) {
                --e.remaining;
                c.pc = findEntry(c, d.linkAddr);
            } else {
                e.remaining = d.iterations; // rearm for reuse
                ++c.pc;
            }
            continue;

          case DescType::EventCtl: {
            EventFile &ef = ctx.events[coreId];
            if (d.eventOp == EventOp::Set) {
                for (unsigned i = 0; i < eventsPerCore; ++i)
                    if (d.eventMask & (1u << i))
                        ef.set(i);
                ++c.pc;
                continue;
            }
            if (d.eventOp == EventOp::Clear) {
                for (unsigned i = 0; i < eventsPerCore; ++i)
                    if (d.eventMask & (1u << i))
                        ef.clear(i);
                ++c.pc;
                continue;
            }
            if (d.eventOp == EventOp::WaitClear) {
                std::uint32_t busy =
                    (ef.word() | c.pendingSet) & d.eventMask;
                if (busy) {
                    unsigned ev = unsigned(__builtin_ctz(busy));
                    if (ef.isSet(ev))
                        parkOnClear(ch, ev);
                    // else: a pending set will re-run process().
                    return;
                }
                ++c.pc;
                continue;
            }
            // WaitSet
            {
                std::uint32_t missing = ~ef.word() & d.eventMask;
                if (missing) {
                    parkOnSet(ch,
                              unsigned(__builtin_ctz(missing)));
                    return;
                }
                ++c.pc;
                continue;
            }
          }

          case DescType::HashProg:
            dmac.programHash(d);
            ++c.pc;
            continue;

          case DescType::RangeProg:
            dmac.programRange(coreId, d);
            ++c.pc;
            continue;

          case DescType::PartDstCfg:
            dmac.configPartDst(coreId, d);
            ++c.pc;
            continue;

          default:
            break; // a data descriptor, handled below
        }

        // ---- data descriptor ----------------------------------
        if (c.inflight >= ctx.params.outstanding)
            return; // a completion will resume us

        EventFile &ef = ctx.events[coreId];

        // Listing-1 semantics: the notify event doubles as the
        // buffer-ownership flag; execution waits until it is clear.
        if (d.notifyEvent >= 0) {
            unsigned ev = unsigned(d.notifyEvent);
            if (ef.isSet(ev)) {
                parkOnClear(ch, ev);
                return;
            }
            if (c.pendingSet & (1u << ev))
                return; // completion handler will re-run process()
        }
        if (d.waitEvent >= 0) {
            unsigned ev = unsigned(d.waitEvent);
            if (ef.isSet(ev)) {
                parkOnClear(ch, ev);
                return;
            }
            if (c.pendingSet & (1u << ev))
                return;
        }

        const std::uint32_t bytes = d.rows * d.colWidth;
        mem::Addr eff_ddr = d.ddrAddr;
        std::uint32_t eff_dmem = d.dmemAddr;
        if (d.srcAddrInc) {
            if (!c.srcArmed) {
                c.srcArmed = true;
                c.srcReg = d.ddrAddr;
            }
            eff_ddr = c.srcReg;
            c.srcReg += bytes;
        }
        if (d.dstAddrInc) {
            if (!c.dstArmed) {
                c.dstArmed = true;
                c.dstReg = d.dmemAddr;
            }
            eff_dmem = c.dstReg;
            c.dstReg += bytes;
        }

        ++c.inflight;
        if (d.notifyEvent >= 0)
            c.pendingSet |= 1u << unsigned(d.notifyEvent);

        // Descriptor lifecycle span: DMAD issue -> DMAC completion.
        // Async ('b'/'e') because up to `outstanding` descriptors
        // overlap on one channel's track.
        std::uint32_t span_id = 0;
        if (DPU_TRACE_ARMED) {
            span_id = DPU_TRACE_NEXT_ID();
            DPU_TRACE_SPAN_BEGIN(sim::TraceCat::Dms,
                                 ctx.baseCore + coreId,
                                 descTypeName(d.type), span_id,
                                 ctx.eq.now(), "rows", d.rows,
                                 "bytes", bytes);
        }

        const int notify = d.notifyEvent;
        const char *desc_name = descTypeName(d.type);
        if (sim::faultPlane().active() &&
            sim::faultPlane().fires(sim::FaultSite::DmsDescError,
                                    ctx.eq.now(),
                                    int(ctx.baseCore + coreId))) {
            // Injected descriptor error: the DMAC rejects the
            // descriptor after decode and completes it with error
            // status. No data moves; the notify event still fires
            // (waiters must wake) carrying the error flag.
            DPU_TRACE_INSTANT(sim::TraceCat::Dms,
                              ctx.baseCore + coreId, "descError",
                              ctx.eq.now(), "ch", ch);
            completeAt(ctx.eq.now() + ctx.params.descOverhead, ch,
                       notify, span_id, desc_name, true);
        } else {
            dmac.execute(
                coreId, d, eff_ddr, eff_dmem, ctx.eq.now(),
                [this, ch, notify, span_id,
                 desc_name](sim::Tick t) {
                    completeAt(t, ch, notify, span_id, desc_name,
                               false);
                });
        }

        ++c.pc;
    }
}

} // namespace dpu::dms

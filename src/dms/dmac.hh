/**
 * @file
 * The central DMA Controller (Sections 3.1-3.2, Figure 8).
 *
 * Owns the internal SRAMs (3 x 8 KB column memories, double-buffered
 * CRC and CID memories, 4 x 4 KB bit-vector banks), four load/store
 * engines (one per DMAX/macro), the hash engine (CRC32 + radix
 * extraction) and the 32-entry range comparator. Executes decoded
 * data descriptors with a timestamp-based resource model: every
 * engine, internal bank, DMAX bus and the DDR channel carries a
 * busy-until tick, so the three-stage partition pipeline of Figure 9
 * (load / hash+CID / store) overlaps exactly when the software
 * rotates banks as in Figure 10.
 *
 * Partition stores apply real back-pressure: when a destination
 * core's DMEM buffer ring is full (its event is still set because
 * the core has not consumed the buffer), the store engine suspends
 * and resumes on the event's clearing edge — "the DMAC hardware thus
 * applies back pressure to restore flow control" (Section 3.1).
 */

#ifndef DPU_DMS_DMAC_HH
#define DPU_DMS_DMAC_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "dms/descriptor.hh"
#include "dms/dms_context.hh"
#include "sim/stats.hh"

namespace dpu::dms {

/** Completion callback: invoked once with the finish tick. */
using DoneFn = std::function<void(sim::Tick)>;

/** The central DMA controller. */
class Dmac
{
  public:
    explicit Dmac(DmsContext &ctx);

    /**
     * Execute a data descriptor.
     * @param core      The pushing dpCore (selects the DMAX/engine,
     *                  and owns the DMEM side of DDR<->DMEM moves).
     * @param d         Decoded descriptor.
     * @param eff_ddr   Effective DDR address (after DMAD
     *                  auto-increment).
     * @param eff_dmem  Effective DMEM offset.
     * @param issue     Tick the DMAD handed the descriptor over.
     * @param done      Called exactly once with the completion tick.
     */
    void execute(unsigned core, const Descriptor &d,
                 mem::Addr eff_ddr, std::uint32_t eff_dmem,
                 sim::Tick issue, DoneFn done);

    /** Program the hash engine (HashProg control descriptor). */
    void programHash(const Descriptor &d);

    /**
     * Program the 32 range boundaries from a table of 8 B values in
     * the pushing core's DMEM (RangeProg control descriptor).
     */
    void programRange(unsigned core, const Descriptor &d);

    /**
     * Configure partition destinations from a table in the pushing
     * core's DMEM (PartDstCfg): one 8 B entry per destination core
     * { u16 base, u16 bufBytes, u8 firstEvent, u8 nBufs, u16 pad }.
     */
    void configPartDst(unsigned core, const Descriptor &d);

    /** True if the gather-bug erratum has wedged the DMAC. */
    bool hung() const { return wedged; }

    sim::StatGroup &statGroup() { return stats; }

    /** Raw internal memory access for tests. */
    std::uint8_t *cmemBank(unsigned b) { return cmem[b].data(); }
    std::uint8_t *crcBank(unsigned b) { return crcm[b].data(); }
    std::uint8_t *cidBankData(unsigned b) { return cidm[b].data(); }
    std::uint8_t *bvBank(unsigned b) { return bvm[b].data(); }

  private:
    // --- execution helpers, one per descriptor family -------------
    void execDdrToDmem(unsigned core, const Descriptor &d,
                       mem::Addr ddr, std::uint32_t dmem,
                       sim::Tick start, DoneFn done);
    void execDmemToDdr(unsigned core, const Descriptor &d,
                       mem::Addr ddr, std::uint32_t dmem,
                       sim::Tick start, DoneFn done);
    void execDdrToDms(unsigned core, const Descriptor &d,
                      mem::Addr ddr, sim::Tick start, DoneFn done);
    void execHashCol(const Descriptor &d, sim::Tick start,
                     DoneFn done);
    void execStorePart(unsigned core, const Descriptor &d,
                       sim::Tick start, DoneFn done);
    void execPartFlush(sim::Tick start, DoneFn done);
    void execDmemToDms(unsigned core, const Descriptor &d,
                       std::uint32_t dmem, sim::Tick start,
                       DoneFn done);
    void execDmsToDdr(const Descriptor &d, mem::Addr ddr,
                      sim::Tick start, DoneFn done);
    void execDmsToDms(const Descriptor &d, sim::Tick start,
                      DoneFn done);

    /**
     * Issue a contiguous DDR transfer as pipelined AXI transactions
     * (max 256 B each, axiWindow outstanding).
     * @return completion tick of the last beat.
     */
    sim::Tick ddrStream(mem::Addr addr, std::uint8_t *buf,
                        std::uint32_t bytes, bool write,
                        sim::Tick start);

    /** Ticks to move @p bytes across one DMAX data bus. */
    sim::Tick dmaxTicks(std::uint32_t bytes) const;

    /** Selected-row runs for a gather/scatter mask. */
    struct Run
    {
        std::uint32_t firstRow;
        std::uint32_t nRows;
    };
    std::vector<Run> maskRuns(const Descriptor &d,
                              std::uint32_t rows) const;

    // --- partition store machinery ---------------------------------
    struct PartDst
    {
        bool configured = false;
        std::uint16_t base = 0;
        std::uint16_t bufBytes = 0;
        std::uint8_t firstEvent = 0;
        std::uint8_t nBufs = 0;
        std::uint8_t curBuf = 0;
        std::uint16_t fill = 0;     ///< payload bytes in curBuf
        std::uint32_t rowsInBuf = 0;
        /**
         * Buffers sealed but not yet handed back by the consumer.
         * Tracked here (not via the event file) because the seal's
         * event-set is scheduled at a future tick; checking raw
         * event state would let the store engine overwrite a
         * buffer whose completion is still in flight.
         */
        std::uint8_t busyMask = 0;
    };

    /** One in-progress (possibly back-pressured) partition store,
     *  or a flush job (which must serialize behind earlier stores
     *  and respect the same buffer back-pressure). */
    struct PartJob
    {
        unsigned core;
        Descriptor d;
        bool flush = false;
        /** Next row (stores) or next destination core (flush). */
        std::uint32_t row = 0;
        sim::Tick t = 0;
        /** Model tick the job entered the pipeline (trace span). */
        sim::Tick traceStart = 0;
        DoneFn done;
    };

    void partStep();
    /**
     * Seal dst's current buffer: write the row-count header (top
     * bit flags a flush-sealed, i.e. final, buffer) and set the
     * buffer's event at @p t.
     */
    void finalizeBuffer(unsigned dst_core, sim::Tick t,
                        bool final_buf = false);

    DmsContext &ctx;
    sim::StatGroup stats;

    // Internal SRAMs.
    std::array<std::array<std::uint8_t, cmemBankBytes>, nCmemBanks>
        cmem{};
    std::array<std::array<std::uint8_t, crcBankBytes>, nCrcBanks>
        crcm{};
    std::array<std::array<std::uint8_t, cidBankBytes>, nCidBanks>
        cidm{};
    std::array<std::array<std::uint8_t, bvBankBytes>, nBvBanks> bvm{};

    // Busy-until ticks for every shared resource.
    /** Global descriptor dispatcher (front-end) occupancy. */
    sim::Tick dispatcher = 0;
    std::array<sim::Tick, nDmax> loadEngine{};
    std::array<sim::Tick, nDmax> storeEngine{};
    std::array<sim::Tick, nDmax> dmaxBus{};
    sim::Tick hashEngine = 0;
    std::array<sim::Tick, nCmemBanks> cmemBusy{};
    std::array<sim::Tick, nCrcBanks> crcBusy{};
    std::array<sim::Tick, nCidBanks> cidBusy{};
    std::array<sim::Tick, nBvBanks> bvBusy{};

    // Hash/range engine programming.
    bool hashUseCrc = true;
    std::uint8_t radixBits = 5;
    std::uint8_t radixShift = 0;
    std::array<std::uint64_t, 32> rangeBounds{};
    bool rangeProgrammed = false;

    // Partition destinations & the serialized store pipeline.
    std::vector<PartDst> partDst;
    std::deque<PartJob> partQueue;
    bool partActive = false;

    /** Record a permanent DMAC wedge: flag + stats + trace. */
    void wedge(unsigned core, const char *cause);

    // Gather erratum state.
    unsigned gathersActive = 0;
    bool wedged = false;
};

} // namespace dpu::dms

#endif // DPU_DMS_DMAC_HH

#include "dms/dms.hh"

namespace dpu::dms {

Dms::Dms(sim::EventQueue &eq, mem::MainMemory &mm, unsigned n_cores,
         const DmsParams &params, unsigned base_core)
    : ctx(eq, mm, n_cores, params), baseCore(base_core)
{
    ctx.baseCore = base_core;
    dmacUnit = std::make_unique<Dmac>(ctx);
    dmads.reserve(n_cores);
    for (unsigned i = 0; i < n_cores; ++i)
        dmads.push_back(std::make_unique<Dmad>(ctx, *dmacUnit, i));
}

unsigned
Dms::localId(const core::DpCore &c) const
{
    unsigned id = c.id();
    sim_assert(id >= baseCore && id - baseCore < ctx.nCores(),
               "core %u is not served by this DMS complex", id);
    return id - baseCore;
}

void
Dms::attachCore(unsigned id, mem::Dmem *dmem)
{
    ctx.dmems[id] = dmem;
}

void
Dms::push(core::DpCore &c, unsigned channel, std::uint16_t desc_addr)
{
    // The push instruction itself plus the DMAD descriptor fetch.
    c.cycles(4);
    c.sync();
    dmads[localId(c)]->push(channel, desc_addr);
}

void
Dms::wfe(core::DpCore &c, unsigned ev)
{
    c.cycles(1);
    EventFile &ef = ctx.events[localId(c)];
    core::DpCore *cp = &c;
    c.blockUntil([this, cp, &ef, ev] {
        if (ef.isSet(ev))
            return true;
        ef.whenSet(ev, [this, cp] { cp->wake(ctx.eq.now()); });
        return false;
    });
}

Dms::WfeResult
Dms::wfeFor(core::DpCore &c, unsigned ev, sim::Tick timeout)
{
    c.cycles(1);
    c.sync();
    const unsigned local = localId(c);
    EventFile &ef = ctx.events[local];
    const sim::Tick deadline = ctx.eq.now() + timeout;
    core::DpCore *cp = &c;
    // The deadline wake is unconditional; a core that already moved
    // on just absorbs a spurious predicate re-check (wake() is a
    // no-op unless the core is blocked).
    ctx.eq.schedule(deadline, [this, cp] { cp->wake(ctx.eq.now()); },
                    sim::EvTag::Dms);
    c.blockUntil([this, cp, &ef, ev, deadline] {
        if (ef.isSet(ev))
            return true;
        if (ctx.eq.now() >= deadline)
            return true;
        ef.whenSet(ev, [this, cp] { cp->wake(ctx.eq.now()); });
        return false;
    });
    if (!ef.isSet(ev))
        return WfeResult::Timeout;
    return ef.errorSet(ev) ? WfeResult::Error : WfeResult::Ok;
}

void
Dms::clearEvent(core::DpCore &c, unsigned ev)
{
    c.cycles(1);
    c.sync();
    DPU_TRACE_INSTANT(sim::TraceCat::Dms, c.id(), "evClear",
                      ctx.eq.now(), "event", ev);
    ctx.events[localId(c)].clear(ev);
}

} // namespace dpu::dms

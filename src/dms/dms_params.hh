/**
 * @file
 * DMS microarchitecture parameters (Sections 3.1-3.2).
 *
 * Geometry is taken directly from the paper: 3 x 8 KB column
 * memories, double-buffered 1 KB CRC and 256 B CID memories, 4 x
 * 4 KB bit-vector banks (42.5 KB total), four load/store engines
 * (one per DMAX/macro), a 128-bit AXI DDR port with 256 B maximum
 * transactions, and a 4-descriptor outstanding window.
 *
 * Latency/overhead numbers are calibration knobs chosen so the
 * microbenchmarks land on the paper's Figure 11-13 shapes (~9.3-9.6
 * GB/s at 8 KB buffers, lower at small tiles); EXPERIMENTS.md
 * records the resulting fits.
 */

#ifndef DPU_DMS_DMS_PARAMS_HH
#define DPU_DMS_DMS_PARAMS_HH

#include <cstdint>

#include "sim/types.hh"

namespace dpu::dms {

/** Number of DMAX crossbar complexes (one per macro). */
constexpr unsigned nDmax = 4;

/** Internal SRAM geometry (Section 3.2). */
constexpr unsigned nCmemBanks = 3;
constexpr unsigned cmemBankBytes = 8 * 1024;
constexpr unsigned nCrcBanks = 2;
constexpr unsigned crcBankBytes = 1024;
constexpr unsigned nCidBanks = 2;
constexpr unsigned cidBankBytes = 256;
constexpr unsigned nBvBanks = 4;
constexpr unsigned bvBankBytes = 4 * 1024;

/** Maximum bytes per AXI transaction (Section 3.1). */
constexpr unsigned axiMaxBytes = 256;

/** Tunable latencies and rates. */
struct DmsParams
{
    /** DMAD descriptor fetch/decode + DMAX arbitration + DMAC
     *  dispatch, charged once per descriptor. */
    sim::Tick descOverhead = 120'000;   // 120 ns

    /** In-flight descriptor window per channel at the DMAC. */
    unsigned outstanding = 4;

    /** The DMAC front-end dispatches one descriptor at a time;
     *  this is the per-descriptor occupancy of that dispatcher.
     *  It is what makes small DMEM tiles lose bandwidth in
     *  Figure 11 ("large buffer sizes amortize fixed DMS
     *  configuration overheads"). */
    sim::Tick dmacDispatch = 100'000; // 100 ns

    /** DDR transactions kept in flight by a load/store engine
     *  within one descriptor. */
    unsigned axiWindow = 16;

    /** DMAX data path: bytes per core cycle (128-bit @ 800 MHz). */
    unsigned dmaxBytesPerCycle = 16;

    /** Hash/range engine throughput: keys per core cycle. */
    unsigned hashKeysPerCycle = 1;

    /** Hash/CID stage fixed setup per chunk descriptor (cycles). */
    sim::Cycles hashSetupCycles = 16;

    /** Partition store engine: bytes per cycle into one DMAX. */
    unsigned storeBytesPerCycle = 16;

    /** Extra per-run cost of gather/scatter (address generation). */
    sim::Tick gatherRunOverhead = 10'000; // 10 ns

    /**
     * Emulate the first-silicon RTL erratum (Section 3.4): when more
     * than one gather descriptor is in flight, the bit-vector-count
     * FIFO in the DMAC overflows and the issuing DMADs stall
     * indefinitely. The software workaround serializes gathers.
     */
    bool emulateGatherBug = false;
};

} // namespace dpu::dms

#endif // DPU_DMS_DMS_PARAMS_HH

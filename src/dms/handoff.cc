#include "dms/handoff.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dpu::dms {

std::uint64_t
HandoffPlan::totalBytes() const
{
    std::uint64_t total = 0;
    for (const HandoffChunk &c : chunks)
        total += c.bytes();
    return total;
}

std::vector<Descriptor>
HandoffPlan::descriptors(std::uint16_t dmem_base,
                         std::uint16_t buf_bytes, std::int8_t event_a,
                         std::int8_t event_b) const
{
    sim_assert(event_a != event_b,
               "hand-off ping-pong needs two distinct events");
    std::vector<Descriptor> out;
    out.reserve(chunks.size());
    bool ping = true;
    for (const HandoffChunk &c : chunks) {
        sim_assert(c.bytes() <= buf_bytes,
                   "hand-off chunk (%llu B) overflows the %u B "
                   "staging buffer",
                   (unsigned long long)c.bytes(), unsigned(buf_bytes));
        Descriptor d;
        d.type = DescType::DdrToDmem;
        d.colWidth = c.colWidth;
        d.rows = c.rows;
        d.ddrAddr = c.ddrAddr;
        d.dmemAddr = std::uint16_t(
            dmem_base + (ping ? 0 : buf_bytes));
        d.notifyEvent = ping ? event_a : event_b;
        out.push_back(d);
        ping = !ping;
    }
    return out;
}

HandoffPlan
planRangeHandoff(mem::Addr base, std::uint64_t bytes,
                 std::uint64_t chunk_bytes, std::uint8_t col_width)
{
    sim_assert(col_width == 1 || col_width == 2 || col_width == 4 ||
                   col_width == 8,
               "hand-off element width must be 1/2/4/8, got %u",
               unsigned(col_width));
    sim_assert(bytes % col_width == 0,
               "hand-off range (%llu B) is not a whole number of "
               "%u B elements",
               (unsigned long long)bytes, unsigned(col_width));
    sim_assert(chunk_bytes >= col_width,
               "hand-off chunk smaller than one element");

    HandoffPlan plan;
    plan.base = base;

    // Rows is 16 bits in the Table 2 encoding: one descriptor can
    // name at most 65535 elements, whatever the chunk knob says.
    const std::uint64_t max_rows =
        std::min<std::uint64_t>(chunk_bytes / col_width, 0xffff);
    std::uint64_t rows_left = bytes / col_width;
    mem::Addr at = base;
    while (rows_left > 0) {
        HandoffChunk c;
        c.ddrAddr = at;
        c.colWidth = col_width;
        c.rows = std::uint32_t(std::min(rows_left, max_rows));
        plan.chunks.push_back(c);
        rows_left -= c.rows;
        at += c.bytes();
    }
    return plan;
}

} // namespace dpu::dms

#include "host/router.hh"

#include "host/offload.hh"
#include "sim/logging.hh"
#include "util/crc32.hh"

namespace dpu::host {

void
Router::candidates(const RouteInfo &req, unsigned nShards,
                   std::vector<unsigned> &out)
{
    out.push_back(route(req, nShards));
}

std::uint32_t
routeHash(const RouteInfo &req)
{
    // FNV over the app name, CRC-folded with the 64-bit key (the
    // explicit placement key when present, the request seed
    // otherwise). Bit-identical to the PR-5 BoardScheduler mix for
    // keyless requests, which the board goldens pin.
    const std::uint64_t k = req.hasKey ? req.key : req.seed;
    std::uint32_t h = 2166136261u;
    for (char ch : req.app)
        h = (h ^ std::uint8_t(ch)) * 16777619u;
    h = util::crc32Key(h ^ std::uint32_t(k));
    h = util::crc32Key(h ^ std::uint32_t(k >> 32));
    return h;
}

RouteInfo
routeInfoOf(const JobRequest &req)
{
    RouteInfo info;
    info.app = req.app;
    info.seed = req.seed;
    return info;
}

namespace {

class HashRouter final : public Router
{
  public:
    const char *name() const override { return "hash"; }

    unsigned
    route(const RouteInfo &req, unsigned nShards) override
    {
        return routeHash(req) % nShards;
    }
};

class RoundRobinRouter final : public Router
{
  public:
    const char *name() const override { return "rr"; }

    unsigned
    route(const RouteInfo &, unsigned nShards) override
    {
        const unsigned d = next % nShards;
        next = (next + 1) % nShards;
        return d;
    }

  private:
    unsigned next = 0;
};

class WeightedRouter final : public Router
{
  public:
    explicit WeightedRouter(std::vector<double> w)
        : weights(std::move(w))
    {
        for (double v : weights)
            sim_assert(v >= 0.0,
                       "weighted router: negative weight %g", v);
    }

    const char *name() const override { return "weighted"; }

    unsigned
    route(const RouteInfo &req, unsigned nShards) override
    {
        double total = 0;
        for (unsigned i = 0; i < nShards; ++i)
            total += weightOf(i);
        sim_assert(total > 0.0,
                   "weighted router: all %u shards weigh zero",
                   nShards);
        // 32-bit hash mapped onto the cumulative weight line; the
        // division is exact enough that a shard's share converges
        // to weight/total, and the pick stays a pure function of
        // the request.
        const double u =
            double(routeHash(req)) / 4294967296.0 * total;
        double acc = 0;
        for (unsigned i = 0; i < nShards; ++i) {
            acc += weightOf(i);
            if (u < acc)
                return i;
        }
        return nShards - 1;
    }

  private:
    double
    weightOf(unsigned i) const
    {
        return i < weights.size() ? weights[i] : 1.0;
    }

    std::vector<double> weights;
};

class ReplicaGroupRouter final : public Router
{
  public:
    explicit ReplicaGroupRouter(unsigned r) : replication(r)
    {
        sim_assert(r >= 1,
                   "replica-group router: replication must be >= 1");
    }

    const char *name() const override { return "replica"; }

    unsigned
    route(const RouteInfo &req, unsigned nShards) override
    {
        return routeHash(req) % nShards;
    }

    void
    candidates(const RouteInfo &req, unsigned nShards,
               std::vector<unsigned> &out) override
    {
        const unsigned g = routeHash(req) % nShards;
        const unsigned r =
            replication < nShards ? replication : nShards;
        for (unsigned i = 0; i < r; ++i)
            out.push_back((g + i) % nShards);
    }

  private:
    unsigned replication;
};

} // namespace

std::unique_ptr<Router>
makeHashRouter()
{
    return std::make_unique<HashRouter>();
}

std::unique_ptr<Router>
makeRoundRobinRouter()
{
    return std::make_unique<RoundRobinRouter>();
}

std::unique_ptr<Router>
makeWeightedRouter(std::vector<double> weights)
{
    return std::make_unique<WeightedRouter>(std::move(weights));
}

std::unique_ptr<Router>
makeReplicaGroupRouter(unsigned replication)
{
    return std::make_unique<ReplicaGroupRouter>(replication);
}

std::unique_ptr<Router>
makeRouter(ShardRouting policy)
{
    switch (policy) {
    case ShardRouting::RoundRobin:
        return makeRoundRobinRouter();
    case ShardRouting::Hash:
        break;
    }
    return makeHashRouter();
}

} // namespace dpu::host

#include "host/router.hh"

#include "host/offload.hh"
#include "sim/logging.hh"
#include "util/crc32.hh"

namespace dpu::host {

void
Router::candidates(const RouteInfo &req, unsigned nShards,
                   std::vector<unsigned> &out)
{
    out.push_back(route(req, nShards));
}

std::uint32_t
routeHash(const RouteInfo &req)
{
    // FNV over the app name, CRC-folded with the 64-bit key (the
    // explicit placement key when present, the request seed
    // otherwise). Bit-identical to the PR-5 BoardScheduler mix for
    // keyless requests, which the board goldens pin.
    const std::uint64_t k = req.hasKey ? req.key : req.seed;
    std::uint32_t h = 2166136261u;
    for (char ch : req.app)
        h = (h ^ std::uint8_t(ch)) * 16777619u;
    h = util::crc32Key(h ^ std::uint32_t(k));
    h = util::crc32Key(h ^ std::uint32_t(k >> 32));
    return h;
}

RouteInfo
routeInfoOf(const JobRequest &req)
{
    RouteInfo info;
    info.app = req.app;
    info.seed = req.seed;
    return info;
}

namespace {

class HashRouter final : public Router
{
  public:
    const char *name() const override { return "hash"; }

    unsigned
    route(const RouteInfo &req, unsigned nShards) override
    {
        return routeHash(req) % nShards;
    }
};

class RoundRobinRouter final : public Router
{
  public:
    const char *name() const override { return "rr"; }

    unsigned
    route(const RouteInfo &, unsigned nShards) override
    {
        const unsigned d = next % nShards;
        next = (next + 1) % nShards;
        return d;
    }

  private:
    unsigned next = 0;
};

class WeightedRouter final : public Router
{
  public:
    explicit WeightedRouter(std::vector<double> w)
        : weights(std::move(w))
    {
        for (double v : weights)
            sim_assert(v >= 0.0,
                       "weighted router: negative weight %g", v);
    }

    const char *name() const override { return "weighted"; }

    unsigned
    route(const RouteInfo &req, unsigned nShards) override
    {
        // A longer vector than the shard count means the weights
        // were sized for a different topology; ignoring the tail
        // would silently skew every listed shard's share.
        sim_assert(weights.size() <= nShards,
                   "weighted router: %zu weights for %u shards "
                   "(surplus weights are a topology mismatch)",
                   weights.size(), nShards);
        double total = 0;
        for (unsigned i = 0; i < nShards; ++i)
            total += weightOf(i);
        sim_assert(total > 0.0,
                   "weighted router: all %u shards weigh zero",
                   nShards);
        // 32-bit hash mapped onto the cumulative weight line; the
        // division is exact enough that a shard's share converges
        // to weight/total, and the pick stays a pure function of
        // the request.
        const double u =
            double(routeHash(req)) / 4294967296.0 * total;
        double acc = 0;
        for (unsigned i = 0; i < nShards; ++i) {
            acc += weightOf(i);
            if (u < acc)
                return i;
        }
        return nShards - 1;
    }

  private:
    double
    weightOf(unsigned i) const
    {
        return i < weights.size() ? weights[i] : 1.0;
    }

    std::vector<double> weights;
};

class ReplicaGroupRouter final : public Router
{
  public:
    explicit ReplicaGroupRouter(unsigned r) : replication(r)
    {
        sim_assert(r >= 1,
                   "replica-group router: replication must be >= 1");
    }

    const char *name() const override { return "replica"; }

    unsigned
    route(const RouteInfo &req, unsigned nShards) override
    {
        return routeHash(req) % nShards;
    }

    void
    candidates(const RouteInfo &req, unsigned nShards,
               std::vector<unsigned> &out) override
    {
        const unsigned g = routeHash(req) % nShards;
        const unsigned r =
            replication < nShards ? replication : nShards;
        for (unsigned i = 0; i < r; ++i)
            out.push_back((g + i) % nShards);
    }

  private:
    unsigned replication;
};

} // namespace

PartitionRouter::PartitionRouter(unsigned n_partitions,
                                 unsigned replication)
    : nParts(n_partitions), repl(replication),
      overrides(n_partitions, -1), replicaSets(n_partitions)
{
    sim_assert(n_partitions >= 1,
               "partition router: needs at least one partition");
    sim_assert(replication >= 1,
               "partition router: replication must be >= 1");
}

unsigned
PartitionRouter::defaultHomeOf(unsigned partition,
                               unsigned nShards) const
{
    // The exact replica-group mix: FNV over an empty app name
    // CRC-folded with the partition index, so a map with no
    // reassignments routes bit-identically to the PR-7 policy.
    RouteInfo info;
    info.key = partition;
    info.hasKey = true;
    return routeHash(info) % nShards;
}

unsigned
PartitionRouter::homeOf(unsigned partition, unsigned nShards) const
{
    sim_assert(partition < nParts,
               "partition %u outside the map (%u partitions)",
               partition, nParts);
    const std::vector<unsigned> &rs = replicaSets[partition];
    if (!rs.empty()) {
        sim_assert(rs[0] < nShards,
                   "partition %u replica set names shard %u of %u",
                   partition, rs[0], nShards);
        return rs[0];
    }
    const std::int32_t o = overrides[partition];
    if (o >= 0) {
        sim_assert(unsigned(o) < nShards,
                   "partition %u re-homed onto shard %d of %u",
                   partition, o, nShards);
        return unsigned(o);
    }
    return defaultHomeOf(partition, nShards);
}

void
PartitionRouter::reassign(unsigned partition, unsigned shard)
{
    sim_assert(partition < nParts,
               "partition %u outside the map (%u partitions)",
               partition, nParts);
    overrides[partition] = std::int32_t(shard);
    // A pinned replica set stays authoritative for candidates():
    // re-homing promotes @p shard to its front so routing and
    // failover order agree.
    std::vector<unsigned> &rs = replicaSets[partition];
    if (!rs.empty()) {
        for (auto it = rs.begin(); it != rs.end(); ++it) {
            if (*it == shard) {
                rs.erase(it);
                break;
            }
        }
        rs.insert(rs.begin(), shard);
    }
}

void
PartitionRouter::setReplicas(unsigned partition,
                             std::vector<unsigned> shards)
{
    sim_assert(partition < nParts,
               "partition %u outside the map (%u partitions)",
               partition, nParts);
    sim_assert(!shards.empty(),
               "partition %u: an explicit replica set needs at "
               "least one shard",
               partition);
    for (std::size_t i = 0; i < shards.size(); ++i)
        for (std::size_t j = i + 1; j < shards.size(); ++j)
            sim_assert(shards[i] != shards[j],
                       "partition %u: shard %u listed twice in its "
                       "replica set",
                       partition, shards[i]);
    replicaSets[partition] = std::move(shards);
}

void
PartitionRouter::clearReplicas(unsigned partition)
{
    sim_assert(partition < nParts,
               "partition %u outside the map (%u partitions)",
               partition, nParts);
    replicaSets[partition].clear();
}

const std::vector<unsigned> &
PartitionRouter::replicasOf(unsigned partition) const
{
    sim_assert(partition < nParts,
               "partition %u outside the map (%u partitions)",
               partition, nParts);
    return replicaSets[partition];
}

bool
PartitionRouter::reassigned(unsigned partition) const
{
    sim_assert(partition < nParts,
               "partition %u outside the map (%u partitions)",
               partition, nParts);
    return overrides[partition] >= 0;
}

unsigned
PartitionRouter::reassignedCount() const
{
    unsigned n = 0;
    for (std::int32_t o : overrides)
        n += o >= 0;
    return n;
}

unsigned
PartitionRouter::route(const RouteInfo &req, unsigned nShards)
{
    sim_assert(req.hasKey, "partition router needs an explicit key");
    return homeOf(unsigned(req.key), nShards);
}

void
PartitionRouter::candidates(const RouteInfo &req, unsigned nShards,
                            std::vector<unsigned> &out)
{
    sim_assert(req.hasKey, "partition router needs an explicit key");
    const unsigned partition = unsigned(req.key);
    const std::vector<unsigned> &rs = replicaSets[partition];
    if (!rs.empty()) {
        // Repair pinned this partition's failover order explicitly
        // (dead boards evicted, re-replicated copies appended).
        for (unsigned s : rs) {
            sim_assert(s < nShards,
                       "partition %u replica set names shard %u of "
                       "%u",
                       partition, s, nShards);
            out.push_back(s);
        }
        return;
    }
    const unsigned primary = homeOf(partition, nShards);
    const unsigned g = defaultHomeOf(partition, nShards);
    const unsigned r = repl < nShards ? repl : nShards;
    out.push_back(primary);
    // Failover falls back onto the default group, so a re-homed
    // partition keeps the same replica width: the new home plus
    // the strongest prefix of its original group.
    for (unsigned i = 0; i < r && out.size() < r; ++i) {
        const unsigned c = (g + i) % nShards;
        if (c != primary)
            out.push_back(c);
    }
}

std::unique_ptr<PartitionRouter>
makePartitionRouter(unsigned n_partitions, unsigned replication)
{
    return std::make_unique<PartitionRouter>(n_partitions,
                                             replication);
}

std::unique_ptr<Router>
makeHashRouter()
{
    return std::make_unique<HashRouter>();
}

std::unique_ptr<Router>
makeRoundRobinRouter()
{
    return std::make_unique<RoundRobinRouter>();
}

std::unique_ptr<Router>
makeWeightedRouter(std::vector<double> weights)
{
    return std::make_unique<WeightedRouter>(std::move(weights));
}

std::unique_ptr<Router>
makeReplicaGroupRouter(unsigned replication)
{
    return std::make_unique<ReplicaGroupRouter>(replication);
}

std::unique_ptr<Router>
makeRouter(ShardRouting policy)
{
    switch (policy) {
    case ShardRouting::RoundRobin:
        return makeRoundRobinRouter();
    case ShardRouting::Hash:
        break;
    }
    return makeHashRouter();
}

} // namespace dpu::host

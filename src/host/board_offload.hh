/**
 * @file
 * Board-level sharded offload scheduling.
 *
 * One OffloadScheduler per DPU (each with its own HostA9 endpoint,
 * admission queue, quarantine and availability accounting), plus a
 * pluggable routing policy (host/router.hh) that assigns every
 * request to a shard before the run starts:
 *
 *  - hash routing: a deterministic CRC mix of the request's app
 *    name and seed — the serving-tier "partition by key" path, so
 *    a request's home DPU is a pure function of the request;
 *  - round-robin: arrival-order striping, the load-balancing path;
 *  - weighted / replica-group: the rack-tier policies, usable here
 *    too for heterogeneous or replicated boards.
 *
 * Routing is static for a request (decided at enqueue time, before
 * the segment that serves it runs): a request never migrates
 * between DPUs mid-flight, which keeps the board bit-deterministic
 * and mirrors how a front-end proxy shards by connection. Per-DPU
 * failure handling (reaping, quarantine, retries) still applies
 * locally; summary() aggregates the per-shard outcomes into one
 * board-wide ServingSummary with recomputed percentiles.
 *
 * Live re-sharding (BoardParams::balance.window > 0) layers the
 * board balancer on top: keyed requests enter through offer(),
 * which buffers them host-side; run() then drives the board in
 * window-sized segments, forwarding each window's offers to their
 * partition's CURRENT home DPU (the shards are held open between
 * segments), and calling the balancer at every boundary so it can
 * harvest, plan and launch migrations executed inside the next
 * segments. A commit flips exactly one partition in the
 * PartitionRouter — requests offered before the flip drain at the
 * old home (the forwarding epoch), requests after it route to the
 * new one. All host-phase, so any --threads count produces the
 * same board, bit for bit.
 */

#ifndef DPU_HOST_BOARD_OFFLOAD_HH
#define DPU_HOST_BOARD_OFFLOAD_HH

#include <memory>
#include <vector>

#include "board/board.hh"
#include "host/offload.hh"
#include "host/router.hh"

namespace dpu::host {

/** N per-DPU offload schedulers behind one routing policy. */
class BoardScheduler
{
  public:
    /**
     * @p per_dpu.statName becomes the per-shard stat prefix: shard
     * d's scheduler group is "<statName>.dpu<d>" (the default
     * "sched" keeps the PR-5 names; a rack passes "sched.b<b>").
     */
    BoardScheduler(board::Board &b, OffloadParams per_dpu,
                   std::unique_ptr<Router> router);

    /** Legacy-enum convenience (PR-5 source compatibility). */
    BoardScheduler(board::Board &b, OffloadParams per_dpu,
                   ShardRouting routing = ShardRouting::Hash);

    unsigned nShards() const { return unsigned(shards.size()); }
    OffloadScheduler &shard(unsigned d) { return *shards[d]; }
    const OffloadScheduler &shard(unsigned d) const
    {
        return *shards[d];
    }

    /** The active routing policy. */
    Router &router() { return *policy; }

    /** The shard @p req routes to (advances stateful policies such
     *  as round-robin). */
    unsigned route(const JobRequest &req);

    /** Open-loop arrival routed by policy. */
    void enqueueAt(sim::Tick when, JobRequest req);

    /** Open-loop arrival pinned to DPU @p dpu. */
    void enqueueAt(sim::Tick when, unsigned dpu, JobRequest req);

    /** Start every shard's workers and host driver loop; then run
     *  the board. */
    void start();

    // ------------------------------------------------------------
    // Keyed serving + live re-sharding
    // ------------------------------------------------------------

    /** @p key's partition: key mod BoardParams::balance
     *  .keyPartitions. */
    unsigned partitionOf(std::uint64_t key) const;

    /**
     * Buffer a keyed open-loop arrival for run(). The request is
     * routed at segment-forwarding time (not now), so it observes
     * every partition flip committed before its window. Must be
     * called before run(); offers may arrive in any order.
     */
    void offer(sim::Tick when, std::uint64_t key, JobRequest req);

    /**
     * Serve every offer()ed request and run the board to
     * completion; @return the end tick. With balancing off (the
     * default window = 0) this forwards all offers up front,
     * start()s and runs — byte-identical to the static path. With
     * balancing on it drives the windowed stepped loop described
     * in the file comment.
     */
    sim::Tick run();

    /** True when the board balancer is live (balance.window > 0). */
    bool balanced() const { return balancer_ != nullptr; }

    /** The balancer (null unless balanced()). */
    board::BoardBalancer *balancer() { return balancer_.get(); }

    /** Key-partition routing table used by offer(). */
    PartitionRouter &partitions() { return *parts; }

    /**
     * Board-wide aggregate (valid after the board has run):
     * counts summed, availability averaged over shards, latency
     * percentiles recomputed over every completed job, throughput
     * over the board-wide first-enqueue..last-finish window.
     */
    ServingSummary summary() const;

  private:
    struct Offer
    {
        sim::Tick when = 0;
        std::uint64_t key = 0;
        JobRequest req;
    };

    board::Board &brd;
    std::unique_ptr<Router> policy;
    std::vector<std::unique_ptr<OffloadScheduler>> shards;
    /** Key-partition homes; built for every board so the static
     *  and balanced paths route identically. */
    std::unique_ptr<PartitionRouter> parts;
    /** Live only when BoardParams::balance.window > 0. */
    std::unique_ptr<board::BoardBalancer> balancer_;
    std::vector<Offer> offers;
    bool ran = false;
};

} // namespace dpu::host

#endif // DPU_HOST_BOARD_OFFLOAD_HH

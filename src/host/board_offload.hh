/**
 * @file
 * Board-level sharded offload scheduling.
 *
 * One OffloadScheduler per DPU (each with its own HostA9 endpoint,
 * admission queue, quarantine and availability accounting), plus a
 * routing layer that assigns every request to a shard before the
 * run starts:
 *
 *  - Hash routing: a deterministic CRC mix of the request's app
 *    name and seed — the serving-tier "partition by key" path, so
 *    a request's home DPU is a pure function of the request;
 *  - RoundRobin: arrival-order striping, the load-balancing path.
 *
 * Routing is static (decided at enqueue time, before any chip
 * runs): a request never migrates between DPUs mid-flight, which
 * keeps the board bit-deterministic and mirrors how a front-end
 * proxy shards by connection. Per-DPU failure handling (reaping,
 * quarantine, retries) still applies locally; summary() aggregates
 * the per-shard outcomes into one board-wide ServingSummary with
 * recomputed percentiles.
 */

#ifndef DPU_HOST_BOARD_OFFLOAD_HH
#define DPU_HOST_BOARD_OFFLOAD_HH

#include <memory>
#include <vector>

#include "board/board.hh"
#include "host/offload.hh"

namespace dpu::host {

/** How requests pick their home DPU. */
enum class ShardRouting
{
    Hash,       ///< pure function of (app, seed)
    RoundRobin, ///< arrival-order striping
};

/** N per-DPU offload schedulers behind one routing layer. */
class BoardScheduler
{
  public:
    BoardScheduler(board::Board &b, OffloadParams per_dpu,
                   ShardRouting routing = ShardRouting::Hash);

    unsigned nShards() const { return unsigned(shards.size()); }
    OffloadScheduler &shard(unsigned d) { return *shards[d]; }
    const OffloadScheduler &shard(unsigned d) const
    {
        return *shards[d];
    }

    /** The shard @p req routes to (advances the RoundRobin
     *  cursor when that policy is active). */
    unsigned route(const JobRequest &req);

    /** Open-loop arrival routed by policy. */
    void enqueueAt(sim::Tick when, JobRequest req);

    /** Open-loop arrival pinned to DPU @p dpu. */
    void enqueueAt(sim::Tick when, unsigned dpu, JobRequest req);

    /** Start every shard's workers and host driver loop; then run
     *  the board. */
    void start();

    /**
     * Board-wide aggregate (valid after the board has run):
     * counts summed, availability averaged over shards, latency
     * percentiles recomputed over every completed job, throughput
     * over the board-wide first-enqueue..last-finish window.
     */
    ServingSummary summary() const;

  private:
    board::Board &brd;
    ShardRouting routing;
    std::vector<std::unique_ptr<OffloadScheduler>> shards;
    unsigned rrNext = 0;
};

} // namespace dpu::host

#endif // DPU_HOST_BOARD_OFFLOAD_HH

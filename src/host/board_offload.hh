/**
 * @file
 * Board-level sharded offload scheduling.
 *
 * One OffloadScheduler per DPU (each with its own HostA9 endpoint,
 * admission queue, quarantine and availability accounting), plus a
 * pluggable routing policy (host/router.hh) that assigns every
 * request to a shard before the run starts:
 *
 *  - hash routing: a deterministic CRC mix of the request's app
 *    name and seed — the serving-tier "partition by key" path, so
 *    a request's home DPU is a pure function of the request;
 *  - round-robin: arrival-order striping, the load-balancing path;
 *  - weighted / replica-group: the rack-tier policies, usable here
 *    too for heterogeneous or replicated boards.
 *
 * Routing is static (decided at enqueue time, before any chip
 * runs): a request never migrates between DPUs mid-flight, which
 * keeps the board bit-deterministic and mirrors how a front-end
 * proxy shards by connection. Per-DPU failure handling (reaping,
 * quarantine, retries) still applies locally; summary() aggregates
 * the per-shard outcomes into one board-wide ServingSummary with
 * recomputed percentiles.
 */

#ifndef DPU_HOST_BOARD_OFFLOAD_HH
#define DPU_HOST_BOARD_OFFLOAD_HH

#include <memory>
#include <vector>

#include "board/board.hh"
#include "host/offload.hh"
#include "host/router.hh"

namespace dpu::host {

/** N per-DPU offload schedulers behind one routing policy. */
class BoardScheduler
{
  public:
    /**
     * @p per_dpu.statName becomes the per-shard stat prefix: shard
     * d's scheduler group is "<statName>.dpu<d>" (the default
     * "sched" keeps the PR-5 names; a rack passes "sched.b<b>").
     */
    BoardScheduler(board::Board &b, OffloadParams per_dpu,
                   std::unique_ptr<Router> router);

    /** Legacy-enum convenience (PR-5 source compatibility). */
    BoardScheduler(board::Board &b, OffloadParams per_dpu,
                   ShardRouting routing = ShardRouting::Hash);

    unsigned nShards() const { return unsigned(shards.size()); }
    OffloadScheduler &shard(unsigned d) { return *shards[d]; }
    const OffloadScheduler &shard(unsigned d) const
    {
        return *shards[d];
    }

    /** The active routing policy. */
    Router &router() { return *policy; }

    /** The shard @p req routes to (advances stateful policies such
     *  as round-robin). */
    unsigned route(const JobRequest &req);

    /** Open-loop arrival routed by policy. */
    void enqueueAt(sim::Tick when, JobRequest req);

    /** Open-loop arrival pinned to DPU @p dpu. */
    void enqueueAt(sim::Tick when, unsigned dpu, JobRequest req);

    /** Start every shard's workers and host driver loop; then run
     *  the board. */
    void start();

    /**
     * Board-wide aggregate (valid after the board has run):
     * counts summed, availability averaged over shards, latency
     * percentiles recomputed over every completed job, throughput
     * over the board-wide first-enqueue..last-finish window.
     */
    ServingSummary summary() const;

  private:
    board::Board &brd;
    std::unique_ptr<Router> policy;
    std::vector<std::unique_ptr<OffloadScheduler>> shards;
};

} // namespace dpu::host

#endif // DPU_HOST_BOARD_OFFLOAD_HH

#include "host/offload.hh"

#include <algorithm>
#include <limits>

#include "sim/fault.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace dpu::host {

namespace {

constexpr sim::Tick noTick = std::numeric_limits<sim::Tick>::max();

/** Worker shutdown sentinel (no valid dispatch encodes to it). */
constexpr std::uint64_t shutdownMsg = ~0ull;

/** Host -> worker dispatch message (carries the dispatch id, not
 *  the job id: requeued jobs get a fresh id per dispatch so stale
 *  acks from an earlier attempt can never credit a later one). */
std::uint64_t
dispatchMsg(std::uint64_t dispatch_id, unsigned group)
{
    return (dispatch_id << 8) | group;
}

/** Worker -> host completion ack. */
std::uint64_t
ackMsg(std::uint64_t dispatch_id, unsigned group, unsigned lane)
{
    return (dispatch_id << 16) | (std::uint64_t(group) << 8) | lane;
}

/** Trace track ids on TraceCat::Soc. */
constexpr std::uint32_t hostTid = 0x500;
constexpr std::uint32_t groupTid = 0x510;

/** Nearest-rank percentile of an ascending-sorted sample. */
double
percentile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0;
    std::size_t rank = std::size_t(q * double(sorted.size()) + 0.5);
    if (rank > 0)
        --rank;
    return sorted[std::min(rank, sorted.size() - 1)];
}

} // namespace

OffloadScheduler::OffloadScheduler(soc::Soc &soc_, soc::HostA9 &a9_,
                                   OffloadParams params)
    : soc(soc_), a9(a9_), p(std::move(params)), stats(p.statName)
{
    sim_assert(p.groupSize > 0 && p.nCores % p.groupSize == 0,
               "group size %u must divide the %u managed cores",
               p.groupSize, p.nCores);
    sim_assert(p.nCores <= soc.nCores(),
               "scheduler manages %u cores but the chip has %u",
               p.nCores, soc.nCores());
    const unsigned n_groups = p.nCores / p.groupSize;
    sim_assert(n_groups <= 0xff, "group id must fit a message byte");
    groups.resize(n_groups);
    for (unsigned g = 0; g < n_groups; ++g) {
        groups[g].base = g * p.groupSize;
        groups[g].size = p.groupSize;
        sim::tracer().nameTrack(sim::TraceCat::Soc, groupTid + g,
                                "sched.group" + std::to_string(g));
    }
    sim::tracer().nameTrack(sim::TraceCat::Soc, hostTid, "a9.sched");
}

mem::Addr
OffloadScheduler::arenaOf(unsigned group) const
{
    return p.arenaBase + std::uint64_t(group) * p.arenaBytesPerGroup;
}

void
OffloadScheduler::enqueueAt(sim::Tick when, JobRequest req)
{
    if (started) {
        // Held-open appends ride the already-sorted tail: the
        // stepped driver forwards offers window by window, so
        // time order comes for free and admitArrivals' cursor
        // stays valid.
        sim_assert(open, "arrivals must precede start() unless "
                         "the driver is held open");
        sim_assert(arrivals.empty() ||
                       when >= arrivals.back().when,
                   "held-open arrivals must be time-ordered");
    }
    arrivals.push_back({when, std::move(req)});
}

void
OffloadScheduler::start()
{
    sim_assert(!started, "scheduler already started");
    started = true;
    std::stable_sort(arrivals.begin(), arrivals.end(),
                     [](const Arrival &a, const Arrival &b) {
                         return a.when < b.when;
                     });

    // Persistent worker loop on every managed core: receive a
    // dispatch pointer, run the group's kernel lane, ack the host.
    for (unsigned id = 0; id < p.nCores; ++id) {
        soc.start(id, [this, id](core::DpCore &c) {
            mbc::Mbc &mbc = soc.mbc();
            for (;;) {
                std::uint64_t msg = mbc.recv(c);
                if (msg == shutdownMsg)
                    break;
                const unsigned g = unsigned(msg & 0xff);
                const std::uint64_t did = msg >> 8;
                Group &grp = groups[g];
                const unsigned lane = id - grp.base;
                // The message is a pointer: chase it to the job
                // descriptor the driver wrote in DRAM.
                c.cycles(60);
                // Fault plane: stall this worker before its lane
                // runs — mag cycles, or forever when mag is 0 (a
                // hung core; the job is reaped at its deadline).
                std::uint64_t stall = 0;
                if (sim::faultPlane().active() &&
                    sim::faultPlane().fires(sim::FaultSite::CoreStall,
                                            c.now(), int(id),
                                            &stall)) {
                    DPU_TRACE_INSTANT(sim::TraceCat::Core, id,
                                      "faultStall", c.now(),
                                      "cycles", stall);
                    if (stall == 0)
                        c.blockUntil([] { return false; });
                    c.sleepCycles(stall);
                }
                grp.job.lane(c, lane);
                mbc.send(c, mbc.a9Box(), ackMsg(did, g, lane));
            }
        });
    }

    a9.start([this](soc::HostA9 &host) { hostMain(host); });
}

bool
OffloadScheduler::submitNow(JobRequest req)
{
    const sim::Tick now = a9.now();
    ++stats.counter("submitted");

    JobRecord rec;
    rec.id = nextJobId++;
    rec.app = req.makeJob ? "<custom>" : req.app;
    rec.enqueuedAt = now;

    if (queue.size() >= p.queueDepth) {
        rec.state = JobState::Rejected;
        rec.finishedAt = now;
        ++stats.counter("rejected");
        DPU_TRACE_INSTANT(sim::TraceCat::Soc, hostTid, "job.reject",
                          now, "job", rec.id);
        records.push_back(std::move(rec));
        return false;
    }

    ++stats.counter("accepted");
    Pending pend;
    pend.id = rec.id;
    pend.req = std::move(req);
    pend.deadline =
        now + (pend.req.timeout ? pend.req.timeout : p.defaultTimeout);
    pend.queueSpan = DPU_TRACE_NEXT_ID();
    DPU_TRACE_SPAN_BEGIN(sim::TraceCat::Soc, hostTid, "job.queued",
                         pend.queueSpan, now, "job", rec.id, nullptr,
                         0);
    records.push_back(std::move(rec));
    queue.push_back(std::move(pend));
    return true;
}

apps::ServingJob
OffloadScheduler::buildJob(const JobRequest &req, unsigned group)
{
    apps::ServingContext ctx;
    ctx.soc = &soc;
    ctx.baseCore = groups[group].base;
    ctx.nLanes = groups[group].size;
    ctx.arena = arenaOf(group);
    ctx.arenaBytes = p.arenaBytesPerGroup;
    ctx.seed = req.seed;
    if (req.makeJob)
        return req.makeJob(ctx);
    const apps::AppSpec *spec = apps::findApp(req.app);
    sim_assert(spec, "request names unknown app \"%s\"",
               req.app.c_str());
    apps::ConfigHandle cfg = req.cfg ? req.cfg : spec->makeConfig();
    return spec->serve(cfg, ctx);
}

void
OffloadScheduler::resolveJob(JobRecord &rec, soc::HostA9 &host)
{
    (void)host;
    if (completeHook)
        completeHook(rec);
}

void
OffloadScheduler::admitArrivals(soc::HostA9 &host)
{
    while (nextArrival < arrivals.size() &&
           arrivals[nextArrival].when <= host.now())
        (void)submitNow(arrivals[nextArrival++].req);
}

void
OffloadScheduler::reapTimeouts(soc::HostA9 &host)
{
    const sim::Tick now = host.now();

    // Queued jobs whose deadline passed never get dispatched.
    for (auto it = queue.begin(); it != queue.end();) {
        if (it->deadline > now) {
            ++it;
            continue;
        }
        JobRecord &rec = records[it->id - 1];
        rec.state = JobState::TimedOut;
        rec.finishedAt = now;
        rec.cause = "queue";
        ++stats.counter("timedOut");
        DPU_TRACE_SPAN_END(sim::TraceCat::Soc, hostTid, "job.queued",
                           it->queueSpan, now);
        DPU_TRACE_INSTANT(sim::TraceCat::Soc, hostTid, "job.timeout",
                          now, "job", rec.id);
        it = queue.erase(it);
        resolveJob(rec, host);
    }

    // In-flight jobs past their deadline: quarantine the group
    // (late acks reclaim it), then either requeue the job onto a
    // healthy group or report it timed out, attributed to a hung
    // DMAC when one of the group's cores shows a wedge.
    for (unsigned g = 0; g < groups.size(); ++g) {
        Group &grp = groups[g];
        if (grp.state != GroupState::Busy || grp.deadline > now)
            continue;
        JobRecord &rec = records[grp.jobId - 1];

        bool wedged = false;
        for (unsigned lane = 0; lane < grp.size && !wedged; ++lane)
            wedged = soc.dmsFor(grp.base + lane).dmac().hung();

        grp.state = GroupState::Quarantined;
        grp.quarantinedAt = now;
        ++stats.counter("quarantines");
        DPU_TRACE_SPAN_END(sim::TraceCat::Soc, groupTid + g,
                           "job.run", grp.runSpan, now);
        DPU_TRACE_INSTANT(sim::TraceCat::Soc, groupTid + g,
                          "job.timeout", now, "job", rec.id);

        const unsigned max_att = grp.req.maxAttempts
                                     ? grp.req.maxAttempts
                                     : p.maxAttempts;
        if (rec.attempts < max_att) {
            // Retry on another group with a fresh deadline. The
            // requeue bypasses the admission bound: the job was
            // already admitted once.
            ++stats.counter("requeued");
            rec.state = JobState::Queued;
            Pending pend;
            pend.id = rec.id;
            pend.req = std::move(grp.req);
            pend.deadline = now + (pend.req.timeout
                                       ? pend.req.timeout
                                       : p.defaultTimeout);
            pend.queueSpan = DPU_TRACE_NEXT_ID();
            DPU_TRACE_SPAN_BEGIN(sim::TraceCat::Soc, hostTid,
                                 "job.queued", pend.queueSpan, now,
                                 "job", rec.id, nullptr, 0);
            DPU_TRACE_INSTANT(sim::TraceCat::Soc, hostTid,
                              "job.requeue", now, "job", rec.id);
            queue.push_back(std::move(pend));
            continue;
        }

        rec.state = JobState::TimedOut;
        rec.finishedAt = now;
        rec.cause = wedged ? "dmsWedge" : "deadline";
        ++stats.counter("timedOut");
        if (wedged)
            ++stats.counter("wedgeTimeouts");
        resolveJob(rec, host);
    }
}

void
OffloadScheduler::dispatchReady(soc::HostA9 &host)
{
    for (;;) {
        if (queue.empty())
            return;
        unsigned g = 0;
        for (; g < groups.size(); ++g)
            if (groups[g].state == GroupState::Free)
                break;
        if (g == groups.size())
            return;

        Pending pend = std::move(queue.front());
        queue.pop_front();
        Group &grp = groups[g];
        JobRecord &rec = records[pend.id - 1];

        // Driver work: build the job, stage its inputs in the
        // group's arena, write the descriptors.
        apps::ServingJob job = buildJob(pend.req, g);
        host.busyUs(p.dispatchOverheadUs);
        job.stage();

        const sim::Tick now = host.now();
        rec.state = JobState::Running;
        rec.dispatchedAt = now;
        ++rec.attempts;
        ++stats.counter("dispatched");
        DPU_TRACE_SPAN_END(sim::TraceCat::Soc, hostTid, "job.queued",
                           pend.queueSpan, now);

        grp.state = GroupState::Busy;
        grp.jobId = pend.id;
        grp.dispatchId = nextDispatchId++;
        grp.deadline = pend.deadline;
        grp.acksOutstanding = grp.size;
        grp.job = std::move(job);
        grp.req = std::move(pend.req);
        grp.runSpan = DPU_TRACE_NEXT_ID();
        DPU_TRACE_SPAN_BEGIN(sim::TraceCat::Soc, groupTid + g,
                             "job.run", grp.runSpan, now, "job",
                             pend.id, "group", g);
        for (unsigned lane = 0; lane < grp.size; ++lane)
            host.sendToCore(grp.base + lane,
                            dispatchMsg(grp.dispatchId, g));
    }
}

void
OffloadScheduler::handleAck(soc::HostA9 &host, std::uint64_t msg)
{
    const unsigned lane = unsigned(msg & 0xff);
    const unsigned g = unsigned((msg >> 8) & 0xff);
    const std::uint64_t did = msg >> 16;
    if (g >= groups.size() || lane >= groups[g].size) {
        ++stats.counter("strayAcks");
        return;
    }
    Group &grp = groups[g];
    if (grp.acksOutstanding == 0 || grp.dispatchId != did) {
        ++stats.counter("strayAcks");
        return;
    }
    if (--grp.acksOutstanding > 0)
        return;

    // Last lane acked: the dispatch is over.
    host.busyUs(p.completeOverheadUs);
    const sim::Tick now = host.now();
    JobRecord &rec = records[grp.jobId - 1];
    if (grp.state == GroupState::Quarantined) {
        // A reaped dispatch finished late: reclaim the group, keep
        // the job's verdict (timed out, or requeued and by now
        // resolved on another group — the requester has long been
        // answered either way).
        ++stats.counter("lateJobs");
        quarantineDownTicks += now - grp.quarantinedAt;
        grp.state = GroupState::Free;
        grp.job = {};
        grp.req = {};
        DPU_TRACE_INSTANT(sim::TraceCat::Soc, groupTid + g,
                          "job.lateAck", now, "job", grp.jobId);
        return;
    }

    rec.state = JobState::Completed;
    rec.finishedAt = now;
    rec.valid = !grp.job.validate || grp.job.validate();
    ++stats.counter("completed");
    if (!rec.valid)
        ++stats.counter("validationFailed");
    latenciesUs.push_back(rec.latencyUs());
    DPU_TRACE_SPAN_END(sim::TraceCat::Soc, groupTid + g, "job.run",
                       grp.runSpan, now);
    grp.state = GroupState::Free;
    grp.job = {};
    grp.req = {};
    resolveJob(rec, host);
}

sim::Tick
OffloadScheduler::nextWake() const
{
    sim::Tick wake = noTick;
    if (nextArrival < arrivals.size())
        wake = std::min(wake, arrivals[nextArrival].when);
    for (const Pending &pend : queue)
        wake = std::min(wake, pend.deadline);
    for (const Group &grp : groups)
        if (grp.state == GroupState::Busy)
            wake = std::min(wake, grp.deadline);
    return wake;
}

void
OffloadScheduler::hostMain(soc::HostA9 &host)
{
    for (;;) {
        admitArrivals(host);
        reapTimeouts(host);
        dispatchReady(host);

        bool busy = false;
        for (const Group &grp : groups)
            busy = busy || grp.state == GroupState::Busy;
        if (!busy && queue.empty() &&
            nextArrival == arrivals.size() && !open)
            break;

        std::uint64_t msg;
        sim::Tick wake = nextWake();
        if (open) {
            // Held open: never block unboundedly, and always be
            // awake by the idle-wake bound (the next window
            // boundary) to observe freshly appended arrivals. The
            // now+1 floor keeps recvUntil strictly in the future.
            wake = std::min(
                wake, std::max(idleWake, host.now() + 1));
        }
        if (wake == noTick) {
            msg = host.recv();
            handleAck(host, msg);
        } else if (host.recvUntil(wake, msg)) {
            handleAck(host, msg);
        }
        // recvUntil timing out is not idle spin: the next loop
        // iteration admits the due arrival or reaps the overdue
        // job that defined the wake tick.
    }

    // Retire the workers. Wedged lanes never read their sentinel;
    // their fibers stay parked without keeping the queue alive.
    for (unsigned id = 0; id < p.nCores; ++id)
        host.sendToCore(id, shutdownMsg);
    finalize(host);
}

void
OffloadScheduler::finalize(soc::HostA9 &host)
{
    ServingSummary s;
    s.submitted = stats.counter("submitted");
    s.accepted = stats.counter("accepted");
    s.rejected = stats.counter("rejected");
    s.dispatched = stats.counter("dispatched");
    s.completed = stats.counter("completed");
    s.timedOut = stats.counter("timedOut");
    s.validationFailed = stats.counter("validationFailed");
    s.lateJobs = stats.counter("lateJobs");
    s.requeued = stats.counter("requeued");
    s.quarantines = stats.counter("quarantines");
    s.wedgeTimeouts = stats.counter("wedgeTimeouts");
    for (const Group &grp : groups)
        s.wedgedGroups += grp.state == GroupState::Quarantined;
    stats.counter("wedgedGroups") = s.wedgedGroups;

    // Availability: fraction of group-ticks not spent quarantined.
    // Closed quarantines accumulated downtime at reclaim; groups
    // still quarantined now have been down since their reap.
    sim::Tick down = quarantineDownTicks;
    for (const Group &grp : groups)
        if (grp.state == GroupState::Quarantined)
            down += host.now() - grp.quarantinedAt;
    if (host.now() > 0 && !groups.empty())
        s.availability =
            1.0 - double(down) /
                      (double(host.now()) * double(groups.size()));
    stats.scalar("availability") = s.availability;

    std::sort(latenciesUs.begin(), latenciesUs.end());
    s.p50Us = percentile(latenciesUs, 0.50);
    s.p95Us = percentile(latenciesUs, 0.95);
    s.p99Us = percentile(latenciesUs, 0.99);
    if (!latenciesUs.empty()) {
        double sum = 0;
        for (double l : latenciesUs)
            sum += l;
        s.meanUs = sum / double(latenciesUs.size());
        s.maxUs = latenciesUs.back();
    }

    sim::Tick first = noTick, last = 0;
    for (const JobRecord &rec : records) {
        first = std::min(first, rec.enqueuedAt);
        last = std::max(last, rec.finishedAt);
    }
    if (s.completed > 0 && last > first)
        s.throughputJobsPerSec =
            double(s.completed) / (double(last - first) * 1e-12);

    stats.scalar("p50LatencyUs") = s.p50Us;
    stats.scalar("p95LatencyUs") = s.p95Us;
    stats.scalar("p99LatencyUs") = s.p99Us;
    stats.scalar("meanLatencyUs") = s.meanUs;
    stats.scalar("maxLatencyUs") = s.maxUs;
    stats.scalar("throughputJobsPerSec") = s.throughputJobsPerSec;
    finalSummary = s;
    (void)host;
}

} // namespace dpu::host

#include "host/board_offload.hh"

#include "host/summary.hh"
#include "sim/logging.hh"

namespace dpu::host {

BoardScheduler::BoardScheduler(board::Board &b,
                               OffloadParams per_dpu,
                               std::unique_ptr<Router> router_)
    : brd(b), policy(std::move(router_))
{
    sim_assert(policy, "BoardScheduler needs a routing policy");
    const std::string prefix = per_dpu.statName;
    shards.reserve(b.nDpus());
    for (unsigned d = 0; d < b.nDpus(); ++d) {
        OffloadParams p = per_dpu;
        p.statName = prefix + ".dpu" + std::to_string(d);
        shards.push_back(std::make_unique<OffloadScheduler>(
            b.dpu(d), b.host(d), std::move(p)));
    }
}

BoardScheduler::BoardScheduler(board::Board &b,
                               OffloadParams per_dpu,
                               ShardRouting routing)
    : BoardScheduler(b, std::move(per_dpu), makeRouter(routing))
{
}

unsigned
BoardScheduler::route(const JobRequest &req)
{
    return policy->route(routeInfoOf(req), nShards());
}

void
BoardScheduler::enqueueAt(sim::Tick when, JobRequest req)
{
    const unsigned d = route(req);
    enqueueAt(when, d, std::move(req));
}

void
BoardScheduler::enqueueAt(sim::Tick when, unsigned dpu,
                          JobRequest req)
{
    sim_assert(dpu < nShards(), "request routed off the board (%u)",
               dpu);
    shards[dpu]->enqueueAt(when, std::move(req));
}

void
BoardScheduler::start()
{
    for (auto &s : shards)
        s->start();
}

ServingSummary
BoardScheduler::summary() const
{
    SummaryFold fold;
    for (const auto &s : shards)
        fold.add(s->summary(), s->jobs());
    return fold.finish();
}

} // namespace dpu::host

#include "host/board_offload.hh"

#include <algorithm>

#include "host/summary.hh"
#include "sim/logging.hh"

namespace dpu::host {

BoardScheduler::BoardScheduler(board::Board &b,
                               OffloadParams per_dpu,
                               std::unique_ptr<Router> router_)
    : brd(b), policy(std::move(router_))
{
    sim_assert(policy, "BoardScheduler needs a routing policy");
    const std::string prefix = per_dpu.statName;
    shards.reserve(b.nDpus());
    for (unsigned d = 0; d < b.nDpus(); ++d) {
        OffloadParams p = per_dpu;
        p.statName = prefix + ".dpu" + std::to_string(d);
        shards.push_back(std::make_unique<OffloadScheduler>(
            b.dpu(d), b.host(d), std::move(p)));
    }

    // The key-partition table exists for every board (so the static
    // and balanced paths route offers identically); the balancer
    // only when the topology turned it on.
    const board::BalanceParams &bal = b.params().balance;
    parts = std::make_unique<PartitionRouter>(bal.keyPartitions, 1);
    if (bal.window > 0) {
        const unsigned engine = bal.engineCore == ~0u
                                    ? b.dpu(0).nCores() - 1
                                    : bal.engineCore;
        sim_assert(per_dpu.nCores <= engine,
                   "the balancer's engine core %u must not be "
                   "managed by the offload scheduler (nCores %u)",
                   engine, per_dpu.nCores);
        std::vector<unsigned> home(bal.keyPartitions);
        for (unsigned part = 0; part < bal.keyPartitions; ++part)
            home[part] = parts->homeOf(part, nShards());
        balancer_ = std::make_unique<board::BoardBalancer>(
            b, std::move(home), bal);
        // Drain-then-switch: the commit hook flips exactly one
        // partition; every offer forwarded afterwards routes to
        // the new home.
        balancer_->onCommit(
            [this](unsigned part, unsigned /*from*/, unsigned to) {
                parts->reassign(part, to);
            });
    }
}

BoardScheduler::BoardScheduler(board::Board &b,
                               OffloadParams per_dpu,
                               ShardRouting routing)
    : BoardScheduler(b, std::move(per_dpu), makeRouter(routing))
{
}

unsigned
BoardScheduler::route(const JobRequest &req)
{
    return policy->route(routeInfoOf(req), nShards());
}

void
BoardScheduler::enqueueAt(sim::Tick when, JobRequest req)
{
    const unsigned d = route(req);
    enqueueAt(when, d, std::move(req));
}

void
BoardScheduler::enqueueAt(sim::Tick when, unsigned dpu,
                          JobRequest req)
{
    sim_assert(dpu < nShards(), "request routed off the board (%u)",
               dpu);
    shards[dpu]->enqueueAt(when, std::move(req));
}

void
BoardScheduler::start()
{
    for (auto &s : shards)
        s->start();
}

unsigned
BoardScheduler::partitionOf(std::uint64_t key) const
{
    return unsigned(key % parts->nPartitions());
}

void
BoardScheduler::offer(sim::Tick when, std::uint64_t key,
                      JobRequest req)
{
    sim_assert(!ran, "offer() after run()");
    offers.push_back({when, key, std::move(req)});
}

sim::Tick
BoardScheduler::run()
{
    sim_assert(!ran, "BoardScheduler::run() is one-shot");
    ran = true;
    std::stable_sort(offers.begin(), offers.end(),
                     [](const Offer &a, const Offer &b) {
                         return a.when < b.when;
                     });

    if (!balancer_) {
        // Static placement: forward everything up front and run the
        // board to completion — the PR-5 path, byte for byte.
        for (Offer &o : offers)
            shards[parts->homeOf(partitionOf(o.key), nShards())]
                ->enqueueAt(o.when, std::move(o.req));
        offers.clear();
        start();
        return brd.run();
    }

    // Balanced: window-sized segments. Each iteration forwards the
    // window's offers to their partitions' CURRENT homes (host
    // phase, clocks parked), runs the kernel to the boundary, then
    // lets the balancer harvest/plan/launch. Migrations execute
    // inside subsequent segments; commits flip the router between
    // them. Termination: once offers are exhausted the balancer is
    // draining (no new plans) and every in-flight migration either
    // commits, aborts, or hits its timeout bound.
    const sim::Tick window = brd.params().balance.window;
    for (auto &s : shards)
        s->holdOpen();
    start();

    std::size_t next = 0;
    sim::Tick boundary = brd.now() + window;
    for (;;) {
        while (next < offers.size() &&
               offers[next].when < boundary) {
            Offer &o = offers[next++];
            const unsigned part = partitionOf(o.key);
            balancer_->record(part);
            shards[parts->homeOf(part, nShards())]->enqueueAt(
                o.when, std::move(o.req));
        }
        for (auto &s : shards)
            s->setIdleWake(boundary);
        brd.runFor(boundary - brd.now());
        if (next == offers.size())
            balancer_->setDraining(true);
        balancer_->onWindowBoundary(boundary);
        if (next == offers.size() &&
            !balancer_->migrationsActive())
            break;
        boundary += window;
    }

    for (auto &s : shards)
        s->close();
    return brd.run();
}

ServingSummary
BoardScheduler::summary() const
{
    SummaryFold fold;
    for (const auto &s : shards)
        fold.add(s->summary(), s->jobs());
    return fold.finish();
}

} // namespace dpu::host

#include "host/board_offload.hh"

#include <algorithm>
#include <limits>

#include "sim/logging.hh"

namespace dpu::host {

namespace {

constexpr sim::Tick noTick = std::numeric_limits<sim::Tick>::max();

/** Nearest-rank percentile of an ascending-sorted sample. */
double
percentile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0;
    std::size_t rank = std::size_t(q * double(sorted.size()) + 0.5);
    if (rank > 0)
        --rank;
    return sorted[std::min(rank, sorted.size() - 1)];
}

} // namespace

BoardScheduler::BoardScheduler(board::Board &b,
                               OffloadParams per_dpu,
                               std::unique_ptr<Router> router_)
    : brd(b), policy(std::move(router_))
{
    sim_assert(policy, "BoardScheduler needs a routing policy");
    const std::string prefix = per_dpu.statName;
    shards.reserve(b.nDpus());
    for (unsigned d = 0; d < b.nDpus(); ++d) {
        OffloadParams p = per_dpu;
        p.statName = prefix + ".dpu" + std::to_string(d);
        shards.push_back(std::make_unique<OffloadScheduler>(
            b.dpu(d), b.host(d), std::move(p)));
    }
}

BoardScheduler::BoardScheduler(board::Board &b,
                               OffloadParams per_dpu,
                               ShardRouting routing)
    : BoardScheduler(b, std::move(per_dpu), makeRouter(routing))
{
}

unsigned
BoardScheduler::route(const JobRequest &req)
{
    return policy->route(routeInfoOf(req), nShards());
}

void
BoardScheduler::enqueueAt(sim::Tick when, JobRequest req)
{
    const unsigned d = route(req);
    enqueueAt(when, d, std::move(req));
}

void
BoardScheduler::enqueueAt(sim::Tick when, unsigned dpu,
                          JobRequest req)
{
    sim_assert(dpu < nShards(), "request routed off the board (%u)",
               dpu);
    shards[dpu]->enqueueAt(when, std::move(req));
}

void
BoardScheduler::start()
{
    for (auto &s : shards)
        s->start();
}

ServingSummary
BoardScheduler::summary() const
{
    ServingSummary agg;
    std::vector<double> lat;
    sim::Tick first = noTick, last = 0;
    double avail = 0;
    for (const auto &s : shards) {
        const ServingSummary part = s->summary();
        agg.submitted += part.submitted;
        agg.accepted += part.accepted;
        agg.rejected += part.rejected;
        agg.dispatched += part.dispatched;
        agg.completed += part.completed;
        agg.timedOut += part.timedOut;
        agg.validationFailed += part.validationFailed;
        agg.lateJobs += part.lateJobs;
        agg.wedgedGroups += part.wedgedGroups;
        agg.requeued += part.requeued;
        agg.quarantines += part.quarantines;
        agg.wedgeTimeouts += part.wedgeTimeouts;
        avail += part.availability;
        for (const JobRecord &rec : s->jobs()) {
            first = std::min(first, rec.enqueuedAt);
            last = std::max(last, rec.finishedAt);
            if (rec.state == JobState::Completed)
                lat.push_back(rec.latencyUs());
        }
    }
    if (!shards.empty())
        agg.availability = avail / double(shards.size());

    std::sort(lat.begin(), lat.end());
    agg.p50Us = percentile(lat, 0.50);
    agg.p95Us = percentile(lat, 0.95);
    agg.p99Us = percentile(lat, 0.99);
    if (!lat.empty()) {
        double sum = 0;
        for (double l : lat)
            sum += l;
        agg.meanUs = sum / double(lat.size());
        agg.maxUs = lat.back();
    }
    if (agg.completed > 0 && last > first)
        agg.throughputJobsPerSec =
            double(agg.completed) / (double(last - first) * 1e-12);
    return agg;
}

} // namespace dpu::host

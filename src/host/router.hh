/**
 * @file
 * Pluggable request-routing policies shared by the board and rack
 * schedulers.
 *
 * PR 5 baked a two-value ShardRouting enum into BoardScheduler; the
 * rack tier needs more shapes (replica groups with ordered failover
 * candidates, weighted spreading over heterogeneous shards), so the
 * policy is now an interface. A Router maps a request onto one of
 * nShards targets — DPUs under BoardScheduler, boards under
 * rack::RackScheduler — and can enumerate an ordered candidate list
 * for policies that support failover.
 *
 * Determinism contract: route() must be a pure function of
 * (request, nShards, prior route() calls on the same instance).
 * Stateful policies (round-robin) advance only on route(), so a
 * fixed enqueue order yields a fixed assignment whatever thread
 * count the simulation later runs at. Policies never consult wall
 * clock, global RNGs, or the fault plane.
 *
 * The legacy ShardRouting enum survives as a factory shorthand
 * (makeRouter) so PR-5 call sites keep compiling.
 */

#ifndef DPU_HOST_ROUTER_HH
#define DPU_HOST_ROUTER_HH

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace dpu::host {

struct JobRequest;

/** The routing-relevant slice of a request. */
struct RouteInfo
{
    /** Registered app name. */
    std::string_view app;
    /** Per-request seed (dataset variation). */
    std::uint64_t seed = 0;
    /**
     * Explicit placement key (rack tier: the user/row key). When
     * absent (hasKey = false), key-hash policies fall back to the
     * (app, seed) mix the board tier has always used.
     */
    std::uint64_t key = 0;
    bool hasKey = false;
};

/** How requests pick their home shard (legacy factory tokens). */
enum class ShardRouting
{
    Hash,       ///< pure function of (app, seed)
    RoundRobin, ///< arrival-order striping
};

/** One routing policy instance. */
class Router
{
  public:
    virtual ~Router() = default;

    /** Policy name for reports ("hash", "rr", ...). */
    virtual const char *name() const = 0;

    /** The shard @p req lands on, in [0, nShards). May advance
     *  internal state (round-robin's cursor). */
    virtual unsigned route(const RouteInfo &req,
                           unsigned nShards) = 0;

    /**
     * Ordered failover candidates for @p req, primary first.
     * Policies without replica structure append route() alone.
     * Must NOT advance internal state beyond one route() step.
     */
    virtual void candidates(const RouteInfo &req, unsigned nShards,
                            std::vector<unsigned> &out);
};

/**
 * The deterministic (app, seed) mix the board tier shipped with:
 * FNV over the app name, CRC-folded with the seed halves. An
 * explicit key replaces the seed in the mix.
 */
std::unique_ptr<Router> makeHashRouter();

/** Arrival-order striping; fair by construction. */
std::unique_ptr<Router> makeRoundRobinRouter();

/**
 * Key-hash onto weighted buckets: shard i receives a share
 * proportional to weights[i]. The vector may be SHORTER than the
 * shard count — unlisted shards are padded with weight 1.0, so a
 * single {2.0} over three shards yields shares 2:1:1 — but it must
 * never be longer: surplus weights indicate the caller sized the
 * vector for a different topology, and route() asserts on them
 * instead of silently ignoring the tail. Pure function of the
 * request.
 */
std::unique_ptr<Router>
makeWeightedRouter(std::vector<double> weights);

/**
 * Replica-group routing (the rack placement policy): the key hash
 * selects a group of @p replication consecutive shards
 * {g, g+1, ... mod nShards}; route() returns the group leader and
 * candidates() the whole group in failover order. Group membership
 * is a pure function of the key and nShards — independent of
 * replication, which only widens the candidate list.
 */
std::unique_ptr<Router>
makeReplicaGroupRouter(unsigned replication);

/**
 * Partition-mapped replica routing with live reassignment — the
 * rack tier's self-balancing policy. The request key is a
 * partition index in [0, nPartitions); every partition starts at
 * its hash home (bit-identical to makeReplicaGroupRouter over the
 * same keys, so static racks keep their goldens) and reassign()
 * re-homes a single partition, which is the migration engine's
 * commit hook. candidates() preserves failover order: the current
 * home first, then the partition's default replica group (minus
 * the home), clamped to the replication width.
 *
 * The mutable map does not break the Router determinism contract:
 * reassign() is only ever called from the host phase in trace
 * order, so the route of request i is still a pure function of the
 * trace prefix [0, i].
 */
class PartitionRouter final : public Router
{
  public:
    PartitionRouter(unsigned n_partitions, unsigned replication);

    const char *name() const override { return "partition"; }
    unsigned route(const RouteInfo &req, unsigned nShards) override;
    void candidates(const RouteInfo &req, unsigned nShards,
                    std::vector<unsigned> &out) override;

    unsigned nPartitions() const { return nParts; }
    unsigned replicationWidth() const { return repl; }

    /** @p partition's hash home (ignores reassignments). */
    unsigned defaultHomeOf(unsigned partition,
                           unsigned nShards) const;

    /** @p partition's current home. */
    unsigned homeOf(unsigned partition, unsigned nShards) const;

    /** Migration hook: re-home @p partition onto @p shard. */
    void reassign(unsigned partition, unsigned shard);

    /** True when @p partition has been moved off its hash home. */
    bool reassigned(unsigned partition) const;

    /** Partitions currently living away from their hash home. */
    unsigned reassignedCount() const;

    /**
     * Repair hook: pin @p partition's full failover order to
     * @p shards (primary first; must be non-empty, deduplicated).
     * Overrides the default hash-group candidate list until
     * clearReplicas(); homeOf()/route() report shards[0]. The rack
     * repair controller uses this to evict a dead board from a
     * partition's replica set and to record the re-replicated
     * copy's new location.
     */
    void setReplicas(unsigned partition,
                     std::vector<unsigned> shards);

    /** Drop @p partition's explicit replica set (hash group rules
     *  again; any reassign() home override still applies). */
    void clearReplicas(unsigned partition);

    /** @p partition's explicit replica set (empty = default). */
    const std::vector<unsigned> &
    replicasOf(unsigned partition) const;

  private:
    unsigned nParts;
    unsigned repl;
    /** Per-partition home override; -1 = the hash home. */
    std::vector<std::int32_t> overrides;
    /** Per-partition explicit failover order; empty = hash group. */
    std::vector<std::vector<unsigned>> replicaSets;
};

/** A fresh all-default partition map (see PartitionRouter). */
std::unique_ptr<PartitionRouter>
makePartitionRouter(unsigned n_partitions, unsigned replication);

/** Legacy-enum factory (source compatibility with PR 5). */
std::unique_ptr<Router> makeRouter(ShardRouting policy);

/** The stable placement hash every key policy shares: a pure
 *  function of (app, seed/key), identical to the PR-5 board mix. */
std::uint32_t routeHash(const RouteInfo &req);

/** Routing slice of a full request (board tier: no explicit key). */
RouteInfo routeInfoOf(const JobRequest &req);

} // namespace dpu::host

#endif // DPU_HOST_ROUTER_HH

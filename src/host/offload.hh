/**
 * @file
 * The host offload scheduler (Section 2.4's deployment model).
 *
 * On the chip the A9 complex runs the offload driver that "feeds
 * work to the dpCores" over the MailBox Controller: requests arrive
 * from the network, the driver stages their inputs in DRAM, posts a
 * pointer-sized message to each core of an idle core-group, and
 * collects per-core completion acks. This runtime reproduces that
 * loop on the simulator:
 *
 *  - the 32 dpCores are partitioned into fixed core-groups, each
 *    running a persistent worker loop (mbc recv -> kernel -> ack);
 *  - requests name a registered app (apps::registry()) plus a
 *    per-request config, and arrive open-loop (pre-scheduled
 *    arrival times) or closed-loop (submitted from the completion
 *    hook);
 *  - admission control bounds the host-side queue: a full queue
 *    rejects (backpressure to the network layer);
 *  - every job carries a deadline; a job that does not complete in
 *    time is reaped — counted as a timeout, reported, its group
 *    quarantined until (and unless) the late acks arrive — so a
 *    wedged kernel costs its group, never the simulation;
 *  - per-request latency percentiles and throughput land in the
 *    "sched" StatGroup, and each job emits enqueue/dispatch/run
 *    lifecycle spans through the tracer (TraceCat::Soc).
 */

#ifndef DPU_HOST_OFFLOAD_HH
#define DPU_HOST_OFFLOAD_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "apps/registry.hh"
#include "sim/stats.hh"
#include "soc/host_a9.hh"
#include "soc/soc.hh"

namespace dpu::host {

/** Scheduler configuration. */
struct OffloadParams
{
    /** dpCores to manage (first nCores of the chip). */
    unsigned nCores = 32;
    /** Cores per group; must divide nCores. */
    unsigned groupSize = 4;
    /** Admission queue bound (backpressure beyond this). */
    std::size_t queueDepth = 64;
    /** Deadline for requests that don't carry one (from enqueue). */
    sim::Tick defaultTimeout = sim::Tick(50e9); // 50 ms
    /** Driver time per dispatch (staging, descriptor writes). */
    double dispatchOverheadUs = 2.0;
    /** Driver time per completion (validation readback). */
    double completeOverheadUs = 1.0;
    /** DDR base of the per-group job arenas. */
    mem::Addr arenaBase = 1 << 20;
    /** Arena bytes per group (inputs + outputs + DMS prefetch
     *  slack). */
    std::uint64_t arenaBytesPerGroup = 6 << 20;
    /**
     * Dispatch attempts per job: a running job reaped at its
     * deadline is requeued (fresh deadline, healthy group) while
     * attempts remain, then finally reported TimedOut. 1 preserves
     * the PR-2 fail-fast behaviour.
     */
    unsigned maxAttempts = 1;
    /**
     * Name of the scheduler's StatGroup. Multi-DPU boards run one
     * scheduler per chip; distinct names ("sched.dpu0", ...) keep
     * board-wide stat snapshots self-describing instead of relying
     * on the registry's #N disambiguation.
     */
    std::string statName = "sched";
};

/** One serving request. */
struct JobRequest
{
    /** Registered app name (see apps::registry()). */
    std::string app;
    /** Per-request config; nullptr uses the app's defaults. */
    apps::ConfigHandle cfg;
    /** Deadline relative to enqueue; 0 uses the params default. */
    sim::Tick timeout = 0;
    /** Per-request seed (dataset variation across requests). */
    std::uint64_t seed = 0;
    /** Test hook: bypass the registry and serve this job instead
     *  (fault injection uses it to plant wedged kernels). */
    std::function<apps::ServingJob(const apps::ServingContext &)>
        makeJob;
    /** Per-request attempt budget; 0 uses the params default. */
    unsigned maxAttempts = 0;
};

enum class JobState : std::uint8_t
{
    Queued,
    Running,
    Completed,
    TimedOut,
    Rejected,
};

/** Final per-job record. */
struct JobRecord
{
    std::uint64_t id = 0;
    std::string app;
    JobState state = JobState::Queued;
    sim::Tick enqueuedAt = 0;
    sim::Tick dispatchedAt = 0;
    sim::Tick finishedAt = 0;
    bool valid = false; ///< validator verdict (Completed only)
    /** Dispatches performed (>1 means the job was requeued). */
    unsigned attempts = 0;
    /** Failure attribution for TimedOut jobs: "queue" (never
     *  dispatched), "deadline", or "dmsWedge" (a group core's DMAC
     *  is hung — the erratum or an injected wedge). */
    const char *cause = "";

    double
    latencyUs() const
    {
        return double(finishedAt - enqueuedAt) * 1e-6;
    }
};

/** Aggregate outcome of a serving run. */
struct ServingSummary
{
    std::uint64_t submitted = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t completed = 0;
    std::uint64_t timedOut = 0;
    std::uint64_t validationFailed = 0;
    std::uint64_t lateJobs = 0;     ///< timed out, then acked late
    std::uint64_t wedgedGroups = 0; ///< still quarantined at exit
    std::uint64_t requeued = 0;     ///< reaped jobs given a retry
    std::uint64_t quarantines = 0;  ///< group quarantine entries
    std::uint64_t wedgeTimeouts = 0; ///< timeouts attributed to a
                                     ///< hung DMAC
    /** Mean fraction of group capacity not quarantined over the
     *  run (1.0 = no quarantine downtime). */
    double availability = 1.0;
    double p50Us = 0, p95Us = 0, p99Us = 0, meanUs = 0, maxUs = 0;
    double throughputJobsPerSec = 0;
};

/** The A9-side offload scheduler runtime. */
class OffloadScheduler
{
  public:
    OffloadScheduler(soc::Soc &soc, soc::HostA9 &a9, OffloadParams p);

    // ------------------------------------------------------------
    // Load description (before start())
    // ------------------------------------------------------------

    /** Open-loop arrival: @p req reaches the host at tick @p when.
     *  Normally arrivals precede start(); a held-open scheduler
     *  (holdOpen()) accepts time-ordered appends between run
     *  segments too. */
    void enqueueAt(sim::Tick when, JobRequest req);

    /**
     * Hold the driver loop open: it no longer exits when idle with
     * no future arrivals, so a stepped driver (the board balancer's
     * windowed run loop) can keep feeding arrivals between run
     * segments. Pair with close() before the final drain.
     */
    void holdOpen() { open = true; }

    /** Let the driver loop exit once drained (ends holdOpen()). */
    void close() { open = false; }

    /**
     * While held open, the driver wakes no later than @p when even
     * with nothing pending, so it observes arrivals appended at the
     * next host-phase boundary. Set per segment by the stepped
     * driver.
     */
    void setIdleWake(sim::Tick when) { idleWake = when; }

    /**
     * Completion hook, fired after every job resolution (completed
     * or timed out) in host context; closed-loop generators call
     * submitNow() from it.
     */
    void
    onComplete(std::function<void(const JobRecord &)> fn)
    {
        completeHook = std::move(fn);
    }

    /** Start workers + the host driver loop; then run the Soc. */
    void start();

    // ------------------------------------------------------------
    // Host-context API (valid inside hooks)
    // ------------------------------------------------------------

    /** Admit @p req now. @return false when the queue is full. */
    bool submitNow(JobRequest req);

    // ------------------------------------------------------------
    // Results (after the Soc has run)
    // ------------------------------------------------------------

    const std::vector<JobRecord> &jobs() const { return records; }
    ServingSummary summary() const { return finalSummary; }
    unsigned nGroups() const { return unsigned(groups.size()); }

  private:
    struct Arrival
    {
        sim::Tick when;
        JobRequest req;
    };

    struct Pending
    {
        std::uint64_t id;
        JobRequest req;
        sim::Tick deadline;
        std::uint32_t queueSpan;
    };

    enum class GroupState : std::uint8_t
    {
        Free,
        Busy,
        Quarantined,
    };

    struct Group
    {
        unsigned base = 0;
        unsigned size = 0;
        GroupState state = GroupState::Free;
        std::uint64_t jobId = 0;
        /** Monotonic per-dispatch id carried by the MBC messages;
         *  distinguishes a late ack from a previous dispatch of the
         *  same (requeued) job. */
        std::uint64_t dispatchId = 0;
        sim::Tick deadline = 0; ///< running job's reap tick
        unsigned acksOutstanding = 0;
        apps::ServingJob job;
        /** Retained so a reaped job can be requeued. */
        JobRequest req;
        std::uint32_t runSpan = 0;
        sim::Tick quarantinedAt = 0;
    };

    void hostMain(soc::HostA9 &host);
    void admitArrivals(soc::HostA9 &host);
    void reapTimeouts(soc::HostA9 &host);
    void dispatchReady(soc::HostA9 &host);
    void handleAck(soc::HostA9 &host, std::uint64_t msg);
    void resolveJob(JobRecord &rec, soc::HostA9 &host);
    sim::Tick nextWake() const;
    void finalize(soc::HostA9 &host);
    mem::Addr arenaOf(unsigned group) const;
    apps::ServingJob buildJob(const JobRequest &req, unsigned group);

    soc::Soc &soc;
    soc::HostA9 &a9;
    OffloadParams p;
    sim::StatGroup stats;

    std::vector<Arrival> arrivals; ///< sorted at start()
    std::size_t nextArrival = 0;
    std::deque<Pending> queue;
    std::vector<Group> groups;
    std::vector<JobRecord> records;
    std::vector<double> latenciesUs; ///< completed jobs only
    std::function<void(const JobRecord &)> completeHook;
    ServingSummary finalSummary;
    std::uint64_t nextJobId = 1;
    std::uint64_t nextDispatchId = 1;
    /** Ticks of group downtime from reclaimed quarantines;
     *  still-open quarantines are added at finalize(). */
    sim::Tick quarantineDownTicks = 0;
    bool started = false;
    /** holdOpen() latch: keep the driver loop alive while idle. */
    bool open = false;
    /** Held-open idle wake bound (next window boundary). */
    sim::Tick idleWake = 0;
};

} // namespace dpu::host

#endif // DPU_HOST_OFFLOAD_HH

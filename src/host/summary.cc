#include "host/summary.hh"

#include <algorithm>

namespace dpu::host {

double
percentileOf(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0;
    std::size_t rank = std::size_t(q * double(sorted.size()) + 0.5);
    if (rank > 0)
        --rank;
    return sorted[std::min(rank, sorted.size() - 1)];
}

void
SummaryFold::add(const ServingSummary &part,
                 const std::vector<JobRecord> &jobs)
{
    agg.submitted += part.submitted;
    agg.accepted += part.accepted;
    agg.rejected += part.rejected;
    agg.dispatched += part.dispatched;
    agg.completed += part.completed;
    agg.timedOut += part.timedOut;
    agg.validationFailed += part.validationFailed;
    agg.lateJobs += part.lateJobs;
    agg.wedgedGroups += part.wedgedGroups;
    agg.requeued += part.requeued;
    agg.quarantines += part.quarantines;
    agg.wedgeTimeouts += part.wedgeTimeouts;

    availWeighted += part.availability * double(part.submitted);
    availUnweighted += part.availability;
    submittedTotal += part.submitted;
    ++parts;

    for (const JobRecord &rec : jobs) {
        first = std::min(first, rec.enqueuedAt);
        last = std::max(last, rec.finishedAt);
        if (rec.state == JobState::Completed)
            lat.push_back(rec.latencyUs());
    }
}

ServingSummary
SummaryFold::finish() const
{
    ServingSummary out = agg;

    // Traffic-weighted availability: an idle shard carries no
    // vote. With no traffic anywhere, fall back to the plain mean
    // (all shards idle and healthy reads as fully available).
    if (submittedTotal > 0)
        out.availability = availWeighted / double(submittedTotal);
    else if (parts > 0)
        out.availability = availUnweighted / double(parts);

    std::vector<double> sorted = lat;
    std::sort(sorted.begin(), sorted.end());
    out.p50Us = percentileOf(sorted, 0.50);
    out.p95Us = percentileOf(sorted, 0.95);
    out.p99Us = percentileOf(sorted, 0.99);
    if (!sorted.empty()) {
        double sum = 0;
        for (double l : sorted)
            sum += l;
        out.meanUs = sum / double(sorted.size());
        out.maxUs = sorted.back();
    }

    // first <= last whenever a completion exists (its finish tick
    // bounds `last` from below by its own enqueue). Clamp the
    // window to one tick so completions all landing on one tick
    // report a (huge) throughput instead of zero.
    if (out.completed > 0 && first != ~sim::Tick(0)) {
        const sim::Tick window =
            last > first ? last - first : sim::Tick(1);
        out.throughputJobsPerSec =
            double(out.completed) / (double(window) * 1e-12);
    }
    return out;
}

} // namespace dpu::host

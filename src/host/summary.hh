/**
 * @file
 * Shared serving-summary aggregation.
 *
 * BoardScheduler and rack::RackScheduler both fold N per-shard
 * ServingSummary parts into one aggregate, and both used to carry
 * private near-copies of the same loop — with the same two
 * accounting bugs: availability was an unweighted mean over shards
 * (an idle replica's perfect 1.0 diluted a struggling hot shard's
 * outage 1:1 regardless of traffic) and the `last > first` window
 * guard reported zero throughput whenever every completion landed
 * on a single tick. SummaryFold is the one implementation:
 *
 *  - counts are summed;
 *  - availability is weighted by each part's submitted jobs, so a
 *    shard that served nothing cannot vote (zero traffic anywhere
 *    falls back to the unweighted mean);
 *  - latency percentiles are recomputed nearest-rank over every
 *    completed job across all parts;
 *  - throughput spans first-enqueue..last-finish, clamped to one
 *    tick so a degenerate single-tick run reports its completions
 *    instead of zero.
 */

#ifndef DPU_HOST_SUMMARY_HH
#define DPU_HOST_SUMMARY_HH

#include <vector>

#include "host/offload.hh"

namespace dpu::host {

/** Nearest-rank percentile of an ascending-sorted sample. */
double percentileOf(const std::vector<double> &sorted, double q);

/** Accumulates per-shard summaries; finish() yields the fold. */
class SummaryFold
{
  public:
    /** Fold in one shard's summary and its job records. */
    void add(const ServingSummary &part,
             const std::vector<JobRecord> &jobs);

    /** The aggregate over every add() so far. */
    ServingSummary finish() const;

    /** Earliest enqueue across all folded job records. */
    sim::Tick firstEnqueue() const { return first; }
    /** Latest finish across all folded job records. */
    sim::Tick lastFinish() const { return last; }

  private:
    ServingSummary agg;
    std::vector<double> lat; ///< completed-job latencies (us)
    sim::Tick first = ~sim::Tick(0);
    sim::Tick last = 0;
    double availWeighted = 0; ///< sum of availability * submitted
    double availUnweighted = 0;
    std::uint64_t submittedTotal = 0;
    unsigned parts = 0;
};

} // namespace dpu::host

#endif // DPU_HOST_SUMMARY_HH

/**
 * @file
 * Functional byte store for DDR DRAM contents.
 *
 * Timing is modelled separately by DdrChannel; this class only holds
 * the bytes. Agents that bypass the cache hierarchy (the DMS, which
 * sits at the memory controller) read and write here directly, which
 * is exactly why software-managed coherence (flush before DMS read,
 * invalidate before cached read of DMS output) is required on the
 * real chip and in this simulator alike.
 */

#ifndef DPU_MEM_BACKING_STORE_HH
#define DPU_MEM_BACKING_STORE_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "mem/addr.hh"
#include "sim/logging.hh"

namespace dpu::mem {

/** Plain byte-addressable storage for the DDR channel. */
class BackingStore
{
  public:
    explicit BackingStore(std::size_t bytes) : mem(bytes, 0) {}

    std::size_t size() const { return mem.size(); }

    void
    read(Addr addr, void *dst, std::size_t len) const
    {
        sim_assert(addr + len <= mem.size(),
                   "DDR read out of range: addr=%llx len=%zu",
                   (unsigned long long)addr, len);
        std::memcpy(dst, mem.data() + addr, len);
    }

    void
    write(Addr addr, const void *src, std::size_t len)
    {
        sim_assert(addr + len <= mem.size(),
                   "DDR write out of range: addr=%llx len=%zu",
                   (unsigned long long)addr, len);
        std::memcpy(mem.data() + addr, src, len);
    }

    template <typename T>
    T
    load(Addr addr) const
    {
        T v;
        read(addr, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    store(Addr addr, T v)
    {
        write(addr, &v, sizeof(T));
    }

    /** Direct pointer for bulk workload setup (host-side only). */
    std::uint8_t *raw() { return mem.data(); }
    const std::uint8_t *raw() const { return mem.data(); }

  private:
    std::vector<std::uint8_t> mem;
};

} // namespace dpu::mem

#endif // DPU_MEM_BACKING_STORE_HH

/**
 * @file
 * Physical address type and the DPU's flat address map.
 *
 * The dpCore has no MMU; every core addresses the same physical
 * space (Section 2.2). The map mirrors the chip:
 *
 *   [0, ddrBytes)                  DDR DRAM
 *   [dmemBase + i*dmemStride, +32K) DMEM scratchpad of dpCore i
 *
 * DMEM apertures are addressable by every agent (the local core, the
 * DMS store engines, and remote cores via ATE RPCs).
 */

#ifndef DPU_MEM_ADDR_HH
#define DPU_MEM_ADDR_HH

#include <cstdint>

namespace dpu::mem {

/** 64-bit physical address (the dpCore is fully 64-bit addressable). */
using Addr = std::uint64_t;

/** Size of each dpCore's DMEM scratchpad (Section 2.1: 32 KB). */
constexpr std::uint32_t dmemBytes = 32 * 1024;

/** Base of the DMEM aperture region. */
constexpr Addr dmemBase = 0x1'0000'0000ull;

/** Stride between consecutive cores' DMEM apertures. */
constexpr Addr dmemStride = 0x1'0000ull;

/** Aperture base for core @p core_id. */
constexpr Addr
dmemAddr(unsigned core_id, std::uint32_t offset = 0)
{
    return dmemBase + Addr(core_id) * dmemStride + offset;
}

/** True if @p a falls inside some core's DMEM aperture. */
constexpr bool
isDmemAddr(Addr a)
{
    return a >= dmemBase;
}

/** Core id owning DMEM address @p a (only valid if isDmemAddr). */
constexpr unsigned
dmemOwner(Addr a)
{
    return unsigned((a - dmemBase) / dmemStride);
}

/** Offset within the owning core's DMEM. */
constexpr std::uint32_t
dmemOffset(Addr a)
{
    return std::uint32_t((a - dmemBase) % dmemStride);
}

} // namespace dpu::mem

#endif // DPU_MEM_ADDR_HH

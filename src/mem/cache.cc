#include "mem/cache.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"

namespace dpu::mem {

Cache::Cache(const std::string &name, const CacheParams &params,
             MemPort &downstream)
    : stats(name), p(params), next(downstream),
      nSets(params.sizeBytes / (lineBytes * params.assoc)),
      lines(std::size_t(nSets) * params.assoc),
      hitLatency(sim::dpCoreClock.cyclesToTicks(params.hitCycles))
{
    sim_assert(nSets > 0 && (nSets & (nSets - 1)) == 0,
               "cache sets must be a power of two (size=%u assoc=%u)",
               params.sizeBytes, params.assoc);
    stats.addFlushHook([this] { flushStats(); });
}

void
Cache::flushStats()
{
    shHits.flushInto(stats, "hits");
    shMisses.flushInto(stats, "misses");
    shWritebacks.flushInto(stats, "writebacks");
    shFills.flushInto(stats, "fills");
}

std::uint32_t
Cache::setIndex(Addr line_addr) const
{
    return std::uint32_t((line_addr / lineBytes) & (nSets - 1));
}

Cache::Line *
Cache::findLine(Addr line_addr)
{
    Line *set = &lines[std::size_t(setIndex(line_addr)) * p.assoc];
    for (std::uint32_t w = 0; w < p.assoc; ++w) {
        if (set[w].valid && set[w].tag == line_addr)
            return &set[w];
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr line_addr) const
{
    return const_cast<Cache *>(this)->findLine(line_addr);
}

std::pair<Cache::Line *, sim::Tick>
Cache::getLine(Addr line_addr, sim::Tick when, bool fill)
{
    if (Line *l = findLine(line_addr)) {
        l->lastUse = ++useClock;
        ++shHits;
        return {l, when + hitLatency};
    }

    ++shMisses;
    Line *set = &lines[std::size_t(setIndex(line_addr)) * p.assoc];
    Line *victim = &set[0];
    for (std::uint32_t w = 1; w < p.assoc; ++w) {
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }

    sim::Tick t = when + hitLatency;
    if (victim->valid && victim->dirty) {
        t = next.writeLine(victim->tag, victim->data, t);
        ++shWritebacks;
    }

    victim->valid = true;
    victim->dirty = false;
    victim->tag = line_addr;
    victim->lastUse = ++useClock;
    if (fill) {
        t = next.readLine(line_addr, victim->data, t);
        ++shFills;
    } else {
        std::memset(victim->data, 0, lineBytes);
    }
    return {victim, t};
}

sim::Tick
Cache::read(Addr addr, void *dst, std::uint32_t len, sim::Tick when)
{
    auto *out = static_cast<std::uint8_t *>(dst);
    sim::Tick t = when;
    while (len > 0) {
        Addr line_addr = lineAlign(addr);
        std::uint32_t off = std::uint32_t(addr - line_addr);
        std::uint32_t chunk = std::min(len, lineBytes - off);
        auto [line, done] = getLine(line_addr, t, true);
        std::memcpy(out, line->data + off, chunk);
        t = done;
        addr += chunk;
        out += chunk;
        len -= chunk;
    }
    return t;
}

sim::Tick
Cache::write(Addr addr, const void *src, std::uint32_t len,
             sim::Tick when)
{
    auto *in = static_cast<const std::uint8_t *>(src);
    sim::Tick t = when;
    while (len > 0) {
        Addr line_addr = lineAlign(addr);
        std::uint32_t off = std::uint32_t(addr - line_addr);
        std::uint32_t chunk = std::min(len, lineBytes - off);
        // Whole-line writes need no fill; partial writes do.
        bool fill = !(off == 0 && chunk == lineBytes);
        auto [line, done] = getLine(line_addr, t, fill);
        std::memcpy(line->data + off, in, chunk);
        line->dirty = true;
        t = done;
        addr += chunk;
        in += chunk;
        len -= chunk;
    }
    return t;
}

sim::Tick
Cache::readLine(Addr addr, void *dst, sim::Tick when)
{
    return read(addr, dst, lineBytes, when);
}

sim::Tick
Cache::writeLine(Addr addr, const void *src, sim::Tick when)
{
    return write(addr, src, lineBytes, when);
}

sim::Tick
Cache::flushRange(Addr addr, std::uint64_t len, sim::Tick when)
{
    sim::Tick t = when;
    Addr first = lineAlign(addr);
    Addr last = lineAlign(addr + (len ? len - 1 : 0));
    for (Addr a = first; a <= last; a += lineBytes) {
        if (Line *l = findLine(a); l && l->dirty) {
            t = next.writeLine(a, l->data, t + hitLatency);
            l->dirty = false;
            ++stats.counter("flushedLines");
        }
    }
    return t;
}

sim::Tick
Cache::invalidateRange(Addr addr, std::uint64_t len, sim::Tick when)
{
    Addr first = lineAlign(addr);
    Addr last = lineAlign(addr + (len ? len - 1 : 0));
    sim::Tick t = when;
    for (Addr a = first; a <= last; a += lineBytes) {
        if (Line *l = findLine(a)) {
            l->valid = false;
            l->dirty = false;
            t += hitLatency;
            ++stats.counter("invalidatedLines");
        }
    }
    return t;
}

sim::Tick
Cache::flushAll(sim::Tick when)
{
    sim::Tick t = when;
    for (Line &l : lines) {
        if (l.valid && l.dirty) {
            t = next.writeLine(l.tag, l.data, t + hitLatency);
            ++stats.counter("flushedLines");
        }
        l.valid = false;
        l.dirty = false;
    }
    return t;
}

bool
Cache::contains(Addr addr) const
{
    return findLine(lineAlign(addr)) != nullptr;
}

bool
Cache::isDirty(Addr addr) const
{
    const Line *l = findLine(lineAlign(addr));
    return l && l->dirty;
}

} // namespace dpu::mem

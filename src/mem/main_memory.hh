/**
 * @file
 * Main memory: the DDR channel timing model bound to its functional
 * backing store, exposed both as a line-granularity MemPort (for the
 * cache hierarchy) and as a bulk transaction interface (for the DMS,
 * which sits at the memory controller and bypasses the caches).
 */

#ifndef DPU_MEM_MAIN_MEMORY_HH
#define DPU_MEM_MAIN_MEMORY_HH

#include <cstdint>
#include <functional>

#include "mem/backing_store.hh"
#include "mem/ddr.hh"
#include "mem/mem_port.hh"
#include "sim/stats.hh"

namespace dpu::mem {

/** The DPU's single DDR channel plus its contents. */
class MainMemory : public MemPort
{
  public:
    MainMemory(const DdrParams &params, std::size_t bytes)
        : stats("ddr"), channel(params, stats), backing(bytes)
    {
    }

    sim::Tick
    readLine(Addr addr, void *dst, sim::Tick when) override
    {
        backing.read(addr, dst, lineBytes);
        return channel.access(addr, lineBytes, false, when);
    }

    sim::Tick
    writeLine(Addr addr, const void *src, sim::Tick when) override
    {
        backing.write(addr, src, lineBytes);
        return channel.access(addr, lineBytes, true, when);
    }

    /**
     * Bulk DMS-side transaction: functional copy plus channel
     * timing. @return completion tick of the last beat.
     */
    sim::Tick
    dmsRead(Addr addr, void *dst, std::uint32_t len, sim::Tick when)
    {
        backing.read(addr, dst, len);
        return channel.access(addr, len, false, when);
    }

    /** Bulk DMS-side write; see dmsRead. */
    sim::Tick
    dmsWrite(Addr addr, const void *src, std::uint32_t len,
             sim::Tick when)
    {
        if (dmsWriteHook)
            dmsWriteHook(addr, len);
        backing.write(addr, src, len);
        return channel.access(addr, len, true, when);
    }

    /**
     * Observe every DMS-side write before it lands (coherence
     * tooling: a cache-bypassing write can stale cores' caches).
     * Pass nullptr to detach.
     */
    void
    setDmsWriteHook(std::function<void(Addr, std::uint32_t)> hook)
    {
        dmsWriteHook = std::move(hook);
    }

    BackingStore &store() { return backing; }
    const BackingStore &store() const { return backing; }
    DdrChannel &ddr() { return channel; }
    sim::StatGroup &statGroup() { return stats; }

  private:
    sim::StatGroup stats;
    DdrChannel channel;
    BackingStore backing;
    std::function<void(Addr, std::uint32_t)> dmsWriteHook;
};

} // namespace dpu::mem

#endif // DPU_MEM_MAIN_MEMORY_HH

/**
 * @file
 * DMEM: the 32 KB software-managed scratchpad SRAM attached to each
 * dpCore (Section 2.1). The DMS store engines deposit partitioned /
 * streamed data directly into DMEM, and the core accesses it with
 * single-cycle latency ("This also guarantees single-cycle latency to
 * access any part of the hash table, unlike a cache", Section 5.3).
 *
 * DMEM is dual-ported between the core and the DMS in the model (the
 * chip banks it; contention is second-order and absorbed into the
 * DMS's per-buffer overhead calibration).
 */

#ifndef DPU_MEM_DMEM_HH
#define DPU_MEM_DMEM_HH

#include <array>
#include <cstdint>
#include <cstring>

#include "mem/addr.hh"
#include "sim/logging.hh"

namespace dpu::mem {

/** One dpCore's scratchpad. */
class Dmem
{
  public:
    static constexpr std::uint32_t size = dmemBytes;

    void
    read(std::uint32_t offset, void *dst, std::size_t len) const
    {
        sim_assert(offset + len <= size,
                   "DMEM read out of range: off=%u len=%zu", offset,
                   len);
        std::memcpy(dst, bytes.data() + offset, len);
    }

    void
    write(std::uint32_t offset, const void *src, std::size_t len)
    {
        sim_assert(offset + len <= size,
                   "DMEM write out of range: off=%u len=%zu", offset,
                   len);
        std::memcpy(bytes.data() + offset, src, len);
    }

    template <typename T>
    T
    load(std::uint32_t offset) const
    {
        T v;
        read(offset, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    store(std::uint32_t offset, T v)
    {
        write(offset, &v, sizeof(T));
    }

    std::uint8_t *raw() { return bytes.data(); }
    const std::uint8_t *raw() const { return bytes.data(); }

  private:
    std::array<std::uint8_t, size> bytes{};
};

} // namespace dpu::mem

#endif // DPU_MEM_DMEM_HH

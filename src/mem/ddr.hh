/**
 * @file
 * DDR channel timing model.
 *
 * A bank-aware, row-buffer-aware transaction-level model of the
 * single DDR channel that feeds the DPU. The paper's design point is
 * DDR3-1600 (12.8 GB/s peak, ~10 GB/s practical per Section 2); the
 * 16 nm variant uses DDR4-3200 at 76 GB/s per DPU (Section 2.5),
 * modelled here as a wider/faster channel.
 *
 * The model serialises 64 B bursts on the data bus, charges
 * activate/precharge on row-buffer misses (overlappable across
 * banks), a read/write turnaround penalty, and a refresh duty-cycle
 * derating. Streaming accesses sustain ~94% of peak; random 64 B
 * accesses fall to row-miss latency, which is what makes the
 * cache-unfriendly workloads in Section 5 memory-latency-bound on a
 * conventional machine and bandwidth-bound with the DMS.
 */

#ifndef DPU_MEM_DDR_HH
#define DPU_MEM_DDR_HH

#include <array>
#include <cstdint>

#include "mem/addr.hh"
#include "sim/fault.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"
#include "sim/types.hh"

namespace dpu::mem {

/** Static timing/geometry parameters of a DDR channel. */
struct DdrParams
{
    const char *name;
    std::uint32_t nBanks;       ///< banks per rank
    std::uint32_t rowBytes;     ///< row-buffer size per bank
    sim::Tick tBurst;           ///< data-bus time per 64 B burst
    sim::Tick tRcd;             ///< activate-to-read
    sim::Tick tRp;              ///< precharge
    sim::Tick tCl;              ///< CAS latency
    /** Effective read<->write switch penalty. Physically tWTR-ish
     *  is ~7.5 ns, but the controller batches same-direction
     *  requests; our arrival-order model switches far more often
     *  than a real scheduler would, so this carries the AMORTIZED
     *  per-switch cost. */
    sim::Tick tTurnaround;
    /** Fraction of channel time lost to refresh, command-bus
     *  contention and controller scheduling inefficiency. DDR3
     *  systems sustain 75-85% of pin bandwidth on mixed streams;
     *  the paper's own peak measurement (9.6 of 12.8 GB/s) sits at
     *  75%, which this knob reproduces. */
    double refreshDerate;

    /** Peak bandwidth in bytes per second. */
    double
    peakBytesPerSec() const
    {
        return 64.0 / (double(tBurst) * 1e-12);
    }
};

/** DDR3-1600, 64-bit bus: 12.8 GB/s peak (the 40 nm DPU). */
constexpr DdrParams ddr3_1600{
    "DDR3-1600",
    8,          // banks
    2048,       // 2 KB row
    5000,       // 64 B / 12.8 GB/s = 5 ns
    13750,      // tRCD 13.75 ns
    13750,      // tRP
    13750,      // tCL
    2500,       // amortized turnaround (see above)
    0.21,       // refresh + controller inefficiency (see above)
};

/** DDR4-3200-class channel feeding the 16 nm DPU (76 GB/s). */
constexpr DdrParams ddr4_3200x3{
    "DDR4-3200x3",
    16,
    1024,
    842,        // 64 B / 76 GB/s
    13750,
    13750,
    13750,
    2000,
    0.12,
};

/** Timing model for one DDR channel. */
class DdrChannel
{
  public:
    DdrChannel(const DdrParams &params, sim::StatGroup &stats)
        : p(params), st(stats)
    {
        banks.fill(Bank{});
        stats.addFlushHook([this] { flushStats(); });
    }

    // The flush hook captures `this`, so the channel must stay put
    // (it lives inside MainMemory for the whole simulation).
    DdrChannel(const DdrChannel &) = delete;
    DdrChannel &operator=(const DdrChannel &) = delete;

    /**
     * Issue one memory transaction of up to any length; the model
     * splits it into 64 B bursts internally.
     *
     * @param addr     Start address.
     * @param bytes    Transfer length.
     * @param write    True for a write.
     * @param earliest The tick at which the request reaches the
     *                 controller.
     * @return the tick at which the last data beat completes.
     */
    sim::Tick
    access(Addr addr, std::uint32_t bytes, bool write,
           sim::Tick earliest)
    {
        sim::Tick done = earliest;
        Addr a = addr & ~Addr(63);
        Addr end = addr + bytes;
        while (a < end) {
            done = burst(a, write, earliest);
            a += 64;
        }
        (write ? shBytesWritten : shBytesRead) += bytes;
        if (DPU_TRACE_ARMED) {
            DPU_TRACE_COMPLETE(sim::TraceCat::Ddr, 0,
                               write ? "write" : "read", earliest,
                               done - earliest, "bytes", bytes,
                               nullptr, 0);
            // Sampled row-buffer counters: cheap to plot in
            // Perfetto without one event per burst.
            if (++tracedAccesses % 64 == 0) {
                DPU_TRACE_COUNTER(sim::TraceCat::Ddr, 0, "rowBuffer",
                                  done, "hits",
                                  st.get("rowHits"), "misses",
                                  st.get("rowMisses"));
            }
        }
        return done;
    }

    /** Tick at which the data bus next becomes free. */
    sim::Tick busFreeAt() const { return busFree; }

    const DdrParams &params() const { return p; }

  private:
    struct Bank
    {
        std::int64_t openRow = -1;
        /** Earliest tick the open row can move data. */
        sim::Tick dataReadyAt = 0;
    };

    /** Schedule a single 64 B burst; returns its completion tick. */
    sim::Tick
    burst(Addr addr, bool write, sim::Tick earliest)
    {
        // Address map: row : bank : column. Consecutive rows of the
        // stream land in consecutive banks so activations overlap.
        const std::uint64_t rowId = addr / p.rowBytes;
        const std::uint32_t bank = rowId % p.nBanks;
        const std::int64_t row = std::int64_t(rowId / p.nBanks);

        Bank &b = banks[bank];

        if (b.openRow != row) {
            // Precharge the old row (if any), activate the new one,
            // then CAS. Activation can start as soon as the request
            // arrives, overlapping with other banks' transfers.
            sim::Tick t = std::max(earliest, b.dataReadyAt);
            if (b.openRow >= 0)
                t += p.tRp;
            t += p.tRcd + p.tCl;
            b.dataReadyAt = t;
            b.openRow = row;
            ++shRowMisses;
        } else {
            // Row hit: the column command pipelines behind earlier
            // bursts; only the CAS latency of this request bounds it.
            b.dataReadyAt = std::max(b.dataReadyAt, earliest + p.tCl);
            ++shRowHits;
        }

        sim::Tick data_start = std::max(b.dataReadyAt, busFree);
        if (write != lastWasWrite && busFree > 0)
            data_start += p.tTurnaround;
        lastWasWrite = write;

        // Refresh/controller derating: stretch effective burst time.
        sim::Tick t_burst =
            sim::Tick(double(p.tBurst) / (1.0 - p.refreshDerate));

        // Fault plane: a mem.degrade window divides the channel's
        // effective bandwidth by stretching each burst (thermal
        // throttling / a misbehaving rank). Inert runs only pay the
        // hasMemFault() flag test.
        if (sim::faultPlane().hasMemFault())
            t_burst *= sim::faultPlane().memBwDivisor(data_start);

        busFree = data_start + t_burst;
        shBusyTicks += t_burst;
        ++shBursts;
        return busFree;
    }

    /** Fold deferred per-burst counters into the stat group. */
    void
    flushStats()
    {
        shRowMisses.flushInto(st, "rowMisses");
        shRowHits.flushInto(st, "rowHits");
        shBusyTicks.flushInto(st, "busyTicks");
        shBursts.flushInto(st, "bursts");
        shBytesRead.flushInto(st, "bytesRead");
        shBytesWritten.flushInto(st, "bytesWritten");
    }

    DdrParams p;
    sim::StatGroup &st;
    /** Deferred per-burst counters (see sim/stats.hh). */
    sim::DeferredCounter shRowMisses, shRowHits, shBusyTicks,
        shBursts, shBytesRead, shBytesWritten;
    std::array<Bank, 64> banks;
    sim::Tick busFree = 0;
    bool lastWasWrite = false;
    /** Accesses seen while tracing (row-buffer counter cadence). */
    std::uint64_t tracedAccesses = 0;
};

} // namespace dpu::mem

#endif // DPU_MEM_DDR_HH

/**
 * @file
 * Non-coherent write-back cache.
 *
 * The DPU's caches hold real data and are NOT kept coherent by
 * hardware (Section 2.3): software issues explicit flush and
 * invalidate instructions. This model stores actual line contents,
 * so a core that reads a shared structure without invalidating first
 * genuinely observes stale data — the same bug a programmer would
 * hit on silicon, and the behaviour the coherence tests pin down.
 *
 * Geometry per the paper: 16 KB L1-D and 8 KB L1-I per dpCore and a
 * 256 KB L2 shared by the 8 dpCores of a macro.
 */

#ifndef DPU_MEM_CACHE_HH
#define DPU_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/mem_port.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace dpu::mem {

/** Configuration for one cache level. */
struct CacheParams
{
    std::uint32_t sizeBytes;
    std::uint32_t assoc;
    sim::Cycles hitCycles;   ///< lookup latency in core cycles
};

/** Set-associative, write-back, write-allocate, true-LRU cache. */
class Cache : public MemPort
{
  public:
    /**
     * @param name  Stats prefix, e.g. "core3.l1d".
     * @param params Geometry and hit latency.
     * @param downstream The next level (L2 or main memory).
     */
    Cache(const std::string &name, const CacheParams &params,
          MemPort &downstream);

    /**
     * Read @p len bytes through the cache (may span lines).
     * @return completion tick.
     */
    sim::Tick read(Addr addr, void *dst, std::uint32_t len,
                   sim::Tick when);

    /** Write @p len bytes through the cache (write-allocate). */
    sim::Tick write(Addr addr, const void *src, std::uint32_t len,
                    sim::Tick when);

    /** MemPort interface used when this cache is a downstream. */
    sim::Tick readLine(Addr addr, void *dst, sim::Tick when) override;
    sim::Tick writeLine(Addr addr, const void *src,
                        sim::Tick when) override;

    /**
     * Write back any dirty lines intersecting [addr, addr+len) to
     * the downstream level; lines stay resident and clean. This is
     * the dpCore's cache-flush instruction.
     * @return completion tick of the last writeback.
     */
    sim::Tick flushRange(Addr addr, std::uint64_t len, sim::Tick when);

    /**
     * Drop any lines intersecting [addr, addr+len) WITHOUT writing
     * them back — dirty data is lost, exactly as the invalidate
     * instruction behaves on chip.
     */
    sim::Tick invalidateRange(Addr addr, std::uint64_t len,
                              sim::Tick when);

    /** Flush then invalidate the whole cache. */
    sim::Tick flushAll(sim::Tick when);

    /** True if the line holding @p addr is resident. */
    bool contains(Addr addr) const;

    /** True if the line holding @p addr is resident and dirty. */
    bool isDirty(Addr addr) const;

    sim::StatGroup &statGroup() { return stats; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lastUse = 0;
        std::uint8_t data[lineBytes] = {};
    };

    /** Locate a resident line; nullptr on miss. */
    Line *findLine(Addr line_addr);
    const Line *findLine(Addr line_addr) const;

    /**
     * Ensure the line holding @p line_addr is resident, evicting and
     * refilling as needed. @return (line, completion tick).
     */
    std::pair<Line *, sim::Tick> getLine(Addr line_addr,
                                         sim::Tick when,
                                         bool fill_from_downstream);

    std::uint32_t setIndex(Addr line_addr) const;

    /** Fold deferred per-access counters into the stat group. */
    void flushStats();

    sim::StatGroup stats;
    /** Deferred per-access counters (see sim/stats.hh); folded in by
     *  the group's flush hook. */
    sim::DeferredCounter shHits, shMisses, shWritebacks, shFills;
    CacheParams p;
    MemPort &next;
    std::uint32_t nSets;
    std::vector<Line> lines;   ///< nSets * assoc, set-major
    std::uint64_t useClock = 0;
    sim::Tick hitLatency;
};

} // namespace dpu::mem

#endif // DPU_MEM_CACHE_HH

/**
 * @file
 * Line-granularity memory interface shared by caches and main memory.
 */

#ifndef DPU_MEM_MEM_PORT_HH
#define DPU_MEM_MEM_PORT_HH

#include <cstdint>

#include "mem/addr.hh"
#include "sim/types.hh"

namespace dpu::mem {

/** Cache-line size across the chip (Section 4: the compiler aligns
 *  globals to cache-block boundaries to avoid false sharing). */
constexpr std::uint32_t lineBytes = 64;

/** Align an address down to its cache line. */
constexpr Addr
lineAlign(Addr a)
{
    return a & ~Addr(lineBytes - 1);
}

/**
 * Anything that can source/sink whole cache lines with timing: a
 * lower-level cache or the DDR channel itself.
 */
class MemPort
{
  public:
    virtual ~MemPort() = default;

    /**
     * Read one 64 B line.
     * @param addr Line-aligned address.
     * @param dst  Destination for 64 bytes.
     * @param when Time the request is issued.
     * @return completion tick.
     */
    virtual sim::Tick readLine(Addr addr, void *dst,
                               sim::Tick when) = 0;

    /** Write one 64 B line; mirror of readLine. */
    virtual sim::Tick writeLine(Addr addr, const void *src,
                                sim::Tick when) = 0;
};

} // namespace dpu::mem

#endif // DPU_MEM_MEM_PORT_HH

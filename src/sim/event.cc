/**
 * @file
 * Event base-class and PeriodicEvent out-of-line pieces (anything
 * that needs the full EventQueue definition).
 */

#include "sim/event.hh"

#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace dpu::sim {

const char *
evTagName(EvTag t)
{
    switch (t) {
      case EvTag::Generic: return "generic";
      case EvTag::Core: return "core";
      case EvTag::Dms: return "dms";
      case EvTag::Ate: return "ate";
      case EvTag::Mbc: return "mbc";
      case EvTag::Mem: return "mem";
      case EvTag::Soc: return "soc";
      case EvTag::Host: return "host";
      case EvTag::Link: return "link";
    }
    return "?";
}

Event::~Event()
{
    // A still-scheduled event unlinks itself so the queue never
    // fires dangling storage. (When the QUEUE dies first it severs
    // these links instead; queue_ is null then.)
    if (queue_ && where_ != Where::None)
        queue_->deschedule(*this);
}

PeriodicEvent::PeriodicEvent(EventQueue &eq_, Tick period, Fn fn_,
                             EvTag tag)
    : Event(tag), eq(eq_), periodTicks(period), fn(std::move(fn_))
{
    sim_assert(period > 0, "periodic event with zero period");
}

PeriodicEvent::~PeriodicEvent()
{
    cancel();
}

void
PeriodicEvent::start(Tick first)
{
    armed = true;
    eq.reschedule(first, *this);
}

void
PeriodicEvent::startIn(Tick delta)
{
    start(eq.now() + delta);
}

void
PeriodicEvent::cancel()
{
    armed = false;
    if (scheduled())
        eq.deschedule(*this);
}

void
PeriodicEvent::process()
{
    fn();
    // The callback may have cancelled or explicitly re-armed; only
    // the still-armed, not-yet-rescheduled case re-arms here.
    if (armed && !scheduled())
        eq.schedule(when() + periodTicks, *this);
}

} // namespace dpu::sim

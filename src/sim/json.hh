/**
 * @file
 * Minimal JSON reader for simulator tooling.
 *
 * Parses the two dialects this repo itself produces — golden stats
 * snapshots and Chrome trace-event files — into a simple ordered
 * document tree. Integers that fit are preserved exactly (stat
 * counters are uint64; doubles would silently round above 2^53).
 * This is deliberately NOT a general-purpose library: no streaming,
 * no \uXXXX surrogate pairs, documents are read fully into memory.
 */

#ifndef DPU_SIM_JSON_HH
#define DPU_SIM_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dpu::sim::json {

/** One parsed JSON value. */
struct Value
{
    enum class Kind
    {
        Null,
        Bool,
        Int,    ///< number with no fraction/exponent; exact in i
        Double, ///< any other number
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool b = false;
    std::int64_t i = 0;
    double d = 0.0;
    std::string s;
    std::vector<Value> arr;
    /** Insertion-ordered members. */
    std::vector<std::pair<std::string, Value>> obj;

    bool isNum() const { return kind == Kind::Int || kind == Kind::Double; }
    double asDouble() const { return kind == Kind::Int ? double(i) : d; }
    std::uint64_t asU64() const { return std::uint64_t(i); }

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *find(const std::string &key) const;
};

/**
 * Parse @p text.
 * @return true on success; on failure @p err describes the problem
 *         and @p out is left in an unspecified state.
 */
bool parse(const std::string &text, Value &out, std::string &err);

} // namespace dpu::sim::json

#endif // DPU_SIM_JSON_HH

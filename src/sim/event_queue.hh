/**
 * @file
 * Global discrete-event queue.
 *
 * Every timed behaviour in the simulated SoC — core wakeups, DMS
 * pipeline stage completions, DDR transactions, ATE message hops —
 * is an event on this queue. Events scheduled for the same tick fire
 * in insertion order, which gives the deterministic FIFO semantics
 * the ATE and DMAX crossbars rely on.
 */

#ifndef DPU_SIM_EVENT_QUEUE_HH
#define DPU_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace dpu::sim {

/** Discrete-event queue with a monotonically advancing clock. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return curTick; }

    /** Schedule @p cb to run at absolute time @p when (>= now). */
    void
    schedule(Tick when, Callback cb)
    {
        sim_assert(when >= curTick,
                   "scheduling in the past (%llu < %llu)",
                   (unsigned long long)when,
                   (unsigned long long)curTick);
        heap.push(Entry{when, nextSeq++, std::move(cb)});
    }

    /** Schedule @p cb to run @p delta ticks from now. */
    void
    scheduleIn(Tick delta, Callback cb)
    {
        schedule(curTick + delta, std::move(cb));
    }

    /** True when no events remain. */
    bool empty() const { return heap.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return heap.size(); }

    /**
     * Run events until the queue drains or @p limit is reached.
     * @return the number of events executed.
     */
    std::uint64_t
    run(Tick limit = maxTick)
    {
        std::uint64_t executed = 0;
        while (!heap.empty()) {
            const Entry &top = heap.top();
            if (top.when > limit)
                break;
            // Move the callback out before popping so that the
            // callback may itself schedule new events.
            Tick when = top.when;
            Callback cb = std::move(const_cast<Entry &>(top).cb);
            heap.pop();
            curTick = when;
            cb();
            ++executed;
        }
        if (heap.empty() && limit != maxTick && curTick < limit)
            curTick = limit;
        return executed;
    }

    /** Execute exactly one event if one exists. @return true if so. */
    bool
    step()
    {
        if (heap.empty())
            return false;
        Tick when = heap.top().when;
        Callback cb = std::move(const_cast<Entry &>(heap.top()).cb);
        heap.pop();
        curTick = when;
        cb();
        return true;
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
};

} // namespace dpu::sim

#endif // DPU_SIM_EVENT_QUEUE_HH

/**
 * @file
 * Global discrete-event queue.
 *
 * Every timed behaviour in the simulated SoC — core wakeups, DMS
 * pipeline stage completions, DDR transactions, ATE message hops —
 * is an event on this queue. Events scheduled for the same tick fire
 * in insertion order, which gives the deterministic FIFO semantics
 * the ATE and DMAX crossbars rely on.
 *
 * The queue is the simulator's hottest path, so it is built around
 * three no-allocation mechanisms (DESIGN.md §"Event kernel"):
 *
 *  - Intrusive events: Event objects (sim/event.hh) link themselves
 *    into the queue; scheduling a member event costs no allocation.
 *  - A hierarchical timing wheel: four levels of 256 slots indexed
 *    by successive 8-bit digits of the firing tick, giving O(1)
 *    insert/remove for anything within 2^32 ticks (~4.3 ms) of the
 *    clock. Rarer, farther events overflow into a (when, seq)
 *    binary heap and are merged at pop time by sequence number, so
 *    the global FIFO order is exact across both structures.
 *  - A slab pool of callback events: the `scheduleIn(delta, lambda)`
 *    convenience API is carried by pooled CallbackEvent nodes whose
 *    capture storage is inline (sim/inplace_fn.hh) — no malloc on
 *    schedule, no free on fire.
 *
 * A built-in self-profiler counts executed events per subsystem tag
 * (and, when enableWallProfiling() is on, attributes wall time per
 * tag); publishStats() surfaces it through the StatsRegistry as the
 * "eventq" group. The group is created lazily so that golden stat
 * snapshots of the modelled chip are unaffected unless a run opts
 * in.
 */

#ifndef DPU_SIM_EVENT_QUEUE_HH
#define DPU_SIM_EVENT_QUEUE_HH

#include <array>
#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace dpu::sim {

class StatGroup;

/** Discrete-event queue with a monotonically advancing clock. */
class EventQueue
{
  public:
    /** Inline-storage callback for the lambda convenience API. */
    using Callback = InplaceFn<80>;

    EventQueue();
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return curTick; }

    // ------------------------------------------------------------
    // Intrusive API
    // ------------------------------------------------------------

    /** Schedule @p ev to fire at absolute time @p when (>= now). */
    void
    schedule(Tick when, Event &ev)
    {
        sim_assert(when >= curTick,
                   "scheduling in the past (%llu < %llu)",
                   (unsigned long long)when,
                   (unsigned long long)curTick);
        sim_assert(ev.where_ == Event::Where::None,
                   "event '%s' is already scheduled", ev.name());
        ev.when_ = when;
        ev.seq_ = nextSeq++;
        ev.queue_ = this;
        // An empty wheel is the moment to resync its base with the
        // clock: placement digits stay exact however far the clock
        // has travelled (including past the 2^32-tick horizon of a
        // stale base), and no resident event can be invalidated.
        if (nWheel == 0)
            wheelBase = curTick;
        place(ev);
        ++nScheduled;
        ++prof.schedules;
        if (nScheduled > prof.maxPending)
            prof.maxPending = nScheduled;
    }

    /** Schedule @p ev to fire @p delta ticks from now. */
    void
    scheduleIn(Tick delta, Event &ev)
    {
        schedule(curTick + delta, ev);
    }

    /** Unlink a scheduled event; no-op semantics are NOT provided —
     *  the event must currently be scheduled on this queue. */
    void deschedule(Event &ev);

    /** deschedule-if-needed + schedule. */
    void
    reschedule(Tick when, Event &ev)
    {
        if (ev.scheduled())
            deschedule(ev);
        schedule(when, ev);
    }

    // ------------------------------------------------------------
    // Callback convenience API (pooled, allocation-free)
    // ------------------------------------------------------------

    /** Schedule @p cb to run at absolute time @p when (>= now). */
    void
    schedule(Tick when, Callback cb, EvTag tag = EvTag::Generic)
    {
        CallbackEvent &ev = acquire();
        ev.tag_ = tag;
        ev.cb = std::move(cb);
        schedule(when, ev);
    }

    /** Schedule @p cb to run @p delta ticks from now. */
    void
    scheduleIn(Tick delta, Callback cb, EvTag tag = EvTag::Generic)
    {
        schedule(curTick + delta, std::move(cb), tag);
    }

    // ------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------

    /** True when no events remain. */
    bool empty() const { return nScheduled == 0; }

    /** Number of pending events. */
    std::size_t pending() const { return nScheduled; }

    /**
     * Run events until the queue drains or @p limit is reached.
     * When given a finite limit the clock always lands exactly on
     * it — whether the queue drained or events remain beyond the
     * bound — so quantum-stepped callers observe now() == limit.
     * @return the number of events executed.
     */
    std::uint64_t run(Tick limit = maxTick);

    /**
     * Like run(@p end) but the clock stays at the last executed
     * event instead of parking on the bound. The parallel epoch
     * runner (sim/parallel.hh) advances partitions with this so a
     * drained partition's clock never overshoots the board's true
     * final tick; the runner aligns all clocks explicitly at the
     * end of the whole run.
     */
    std::uint64_t runWindow(Tick end);

    /** Tick of the last event actually executed (run() may park the
     *  clock past it on a bounded run). 0 before any event fires. */
    Tick lastEventTick() const { return lastEvTick; }

    /**
     * Non-mutating lower bound on the earliest pending event's tick:
     * exact when the earliest resident sits in wheel level 0 or in
     * the overflow heap, else the start of its level's time window
     * (at most one wasted epoch refines it, because running past a
     * window start cascades it to level 0). maxTick when empty. The
     * epoch runner uses this to place the next lookahead window —
     * and to jump idle gaps instead of marching through them.
     */
    Tick nextDueLowerBound() const;

    /** Execute exactly one event if one exists. @return true if so. */
    bool step();

    // ------------------------------------------------------------
    // Self-profiler
    // ------------------------------------------------------------

    /** Cheap always-on counters plus opt-in wall attribution. */
    struct Profile
    {
        /** Events executed, by subsystem tag. */
        std::array<std::uint64_t, nEvTags> executed{};
        /** Wall nanoseconds inside process(), by tag (only grows
         *  while wall profiling is enabled). */
        std::array<double, nEvTags> wallNs{};
        std::uint64_t schedules = 0;
        std::uint64_t maxPending = 0;
        /** Events that went to the overflow heap (beyond the
         *  wheel's 2^32-tick horizon). */
        std::uint64_t heapInserts = 0;
        /** Slot migrations between wheel levels. */
        std::uint64_t cascades = 0;
        std::uint64_t cascadedEvents = 0;
        /** Pool growth: slabs allocated / events per slab. */
        std::uint64_t poolSlabs = 0;
        std::uint64_t poolEvents = 0;
        /** Wall nanoseconds spent inside run() (wall profiling). */
        double runWallNs = 0;

        std::uint64_t
        totalExecuted() const
        {
            std::uint64_t n = 0;
            for (auto v : executed)
                n += v;
            return n;
        }
    };

    const Profile &profile() const { return prof; }

    /** Attribute wall time per event tag (a steady_clock read per
     *  event: measurable overhead, off by default). */
    void enableWallProfiling(bool on) { wallProfiling = on; }

    /**
     * Surface the profiler through the StatsRegistry as group
     * "eventq" (created on first call; see file header for the
     * golden-snapshot rationale). Counters: eventq.executed,
     * eventq.executed.<tag>, eventq.schedules, eventq.maxPending,
     * eventq.heapInserts, eventq.cascades, eventq.cascadedEvents,
     * eventq.poolSlabs, eventq.poolEvents. Scalars:
     * eventq.wallNs.<tag>, eventq.runWallNs, eventq.eventsPerSec.
     */
    void publishStats();

  private:
    // ------------------------------------------------------------
    // Timing wheel: 4 levels x 256 slots, one 8-bit digit each.
    // Level k holds events whose tick agrees with wheelBase on all
    // digits above k; slot index is digit k of the tick. Level 0
    // slots therefore hold exactly one tick each, and a slot's
    // doubly-linked list is in seq order (FIFO) by construction.
    // ------------------------------------------------------------
    static constexpr unsigned levelBits = 8;
    static constexpr unsigned slotsPerLevel = 1u << levelBits;
    static constexpr unsigned nLevels = 4;
    static constexpr unsigned bitmapWords = slotsPerLevel / 64;

    struct Slot
    {
        Event *head = nullptr;
        Event *tail = nullptr;
    };

    /** Overflow entry for events beyond the wheel horizon. */
    struct FarEntry
    {
        Tick when;
        std::uint64_t seq;
        Event *ev;

        bool
        operator>(const FarEntry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    /** Pooled carrier for the lambda API. */
    class CallbackEvent final : public Event
    {
      public:
        Callback cb;
        void
        process() override
        {
            cb();
        }
        const char *name() const override { return "callback"; }
    };

    /** Link @p ev into the wheel or the overflow heap (assumes
     *  when_/seq_ already assigned). */
    void place(Event &ev);

    /** Append to a slot's FIFO list and set its bitmap bit. */
    void
    pushSlot(unsigned lvl, unsigned slot, Event &ev)
    {
        Slot &s = wheel[lvl][slot];
        ev.prev_ = s.tail;
        ev.next_ = nullptr;
        (s.tail ? s.tail->next_ : s.head) = &ev;
        s.tail = &ev;
        ev.where_ = Event::Where::Wheel;
        ev.level_ = std::uint8_t(lvl);
        bits[lvl][slot >> 6] |= 1ull << (slot & 63);
    }

    /** Unlink from a wheel slot, clearing the bit when it empties. */
    void
    unlinkWheel(Event &ev)
    {
        const unsigned lvl = ev.level_;
        const unsigned slot =
            unsigned(ev.when_ >> (levelBits * lvl)) &
            (slotsPerLevel - 1);
        Slot &s = wheel[lvl][slot];
        (ev.prev_ ? ev.prev_->next_ : s.head) = ev.next_;
        (ev.next_ ? ev.next_->prev_ : s.tail) = ev.prev_;
        ev.prev_ = ev.next_ = nullptr;
        if (!s.head)
            bits[lvl][slot >> 6] &= ~(1ull << (slot & 63));
    }

    /** Lowest set slot index of a level's bitmap, or -1. */
    static int
    findFirst(const std::array<std::uint64_t, bitmapWords> &bm)
    {
        for (unsigned w = 0; w < bitmapWords; ++w)
            if (bm[w])
                return int(w * 64 + unsigned(std::countr_zero(bm[w])));
        return -1;
    }

    /** Head event of the earliest wheel tick, cascading outer
     *  levels toward level 0 as the search advances wheelBase.
     *  Never advances the base into a window starting beyond
     *  @p cap — returns null instead (also when the wheel is
     *  empty), meaning "no wheel event due at or before cap".
     *  The cap is what keeps wheelBase <= curTick: popNext() caps
     *  at both its limit and the overflow heap's front, the two
     *  points where control can resume code that may schedule at
     *  any tick >= curTick. */
    Event *wheelPeek(Tick cap);

    /** Redistribute a level>=1 slot after wheelBase enters its
     *  window. */
    void cascade(unsigned lvl, unsigned slot);

    /** Earliest event overall (wheel vs overflow merged by
     *  (when, seq)), popped and unlinked, or null if none is due at
     *  or before @p limit. Advances curTick on success. */
    Event *popNext(Tick limit);

    /** Run one event's process() with profiling, then recycle
     *  pool-owned carriers. */
    void execute(Event &ev);

    // Overflow min-heap by (when, seq). Hand-rolled sifts so every
    // entry move updates its event's heapIdx_, giving O(log n)
    // deschedule of heap residents (std::*_heap can't report where
    // elements land).
    void farSiftUp(std::size_t i);
    void farSiftDown(std::size_t i);
    /** Remove entry @p i, repairing the heap and indices. */
    void farRemoveAt(std::size_t i);

    // Pool.
    CallbackEvent &acquire();
    void release(CallbackEvent &ev);
    void growPool();

    std::array<std::array<Slot, slotsPerLevel>, nLevels> wheel{};
    std::array<std::array<std::uint64_t, bitmapWords>, nLevels>
        bits{};
    /** All wheel-resident events fire at or after this tick; its
     *  digits define slot membership (see place()). Invariant:
     *  wheelBase <= curTick whenever user code can run, so every
     *  legal schedule (when >= now) lands at when >= wheelBase and
     *  the digit comparison in place() is exact. Maintained by
     *  capping the advance in wheelPeek() and resyncing to curTick
     *  in schedule() when the wheel is empty. */
    Tick wheelBase = 0;
    std::size_t nWheel = 0;

    std::vector<FarEntry> far; ///< min-heap by (when, seq)

    Tick curTick = 0;
    Tick lastEvTick = 0; ///< tick of the last executed event
    std::uint64_t nextSeq = 0;
    std::size_t nScheduled = 0;

    static constexpr std::size_t slabEvents = 256;
    std::vector<std::unique_ptr<CallbackEvent[]>> slabs;
    CallbackEvent *freeList = nullptr; ///< threaded through next_

    Profile prof;
    bool wallProfiling = false;
    std::unique_ptr<StatGroup> statGroup; ///< lazy, see publishStats
};

} // namespace dpu::sim

#endif // DPU_SIM_EVENT_QUEUE_HH

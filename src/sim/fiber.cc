#include "sim/fiber.hh"

#include <cstring>

#include "sim/logging.hh"

// AddressSanitizer tracks one shadow stack per thread; every fiber
// switch must be announced or ASan reports false stack-buffer
// overflows / use-after-return across swapcontext. The annotations
// compile away entirely in non-ASan builds.
#if defined(__SANITIZE_ADDRESS__)
#define DPU_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DPU_ASAN_FIBERS 1
#endif
#endif
#ifndef DPU_ASAN_FIBERS
#define DPU_ASAN_FIBERS 0
#endif

#if DPU_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif

// ThreadSanitizer likewise keeps one shadow (clocks, stack) per
// thread of execution; a raw stack switch it cannot see makes it
// attribute one fiber's accesses to another and report phantom
// races. The fiber API lets us announce every switch. The parallel
// board runner keeps each fiber on the one worker thread that owns
// its DPU's partition, so announcing the switches is all TSan needs.
#if defined(__SANITIZE_THREAD__)
#define DPU_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DPU_TSAN_FIBERS 1
#endif
#endif
#ifndef DPU_TSAN_FIBERS
#define DPU_TSAN_FIBERS 0
#endif

#if DPU_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#endif

#if !DPU_FIBER_UCONTEXT

/**
 * Switch stacks: save the callee-saved register state on the current
 * stack, park the stack pointer in *save_sp, and resume from
 * restore_sp. Everything else is caller-saved and spilled by the
 * compiler around the call, so this is the entire context. The
 * frame layout must match the one initFiberStack() fabricates for a
 * fiber's first entry.
 */
extern "C" void dpuFiberSwap(void **save_sp, void *restore_sp);

asm(R"(
        .text
        .align 16
        .globl dpuFiberSwap
        .hidden dpuFiberSwap
        .type dpuFiberSwap, @function
dpuFiberSwap:
        pushq %rbp
        pushq %rbx
        pushq %r12
        pushq %r13
        pushq %r14
        pushq %r15
        subq $8, %rsp
        stmxcsr (%rsp)
        fnstcw 4(%rsp)
        movq %rsp, (%rdi)
        movq %rsi, %rsp
        ldmxcsr (%rsp)
        fldcw 4(%rsp)
        addq $8, %rsp
        popq %r15
        popq %r14
        popq %r13
        popq %r12
        popq %rbx
        popq %rbp
        ret
        .size dpuFiberSwap, .-dpuFiberSwap
)");

#endif // !DPU_FIBER_UCONTEXT

namespace dpu::sim {

namespace {

thread_local Fiber *currentFiber = nullptr;

inline void
asanStartSwitch([[maybe_unused]] void **fake_save,
                [[maybe_unused]] const void *bottom,
                [[maybe_unused]] std::size_t size)
{
#if DPU_ASAN_FIBERS
    __sanitizer_start_switch_fiber(fake_save, bottom, size);
#endif
}

inline void
asanFinishSwitch([[maybe_unused]] void *fake_save,
                 [[maybe_unused]] const void **bottom_old,
                 [[maybe_unused]] std::size_t *size_old)
{
#if DPU_ASAN_FIBERS
    __sanitizer_finish_switch_fiber(fake_save, bottom_old, size_old);
#endif
}

inline void *
tsanCurrentFiber()
{
#if DPU_TSAN_FIBERS
    return __tsan_get_current_fiber();
#else
    return nullptr;
#endif
}

inline void
tsanSwitchTo([[maybe_unused]] void *fiber)
{
#if DPU_TSAN_FIBERS
    __tsan_switch_to_fiber(fiber, 0);
#endif
}

} // namespace

Fiber::Fiber(std::function<void()> fn, std::size_t stack_size)
    : body(std::move(fn)), stack(stack_size)
{
}

Fiber::~Fiber()
{
    // A fiber destroyed mid-flight simply abandons its stack; the
    // simulation tear-down path (Soc::~Soc) only does this after the
    // event queue has stopped, so no callbacks can resume it again.
#if DPU_TSAN_FIBERS
    if (tsanFiber)
        __tsan_destroy_fiber(tsanFiber);
#endif
}

Fiber *
Fiber::current()
{
    return currentFiber;
}

#if !DPU_FIBER_UCONTEXT

void *
Fiber::initFiberStack()
{
    // Build the frame dpuFiberSwap's restore path expects, so the
    // first switch-in "returns" into trampoline():
    //   sp+0   mxcsr | x87 control word (inherited from the creator)
    //   sp+8   r15..rbp (six registers, zeroed)
    //   sp+56  return address = trampoline
    // The SysV ABI wants rsp % 16 == 8 at function entry, i.e. the
    // return-address slot itself 16-aligned... which sp+56 is when
    // sp is aligned down from a 16-byte boundary minus 72.
    std::uintptr_t top =
        reinterpret_cast<std::uintptr_t>(stack.data() + stack.size());
    top &= ~std::uintptr_t(15);
    std::uint8_t *frame = reinterpret_cast<std::uint8_t *>(top) - 72;
    std::memset(frame, 0, 72);
    void (*entry)() = &Fiber::trampoline;
    std::memcpy(frame + 56, &entry, sizeof entry);
    std::uint32_t mxcsr;
    std::uint16_t fcw;
    asm("stmxcsr %0" : "=m"(mxcsr));
    asm("fnstcw %0" : "=m"(fcw));
    std::memcpy(frame + 0, &mxcsr, sizeof mxcsr);
    std::memcpy(frame + 4, &fcw, sizeof fcw);
    return frame;
}

#endif // !DPU_FIBER_UCONTEXT

void
Fiber::trampoline()
{
    Fiber *f = currentFiber;
    // First entry: no fake stack to restore, but learn the
    // scheduler's stack bounds for the switches back out.
    asanFinishSwitch(nullptr, &f->schedStackBottom,
                     &f->schedStackSize);
    f->body();
    f->done = true;
    // Return to whoever resumed us for the last time. nullptr frees
    // this (dying) fiber's ASan fake stack.
    asanStartSwitch(nullptr, f->schedStackBottom, f->schedStackSize);
    tsanSwitchTo(f->tsanParent);
#if DPU_FIBER_UCONTEXT
    swapcontext(&f->ctx, &f->returnCtx);
#else
    dpuFiberSwap(&f->fiberSp, f->schedSp);
#endif
}

void
Fiber::resume()
{
    sim_assert(!done, "resuming a finished fiber");
    sim_assert(currentFiber == nullptr,
               "nested fiber resume is not supported");
    if (!started) {
        started = true;
#if DPU_FIBER_UCONTEXT
        getcontext(&ctx);
        ctx.uc_stack.ss_sp = stack.data();
        ctx.uc_stack.ss_size = stack.size();
        ctx.uc_link = nullptr;
        makecontext(&ctx, reinterpret_cast<void (*)()>(&trampoline), 0);
#else
        fiberSp = initFiberStack();
#endif
#if DPU_TSAN_FIBERS
        tsanFiber = __tsan_create_fiber(0);
#endif
    }
    currentFiber = this;
    void *sched_fake = nullptr;
    asanStartSwitch(&sched_fake, stack.data(), stack.size());
    tsanParent = tsanCurrentFiber();
    tsanSwitchTo(tsanFiber);
#if DPU_FIBER_UCONTEXT
    swapcontext(&returnCtx, &ctx);
#else
    dpuFiberSwap(&schedSp, fiberSp);
#endif
    asanFinishSwitch(sched_fake, nullptr, nullptr);
    currentFiber = nullptr;
}

void
Fiber::yield()
{
    sim_assert(currentFiber == this, "yield from outside the fiber");
    currentFiber = nullptr;
    void *fiber_fake = nullptr;
    asanStartSwitch(&fiber_fake, schedStackBottom, schedStackSize);
    tsanSwitchTo(tsanParent);
#if DPU_FIBER_UCONTEXT
    swapcontext(&ctx, &returnCtx);
#else
    dpuFiberSwap(&fiberSp, schedSp);
#endif
    asanFinishSwitch(fiber_fake, &schedStackBottom, &schedStackSize);
    currentFiber = this;
}

} // namespace dpu::sim

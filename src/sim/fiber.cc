#include "sim/fiber.hh"

#include "sim/logging.hh"

namespace dpu::sim {

namespace {
thread_local Fiber *currentFiber = nullptr;
} // namespace

Fiber::Fiber(std::function<void()> fn, std::size_t stack_size)
    : body(std::move(fn)), stack(stack_size)
{
}

Fiber::~Fiber()
{
    // A fiber destroyed mid-flight simply abandons its stack; the
    // simulation tear-down path (Soc::~Soc) only does this after the
    // event queue has stopped, so no callbacks can resume it again.
}

Fiber *
Fiber::current()
{
    return currentFiber;
}

void
Fiber::trampoline()
{
    Fiber *f = currentFiber;
    f->body();
    f->done = true;
    // Return to whoever resumed us for the last time.
    swapcontext(&f->ctx, &f->returnCtx);
}

void
Fiber::resume()
{
    sim_assert(!done, "resuming a finished fiber");
    sim_assert(currentFiber == nullptr,
               "nested fiber resume is not supported");
    if (!started) {
        started = true;
        getcontext(&ctx);
        ctx.uc_stack.ss_sp = stack.data();
        ctx.uc_stack.ss_size = stack.size();
        ctx.uc_link = nullptr;
        makecontext(&ctx, reinterpret_cast<void (*)()>(&trampoline), 0);
    }
    currentFiber = this;
    swapcontext(&returnCtx, &ctx);
    currentFiber = nullptr;
}

void
Fiber::yield()
{
    sim_assert(currentFiber == this, "yield from outside the fiber");
    currentFiber = nullptr;
    swapcontext(&ctx, &returnCtx);
    currentFiber = this;
}

} // namespace dpu::sim

#include "sim/fiber.hh"

#include "sim/logging.hh"

// AddressSanitizer tracks one shadow stack per thread; every fiber
// switch must be announced or ASan reports false stack-buffer
// overflows / use-after-return across swapcontext. The annotations
// compile away entirely in non-ASan builds.
#if defined(__SANITIZE_ADDRESS__)
#define DPU_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DPU_ASAN_FIBERS 1
#endif
#endif
#ifndef DPU_ASAN_FIBERS
#define DPU_ASAN_FIBERS 0
#endif

#if DPU_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif

namespace dpu::sim {

namespace {

thread_local Fiber *currentFiber = nullptr;

inline void
asanStartSwitch([[maybe_unused]] void **fake_save,
                [[maybe_unused]] const void *bottom,
                [[maybe_unused]] std::size_t size)
{
#if DPU_ASAN_FIBERS
    __sanitizer_start_switch_fiber(fake_save, bottom, size);
#endif
}

inline void
asanFinishSwitch([[maybe_unused]] void *fake_save,
                 [[maybe_unused]] const void **bottom_old,
                 [[maybe_unused]] std::size_t *size_old)
{
#if DPU_ASAN_FIBERS
    __sanitizer_finish_switch_fiber(fake_save, bottom_old, size_old);
#endif
}

} // namespace

Fiber::Fiber(std::function<void()> fn, std::size_t stack_size)
    : body(std::move(fn)), stack(stack_size)
{
}

Fiber::~Fiber()
{
    // A fiber destroyed mid-flight simply abandons its stack; the
    // simulation tear-down path (Soc::~Soc) only does this after the
    // event queue has stopped, so no callbacks can resume it again.
}

Fiber *
Fiber::current()
{
    return currentFiber;
}

void
Fiber::trampoline()
{
    Fiber *f = currentFiber;
    // First entry: no fake stack to restore, but learn the
    // scheduler's stack bounds for the switches back out.
    asanFinishSwitch(nullptr, &f->schedStackBottom,
                     &f->schedStackSize);
    f->body();
    f->done = true;
    // Return to whoever resumed us for the last time. nullptr frees
    // this (dying) fiber's ASan fake stack.
    asanStartSwitch(nullptr, f->schedStackBottom, f->schedStackSize);
    swapcontext(&f->ctx, &f->returnCtx);
}

void
Fiber::resume()
{
    sim_assert(!done, "resuming a finished fiber");
    sim_assert(currentFiber == nullptr,
               "nested fiber resume is not supported");
    if (!started) {
        started = true;
        getcontext(&ctx);
        ctx.uc_stack.ss_sp = stack.data();
        ctx.uc_stack.ss_size = stack.size();
        ctx.uc_link = nullptr;
        makecontext(&ctx, reinterpret_cast<void (*)()>(&trampoline), 0);
    }
    currentFiber = this;
    void *sched_fake = nullptr;
    asanStartSwitch(&sched_fake, stack.data(), stack.size());
    swapcontext(&returnCtx, &ctx);
    asanFinishSwitch(sched_fake, nullptr, nullptr);
    currentFiber = nullptr;
}

void
Fiber::yield()
{
    sim_assert(currentFiber == this, "yield from outside the fiber");
    currentFiber = nullptr;
    void *fiber_fake = nullptr;
    asanStartSwitch(&fiber_fake, schedStackBottom, schedStackSize);
    swapcontext(&ctx, &returnCtx);
    asanFinishSwitch(fiber_fake, &schedStackBottom, &schedStackSize);
    currentFiber = this;
}

} // namespace dpu::sim

/**
 * @file
 * FaultPlane implementation: spec parsing, deterministic firing
 * decisions, and the seeded chaos-spec generator.
 */

#include "sim/fault.hh"

#include <cstdio>
#include <cstdlib>

#include "sim/domain.hh"
#include "sim/logging.hh"

namespace dpu::sim {

namespace {

/** Spec names, indexed by FaultSite. */
const char *const siteNames[nFaultSites] = {
    "dms.wedge",      "dms.descError", "ate.drop",
    "ate.delay",      "mbc.drop",      "core.stall",
    "mem.degrade",    "link.drop",     "link.delay",
    "rack.netDrop",   "rack.netDelay", "rack.boardDown",
    "rack.boardCrash",
};

bool
parseSite(const std::string &name, FaultSite &out)
{
    for (unsigned i = 0; i < nFaultSites; ++i) {
        if (name == siteNames[i]) {
            out = FaultSite(i);
            return true;
        }
    }
    return false;
}

/** Split @p s on @p sep, dropping empty pieces. */
std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t end = s.find(sep, start);
        if (end == std::string::npos)
            end = s.size();
        if (end > start)
            out.push_back(s.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

std::uint64_t
parseU64(const std::string &rule, const std::string &v)
{
    char *end = nullptr;
    // Route through strtod so window keys accept "2e9" notation.
    double d = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0' || d < 0)
        fatal("fault spec '%s': bad numeric value '%s'", rule.c_str(),
              v.c_str());
    return std::uint64_t(d);
}

double
parseF64(const std::string &rule, const std::string &v)
{
    char *end = nullptr;
    double d = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0')
        fatal("fault spec '%s': bad numeric value '%s'", rule.c_str(),
              v.c_str());
    return d;
}

} // namespace

const char *
faultSiteName(FaultSite site)
{
    return siteNames[unsigned(site)];
}

void
FaultPlane::seedDomain(FaultRule &r, unsigned d)
{
    // Domain 0 replays the pre-domain single stream exactly; higher
    // domains split off with a golden-ratio stride so no two chips
    // share a sequence.
    r.dom[d].rng = Rng(d == 0 ? r.ruleSeed
                              : r.ruleSeed +
                                    0x9e3779b97f4a7c15ull * d);
}

void
FaultPlane::ensureDomains(unsigned n)
{
    if (n <= nDomains) {
        return;
    }
    for (auto &r : rules) {
        const unsigned have = unsigned(r.dom.size());
        r.dom.resize(n);
        for (unsigned d = have; d < n; ++d)
            seedDomain(r, d);
    }
    domCounts.resize(n);
    nDomains = n;
}

void
FaultPlane::foldStats()
{
    if (!stats)
        return;
    for (auto &dc : domCounts) {
        for (unsigned s = 0; s < nFaultSites; ++s) {
            if (dc.pending[s]) {
                stats->counter(siteNames[s]) += dc.pending[s];
                dc.pending[s] = 0;
            }
        }
    }
}

void
FaultPlane::reset()
{
    rules.clear();
    memRules = 0;
    specStr.clear();
    // The domain count is sticky (a live Board keeps its sizing);
    // the tallies are not.
    domCounts.assign(nDomains, DomainCounts{});
    stats.reset();
}

void
FaultPlane::configure(const std::string &spec, std::uint64_t seed)
{
    reset();
    if (spec.empty())
        return;

    for (const std::string &part : split(spec, ';')) {
        FaultRule r;
        const std::size_t at = part.find('@');
        const std::string siteName = part.substr(0, at);
        if (!parseSite(siteName, r.site))
            fatal("fault spec '%s': unknown site '%s'", part.c_str(),
                  siteName.c_str());

        std::uint64_t ruleSeed = seed ^ (0x6661756c74ull + rules.size());
        if (at != std::string::npos) {
            for (const std::string &kv : split(part.substr(at + 1), ',')) {
                const std::size_t eq = kv.find('=');
                if (eq == std::string::npos)
                    fatal("fault spec '%s': key '%s' needs a value",
                          part.c_str(), kv.c_str());
                const std::string k = kv.substr(0, eq);
                const std::string v = kv.substr(eq + 1);
                if (k == "p") {
                    r.p = parseF64(part, v);
                    if (r.p < 0.0 || r.p > 1.0)
                        fatal("fault spec '%s': p=%s out of [0,1]",
                              part.c_str(), v.c_str());
                } else if (k == "nth") {
                    r.nth = parseU64(part, v);
                } else if (k == "from") {
                    r.from = parseU64(part, v);
                } else if (k == "to") {
                    r.to = parseU64(part, v);
                } else if (k == "max") {
                    r.max = parseU64(part, v);
                } else if (k == "mag") {
                    r.mag = parseU64(part, v);
                } else if (k == "unit") {
                    r.unit = int(parseF64(part, v));
                } else if (k == "seed") {
                    ruleSeed = parseU64(part, v);
                } else {
                    fatal("fault spec '%s': unknown key '%s'",
                          part.c_str(), k.c_str());
                }
            }
        }
        r.ruleSeed = ruleSeed;
        r.dom.resize(nDomains);
        for (unsigned d = 0; d < nDomains; ++d)
            seedDomain(r, d);
        if (r.site == FaultSite::MemDegrade) {
            // A degrade window needs a divisor; default to 4x.
            if (r.mag < 2)
                r.mag = 4;
            ++memRules;
        }
        rules.push_back(r);
    }

    specStr = spec;
    stats = std::make_unique<StatGroup>("fault");
    stats->addFlushHook([this] { foldStats(); });
}

bool
FaultPlane::fires(FaultSite site, Tick now, int unit,
                  std::uint64_t *magnitude)
{
    const unsigned d = currentDomain();
    sim_assert(d < nDomains,
               "fault opportunity in unsized domain %u (call "
               "ensureDomains)",
               d);
    for (auto &r : rules) {
        if (r.site != site)
            continue;
        if (r.unit >= 0 && unit >= 0 && r.unit != unit)
            continue;
        if (now < r.from || now >= r.to)
            continue;
        FaultRule::DomainState &ds = r.dom[d];
        ++ds.seen;
        if (ds.fired >= r.max)
            continue;
        bool hit;
        if (r.nth)
            hit = ds.seen % r.nth == 0;
        else
            hit = r.p >= 1.0 || ds.rng.uniform() < r.p;
        if (!hit)
            continue;
        ++ds.fired;
        ++domCounts[d].counts[unsigned(site)];
        ++domCounts[d].pending[unsigned(site)];
        if (magnitude)
            *magnitude = r.mag;
        return true;
    }
    return false;
}

std::uint64_t
FaultPlane::memBwDivisor(Tick now)
{
    const unsigned d = currentDomain();
    sim_assert(d < nDomains,
               "fault opportunity in unsized domain %u (call "
               "ensureDomains)",
               d);
    std::uint64_t factor = 1;
    for (auto &r : rules) {
        if (r.site != FaultSite::MemDegrade)
            continue;
        if (now < r.from || now >= r.to)
            continue;
        factor *= r.mag;
        // Count degraded bursts; budget caps window length, not
        // bursts, so `max` is ignored here.
        ++r.dom[d].fired;
        ++domCounts[d].counts[unsigned(FaultSite::MemDegrade)];
    }
    if (factor > 1)
        ++domCounts[d].pending[unsigned(FaultSite::MemDegrade)];
    return factor;
}

std::uint64_t
FaultPlane::injectedTotal() const
{
    std::uint64_t total = 0;
    for (const auto &dc : domCounts)
        for (auto c : dc.counts)
            total += c;
    return total;
}

std::string
FaultPlane::randomSpec(std::uint64_t seed)
{
    // Seed-deterministic chaos schedule: pick 1-3 fault rules with
    // bounded rates so a run degrades without flat-lining. Magnitudes
    // and windows come from the same Rng, so the schedule is a pure
    // function of the seed.
    Rng rng(seed * 0x9e3779b97f4a7c15ull + 0xc4a05ull);
    const unsigned nRules = 1 + unsigned(rng.below(3));
    std::string spec;
    for (unsigned i = 0; i < nRules; ++i) {
        if (!spec.empty())
            spec += ';';
        char buf[128];
        switch (rng.below(7)) {
        case 0: // rare permanent DMAC wedge
            std::snprintf(buf, sizeof(buf), "dms.wedge@nth=%llu,max=1",
                          (unsigned long long)(20 + rng.below(60)));
            break;
        case 1: // sporadic descriptor error completions
            std::snprintf(buf, sizeof(buf),
                          "dms.descError@p=0.0%llu,max=%llu",
                          (unsigned long long)(1 + rng.below(9)),
                          (unsigned long long)(2 + rng.below(6)));
            break;
        case 2: // lost RPC requests (recovered by retry)
            std::snprintf(buf, sizeof(buf), "ate.drop@p=0.0%llu,max=%llu",
                          (unsigned long long)(1 + rng.below(9)),
                          (unsigned long long)(2 + rng.below(8)));
            break;
        case 3: // jittered RPC delivery, 1-4 us extra
            std::snprintf(buf, sizeof(buf), "ate.delay@p=0.1,mag=%llu",
                          (unsigned long long)((1 + rng.below(4)) *
                                               1000000ull));
            break;
        case 4: // lost mailbox messages (recovered by requeue)
            std::snprintf(buf, sizeof(buf), "mbc.drop@nth=%llu,max=%llu",
                          (unsigned long long)(15 + rng.below(40)),
                          (unsigned long long)(1 + rng.below(3)));
            break;
        case 5: // finite worker stalls, 100-900 us of cycles
            std::snprintf(buf, sizeof(buf),
                          "core.stall@nth=%llu,max=2,mag=%llu",
                          (unsigned long long)(5 + rng.below(20)),
                          (unsigned long long)((1 + rng.below(9)) *
                                               80000ull));
            break;
        default: // degraded DDR bandwidth window
            std::snprintf(buf, sizeof(buf),
                          "mem.degrade@from=%llu,to=%llu,mag=%llu",
                          (unsigned long long)(rng.below(4) * 500000000ull),
                          (unsigned long long)(2000000000ull +
                                               rng.below(4) *
                                                   1000000000ull),
                          (unsigned long long)(2 + rng.below(7)));
            break;
        }
        spec += buf;
    }
    return spec;
}

FaultPlane &
faultPlane()
{
    static FaultPlane plane;
    return plane;
}

} // namespace dpu::sim

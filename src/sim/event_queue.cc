/**
 * @file
 * Event-kernel internals: timing-wheel cascade and search, the
 * overflow heap, the callback-event slab pool, and the
 * self-profiler's StatsRegistry surface.
 */

#include "sim/event_queue.hh"

#include <chrono>
#include <string>

#include "sim/stats.hh"

namespace dpu::sim {

namespace {

using WallClock = std::chrono::steady_clock;

double
elapsedNs(WallClock::time_point t0)
{
    return std::chrono::duration<double, std::nano>(
               WallClock::now() - t0)
        .count();
}

} // namespace

EventQueue::EventQueue() = default;

EventQueue::~EventQueue()
{
    // Sever pending events from the dying queue so that member
    // events of longer-lived objects (and pooled events inside our
    // own slabs) do not try to deschedule themselves from freed
    // storage in their destructors.
    for (auto &level : wheel) {
        for (Slot &s : level) {
            for (Event *ev = s.head; ev;) {
                Event *next = ev->next_;
                ev->queue_ = nullptr;
                ev->where_ = Event::Where::None;
                ev->prev_ = ev->next_ = nullptr;
                ev = next;
            }
        }
    }
    for (FarEntry &e : far) {
        e.ev->queue_ = nullptr;
        e.ev->where_ = Event::Where::None;
    }
}

// ----------------------------------------------------------------
// Timing wheel
// ----------------------------------------------------------------

void
EventQueue::place(Event &ev)
{
    // Level k holds ticks that agree with wheelBase on every digit
    // above k; equivalently, when XOR wheelBase fits in (k+1)
    // digits. Everything farther overflows to the (when, seq) heap.
    const Tick w = ev.when_;
    sim_assert(w >= wheelBase,
               "placing event '%s' behind the wheel base "
               "(%llu < %llu)",
               ev.name(), (unsigned long long)w,
               (unsigned long long)wheelBase);
    const Tick x = w ^ wheelBase;
    unsigned lvl;
    if (x < (Tick(1) << levelBits))
        lvl = 0;
    else if (x < (Tick(1) << (2 * levelBits)))
        lvl = 1;
    else if (x < (Tick(1) << (3 * levelBits)))
        lvl = 2;
    else if (x < (Tick(1) << (4 * levelBits)))
        lvl = 3;
    else {
        ev.heapIdx_ = far.size();
        far.push_back({w, ev.seq_, &ev});
        ev.where_ = Event::Where::Heap;
        farSiftUp(far.size() - 1);
        ++prof.heapInserts;
        return;
    }
    pushSlot(lvl, unsigned(w >> (levelBits * lvl)) &
                      (slotsPerLevel - 1),
             ev);
    ++nWheel;
}

Event *
EventQueue::wheelPeek(Tick cap)
{
    if (nWheel == 0)
        return nullptr;
    for (;;) {
        // Level 0 slots hold exactly one tick each and are FIFO
        // lists, so the lowest set slot's head is the wheel's
        // earliest (when, seq).
        const int slot = findFirst(bits[0]);
        if (slot >= 0)
            return wheel[0][unsigned(slot)].head;

        // Advance the wheel base to the next populated window of
        // the nearest outer level and pull that slot inward. Slots
        // behind the base are empty by construction, so the lowest
        // set bit is always the next window in time.
        unsigned lvl = 1;
        for (; lvl < nLevels; ++lvl) {
            const int j = findFirst(bits[lvl]);
            if (j < 0)
                continue;
            const unsigned shift = levelBits * lvl;
            const Tick windowMask =
                (Tick(slotsPerLevel) << shift) - 1;
            const Tick windowStart =
                (wheelBase & ~windowMask) |
                (Tick(unsigned(j)) << shift);
            // windowStart lower-bounds every wheel event (all live
            // in or beyond this window). Entering a window past the
            // cap would strand the base above a tick the caller can
            // stop at — and schedule from — so report "nothing due
            // by cap" and leave the base untouched.
            if (windowStart > cap)
                return nullptr;
            wheelBase = windowStart;
            cascade(lvl, unsigned(j));
            break;
        }
        sim_assert(lvl < nLevels,
                   "wheel bitmaps empty with %zu events resident",
                   nWheel);
    }
}

void
EventQueue::cascade(unsigned lvl, unsigned slot)
{
    Slot &s = wheel[lvl][slot];
    Event *ev = s.head;
    s.head = s.tail = nullptr;
    bits[lvl][slot >> 6] &= ~(1ull << (slot & 63));
    ++prof.cascades;
    // Walking in list order preserves seq order per target slot:
    // every event already resident sorts before any later direct
    // insert, because direct inserts into a window only start once
    // the base has entered it — i.e. after this cascade.
    while (ev) {
        Event *next = ev->next_;
        ev->prev_ = ev->next_ = nullptr;
        --nWheel;
        place(*ev); // recomputes the level against the new base
        ++prof.cascadedEvents;
        ev = next;
    }
}

// ----------------------------------------------------------------
// Execution
// ----------------------------------------------------------------

Event *
EventQueue::popNext(Tick limit)
{
    // Cap the base advance at both the run bound and the heap
    // front: after stopping at either, code may schedule anywhere
    // at or after curTick, so the base must not have moved past
    // them (see the wheelBase invariant in the header).
    Tick cap = limit;
    if (!far.empty() && far.front().when < cap)
        cap = far.front().when;
    Event *wev = wheelPeek(cap);
    bool useFar = false;
    if (!far.empty()) {
        const FarEntry &h = far.front();
        // Merge the two structures on exact (when, seq): same-tick
        // FIFO order holds even when one tick's events straddle the
        // wheel horizon. A null wev means no wheel event is due at
        // or before cap, so the heap front (== cap when due) wins.
        if (!wev || h.when < wev->when_ ||
            (h.when == wev->when_ && h.seq < wev->seq_))
            useFar = true;
    }

    Event *ev;
    if (useFar) {
        if (far.front().when > limit)
            return nullptr;
        ev = far.front().ev;
        farRemoveAt(0);
    } else {
        if (!wev || wev->when_ > limit)
            return nullptr;
        ev = wev;
        unlinkWheel(*ev);
        --nWheel;
    }

    ev->where_ = Event::Where::None;
    ev->queue_ = nullptr;
    --nScheduled;
    curTick = ev->when_;
    lastEvTick = curTick;
    return ev;
}

void
EventQueue::execute(Event &ev)
{
    const unsigned t = unsigned(ev.tag_);
    // Read the recycle flag before process(): the callback may
    // schedule, and a pool-owned carrier must go back even if it
    // rescheduled other work.
    const bool owned = ev.poolOwned_;
    ++prof.executed[t];
    if (wallProfiling) {
        const auto t0 = WallClock::now();
        ev.process();
        prof.wallNs[t] += elapsedNs(t0);
    } else {
        ev.process();
    }
    if (owned)
        release(static_cast<CallbackEvent &>(ev));
}

std::uint64_t
EventQueue::runWindow(Tick end)
{
    std::uint64_t executed = 0;
    const auto t0 = wallProfiling ? WallClock::now()
                                  : WallClock::time_point{};
    while (Event *ev = popNext(end)) {
        execute(*ev);
        ++executed;
    }
    if (wallProfiling)
        prof.runWallNs += elapsedNs(t0);
    return executed;
}

std::uint64_t
EventQueue::run(Tick limit)
{
    const std::uint64_t executed = runWindow(limit);
    // A bounded run always lands exactly on its bound — whether the
    // queue drained or events remain beyond it — so quantum-stepped
    // callers and stats windows see now() == limit, never a clock
    // stuck at the last executed event.
    if (limit != maxTick && curTick < limit)
        curTick = limit;
    return executed;
}

Tick
EventQueue::nextDueLowerBound() const
{
    Tick best = maxTick;
    if (!far.empty())
        best = far.front().when;
    if (nWheel == 0)
        return best;
    // The first non-empty level lower-bounds every deeper one: a
    // level-k resident differs from the base in digit k and agrees
    // above, and ticks never precede the base, so it fires before
    // anything parked at level k+1.
    for (unsigned lvl = 0; lvl < nLevels; ++lvl) {
        const int s = findFirst(bits[lvl]);
        if (s < 0)
            continue;
        Tick lb;
        if (lvl == 0) {
            // Level-0 slots hold exactly one tick: exact.
            lb = (wheelBase & ~Tick(slotsPerLevel - 1)) |
                 Tick(unsigned(s));
        } else {
            const unsigned shift = levelBits * lvl;
            const Tick windowMask =
                (Tick(slotsPerLevel) << shift) - 1;
            lb = (wheelBase & ~windowMask) |
                 (Tick(unsigned(s)) << shift);
        }
        if (lb < best)
            best = lb;
        break;
    }
    return best;
}

bool
EventQueue::step()
{
    Event *ev = popNext(maxTick);
    if (!ev)
        return false;
    execute(*ev);
    return true;
}

void
EventQueue::deschedule(Event &ev)
{
    sim_assert(ev.queue_ == this &&
                   ev.where_ != Event::Where::None,
               "descheduling event '%s' that is not scheduled here",
               ev.name());
    if (ev.where_ == Event::Where::Wheel) {
        unlinkWheel(ev);
        --nWheel;
    } else {
        sim_assert(ev.heapIdx_ < far.size() &&
                       far[ev.heapIdx_].ev == &ev,
                   "heap entry missing for '%s'", ev.name());
        farRemoveAt(ev.heapIdx_);
    }
    ev.where_ = Event::Where::None;
    ev.queue_ = nullptr;
    --nScheduled;
    if (ev.poolOwned_)
        release(static_cast<CallbackEvent &>(ev));
}

// ----------------------------------------------------------------
// Overflow heap: min-heap by (when, seq) with index maintenance so
// heap residents deschedule in O(log n).
// ----------------------------------------------------------------

void
EventQueue::farSiftUp(std::size_t i)
{
    const FarEntry e = far[i];
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!(far[parent] > e))
            break;
        far[i] = far[parent];
        far[i].ev->heapIdx_ = i;
        i = parent;
    }
    far[i] = e;
    far[i].ev->heapIdx_ = i;
}

void
EventQueue::farSiftDown(std::size_t i)
{
    const FarEntry e = far[i];
    const std::size_t n = far.size();
    for (;;) {
        std::size_t child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n && far[child] > far[child + 1])
            ++child;
        if (!(e > far[child]))
            break;
        far[i] = far[child];
        far[i].ev->heapIdx_ = i;
        i = child;
    }
    far[i] = e;
    far[i].ev->heapIdx_ = i;
}

void
EventQueue::farRemoveAt(std::size_t i)
{
    const FarEntry last = far.back();
    far.pop_back();
    if (i == far.size())
        return;
    far[i] = last;
    far[i].ev->heapIdx_ = i;
    // The displaced tail can belong either above or below slot i;
    // one of the two sifts is a no-op.
    farSiftDown(i);
    farSiftUp(last.ev->heapIdx_);
}

// ----------------------------------------------------------------
// Callback-event pool
// ----------------------------------------------------------------

EventQueue::CallbackEvent &
EventQueue::acquire()
{
    if (!freeList)
        growPool();
    CallbackEvent *ev = freeList;
    freeList = static_cast<CallbackEvent *>(ev->next_);
    ev->next_ = nullptr;
    ev->poolOwned_ = true;
    return *ev;
}

void
EventQueue::release(CallbackEvent &ev)
{
    ev.cb.reset(); // drop captured resources eagerly
    ev.poolOwned_ = false;
    ev.tag_ = EvTag::Generic;
    ev.next_ = freeList;
    freeList = &ev;
}

void
EventQueue::growPool()
{
    auto slab = std::make_unique<CallbackEvent[]>(slabEvents);
    for (std::size_t i = 0; i < slabEvents; ++i) {
        slab[i].next_ = freeList;
        freeList = &slab[i];
    }
    slabs.push_back(std::move(slab));
    ++prof.poolSlabs;
    prof.poolEvents += slabEvents;
}

// ----------------------------------------------------------------
// Self-profiler surface
// ----------------------------------------------------------------

void
EventQueue::publishStats()
{
    if (!statGroup)
        statGroup = std::make_unique<StatGroup>("eventq");
    StatGroup &g = *statGroup;
    g.counter("executed") = prof.totalExecuted();
    for (unsigned t = 0; t < nEvTags; ++t) {
        const std::string tag = evTagName(EvTag(t));
        g.counter("executed." + tag) = prof.executed[t];
        g.scalar("wallNs." + tag) = prof.wallNs[t];
    }
    g.counter("schedules") = prof.schedules;
    g.counter("maxPending") = prof.maxPending;
    g.counter("pending") = nScheduled;
    g.counter("heapInserts") = prof.heapInserts;
    g.counter("cascades") = prof.cascades;
    g.counter("cascadedEvents") = prof.cascadedEvents;
    g.counter("poolSlabs") = prof.poolSlabs;
    g.counter("poolEvents") = prof.poolEvents;
    g.scalar("runWallNs") = prof.runWallNs;
    g.scalar("eventsPerSec") =
        prof.runWallNs > 0
            ? double(prof.totalExecuted()) / (prof.runWallNs * 1e-9)
            : 0.0;
}

} // namespace dpu::sim

/**
 * @file
 * Intrusive simulation events.
 *
 * An Event is a schedulable object with a fixed vtable slot
 * (process()) and intrusive links, so scheduling it costs no
 * allocation: the queue threads the object itself onto a timing
 * wheel slot or the overflow heap. Long-lived simulation blocks
 * embed their recurring events as members (a dpCore's wakeup, a
 * DMAD channel's pipeline step) and re-schedule the same object
 * forever.
 *
 * Every event carries a subsystem tag (EvTag) so the event-kernel
 * self-profiler can attribute executed-event counts and wall time
 * per block; see EventQueue::publishStats().
 */

#ifndef DPU_SIM_EVENT_HH
#define DPU_SIM_EVENT_HH

#include <cstddef>
#include <cstdint>

#include "sim/inplace_fn.hh"
#include "sim/types.hh"

namespace dpu::sim {

class EventQueue;

/** Subsystem attribution for the event-kernel self-profiler. */
enum class EvTag : std::uint8_t {
    Generic = 0, ///< untagged / test events
    Core,        ///< dpCore wakeups and sync points
    Dms,         ///< DMAD/DMAC/DMAX pipeline steps
    Ate,         ///< ATE message hops and RPC completions
    Mbc,         ///< mailbox deliveries
    Mem,         ///< cache / DDR transactions
    Soc,         ///< chip-level glue
    Host,        ///< A9 host complex & offload scheduler
    Link,        ///< inter-DPU board fabric deliveries
};

/** Number of EvTag values (profiler array sizing). */
constexpr unsigned nEvTags = 9;

/** Lower-case tag name ("core", "dms", ...) for stat keys. */
const char *evTagName(EvTag t);

/**
 * Base class for schedulable events. Instances are intrusively
 * linked into the queue, so an Event may be scheduled on at most
 * one queue at a time, and at most once; use reschedule() or a
 * second Event member for overlapping occurrences. Destroying a
 * scheduled event deschedules it first.
 */
class Event
{
  public:
    explicit Event(EvTag tag = EvTag::Generic) : tag_(tag) {}
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** The event's action, run when simulated time reaches when().
     *  The event is already unlinked, so process() may freely
     *  re-schedule the same object (periodic patterns). */
    virtual void process() = 0;

    /** Debug/trace name. */
    virtual const char *name() const { return "event"; }

    /** Scheduled firing time (valid while scheduled()). */
    Tick when() const { return when_; }

    /** True while linked on a queue. */
    bool scheduled() const { return where_ != Where::None; }

    EvTag tag() const { return tag_; }

  private:
    friend class EventQueue;

    enum class Where : std::uint8_t { None, Wheel, Heap };

    EventQueue *queue_ = nullptr; ///< owning queue while scheduled
    Event *prev_ = nullptr;       ///< wheel slot list links
    Event *next_ = nullptr;
    Tick when_ = 0;
    std::uint64_t seq_ = 0; ///< same-tick FIFO order, queue-global
    std::size_t heapIdx_ = 0; ///< overflow-heap slot while Where::Heap
    Where where_ = Where::None;
    std::uint8_t level_ = 0;  ///< wheel level while Where::Wheel
    bool poolOwned_ = false;  ///< queue returns it to the pool
  protected:
    EvTag tag_;
};

/**
 * A self-re-arming event for per-cycle (or per-anything) tickers:
 * fires fn every period ticks from start() until cancel(), reusing
 * the same object — no allocator or pool traffic per tick.
 */
class PeriodicEvent : public Event
{
  public:
    using Fn = InplaceFn<80>;

    PeriodicEvent(EventQueue &eq, Tick period, Fn fn,
                  EvTag tag = EvTag::Generic);
    ~PeriodicEvent() override;

    /** Arm; first firing at absolute tick @p first (>= now). */
    void start(Tick first);

    /** Arm; first firing @p delta ticks from now. */
    void startIn(Tick delta);

    /** Disarm; safe to call when idle. A cancelled ticker can be
     *  re-armed with start()/startIn(). */
    void cancel();

    /** True between start() and cancel(). */
    bool active() const { return armed; }

    Tick period() const { return periodTicks; }

    /** Change the period; applies from the next re-arm on. */
    void setPeriod(Tick p) { periodTicks = p; }

    void process() final;
    const char *name() const override { return "periodic"; }

  private:
    EventQueue &eq;
    Tick periodTicks;
    Fn fn;
    bool armed = false;
};

} // namespace dpu::sim

#endif // DPU_SIM_EVENT_HH

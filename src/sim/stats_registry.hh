/**
 * @file
 * Process-wide stats snapshot / diff facility.
 *
 * Every StatGroup registers itself here on construction, so a test
 * can freeze the whole simulator's statistics into a StatsSnapshot —
 * a flat "group.stat" -> value map — then serialize it to JSON,
 * reload a checked-in golden copy, and diff the two with per-stat
 * tolerances. This is the backbone of the golden-stats regression
 * suite in tests/soc: the simulator's arithmetic is integer-exact,
 * so counters compare exactly by default while derived scalars get a
 * small relative tolerance.
 *
 * Groups with duplicate names (a 16nm chip has one "dmac" group per
 * complex) are disambiguated in registration order as "dmac",
 * "dmac#1", "dmac#2", ... — registration order is construction
 * order, which is deterministic.
 */

#ifndef DPU_SIM_STATS_REGISTRY_HH
#define DPU_SIM_STATS_REGISTRY_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace dpu::sim {

class StatGroup;

/** A frozen copy of every registered stat, flat-keyed. */
struct StatsSnapshot
{
    /** "group.stat" -> counter value. */
    std::map<std::string, std::uint64_t> counters;
    /** "group.stat" -> scalar value. */
    std::map<std::string, double> scalars;

    bool operator==(const StatsSnapshot &) const = default;

    /** Serialize as a two-section JSON object (sorted keys). */
    void writeJson(std::ostream &os) const;

    /**
     * Parse a snapshot previously produced by writeJson().
     * @return true on success; on failure @p err explains why.
     */
    static bool readJson(const std::string &text, StatsSnapshot &out,
                         std::string &err);
};

/** Tolerances for diffSnapshots(). */
struct DiffOptions
{
    /** Relative tolerance for counters (0 = exact match). */
    double counterRel = 0.0;
    /** Relative tolerance for floating-point scalars. */
    double scalarRel = 1e-9;
    /**
     * Per-stat overrides: any stat whose flat key starts with the
     * prefix uses the given relative tolerance instead.
     */
    std::vector<std::pair<std::string, double>> prefixRel;
};

/** One stat that differs between golden and actual. */
struct StatDiff
{
    std::string key;
    double golden = 0.0;
    double actual = 0.0;
    /** "missing", "extra", or "drift". */
    std::string kind;
};

/**
 * Compare @p actual against @p golden. A stat drifts when
 * |actual - golden| > tol * max(|golden|, 1); stats present on only
 * one side are reported as missing/extra.
 */
std::vector<StatDiff> diffSnapshots(const StatsSnapshot &golden,
                                    const StatsSnapshot &actual,
                                    const DiffOptions &opts = {});

/** Render a diff list as readable "key: golden -> actual" lines. */
std::string formatDiffs(const std::vector<StatDiff> &diffs);

/** Tracks every live StatGroup in the process. */
class StatsRegistry
{
  public:
    static StatsRegistry &instance();

    /** Freeze all registered groups (name-disambiguated). */
    StatsSnapshot snapshot() const;

    /** Number of live groups (test introspection). */
    std::size_t groupCount() const { return groups.size(); }

    // StatGroup ctor/dtor hooks.
    void add(StatGroup *g) { groups.push_back(g); }
    void remove(StatGroup *g);

  private:
    StatsRegistry() = default;
    /** Registration order == construction order (deterministic). */
    std::vector<StatGroup *> groups;
};

} // namespace dpu::sim

#endif // DPU_SIM_STATS_REGISTRY_HH

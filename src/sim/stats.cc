#include "sim/stats.hh"

#include "sim/stats_registry.hh"

namespace dpu::sim {

StatGroup::StatGroup(std::string name) : groupName(std::move(name))
{
    StatsRegistry::instance().add(this);
}

StatGroup::~StatGroup()
{
    StatsRegistry::instance().remove(this);
}

void
StatGroup::dump(std::ostream &os) const
{
    flush();
    for (const auto &[name, value] : counters)
        os << groupName << "." << name << " = " << value << "\n";
    for (const auto &[name, value] : scalars)
        os << groupName << "." << name << " = " << value << "\n";
}

void
StatGroup::reset()
{
    // Drain deferred counts first so they don't survive the reset
    // and leak into the next measurement window.
    flush();
    for (auto &[name, value] : counters)
        value = 0;
    for (auto &[name, value] : scalars)
        value = 0.0;
}

} // namespace dpu::sim

#include "sim/stats.hh"

namespace dpu::sim {

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[name, value] : counters)
        os << groupName << "." << name << " = " << value << "\n";
    for (const auto &[name, value] : scalars)
        os << groupName << "." << name << " = " << value << "\n";
}

void
StatGroup::reset()
{
    for (auto &[name, value] : counters)
        value = 0;
    for (auto &[name, value] : scalars)
        value = 0.0;
}

} // namespace dpu::sim

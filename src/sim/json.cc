#include "sim/json.hh"

#include <cctype>
#include <cstdlib>

namespace dpu::sim::json {

const Value *
Value::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : obj) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

namespace {

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string err;

    explicit Parser(const std::string &t) : text(t) {}

    bool
    fail(const std::string &what)
    {
        err = what + " at offset " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    expect(char c)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos;
        return true;
    }

    bool
    literal(const char *word, std::size_t len)
    {
        if (text.compare(pos, len, word) != 0)
            return fail("bad literal");
        pos += len;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!expect('"'))
            return false;
        out.clear();
        while (pos < text.size()) {
            char c = text[pos++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos >= text.size())
                    break;
                char e = text[pos++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos + 4 > text.size())
                        return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int k = 0; k < 4; ++k) {
                        char h = text[pos++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= unsigned(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= unsigned(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= unsigned(h - 'A' + 10);
                        else
                            return fail("bad \\u escape");
                    }
                    if (code > 0x7f)
                        return fail("non-ASCII \\u escape "
                                    "unsupported");
                    out += char(code);
                    break;
                  }
                  default:
                    return fail("bad escape");
                }
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(Value &out)
    {
        std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        bool integral = true;
        while (pos < text.size()) {
            char c = text[pos];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos;
            } else {
                break;
            }
        }
        const std::string tok = text.substr(start, pos - start);
        if (tok.empty() || tok == "-")
            return fail("bad number");
        char *end = nullptr;
        if (integral) {
            errno = 0;
            long long v = std::strtoll(tok.c_str(), &end, 10);
            if (end == tok.c_str() + tok.size() && errno == 0) {
                out.kind = Value::Kind::Int;
                out.i = v;
                out.d = double(v);
                return true;
            }
            // Fall through (e.g. overflow) to double.
        }
        errno = 0;
        double d = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size())
            return fail("bad number");
        out.kind = Value::Kind::Double;
        out.d = d;
        out.i = std::int64_t(d);
        return true;
    }

    bool
    parseValue(Value &out, unsigned depth)
    {
        if (depth > 64)
            return fail("nesting too deep");
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        if (c == '{') {
            ++pos;
            out.kind = Value::Kind::Object;
            skipWs();
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                return true;
            }
            while (true) {
                std::string key;
                skipWs();
                if (!parseString(key))
                    return false;
                if (!expect(':'))
                    return false;
                Value v;
                if (!parseValue(v, depth + 1))
                    return false;
                out.obj.emplace_back(std::move(key), std::move(v));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                return expect('}');
            }
        }
        if (c == '[') {
            ++pos;
            out.kind = Value::Kind::Array;
            skipWs();
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                return true;
            }
            while (true) {
                Value v;
                if (!parseValue(v, depth + 1))
                    return false;
                out.arr.push_back(std::move(v));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                return expect(']');
            }
        }
        if (c == '"') {
            out.kind = Value::Kind::String;
            return parseString(out.s);
        }
        if (c == 't') {
            out.kind = Value::Kind::Bool;
            out.b = true;
            return literal("true", 4);
        }
        if (c == 'f') {
            out.kind = Value::Kind::Bool;
            out.b = false;
            return literal("false", 5);
        }
        if (c == 'n') {
            out.kind = Value::Kind::Null;
            return literal("null", 4);
        }
        return parseNumber(out);
    }
};

} // namespace

bool
parse(const std::string &text, Value &out, std::string &err)
{
    Parser p(text);
    out = Value{};
    if (!p.parseValue(out, 0)) {
        err = p.err;
        return false;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        err = "trailing garbage at offset " + std::to_string(p.pos);
        return false;
    }
    return true;
}

} // namespace dpu::sim::json

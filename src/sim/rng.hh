/**
 * @file
 * Deterministic pseudo-random number generation for workload
 * generators and tests. A thin wrapper over xoshiro256** so that
 * results are reproducible across standard-library implementations
 * (std::mt19937 streams are portable, but distributions are not).
 */

#ifndef DPU_SIM_RNG_HH
#define DPU_SIM_RNG_HH

#include <cstdint>

namespace dpu::sim {

/** xoshiro256** by Blackman & Vigna; public domain reference. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding as recommended by the authors.
        std::uint64_t x = seed;
        for (auto &word : s) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Uniform 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        const std::uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform value in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Multiply-shift bounded generation (Lemire).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return double(next() >> 11) * 0x1.0p-53;
    }

    /** Approximately standard-normal variate (Box-Muller). */
    double
    gaussian()
    {
        if (haveSpare) {
            haveSpare = false;
            return spare;
        }
        double u, v, r2;
        do {
            u = 2.0 * uniform() - 1.0;
            v = 2.0 * uniform() - 1.0;
            r2 = u * u + v * v;
        } while (r2 >= 1.0 || r2 == 0.0);
        double f = __builtin_sqrt(-2.0 * __builtin_log(r2) / r2);
        spare = v * f;
        haveSpare = true;
        return u * f;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s[4];
    bool haveSpare = false;
    double spare = 0.0;
};

} // namespace dpu::sim

#endif // DPU_SIM_RNG_HH

/**
 * @file
 * Low-overhead simulation event tracer.
 *
 * Components record spans (descriptor lifecycles, RPC round trips,
 * DDR transactions, pipeline stalls) and instants/counters into a
 * fixed-capacity ring buffer of POD records; export produces Chrome
 * trace-event JSON that loads directly in Perfetto / chrome://tracing
 * with one process ("pid") per subsystem and one named thread track
 * ("tid") per unit (dpCore, DMAD channel, DMAC engine, DDR channel).
 *
 * Design rules:
 *  - Disarmed cost is one inline load+branch per site; nothing is
 *    allocated until the tracer is armed.
 *  - Record names and argument keys must be string literals (static
 *    storage duration) — records store the pointers only.
 *  - Timestamps are simulation ticks (picoseconds), taken from the
 *    clock domain of the recording component (a dpCore's lazy clock
 *    or the global event queue); the exporter sorts records, so
 *    per-track timestamp order in the JSON is monotone.
 *  - Records land in a ring PER EXECUTION DOMAIN (sim/domain.hh):
 *    the parallel board runner gives each DPU its own domain, so
 *    concurrent partitions never share a ring, and span ids carry
 *    the domain in their top byte so id streams are partition-local
 *    too. Export merges the rings on (timestamp, domain, local
 *    order) — a total order independent of thread interleaving, so
 *    a parallel run's trace is byte-identical to the serial one.
 *    Domain 0 is the default and replays the pre-domain tracer
 *    exactly (same ids, same order) for single-chip runs.
 *  - Spans use Chrome "async" begin/end pairs ('b'/'e') keyed by a
 *    tracer-issued id, so overlapping operations on one track (e.g.
 *    4 outstanding DMS descriptors) pair up unambiguously.
 *
 * Arming: programmatically via tracer().arm(), or from the
 * environment — DPU_TRACE=out.json (capacity: DPU_TRACE_CAP records)
 * arms at the first Soc construction and writes the file at exit.
 *
 * Compile-out: build with -DDPU_TRACING=0 to turn every macro into a
 * no-op that still odr-uses its arguments (no unused warnings).
 */

#ifndef DPU_SIM_TRACE_HH
#define DPU_SIM_TRACE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/domain.hh"
#include "sim/types.hh"

#ifndef DPU_TRACING
#define DPU_TRACING 1
#endif

namespace dpu::sim {

/** Trace "process": one per subsystem, a top-level Perfetto group. */
enum class TraceCat : std::uint8_t
{
    Core = 1, ///< dpCore pipelines (stalls, multiplier, ISRs)
    Dms = 2,  ///< DMAD channels + DMAC engines
    Ate = 3,  ///< RPC fabric
    Ddr = 4,  ///< the DDR channel
    Soc = 5,  ///< chip-level tools (coherence checker, host)
};

/**
 * Well-known track ("tid") numbering within TraceCat::Dms.
 * Per-core DMAD tracks use tid = global core id (< 0x100); DMAC
 * engine tracks are offset by a per-kind base so no two complexes
 * collide.
 */
namespace dmstrack {
constexpr std::uint32_t loadEngine = 0x100;  ///< + global DMAX index
constexpr std::uint32_t storeEngine = 0x200; ///< + global DMAX index
constexpr std::uint32_t hashEngine = 0x300;  ///< + complex base core
constexpr std::uint32_t partPipe = 0x400;    ///< + complex base core
} // namespace dmstrack

/** One trace record; all pointers must be string literals. */
struct TraceRecord
{
    Tick ts = 0;
    Tick dur = 0;              ///< 'X' records only
    std::uint64_t a0 = 0, a1 = 0;
    const char *name = nullptr;
    const char *k0 = nullptr;  ///< arg key (nullptr = absent)
    const char *k1 = nullptr;
    std::uint32_t id = 0;      ///< async span pairing id
    std::uint32_t tid = 0;
    char ph = 'i';             ///< 'b','e','X','i','C'
    std::uint8_t pid = 0;      ///< TraceCat
};

/**
 * The global tracer: one record ring per execution domain. Arming,
 * clearing and export are host-phase operations; record() and
 * nextId() are safe from parallel partitions because each only
 * touches its current domain's state.
 */
class Tracer
{
  public:
    /** Default per-domain ring capacity (records). ~72 B each. */
    static constexpr std::size_t defaultCapacity = 1u << 20;

    Tracer() { doms.push_back(std::make_unique<Domain>()); }

    bool armed() const { return isArmed; }

    /** Enable recording into fresh per-domain rings of @p capacity
     *  records each. */
    void arm(std::size_t capacity = defaultCapacity);

    /** Stop recording (the rings' contents stay exportable). */
    void disarm() { isArmed = false; }

    /** Drop every record (and any pending drop count). */
    void clear();

    /**
     * Make rings/id streams ready for domains [0, @p n) (the Board
     * calls this for its DPU count). Host-phase only; cheap while
     * disarmed. Records from a domain the tracer was never sized for
     * fall back to domain 0.
     */
    void ensureDomains(unsigned n);

    /** Records currently held, all domains (<= capacity * doms). */
    std::size_t size() const;

    /** Records overwritten because a ring was full, all domains. */
    std::uint64_t dropped() const;

    /** Fresh id for pairing an async begin with its end. Ids are
     *  per-domain streams, domain in the top byte, so they never
     *  depend on cross-partition interleaving. */
    std::uint32_t
    nextId()
    {
        const unsigned d = domIndex();
        return (std::uint32_t(d) << 24) | ++idGens[d];
    }

    /** Append one record (call sites go through the macros). */
    void
    record(char ph, TraceCat cat, std::uint32_t tid, const char *name,
           Tick ts, Tick dur = 0, std::uint32_t id = 0,
           const char *k0 = nullptr, std::uint64_t a0 = 0,
           const char *k1 = nullptr, std::uint64_t a1 = 0)
    {
        if (!isArmed)
            return;
        Domain &dom = *doms[domIndex()];
        TraceRecord &r = dom.ring[dom.total % dom.ring.size()];
        ++dom.total;
        r.ts = ts;
        r.dur = dur;
        r.a0 = a0;
        r.a1 = a1;
        r.name = name;
        r.k0 = k0;
        r.k1 = k1;
        r.id = id;
        r.tid = tid;
        r.ph = ph;
        r.pid = std::uint8_t(cat);
    }

    /**
     * Give track (cat, tid) a display name ("core3", "dmax1.load").
     * Cheap and callable while disarmed (the SoC registers names at
     * construction so late arming still exports labelled tracks).
     */
    void nameTrack(TraceCat cat, std::uint32_t tid, std::string name);

    /**
     * Write the ring as Chrome trace-event JSON ("traceEvents"
     * array; ts/dur in microseconds), sorted by timestamp, with
     * process_name / thread_name metadata for every named track.
     */
    void exportJson(std::ostream &os) const;

    /**
     * Arm from the environment exactly once per process: DPU_TRACE
     * names the output file, DPU_TRACE_CAP overrides the capacity.
     * Registers an atexit hook that writes the file.
     */
    void armFromEnvOnce();

    /** Write the JSON to the DPU_TRACE path now (no-op otherwise). */
    void flushToFileIfArmed();

  private:
    /** One domain's ring + bookkeeping (never moved once built, so
     *  parallel recorders hold stable references). */
    struct Domain
    {
        std::vector<TraceRecord> ring;
        std::uint64_t total = 0; ///< records ever written
    };

    /** The calling thread's domain, clamped to the sized range. */
    unsigned
    domIndex() const
    {
        const unsigned d = currentDomain();
        return d < doms.size() ? d : 0;
    }

    bool isArmed = false;
    std::size_t cap = defaultCapacity;
    unsigned nDoms = 1;
    std::vector<std::unique_ptr<Domain>> doms;
    std::vector<std::uint32_t> idGens = std::vector<std::uint32_t>(1);
    std::string outPath;
    bool envChecked = false;
    std::map<std::pair<std::uint8_t, std::uint32_t>, std::string>
        trackNames;
};

/** The process-wide tracer instance. */
inline Tracer &
tracer()
{
    static Tracer t;
    return t;
}

/** Swallows trace arguments when tracing is compiled out. */
template <typename... A>
inline void
traceSink(const A &...)
{
}

} // namespace dpu::sim

#if DPU_TRACING

/** True when tracing is compiled in AND armed (hot-path guard). */
#define DPU_TRACE_ARMED (::dpu::sim::tracer().armed())

/** Id for a new span; 0 when tracing is compiled out. */
#define DPU_TRACE_NEXT_ID() (::dpu::sim::tracer().nextId())

#define DPU_TRACE_SPAN_BEGIN(cat, tid, name, id, ts, k0, v0, k1, v1) \
    ::dpu::sim::tracer().record('b', (cat), (tid), (name), (ts), 0,  \
                                (id), (k0), (v0), (k1), (v1))

#define DPU_TRACE_SPAN_END(cat, tid, name, id, ts)                   \
    ::dpu::sim::tracer().record('e', (cat), (tid), (name), (ts), 0,  \
                                (id))

#define DPU_TRACE_COMPLETE(cat, tid, name, ts, dur, k0, v0, k1, v1)  \
    ::dpu::sim::tracer().record('X', (cat), (tid), (name), (ts),     \
                                (dur), 0, (k0), (v0), (k1), (v1))

#define DPU_TRACE_INSTANT(cat, tid, name, ts, k0, v0)                \
    ::dpu::sim::tracer().record('i', (cat), (tid), (name), (ts), 0,  \
                                0, (k0), (v0))

#define DPU_TRACE_COUNTER(cat, tid, name, ts, k0, v0, k1, v1)        \
    ::dpu::sim::tracer().record('C', (cat), (tid), (name), (ts), 0,  \
                                0, (k0), (v0), (k1), (v1))

#else // !DPU_TRACING

#define DPU_TRACE_ARMED (false)
#define DPU_TRACE_NEXT_ID() (0u)
#define DPU_TRACE_SPAN_BEGIN(...) ::dpu::sim::traceSink(__VA_ARGS__)
#define DPU_TRACE_SPAN_END(...) ::dpu::sim::traceSink(__VA_ARGS__)
#define DPU_TRACE_COMPLETE(...) ::dpu::sim::traceSink(__VA_ARGS__)
#define DPU_TRACE_INSTANT(...) ::dpu::sim::traceSink(__VA_ARGS__)
#define DPU_TRACE_COUNTER(...) ::dpu::sim::traceSink(__VA_ARGS__)

#endif // DPU_TRACING

#endif // DPU_SIM_TRACE_HH

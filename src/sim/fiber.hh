/**
 * @file
 * Cooperative user-level fibers.
 *
 * Each simulated dpCore (and the A9 host model) runs its software as a
 * fiber: ordinary blocking C++ code that suspends back to the event
 * loop whenever it needs simulated time to pass (cycle charging, DMS
 * wait-for-event, ATE response, mailbox receive). This is the same
 * structure as SystemC SC_THREADs and keeps application kernels
 * looking like the code in the paper's Listing 1.
 *
 * Switching is a raw x86-64 stack switch (callee-saved registers +
 * FP control words, ~a dozen instructions); POSIX ucontext is the
 * portable fallback. glibc's swapcontext makes a sigprocmask system
 * call on every switch, which costs more than the switch itself and
 * dominates RPC-heavy workloads — the simulator never gives fibers
 * distinct signal masks, so nothing is lost by skipping it. Fibers
 * are strictly cooperative and all run on the host thread that owns
 * the event queue, so no locking is needed anywhere in the
 * simulator.
 */

#ifndef DPU_SIM_FIBER_HH
#define DPU_SIM_FIBER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

// Sanitized builds keep the ucontext path: it is the reference
// implementation, and CI's ASan job exercises the fiber-switch
// annotations against it.
#if defined(__SANITIZE_ADDRESS__)
#define DPU_FIBER_UCONTEXT 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DPU_FIBER_UCONTEXT 1
#endif
#endif
#if !defined(DPU_FIBER_UCONTEXT) && !defined(__x86_64__)
#define DPU_FIBER_UCONTEXT 1
#endif
#ifndef DPU_FIBER_UCONTEXT
#define DPU_FIBER_UCONTEXT 0
#endif

#if DPU_FIBER_UCONTEXT
#include <ucontext.h>
#endif

namespace dpu::sim {

/** A cooperative fiber with its own stack. */
class Fiber
{
  public:
    /**
     * Create a fiber that will execute @p fn when first resumed.
     * @param fn         The fiber body.
     * @param stack_size Stack size in bytes (default 256 KiB).
     */
    explicit Fiber(std::function<void()> fn,
                   std::size_t stack_size = 256 * 1024);

    Fiber(const Fiber &) = delete;
    Fiber &operator=(const Fiber &) = delete;
    ~Fiber();

    /**
     * Switch from the scheduler context into this fiber. Returns when
     * the fiber calls yield() or its body returns.
     */
    void resume();

    /**
     * Switch from inside this fiber back to the scheduler context.
     * Must be called from within the fiber.
     */
    void yield();

    /** True once the fiber body has returned. */
    bool finished() const { return done; }

    /** The fiber currently executing, or nullptr in the scheduler. */
    static Fiber *current();

  private:
    static void trampoline();
#if !DPU_FIBER_UCONTEXT
    /** Fabricate the first-entry frame; returns the initial sp. */
    void *initFiberStack();
#endif

    std::function<void()> body;
    std::vector<std::uint8_t> stack;
#if DPU_FIBER_UCONTEXT
    ucontext_t ctx;
    ucontext_t returnCtx;
#else
    void *fiberSp = nullptr; ///< fiber's saved stack pointer
    void *schedSp = nullptr; ///< scheduler's saved stack pointer
#endif
    bool started = false;
    bool done = false;
    /** Scheduler stack bounds, captured for ASan fiber switching. */
    const void *schedStackBottom = nullptr;
    std::size_t schedStackSize = 0;
    /** TSan shadow state for this fiber / the context that resumed
     *  it; nullptr outside ThreadSanitizer builds. */
    void *tsanFiber = nullptr;
    void *tsanParent = nullptr;
};

} // namespace dpu::sim

#endif // DPU_SIM_FIBER_HH

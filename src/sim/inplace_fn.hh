/**
 * @file
 * A fixed-capacity, never-allocating callable: the event queue's
 * replacement for std::function<void()>.
 *
 * std::function heap-allocates any capture list larger than its
 * small-buffer (16 B on libstdc++), which put a malloc/free pair on
 * the schedule/execute path of every fat-capture event — ATE RPCs
 * capture ten values. InplaceFn stores the callable inline in a
 * Cap-byte buffer and REFUSES (at compile time) captures that do
 * not fit, so the no-allocation property of the event kernel is a
 * static guarantee rather than a hope. Oversized captures should
 * either shrink (capture a pointer to long-lived state) or become
 * an Event subclass with named members (see sim/event.hh).
 */

#ifndef DPU_SIM_INPLACE_FN_HH
#define DPU_SIM_INPLACE_FN_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace dpu::sim {

/** Move-only `void()` callable with @p Cap bytes of inline capture
 *  storage and no dynamic allocation, ever. */
template <std::size_t Cap>
class InplaceFn
{
  public:
    InplaceFn() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InplaceFn> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    InplaceFn(F &&f) // NOLINT: implicit by design, like std::function
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= Cap,
                      "capture list too large for the event queue's "
                      "inline callback; shrink the captures or use "
                      "an Event subclass (sim/event.hh)");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "over-aligned capture");
        static_assert(std::is_nothrow_move_constructible_v<Fn>,
                      "captures must be nothrow-movable");
        ::new (static_cast<void *>(buf)) Fn(std::forward<F>(f));
        invoke = [](void *p) { (*std::launder(static_cast<Fn *>(p)))(); };
        manage = [](void *dst, void *src) {
            Fn *s = std::launder(static_cast<Fn *>(src));
            if (dst)
                ::new (dst) Fn(std::move(*s));
            s->~Fn();
        };
    }

    InplaceFn(InplaceFn &&o) noexcept { moveFrom(o); }

    InplaceFn &
    operator=(InplaceFn &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    InplaceFn(const InplaceFn &) = delete;
    InplaceFn &operator=(const InplaceFn &) = delete;

    ~InplaceFn() { reset(); }

    explicit operator bool() const { return invoke != nullptr; }

    void
    operator()()
    {
        invoke(buf);
    }

    /** Destroy the held callable (frees captured resources). */
    void
    reset()
    {
        if (manage)
            manage(nullptr, buf);
        invoke = nullptr;
        manage = nullptr;
    }

  private:
    void
    moveFrom(InplaceFn &o) noexcept
    {
        if (o.manage) {
            o.manage(buf, o.buf); // relocate: move-construct + destroy
            invoke = o.invoke;
            manage = o.manage;
            o.invoke = nullptr;
            o.manage = nullptr;
        }
    }

    using Invoke = void (*)(void *);
    /** dst != nullptr: move-construct *dst from *src, then destroy
     *  *src. dst == nullptr: just destroy *src. */
    using Manage = void (*)(void *dst, void *src);

    alignas(std::max_align_t) unsigned char buf[Cap];
    Invoke invoke = nullptr;
    Manage manage = nullptr;
};

} // namespace dpu::sim

#endif // DPU_SIM_INPLACE_FN_HH

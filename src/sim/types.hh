/**
 * @file
 * Fundamental simulation types: ticks, cycles, and clock domains.
 *
 * The simulator follows the gem5 convention of a global integer time
 * base ("ticks") fine enough to express every clock in the system
 * exactly. One tick is one picosecond; the 800 MHz dpCore clock has a
 * period of 1250 ticks and the DDR3-1600 data bus a period of 1250 ps
 * per 128-bit beat equivalent (see mem/ddr.hh for the memory timing).
 */

#ifndef DPU_SIM_TYPES_HH
#define DPU_SIM_TYPES_HH

#include <cstdint>

namespace dpu::sim {

/** Simulation time in picoseconds. */
using Tick = std::uint64_t;

/** A count of clock cycles in some clock domain. */
using Cycles = std::uint64_t;

/** One nanosecond expressed in ticks. */
constexpr Tick tickPerNs = 1000;

/** Largest representable tick; used as an "infinite" deadline. */
constexpr Tick maxTick = ~Tick(0);

/**
 * A fixed-frequency clock domain that converts between cycles and
 * ticks. All conversions round up to whole cycle boundaries so that
 * events never fire earlier than the hardware could have produced
 * them.
 */
class Clock
{
  public:
    /**
     * @param period_ps Clock period in picoseconds (e.g. 1250 for
     *                  the 800 MHz dpCore clock).
     */
    explicit constexpr Clock(Tick period_ps) : period(period_ps) {}

    /** Clock period in ticks. */
    constexpr Tick periodTicks() const { return period; }

    /** Frequency in Hz. */
    constexpr double freqHz() const { return 1e12 / double(period); }

    /** Convert a cycle count to a tick duration. */
    constexpr Tick cyclesToTicks(Cycles c) const { return c * period; }

    /** Convert a tick duration to cycles, rounding up. */
    constexpr Cycles
    ticksToCycles(Tick t) const
    {
        return (t + period - 1) / period;
    }

    /** Next tick at or after @p t that lies on a cycle boundary. */
    constexpr Tick
    alignUp(Tick t) const
    {
        return ((t + period - 1) / period) * period;
    }

  private:
    Tick period;
};

/** The 800 MHz dpCore clock (Section 2.5: 51 mW at 800 MHz). */
constexpr Clock dpCoreClock{1250};

} // namespace dpu::sim

#endif // DPU_SIM_TYPES_HH

/**
 * @file
 * Execution domains for the sharded event kernel.
 *
 * A domain is one event-queue partition — on a multi-DPU board,
 * domain d is DPU d. Process-wide facilities that must stay both
 * thread-safe and deterministic under the parallel runner (the fault
 * plane's rule RNGs, the tracer's record rings) key their state by
 * the current domain instead of by thread: the epoch runner sets the
 * domain around every partition it advances, so a given DPU's
 * decisions consume the same per-domain streams whatever thread — or
 * how many threads — happen to execute it.
 *
 * Domain 0 is the default everywhere, which keeps single-chip
 * simulations (one queue, one thread, never touched by a runner)
 * byte-identical to the pre-sharding kernel.
 */

#ifndef DPU_SIM_DOMAIN_HH
#define DPU_SIM_DOMAIN_HH

namespace dpu::sim {

namespace detail {
inline thread_local unsigned curDomain = 0;
} // namespace detail

/** The calling thread's current execution domain (default 0). */
inline unsigned
currentDomain()
{
    return detail::curDomain;
}

/** Set the calling thread's execution domain. */
inline void
setCurrentDomain(unsigned d)
{
    detail::curDomain = d;
}

/** RAII domain switch: restores the previous domain on scope exit. */
class DomainScope
{
  public:
    explicit DomainScope(unsigned d) : prev(detail::curDomain)
    {
        detail::curDomain = d;
    }

    ~DomainScope() { detail::curDomain = prev; }

    DomainScope(const DomainScope &) = delete;
    DomainScope &operator=(const DomainScope &) = delete;

  private:
    unsigned prev;
};

} // namespace dpu::sim

#endif // DPU_SIM_DOMAIN_HH

/**
 * @file
 * The fault-injection plane.
 *
 * One process-wide, deterministic, seeded fault scheduler shared by
 * every subsystem hook point (DMS, ATE, MBC, core worker loops, the
 * DDR channel). Benches and tests configure it from a small spec
 * string, so a chaos run, a CI smoke job and an interactive repro
 * all describe faults the same way:
 *
 *   site[@key=value[,key=value...]][;site...]
 *
 * Sites:
 *   dms.wedge      DMAC wedges; the descriptor never completes
 *   dms.descError  descriptor completes with error status, no data
 *   ate.drop       RPC request lost in the fabric (no response)
 *   ate.delay      RPC delivery delayed by `mag` ticks
 *   mbc.drop       mailbox message lost
 *   core.stall     worker-lane stall of `mag` cycles (0 = forever)
 *   mem.degrade    DDR burst time multiplied by `mag` in [from,to)
 *   link.drop      inter-DPU link message lost in the board fabric
 *   link.delay     inter-DPU link delivery delayed by `mag` ticks
 *   rack.netDrop   inter-board network message lost (rack fabric)
 *   rack.netDelay  inter-board delivery delayed by `mag` ticks
 *   rack.boardDown board unavailable inside [from,to) (unit = board)
 *   rack.boardCrash board dies losing its partition state; unlike
 *                  boardDown the board stays dead past the window
 *                  until the rack's repair protocol re-provisions
 *                  it (unit = board)
 *
 * Keys (all optional):
 *   p=0.05      per-opportunity firing probability
 *   nth=K       fire on every Kth opportunity instead (overrides p)
 *   from=, to=  active tick window (accepts 2e9 style; default all)
 *   max=N       at most N firings (default unlimited)
 *   mag=M       site-specific magnitude (ticks / cycles / divisor)
 *   unit=U      only opportunities of unit U (core id; default any)
 *   seed=S      per-rule seed override
 *
 * Determinism: every rule owns one Rng PER EXECUTION DOMAIN (see
 * sim/domain.hh), seeded from (configure seed, rule index, domain) —
 * never from wall clock — and a decision consumes randomness only
 * for p-rules with p < 1. A multi-DPU board runs each DPU in its own
 * domain, so every chip's opportunity stream draws from its own rule
 * state whatever thread executes it and however partitions
 * interleave: same spec + seed => same faults => same stats, at any
 * --threads. Domain 0 is seeded exactly as the pre-domain single
 * stream, keeping single-chip runs byte-identical. Note the `max`
 * firing budget and `nth` counters are likewise per (rule, domain).
 *
 * Thread-safety: fires() only mutates current-domain state, and the
 * "fault" stat group is fed through per-domain deferred counts
 * folded on read, so concurrent partitions never share cells. All
 * configuration (configure / reset / ensureDomains) is host-phase
 * only — never call it while a parallel run is in flight.
 *
 * The plane is inert until configured: every hook point first tests
 * active(), so un-faulted runs execute the exact pre-fault paths and
 * keep their golden stats byte-identical.
 */

#ifndef DPU_SIM_FAULT_HH
#define DPU_SIM_FAULT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace dpu::sim {

/** Injection sites, one per subsystem hook point. */
enum class FaultSite : std::uint8_t
{
    DmsWedge,
    DmsDescError,
    AteDrop,
    AteDelay,
    MbcDrop,
    CoreStall,
    MemDegrade,
    LinkDrop,
    LinkDelay,
    RackNetDrop,
    RackNetDelay,
    RackBoardDown,
    RackBoardCrash,
};

/** Number of FaultSite values. */
constexpr unsigned nFaultSites = 13;

/** Spec-string name ("dms.wedge", ...) of a site. */
const char *faultSiteName(FaultSite site);

/** One parsed fault rule (see file header for the grammar). */
struct FaultRule
{
    FaultSite site = FaultSite::DmsWedge;
    double p = 1.0;            ///< per-opportunity probability
    std::uint64_t nth = 0;     ///< fire every nth opportunity (0=off)
    Tick from = 0;             ///< active window start (inclusive)
    Tick to = maxTick;         ///< active window end (exclusive)
    std::uint64_t max = ~0ull; ///< firing budget (per domain)
    std::uint64_t mag = 0;     ///< site-specific magnitude
    int unit = -1;             ///< unit filter (-1 = any)

    /** Per-domain runtime state (index = execution domain). */
    struct DomainState
    {
        std::uint64_t seen = 0;  ///< opportunities examined
        std::uint64_t fired = 0; ///< faults injected
        Rng rng{0};
    };

    std::vector<DomainState> dom;
    std::uint64_t ruleSeed = 0;

    /** Opportunities examined, summed over domains. */
    std::uint64_t
    seenTotal() const
    {
        std::uint64_t n = 0;
        for (const auto &d : dom)
            n += d.seen;
        return n;
    }

    /** Faults injected, summed over domains. */
    std::uint64_t
    firedTotal() const
    {
        std::uint64_t n = 0;
        for (const auto &d : dom)
            n += d.fired;
        return n;
    }
};

/** The process-wide fault scheduler. Use sim::faultPlane(). */
class FaultPlane
{
  public:
    /**
     * Parse @p spec and arm the plane; an empty spec is reset().
     * Fatal on malformed specs (they are configuration, not data).
     */
    void configure(const std::string &spec, std::uint64_t seed = 0);

    /** Drop every rule and the "fault" stat group; plane goes inert. */
    void reset();

    /** True when any rule is loaded (hook points gate on this). */
    bool active() const { return !rules.empty(); }

    /** The spec the plane was configured with ("" when inert). */
    const std::string &spec() const { return specStr; }

    /**
     * One injection opportunity at @p site for unit @p unit at tick
     * @p now. @return true when a fault fires; @p magnitude (when
     * non-null) receives the winning rule's mag.
     */
    bool fires(FaultSite site, Tick now, int unit = -1,
               std::uint64_t *magnitude = nullptr);

    /** Cheap gate for the DDR hot path. */
    bool hasMemFault() const { return memRules != 0; }

    /**
     * DDR burst-time multiplier at @p now (>= 1): the product of
     * every active mem.degrade rule's magnitude.
     */
    std::uint64_t memBwDivisor(Tick now);

    /**
     * Make the plane ready for domains [0, @p n): sizes every rule's
     * per-domain state (board::Board calls this for its DPU count).
     * Host-phase only; existing domain streams are untouched.
     */
    void ensureDomains(unsigned n);

    /** Domains the plane is sized for (>= 1 once configured). */
    unsigned domains() const { return nDomains; }

    /** Faults injected at @p site since configure(), all domains. */
    std::uint64_t
    injected(FaultSite site) const
    {
        std::uint64_t total = 0;
        for (const auto &d : domCounts)
            total += d.counts[unsigned(site)];
        return total;
    }

    /** Total faults injected since configure(). */
    std::uint64_t injectedTotal() const;

    /** The "fault" stat group; nullptr while inert. */
    StatGroup *statGroup() { return stats.get(); }

    /** Parsed rules (tests introspect firing budgets). */
    const std::vector<FaultRule> &ruleSet() const { return rules; }

    /**
     * A randomized but seed-deterministic chaos spec: 1-3 rules
     * drawn from every site with bounded probabilities/magnitudes.
     * Same @p seed => same spec string.
     */
    static std::string randomSpec(std::uint64_t seed);

  private:
    /** Per-domain injection tallies: absolute counts for injected()
     *  plus pending deltas folded into the stat group on read. */
    struct DomainCounts
    {
        std::uint64_t counts[nFaultSites] = {};
        std::uint64_t pending[nFaultSites] = {};
    };

    /** Seed domain @p d of rule @p r (0 replays the pre-domain
     *  single stream). */
    static void seedDomain(FaultRule &r, unsigned d);

    /** Fold every domain's pending stat deltas into the group. */
    void foldStats();

    std::vector<FaultRule> rules;
    unsigned memRules = 0;
    unsigned nDomains = 1;
    std::string specStr;
    std::vector<DomainCounts> domCounts{1};
    std::unique_ptr<StatGroup> stats;
};

/** The process-wide fault plane (the simulator is one thread). */
FaultPlane &faultPlane();

} // namespace dpu::sim

#endif // DPU_SIM_FAULT_HH

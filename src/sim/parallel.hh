/**
 * @file
 * Conservative parallel runner for sharded event kernels.
 *
 * The EpochRunner advances a set of EventQueue partitions (one per
 * execution domain — on a board, one per DPU) in BSP-style epochs:
 *
 *   1. window:  next = min over partitions of nextDueLowerBound();
 *               epochEnd = min(limit, next + lookahead)
 *   2. compute: every partition free-runs its events with
 *               runWindow(epochEnd) — in parallel, one worker thread
 *               per partition group (static ownership d % threads)
 *   3. barrier
 *   4. drain:   each destination partition schedules its inbound
 *               cross-partition messages (posted to mailboxes during
 *               compute) in deterministic (src, tick, seq) order
 *   5. barrier, then back to 1
 *
 * Conservative correctness: with lookahead <= the minimum
 * cross-partition delivery latency (a board link's store-and-forward
 * hopLatency), any message sent at tick t inside an epoch delivers
 * at >= t + latency >= epochEnd, i.e. always at or after the
 * receiving partition's clock when it is scheduled at the barrier —
 * no partition ever receives an event in its past, so no rollback is
 * needed. lookahead == 0 degenerates to tick-lockstep (every epoch
 * is a single tick), the serial-order fallback.
 *
 * Determinism: each partition executes exactly the same local event
 * sequence whatever the thread count, because (a) per-queue seq
 * counters make same-tick FIFO order a partition-local property,
 * (b) all cross-partition interaction is mailbox-mediated and
 * drained in a fixed order, and (c) per-domain state (fault RNG
 * streams, trace rings — see sim/domain.hh) is keyed by domain, not
 * by thread. threads == 1 runs the identical epoch schedule on the
 * caller's thread, so "parallel equals serial" holds by
 * construction and is enforced bit-exactly by the test wall.
 *
 * Clock protocol: partitions advance with runWindow(), which leaves
 * each clock on its last executed event; when the run ends the
 * runner parks every clock on the common final tick (the global max
 * event tick, or the bound of a limited run), so host-phase code
 * between runs sees one aligned board clock — exactly the clock a
 * single shared queue would have shown.
 */

#ifndef DPU_SIM_PARALLEL_HH
#define DPU_SIM_PARALLEL_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace dpu::sim {

/** The partition the calling thread is currently advancing, or
 *  nullptr outside an EpochRunner compute phase. Lets a facade over
 *  N partitions (board::Board::now()) report the running clock. */
const EventQueue *activeEventQueue();

/** Knobs for EpochRunner. */
struct ParallelParams
{
    /** Worker threads, caller included. 1 = serial epoch schedule
     *  on the caller's thread (clamped to the partition count). */
    unsigned threads = 1;
    /** Free-run window; must not exceed the minimum cross-partition
     *  delivery latency. 0 = tick-lockstep. */
    Tick lookahead = 0;
    /** Pin worker k to CPU k (Linux; ignored elsewhere). */
    bool pinCores = false;
};

/** Epoch-barrier coordinator over a fixed set of partitions. */
class EpochRunner
{
  public:
    /**
     * @param queues  One partition per domain; domain d's events run
     *                under DomainScope(d).
     * @param params  Thread count / lookahead / pinning.
     * @param drain   drain(dst): schedule domain dst's pending
     *                inbound messages into queues[dst]; called under
     *                DomainScope(dst), once per partition at the
     *                start of the run and at every epoch barrier.
     *                Must only touch dst-owned state.
     */
    EpochRunner(std::vector<EventQueue *> queues,
                const ParallelParams &params,
                std::function<void(unsigned dst)> drain);
    ~EpochRunner();

    EpochRunner(const EpochRunner &) = delete;
    EpochRunner &operator=(const EpochRunner &) = delete;

    /**
     * Run every partition until all drain or every clock reaches
     * @p limit; all clocks land aligned on the returned final tick
     * (the global last event tick, or @p limit when bounded).
     */
    Tick run(Tick limit = maxTick);

    /** Runner telemetry, for the barrier/lookahead unit tests. */
    struct Stats
    {
        std::uint64_t epochs = 0;
        /** Epochs whose window start jumped past the previous
         *  window's end — idle gaps skipped, not marched through. */
        std::uint64_t idleSkips = 0;
        /** Compute phases that executed zero events (a coarse
         *  wheel-window lower bound being refined). */
        std::uint64_t emptyEpochs = 0;
    };

    const Stats &stats() const { return st; }
    unsigned workers() const { return nWorkers; }

  private:
    /** Sense-counting spin barrier (atomics only: cheap at this
     *  scale and race-free under TSan). */
    class Barrier
    {
      public:
        void
        init(unsigned n)
        {
            nThreads = n;
        }

        void
        arriveAndWait()
        {
            const std::uint32_t gen =
                generation.load(std::memory_order_acquire);
            if (count.fetch_add(1, std::memory_order_acq_rel) + 1 ==
                nThreads) {
                count.store(0, std::memory_order_relaxed);
                generation.store(gen + 1,
                                 std::memory_order_release);
                return;
            }
            unsigned spins = 0;
            while (generation.load(std::memory_order_acquire) ==
                   gen) {
                if (++spins > 64)
                    std::this_thread::yield();
            }
        }

      private:
        unsigned nThreads = 1;
        std::atomic<std::uint32_t> count{0};
        std::atomic<std::uint32_t> generation{0};
    };

    void workerMain(unsigned w);
    /** Advance every partition owned by worker @p w to epochEnd. */
    void runOwned(unsigned w);
    /** Drain inbound mailboxes of every partition owned by @p w. */
    void drainOwned(unsigned w);
    /** One epoch: compute, barrier, drain, barrier. */
    void runEpoch();

    std::vector<EventQueue *> queues;
    ParallelParams p;
    std::function<void(unsigned dst)> drainFn;
    unsigned nWorkers;

    std::vector<std::thread> pool;
    Barrier barrier;
    std::atomic<bool> stopFlag{false};
    /** Published by the coordinator before releasing an epoch. */
    Tick epochEnd = 0;
    std::atomic<std::uint64_t> epochExecuted{0};

    Stats st;
};

} // namespace dpu::sim

#endif // DPU_SIM_PARALLEL_HH

/**
 * @file
 * Error and status reporting in the gem5 idiom.
 *
 * panic()  - an internal simulator invariant was violated (a bug in
 *            this code base); aborts so a debugger or core dump can
 *            capture the state.
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, invalid arguments); exits cleanly
 *            with a non-zero status.
 * warn()   - something is modelled approximately or looks suspicious
 *            but the simulation continues.
 * inform() - normal operational status for the user.
 */

#ifndef DPU_SIM_LOGGING_HH
#define DPU_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace dpu::sim {

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));
void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);
bool verbose();

} // namespace dpu::sim

#define panic(...) \
    ::dpu::sim::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) \
    ::dpu::sim::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::dpu::sim::warnImpl(__VA_ARGS__)
#define inform(...) ::dpu::sim::informImpl(__VA_ARGS__)

/** Assert a simulator invariant; cheap enough to keep in release. */
#define sim_assert(cond, ...)                                          \
    do {                                                               \
        if (!(cond)) {                                                 \
            ::dpu::sim::warnImpl("assertion '%s' failed", #cond);      \
            panic(__VA_ARGS__);                                        \
        }                                                              \
    } while (0)

#endif // DPU_SIM_LOGGING_HH

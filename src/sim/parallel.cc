/**
 * @file
 * EpochRunner implementation: the worker pool, the epoch loop, and
 * the end-of-run clock alignment.
 */

#include "sim/parallel.hh"

#include <algorithm>

#include "sim/domain.hh"
#include "sim/logging.hh"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace dpu::sim {

namespace {

thread_local const EventQueue *activeQueue = nullptr;

/** RAII activeEventQueue() marker around one partition's window. */
class ActiveQueueScope
{
  public:
    explicit ActiveQueueScope(const EventQueue *q) : prev(activeQueue)
    {
        activeQueue = q;
    }
    ~ActiveQueueScope() { activeQueue = prev; }

  private:
    const EventQueue *prev;
};

void
pinThreadToCore([[maybe_unused]] unsigned core)
{
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(core % std::max(1u, std::thread::hardware_concurrency()),
            &set);
    pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#endif
}

} // namespace

const EventQueue *
activeEventQueue()
{
    return activeQueue;
}

EpochRunner::EpochRunner(std::vector<EventQueue *> queues_,
                         const ParallelParams &params,
                         std::function<void(unsigned dst)> drain)
    : queues(std::move(queues_)), p(params), drainFn(std::move(drain))
{
    sim_assert(!queues.empty(), "EpochRunner needs a partition");
    nWorkers = std::max(1u,
                        std::min(p.threads, unsigned(queues.size())));
    if (nWorkers > 1) {
        barrier.init(nWorkers);
        pool.reserve(nWorkers - 1);
        for (unsigned w = 1; w < nWorkers; ++w)
            pool.emplace_back([this, w] { workerMain(w); });
        if (p.pinCores)
            pinThreadToCore(0); // the caller is worker 0
    }
}

EpochRunner::~EpochRunner()
{
    if (!pool.empty()) {
        stopFlag.store(true, std::memory_order_release);
        barrier.arriveAndWait(); // release workers parked at A
        for (auto &t : pool)
            t.join();
    }
}

void
EpochRunner::workerMain(unsigned w)
{
    if (p.pinCores)
        pinThreadToCore(w);
    for (;;) {
        barrier.arriveAndWait(); // A: window published (or stop)
        if (stopFlag.load(std::memory_order_acquire))
            return;
        runOwned(w);
        barrier.arriveAndWait(); // B: all partitions quiesced
        drainOwned(w);
        barrier.arriveAndWait(); // C: all mailboxes drained
    }
}

void
EpochRunner::runOwned(unsigned w)
{
    std::uint64_t executed = 0;
    for (unsigned d = w; d < queues.size(); d += nWorkers) {
        DomainScope ds(d);
        ActiveQueueScope qs(queues[d]);
        executed += queues[d]->runWindow(epochEnd);
    }
    if (executed)
        epochExecuted.fetch_add(executed, std::memory_order_relaxed);
}

void
EpochRunner::drainOwned(unsigned w)
{
    for (unsigned d = w; d < queues.size(); d += nWorkers) {
        DomainScope ds(d);
        drainFn(d);
    }
}

void
EpochRunner::runEpoch()
{
    epochExecuted.store(0, std::memory_order_relaxed);
    if (pool.empty()) {
        runOwned(0);
        drainOwned(0);
    } else {
        barrier.arriveAndWait(); // A
        runOwned(0);
        barrier.arriveAndWait(); // B
        drainOwned(0);
        barrier.arriveAndWait(); // C
    }
    ++st.epochs;
    if (epochExecuted.load(std::memory_order_relaxed) == 0)
        ++st.emptyEpochs;
}

Tick
EpochRunner::run(Tick limit)
{
    // Deliver anything posted between runs (host-phase RPCs/DMAs)
    // before scanning for the first window.
    drainOwned(0);
    if (nWorkers > 1) {
        for (unsigned w = 1; w < nWorkers; ++w)
            drainOwned(w);
    }

    Tick lastEnd = 0;
    bool firstEpoch = true;
    for (;;) {
        Tick next = maxTick;
        for (const EventQueue *q : queues)
            next = std::min(next, q->nextDueLowerBound());
        if (next == maxTick || next > limit)
            break;
        Tick end = next + p.lookahead;
        if (end < next || end > limit) // overflow or bound
            end = limit;
        if (!firstEpoch && next > lastEnd)
            ++st.idleSkips;
        firstEpoch = false;
        epochEnd = end;
        runEpoch();
        lastEnd = end;
    }

    // Align every clock on the common final tick so host-phase code
    // between runs sees the one board clock a shared queue showed.
    Tick final = 0;
    if (limit != maxTick) {
        final = limit;
    } else {
        for (const EventQueue *q : queues)
            final = std::max(final, q->now());
    }
    for (EventQueue *q : queues) {
        if (q->now() < final)
            q->run(final); // executes nothing; parks the clock
    }
    return final;
}

} // namespace dpu::sim

#include "sim/trace.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <numeric>

#include "sim/logging.hh"

namespace dpu::sim {

namespace {

const char *
catName(std::uint8_t pid)
{
    switch (TraceCat(pid)) {
      case TraceCat::Core: return "dpCore";
      case TraceCat::Dms: return "DMS";
      case TraceCat::Ate: return "ATE";
      case TraceCat::Ddr: return "DDR";
      case TraceCat::Soc: return "SoC";
    }
    return "?";
}

/** Ticks (ps) -> Chrome trace microseconds, exact to the ps. */
void
writeUs(std::ostream &os, Tick t)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%llu.%06llu",
                  (unsigned long long)(t / 1'000'000),
                  (unsigned long long)(t % 1'000'000));
    os << buf;
}

void
writeEscaped(std::ostream &os, const std::string &s)
{
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\' << c;
        else if (static_cast<unsigned char>(c) < 0x20)
            os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
               << "0123456789abcdef"[c & 0xf];
        else
            os << c;
    }
}

} // namespace

void
Tracer::arm(std::size_t capacity)
{
    sim_assert(capacity > 0, "tracer capacity must be non-zero");
    cap = capacity;
    for (auto &d : doms) {
        d->ring.assign(cap, TraceRecord{});
        d->total = 0;
    }
    // Restart the id streams with the rings: an armed window is
    // self-contained, so repeated runs in one process export
    // bit-identical traces.
    std::fill(idGens.begin(), idGens.end(), 0);
    isArmed = true;
}

void
Tracer::clear()
{
    for (auto &d : doms) {
        std::fill(d->ring.begin(), d->ring.end(), TraceRecord{});
        d->total = 0;
    }
    std::fill(idGens.begin(), idGens.end(), 0);
}

void
Tracer::ensureDomains(unsigned n)
{
    while (doms.size() < n) {
        doms.push_back(std::make_unique<Domain>());
        if (isArmed)
            doms.back()->ring.assign(cap, TraceRecord{});
    }
    if (idGens.size() < n)
        idGens.resize(n, 0);
    nDoms = std::max(nDoms, n);
}

std::size_t
Tracer::size() const
{
    std::size_t total = 0;
    for (const auto &d : doms)
        total += std::size_t(
            std::min<std::uint64_t>(d->total, d->ring.size()));
    return total;
}

std::uint64_t
Tracer::dropped() const
{
    std::uint64_t n = 0;
    for (const auto &d : doms)
        if (d->total > d->ring.size())
            n += d->total - d->ring.size();
    return n;
}

void
Tracer::nameTrack(TraceCat cat, std::uint32_t tid, std::string name)
{
    trackNames[{std::uint8_t(cat), tid}] = std::move(name);
}

void
Tracer::exportJson(std::ostream &os) const
{
    // Merge the domain rings: oldest-first per domain, concatenated
    // in domain order, then a stable sort by timestamp — the
    // resulting (ts, domain, local order) total order is a pure
    // function of the simulated execution, independent of how many
    // threads recorded.
    const std::size_t n = size();
    std::vector<const TraceRecord *> order;
    order.reserve(n);
    for (const auto &d : doms) {
        if (d->ring.empty())
            continue;
        const std::size_t held = std::size_t(
            std::min<std::uint64_t>(d->total, d->ring.size()));
        const std::uint64_t first = d->total - held;
        for (std::size_t i = 0; i < held; ++i)
            order.push_back(&d->ring[(first + i) % d->ring.size()]);
    }
    std::stable_sort(order.begin(), order.end(),
                     [](const TraceRecord *a, const TraceRecord *b) {
                         return a->ts < b->ts;
                     });

    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool comma = false;

    // Metadata: subsystem process names + registered track names,
    // but only for pids that actually appear (or were registered).
    bool pidSeen[256] = {};
    for (const TraceRecord *r : order)
        pidSeen[r->pid] = true;
    for (const auto &[key, _] : trackNames)
        pidSeen[key.first] = true;
    for (unsigned pid = 0; pid < 256; ++pid) {
        if (!pidSeen[pid])
            continue;
        if (comma)
            os << ",";
        comma = true;
        os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
           << ",\"args\":{\"name\":\"" << catName(std::uint8_t(pid))
           << "\"}}";
    }
    for (const auto &[key, name] : trackNames) {
        os << ",{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":"
           << unsigned(key.first) << ",\"tid\":" << key.second
           << ",\"args\":{\"name\":\"";
        writeEscaped(os, name);
        os << "\"}}";
    }

    for (std::size_t i = 0; i < n; ++i) {
        const TraceRecord &r = *order[i];
        if (comma)
            os << ",";
        comma = true;
        os << "{\"ph\":\"" << r.ph << "\",\"pid\":"
           << unsigned(r.pid) << ",\"tid\":" << r.tid
           << ",\"name\":\"" << (r.name ? r.name : "?")
           << "\",\"ts\":";
        writeUs(os, r.ts);
        if (r.ph == 'X') {
            os << ",\"dur\":";
            writeUs(os, r.dur);
        }
        if (r.ph == 'b' || r.ph == 'e') {
            // Async events need a category and an id to pair up.
            os << ",\"cat\":\"" << catName(r.pid) << "\",\"id\":"
               << r.id;
        }
        if (r.ph == 'i')
            os << ",\"s\":\"t\""; // thread-scoped instant
        if (r.k0) {
            os << ",\"args\":{\"" << r.k0 << "\":" << r.a0;
            if (r.k1)
                os << ",\"" << r.k1 << "\":" << r.a1;
            os << "}";
        }
        os << "}";
    }
    os << "]}\n";
}

void
Tracer::armFromEnvOnce()
{
    if (envChecked)
        return;
    envChecked = true;
    const char *path = std::getenv("DPU_TRACE");
    if (!path || !*path)
        return;
    std::size_t cap = defaultCapacity;
    if (const char *c = std::getenv("DPU_TRACE_CAP")) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(c, &end, 10);
        if (end != c && v > 0)
            cap = std::size_t(v);
    }
    outPath = path;
    arm(cap);
    std::atexit([] { tracer().flushToFileIfArmed(); });
}

void
Tracer::flushToFileIfArmed()
{
    if (!isArmed || outPath.empty())
        return;
    std::ofstream os(outPath, std::ios::trunc);
    if (!os) {
        warn("DPU_TRACE: cannot open '%s'", outPath.c_str());
        return;
    }
    exportJson(os);
    inform("trace: wrote %zu events to %s (%llu dropped)", size(),
           outPath.c_str(), (unsigned long long)dropped());
}

} // namespace dpu::sim

#include "sim/stats_registry.hh"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "sim/json.hh"
#include "sim/stats.hh"

namespace dpu::sim {

StatsRegistry &
StatsRegistry::instance()
{
    static StatsRegistry r;
    return r;
}

void
StatsRegistry::remove(StatGroup *g)
{
    groups.erase(std::remove(groups.begin(), groups.end(), g),
                 groups.end());
}

StatsSnapshot
StatsRegistry::snapshot() const
{
    StatsSnapshot snap;
    std::map<std::string, unsigned> seen;
    for (const StatGroup *g : groups) {
        std::string prefix = g->name();
        unsigned repeat = seen[prefix]++;
        if (repeat > 0)
            prefix += "#" + std::to_string(repeat);
        prefix += ".";
        for (const auto &[name, value] : g->counterCells())
            snap.counters[prefix + name] = value;
        for (const auto &[name, value] : g->scalarCells())
            snap.scalars[prefix + name] = value;
    }
    return snap;
}

namespace {

void
writeKey(std::ostream &os, const std::string &key)
{
    os << '"';
    for (char c : key) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
    os << '"';
}

} // namespace

void
StatsSnapshot::writeJson(std::ostream &os) const
{
    os << "{\n  \"counters\": {";
    bool comma = false;
    for (const auto &[key, value] : counters) {
        os << (comma ? ",\n    " : "\n    ");
        comma = true;
        writeKey(os, key);
        os << ": " << value;
    }
    os << (comma ? "\n  " : "") << "},\n  \"scalars\": {";
    comma = false;
    std::ostringstream num;
    num.precision(17);
    for (const auto &[key, value] : scalars) {
        os << (comma ? ",\n    " : "\n    ");
        comma = true;
        writeKey(os, key);
        num.str("");
        num << value;
        // Keep the value a JSON number but make it round-trip as a
        // double: %.17g emits "3" for 3.0, which would reload as an
        // Int — harmless for diffing, so emit it as-is.
        os << ": " << num.str();
    }
    os << (comma ? "\n  " : "") << "}\n}\n";
}

bool
StatsSnapshot::readJson(const std::string &text, StatsSnapshot &out,
                        std::string &err)
{
    json::Value doc;
    if (!json::parse(text, doc, err))
        return false;
    if (doc.kind != json::Value::Kind::Object) {
        err = "snapshot root is not an object";
        return false;
    }
    out = StatsSnapshot{};
    if (const json::Value *c = doc.find("counters")) {
        for (const auto &[key, v] : c->obj) {
            if (v.kind != json::Value::Kind::Int || v.i < 0) {
                err = "counter '" + key + "' is not a non-negative "
                      "integer";
                return false;
            }
            out.counters[key] = v.asU64();
        }
    }
    if (const json::Value *s = doc.find("scalars")) {
        for (const auto &[key, v] : s->obj) {
            if (!v.isNum()) {
                err = "scalar '" + key + "' is not a number";
                return false;
            }
            out.scalars[key] = v.asDouble();
        }
    }
    return true;
}

namespace {

double
tolFor(const std::string &key, double base, const DiffOptions &opts)
{
    double tol = base;
    for (const auto &[prefix, rel] : opts.prefixRel) {
        if (key.compare(0, prefix.size(), prefix) == 0)
            tol = rel;
    }
    return tol;
}

bool
drifts(double golden, double actual, double tol)
{
    return std::fabs(actual - golden) >
           tol * std::max(std::fabs(golden), 1.0);
}

template <typename Map, typename AsDouble>
void
diffMaps(const Map &golden, const Map &actual, double baseTol,
         const DiffOptions &opts, AsDouble toDouble,
         std::vector<StatDiff> &out)
{
    for (const auto &[key, gv] : golden) {
        auto it = actual.find(key);
        if (it == actual.end()) {
            out.push_back({key, toDouble(gv), 0.0, "missing"});
            continue;
        }
        double g = toDouble(gv), a = toDouble(it->second);
        if (drifts(g, a, tolFor(key, baseTol, opts)))
            out.push_back({key, g, a, "drift"});
    }
    for (const auto &[key, av] : actual) {
        if (!golden.count(key))
            out.push_back({key, 0.0, toDouble(av), "extra"});
    }
}

} // namespace

std::vector<StatDiff>
diffSnapshots(const StatsSnapshot &golden, const StatsSnapshot &actual,
              const DiffOptions &opts)
{
    std::vector<StatDiff> out;
    diffMaps(golden.counters, actual.counters, opts.counterRel, opts,
             [](std::uint64_t v) { return double(v); }, out);
    diffMaps(golden.scalars, actual.scalars, opts.scalarRel, opts,
             [](double v) { return v; }, out);
    return out;
}

std::string
formatDiffs(const std::vector<StatDiff> &diffs)
{
    std::ostringstream os;
    os.precision(17);
    for (const StatDiff &d : diffs)
        os << "  " << d.key << " [" << d.kind << "]: " << d.golden
           << " -> " << d.actual << "\n";
    return os.str();
}

} // namespace dpu::sim

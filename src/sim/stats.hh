/**
 * @file
 * Lightweight statistics registry.
 *
 * Components register named counters with a StatGroup; the SoC can
 * dump all groups as a flat name = value listing. Counters are plain
 * uint64_t / double cells so hot paths pay only an increment.
 *
 * Every live StatGroup is also tracked by the process-wide
 * StatsRegistry (see stats_registry.hh), which snapshots all groups
 * for golden-stats regression testing. Registration happens in the
 * constructor and deregistration in the destructor, so groups must
 * not be copied or moved.
 */

#ifndef DPU_SIM_STATS_HH
#define DPU_SIM_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace dpu::sim {

class StatGroup;

/**
 * A hot-path counter that defers its StatGroup cell.
 *
 * The string-keyed counter() lookup is cheap enough for control
 * paths but shows up hard when charged per load or per issue slot
 * (the dpCore's LSU path calls it once per 8 bytes moved). Owners
 * keep one of these as a plain member, bump it with add()/++, and
 * fold it into the group from a flush hook (StatGroup::addFlushHook)
 * that runs right before any read of the cells. The cell is
 * registered exactly when the owning site has been hit — the same
 * rule as direct counter() use — so stat snapshots are
 * indistinguishable from the eager version.
 */
class DeferredCounter
{
  public:
    void
    add(std::uint64_t n)
    {
        v += n;
        touched = true;
    }

    DeferredCounter &
    operator+=(std::uint64_t n)
    {
        add(n);
        return *this;
    }

    DeferredCounter &
    operator++()
    {
        add(1);
        return *this;
    }

    /** Move the pending count into @p group's @p cell (inline
     *  definition follows StatGroup). */
    void flushInto(StatGroup &group, const char *cell);

  private:
    std::uint64_t v = 0;
    bool touched = false;
};

/** A named group of scalar statistics. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name);
    ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Register (or fetch) a counter cell by name. */
    std::uint64_t &
    counter(const std::string &name)
    {
        return counters[name];
    }

    /** Register (or fetch) a floating-point cell by name. */
    double &
    scalar(const std::string &name)
    {
        return scalars[name];
    }

    /**
     * Run @p hook before any read of the cells (get, dump,
     * snapshot, reset). Owners use this to fold DeferredCounter
     * members in lazily; the hook must only write cells, never read
     * other groups. The registering object must outlive the group's
     * last read (in practice: hooks capture `this` of the object
     * that owns or co-owns the group).
     */
    void
    addFlushHook(std::function<void()> hook)
    {
        flushHooks.push_back(std::move(hook));
    }

    /** Read a counter (0 if never touched). */
    std::uint64_t
    get(const std::string &name) const
    {
        flush();
        auto it = counters.find(name);
        return it == counters.end() ? 0 : it->second;
    }

    /** Read a floating-point cell (0.0 if never touched). */
    double
    getScalar(const std::string &name) const
    {
        flush();
        auto it = scalars.find(name);
        return it == scalars.end() ? 0.0 : it->second;
    }

    const std::string &name() const { return groupName; }

    /** All counter cells, name-ordered (snapshot/diff tooling). */
    const std::map<std::string, std::uint64_t> &
    counterCells() const
    {
        flush();
        return counters;
    }

    /** All floating-point cells, name-ordered. */
    const std::map<std::string, double> &
    scalarCells() const
    {
        flush();
        return scalars;
    }

    /** Write "group.name = value" lines for every cell. */
    void dump(std::ostream &os) const;

    /** Zero every cell (used between benchmark repetitions). */
    void reset();

  private:
    /** Fold deferred counters in; hooks mutate the maps through the
     *  owner's non-const handle, hence callable from const reads. */
    void
    flush() const
    {
        for (const auto &h : flushHooks)
            h();
    }

    std::string groupName;
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> scalars;
    std::vector<std::function<void()>> flushHooks;
};

inline void
DeferredCounter::flushInto(StatGroup &group, const char *cell)
{
    if (touched) {
        group.counter(cell) += v;
        v = 0;
    }
}

} // namespace dpu::sim

#endif // DPU_SIM_STATS_HH

/**
 * @file
 * Lightweight statistics registry.
 *
 * Components register named counters with a StatGroup; the SoC can
 * dump all groups as a flat name = value listing. Counters are plain
 * uint64_t / double cells so hot paths pay only an increment.
 */

#ifndef DPU_SIM_STATS_HH
#define DPU_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace dpu::sim {

/** A named group of scalar statistics. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : groupName(std::move(name)) {}

    /** Register (or fetch) a counter cell by name. */
    std::uint64_t &
    counter(const std::string &name)
    {
        return counters[name];
    }

    /** Register (or fetch) a floating-point cell by name. */
    double &
    scalar(const std::string &name)
    {
        return scalars[name];
    }

    /** Read a counter (0 if never touched). */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters.find(name);
        return it == counters.end() ? 0 : it->second;
    }

    const std::string &name() const { return groupName; }

    /** Write "group.name = value" lines for every cell. */
    void dump(std::ostream &os) const;

    /** Zero every cell (used between benchmark repetitions). */
    void reset();

  private:
    std::string groupName;
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> scalars;
};

} // namespace dpu::sim

#endif // DPU_SIM_STATS_HH

/**
 * @file
 * Lightweight statistics registry.
 *
 * Components register named counters with a StatGroup; the SoC can
 * dump all groups as a flat name = value listing. Counters are plain
 * uint64_t / double cells so hot paths pay only an increment.
 *
 * Every live StatGroup is also tracked by the process-wide
 * StatsRegistry (see stats_registry.hh), which snapshots all groups
 * for golden-stats regression testing. Registration happens in the
 * constructor and deregistration in the destructor, so groups must
 * not be copied or moved.
 */

#ifndef DPU_SIM_STATS_HH
#define DPU_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace dpu::sim {

/** A named group of scalar statistics. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name);
    ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Register (or fetch) a counter cell by name. */
    std::uint64_t &
    counter(const std::string &name)
    {
        return counters[name];
    }

    /** Register (or fetch) a floating-point cell by name. */
    double &
    scalar(const std::string &name)
    {
        return scalars[name];
    }

    /** Read a counter (0 if never touched). */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters.find(name);
        return it == counters.end() ? 0 : it->second;
    }

    /** Read a floating-point cell (0.0 if never touched). */
    double
    getScalar(const std::string &name) const
    {
        auto it = scalars.find(name);
        return it == scalars.end() ? 0.0 : it->second;
    }

    const std::string &name() const { return groupName; }

    /** All counter cells, name-ordered (snapshot/diff tooling). */
    const std::map<std::string, std::uint64_t> &
    counterCells() const
    {
        return counters;
    }

    /** All floating-point cells, name-ordered. */
    const std::map<std::string, double> &
    scalarCells() const
    {
        return scalars;
    }

    /** Write "group.name = value" lines for every cell. */
    void dump(std::ostream &os) const;

    /** Zero every cell (used between benchmark repetitions). */
    void reset();

  private:
    std::string groupName;
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> scalars;
};

} // namespace dpu::sim

#endif // DPU_SIM_STATS_HH

/**
 * @file
 * The unified topology builder: one validated spec for every tier.
 *
 * Before this, each tier grew its own parameter struct and
 * constructor sprawl — SocParams for a chip, BoardParams (SocParams
 * + LinkParams + runner knobs) for a board, RackParams (BoardParams
 * + NetParams) for a rack — and a caller gluing tiers together had
 * to thread the right sub-struct into the right constructor with no
 * cross-field validation. topo::ClusterTopology collapses that into
 * one fluent builder:
 *
 *   auto soc  = topo::ClusterTopology::soc().chip(soc::dpu16nm());
 *   auto brd  = topo::ClusterTopology::board(4).threads(4);
 *   auto rack = topo::ClusterTopology::rack(8, 2)
 *                   .replication(2)
 *                   .network(myNet);
 *
 *   std::string err = rack.validate();   // "" when buildable
 *   auto r = rack.buildRack();           // fatal with err otherwise
 *
 * Every shape error is reported as a sentence naming the offending
 * field and tier, not an assert in some constructor three layers
 * down. The per-tier parameter structs survive as thin shims —
 * boardParams()/rackParams() project the spec onto them, and the
 * legacy construction paths (board::Board(BoardParams) etc.) keep
 * compiling for existing tests and benches.
 */

#ifndef DPU_TOPO_TOPOLOGY_HH
#define DPU_TOPO_TOPOLOGY_HH

#include <memory>
#include <string>

#include "board/board.hh"
#include "rack/rack.hh"
#include "rack/scheduler.hh"
#include "soc/soc.hh"

namespace dpu::topo {

/** Which tier a topology describes. */
enum class Tier : std::uint8_t
{
    Soc,
    Board,
    Rack,
};

/** Tier name for error messages ("soc", "board", "rack"). */
const char *tierName(Tier t);

/** One validated cluster shape, buildable at any tier. */
class ClusterTopology
{
  public:
    // ------------------------------------------------------------
    // Tier anchors
    // ------------------------------------------------------------

    /** A single chip. */
    static ClusterTopology soc();

    /** One board of @p n_dpus chips. */
    static ClusterTopology board(unsigned n_dpus);

    /** @p n_boards boards of @p dpus_per_board chips each. */
    static ClusterTopology rack(unsigned n_boards,
                                unsigned dpus_per_board);

    // ------------------------------------------------------------
    // Fluent spec
    // ------------------------------------------------------------

    /** Chip configuration (default soc::dpu40nm()). */
    ClusterTopology &chip(const soc::SocParams &p);

    /** Intra-board link fabric timing. */
    ClusterTopology &link(const board::LinkParams &p);

    /** Inter-board rack network timing. */
    ClusterTopology &network(const rack::NetParams &p);

    /** Rack placement / admission knobs. */
    ClusterTopology &placement(const rack::PlacementParams &p);

    /** Boards per replica group (shorthand into placement). */
    ClusterTopology &replication(unsigned r);

    /** Hot-shard balancer knobs (shorthand into placement). */
    ClusterTopology &balance(const rack::BalanceParams &p);

    /** Intra-board live re-sharding knobs (board/balance.hh); the
     *  default window = 0 keeps it off. Board and Rack tiers. */
    ClusterTopology &boardBalance(const board::BalanceParams &p);

    /** Failure-detection / repair / brown-out knobs (shorthand
     *  into placement; heartbeatPeriod = 0 keeps it off). */
    ClusterTopology &health(const rack::HealthParams &p);

    /** Epoch-runner worker threads per board. */
    ClusterTopology &threads(unsigned n);

    /** Pin runner workers to cores (best effort). */
    ClusterTopology &pinCores(bool pin);

    /** Epoch lookahead override (0 = the link hop latency). */
    ClusterTopology &lookahead(sim::Tick ticks);

    /** Bulk-DMA retransmit budget on the board links. */
    ClusterTopology &dmaRetries(unsigned n);

    // ------------------------------------------------------------
    // Inspection
    // ------------------------------------------------------------

    Tier tier() const { return tier_; }
    unsigned nBoards() const { return nBoards_; }
    unsigned dpusPerBoard() const { return nDpus_; }

    /** Total chips across the topology. */
    unsigned totalDpus() const { return nBoards_ * nDpus_; }

    /**
     * Validate the shape. @return "" when buildable, otherwise one
     * sentence naming the offending field ("a board needs at least
     * one DPU (nDpus = 0)", "replication 4 exceeds the rack's 2
     * boards", ...). build*() is fatal on a non-empty result.
     */
    std::string validate() const;

    // ------------------------------------------------------------
    // Legacy parameter-struct projections (the shim layer)
    // ------------------------------------------------------------

    const soc::SocParams &socParams() const { return soc_; }

    /** Board-tier projection; valid for Board and Rack tiers. */
    board::BoardParams boardParams() const;

    /** Rack-tier projection; valid for the Rack tier. */
    rack::RackParams rackParams() const;

    rack::PlacementParams placementParams() const { return place_; }

    // ------------------------------------------------------------
    // Builders (fatal when validate() or the tier disagrees)
    // ------------------------------------------------------------

    /** Build the chip onto @p q (Soc tier only). */
    std::unique_ptr<soc::Soc> buildSoc(sim::EventQueue &q) const;

    /** Build the board (Board tier only). */
    std::unique_ptr<board::Board> buildBoard() const;

    /** Build the rack (Rack tier only). */
    std::unique_ptr<rack::Rack> buildRack() const;

  private:
    explicit ClusterTopology(Tier t) : tier_(t) {}

    /** Fatal unless validate() passes and the tier is @p want. */
    void require(Tier want) const;

    Tier tier_;
    unsigned nBoards_ = 1;
    unsigned nDpus_ = 1;
    soc::SocParams soc_ = soc::dpu40nm();
    board::LinkParams link_{};
    rack::NetParams net_{};
    rack::PlacementParams place_{};
    board::BalanceParams boardBal_{};
    unsigned threads_ = 1;
    bool pinCores_ = false;
    sim::Tick lookahead_ = 0;
    unsigned dmaRetries_ = 4;
};

} // namespace dpu::topo

#endif // DPU_TOPO_TOPOLOGY_HH

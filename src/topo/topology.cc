#include "topo/topology.hh"

#include "sim/logging.hh"

namespace dpu::topo {

const char *
tierName(Tier t)
{
    switch (t) {
      case Tier::Soc:
        return "soc";
      case Tier::Board:
        return "board";
      case Tier::Rack:
        return "rack";
    }
    return "?";
}

ClusterTopology
ClusterTopology::soc()
{
    ClusterTopology t(Tier::Soc);
    t.nBoards_ = 1;
    t.nDpus_ = 1;
    return t;
}

ClusterTopology
ClusterTopology::board(unsigned n_dpus)
{
    ClusterTopology t(Tier::Board);
    t.nBoards_ = 1;
    t.nDpus_ = n_dpus;
    return t;
}

ClusterTopology
ClusterTopology::rack(unsigned n_boards, unsigned dpus_per_board)
{
    ClusterTopology t(Tier::Rack);
    t.nBoards_ = n_boards;
    t.nDpus_ = dpus_per_board;
    return t;
}

ClusterTopology &
ClusterTopology::chip(const soc::SocParams &p)
{
    soc_ = p;
    return *this;
}

ClusterTopology &
ClusterTopology::link(const board::LinkParams &p)
{
    link_ = p;
    return *this;
}

ClusterTopology &
ClusterTopology::network(const rack::NetParams &p)
{
    net_ = p;
    return *this;
}

ClusterTopology &
ClusterTopology::placement(const rack::PlacementParams &p)
{
    place_ = p;
    return *this;
}

ClusterTopology &
ClusterTopology::replication(unsigned r)
{
    place_.replication = r;
    return *this;
}

ClusterTopology &
ClusterTopology::balance(const rack::BalanceParams &p)
{
    place_.balance = p;
    return *this;
}

ClusterTopology &
ClusterTopology::boardBalance(const board::BalanceParams &p)
{
    boardBal_ = p;
    return *this;
}

ClusterTopology &
ClusterTopology::health(const rack::HealthParams &p)
{
    place_.health = p;
    return *this;
}

ClusterTopology &
ClusterTopology::threads(unsigned n)
{
    threads_ = n;
    return *this;
}

ClusterTopology &
ClusterTopology::pinCores(bool pin)
{
    pinCores_ = pin;
    return *this;
}

ClusterTopology &
ClusterTopology::lookahead(sim::Tick ticks)
{
    lookahead_ = ticks;
    return *this;
}

ClusterTopology &
ClusterTopology::dmaRetries(unsigned n)
{
    dmaRetries_ = n;
    return *this;
}

std::string
ClusterTopology::validate() const
{
    auto msg = [](const std::string &s) { return s; };

    if (nDpus_ == 0)
        return msg("a " + std::string(tierName(tier_)) +
                   " needs at least one DPU per board "
                   "(dpusPerBoard = 0)");
    if (tier_ == Tier::Soc && nDpus_ != 1)
        return msg("a soc is exactly one DPU; use "
                   "ClusterTopology::board() for " +
                   std::to_string(nDpus_) + " chips");
    if (tier_ == Tier::Rack && nBoards_ == 0)
        return msg("a rack needs at least one board (nBoards = 0)");

    if (soc_.nCores() == 0)
        return msg("the chip needs at least one core "
                   "(nComplexes x coresPerComplex = 0)");

    if (threads_ == 0)
        return msg("the epoch runner needs at least one worker "
                   "thread (threads = 0)");

    if (tier_ != Tier::Soc) {
        if (link_.gbPerSec <= 0)
            return msg("the board link bandwidth must be positive "
                       "(LinkParams.gbPerSec = " +
                       std::to_string(link_.gbPerSec) + ")");
        if (link_.hopLatency == 0)
            return msg("the board link hop latency must be "
                       "positive: a zero-latency link collapses "
                       "the epoch runner's lookahead window");
        if (link_.flitBytes == 0)
            return msg("the board link flit size must be positive "
                       "(LinkParams.flitBytes = 0)");
        if (boardBal_.window) {
            const board::BalanceParams &bal = boardBal_;
            if (bal.ewmaAlpha <= 0 || bal.ewmaAlpha > 1)
                return msg("the board balancer EWMA alpha must sit "
                           "in (0, 1] (board BalanceParams."
                           "ewmaAlpha = " +
                           std::to_string(bal.ewmaAlpha) + ")");
            if (bal.hotFactor < 1.0)
                return msg("a board hotFactor below 1 flags every "
                           "DPU hot (board BalanceParams."
                           "hotFactor = " +
                           std::to_string(bal.hotFactor) + ")");
            if (bal.maxMigrationsPerWindow == 0)
                return msg("an enabled board balancer needs a "
                           "migration budget (board BalanceParams."
                           "maxMigrationsPerWindow = 0)");
            if (bal.keyPartitions == 0)
                return msg("the board balancer needs at least one "
                           "key partition (board BalanceParams."
                           "keyPartitions = 0)");
            if (bal.stagingBufBytes == 0 ||
                bal.stagingBufBytes > 2048)
                return msg("the board balancer staging buffer must "
                           "be 1..2048 bytes (board BalanceParams."
                           "stagingBufBytes = " +
                           std::to_string(bal.stagingBufBytes) +
                           ")");
            if (bal.stateBytesPerPartition == 0 ||
                bal.stateBytesPerPartition % 8 != 0)
                return msg("partition state bytes must be a "
                           "positive multiple of the 8-byte column "
                           "width (board BalanceParams."
                           "stateBytesPerPartition = " +
                           std::to_string(
                               bal.stateBytesPerPartition) +
                           ")");
        }
    }

    if (tier_ == Tier::Rack) {
        if (net_.gbPerSec <= 0)
            return msg("the rack network bandwidth must be "
                       "positive (NetParams.gbPerSec = " +
                       std::to_string(net_.gbPerSec) + ")");
        if (net_.hopLatency == 0)
            return msg("the rack network hop latency must be "
                       "positive (NetParams.hopLatency = 0)");
        if (net_.flitBytes == 0)
            return msg("the rack network flit size must be "
                       "positive (NetParams.flitBytes = 0)");
        if (place_.keyPartitions == 0)
            return msg("placement needs at least one key partition "
                       "(PlacementParams.keyPartitions = 0)");
        if (place_.replication == 0)
            return msg("placement needs at least one replica "
                       "(PlacementParams.replication = 0)");
        if (place_.replication > nBoards_)
            return msg("replication " +
                       std::to_string(place_.replication) +
                       " exceeds the rack's " +
                       std::to_string(nBoards_) + " board" +
                       (nBoards_ == 1 ? "" : "s"));
        if ((place_.admitWindow == 0) !=
            (place_.admitPerWindow == 0))
            return msg("admission control needs both admitWindow "
                       "and admitPerWindow set (or neither)");
        if (place_.balance.window) {
            const rack::BalanceParams &bal = place_.balance;
            if (bal.ewmaAlpha <= 0 || bal.ewmaAlpha > 1)
                return msg("the balancer EWMA alpha must sit in "
                           "(0, 1] (BalanceParams.ewmaAlpha = " +
                           std::to_string(bal.ewmaAlpha) + ")");
            if (bal.hotFactor < 1.0)
                return msg("a hotFactor below 1 flags every board "
                           "hot (BalanceParams.hotFactor = " +
                           std::to_string(bal.hotFactor) + ")");
            if (bal.maxMigrationsPerWindow == 0)
                return msg("an enabled balancer needs a migration "
                           "budget (BalanceParams."
                           "maxMigrationsPerWindow = 0)");
        }
        if (place_.health.heartbeatPeriod) {
            const rack::HealthParams &h = place_.health;
            if (h.ackTimeout == 0)
                return msg("an enabled health monitor needs a "
                           "positive ack timeout "
                           "(HealthParams.ackTimeout = 0)");
            if (h.suspectAfter == 0)
                return msg("the detector needs at least one miss "
                           "to suspect a board "
                           "(HealthParams.suspectAfter = 0)");
            if (h.downAfter < h.suspectAfter)
                return msg("downAfter " +
                           std::to_string(h.downAfter) +
                           " below suspectAfter " +
                           std::to_string(h.suspectAfter) +
                           " would skip the Suspect state");
            if (h.rejoinAfter == 0)
                return msg("the detector needs at least one clean "
                           "probe to rejoin "
                           "(HealthParams.rejoinAfter = 0)");
            if (h.shedPressure <= 0 || h.shedPressure > 1)
                return msg("shedPressure must sit in (0, 1] "
                           "(HealthParams.shedPressure = " +
                           std::to_string(h.shedPressure) + ")");
            if (h.shedDeadlineFrac <= 0)
                return msg("shedDeadlineFrac must be positive "
                           "(HealthParams.shedDeadlineFrac = " +
                           std::to_string(h.shedDeadlineFrac) +
                           ")");
        }
    }

    return "";
}

board::BoardParams
ClusterTopology::boardParams() const
{
    sim_assert(tier_ != Tier::Soc,
               "boardParams() on a soc topology; use socParams()");
    board::BoardParams p;
    p.nDpus = nDpus_;
    p.soc = soc_;
    p.link = link_;
    p.dmaRetries = dmaRetries_;
    p.threads = threads_;
    p.pinCores = pinCores_;
    p.lookahead = lookahead_;
    p.balance = boardBal_;
    return p;
}

rack::RackParams
ClusterTopology::rackParams() const
{
    sim_assert(tier_ == Tier::Rack,
               "rackParams() on a %s topology", tierName(tier_));
    rack::RackParams p;
    p.nBoards = nBoards_;
    p.board = boardParams();
    p.net = net_;
    return p;
}

void
ClusterTopology::require(Tier want) const
{
    sim_assert(tier_ == want,
               "build mismatch: this is a %s topology, not a %s",
               tierName(tier_), tierName(want));
    const std::string err = validate();
    sim_assert(err.empty(), "invalid topology: %s", err.c_str());
}

std::unique_ptr<soc::Soc>
ClusterTopology::buildSoc(sim::EventQueue &q) const
{
    require(Tier::Soc);
    return std::make_unique<soc::Soc>(q, soc_);
}

std::unique_ptr<board::Board>
ClusterTopology::buildBoard() const
{
    require(Tier::Board);
    return std::make_unique<board::Board>(boardParams());
}

std::unique_ptr<rack::Rack>
ClusterTopology::buildRack() const
{
    require(Tier::Rack);
    return std::make_unique<rack::Rack>(rackParams());
}

} // namespace dpu::topo

/**
 * @file
 * Compressed Sparse Row matrices for the similarity-search workload
 * (Section 5.2): the document index B and query batch A of the SpMM
 * formulation C = A x B are both CSR with Q10.22 tf-idf weights.
 */

#ifndef DPU_UTIL_CSR_HH
#define DPU_UTIL_CSR_HH

#include <cstdint>
#include <vector>

#include "util/fixed_point.hh"

namespace dpu::util {

/** CSR matrix with 32-bit column ids and Q10.22 values. */
struct CsrMatrix
{
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    /** rowPtr[r]..rowPtr[r+1] index into colIdx/values; size rows+1. */
    std::vector<std::uint32_t> rowPtr;
    std::vector<std::uint32_t> colIdx;
    std::vector<Fx22> values;

    std::size_t nnz() const { return colIdx.size(); }

    /** Bytes occupied by the index+value arrays (excluding rowPtr). */
    std::size_t
    payloadBytes() const
    {
        return colIdx.size() * sizeof(std::uint32_t) +
               values.size() * sizeof(Fx22);
    }
};

} // namespace dpu::util

#endif // DPU_UTIL_CSR_HH

/**
 * @file
 * Dense bit vectors. Used as scatter/gather masks by the DMS bit
 * vector memory, as the output of the dpCore FILT instruction, and as
 * selection vectors in the SQL engine.
 */

#ifndef DPU_UTIL_BITVEC_HH
#define DPU_UTIL_BITVEC_HH

#include <cstdint>
#include <vector>

namespace dpu::util {

/** A resizable dense bit vector with word-level access. */
class BitVec
{
  public:
    BitVec() = default;
    explicit BitVec(std::size_t nbits)
        : bits(nbits), words((nbits + 63) / 64, 0)
    {
    }

    std::size_t size() const { return bits; }

    bool
    test(std::size_t i) const
    {
        return (words[i >> 6] >> (i & 63)) & 1;
    }

    void
    set(std::size_t i, bool v = true)
    {
        if (v)
            words[i >> 6] |= std::uint64_t(1) << (i & 63);
        else
            words[i >> 6] &= ~(std::uint64_t(1) << (i & 63));
    }

    /** Population count over the whole vector. */
    std::size_t
    count() const
    {
        std::size_t n = 0;
        for (auto w : words)
            n += std::size_t(__builtin_popcountll(w));
        return n;
    }

    /** Raw 64-bit words (the BVLD instruction loads these). */
    const std::vector<std::uint64_t> &data() const { return words; }
    std::vector<std::uint64_t> &data() { return words; }

    /** Byte size of the backing words. */
    std::size_t byteSize() const { return words.size() * 8; }

    void
    clear()
    {
        for (auto &w : words)
            w = 0;
    }

  private:
    std::size_t bits = 0;
    std::vector<std::uint64_t> words;
};

} // namespace dpu::util

#endif // DPU_UTIL_BITVEC_HH

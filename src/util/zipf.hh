/**
 * @file
 * Zipf-distributed sampling for workload generators (term frequencies
 * in the similarity-search index, group-by key skew, JSON string
 * lengths). Uses the classic inverse-CDF-over-partial-harmonic table
 * for exact sampling with O(log n) draws.
 */

#ifndef DPU_UTIL_ZIPF_HH
#define DPU_UTIL_ZIPF_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/rng.hh"

namespace dpu::util {

/** Samples ranks in [0, n) with P(k) proportional to 1/(k+1)^s. */
class Zipf
{
  public:
    Zipf(std::size_t n, double s) : cdf(n)
    {
        double sum = 0.0;
        for (std::size_t k = 0; k < n; ++k) {
            sum += 1.0 / std::pow(double(k + 1), s);
            cdf[k] = sum;
        }
        for (auto &c : cdf)
            c /= sum;
    }

    /** Draw one rank. */
    std::size_t
    sample(sim::Rng &rng) const
    {
        double u = rng.uniform();
        auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
        return std::size_t(it - cdf.begin());
    }

    std::size_t size() const { return cdf.size(); }

  private:
    std::vector<double> cdf;
};

} // namespace dpu::util

#endif // DPU_UTIL_ZIPF_HH

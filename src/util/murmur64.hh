/**
 * @file
 * MurmurHash64A, used by the HyperLogLog experiment (Section 5.4) as
 * the "expensive on the dpCore" hash: it needs three 64x64 multiplies
 * which hit the dpCore's multi-cycle iterative multiplier, whereas
 * CRC32 is a single-cycle instruction.
 */

#ifndef DPU_UTIL_MURMUR64_HH
#define DPU_UTIL_MURMUR64_HH

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace dpu::util {

/** MurmurHash64A (Austin Appleby, public domain). */
inline std::uint64_t
murmur64(const void *key, std::size_t len,
         std::uint64_t seed = 0x8445d61a4e774912ull)
{
    const std::uint64_t m = 0xc6a4a7935bd1e995ull;
    const int r = 47;

    std::uint64_t h = seed ^ (len * m);

    const auto *data = static_cast<const std::uint8_t *>(key);
    const std::size_t nblocks = len / 8;

    for (std::size_t i = 0; i < nblocks; ++i) {
        std::uint64_t k;
        std::memcpy(&k, data + i * 8, 8);
        k *= m;
        k ^= k >> r;
        k *= m;
        h ^= k;
        h *= m;
    }

    const std::uint8_t *tail = data + nblocks * 8;
    std::uint64_t k = 0;
    switch (len & 7) {
      case 7: k ^= std::uint64_t(tail[6]) << 48; [[fallthrough]];
      case 6: k ^= std::uint64_t(tail[5]) << 40; [[fallthrough]];
      case 5: k ^= std::uint64_t(tail[4]) << 32; [[fallthrough]];
      case 4: k ^= std::uint64_t(tail[3]) << 24; [[fallthrough]];
      case 3: k ^= std::uint64_t(tail[2]) << 16; [[fallthrough]];
      case 2: k ^= std::uint64_t(tail[1]) << 8; [[fallthrough]];
      case 1: k ^= std::uint64_t(tail[0]);
              h ^= k;
              h *= m;
    }

    h ^= h >> r;
    h *= m;
    h ^= h >> r;
    return h;
}

/** Murmur of a single 64-bit key. */
inline std::uint64_t
murmur64Key(std::uint64_t key)
{
    return murmur64(&key, sizeof(key));
}

/** Number of 64x64 multiplies murmur64 performs on @p len bytes. */
inline std::uint64_t
murmur64MulCount(std::size_t len)
{
    // h*m seed mix happens at compile time for constant len in the
    // real code, but on the dpCore it is a runtime multiply too.
    std::uint64_t muls = 1; // len * m
    muls += (len / 8) * 3;  // k*m, k*m, h*m per block
    if (len & 7)
        muls += 1;          // tail h*m
    muls += 1;              // final h*m
    return muls;
}

} // namespace dpu::util

#endif // DPU_UTIL_MURMUR64_HH

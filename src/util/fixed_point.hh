/**
 * @file
 * 10.22 software fixed point (Section 5: "all datasets were converted
 * to 10.22 software fixed point").
 *
 * One sign+9 integer bits and 22 fraction bits in a 32-bit word. The
 * dpCore has no floating point unit; machine-learning kernels run on
 * this representation. Normalized inputs keep values in [-512, 512),
 * so 22 bits remain for precision — the paper reports negligible
 * accuracy loss and ~35% fewer SMO iterations (coarser KKT tests).
 */

#ifndef DPU_UTIL_FIXED_POINT_HH
#define DPU_UTIL_FIXED_POINT_HH

#include <cstdint>

namespace dpu::util {

/** Q10.22 fixed-point number. */
class Fx22
{
  public:
    static constexpr int fracBits = 22;
    static constexpr std::int32_t one = 1 << fracBits;

    constexpr Fx22() = default;

    /** Wrap a raw Q10.22 bit pattern. */
    static constexpr Fx22
    fromRaw(std::int32_t raw)
    {
        Fx22 f;
        f.v = raw;
        return f;
    }

    /** Convert from double, truncating toward zero. */
    static constexpr Fx22
    fromDouble(double d)
    {
        return fromRaw(static_cast<std::int32_t>(d * one));
    }

    /** Convert from a small integer. */
    static constexpr Fx22
    fromInt(std::int32_t i)
    {
        return fromRaw(i << fracBits);
    }

    constexpr std::int32_t raw() const { return v; }
    constexpr double toDouble() const { return double(v) / one; }

    constexpr Fx22 operator+(Fx22 o) const { return fromRaw(v + o.v); }
    constexpr Fx22 operator-(Fx22 o) const { return fromRaw(v - o.v); }
    constexpr Fx22 operator-() const { return fromRaw(-v); }

    /** Full-precision multiply: (a*b) >> 22 via a 64-bit product. */
    constexpr Fx22
    operator*(Fx22 o) const
    {
        return fromRaw(static_cast<std::int32_t>(
            (static_cast<std::int64_t>(v) * o.v) >> fracBits));
    }

    /** Divide; the dpCore implements this with the iterative unit. */
    constexpr Fx22
    operator/(Fx22 o) const
    {
        return fromRaw(static_cast<std::int32_t>(
            (static_cast<std::int64_t>(v) << fracBits) / o.v));
    }

    constexpr Fx22 &operator+=(Fx22 o) { v += o.v; return *this; }
    constexpr Fx22 &operator-=(Fx22 o) { v -= o.v; return *this; }

    constexpr bool operator==(const Fx22 &) const = default;
    constexpr auto operator<=>(const Fx22 &) const = default;

  private:
    std::int32_t v = 0;
};

/**
 * Wide accumulator for dot products: Q20.44 in 64 bits. Summing many
 * Q10.22 products in 32 bits would overflow; the paper's kernels use
 * a 64-bit accumulator exactly like this.
 */
class Fx22Acc
{
  public:
    constexpr Fx22Acc() = default;

    /** Accumulate the full-precision product of two Q10.22 values. */
    constexpr void
    mulAdd(Fx22 a, Fx22 b)
    {
        acc += static_cast<std::int64_t>(a.raw()) * b.raw();
    }

    constexpr void add(Fx22 a) { acc += std::int64_t(a.raw()) << 22; }

    /** Round back down to Q10.22 (truncating). */
    constexpr Fx22
    result() const
    {
        return Fx22::fromRaw(
            static_cast<std::int32_t>(acc >> Fx22::fracBits));
    }

    constexpr std::int64_t raw() const { return acc; }

  private:
    std::int64_t acc = 0;
};

} // namespace dpu::util

#endif // DPU_UTIL_FIXED_POINT_HH

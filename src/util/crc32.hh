/**
 * @file
 * CRC32 hash used by the DMS hash engine and by the dpCore's
 * single-cycle CRC32 hashcode instruction (Section 2.2).
 *
 * The chip implements the reflected IEEE 802.3 polynomial
 * (0xEDB88320); we use the same so that software partitioning on the
 * Xeon baseline and hardware partitioning in the DMS agree bit for
 * bit, which the partitioning tests rely on.
 */

#ifndef DPU_UTIL_CRC32_HH
#define DPU_UTIL_CRC32_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace dpu::util {

namespace detail {

constexpr std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

inline constexpr auto crcTable = makeCrcTable();

} // namespace detail

/** Incrementally extend a CRC32 over @p len bytes. */
inline std::uint32_t
crc32Update(std::uint32_t crc, const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    crc = ~crc;
    for (std::size_t i = 0; i < len; ++i)
        crc = detail::crcTable[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
    return ~crc;
}

/** One-shot CRC32 of a buffer. */
inline std::uint32_t
crc32(const void *data, std::size_t len)
{
    return crc32Update(0, data, len);
}

/** CRC32 of a single little-endian 32-bit key (the hot DMS path). */
inline std::uint32_t
crc32Key(std::uint32_t key)
{
    return crc32(&key, sizeof(key));
}

/** CRC32 of a single little-endian 64-bit key. */
inline std::uint32_t
crc32Key64(std::uint64_t key)
{
    return crc32(&key, sizeof(key));
}

} // namespace dpu::util

#endif // DPU_UTIL_CRC32_HH

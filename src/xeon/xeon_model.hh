/**
 * @file
 * Roofline-style timing model of the paper's x86 baseline: a dual
 * socket Xeon E5-2699 v3 (2 x 18 cores / 36 threads used, 256 GB
 * DDR4-1600, 145 W TDP per Section 5).
 *
 * We cannot run the authors' Xeon server, so baseline algorithms
 * execute FUNCTIONALLY on the host while this model converts their
 * algorithmic work (instructions, SIMD ops, streamed/random bytes,
 * serial critical path) into time on the paper's machine. The model
 * is calibrated on anchors the paper itself publishes:
 *
 *  - 34.5 GB/s effective bandwidth across 36 cores (Section 5.2's
 *    tiled SpMM — the realistic streaming-with-reuse regime every
 *    bandwidth-bound comparison in Section 5 is made against);
 *  - SAJSON at 5.2 GB/s with IPC 3.05 (Section 5.5);
 *  - two software partition rounds for high-NDV group-by vs the
 *    DPU's single hardware round (Section 5.3).
 *
 * Each workload phase is time = max(compute, memory) + serial —
 * perfectly-overlapped compute and prefetched memory, an optimistic
 * (Xeon-favouring) assumption, which keeps the reported DPU gains
 * conservative.
 */

#ifndef DPU_XEON_XEON_MODEL_HH
#define DPU_XEON_XEON_MODEL_HH

#include <string>
#include <vector>

namespace dpu::xeon {

/** Machine constants for the baseline server. */
struct XeonParams
{
    const char *name = "2x Xeon E5-2699 v3";
    double tdpWatts = 145.0;     ///< Section 5's perf/watt basis
    unsigned cores = 36;
    double freqGHz = 2.3;        ///< all-core sustained
    double ipc = 3.0;            ///< per-core retired uops/cycle
    double simdLanes = 8;        ///< AVX2 32-bit lanes
    /** Effective bandwidth in the tiled-streaming regime the
     *  paper's kernels run in (its own SpMM measurement). */
    double effStreamBwGBs = 34.5;
    /** Effective bandwidth for dependent random access. */
    double effRandomBwGBs = 8.0;
    /** Last-level cache (2 x 45 MB). */
    double llcBytes = 90.0 * 1024 * 1024;
};

/** Accumulates one workload's phases into seconds. */
class XeonModel
{
  public:
    explicit XeonModel(const XeonParams &params = XeonParams{},
                       unsigned threads_used = 36)
        : p(params), threads(threads_used)
    {
    }

    /** Parallel scalar instruction work (uops across all threads). */
    void
    scalarOps(double ops)
    {
        phaseScalar += ops;
    }

    /** Parallel SIMD work, counted in ELEMENT operations; the model
     *  divides by the vector width. */
    void
    simdOps(double element_ops)
    {
        phaseSimd += element_ops;
    }

    /** Bytes moved to/from DRAM with streaming locality. */
    void
    streamBytes(double bytes)
    {
        phaseStream += bytes;
    }

    /** Bytes moved with dependent/random access. */
    void
    randomBytes(double bytes)
    {
        phaseRandom += bytes;
    }

    /** Single-threaded critical-path uops (reductions, merges). */
    void
    serialOps(double ops)
    {
        phaseSerial += ops;
    }

    /**
     * Close the current phase: elapsed += max(compute, memory) +
     * serial. Call at every global synchronization point of the
     * modelled algorithm.
     */
    void endPhase();

    /** Total modelled time including any open phase. */
    double seconds() const;

    const XeonParams &params() const { return p; }
    unsigned threadsUsed() const { return threads; }

  private:
    double phaseSeconds() const;

    XeonParams p;
    unsigned threads;
    double elapsed = 0;
    double phaseScalar = 0;
    double phaseSimd = 0;
    double phaseStream = 0;
    double phaseRandom = 0;
    double phaseSerial = 0;
};

} // namespace dpu::xeon

#endif // DPU_XEON_XEON_MODEL_HH

#include "xeon/xeon_model.hh"

#include <algorithm>

namespace dpu::xeon {

double
XeonModel::phaseSeconds() const
{
    const double core_rate = p.freqGHz * 1e9 * p.ipc;
    const double scalar_s =
        phaseScalar / (core_rate * threads);
    const double simd_s =
        phaseSimd / (core_rate * threads * p.simdLanes);
    const double compute_s = scalar_s + simd_s;

    const double mem_s = phaseStream / (p.effStreamBwGBs * 1e9) +
                         phaseRandom / (p.effRandomBwGBs * 1e9);

    const double serial_s = phaseSerial / core_rate;

    return std::max(compute_s, mem_s) + serial_s;
}

void
XeonModel::endPhase()
{
    elapsed += phaseSeconds();
    phaseScalar = 0;
    phaseSimd = 0;
    phaseStream = 0;
    phaseRandom = 0;
    phaseSerial = 0;
}

double
XeonModel::seconds() const
{
    return elapsed + phaseSeconds();
}

} // namespace dpu::xeon

/**
 * @file
 * The DPU power model (Section 2.5, Figure 5).
 *
 * The paper optimizes for PROVISIONED power — rack provisioning cost
 * — not dynamic power, and reports a 5.8 W total at 40 nm with over
 * 37% going to leakage (high-leakage cells were used to close
 * timing) and 51 mW dynamic per dpCore at 800 MHz. The full Figure 5
 * component split is reconstructed around those two published
 * anchors; fractions are documented in DESIGN.md as a substitution.
 *
 * The M0 power-management unit supports 4 dpCore power states and
 * per-macro power gating (Section 2.4); gating a macro removes its
 * cores' dynamic power and a share of leakage.
 */

#ifndef DPU_SOC_POWER_HH
#define DPU_SOC_POWER_HH

#include <string>
#include <vector>

#include "soc/soc_params.hh"

namespace dpu::soc {

/** dpCore power states managed by the M0 (Section 2.4). */
enum class PowerState
{
    Active,     ///< full speed
    ClockGated, ///< clocks stopped, state retained, leakage only
    Retention,  ///< SRAM retention voltage, reduced leakage
    Off,        ///< power gated
};

/** One line of the Figure 5 breakdown. */
struct PowerComponent
{
    std::string name;
    double watts;
};

/** Chip power model with per-macro gating. */
class PowerModel
{
  public:
    explicit PowerModel(const SocParams &params);

    /** Set the power state of one 8-core macro. */
    void setMacroState(unsigned macro, PowerState state);

    PowerState macroState(unsigned macro) const;

    /** Current total chip power given the macro states. */
    double totalWatts() const;

    /** Figure 5 style component breakdown at full activity. */
    std::vector<PowerComponent> breakdown() const;

    /** Provisioned power used as the perf/watt denominator. */
    double provisionedWatts() const { return p.provisionedWatts; }

    /** Dynamic power of one active dpCore (51 mW, Section 2.5). */
    static constexpr double dpCoreDynamicW = 0.051;

  private:
    SocParams p;
    unsigned nMacros;
    std::vector<PowerState> macros;

    // Component fractions of designWatts (reconstruction; leakage
    // and per-core dynamic are the paper's numbers).
    double leakageW;
    double coresDynW;
    double dmsW;
    double ddrCtlW;
    double armW;
    double nocW;
    double periphW;
};

} // namespace dpu::soc

#endif // DPU_SOC_POWER_HH

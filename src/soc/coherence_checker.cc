#include "soc/coherence_checker.hh"

#include "soc/soc.hh"

namespace dpu::soc {

CoherenceChecker::CoherenceChecker(Soc &soc) : chip(soc)
{
    for (unsigned i = 0; i < chip.nCores(); ++i) {
        chip.core(i).setMemTrace(
            [this](unsigned core, mem::Addr addr, std::uint32_t len,
                   bool write) { check(core, addr, len, write); });
    }
}

CoherenceChecker::~CoherenceChecker()
{
    for (unsigned i = 0; i < chip.nCores(); ++i)
        chip.core(i).setMemTrace(nullptr);
}

void
CoherenceChecker::check(unsigned core, mem::Addr addr,
                        std::uint32_t len, bool write)
{
    mem::Addr first = mem::lineAlign(addr);
    mem::Addr last = mem::lineAlign(addr + (len ? len - 1 : 0));
    for (mem::Addr line = first; line <= last;
         line += mem::lineBytes) {
        for (unsigned other = 0; other < chip.nCores(); ++other) {
            if (other == core)
                continue;
            if (chip.core(other).l1d().isDirty(line)) {
                log.push_back({line, core, other, write,
                               chip.now()});
            }
        }
    }
}

} // namespace dpu::soc

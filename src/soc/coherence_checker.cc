#include "soc/coherence_checker.hh"

#include "sim/trace.hh"
#include "soc/soc.hh"

namespace dpu::soc {

CoherenceChecker::CoherenceChecker(Soc &soc) : chip(soc)
{
    for (unsigned i = 0; i < chip.nCores(); ++i) {
        chip.core(i).setMemTrace(
            [this](unsigned core, mem::Addr addr, std::uint32_t len,
                   bool write) { check(core, addr, len, write); });
    }
    chip.memory().setDmsWriteHook(
        [this](mem::Addr addr, std::uint32_t len) {
            onDmsWrite(addr, len);
        });
}

CoherenceChecker::~CoherenceChecker()
{
    for (unsigned i = 0; i < chip.nCores(); ++i)
        chip.core(i).setMemTrace(nullptr);
    chip.memory().setDmsWriteHook(nullptr);
}

void
CoherenceChecker::recordViolation(const CoherenceViolation &v)
{
    DPU_TRACE_INSTANT(sim::TraceCat::Soc, v.accessor,
                      v.viaDms ? "staleDmsRead"
                               : (v.accessWasWrite ? "writeWrite"
                                                   : "staleRead"),
                      v.when, "line", std::uint64_t(v.line));
    log.push_back(v);
}

void
CoherenceChecker::onDmsWrite(mem::Addr addr, std::uint32_t len)
{
    // A cache-bypassing write stales every cached copy: remember
    // which cores hold the overwritten lines so a later cached read
    // (without an intervening invalidate) can be flagged.
    mem::Addr first = mem::lineAlign(addr);
    mem::Addr last = mem::lineAlign(addr + (len ? len - 1 : 0));
    for (mem::Addr line = first; line <= last;
         line += mem::lineBytes) {
        for (unsigned c = 0; c < chip.nCores(); ++c) {
            if (chip.core(c).l1d().contains(line))
                dmsStale.insert({c, line});
        }
    }
}

void
CoherenceChecker::check(unsigned core, mem::Addr addr,
                        std::uint32_t len, bool write)
{
    mem::Addr first = mem::lineAlign(addr);
    mem::Addr last = mem::lineAlign(addr + (len ? len - 1 : 0));
    for (mem::Addr line = first; line <= last;
         line += mem::lineBytes) {
        for (unsigned other = 0; other < chip.nCores(); ++other) {
            if (other == core)
                continue;
            if (chip.core(other).l1d().isDirty(line)) {
                recordViolation({line, core, other, write,
                                 chip.now()});
            }
        }

        auto it = dmsStale.find({core, line});
        if (it != dmsStale.end()) {
            // One-shot: either the hazard fires now (the stale copy
            // is still resident, so this access hits old bytes) or
            // the line was dropped/invalidated and refetched fresh.
            if (!write && chip.core(core).l1d().contains(line)) {
                recordViolation({line, core, core, write, chip.now(),
                                 true});
            }
            dmsStale.erase(it);
        }
    }
}

} // namespace dpu::soc

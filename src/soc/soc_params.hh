/**
 * @file
 * Chip-level configurations.
 *
 * Two configurations from the paper:
 *  - the fabricated 40 nm DPU: 32 dpCores in 4 macros, one DMS, one
 *    DDR3-1600 channel, 5.8 W provisioned (Section 2.5, Figure 5);
 *  - the 16 nm shrink: five replicated 32-core complexes (160
 *    dpCores), DDR4-3200-class memory at 76 GB/s, 12 W TDP, quoted
 *    as 2.5x better performance/watt (Section 2.5).
 */

#ifndef DPU_SOC_SOC_PARAMS_HH
#define DPU_SOC_SOC_PARAMS_HH

#include <cstddef>

#include "ate/ate.hh"
#include "core/isa.hh"
#include "dms/dms_params.hh"
#include "mem/ddr.hh"

namespace dpu::soc {

/** Everything needed to instantiate a DPU. */
struct SocParams
{
    const char *name = "dpu-40nm";

    /** 32-core complexes on the die (1 at 40 nm, 5 at 16 nm). */
    unsigned nComplexes = 1;

    /** dpCores per complex (fixed by the dpCore-complex design). */
    unsigned coresPerComplex = 32;

    /** DDR channel feeding the die. */
    mem::DdrParams ddr = mem::ddr3_1600;

    /** Simulated DRAM capacity (the chip pairs with 8 GB; we size
     *  to the workload to keep host memory reasonable). */
    std::size_t ddrBytes = std::size_t(256) << 20;

    /** Provisioned SoC power, the denominator of perf/watt.
     *  Section 5: "we assume a TDP of ... 6W for the DPU". */
    double provisionedWatts = 6.0;

    /** Fabricated-power detail for the Figure 5 breakdown. */
    double designWatts = 5.8;

    /** Dynamic power per dpCore (51 mW at 40 nm, Section 2.5; the
     *  16 nm process shrink lowers it so five complexes fit in
     *  12 W). */
    double coreDynamicW = 0.051;

    dms::DmsParams dms{};
    ate::AteParams ate{};
    core::IsaCosts isa{};

    unsigned nCores() const { return nComplexes * coresPerComplex; }
};

/** The fabricated 40 nm chip. */
inline SocParams
dpu40nm()
{
    return SocParams{};
}

/** The 16 nm process shrink (Section 2.5). */
inline SocParams
dpu16nm()
{
    SocParams p;
    p.name = "dpu-16nm";
    p.nComplexes = 5;
    p.ddr = mem::ddr4_3200x3;
    p.provisionedWatts = 12.0;
    p.designWatts = 12.0;
    p.coreDynamicW = 0.020;
    return p;
}

/** Xeon E5-2699 v3 TDP used for every perf/watt comparison. */
constexpr double xeonTdpWatts = 145.0;

} // namespace dpu::soc

#endif // DPU_SOC_SOC_PARAMS_HH

#include "soc/soc.hh"

#include "sim/logging.hh"

namespace dpu::soc {

namespace {

/** Shared L2 per 8-core macro (Section 2.3: 256 KB). */
const mem::CacheParams l2Params{256 * 1024, 8, 6};

} // namespace

Soc::Soc(const SocParams &params)
    : p(params), powerModel(params), started(params.nCores(), false)
{
    mm = std::make_unique<mem::MainMemory>(p.ddr, p.ddrBytes);

    const unsigned n = p.nCores();
    const unsigned n_macros = n / core::coresPerMacro;
    l2s.reserve(n_macros);
    for (unsigned m = 0; m < n_macros; ++m) {
        l2s.push_back(std::make_unique<mem::Cache>(
            "macro" + std::to_string(m) + ".l2", l2Params, *mm));
    }

    cores.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        cores.push_back(std::make_unique<core::DpCore>(
            i, eq, *mm, *l2s[i / core::coresPerMacro], p.isa));
        corePtrs.push_back(cores.back().get());
    }

    dmsUnits.reserve(p.nComplexes);
    ateUnits.reserve(p.nComplexes);
    for (unsigned cx = 0; cx < p.nComplexes; ++cx) {
        const unsigned base = cx * p.coresPerComplex;
        dmsUnits.push_back(std::make_unique<dms::Dms>(
            eq, *mm, p.coresPerComplex, p.dms, base));
        for (unsigned i = 0; i < p.coresPerComplex; ++i)
            dmsUnits[cx]->attachCore(i, &cores[base + i]->dmem());

        std::vector<core::DpCore *> complex_cores(
            corePtrs.begin() + base,
            corePtrs.begin() + base + p.coresPerComplex);
        ateUnits.push_back(std::make_unique<ate::Ate>(
            eq, std::move(complex_cores), p.ate));
    }

    mbcUnit = std::make_unique<mbc::Mbc>(eq, corePtrs);
}

void
Soc::start(unsigned id, core::Kernel kernel)
{
    sim_assert(id < nCores(), "bad core id %u", id);
    started[id] = true;
    cores[id]->start(std::move(kernel));
}

void
Soc::startAll(core::Kernel kernel)
{
    for (unsigned i = 0; i < nCores(); ++i)
        start(i, kernel);
}

sim::Tick
Soc::run()
{
    eq.run();
    return eq.now();
}

sim::Tick
Soc::runFor(sim::Tick limit)
{
    eq.run(eq.now() + limit);
    return eq.now();
}

std::vector<unsigned>
Soc::unfinishedCores() const
{
    std::vector<unsigned> ids;
    for (unsigned i = 0; i < nCores(); ++i) {
        if (started[i] && !cores[i]->finished())
            ids.push_back(i);
    }
    return ids;
}

bool
Soc::allFinished() const
{
    for (unsigned i = 0; i < nCores(); ++i) {
        if (started[i] && !cores[i]->finished())
            return false;
    }
    return true;
}

void
Soc::dumpStats(std::ostream &os)
{
    mm->statGroup().dump(os);
    for (auto &c : cores)
        c->statGroup().dump(os);
    for (auto &d : dmsUnits)
        d->dmac().statGroup().dump(os);
    for (auto &a : ateUnits)
        a->statGroup().dump(os);
    mbcUnit->statGroup().dump(os);
}

} // namespace dpu::soc

#include "soc/soc.hh"

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace dpu::soc {

namespace {

/** Shared L2 per 8-core macro (Section 2.3: 256 KB). */
const mem::CacheParams l2Params{256 * 1024, 8, 6};

} // namespace

Soc::Soc(const SocParams &params) : Soc(nullptr, params) {}

Soc::Soc(sim::EventQueue &shared, const SocParams &params)
    : Soc(&shared, params)
{
}

Soc::Soc(sim::EventQueue *shared, const SocParams &params)
    : p(params),
      ownedEq(shared ? nullptr : std::make_unique<sim::EventQueue>()),
      eq(shared ? *shared : *ownedEq), powerModel(params),
      started(params.nCores(), false)
{
    mm = std::make_unique<mem::MainMemory>(p.ddr, p.ddrBytes);

    const unsigned n = p.nCores();
    const unsigned n_macros = n / core::coresPerMacro;
    l2s.reserve(n_macros);
    for (unsigned m = 0; m < n_macros; ++m) {
        l2s.push_back(std::make_unique<mem::Cache>(
            "macro" + std::to_string(m) + ".l2", l2Params, *mm));
    }

    cores.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        cores.push_back(std::make_unique<core::DpCore>(
            i, eq, *mm, *l2s[i / core::coresPerMacro], p.isa));
        corePtrs.push_back(cores.back().get());
    }

    dmsUnits.reserve(p.nComplexes);
    ateUnits.reserve(p.nComplexes);
    for (unsigned cx = 0; cx < p.nComplexes; ++cx) {
        const unsigned base = cx * p.coresPerComplex;
        dmsUnits.push_back(std::make_unique<dms::Dms>(
            eq, *mm, p.coresPerComplex, p.dms, base));
        for (unsigned i = 0; i < p.coresPerComplex; ++i)
            dmsUnits[cx]->attachCore(i, &cores[base + i]->dmem());

        std::vector<core::DpCore *> complex_cores(
            corePtrs.begin() + base,
            corePtrs.begin() + base + p.coresPerComplex);
        ateUnits.push_back(std::make_unique<ate::Ate>(
            eq, std::move(complex_cores), p.ate));
    }

    mbcUnit = std::make_unique<mbc::Mbc>(eq, corePtrs);

    // Tracing: honour DPU_TRACE=<file> on the first chip built, and
    // label every track this chip can emit on (cheap while
    // disarmed, so late programmatic arming still gets names).
    sim::Tracer &tr = sim::tracer();
    tr.armFromEnvOnce();
    for (unsigned i = 0; i < n; ++i) {
        const std::string cname = "core" + std::to_string(i);
        tr.nameTrack(sim::TraceCat::Core, i, cname);
        tr.nameTrack(sim::TraceCat::Ate, i, cname);
        tr.nameTrack(sim::TraceCat::Soc, i, cname);
        tr.nameTrack(sim::TraceCat::Dms, i,
                     "dmad" + std::to_string(i));
    }
    tr.nameTrack(sim::TraceCat::Ddr, 0, p.ddr.name);
    for (unsigned cx = 0; cx < p.nComplexes; ++cx) {
        const unsigned base = cx * p.coresPerComplex;
        const std::string prefix = "cx" + std::to_string(cx) + ".";
        const unsigned dmax0 = base / core::coresPerMacro;
        const unsigned n_dmax = p.coresPerComplex /
                                core::coresPerMacro;
        for (unsigned m = 0; m < n_dmax; ++m) {
            const std::string dmax =
                prefix + "dmax" + std::to_string(m);
            tr.nameTrack(sim::TraceCat::Dms,
                         sim::dmstrack::loadEngine + dmax0 + m,
                         dmax + ".load");
            tr.nameTrack(sim::TraceCat::Dms,
                         sim::dmstrack::storeEngine + dmax0 + m,
                         dmax + ".store");
        }
        tr.nameTrack(sim::TraceCat::Dms,
                     sim::dmstrack::hashEngine + base,
                     prefix + "hash");
        tr.nameTrack(sim::TraceCat::Dms,
                     sim::dmstrack::partPipe + base,
                     prefix + "part");
    }
}

void
Soc::start(unsigned id, core::Kernel kernel)
{
    sim_assert(id < nCores(), "bad core id %u", id);
    started[id] = true;
    cores[id]->start(std::move(kernel));
}

void
Soc::startAll(core::Kernel kernel)
{
    for (unsigned i = 0; i < nCores(); ++i)
        start(i, kernel);
}

sim::Tick
Soc::run()
{
    eq.run();
    return eq.now();
}

void
Soc::enableQueueSampling(sim::Tick period)
{
    queueSampler = std::make_unique<sim::PeriodicEvent>(
        eq, period,
        [this] {
            if (!DPU_TRACE_ARMED) {
                // Nobody is recording: stop re-arming so the
                // heartbeat does not keep the queue alive forever.
                queueSampler->cancel();
                return;
            }
            DPU_TRACE_COUNTER(sim::TraceCat::Soc, 0, "eventq",
                              eq.now(), "pending",
                              std::uint64_t(eq.pending()), "executed",
                              eq.profile().totalExecuted());
        },
        sim::EvTag::Soc);
    queueSampler->startIn(period);
}

sim::Tick
Soc::runFor(sim::Tick limit)
{
    eq.run(eq.now() + limit);
    return eq.now();
}

std::vector<unsigned>
Soc::unfinishedCores() const
{
    std::vector<unsigned> ids;
    for (unsigned i = 0; i < nCores(); ++i) {
        if (started[i] && !cores[i]->finished())
            ids.push_back(i);
    }
    return ids;
}

bool
Soc::allFinished() const
{
    for (unsigned i = 0; i < nCores(); ++i) {
        if (started[i] && !cores[i]->finished())
            return false;
    }
    return true;
}

void
Soc::dumpStats(std::ostream &os)
{
    mm->statGroup().dump(os);
    for (auto &c : cores)
        c->statGroup().dump(os);
    for (auto &d : dmsUnits)
        d->dmac().statGroup().dump(os);
    for (auto &a : ateUnits)
        a->statGroup().dump(os);
    mbcUnit->statGroup().dump(os);
}

} // namespace dpu::soc

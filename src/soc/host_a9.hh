/**
 * @file
 * The ARM Cortex-A9 host complex, thinly modelled (Section 2.4).
 *
 * On the chip the dual-core A9 runs Linux, the Infiniband/PCIe
 * network stack, and the offload driver that feeds work to the
 * dpCores; all evaluation-relevant interaction happens through the
 * MailBox Controller ("sending a pointer to a buffer in memory,
 * while the bulk of the data is communicated through main memory").
 * This model runs host software as a fiber at a (slower) A9 clock,
 * exchanging pointer-sized messages with the dpCores over the MBC.
 */

#ifndef DPU_SOC_HOST_A9_HH
#define DPU_SOC_HOST_A9_HH

#include <deque>
#include <functional>
#include <memory>

#include "mbc/mbc.hh"
#include "sim/event_queue.hh"
#include "sim/fiber.hh"

namespace dpu::soc {

/** The A9 host complex's software environment. */
class HostA9
{
  public:
    /** Host program: blocking C++ against this class's API. */
    using HostFn = std::function<void(HostA9 &)>;

    HostA9(sim::EventQueue &eq, mbc::Mbc &mbc);

    /** Start @p fn on the A9 at the current tick. */
    void start(HostFn fn);

    bool finished() const { return done; }

    // ------------------------------------------------------------
    // Host-side primitives (call from inside the host program)
    // ------------------------------------------------------------

    /** Post a pointer-sized message to dpCore @p core's mailbox. */
    void sendToCore(unsigned core, std::uint64_t msg);

    /** Block until a message arrives on the A9 mailbox. */
    std::uint64_t recv();

    /**
     * Poll the A9 mailbox without blocking. @return true and fill
     * @p msg if a message was waiting; false otherwise. Burns no
     * simulated time — poll loops must advance time themselves
     * (busyUs / sleepUntil) or they spin forever at one tick.
     */
    bool tryRecv(std::uint64_t &msg);

    /**
     * Block until a message arrives or the absolute @p deadline
     * passes, whichever is first. @return true and fill @p msg on
     * delivery; false on timeout (any message that races the
     * deadline at the same tick stays queued for the next receive).
     */
    bool recvUntil(sim::Tick deadline, std::uint64_t &msg);

    /** Burn host time (driver work, syscalls...). The A9 runs at
     *  a fraction of the dpCore clock; @p us is wall microseconds. */
    void busyUs(double us);

    /** Sleep until absolute tick @p when (no-op if in the past).
     *  Arriving messages do NOT cut the sleep short; use recvUntil
     *  for an interruptible wait. */
    void sleepUntil(sim::Tick when);

    sim::Tick now() const { return eq.now(); }

  private:
    void resume();
    void yield();
    void block();

    /** The host fiber's single outstanding wake/resume (see
     *  DpCore::ResumeEvent for the pattern). recvUntil's deadline
     *  timer stays a pooled callback: several stale timers can be
     *  in flight at once, disarmed by wakeGen. */
    class ResumeEvent final : public sim::Event
    {
      public:
        explicit ResumeEvent(HostA9 &h_)
            : sim::Event(sim::EvTag::Host), h(h_)
        {
        }
        void process() override { h.resume(); }
        const char *name() const override { return "a9.resume"; }

      private:
        HostA9 &h;
    };
    ResumeEvent resumeEvent{*this};

    sim::EventQueue &eq;
    mbc::Mbc &mbcRef;
    std::unique_ptr<sim::Fiber> fiber;
    HostFn program;
    bool done = false;
    bool blocked = false;
    /** Bumped on every blocking wait so a stale recvUntil deadline
     *  timer (whose wait already ended) can tell it lost the race
     *  and must not resume the fiber a second time. */
    std::uint64_t wakeGen = 0;
};

} // namespace dpu::soc

#endif // DPU_SOC_HOST_A9_HH

#include "soc/host_a9.hh"

#include "sim/logging.hh"

namespace dpu::soc {

HostA9::HostA9(sim::EventQueue &eq_, mbc::Mbc &mbc_)
    : eq(eq_), mbcRef(mbc_)
{
    // The driver's interrupt handler: wake the host fiber whenever
    // its mailbox raises.
    mbcRef.onMessage(mbcRef.a9Box(), [this] {
        if (blocked) {
            blocked = false;
            eq.scheduleIn(0, resumeEvent);
        }
    });
}

void
HostA9::start(HostFn fn)
{
    sim_assert(!fiber, "A9 program already started");
    program = std::move(fn);
    fiber = std::make_unique<sim::Fiber>([this] { program(*this); });
    eq.scheduleIn(0, resumeEvent);
}

void
HostA9::resume()
{
    fiber->resume();
    if (fiber->finished())
        done = true;
}

void
HostA9::yield()
{
    fiber->yield();
}

void
HostA9::sendToCore(unsigned core, std::uint64_t msg)
{
    mbcRef.sendFromHost(core, msg);
}

void
HostA9::block()
{
    ++wakeGen;
    blocked = true;
}

std::uint64_t
HostA9::recv()
{
    std::uint64_t msg;
    while (!mbcRef.tryRecv(mbcRef.a9Box(), msg)) {
        block();
        yield();
    }
    return msg;
}

bool
HostA9::tryRecv(std::uint64_t &msg)
{
    return mbcRef.tryRecv(mbcRef.a9Box(), msg);
}

bool
HostA9::recvUntil(sim::Tick deadline, std::uint64_t &msg)
{
    while (!mbcRef.tryRecv(mbcRef.a9Box(), msg)) {
        if (eq.now() >= deadline)
            return false;
        block();
        const std::uint64_t gen = wakeGen;
        eq.schedule(deadline,
                    [this, gen] {
                        // Only fire if this exact wait is still
                        // pending: a message wake (or a newer wait)
                        // invalidates the timer.
                        if (blocked && gen == wakeGen) {
                            blocked = false;
                            resume();
                        }
                    },
                    sim::EvTag::Host);
        yield();
    }
    return true;
}

void
HostA9::busyUs(double us)
{
    eq.scheduleIn(sim::Tick(us * 1e6), resumeEvent);
    yield();
}

void
HostA9::sleepUntil(sim::Tick when)
{
    if (when <= eq.now())
        return;
    // Not a "blocked" wait: a message arriving mid-sleep must not
    // resume the fiber early (and must not double-resume it).
    eq.schedule(when, resumeEvent);
    yield();
}

} // namespace dpu::soc

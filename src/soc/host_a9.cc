#include "soc/host_a9.hh"

#include "sim/logging.hh"

namespace dpu::soc {

HostA9::HostA9(sim::EventQueue &eq_, mbc::Mbc &mbc_)
    : eq(eq_), mbcRef(mbc_)
{
    // The driver's interrupt handler: wake the host fiber whenever
    // its mailbox raises.
    mbcRef.onMessage(mbcRef.a9Box(), [this] {
        if (blocked) {
            blocked = false;
            eq.scheduleIn(0, [this] { resume(); });
        }
    });
}

void
HostA9::start(HostFn fn)
{
    sim_assert(!fiber, "A9 program already started");
    program = std::move(fn);
    fiber = std::make_unique<sim::Fiber>([this] { program(*this); });
    eq.scheduleIn(0, [this] { resume(); });
}

void
HostA9::resume()
{
    fiber->resume();
    if (fiber->finished())
        done = true;
}

void
HostA9::yield()
{
    fiber->yield();
}

void
HostA9::sendToCore(unsigned core, std::uint64_t msg)
{
    mbcRef.sendFromHost(core, msg);
}

std::uint64_t
HostA9::recv()
{
    std::uint64_t msg;
    while (!mbcRef.tryRecv(mbcRef.a9Box(), msg)) {
        blocked = true;
        yield();
    }
    return msg;
}

void
HostA9::busyUs(double us)
{
    eq.scheduleIn(sim::Tick(us * 1e6), [this] { resume(); });
    yield();
}

} // namespace dpu::soc

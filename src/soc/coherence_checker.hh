/**
 * @file
 * Coherence-violation detector (Section 4: "We developed debugging
 * tools that identify data races and coherence violations, ranging
 * from simulator extensions that monitor code execution at
 * instruction level...").
 *
 * The DPU has no hardware coherence, so a load that hits a line
 * dirty in ANOTHER core's private cache observes stale data unless
 * the program inserted the right flush/invalidate pair (or routed
 * the access through the owner with an ATE RPC). This checker hooks
 * every direct cached access and records exactly those hazards:
 *
 *  - stale-read:  core A reads a DDR line that is dirty in core B's
 *    L1 — A cannot see B's bytes;
 *  - write-write: core A dirties a line that is already dirty in
 *    core B's L1 — one of the writebacks will be lost.
 *  - stale-DMS-read: the DMS (which bypasses the caches) writes a
 *    DDR line while core A holds a cached copy, and A later reads
 *    the line from its cache without invalidating first — A sees
 *    pre-DMS data.
 *
 * ATE remote operations are exempt by construction (they execute in
 * the owner's pipeline), which is why the paper's "pin the structure
 * to one owner core" idiom passes clean.
 *
 * When the tracer is armed, every recorded hazard also emits an
 * instant event on the SoC trace process (track = accessor core).
 */

#ifndef DPU_SOC_COHERENCE_CHECKER_HH
#define DPU_SOC_COHERENCE_CHECKER_HH

#include <set>
#include <utility>
#include <vector>

#include "mem/addr.hh"
#include "sim/types.hh"

namespace dpu::soc {

class Soc;

/** One detected hazard. */
struct CoherenceViolation
{
    mem::Addr line;       ///< 64 B line address
    unsigned accessor;    ///< core performing the access
    /** Core holding the line dirty (== accessor for DMS hazards). */
    unsigned dirtyOwner;
    bool accessWasWrite;
    sim::Tick when;
    /** True for a stale read of a line the DMS overwrote. */
    bool viaDms = false;
};

/** Opt-in cross-core coherence monitor. */
class CoherenceChecker
{
  public:
    /** Attach to every dpCore of @p soc. Detaches on destruction. */
    explicit CoherenceChecker(Soc &soc);
    ~CoherenceChecker();

    CoherenceChecker(const CoherenceChecker &) = delete;
    CoherenceChecker &operator=(const CoherenceChecker &) = delete;

    const std::vector<CoherenceViolation> &violations() const
    {
        return log;
    }

    std::size_t
    staleReads() const
    {
        std::size_t n = 0;
        for (const auto &v : log)
            n += !v.accessWasWrite;
        return n;
    }

    std::size_t
    conflictingWrites() const
    {
        return log.size() - staleReads();
    }

    std::size_t
    staleDmsReads() const
    {
        std::size_t n = 0;
        for (const auto &v : log)
            n += v.viaDms;
        return n;
    }

    void clear() { log.clear(); }

  private:
    void check(unsigned core, mem::Addr addr, std::uint32_t len,
               bool write);
    void onDmsWrite(mem::Addr addr, std::uint32_t len);
    void recordViolation(const CoherenceViolation &v);

    Soc &chip;
    std::vector<CoherenceViolation> log;
    /** (core, line) pairs staled by a DMS write, pending a read. */
    std::set<std::pair<unsigned, mem::Addr>> dmsStale;
};

} // namespace dpu::soc

#endif // DPU_SOC_COHERENCE_CHECKER_HH

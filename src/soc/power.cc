#include "soc/power.hh"

#include "sim/logging.hh"

namespace dpu::soc {

PowerModel::PowerModel(const SocParams &params)
    : p(params), nMacros(params.nCores() / 8),
      macros(nMacros, PowerState::Active)
{
    // Published anchors: >37% leakage; 51 mW dynamic per dpCore.
    leakageW = 0.37 * p.designWatts;
    coresDynW = p.coreDynamicW * p.nCores();

    // Remaining budget split across the data-movement and uncore
    // blocks in proportions consistent with the die's emphasis on
    // the memory system (reconstruction; see DESIGN.md).
    double rest = p.designWatts - leakageW - coresDynW;
    sim_assert(rest > 0, "power budget under-provisioned");
    dmsW = 0.28 * rest;
    ddrCtlW = 0.34 * rest;
    armW = 0.16 * rest;
    nocW = 0.08 * rest;
    periphW = 0.14 * rest;
}

void
PowerModel::setMacroState(unsigned macro, PowerState state)
{
    sim_assert(macro < nMacros, "bad macro %u", macro);
    macros[macro] = state;
}

PowerState
PowerModel::macroState(unsigned macro) const
{
    sim_assert(macro < nMacros, "bad macro %u", macro);
    return macros[macro];
}

double
PowerModel::totalWatts() const
{
    // Leakage attributable to the core macros (roughly half the
    // die's leaky area) scales with gating; the rest is uncore.
    const double macro_leak = 0.5 * leakageW / nMacros;
    const double core_dyn = coresDynW / nMacros;

    double w = 0.5 * leakageW + dmsW + ddrCtlW + armW + nocW +
               periphW;
    for (PowerState s : macros) {
        switch (s) {
          case PowerState::Active:
            w += macro_leak + core_dyn;
            break;
          case PowerState::ClockGated:
            w += macro_leak;
            break;
          case PowerState::Retention:
            w += 0.3 * macro_leak;
            break;
          case PowerState::Off:
            break;
        }
    }
    return w;
}

std::vector<PowerComponent>
PowerModel::breakdown() const
{
    return {
        {"leakage", leakageW},
        {"dpCores (dynamic)", coresDynW},
        {"DMS", dmsW},
        {"DDR controller + PHY", ddrCtlW},
        {"ARM A9 + M0", armW},
        {"ATE / MBC / NoC", nocW},
        {"PCIe + peripherals", periphW},
    };
}

} // namespace dpu::soc

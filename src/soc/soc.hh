/**
 * @file
 * The DPU System-on-Chip, assembled (Section 2.4, Figure 3).
 *
 * Wires together: N 32-core complexes (each with 4 macros of 8
 * dpCores, per-macro shared L2s, and a DMS), the ATE crossbars, the
 * MBC, the single DDR channel, and the power model. At 40 nm there
 * is one complex; the 16 nm configuration replicates five.
 *
 * The A9 host complex and M0 power manager are modelled thinly: the
 * A9 is a dispatch endpoint on the MBC (see HostA9), the M0 is the
 * PowerModel's gating interface. Their Linux/network stack is out
 * of evaluation scope (all paper experiments are on-die).
 */

#ifndef DPU_SOC_SOC_HH
#define DPU_SOC_SOC_HH

#include <memory>
#include <ostream>
#include <vector>

#include "ate/ate.hh"
#include "core/dp_core.hh"
#include "dms/dms.hh"
#include "mbc/mbc.hh"
#include "mem/cache.hh"
#include "mem/main_memory.hh"
#include "sim/event_queue.hh"
#include "soc/power.hh"
#include "soc/soc_params.hh"

namespace dpu::soc {

/** One simulated DPU. */
class Soc
{
  public:
    explicit Soc(const SocParams &params = dpu40nm());

    /**
     * Build the chip on an externally owned event queue. This is
     * how a multi-DPU Board (board/board.hh) composes chips: every
     * Soc gets its OWN queue partition, owned and driven by the
     * Board's epoch runner (sim/parallel.hh), which advances the
     * partitions in conservative epochs bounded by the link
     * latency. All of this chip's events — cores, DMS, ATE, MBC,
     * DDR — stay on its one partition, so inside the chip the
     * single-kernel execution model is unchanged; only the Board
     * (never the Soc) should drive the queue it handed in.
     */
    Soc(sim::EventQueue &shared, const SocParams &params = dpu40nm());

    const SocParams &params() const { return p; }
    unsigned nCores() const { return p.nCores(); }

    // ------------------------------------------------------------
    // Program control
    // ------------------------------------------------------------

    /** Start @p kernel on core @p id at the current tick. */
    void start(unsigned id, core::Kernel kernel);

    /**
     * Start the same kernel image on every dpCore — the chip's
     * execution model (Section 4: "Each dpCore executes the same
     * binary executable image").
     */
    void startAll(core::Kernel kernel);

    /** Run the event queue until it drains; @return end tick. */
    sim::Tick run();

    /** Run with a simulated-time limit (deadlock detection). */
    sim::Tick runFor(sim::Tick limit);

    /** True when every started kernel has returned. */
    bool allFinished() const;

    /** Ids of started cores whose kernels have not returned (the
     *  first thing to look at when a run deadlocks). */
    std::vector<unsigned> unfinishedCores() const;

    sim::Tick now() const { return eq.now(); }

    /** Seconds of simulated time elapsed. */
    double seconds() const { return double(eq.now()) * 1e-12; }

    // ------------------------------------------------------------
    // Blocks
    // ------------------------------------------------------------

    sim::EventQueue &eventQueue() { return eq; }
    mem::MainMemory &memory() { return *mm; }
    core::DpCore &core(unsigned id) { return *cores[id]; }
    dms::Dms &dms(unsigned complex = 0) { return *dmsUnits[complex]; }
    ate::Ate &ate(unsigned complex = 0) { return *ateUnits[complex]; }
    mbc::Mbc &mbc() { return *mbcUnit; }
    PowerModel &power() { return powerModel; }

    /** The DMS complex serving core @p id. */
    dms::Dms &
    dmsFor(unsigned id)
    {
        return *dmsUnits[id / p.coresPerComplex];
    }

    /** The ATE complex serving core @p id. */
    ate::Ate &
    ateFor(unsigned id)
    {
        return *ateUnits[id / p.coresPerComplex];
    }

    /** Dump all stat groups. */
    void dumpStats(std::ostream &os);

    /**
     * Emit an "eventq" trace counter (pending depth, total executed
     * events) every @p period ticks while the tracer is armed — a
     * heartbeat track that makes stalls visible in Perfetto without
     * per-event cost. The ticker cancels itself on the first firing
     * with tracing disarmed, so it never keeps run() from draining.
     */
    void enableQueueSampling(sim::Tick period);

  private:
    /** Delegation target of both public constructors. */
    Soc(sim::EventQueue *shared, const SocParams &params);

    SocParams p;
    /** Null when the queue is shared (Board-owned). */
    std::unique_ptr<sim::EventQueue> ownedEq;
    sim::EventQueue &eq;
    std::unique_ptr<mem::MainMemory> mm;
    std::vector<std::unique_ptr<mem::Cache>> l2s;
    std::vector<std::unique_ptr<core::DpCore>> cores;
    std::vector<core::DpCore *> corePtrs;
    std::vector<std::unique_ptr<dms::Dms>> dmsUnits;
    std::vector<std::unique_ptr<ate::Ate>> ateUnits;
    std::unique_ptr<mbc::Mbc> mbcUnit;
    PowerModel powerModel;
    std::vector<bool> started;
    std::unique_ptr<sim::PeriodicEvent> queueSampler;
};

} // namespace dpu::soc

#endif // DPU_SOC_SOC_HH

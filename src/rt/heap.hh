/**
 * @file
 * Two-level heap allocator over DDR (Section 4: "A two-level heap
 * allocator similar to Hoard or TCMalloc allows efficient, dynamic
 * management of most of DRAM space").
 *
 * Level 1: a central superblock allocator carving 64 KB superblocks
 * out of the managed DDR range, guarded by a mutex word (on the real
 * chip an ATE-serialized structure; the simulator charges the
 * synchronization cost through the provided core handle).
 * Level 2: per-core size-class free lists that own whole
 * superblocks, so the common path allocates with no cross-core
 * traffic at all — the paper's "little sharing of data between
 * processors" observation.
 *
 * Allocation metadata lives host-side; the returned values are
 * simulated physical addresses. Blocks are cache-line aligned so
 * allocations never false-share (Section 4: the compiler aligns
 * globals to cache-block boundaries for the same reason).
 */

#ifndef DPU_RT_HEAP_HH
#define DPU_RT_HEAP_HH

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/dp_core.hh"
#include "mem/addr.hh"

namespace dpu::rt {

/** The DPU heap. One instance manages one DDR range for all cores. */
class Heap
{
  public:
    static constexpr std::uint32_t superblockBytes = 64 * 1024;
    static constexpr unsigned nSizeClasses = 10; // 16 B .. 8 KB

    /**
     * @param base    First managed DDR address (64 B aligned).
     * @param bytes   Managed range size.
     * @param n_cores Cores that may allocate.
     */
    Heap(mem::Addr base, std::uint64_t bytes, unsigned n_cores);

    /**
     * Allocate @p bytes for core @p c. Charges the local fast path
     * (~tens of cycles) or the central refill path. Requests above
     * the largest size class are served directly from the central
     * allocator, rounded to superblocks.
     * @return 64 B aligned simulated address; panics when exhausted.
     */
    mem::Addr alloc(core::DpCore &c, std::uint64_t bytes);

    /**
     * alloc() that reports exhaustion instead of terminating the
     * simulation: returns std::nullopt when the arena cannot satisfy
     * the request, so callers can shed load (reject a job, flush a
     * cache) rather than die. Charges the same cycle costs.
     */
    std::optional<mem::Addr> tryAlloc(core::DpCore &c,
                                      std::uint64_t bytes);

    /** Return a block to the allocating core's free list. */
    void free(core::DpCore &c, mem::Addr p);

    /** Bytes currently handed out. */
    std::uint64_t liveBytes() const { return live; }

    /** Bytes of DDR consumed from the arena (high-water mark). */
    std::uint64_t
    arenaUsed() const
    {
        return nextSuper - baseAddr;
    }

  private:
    /** Size class index for a request, or nSizeClasses if huge. */
    static unsigned classOf(std::uint64_t bytes);

    /** Block size of a size class. */
    static std::uint32_t classBytes(unsigned k);

    /** Carve a fresh superblock (central, mutex-charged). */
    mem::Addr grabSuperblock(core::DpCore &c, std::uint64_t bytes);

    /** grabSuperblock that reports exhaustion via std::nullopt. */
    std::optional<mem::Addr> tryGrabSuperblock(core::DpCore &c,
                                               std::uint64_t bytes);

    struct CoreBins
    {
        std::array<std::vector<mem::Addr>, nSizeClasses> freeLists;
    };

    mem::Addr baseAddr;
    mem::Addr endAddr;
    mem::Addr nextSuper;
    std::vector<CoreBins> bins;
    /** Size of every live or freed block, by address. */
    std::map<mem::Addr, std::uint64_t> blockSize;
    std::uint64_t live = 0;
};

} // namespace dpu::rt

#endif // DPU_RT_HEAP_HH

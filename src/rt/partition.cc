#include "rt/partition.hh"

#include "sim/logging.hh"

namespace dpu::rt {

namespace {

/** Build the three-descriptor chunk group for pipeline slot @p b. */
void
pushChunk(DmsCtl &ctl, const PartitionJob &job, unsigned b,
          std::uint32_t rows, bool src_inc, mem::Addr explicit_src,
          std::vector<DescHandle> *handles)
{
    using dms::Descriptor;
    using dms::DescType;

    Descriptor load;
    load.type = DescType::DdrToDms;
    load.rows = rows;
    load.colWidth = job.colWidth;
    load.nCols = job.nCols;
    load.colStride = job.colStride;
    load.colMask = job.colMask;
    load.ddrAddr = explicit_src;
    load.ibank = std::uint8_t(b % dms::nCmemBanks);
    load.srcAddrInc = src_inc;

    Descriptor hash;
    hash.type = DescType::HashCol;
    hash.rows = rows;
    hash.colWidth = job.colWidth;
    hash.nCols = job.nCols;
    hash.ibank = load.ibank;
    hash.ibank2 = std::uint8_t(b % dms::nCrcBanks);
    hash.cidBank = std::uint8_t(b % dms::nCidBanks);
    hash.rangeMode =
        job.scheme.kind == PartitionScheme::Kind::Range;

    Descriptor store;
    store.type = DescType::DmsToDmem;
    store.rows = rows;
    store.colWidth = job.colWidth;
    store.nCols = job.nCols;
    store.ibank = load.ibank;
    store.cidBank = hash.cidBank;

    DescHandle hl = ctl.setup(load);
    DescHandle hh = ctl.setup(hash);
    DescHandle hs = ctl.setup(store);
    if (handles) {
        handles->push_back(hl);
        handles->push_back(hh);
        handles->push_back(hs);
    } else {
        ctl.push(hl, 0);
        ctl.push(hh, 0);
        ctl.push(hs, 0);
    }
}

} // namespace

void
runPartition(DmsCtl &ctl, const PartitionJob &job)
{
    using dms::Descriptor;
    using dms::DescType;

    sim_assert(job.nRows > 0, "empty partition job");
    sim_assert(job.colMask == 0 || (job.colMask & 1),
               "projection must keep the key column");
    sim_assert(job.chunkRows <= dms::cidBankBytes,
               "chunk exceeds CID bank: %u rows", job.chunkRows);
    sim_assert(job.chunkRows * job.nCols * job.colWidth <=
               dms::cmemBankBytes, "chunk exceeds CMEM bank");
    sim_assert(job.dstBufBytes >
               4u + unsigned(job.nCols) * job.colWidth,
               "partition buffer smaller than one tuple");

    core::DpCore &c = ctl.dpCore();

    // 1. Program the hash or range engine.
    if (job.scheme.kind == PartitionScheme::Kind::Range) {
        sim_assert(job.scheme.bounds.size() == 32,
                   "range scheme needs exactly 32 bounds");
        for (unsigned i = 0; i < 32; ++i) {
            c.dmem().store<std::uint64_t>(rtScratchBase + 256 + i * 8,
                                          job.scheme.bounds[i]);
        }
        c.dualIssue(32, 32);
        Descriptor rp;
        rp.type = DescType::RangeProg;
        rp.dmemAddr = std::uint16_t(rtScratchBase + 256);
        ctl.push(ctl.setup(rp), 0);
    } else {
        Descriptor hp;
        hp.type = DescType::HashProg;
        hp.hashUseCrc =
            job.scheme.kind == PartitionScheme::Kind::HashRadix;
        hp.radixBits = job.scheme.radixBits;
        hp.radixShift = job.scheme.radixShift;
        ctl.push(ctl.setup(hp), 0);
    }

    // 2. Configure every destination ring (8 B entries in DMEM).
    for (unsigned i = 0; i < job.nTargets; ++i) {
        std::uint32_t off = rtScratchBase + i * 8;
        c.dmem().store<std::uint16_t>(off, job.dstBase);
        c.dmem().store<std::uint16_t>(off + 2, job.dstBufBytes);
        c.dmem().store<std::uint8_t>(off + 4, job.dstFirstEvent);
        c.dmem().store<std::uint8_t>(off + 5, job.dstNBufs);
        c.dmem().store<std::uint16_t>(off + 6, 0);
    }
    c.dualIssue(job.nTargets * 2, job.nTargets * 2);
    Descriptor cfg;
    cfg.type = DescType::PartDstCfg;
    cfg.rows = job.nTargets;
    cfg.dmemAddr = std::uint16_t(rtScratchBase);
    ctl.push(ctl.setup(cfg), 0);

    // 3. The pipelined chunk chain (Figure 10): groups of three
    // full chunks rotate the CMEM banks; a loop descriptor replays
    // the group; explicit descriptors mop up the remainder.
    const std::uint32_t full = job.nRows / job.chunkRows;
    const std::uint32_t tail = job.nRows % job.chunkRows;
    const std::uint32_t groups = full / dms::nCmemBanks;
    const std::uint32_t rem_full = full % dms::nCmemBanks;

    unsigned bank = 0;
    if (groups > 0) {
        std::vector<DescHandle> handles;
        for (unsigned b = 0; b < dms::nCmemBanks; ++b)
            pushChunk(ctl, job, b, job.chunkRows, true, job.table,
                      &handles);
        DescHandle loop =
            ctl.setupLoop(handles.front(),
                          std::uint16_t(groups - 1));
        for (DescHandle h : handles)
            ctl.push(h, 0);
        ctl.push(loop, 0);
        bank = 0; // after a whole group the rotation re-starts at 0
    }

    // Every load keeps srcAddrInc set: the first executed load arms
    // the channel's source register with job.table and each later
    // one continues from where the previous chunk ended.
    for (unsigned i = 0; i < rem_full; ++i, ++bank)
        pushChunk(ctl, job, bank, job.chunkRows, true, job.table,
                  nullptr);
    if (tail > 0)
        pushChunk(ctl, job, bank, tail, true, job.table, nullptr);

    // 4. Flush partial buffers; its completion raises doneEvent.
    Descriptor flush;
    flush.type = DescType::PartFlush;
    flush.notifyEvent = std::int8_t(job.doneEvent);
    ctl.push(ctl.setup(flush), 0);
}

std::uint64_t
consumePartition(
    DmsCtl &ctl, std::uint16_t base, std::uint16_t buf_bytes,
    std::uint8_t n_bufs, std::uint8_t first_event,
    const std::function<void(std::uint32_t, std::uint32_t)> &fn)
{
    core::DpCore &c = ctl.dpCore();
    std::uint64_t total = 0;
    unsigned buf = 0;
    while (true) {
        unsigned ev = first_event + buf;
        ctl.wfe(ev);
        std::uint32_t off = base + std::uint32_t(buf) * buf_bytes;
        std::uint32_t hdr = c.dmem().load<std::uint32_t>(off);
        c.dualIssue(2, 1);
        std::uint32_t rows = hdr & 0x7fffffffu;
        bool final_buf = hdr >> 31;
        if (rows > 0)
            fn(off + 4, rows);
        total += rows;
        ctl.clearEvent(ev);
        if (final_buf)
            break;
        buf = (buf + 1) % n_bufs;
    }
    return total;
}

} // namespace dpu::rt

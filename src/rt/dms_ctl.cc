#include "rt/dms_ctl.hh"

#include "sim/logging.hh"

namespace dpu::rt {

// ----------------------------------------------------------------
// DmsXfer builder
// ----------------------------------------------------------------

dms::Descriptor
DmsXfer::descriptor() const
{
    sim_assert(haveSrc && haveDst,
               "DmsXfer needs both from() and to()");
    sim_assert(nRows > 0 && nRows <= 0xffff,
               "DmsXfer rows %u out of the 16-bit field", nRows);
    sim_assert(elemWidth == 1 || elemWidth == 2 || elemWidth == 4 ||
                   elemWidth == 8,
               "DmsXfer width %u not 1/2/4/8", elemWidth);

    const bool to_dmem = type == dms::DescType::DdrToDmem;
    const mem::Addr ddr_side = to_dmem ? srcOperand : dstOperand;
    const mem::Addr dmem_side = to_dmem ? dstOperand : srcOperand;
    const std::uint64_t span = std::uint64_t(nRows) * elemWidth;
    sim_assert(dmem_side + span <= mem::dmemBytes,
               "DmsXfer DMEM operand 0x%llx + %u rows x %u B "
               "overruns the 32 KB scratchpad (swapped from()/to()?)",
               (unsigned long long)dmem_side, nRows, elemWidth);

    dms::Descriptor d;
    d.type = type;
    d.rows = nRows;
    d.colWidth = elemWidth;
    d.ddrAddr = ddr_side;
    d.dmemAddr = std::uint16_t(dmem_side);
    d.notifyEvent = notify;
    d.waitEvent = wait;
    // The auto-incremented side is the DDR one on both directions
    // (the DMEM buffer rewinds every loop iteration, Listing 1).
    d.srcAddrInc = ddrInc;
    return d;
}

DescHandle
DmsXfer::setup()
{
    return ctl.setup(descriptor());
}

void
DmsXfer::rewriteAt(DescHandle at)
{
    ctl.rewrite(at, descriptor());
}

DescHandle
DmsXfer::push(unsigned ch)
{
    DescHandle h = setup();
    ctl.push(h, ch);
    return h;
}

DescHandle
DmsCtl::setup(const dms::Descriptor &d)
{
    sim_assert(arenaNext + 16 <= mem::dmemBytes,
               "descriptor arena exhausted on core %u", core.id());
    dms::EncodedDesc e = dms::encode(d);
    std::uint16_t at = std::uint16_t(arenaNext);
    core.dmem().write(at, e.w.data(), sizeof(e.w));
    // Building the 16 B descriptor costs a handful of stores.
    core.dualIssue(4, 4);
    arenaNext += 16;
    return at;
}

void
DmsCtl::rewrite(DescHandle at, const dms::Descriptor &d)
{
    dms::EncodedDesc e = dms::encode(d);
    core.dmem().write(at, e.w.data(), sizeof(e.w));
    core.dualIssue(4, 4);
}

DescHandle
DmsCtl::setupDdrToDmem(std::uint32_t rows, std::uint8_t width,
                       mem::Addr src, std::uint16_t dst, int event,
                       bool src_inc)
{
    return ddrToDmem().rows(rows).width(width).from(src).to(dst)
        .event(event).autoInc(src_inc).setup();
}

DescHandle
DmsCtl::setupDmemToDdr(std::uint32_t rows, std::uint8_t width,
                       std::uint16_t src, mem::Addr dst, int event,
                       bool dst_inc)
{
    return dmemToDdr().rows(rows).width(width).from(src).to(dst)
        .event(event).autoInc(dst_inc).setup();
}

DescHandle
DmsCtl::setupLoop(DescHandle target, std::uint16_t iterations)
{
    dms::Descriptor d;
    d.type = dms::DescType::Loop;
    d.linkAddr = target;
    d.iterations = iterations;
    return setup(d);
}

void
DmsCtl::push(DescHandle desc, unsigned ch)
{
    dmsRef.push(core, ch, desc);
}

// ----------------------------------------------------------------
// StreamReader
// ----------------------------------------------------------------

StreamReader::StreamReader(DmsCtl &ctl_, mem::Addr src,
                           std::uint64_t total_bytes,
                           std::uint16_t dmem_base,
                           std::uint32_t buf_bytes, unsigned n_bufs,
                           unsigned first_event, unsigned channel)
    : ctl(ctl_), totalBytes(total_bytes), dmemBase(dmem_base),
      bufBytes(buf_bytes), nBufs(n_bufs), firstEvent(first_event)
{
    sim_assert(buf_bytes % 4 == 0, "buffer size must be 4 B aligned");
    sim_assert(total_bytes > 0, "empty stream");

    const std::uint64_t full_bufs = total_bytes / buf_bytes;
    const std::uint32_t partial =
        std::uint32_t(total_bytes % buf_bytes);
    const std::uint64_t full_groups = full_bufs / n_bufs;
    const unsigned rem_full = unsigned(full_bufs % n_bufs);

    // Listing 1: n descriptors sharing one auto-incremented source
    // register, plus a loop descriptor re-running the group. The
    // loop covers only FULL groups — an overshooting transfer would
    // park the channel on an event nobody will ever clear — and
    // explicit descriptors mop up the remainder (the final one
    // right-sized so the stream reads exactly total_bytes, rounded
    // up to whole 4 B elements).
    if (full_groups > 0) {
        std::vector<DescHandle> handles;
        for (unsigned b = 0; b < n_bufs; ++b) {
            handles.push_back(ctl.setupDdrToDmem(
                buf_bytes / 4, 4, src,
                std::uint16_t(dmem_base + b * buf_bytes),
                int(first_event + b), true));
        }
        DescHandle loop = ctl.setupLoop(
            handles.front(), std::uint16_t(full_groups - 1));
        for (DescHandle h : handles)
            ctl.push(h, channel);
        ctl.push(loop, channel);
    }
    unsigned ring_pos = 0;
    for (unsigned b = 0; b < rem_full; ++b, ++ring_pos) {
        DescHandle h = ctl.setupDdrToDmem(
            buf_bytes / 4, 4, src,
            std::uint16_t(dmem_base + ring_pos * buf_bytes),
            int(first_event + ring_pos), true);
        ctl.push(h, channel);
    }
    if (partial > 0) {
        DescHandle h = ctl.setupDdrToDmem(
            (partial + 3) / 4, 4, src,
            std::uint16_t(dmem_base + ring_pos * buf_bytes),
            int(first_event + ring_pos), true);
        ctl.push(h, channel);
    }
}

void
StreamReader::forEach(
    const std::function<void(std::uint32_t, std::uint32_t)> &fn)
{
    std::uint64_t consumed = 0;
    unsigned buf = 0;
    while (consumed < totalBytes) {
        unsigned ev = firstEvent + buf;
        ctl.wfe(ev);
        std::uint32_t valid = std::uint32_t(
            std::min<std::uint64_t>(bufBytes, totalBytes - consumed));
        fn(dmemBase + buf * bufBytes, valid);
        ctl.clearEvent(ev);
        consumed += valid;
        buf = (buf + 1) % nBufs;
    }
}

// ----------------------------------------------------------------
// StreamWriter
// ----------------------------------------------------------------

StreamWriter::StreamWriter(DmsCtl &ctl_, mem::Addr dst_,
                           std::uint16_t dmem_base,
                           std::uint32_t buf_bytes, unsigned n_bufs,
                           unsigned first_event, unsigned channel_)
    : ctl(ctl_), dst(dst_), dmemBase(dmem_base), bufBytes(buf_bytes),
      nBufs(n_bufs), firstEvent(first_event), channel(channel_),
      pending(n_bufs, false), slots(n_bufs)
{
    sim_assert(buf_bytes % 4 == 0, "buffer size must be 4 B aligned");
    // Pre-allocate one rewritable arena slot per ring buffer so a
    // long stream does not exhaust the descriptor arena.
    dms::Descriptor nop;
    for (unsigned b = 0; b < n_bufs; ++b)
        slots[b] = ctl.setup(nop);
}

std::uint32_t
StreamWriter::acquire()
{
    if (pending[cur]) {
        unsigned ev = firstEvent + cur;
        ctl.wfe(ev);
        ctl.clearEvent(ev);
        pending[cur] = false;
    }
    return dmemBase + cur * bufBytes;
}

void
StreamWriter::commit(std::uint32_t bytes)
{
    sim_assert(bytes % 4 == 0 && bytes <= bufBytes,
               "bad commit size %u", bytes);
    if (bytes == 0)
        return;
    sim_assert(!pending[cur], "commit without acquire");
    unsigned ev = firstEvent + cur;

    dms::Descriptor d;
    d.type = dms::DescType::DmemToDdr;
    d.rows = bytes / 4;
    d.colWidth = 4;
    d.dmemAddr = std::uint16_t(dmemBase + cur * bufBytes);
    d.ddrAddr = dst + written;
    d.notifyEvent = std::int8_t(ev);
    ctl.rewrite(slots[cur], d);
    ctl.push(slots[cur], channel);

    pending[cur] = true;
    written += bytes;
    cur = (cur + 1) % nBufs;
}

void
StreamWriter::finish()
{
    for (unsigned b = 0; b < nBufs; ++b) {
        unsigned slot = (cur + b) % nBufs;
        if (pending[slot]) {
            ctl.wfe(firstEvent + slot);
            ctl.clearEvent(firstEvent + slot);
            pending[slot] = false;
        }
    }
}

} // namespace dpu::rt

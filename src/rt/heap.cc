#include "rt/heap.hh"

#include "sim/logging.hh"

namespace dpu::rt {

namespace {

/** Fast-path and central-path cycle charges. */
constexpr sim::Cycles localAllocCycles = 24;
constexpr sim::Cycles centralAllocCycles = 180;
constexpr sim::Cycles localFreeCycles = 16;

} // namespace

Heap::Heap(mem::Addr base, std::uint64_t bytes, unsigned n_cores)
    : baseAddr((base + 63) & ~mem::Addr(63)), endAddr(base + bytes),
      nextSuper(baseAddr), bins(n_cores)
{
    sim_assert(endAddr > baseAddr + superblockBytes,
               "heap arena too small");
}

unsigned
Heap::classOf(std::uint64_t bytes)
{
    std::uint32_t sz = 16;
    for (unsigned k = 0; k < nSizeClasses; ++k, sz *= 2) {
        if (bytes <= sz)
            return k;
    }
    return nSizeClasses;
}

std::uint32_t
Heap::classBytes(unsigned k)
{
    return 16u << k;
}

std::optional<mem::Addr>
Heap::tryGrabSuperblock(core::DpCore &c, std::uint64_t bytes)
{
    // Central path: on chip this serializes on an ATE-owned mutex;
    // charge that cost to the requesting core (even for a failing
    // probe — the core walked the central structure to learn it).
    c.cycles(centralAllocCycles);
    std::uint64_t need =
        (bytes + superblockBytes - 1) / superblockBytes *
        superblockBytes;
    if (nextSuper + need > endAddr)
        return std::nullopt;
    mem::Addr p = nextSuper;
    nextSuper += need;
    return p;
}

mem::Addr
Heap::grabSuperblock(core::DpCore &c, std::uint64_t bytes)
{
    auto p = tryGrabSuperblock(c, bytes);
    if (!p)
        fatal("DPU heap exhausted: %llu bytes requested",
              (unsigned long long)bytes);
    return *p;
}

std::optional<mem::Addr>
Heap::tryAlloc(core::DpCore &c, std::uint64_t bytes)
{
    sim_assert(bytes > 0, "zero-byte allocation");
    unsigned k = classOf(bytes);

    if (k == nSizeClasses) {
        // Huge allocation: straight from the central allocator.
        auto p = tryGrabSuperblock(c, bytes);
        if (!p)
            return std::nullopt;
        blockSize[*p] = bytes;
        live += bytes;
        return *p;
    }

    auto &list = bins[c.id()].freeLists[k];
    if (list.empty()) {
        // Refill: carve a whole superblock into blocks of class k.
        auto sb = tryGrabSuperblock(c, superblockBytes);
        if (!sb)
            return std::nullopt;
        std::uint32_t step = std::max<std::uint32_t>(classBytes(k),
                                                     64);
        for (mem::Addr p = *sb; p + step <= *sb + superblockBytes;
             p += step)
            list.push_back(p);
    }

    c.cycles(localAllocCycles);
    mem::Addr p = list.back();
    list.pop_back();
    blockSize[p] = classBytes(k);
    live += classBytes(k);
    return p;
}

mem::Addr
Heap::alloc(core::DpCore &c, std::uint64_t bytes)
{
    auto p = tryAlloc(c, bytes);
    if (!p)
        fatal("DPU heap exhausted: %llu bytes requested",
              (unsigned long long)bytes);
    return *p;
}

void
Heap::free(core::DpCore &c, mem::Addr p)
{
    auto it = blockSize.find(p);
    sim_assert(it != blockSize.end(), "free of unallocated %llx",
               (unsigned long long)p);
    std::uint64_t sz = it->second;
    live -= sz;

    unsigned k = classOf(sz);
    if (k < nSizeClasses) {
        c.cycles(localFreeCycles);
        bins[c.id()].freeLists[k].push_back(p);
    }
    // Huge blocks are not recycled (arena high-water only); fine
    // for the workloads at hand and documented behaviour.
    blockSize.erase(it);
}

} // namespace dpu::rt

/**
 * @file
 * Hardware partitioning driver — the Figure 10 descriptor
 * choreography, packaged.
 *
 * One issuing core programs the hash/range engine, configures every
 * destination core's DMEM buffer ring, and pushes the three-stage
 * pipelined chunk chain (load -> hash+CID -> store) with a loop
 * descriptor; destination cores consume their rings with
 * consumePartition(). Flow control is entirely in hardware: a slow
 * consumer back-pressures the store stage (Section 3.1).
 *
 * Layout contract: the input table is column-major with uniform
 * column width; the key is column 0. Output buffers hold row-major
 * tuples behind a 4 B header (row count; top bit = final buffer).
 */

#ifndef DPU_RT_PARTITION_HH
#define DPU_RT_PARTITION_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "rt/dms_ctl.hh"

namespace dpu::rt {

/** DMEM scratch region the runtime owns (below the desc arena). */
constexpr std::uint32_t rtScratchBase = DmsCtl::arenaBase - 512;

/** How rows are mapped to destination cores. */
struct PartitionScheme
{
    enum class Kind
    {
        HashRadix, ///< CRC32 the key, take radix bits (Figure 13)
        RawRadix,  ///< radix bits straight from the key
        Range,     ///< 32 programmed range boundaries
    };

    Kind kind = Kind::HashRadix;
    std::uint8_t radixBits = 5; ///< 5 bits -> 32-way
    std::uint8_t radixShift = 0;
    /** Ascending inclusive upper bounds (Range only; 32 entries). */
    std::vector<std::uint64_t> bounds;
};

/** A whole-table partition operation. */
struct PartitionJob
{
    mem::Addr table = 0;        ///< base of column 0 (column-major)
    std::uint32_t nRows = 0;
    std::uint8_t colWidth = 4;  ///< uniform column width
    std::uint8_t nCols = 4;     ///< tuple = nCols * colWidth bytes
    std::uint32_t colStride = 0; ///< bytes between column arrays
    /** Projection mask (see dms::Descriptor::colMask); bit 0 (the
     *  key column) must be selected when non-zero. */
    std::uint16_t colMask = 0;

    PartitionScheme scheme{};

    /** Destination ring layout, identical on every target core. */
    std::uint16_t dstBase = 0;
    std::uint16_t dstBufBytes = 2048 + 4;
    std::uint8_t dstNBufs = 2;
    std::uint8_t dstFirstEvent = 16;
    std::uint8_t nTargets = 32;

    /** Issuer event set when the final flush lands. */
    int doneEvent = 30;

    /** Rows per pipeline chunk (<= 256, the CID bank capacity). */
    std::uint32_t chunkRows = 256;
};

/**
 * Push the full descriptor program for @p job on the issuing core's
 * channel 0. Returns immediately (the chain runs asynchronously);
 * wait on job.doneEvent for the flush.
 */
void runPartition(DmsCtl &ctl, const PartitionJob &job);

/**
 * Consume this core's partition ring until the final buffer.
 * @param fn Called per sealed buffer with (payload DMEM offset,
 *           row count).
 * @return total rows received.
 */
std::uint64_t consumePartition(
    DmsCtl &ctl, std::uint16_t base, std::uint16_t buf_bytes,
    std::uint8_t n_bufs, std::uint8_t first_event,
    const std::function<void(std::uint32_t, std::uint32_t)> &fn);

} // namespace dpu::rt

#endif // DPU_RT_PARTITION_HH

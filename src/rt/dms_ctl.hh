/**
 * @file
 * The DMS programming interface of Section 3.1 / Listing 1.
 *
 * DmsCtl wraps one dpCore's view of the DMS: it carves a descriptor
 * arena out of the top of the core's DMEM, offers the paper's
 * dms_setup_* / dms_push / dms_wfe / clear_event calls (camelCased),
 * and provides the double/triple-buffered streaming helpers every
 * co-design application uses (StreamReader / StreamWriter).
 */

#ifndef DPU_RT_DMS_CTL_HH
#define DPU_RT_DMS_CTL_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "core/dp_core.hh"
#include "dms/dms.hh"

namespace dpu::rt {

/** A descriptor handle: the DMEM offset where it was encoded. */
using DescHandle = std::uint16_t;

class DmsCtl;

/**
 * Fluent builder for DDR<->DMEM transfer descriptors.
 *
 * The positional setupDdrToDmem(rows, width, src, dst, event, inc)
 * signature is a transposition footgun — rows/width and src/dst are
 * all integers, so swapped arguments compile silently. The builder
 * names every operand and validates the combination before encoding:
 *
 *   auto d = ctl.ddrToDmem().rows(256).width(4)
 *               .from(src_ddr).to(dmem_off).event(0).setup();
 *   auto w = ctl.dmemToDdr().rows(n).width(4)
 *               .from(dmem_off).to(dst_ddr).event(5).setup();
 *
 * from()/to() are direction-relative: the DMEM-side operand (the
 * destination of ddrToDmem(), the source of dmemToDdr()) must fit
 * the 16-bit DMEM address field and the transfer must stay inside
 * the scratchpad — both asserted at build time, which is exactly
 * the check a transposed call fails. autoInc() arms the DDR-side
 * auto-increment used by Listing 1 loop groups (on by default, as
 * with the positional calls). Terminal operations: setup() encodes
 * into the arena and returns the handle; rewriteAt(h) re-encodes
 * over an existing slot; push(ch) is setup() + dms_push.
 */
class DmsXfer
{
  public:
    DmsXfer &
    rows(std::uint32_t n)
    {
        nRows = n;
        return *this;
    }

    /** Element width in bytes (1/2/4/8). */
    DmsXfer &
    width(std::uint8_t bytes)
    {
        elemWidth = bytes;
        return *this;
    }

    /** Transfer source: a DDR address (ddrToDmem) or DMEM offset. */
    DmsXfer &
    from(mem::Addr src)
    {
        srcOperand = src;
        haveSrc = true;
        return *this;
    }

    /** Transfer destination, mirroring from(). */
    DmsXfer &
    to(mem::Addr dst)
    {
        dstOperand = dst;
        haveDst = true;
        return *this;
    }

    /** Completion/backpressure event (0..31; see Descriptor). */
    DmsXfer &
    event(int e)
    {
        notify = std::int8_t(e);
        return *this;
    }

    /** Extra wait-for-clear precondition event. */
    DmsXfer &
    waitEvent(int e)
    {
        wait = std::int8_t(e);
        return *this;
    }

    /** DDR-side address auto-increment across loop iterations. */
    DmsXfer &
    autoInc(bool on = true)
    {
        ddrInc = on;
        return *this;
    }

    DmsXfer &
    noAutoInc()
    {
        return autoInc(false);
    }

    /** Validate operands and produce the decoded descriptor. */
    dms::Descriptor descriptor() const;

    /** Encode into the arena; @return the descriptor's handle. */
    DescHandle setup();

    /** Re-encode over an already-setup arena slot. */
    void rewriteAt(DescHandle at);

    /** setup() + dms_push onto channel @p ch. */
    DescHandle push(unsigned ch);

  private:
    friend class DmsCtl;

    DmsXfer(DmsCtl &c, dms::DescType t) : ctl(c), type(t) {}

    DmsCtl &ctl;
    dms::DescType type;
    std::uint32_t nRows = 0;
    std::uint8_t elemWidth = 4;
    mem::Addr srcOperand = 0;
    mem::Addr dstOperand = 0;
    std::int8_t notify = -1;
    std::int8_t wait = -1;
    bool ddrInc = true;
    bool haveSrc = false;
    bool haveDst = false;
};

/** One core's DMS control block. */
class DmsCtl
{
  public:
    /** Top-of-DMEM bytes reserved for the descriptor arena. */
    static constexpr std::uint32_t arenaBytes = 2048;

    /** First DMEM offset used by the arena. */
    static constexpr std::uint32_t arenaBase =
        mem::dmemBytes - arenaBytes;

    DmsCtl(core::DpCore &c, dms::Dms &dms) : core(c), dmsRef(dms) {}

    // ------------------------------------------------------------
    // Builder front-end (preferred)
    // ------------------------------------------------------------

    /** Start a DDR -> DMEM transfer descriptor (see DmsXfer). */
    DmsXfer
    ddrToDmem()
    {
        return DmsXfer(*this, dms::DescType::DdrToDmem);
    }

    /** Start a DMEM -> DDR transfer descriptor (see DmsXfer). */
    DmsXfer
    dmemToDdr()
    {
        return DmsXfer(*this, dms::DescType::DmemToDdr);
    }

    // ------------------------------------------------------------
    // Listing 1 interface (positional; thin wrappers over DmsXfer)
    // ------------------------------------------------------------

    /**
     * dms_setup_ddr_to_dmem: move @p rows elements of @p width
     * bytes from DDR @p src to DMEM offset @p dst, setting @p event
     * on completion (and waiting for it to be clear first). With
     * @p src_inc the DDR address auto-increments across loop
     * iterations exactly as in Listing 1.
     */
    DescHandle setupDdrToDmem(std::uint32_t rows, std::uint8_t width,
                              mem::Addr src, std::uint16_t dst,
                              int event, bool src_inc = true);

    /** DMEM -> DDR mirror of setupDdrToDmem. */
    DescHandle setupDmemToDdr(std::uint32_t rows, std::uint8_t width,
                              std::uint16_t src, mem::Addr dst,
                              int event, bool dst_inc = true);

    /** dms_setup_loop: jump back to @p target @p iterations times. */
    DescHandle setupLoop(DescHandle target, std::uint16_t iterations);

    /** Encode an arbitrary descriptor into the arena. */
    DescHandle setup(const dms::Descriptor &d);

    /**
     * Re-encode a descriptor in place over an existing arena slot.
     * The DMAD copies descriptors at push time, so a slot may be
     * safely rewritten once its previous push has been consumed
     * (i.e. after waiting on its completion event).
     */
    void rewrite(DescHandle at, const dms::Descriptor &d);

    /** dms_push onto channel @p ch (0 = read, 1 = write typically). */
    void push(DescHandle desc, unsigned ch = 0);

    /** dms_wfe: block until @p event is set. */
    void wfe(unsigned event) { dmsRef.wfe(core, event); }

    /**
     * Bounded dms_wfe: wait at most @p timeout ticks and report
     * descriptor error completions. The recovery-path form of wfe():
     * a kernel that must not hang on a wedged or faulting DMS checks
     * the result instead of trusting the buffer.
     */
    dms::Dms::WfeResult
    wfeFor(unsigned event, sim::Tick timeout)
    {
        return dmsRef.wfeFor(core, event, timeout);
    }

    /** clear_event: hand the buffer back to the DMS. */
    void clearEvent(unsigned event) { dmsRef.clearEvent(core, event); }

    /** Poll an event without blocking. */
    bool
    eventSet(unsigned event) const
    {
        return dmsRef.eventSet(localId(), event);
    }

    /** True when @p event last completed with error status. */
    bool
    eventError(unsigned event) const
    {
        return dmsRef.eventError(localId(), event);
    }

    /** Reset the descriptor arena (new program phase). */
    void
    resetArena()
    {
        arenaNext = arenaBase;
    }

    core::DpCore &dpCore() { return core; }
    dms::Dms &dms() { return dmsRef; }

  private:
    unsigned
    localId() const
    {
        return core.id() % 32;
    }

    core::DpCore &core;
    dms::Dms &dmsRef;
    std::uint32_t arenaNext = arenaBase;
};

/**
 * Stream a DDR range through DMEM with an N-buffer descriptor loop
 * (the Listing 1 pattern generalized). The source region must be
 * readable up to the next nBufs*bufBytes boundary — the trailing
 * loop iteration may prefetch past the logical end, exactly as the
 * paper's 3-descriptor/16 MB example relies on exact fit.
 */
class StreamReader
{
  public:
    /**
     * @param ctl         The core's DMS control block.
     * @param src         DDR source base.
     * @param total_bytes Logical bytes to consume.
     * @param dmem_base   DMEM offset of the buffer ring.
     * @param buf_bytes   Bytes per buffer (multiple of 4).
     * @param n_bufs      Ring depth (2 = double buffering).
     * @param first_event First of n_bufs consecutive event ids.
     */
    StreamReader(DmsCtl &ctl, mem::Addr src,
                 std::uint64_t total_bytes, std::uint16_t dmem_base,
                 std::uint32_t buf_bytes, unsigned n_bufs = 2,
                 unsigned first_event = 0, unsigned channel = 0);

    /**
     * Consume the stream: @p fn is called once per buffer with
     * (dmem_offset, bytes_valid). Charges no per-byte cycles itself;
     * the consumer reads DMEM through the core as usual.
     */
    void forEach(const std::function<void(std::uint32_t,
                                          std::uint32_t)> &fn);

  private:
    DmsCtl &ctl;
    std::uint64_t totalBytes;
    std::uint16_t dmemBase;
    std::uint32_t bufBytes;
    unsigned nBufs;
    unsigned firstEvent;
};

/**
 * Mirror of StreamReader for writing results back at line rate:
 * acquire() a DMEM slot, fill it, commit(bytes), and the DMS drains
 * it to DDR behind the computation. Appends sequentially at @p dst.
 */
class StreamWriter
{
  public:
    StreamWriter(DmsCtl &ctl, mem::Addr dst, std::uint16_t dmem_base,
                 std::uint32_t buf_bytes, unsigned n_bufs = 2,
                 unsigned first_event = 8, unsigned channel = 1);

    /**
     * DMEM offset of the next buffer to fill; blocks until the
     * slot's previous drain (if any) has completed.
     */
    std::uint32_t acquire();

    /** Queue the filled slot for draining (@p bytes, 4 B aligned). */
    void commit(std::uint32_t bytes);

    /** Block until every queued buffer has drained to DDR. */
    void finish();

    /** Total bytes committed so far. */
    std::uint64_t bytesWritten() const { return written; }

  private:
    DmsCtl &ctl;
    mem::Addr dst;
    std::uint16_t dmemBase;
    std::uint32_t bufBytes;
    unsigned nBufs;
    unsigned firstEvent;
    unsigned channel;
    unsigned cur = 0;
    std::uint64_t written = 0;
    std::vector<bool> pending;
    std::vector<DescHandle> slots;
};

} // namespace dpu::rt

#endif // DPU_RT_DMS_CTL_HH

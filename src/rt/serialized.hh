/**
 * @file
 * dpu_serialized — the Section 4 idiom for manipulating shared data
 * on a non-coherent machine:
 *
 *   void* dpu_serialized(core_id_t _id, void(*rpc)(void*), void*
 *       args, visitor_fp args_visitor, visitor_fp return_visitor);
 *
 * Shared structures are pinned to one owner dpCore; every
 * manipulation is forced through a serialized ATE software RPC. The
 * runtime (a) flushes argument objects on the issuing core,
 * (b) invalidates them on the remote core, (c) invokes the RPC on
 * the remote dpCore, (d) flushes the return-region objects on the
 * remote core, and (e) invalidates those regions back on the sender.
 */

#ifndef DPU_RT_SERIALIZED_HH
#define DPU_RT_SERIALIZED_HH

#include <functional>
#include <vector>

#include "ate/ate.hh"
#include "core/dp_core.hh"

namespace dpu::rt {

/** A physical-address region named by an argument/return visitor. */
struct MemRegion
{
    mem::Addr base;
    std::uint64_t len;
};

/** Visitor: enumerate the regions reachable from a parameter. */
using RegionVisitor = std::function<std::vector<MemRegion>()>;

/**
 * Run @p rpc on core @p owner with full flush/invalidate
 * choreography for the argument and return regions.
 *
 * @param c       The issuing core (blocks until the RPC returns).
 * @param ate     The complex's ATE.
 * @param owner   The core owning the shared structure.
 * @param rpc     The manipulation to run remotely.
 * @param args    DDR regions the RPC reads (sender wrote them).
 * @param rets    DDR regions the RPC writes (sender reads after).
 */
inline void
dpuSerialized(core::DpCore &c, ate::Ate &ate, unsigned owner,
              const std::function<void(core::DpCore &)> &rpc,
              const std::vector<MemRegion> &args = {},
              const std::vector<MemRegion> &rets = {})
{
    // (a) flush argument objects on the issuing core.
    for (const MemRegion &r : args)
        c.cacheFlush(r.base, r.len);

    // (b)+(c)+(d) happen on the remote core inside one sw RPC.
    ate.swRpc(c, owner, [rpc, args, rets](core::DpCore &rc) {
        for (const MemRegion &r : args)
            rc.cacheInvalidate(r.base, r.len);
        rpc(rc);
        for (const MemRegion &r : rets)
            rc.cacheFlush(r.base, r.len);
    });

    // (e) invalidate the return regions on the sender.
    for (const MemRegion &r : rets)
        c.cacheInvalidate(r.base, r.len);
}

} // namespace dpu::rt

#endif // DPU_RT_SERIALIZED_HH

/**
 * @file
 * Synchronization primitives over the ATE (Section 2.3: "Hardware
 * RPCs enable efficient synchronization primitives such as mutexes
 * and barriers"; Section 4: the runtime "abstract[s] inter-dpCore
 * communication and synchronization routines over the ATE to allow
 * porting of common parallel programming paradigms such as threads,
 * task queues, and independent loops").
 *
 * Every primitive pins its state word(s) to an owner core's DMEM;
 * all cores manipulate the word with ATE hardware atomics, which the
 * owner's pipeline serializes — coherence without coherence.
 */

#ifndef DPU_RT_SYNC_HH
#define DPU_RT_SYNC_HH

#include <cstdint>
#include <optional>

#include "ate/ate.hh"
#include "core/dp_core.hh"

namespace dpu::rt {

/** Retry policy for ReliableAte (see below). */
struct AteRetryPolicy
{
    /** Initial response timeout; doubles per retry. */
    sim::Tick timeout = 2'000'000; // 2 us
    /** Reissues after the first attempt. */
    unsigned maxRetries = 6;
    /** Initial inter-attempt backoff in core cycles; doubles per
     *  retry, capped at 4096. */
    sim::Cycles backoff = 64;
};

/**
 * ATE hardware RPCs hardened against a lossy crossbar: each op is a
 * bounded wait (Ate::waitResponseFor) wrapped in a reissue loop with
 * exponential backoff and a doubling timeout. Retries are safe for
 * all ops including the atomics because the modelled fault drops the
 * *request* before the remote op executes — a request that reached
 * the remote core always produces a response (possibly late; late
 * responses are discarded as stale, never delivered to a retry).
 *
 * Ops return std::nullopt (store: false) once the retry budget is
 * exhausted; callers degrade gracefully instead of hanging, which is
 * the contract the chaos harness asserts.
 */
class ReliableAte
{
  public:
    explicit ReliableAte(ate::Ate &ate, AteRetryPolicy pol = {})
        : ateRef(ate), policy(pol)
    {
    }

    std::optional<std::uint64_t>
    load(core::DpCore &c, unsigned target, mem::Addr addr,
         unsigned bytes = 8)
    {
        return op(c, target, ate::AteOp::Load, addr, 0, 0, bytes);
    }

    bool
    store(core::DpCore &c, unsigned target, mem::Addr addr,
          std::uint64_t value, unsigned bytes = 8)
    {
        return op(c, target, ate::AteOp::Store, addr, value, 0, bytes)
            .has_value();
    }

    std::optional<std::uint64_t>
    fetchAdd(core::DpCore &c, unsigned target, mem::Addr addr,
             std::int64_t delta, unsigned bytes = 8)
    {
        return op(c, target, ate::AteOp::FetchAdd, addr,
                  std::uint64_t(delta), 0, bytes);
    }

    std::optional<std::uint64_t>
    compareSwap(core::DpCore &c, unsigned target, mem::Addr addr,
                std::uint64_t expect, std::uint64_t desired,
                unsigned bytes = 8)
    {
        return op(c, target, ate::AteOp::CompareSwap, addr, expect,
                  desired, bytes);
    }

    /** Reissues performed across all ops so far. */
    std::uint64_t retries() const { return nRetries; }

    /** Ops that exhausted the retry budget. */
    std::uint64_t failures() const { return nFailures; }

  private:
    std::optional<std::uint64_t>
    op(core::DpCore &c, unsigned target, ate::AteOp o, mem::Addr addr,
       std::uint64_t a, std::uint64_t b, unsigned bytes)
    {
        sim::Tick timeout = policy.timeout;
        sim::Cycles backoff = policy.backoff;
        for (unsigned attempt = 0; attempt <= policy.maxRetries;
             ++attempt) {
            ateRef.issue(c, target, o, addr, a, b, bytes);
            std::uint64_t v = 0;
            if (ateRef.waitResponseFor(c, timeout, v))
                return v;
            ++nRetries;
            c.sleepCycles(backoff);
            if (backoff < 4096)
                backoff *= 2;
            timeout *= 2;
        }
        ++nFailures;
        return std::nullopt;
    }

    ate::Ate &ateRef;
    AteRetryPolicy policy;
    std::uint64_t nRetries = 0;
    std::uint64_t nFailures = 0;
};

/** Spin mutex on a word in the owner core's DMEM. */
class AteMutex
{
  public:
    /**
     * @param owner      Core whose DMEM holds the lock word.
     * @param dmem_off   Offset of an 8 B word (must be zeroed).
     */
    AteMutex(unsigned owner, std::uint32_t dmem_off)
        : addr(mem::dmemAddr(owner, dmem_off)), ownerCore(owner)
    {
    }

    void
    lock(core::DpCore &c, ate::Ate &ate)
    {
        // CAS 0 -> id+1; exponential-ish backoff between attempts.
        sim::Cycles backoff = 16;
        while (ate.compareSwap(c, ownerCore, addr, 0, c.id() + 1,
                               8) != 0) {
            c.sleepCycles(backoff);
            if (backoff < 1024)
                backoff *= 2;
        }
    }

    void
    unlock(core::DpCore &c, ate::Ate &ate)
    {
        ate.remoteStore(c, ownerCore, addr, 0, 8);
    }

  private:
    mem::Addr addr;
    unsigned ownerCore;
};

/**
 * Sense-reversing barrier: an arrival counter and a generation word
 * at the owner core.
 */
class AteBarrier
{
  public:
    /**
     * @param owner    Core whose DMEM holds the two 8 B words.
     * @param dmem_off Offset of 16 zeroed bytes.
     * @param n        Number of participating cores.
     */
    AteBarrier(unsigned owner, std::uint32_t dmem_off, unsigned n)
        : countAddr(mem::dmemAddr(owner, dmem_off)),
          genAddr(mem::dmemAddr(owner, dmem_off + 8)),
          ownerCore(owner), nCores(n)
    {
    }

    void
    arrive(core::DpCore &c, ate::Ate &ate)
    {
        std::uint64_t gen = ate.remoteLoad(c, ownerCore, genAddr, 8);
        std::uint64_t n = ate.fetchAdd(c, ownerCore, countAddr, 1, 8);
        if (n + 1 == nCores) {
            // Last arrival: reset the counter, bump the generation.
            ate.remoteStore(c, ownerCore, countAddr, 0, 8);
            ate.fetchAdd(c, ownerCore, genAddr, 1, 8);
            return;
        }
        // Spin (with backoff) until the generation advances.
        sim::Cycles backoff = 32;
        while (ate.remoteLoad(c, ownerCore, genAddr, 8) == gen) {
            c.sleepCycles(backoff);
            if (backoff < 2048)
                backoff *= 2;
        }
    }

  private:
    mem::Addr countAddr;
    mem::Addr genAddr;
    unsigned ownerCore;
    unsigned nCores;
};

/**
 * Work-stealing chunk counter (Section 5.4: "we partition the input
 * set into multiple chunks and implement work stealing ... across
 * cores using the ATE hardware atomics").
 */
class AteCounter
{
  public:
    AteCounter(unsigned owner, std::uint32_t dmem_off)
        : addr(mem::dmemAddr(owner, dmem_off)), ownerCore(owner)
    {
    }

    /** Claim and return the next index. */
    std::uint64_t
    next(core::DpCore &c, ate::Ate &ate)
    {
        return ate.fetchAdd(c, ownerCore, addr, 1, 8);
    }

    /** Current value (racy read; for monitoring/tests). */
    std::uint64_t
    peek(core::DpCore &c, ate::Ate &ate)
    {
        return ate.remoteLoad(c, ownerCore, addr, 8);
    }

  private:
    mem::Addr addr;
    unsigned ownerCore;
};

} // namespace dpu::rt

#endif // DPU_RT_SYNC_HH

#include "core/dp_core.hh"

#include <algorithm>

#include "util/crc32.hh"

namespace dpu::core {

namespace {

/** Geometry of the per-core L1-D (Section 2.3: 16 KB). */
const mem::CacheParams l1dParams{16 * 1024, 4, 1};

} // namespace

DpCore::DpCore(unsigned id, sim::EventQueue &eq_,
               mem::MainMemory &memory, mem::Cache &l2,
               const IsaCosts &costs_)
    : coreId(id), eq(eq_), mm(memory), costs(costs_),
      stat("core" + std::to_string(id)), l2Cache(l2),
      l1dCache(std::make_unique<mem::Cache>(
          "core" + std::to_string(id) + ".l1d", l1dParams, l2))
{
    stat.addFlushHook([this] { flushStats(); });
}

void
DpCore::flushStats()
{
    shAluOps.flushInto(stat, "aluOps");
    shLsuOps.flushInto(stat, "lsuOps");
    shMuls.flushInto(stat, "muls");
    shDivs.flushInto(stat, "divs");
    shBranches.flushInto(stat, "branches");
    shBranchMisses.flushInto(stat, "branchMisses");
    shBlocks.flushInto(stat, "blocks");
    shCrcOps.flushInto(stat, "crcOps");
    shPopcounts.flushInto(stat, "popcounts");
    shNtzOps.flushInto(stat, "ntzOps");
    shNlzOps.flushInto(stat, "nlzOps");
    shInterruptsPosted.flushInto(stat, "interruptsPosted");
    shInterruptsTaken.flushInto(stat, "interruptsTaken");
    shAteInjectTicks.flushInto(stat, "ateInjectTicks");
}

// ----------------------------------------------------------------
// Program control
// ----------------------------------------------------------------

void
DpCore::start(Kernel kernel)
{
    sim_assert(state == State::Idle || state == State::Done,
               "core %u already running", coreId);
    kernelFn = std::move(kernel);
    fiberDone = false;
    aheadTicks = 0;
    fiber = std::make_unique<sim::Fiber>([this] {
        kernelFn(*this);
        // Drain the lazy clock so the kernel's last charges are
        // reflected in simulated time before the fiber finishes.
        sync();
    });
    state = State::Ready;
    eq.scheduleIn(0, resumeEvent);
}

void
DpCore::resumeFiber()
{
    sim_assert(state == State::Ready || state == State::Sleeping,
               "core %u resumed in bad state %d", coreId, int(state));
    state = State::Running;
    fiber->resume();
    if (fiber->finished()) {
        state = State::Done;
        fiberDone = true;
    }
}

void
DpCore::yieldToScheduler()
{
    fiber->yield();
}

// ----------------------------------------------------------------
// Time & synchronisation
// ----------------------------------------------------------------

void
DpCore::maybeSync()
{
    if (!running())
        return;
    if (aheadTicks >= syncQuantum ||
        (!pendingIsrs.empty() && !inIsr)) {
        sync();
    }
}

void
DpCore::sync()
{
    sim_assert(running(), "sync from outside core %u's fiber", coreId);
    // Loop: delivering an ISR charges cycles, which must again be
    // reflected in simulated time before we return.
    while (true) {
        if (aheadTicks > 0) {
            sim::Tick target = eq.now() + aheadTicks;
            aheadTicks = 0;
            state = State::Sleeping;
            eq.schedule(target, resumeEvent);
            yieldToScheduler();
        }
        if (!pendingIsrs.empty() && !inIsr)
            deliverInterrupts();
        if (aheadTicks == 0)
            break;
    }
}

void
DpCore::sleepCycles(sim::Cycles n)
{
    cycles(n);
    sync();
}

void
DpCore::blockUntil(const std::function<bool()> &pred)
{
    sync();
    const sim::Tick t0 = eq.now();
    bool blocked = false;
    while (!pred()) {
        state = State::Blocked;
        ++shBlocks;
        blocked = true;
        yieldToScheduler();
        // Woken by wake(); state is Running again here.
        deliverInterrupts();
    }
    if (blocked) {
        DPU_TRACE_COMPLETE(sim::TraceCat::Core, coreId, "blocked", t0,
                           eq.now() - t0, nullptr, 0, nullptr, 0);
    }
}

void
DpCore::wake(sim::Tick when)
{
    if (state != State::Blocked)
        return; // a resume is already scheduled or the core is busy
    state = State::Sleeping;
    eq.schedule(std::max(when, eq.now()), resumeEvent);
}

void
DpCore::postInterrupt(Isr isr)
{
    pendingIsrs.push_back(std::move(isr));
    ++shInterruptsPosted;
    if (state == State::Blocked)
        wake(eq.now());
}

void
DpCore::deliverInterrupts()
{
    if (inIsr)
        return;
    while (!pendingIsrs.empty()) {
        Isr isr = std::move(pendingIsrs.front());
        pendingIsrs.pop_front();
        inIsr = true;
        const sim::Tick t0 = now();
        cycles(costs.interrupt);
        ++shInterruptsTaken;
        isr(*this);
        DPU_TRACE_COMPLETE(sim::TraceCat::Core, coreId, "isr", t0,
                           now() - t0, nullptr, 0, nullptr, 0);
        inIsr = false;
    }
}

// ----------------------------------------------------------------
// Analytics ISA extensions
// ----------------------------------------------------------------

std::uint32_t
DpCore::crcHash(std::uint32_t key)
{
    ++shCrcOps;
    cycles(costs.crc32);
    return util::crc32Key(key);
}

std::uint32_t
DpCore::crcHash64(std::uint64_t key)
{
    ++shCrcOps;
    cycles(2 * costs.crc32);
    return util::crc32Key64(key);
}

unsigned
DpCore::popcount(std::uint64_t v)
{
    ++shPopcounts;
    cycles(costs.popcount);
    return unsigned(__builtin_popcountll(v));
}

unsigned
DpCore::ntz(std::uint64_t v)
{
    ++shNtzOps;
    cycles(costs.ntz);
    return v ? unsigned(__builtin_ctzll(v)) : 64;
}

unsigned
DpCore::nlz(std::uint64_t v)
{
    ++shNlzOps;
    cycles(costs.nlz);
    return v ? unsigned(__builtin_clzll(v)) : 64;
}

std::uint64_t
DpCore::filt(std::uint32_t src_off, std::uint32_t n,
             unsigned elem_bytes, std::uint64_t lo, std::uint64_t hi,
             std::uint32_t bv_off)
{
    sim_assert(elem_bytes == 1 || elem_bytes == 2 || elem_bytes == 4 ||
               elem_bytes == 8, "bad FILT element width %u",
               elem_bytes);

    std::uint64_t passed = 0;
    std::uint8_t cur = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        std::uint64_t v = 0;
        scratch.read(src_off + i * elem_bytes, &v, elem_bytes);
        bool hit = v >= lo && v <= hi;
        passed += hit;
        cur |= std::uint8_t(hit) << (i & 7);
        if ((i & 7) == 7 || i + 1 == n) {
            scratch.write(bv_off + (i >> 3), &cur, 1);
            cur = 0;
        }
    }

    // Timing: the element load pairs with FILT in the dual-issue
    // pipe, but the predicate-bit accumulate (shift/or) adds an ALU
    // op every other tuple, the unrolled loop adds a predicted
    // backward branch every 8 tuples, and the accumulated
    // bit-vector word spills every 64 tuples. End to end with the
    // DMS tile waits this lands at the paper's ~1.65 cycles/tuple
    // (482 Mtuples/s, Section 5.3).
    sim::Cycles c = n + n / 2;  // paired LD+FILT, alternate bit-pack
    c += n / 8 + 1;             // loop branches
    c += (n / 64 + 1) * 2;      // bit-vector spill stores
    stat.counter("filtOps") += n;
    cycles(c);
    return passed;
}

// ----------------------------------------------------------------
// Memory
// ----------------------------------------------------------------

void
DpCore::checkWatchpoints(mem::Addr addr, std::uint32_t len, bool write)
{
    if (watchpoints.empty())
        return;
    for (auto &wp : watchpoints) {
        if (addr < wp.base + wp.len && wp.base < addr + len)
            wp.handler(addr, write);
    }
}

void
DpCore::addWatchpoint(mem::Addr addr, std::uint64_t len,
                      std::function<void(mem::Addr, bool)> handler)
{
    watchpoints.push_back({addr, len, std::move(handler)});
}

void
DpCore::readBytes(mem::Addr addr, void *dst, std::uint32_t len)
{
    checkWatchpoints(addr, len, false);
    std::uint64_t words = (len + 7) / 8;
    shLsuOps += words;

    if (mem::isDmemAddr(addr)) {
        sim_assert(mem::dmemOwner(addr) == coreId,
                   "core %u direct access to remote DMEM %llx "
                   "(use the ATE)", coreId, (unsigned long long)addr);
        scratch.read(mem::dmemOffset(addr), dst, len);
        cycles(words * costs.lsu);
        return;
    }

    if (memTrace)
        memTrace(coreId, addr, len, false);
    if (words > 1)
        cycles((words - 1) * costs.lsu);
    sim::Tick done = l1dCache->read(addr, dst, len, now());
    aheadTicks = done - eq.now();
    maybeSync();
}

void
DpCore::writeBytes(mem::Addr addr, const void *src, std::uint32_t len)
{
    checkWatchpoints(addr, len, true);
    std::uint64_t words = (len + 7) / 8;
    shLsuOps += words;

    if (mem::isDmemAddr(addr)) {
        sim_assert(mem::dmemOwner(addr) == coreId,
                   "core %u direct access to remote DMEM %llx "
                   "(use the ATE)", coreId, (unsigned long long)addr);
        scratch.write(mem::dmemOffset(addr), src, len);
        cycles(words * costs.lsu);
        return;
    }

    if (memTrace)
        memTrace(coreId, addr, len, true);
    if (words > 1)
        cycles((words - 1) * costs.lsu);
    sim::Tick done = l1dCache->write(addr, src, len, now());
    aheadTicks = done - eq.now();
    maybeSync();
}

void
DpCore::cacheFlush(mem::Addr addr, std::uint64_t len)
{
    ++stat.counter("cacheFlushes");
    // The paper's coherence-tooling story (Section 4): programmers
    // conservatively over-flush; a tool identifies and quantifies
    // redundant cache operations. A flush that wrote nothing back
    // was redundant.
    std::uint64_t before = l1dCache->statGroup().get("flushedLines") +
                           l2Cache.statGroup().get("flushedLines");
    sim::Tick done = l1dCache->flushRange(addr, len, now());
    done = l2Cache.flushRange(addr, len, done);
    std::uint64_t after = l1dCache->statGroup().get("flushedLines") +
                          l2Cache.statGroup().get("flushedLines");
    if (after == before)
        ++stat.counter("redundantFlushes");
    aheadTicks = done - eq.now();
    maybeSync();
}

void
DpCore::cacheInvalidate(mem::Addr addr, std::uint64_t len)
{
    ++stat.counter("cacheInvalidates");
    sim::Tick done = l1dCache->invalidateRange(addr, len, now());
    done = l2Cache.invalidateRange(addr, len, done);
    aheadTicks = done - eq.now();
    maybeSync();
}

void
DpCore::cacheFlushAll()
{
    ++stat.counter("cacheFlushes");
    sim::Tick done = l1dCache->flushAll(now());
    aheadTicks = done - eq.now();
    maybeSync();
}

} // namespace dpu::core

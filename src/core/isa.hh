/**
 * @file
 * dpCore ISA cost model.
 *
 * The dpCore is a 64-bit MIPS-like, dual-issue in-order core: one ALU
 * pipe and one LSU pipe issue per cycle (Section 2.2). There is no
 * FPU; the multiplier is a low-power iterative unit that stalls the
 * pipeline for a data-dependent number of cycles; the branch
 * predictor statically predicts backward branches taken. Analytics
 * ISA extensions (BVLD, FILT, CRC32 hashcode, popcount) are single
 * cycle.
 *
 * Cycle numbers below come straight from the paper where stated:
 * NTZ-via-popcount costs 4 cycles vs 13 for NLZ (Section 5.4); the
 * BVLD/FILT filter loop lands at 1.65 cycles/tuple (Section 5.3).
 */

#ifndef DPU_CORE_ISA_HH
#define DPU_CORE_ISA_HH

#include "sim/types.hh"

namespace dpu::core {

/** Per-operation cycle costs for the dpCore pipeline model. */
struct IsaCosts
{
    /** Single-issue ALU op (add, sub, logic, shift, compare). */
    sim::Cycles alu = 1;

    /** DMEM load/store through the LSU pipe. */
    sim::Cycles lsu = 1;

    /** Single-cycle analytics extensions. */
    sim::Cycles bvld = 1;
    sim::Cycles filt = 1;
    sim::Cycles crc32 = 1;
    sim::Cycles popcount = 1;

    /** Count-trailing-zeros sequence built on popcount (Sec 5.4). */
    sim::Cycles ntz = 4;
    /** Count-leading-zeros sequence without hardware help. */
    sim::Cycles nlz = 13;

    /**
     * Iterative multiplier: stalls for mulBase plus one cycle per
     * mulBitsPerCycle significant bits of the smaller operand
     * ("variable latency multiplier", Section 5.4).
     */
    sim::Cycles mulBase = 3;
    unsigned mulBitsPerCycle = 8;

    /** Iterative divide (also used for Q10.22 divide). */
    sim::Cycles div = 20;

    /** Taken-branch redirect when correctly predicted. */
    sim::Cycles branch = 1;
    /** Mispredict penalty (short in-order pipeline). */
    sim::Cycles branchMiss = 3;

    /** Interrupt entry+exit overhead (ATE software RPC, mailbox). */
    sim::Cycles interrupt = 60;

    /** Mul stall cycles for a value with @p bits significant bits. */
    sim::Cycles
    mulCycles(unsigned bits) const
    {
        return mulBase + (bits + mulBitsPerCycle - 1) / mulBitsPerCycle;
    }
};

} // namespace dpu::core

#endif // DPU_CORE_ISA_HH

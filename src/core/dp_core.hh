/**
 * @file
 * The dpCore execution model.
 *
 * Each dpCore runs its software as a cooperative fiber of ordinary
 * C++ (the paper's applications are cross-compiled C; ours are C++
 * kernels that charge cycles through this class's primitives). The
 * core keeps a "lazy clock": compute charges accumulate in
 * aheadTicks and only synchronise with the global event queue when
 * the core must interact with another agent (DMS event wait, ATE
 * request, mailbox, long quanta). Applications never see the event
 * queue; they call blocking primitives exactly like the code in the
 * paper's Listing 1.
 *
 * Address routing: DMEM addresses go to the local scratchpad at LSU
 * speed; DDR addresses go through the non-coherent L1-D / shared L2
 * hierarchy. Remote DMEM is reachable only via the ATE or DMS, as on
 * the chip.
 */

#ifndef DPU_CORE_DP_CORE_HH
#define DPU_CORE_DP_CORE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/isa.hh"
#include "mem/addr.hh"
#include "mem/cache.hh"
#include "mem/dmem.hh"
#include "mem/main_memory.hh"
#include "sim/event_queue.hh"
#include "sim/fiber.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"
#include "sim/types.hh"

namespace dpu::core {

class DpCore;

/** A software image for a core: the "main" of its binary. */
using Kernel = std::function<void(DpCore &)>;

/** An interrupt service routine (ATE software RPC, mailbox, timer). */
using Isr = std::function<void(DpCore &)>;

/** Number of dpCores per macro (Figure 1). */
constexpr unsigned coresPerMacro = 8;

/** One of the 32 data processing cores. */
class DpCore
{
  public:
    /**
     * @param id     Core id, 0..31 (macro = id / 8).
     * @param eq     The global event queue.
     * @param memory Main memory (DDR).
     * @param l2     The macro's shared 256 KB L2.
     * @param costs  ISA cycle cost table.
     */
    DpCore(unsigned id, sim::EventQueue &eq, mem::MainMemory &memory,
           mem::Cache &l2, const IsaCosts &costs = IsaCosts{});

    unsigned id() const { return coreId; }
    unsigned macro() const { return coreId / coresPerMacro; }
    const IsaCosts &isa() const { return costs; }

    // ------------------------------------------------------------
    // Program control
    // ------------------------------------------------------------

    /** Install and start the core's kernel at the current tick. */
    void start(Kernel kernel);

    /** True once the kernel has returned. */
    bool finished() const { return fiberDone; }

    /** True while this core's fiber is the one executing. */
    bool running() const { return sim::Fiber::current() == fiber.get(); }

    // ------------------------------------------------------------
    // Time
    // ------------------------------------------------------------

    /** The core's current logical time (may be ahead of the EQ). */
    sim::Tick now() const { return eq.now() + aheadTicks; }

    /** Charge @p n raw pipeline cycles. */
    void
    cycles(sim::Cycles n)
    {
        aheadTicks += sim::dpCoreClock.cyclesToTicks(n);
        maybeSync();
    }

    /**
     * Charge a dual-issue bundle: @p alu_ops ALU-pipe ops co-issued
     * with @p lsu_ops LSU-pipe ops take max(alu, lsu) cycles.
     */
    void
    dualIssue(std::uint64_t alu_ops, std::uint64_t lsu_ops)
    {
        shAluOps += alu_ops;
        shLsuOps += lsu_ops;
        cycles(std::max(alu_ops, lsu_ops));
    }

    /** Charge @p n single-issue ALU ops. */
    void
    alu(std::uint64_t n = 1)
    {
        shAluOps += n;
        cycles(n * costs.alu);
    }

    /** Charge one multiply of a value with @p bits significant bits. */
    void
    mul(unsigned bits = 32)
    {
        ++shMuls;
        const sim::Cycles c = costs.mulCycles(bits);
        if (DPU_TRACE_ARMED) {
            DPU_TRACE_COMPLETE(sim::TraceCat::Core, coreId, "mul",
                               now(), sim::dpCoreClock.cyclesToTicks(c),
                               "bits", bits, nullptr, 0);
        }
        cycles(c);
    }

    /** Charge one iterative divide. */
    void
    div()
    {
        ++shDivs;
        cycles(costs.div);
    }

    /**
     * Charge a conditional branch. The static predictor takes
     * backward branches and falls through forward ones.
     */
    void
    branch(bool taken, bool backward)
    {
        ++shBranches;
        bool predicted_taken = backward;
        if (taken == predicted_taken) {
            cycles(costs.branch);
        } else {
            ++shBranchMisses;
            cycles(costs.branch + costs.branchMiss);
        }
    }

    /** Block the core for @p n cycles of simulated time. */
    void sleepCycles(sim::Cycles n);

    // ------------------------------------------------------------
    // Analytics ISA extensions (functional + single-cycle cost)
    // ------------------------------------------------------------

    /** CRC32 hashcode of a 32-bit key in one cycle (Section 2.2). */
    std::uint32_t crcHash(std::uint32_t key);

    /** CRC32 hashcode of a 64-bit key (two issue slots). */
    std::uint32_t crcHash64(std::uint64_t key);

    /** Population count in one cycle. */
    unsigned popcount(std::uint64_t v);

    /** Number of trailing zeros via the popcount unit (4 cycles). */
    unsigned ntz(std::uint64_t v);

    /** Number of leading zeros, no hardware assist (13 cycles). */
    unsigned nlz(std::uint64_t v);

    /**
     * FILT: compare @p n packed elements in DMEM against [lo, hi]
     * and append result bits to a bit vector in DMEM. Models the
     * BVLD/FILT loop at its hardware rate; the functional result is
     * exact. Elements are @p elem_bytes wide (1/2/4/8), unsigned.
     *
     * @return number of elements that passed.
     */
    std::uint64_t filt(std::uint32_t src_off, std::uint32_t n,
                       unsigned elem_bytes, std::uint64_t lo,
                       std::uint64_t hi, std::uint32_t bv_off);

    // ------------------------------------------------------------
    // Memory
    // ------------------------------------------------------------

    /** Typed load; routes to DMEM or through the cache hierarchy. */
    template <typename T>
    T
    load(mem::Addr addr)
    {
        T v{};
        readBytes(addr, &v, sizeof(T));
        return v;
    }

    /** Typed store; see load. */
    template <typename T>
    void
    store(mem::Addr addr, T v)
    {
        writeBytes(addr, &v, sizeof(T));
    }

    /** Bulk read charged at one LSU op per 8 bytes. */
    void readBytes(mem::Addr addr, void *dst, std::uint32_t len);

    /** Bulk write charged at one LSU op per 8 bytes. */
    void writeBytes(mem::Addr addr, const void *src, std::uint32_t len);

    /** Direct handle to this core's scratchpad. */
    mem::Dmem &dmem() { return scratch; }
    const mem::Dmem &dmem() const { return scratch; }

    /** This core's DMEM aperture base address. */
    mem::Addr dmemBase() const { return mem::dmemAddr(coreId); }

    /**
     * Flush (write back) cached lines covering [addr, addr+len)
     * through both the private L1-D and the macro's shared L2, so
     * the data reaches DDR where the DMS and other macros see it.
     */
    void cacheFlush(mem::Addr addr, std::uint64_t len);

    /** Invalidate cached lines covering [addr, addr+len) in L1 + L2. */
    void cacheInvalidate(mem::Addr addr, std::uint64_t len);

    /** Flush + invalidate the entire private L1-D (not the L2). */
    void cacheFlushAll();

    /** The private L1-D (tests probe residency/dirtiness). */
    mem::Cache &l1d() { return *l1dCache; }

    /** The macro's shared L2. */
    mem::Cache &l2() { return l2Cache; }

    // ------------------------------------------------------------
    // Watchpoints (Section 2.2: debug registers instead of an MMU)
    // ------------------------------------------------------------

    /** Raise on any access intersecting [addr, addr+len). */
    void addWatchpoint(mem::Addr addr, std::uint64_t len,
                       std::function<void(mem::Addr, bool)> handler);

    void clearWatchpoints() { watchpoints.clear(); }

    // ------------------------------------------------------------
    // Interrupts & blocking (used by ATE / MBC / DMS glue)
    // ------------------------------------------------------------

    /**
     * Queue an interrupt service routine. Runs in this core's fiber
     * at the next synchronisation point, charging the interrupt
     * entry/exit overhead; wakes the core if it is blocked.
     */
    void postInterrupt(Isr isr);

    /**
     * Block the calling fiber until @p pred becomes true. Interrupts
     * are delivered while blocked (the handler runs, then the wait
     * resumes), matching the chip's cooperative scheduling model.
     * Wakers must call wake().
     */
    void blockUntil(const std::function<bool()> &pred);

    /** Wake a blocked core at tick @p when (>= eq.now()). */
    void wake(sim::Tick when);

    /**
     * Synchronise the lazy clock with the event queue and deliver
     * pending interrupts. Application code never needs this; module
     * glue calls it before cross-agent interactions.
     */
    void sync();

    sim::EventQueue &eventQueue() { return eq; }
    sim::StatGroup &statGroup() { return stat; }
    mem::MainMemory &mainMemory() { return mm; }

    /**
     * Stall the pipeline for @p t ticks starting no earlier than
     * @p from (used by the ATE to model remote-op injection).
     */
    void
    injectStall(sim::Tick t)
    {
        aheadTicks += t;
        shAteInjectTicks += t;
    }

    /**
     * Debug hook fired on every direct cached DDR access (not DMEM,
     * not ATE remote ops): (core, addr, len, is_write). Used by the
     * Section 4 debugging tools (coherence checker). Null when
     * disarmed; the hot path pays one branch.
     */
    using MemTrace = std::function<void(unsigned, mem::Addr,
                                        std::uint32_t, bool)>;
    void setMemTrace(MemTrace hook) { memTrace = std::move(hook); }

  private:
    void maybeSync();
    void resumeFiber();
    void yieldToScheduler();
    void deliverInterrupts();
    void checkWatchpoints(mem::Addr addr, std::uint32_t len,
                          bool write);

    enum class State { Idle, Ready, Running, Sleeping, Blocked, Done };

    unsigned coreId;
    sim::EventQueue &eq;
    mem::MainMemory &mm;
    IsaCosts costs;
    sim::StatGroup stat;

    /** Per-op counters are deferred (sim/stats.hh): the issue path
     *  pays a plain add and the cells materialise through the stat
     *  group's flush hook (installed in the constructor). */
    sim::DeferredCounter shAluOps, shLsuOps, shMuls, shDivs,
        shBranches, shBranchMisses, shBlocks, shCrcOps, shPopcounts,
        shNtzOps, shNlzOps, shInterruptsPosted, shInterruptsTaken,
        shAteInjectTicks;
    void flushStats();

    mem::Dmem scratch;
    mem::Cache &l2Cache;
    std::unique_ptr<mem::Cache> l1dCache;

    /**
     * The core's single outstanding wake/resume, embedded so the
     * sync/wake hot path schedules an intrusive event instead of
     * renting a pooled callback carrier. The state machine
     * guarantees at most one resume is pending (start from
     * Idle/Done, sync from Running, wake only from Blocked); the
     * queue's already-scheduled assertion enforces it.
     */
    class ResumeEvent final : public sim::Event
    {
      public:
        explicit ResumeEvent(DpCore &c_)
            : sim::Event(sim::EvTag::Core), c(c_)
        {
        }
        void process() override { c.resumeFiber(); }
        const char *name() const override { return "core.resume"; }

      private:
        DpCore &c;
    };
    ResumeEvent resumeEvent{*this};

    std::unique_ptr<sim::Fiber> fiber;
    Kernel kernelFn;
    State state = State::Idle;
    bool fiberDone = false;

    /** How far the core's logical clock runs ahead of the EQ. */
    sim::Tick aheadTicks = 0;

    /** Force a sync after this much accumulated lead (20 us). */
    static constexpr sim::Tick syncQuantum = 20'000'000;

    std::deque<Isr> pendingIsrs;
    bool inIsr = false;

    MemTrace memTrace;

    struct Watchpoint
    {
        mem::Addr base;
        std::uint64_t len;
        std::function<void(mem::Addr, bool)> handler;
    };
    std::vector<Watchpoint> watchpoints;
};

} // namespace dpu::core

#endif // DPU_CORE_DP_CORE_HH

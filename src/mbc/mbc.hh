/**
 * @file
 * The MailBox Controller (Section 2.4).
 *
 * A hardware queue block with 34 mailboxes — one per dpCore, one for
 * the A9 complex and one for the M0 — for quick exchange of
 * lightweight messages (typically a pointer to a buffer in DRAM)
 * while bulk data moves through main memory. Each mailbox has
 * memory-mapped control/data registers and an interrupt line to its
 * destination.
 */

#ifndef DPU_MBC_MBC_HH
#define DPU_MBC_MBC_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "core/dp_core.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace dpu::mbc {

/** Mailbox indices for the non-dpCore endpoints on the 40 nm die
 *  (34 mailboxes total: 32 dpCores + A9 + M0, Section 2.4). Larger
 *  configurations get nCores+2 mailboxes; use Mbc::a9Box()/m0Box()
 *  for portability across chip configs. */
constexpr unsigned a9Mailbox = 32;
constexpr unsigned m0Mailbox = 33;

/** Delivery latency through the MBC, in core cycles. */
constexpr sim::Cycles mbcLatency = 30;

/** The mailbox controller. */
class Mbc
{
  public:
    /**
     * @param eq    Event queue.
     * @param cores dpCores, indexed by id, for interrupt delivery.
     */
    Mbc(sim::EventQueue &eq, std::vector<core::DpCore *> &cores);

    /**
     * Send @p msg (a pointer-sized payload) to mailbox @p dst on
     * behalf of a dpCore; charges the sender's register writes.
     */
    void send(core::DpCore &sender, unsigned dst, std::uint64_t msg);

    /** Send from a non-dpCore endpoint (A9 / M0 models). */
    void sendFromHost(unsigned dst, std::uint64_t msg);

    /** Blocking receive on a dpCore's own mailbox. */
    std::uint64_t recv(core::DpCore &c);

    /** Non-blocking poll; returns false when empty. */
    bool tryRecv(unsigned mailbox, std::uint64_t &msg);

    /** Messages waiting in @p mailbox. */
    std::size_t depth(unsigned mailbox) const;

    /** The A9 complex's mailbox index. */
    unsigned a9Box() const { return unsigned(boxes.size()) - 2; }

    /** The M0's mailbox index. */
    unsigned m0Box() const { return unsigned(boxes.size()) - 1; }

    /** Total mailboxes (nCores + 2). */
    unsigned nBoxes() const { return unsigned(boxes.size()); }

    /**
     * Install an interrupt handler for a mailbox owned by a
     * non-dpCore endpoint (the A9 network model uses this).
     */
    void onMessage(unsigned mailbox, std::function<void()> handler);

    sim::StatGroup &statGroup() { return stats; }

  private:
    void deliver(unsigned dst, std::uint64_t msg);

    sim::EventQueue &eq;
    std::vector<core::DpCore *> &cores;
    sim::StatGroup stats;
    /** Deferred per-message counters (see sim/stats.hh). */
    sim::DeferredCounter shSent, shDelivered;
    std::vector<std::deque<std::uint64_t>> boxes;
    std::vector<std::function<void()>> handlers;
};

} // namespace dpu::mbc

#endif // DPU_MBC_MBC_HH

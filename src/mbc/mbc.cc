#include "mbc/mbc.hh"

#include "sim/fault.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace dpu::mbc {

namespace {

/** Fault plane: true when the in-flight message to @p dst is lost
 *  (sender-side costs are already paid — the loss is in transit). */
bool
dropped(sim::EventQueue &eq, unsigned dst, sim::StatGroup &stats)
{
    if (!sim::faultPlane().active() ||
        !sim::faultPlane().fires(sim::FaultSite::MbcDrop, eq.now(),
                                 int(dst)))
        return false;
    ++stats.counter("dropped");
    DPU_TRACE_INSTANT(sim::TraceCat::Soc, dst, "mbcDrop", eq.now(),
                      "dst", dst);
    return true;
}

} // namespace

Mbc::Mbc(sim::EventQueue &eq_, std::vector<core::DpCore *> &cores_)
    : eq(eq_), cores(cores_), stats("mbc"),
      boxes(cores_.size() + 2), handlers(cores_.size() + 2)
{
    stats.addFlushHook([this] {
        shSent.flushInto(stats, "sent");
        shDelivered.flushInto(stats, "delivered");
    });
}

void
Mbc::deliver(unsigned dst, std::uint64_t msg)
{
    boxes[dst].push_back(msg);
    ++shDelivered;
    if (dst < cores.size() && cores[dst]) {
        // Raise the mailbox interrupt line: wake a blocked receiver.
        cores[dst]->wake(eq.now());
    } else if (handlers[dst]) {
        handlers[dst]();
    }
}

void
Mbc::send(core::DpCore &sender, unsigned dst, std::uint64_t msg)
{
    sim_assert(dst < boxes.size(), "bad mailbox %u", dst);
    // Two memory-mapped register writes (control + data).
    sender.cycles(4);
    sender.sync();
    ++shSent;
    if (dropped(eq, dst, stats))
        return;
    eq.schedule(eq.now() + sim::dpCoreClock.cyclesToTicks(mbcLatency),
                [this, dst, msg] { deliver(dst, msg); },
                sim::EvTag::Mbc);
}

void
Mbc::sendFromHost(unsigned dst, std::uint64_t msg)
{
    sim_assert(dst < boxes.size(), "bad mailbox %u", dst);
    ++shSent;
    if (dropped(eq, dst, stats))
        return;
    eq.schedule(eq.now() + sim::dpCoreClock.cyclesToTicks(mbcLatency),
                [this, dst, msg] { deliver(dst, msg); },
                sim::EvTag::Mbc);
}

std::uint64_t
Mbc::recv(core::DpCore &c)
{
    auto &box = boxes[c.id()];
    c.blockUntil([&box] { return !box.empty(); });
    std::uint64_t msg = box.front();
    box.pop_front();
    // Read of the data register.
    c.cycles(2);
    return msg;
}

bool
Mbc::tryRecv(unsigned mailbox, std::uint64_t &msg)
{
    sim_assert(mailbox < boxes.size(), "bad mailbox %u", mailbox);
    auto &box = boxes[mailbox];
    if (box.empty())
        return false;
    msg = box.front();
    box.pop_front();
    return true;
}

std::size_t
Mbc::depth(unsigned mailbox) const
{
    sim_assert(mailbox < boxes.size(), "bad mailbox %u", mailbox);
    return boxes[mailbox].size();
}

void
Mbc::onMessage(unsigned mailbox, std::function<void()> handler)
{
    sim_assert(mailbox < boxes.size(), "bad mailbox %u", mailbox);
    handlers[mailbox] = std::move(handler);
}

} // namespace dpu::mbc

/**
 * @file
 * JSON parsing (Section 5.5).
 *
 * The workload is ~TPCH-lineitem-shaped records (integers, fixed
 * point, dates, strings). The paper's findings, reproduced:
 *
 *  - a branchy recursive parser (SAJSON-style) runs at 13.2
 *    cycles/byte on the dpCore (no fancy branch prediction) — only
 *    ~645 MB/s across the chip;
 *  - coercing the grammar into a JUMP TABLE (the state-transition
 *    table fits DMEM) brings the DPU to ~1.73 GB/s over 32 cores;
 *  - the file splits into per-core chunks with 1 KB padding so a
 *    record straddling a chunk boundary is parsed exactly once;
 *  - the DMS triple-buffers 8 KB input tiles (Section 5.5).
 *
 * Functional output (record count, field count, integer-field sum)
 * is compared exactly against the baseline parse.
 */

#ifndef DPU_APPS_JSON_HH
#define DPU_APPS_JSON_HH

#include <cstdint>
#include <string>

#include "apps/common.hh"

namespace dpu::apps {

struct JsonConfig
{
    std::uint32_t nRecords = 24 * 1024;
    std::uint64_t seed = 5;
    unsigned nCores = 32;
    /** Charge the branchy-parser cost model instead of the jump
     *  table (the paper's 13.2 cycles/byte data point). */
    bool branchyParser = false;
};

/** Parse summary used for cross-validation. */
struct JsonTally
{
    std::uint64_t records = 0;
    std::uint64_t fields = 0;
    std::uint64_t intSum = 0;

    bool operator==(const JsonTally &) const = default;
};

struct JsonResult
{
    double seconds = 0;
    std::uint64_t bytes = 0;
    JsonTally tally;

    double gbPerSec() const { return bytes / seconds / 1e9; }
};

/** Internals shared with the serving kernel (apps/serving.cc). */
namespace jsondetail {
/** The synthetic record generator both platforms parse. */
std::string makeRecords(const JsonConfig &cfg);
/** The shared FSM tally over [p, p+len). */
JsonTally parseSpan(const char *p, std::uint64_t len);
} // namespace jsondetail

JsonResult dpuJson(const soc::SocParams &params,
                   const JsonConfig &cfg);
JsonResult xeonJson(const JsonConfig &cfg);

} // namespace dpu::apps

#endif // DPU_APPS_JSON_HH

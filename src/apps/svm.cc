#include "apps/svm.hh"

#include "apps/entry.hh"

#include <cmath>
#include <vector>

#include "rt/dms_ctl.hh"
#include "rt/sync.hh"
#include "sim/rng.hh"
#include "util/fixed_point.hh"

namespace dpu::apps {

namespace {

using util::Fx22;
using util::Fx22Acc;

/** Two Gaussian classes in d dims, normalized to [-1, 1]-ish. */
struct Dataset
{
    std::uint32_t n = 0, d = 0;
    std::vector<double> x;     ///< row-major n x d
    std::vector<int> y;        ///< +-1
};

Dataset
makeDataset(std::uint32_t n, std::uint32_t d, std::uint64_t seed)
{
    Dataset ds;
    ds.n = n;
    ds.d = d;
    ds.x.resize(std::size_t(n) * d);
    ds.y.resize(n);
    sim::Rng rng{seed};
    std::vector<double> mu(d);
    for (auto &m : mu)
        m = rng.gaussian() * 0.35;
    for (std::uint32_t i = 0; i < n; ++i) {
        int label = rng.below(2) ? 1 : -1;
        ds.y[i] = label;
        for (std::uint32_t j = 0; j < d; ++j) {
            double v = label * mu[j] + rng.gaussian() * 0.30;
            ds.x[std::size_t(i) * d + j] =
                std::max(-1.0, std::min(1.0, v));
        }
    }
    return ds;
}

/** Shared SMO engine, templated over the arithmetic via epsilon.
 *  Runs functionally in double; the DPU variant quantizes f-values
 *  and the tolerance to Q10.22 resolution, which is exactly what
 *  running the same loop in fixed point produces. */
struct SmoState
{
    std::vector<double> alpha;
    std::vector<double> f; ///< w.x_i - y_i
    std::vector<double> w;
    double b = 0;
    unsigned iterations = 0;
};

double
quantize(double v, bool fixed_point)
{
    if (!fixed_point)
        return v;
    return double(Fx22::fromDouble(v).toDouble());
}

SmoState
runSmo(const Dataset &ds, double c, unsigned max_iters,
       bool fixed_point,
       const std::function<void(const SmoState &)> &per_iter = {})
{
    const std::uint32_t n = ds.n, d = ds.d;
    SmoState st;
    st.alpha.assign(n, 0.0);
    st.w.assign(d, 0.0);
    st.f.resize(n);
    for (std::uint32_t i = 0; i < n; ++i)
        st.f[i] = -double(ds.y[i]);

    // The fixed-point KKT tolerance is necessarily coarser than the
    // double one — the mechanism behind the paper's ~35% fewer
    // iterations at equal accuracy.
    const double tol = fixed_point ? 1.0 / 256 : 1e-3;

    for (unsigned it = 0; it < max_iters; ++it) {
        int iu = -1, il = -1;
        double fu = 1e30, fl = -1e30;
        for (std::uint32_t i = 0; i < n; ++i) {
            bool in_up = (ds.y[i] > 0 && st.alpha[i] < c) ||
                         (ds.y[i] < 0 && st.alpha[i] > 0);
            bool in_low = (ds.y[i] > 0 && st.alpha[i] > 0) ||
                          (ds.y[i] < 0 && st.alpha[i] < c);
            double fi = quantize(st.f[i], fixed_point);
            if (in_up && fi < fu) {
                fu = fi;
                iu = int(i);
            }
            if (in_low && fi > fl) {
                fl = fi;
                il = int(i);
            }
        }
        if (iu < 0 || il < 0 || fl - fu < 2 * tol)
            break;

        const double *xi = &ds.x[std::size_t(iu) * d];
        const double *xj = &ds.x[std::size_t(il) * d];
        double kii = 0, kjj = 0, kij = 0;
        for (std::uint32_t k = 0; k < d; ++k) {
            kii += xi[k] * xi[k];
            kjj += xj[k] * xj[k];
            kij += xi[k] * xj[k];
        }
        const int yi = ds.y[iu], yj = ds.y[il];
        // Curvature along the feasible direction dw = t(x_i - x_j).
        double quad = kii + kjj - 2.0 * kij;
        if (quad < 1e-9)
            quad = 1e-9;

        // Feasible direction: dalpha_iu = +y_iu t, dalpha_il =
        // -y_il t, which keeps sum(alpha*y) constant and moves the
        // weight vector by t*(x_iu - x_il). Unconstrained optimum:
        double t_step = (fl - fu) / quad;
        // Box limits for both alphas.
        double lim_i =
            yi > 0 ? c - st.alpha[iu] : st.alpha[iu];
        double lim_j =
            yj > 0 ? st.alpha[il] : c - st.alpha[il];
        t_step = std::min({t_step, lim_i, lim_j});
        if (t_step <= 0)
            break;

        st.alpha[iu] += yi * t_step;
        st.alpha[il] -= yj * t_step;

        for (std::uint32_t k = 0; k < d; ++k) {
            st.w[k] += t_step * (xi[k] - xj[k]);
            st.w[k] = quantize(st.w[k], fixed_point);
        }
        for (std::uint32_t i = 0; i < n; ++i) {
            double df = 0;
            const double *x = &ds.x[std::size_t(i) * d];
            for (std::uint32_t k = 0; k < d; ++k)
                df += t_step * (xi[k] - xj[k]) * x[k];
            st.f[i] = quantize(st.f[i] + df, fixed_point);
        }
        st.b = -(fu + fl) / 2;
        st.iterations = it + 1;
        if (per_iter)
            per_iter(st);
    }
    return st;
}

double
accuracy(const Dataset &ds, const SmoState &st)
{
    unsigned ok = 0;
    for (std::uint32_t i = 0; i < ds.n; ++i) {
        double s = st.b;
        for (std::uint32_t k = 0; k < ds.d; ++k)
            s += st.w[k] * ds.x[std::size_t(i) * ds.d + k];
        ok += (s >= 0 ? 1 : -1) == ds.y[i];
    }
    return double(ok) / ds.n;
}

} // namespace

SvmResult
dpuSvm(const soc::SocParams &params, const SvmConfig &cfg)
{
    // Functional result (fixed-point SMO) computed once; the
    // simulator reproduces its per-iteration hardware activity so
    // the timing reflects exactly the iterations the quantized
    // algorithm performs.
    Dataset train = makeDataset(cfg.nTrain, cfg.dims, cfg.seed);
    Dataset test = makeDataset(cfg.nTest, cfg.dims, cfg.seed + 1);
    SmoState st = runSmo(train, cfg.c, cfg.maxIters, true);

    soc::SocParams p = params;
    const std::uint64_t x_bytes =
        std::uint64_t(cfg.nTrain) * cfg.dims * 4;
    p.ddrBytes = std::max<std::size_t>(
        p.ddrBytes, alignUp(x_bytes + (2 << 20), 1 << 20));
    soc::Soc s(p);

    // Stage the Q10.22 sample matrix (row-major).
    {
        std::vector<std::int32_t> fx(train.x.size());
        for (std::size_t i = 0; i < train.x.size(); ++i)
            fx[i] = Fx22::fromDouble(train.x[i]).raw();
        stage(s, 0, fx);
    }

    const unsigned iters = std::max(1u, st.iterations);
    const std::uint32_t slice = cfg.nTrain / cfg.nCores;
    const std::uint32_t slice_bytes = slice * cfg.dims * 4;

    rt::AteBarrier barrier(0, 26 * 1024, cfg.nCores);

    for (unsigned id = 0; id < cfg.nCores; ++id) {
        s.start(id, [&, id](core::DpCore &c) {
            rt::DmsCtl ctl(c, s.dmsFor(id));
            ate::Ate &ate = s.ateFor(id);
            const unsigned d = cfg.dims;

            // DMEM: f + alpha slices stay resident; samples stream.
            // (Functional values live in the shared SMO state; the
            // kernel charges the hardware activity.)
            for (unsigned it = 0; it < iters; ++it) {
                ctl.resetArena();
                // Stream this core's slice and update f: per sample
                // d fixed-point multiplies on the iterative
                // multiplier plus the accumulate/compare chain for
                // the violating-pair scan.
                rt::StreamReader in(
                    ctl, mem::Addr(id) * slice_bytes, slice_bytes, 0,
                    8192, 2, 0, 0);
                core::IsaCosts isa = c.isa();
                in.forEach([&](std::uint32_t, std::uint32_t blen) {
                    std::uint32_t rows = blen / (d * 4);
                    sim::Cycles per_row =
                        d * isa.mulCycles(22) // Q10.22 multiplies
                        + d                   // accumulates (ALU)
                        + 8;                  // f update + pair scan
                    c.cycles(rows * per_row);
                    c.statGroup().counter("muls") += rows * d;
                });

                // Send the local pair to the master (two packed
                // words into core 0's DMEM), then barrier.
                ate.remoteStore(c, id / 32 * 32,
                                mem::dmemAddr(id / 32 * 32,
                                              24 * 1024 + id % 32 * 8),
                                it, 8);
                barrier.arrive(c, ate);

                if (id == 0) {
                    // Master: select the global pair, compute the
                    // alpha updates (one fixed-point divide) and the
                    // weight update.
                    c.dualIssue(2 * cfg.nCores, cfg.nCores);
                    c.div();
                    c.cycles(3 * d * isa.mulCycles(22));
                }
                barrier.arrive(c, ate);

                // Fetch the broadcast delta-w (d+2 words over ATE).
                if (id != 0) {
                    for (unsigned k = 0; k < d + 2; k += 4) {
                        (void)ate.remoteLoad(
                            c, 0, mem::dmemAddr(0, 25 * 1024 + k * 4),
                            8);
                    }
                }
            }
        });
    }
    sim::Tick t = s.run();
    sim_assert(s.allFinished(), "SVM kernels deadlocked");

    SvmResult r;
    r.seconds = double(t) * 1e-12;
    r.iterations = st.iterations;
    r.trainAccuracy = accuracy(train, st);
    r.testAccuracy = accuracy(test, st);
    return r;
}

SvmResult
xeonSvm(const SvmConfig &cfg)
{
    Dataset train = makeDataset(cfg.nTrain, cfg.dims, cfg.seed);
    Dataset test = makeDataset(cfg.nTest, cfg.dims, cfg.seed + 1);

    // LIBSVM-style double-precision SMO with a kernel cache: per
    // iteration it materializes the two working rows (cache misses
    // stream them from DRAM) and updates the gradient.
    xeon::XeonModel m(xeon::XeonParams{}, 18); // 18 OpenMP threads
    SmoState st = runSmo(
        train, cfg.c, cfg.maxIters, false,
        [&](const SmoState &) {
            const double n = cfg.nTrain, d = cfg.dims;
            // The paper's 100 MB kernel cache holds ~100 of the
            // 128K HIGGS rows — a sub-percent hit rate; we keep
            // the equivalent regime at our scaled-down n.
            const double cache_hit = 0.05;
            m.streamBytes(2 * n * d * 8 * (1 - cache_hit));
            m.simdOps(2 * n * d); // kernel rows (FMA elements)
            m.scalarOps(n * 6);   // gradient + pair scan
            m.serialOps(400);     // pair selection / bookkeeping
            m.endPhase();
        });

    SvmResult r;
    r.seconds = m.seconds();
    r.iterations = st.iterations;
    r.trainAccuracy = accuracy(train, st);
    r.testAccuracy = accuracy(test, st);
    return r;
}

AppResult
svmApp(const SvmConfig &cfg)
{
    SvmResult d = dpuSvm(soc::dpu40nm(), cfg);
    SvmResult x = xeonSvm(cfg);
    AppResult r;
    r.name = "SVM (parallel SMO)";
    r.dpuSeconds = d.seconds;
    r.xeonSeconds = x.seconds;
    r.workUnits = double(cfg.nTrain) * d.iterations;
    r.unitName = "sample-iterations";
    // The paper's claim: fewer fixed-point iterations, no accuracy
    // loss.
    r.matched = d.iterations <= x.iterations &&
                d.testAccuracy > x.testAccuracy - 0.02;
    return r;
}

} // namespace dpu::apps

/**
 * @file
 * HyperLogLog cardinality estimation (Section 5.4).
 *
 * Single pass over the data; per element: hash, take p index bits,
 * count zeros in the rest, keep the per-register maximum; harmonic
 * mean at the end. The paper's co-design points, all modelled here:
 *
 *  - NTZ instead of NLZ: counting TRAILING zeros costs 4 cycles via
 *    the popcount unit against 13 for leading zeros, with identical
 *    estimator statistics;
 *  - CRC32 (single-cycle ISA extension) vs Murmur64 (three 64-bit
 *    multiplies per block on the iterative multiplier — the "does
 *    poorly on the DPU" case);
 *  - work stealing over input chunks with ATE fetch-and-add,
 *    essential because the variable-latency multiplier makes static
 *    schedules tail-heavy.
 */

#ifndef DPU_APPS_HLL_HH
#define DPU_APPS_HLL_HH

#include <cstdint>

#include "apps/common.hh"

namespace dpu::apps {

/** Hash function selection (Section 5.4 compares the two). */
enum class HllHash
{
    Crc32,
    Murmur64,
};

struct HllConfig
{
    std::uint64_t nElements = 1 << 21;
    std::uint64_t cardinality = 1 << 18; ///< true distinct count
    unsigned pBits = 12;                 ///< 4096 registers
    HllHash hash = HllHash::Crc32;
    bool useNtz = true;                  ///< NTZ (4cy) vs NLZ (13cy)
    std::uint64_t seed = 21;
    unsigned nCores = 32;
};

struct HllResult
{
    double seconds = 0;
    double estimate = 0;
    std::uint64_t elements = 0;

    double gbPerSec() const { return elements * 8.0 / seconds / 1e9; }
};

/** Internals shared with the serving kernel (apps/serving.cc). */
namespace hlldetail {
/** Synthetic multiset with a known number of distinct values. */
std::vector<std::uint64_t> makeElements(const HllConfig &cfg);
/** The estimator update both platforms share. */
void update(std::uint64_t h, unsigned p_bits, bool use_ntz,
            std::vector<std::uint8_t> &regs);
/** Harmonic-mean estimate with small-range correction. */
double estimate(const std::vector<std::uint8_t> &regs);
} // namespace hlldetail

/** Run on the DPU simulator. */
HllResult dpuHll(const soc::SocParams &params, const HllConfig &cfg);

/** Functional baseline through the Xeon model. */
HllResult xeonHll(const HllConfig &cfg);

} // namespace dpu::apps

#endif // DPU_APPS_HLL_HH

/**
 * @file
 * Similarity search on text (Section 5.2): tf-idf cosine scoring of
 * a query batch against an inverted index, formulated as sparse
 * matrix-matrix multiplication (C = A x B).
 *
 * The index is doc-tile-major: per 128-document tile, all postings
 * (term, local doc, Q10.22 weight). The DPU kernel accumulates a
 * whole query batch's scores for the current tile in DMEM (the
 * "dynamically formed tiles": stream buffers span multiple tiles
 * and the consumer tracks tile boundaries, consuming ALL fetched
 * data, Section 5.2). The naive variant — one small DMS fetch per
 * (term, tile) range — reproduces the paper's 0.26 GB/s effective
 * bandwidth; the dynamic variant reaches multiple GB/s.
 *
 * The Xeon baseline is a Patwary-style tiled CSR SpMM that streams
 * only the query terms' postings at the machine's effective
 * bandwidth. Because Zipf-distributed queries cover only part of
 * the index, the DPU's full-scan strategy moves more bytes — which
 * is exactly why the paper's gain here (3.9x) is the smallest of
 * the suite.
 */

#ifndef DPU_APPS_SIMSEARCH_HH
#define DPU_APPS_SIMSEARCH_HH

#include <cstdint>
#include <vector>

#include "apps/common.hh"

namespace dpu::apps {

struct SimSearchConfig
{
    std::uint32_t nDocs = 32 << 10;
    std::uint32_t vocab = 16 << 10;
    std::uint32_t avgTermsPerDoc = 48;
    std::uint32_t nQueries = 32;
    std::uint32_t termsPerQuery = 24;
    unsigned topK = 10;
    double zipf = 1.0;
    std::uint64_t seed = 33;
    unsigned nCores = 32;
    /** Per-(term,tile) descriptor fetches (the 0.26 GB/s case). */
    bool naiveDms = false;
};

struct SimSearchResult
{
    double seconds = 0;
    std::uint64_t indexBytes = 0;
    /** topK doc ids per query, score-ordered. */
    std::vector<std::vector<std::uint32_t>> topDocs;
    /** Raw Q10.22 checksum of all scores (exact cross-check). */
    std::uint64_t scoreChecksum = 0;

    double
    effectiveGbPerSec() const
    {
        return double(indexBytes) / seconds / 1e9;
    }
};

SimSearchResult dpuSimSearch(const soc::SocParams &params,
                             const SimSearchConfig &cfg);
SimSearchResult xeonSimSearch(const SimSearchConfig &cfg);

} // namespace dpu::apps

#endif // DPU_APPS_SIMSEARCH_HH

/**
 * @file
 * Core-group serving kernels: each Section 5 application re-cast as
 * a ServingJob the offload scheduler can dispatch to an arbitrary
 * group of dpCores inside a long-lived serving chip (the deployment
 * model of Section 2.4, where the A9 host feeds work to the
 * dpCores over the MBC).
 *
 * Unlike the dpu* head-to-head runners — which build a whole Soc per
 * invocation — a serving job stages its inputs into a job-private
 * DDR arena, runs one kernel lane per group core, and is validated
 * host-side against an exact integer replay. All input/output moves
 * go through the DMS (which reads and writes the DDR backing store
 * directly), so jobs never depend on the non-coherent core caches
 * observing another job's data.
 */

#ifndef DPU_APPS_SERVING_HH
#define DPU_APPS_SERVING_HH

#include "apps/disparity.hh"
#include "apps/hll.hh"
#include "apps/json.hh"
#include "apps/registry.hh"
#include "apps/simsearch.hh"
#include "apps/sql/filter.hh"
#include "apps/sql/groupby.hh"
#include "apps/svm.hh"

namespace dpu::apps::serving {

/** Predicate scan: per-lane FILT over a uint32 column slice. */
ServingJob filterJob(const sql::FilterConfig &cfg,
                     const ServingContext &ctx);

/** Low-NDV aggregation: per-lane DMEM sum tables, host merge. */
ServingJob groupByJob(const sql::GroupByConfig &cfg,
                      const ServingContext &ctx);

/** Cardinality sketch: per-lane HLL register files, host merge. */
ServingJob hllJob(const HllConfig &cfg, const ServingContext &ctx);

/** JSON tally: per-lane boundary-exact parse of a text slice. */
ServingJob jsonJob(const JsonConfig &cfg, const ServingContext &ctx);

/** SVM inference: classify a test batch against staged weights. */
ServingJob svmJob(const SvmConfig &cfg, const ServingContext &ctx);

/** Similarity scoring: Q10.22 posting-list scan against a query. */
ServingJob simSearchJob(const SimSearchConfig &cfg,
                        const ServingContext &ctx);

/** Stereo disparity: row-banded SAD argmin. */
ServingJob disparityJob(const DisparityConfig &cfg,
                        const ServingContext &ctx);

} // namespace dpu::apps::serving

#endif // DPU_APPS_SERVING_HH

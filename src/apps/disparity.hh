/**
 * @file
 * Stereo disparity (Section 5.6, Figure 17).
 *
 * SD-VBS-style block-matching disparity: for each candidate shift
 * the absolute difference image is box-filtered (the row-wise and
 * column-wise access patterns of Figure 17) and a running
 * minimum-cost shift is kept per pixel. The DPU uses the
 * fine-grained parallelization the paper found superior: the image
 * is split into per-core row bands computed in lockstep, one ATE
 * barrier per vision-kernel phase, with the DMS streaming rows in
 * and the cost/argmin maps back out.
 */

#ifndef DPU_APPS_DISPARITY_HH
#define DPU_APPS_DISPARITY_HH

#include <cstdint>
#include <vector>

#include "apps/common.hh"

namespace dpu::apps {

struct DisparityConfig
{
    std::uint32_t width = 512;
    std::uint32_t height = 256;
    unsigned maxShift = 24;
    unsigned window = 5;        ///< box-filter side (odd)
    std::uint64_t seed = 9;
    unsigned nCores = 32;
};

struct DisparityResult
{
    double seconds = 0;
    std::vector<std::uint8_t> disparity; ///< per-pixel argmin shift
    /** Fraction of pixels whose recovered shift equals the ground
     *  truth (away from occlusion borders). */
    double groundTruthHitRate = 0;
};

DisparityResult dpuDisparity(const soc::SocParams &params,
                             const DisparityConfig &cfg);
DisparityResult xeonDisparity(const DisparityConfig &cfg);

} // namespace dpu::apps

#endif // DPU_APPS_DISPARITY_HH

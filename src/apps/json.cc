#include "apps/json.hh"

#include "apps/entry.hh"

#include <vector>

#include "rt/dms_ctl.hh"
#include "sim/rng.hh"

namespace dpu::apps {

namespace jsondetail {

/** Newline-delimited lineitem-shaped records (Section 5.5). */
std::string
makeRecords(const JsonConfig &cfg)
{
    static const char *words[] = {"quick", "silent", "ironic",
                                  "final", "pending", "express",
                                  "deposits", "accounts", "theodolites",
                                  "platelets"};
    sim::Rng rng{cfg.seed};
    std::string out;
    out.reserve(std::size_t(cfg.nRecords) * 180);
    char buf[64];
    for (std::uint32_t r = 0; r < cfg.nRecords; ++r) {
        out += "{\"orderkey\":";
        out += std::to_string(r + 1);
        out += ",\"partkey\":";
        out += std::to_string(rng.below(200000) + 1);
        out += ",\"quantity\":";
        out += std::to_string(rng.below(50) + 1);
        out += ",\"price\":";
        std::snprintf(buf, sizeof(buf), "%llu.%02llu",
                      (unsigned long long)(rng.below(90000) + 1000),
                      (unsigned long long)rng.below(100));
        out += buf;
        out += ",\"shipdate\":\"19";
        std::snprintf(buf, sizeof(buf), "%02llu-%02llu-%02llu",
                      (unsigned long long)(92 + rng.below(7)) % 100,
                      (unsigned long long)rng.below(12) + 1,
                      (unsigned long long)rng.below(28) + 1);
        out += buf;
        out += "\",\"comment\":\"";
        unsigned n = 2 + unsigned(rng.below(4));
        for (unsigned w = 0; w < n; ++w) {
            if (w)
                out += ' ';
            out += words[rng.below(10)];
        }
        out += "\"}\n";
    }
    return out;
}

/**
 * The table-driven FSM both implementations share functionally: a
 * flat scan counting records (depth-0 newlines), fields (colons at
 * depth 1 outside strings), and summing integer-part values. Also
 * reports the number of "action" events (fields) for the DPU's
 * cost model.
 */
JsonTally
parseSpan(const char *p, std::uint64_t len)
{
    JsonTally t;
    int depth = 0;
    bool in_str = false;
    bool esc = false;
    bool in_int = false;
    std::uint64_t cur = 0;
    for (std::uint64_t i = 0; i < len; ++i) {
        char ch = p[i];
        if (in_str) {
            if (esc)
                esc = false;
            else if (ch == '\\')
                esc = true;
            else if (ch == '"')
                in_str = false;
            continue;
        }
        if (in_int) {
            if (ch >= '0' && ch <= '9') {
                cur = cur * 10 + std::uint64_t(ch - '0');
                continue;
            }
            t.intSum += cur;
            in_int = false;
        }
        switch (ch) {
          case '"': in_str = true; break;
          case '{': ++depth; break;
          case '}': --depth; break;
          case ':':
            if (depth == 1) {
                ++t.fields;
                if (i + 1 < len && p[i + 1] >= '0' &&
                    p[i + 1] <= '9') {
                    in_int = true;
                    cur = 0;
                }
            }
            break;
          case '\n':
            if (depth == 0)
                ++t.records;
            break;
          default:
            break;
        }
    }
    return t;
}

} // namespace jsondetail

using jsondetail::makeRecords;
using jsondetail::parseSpan;

namespace {

constexpr std::uint32_t padBytes = 1024; // Section 5.5's padding

} // namespace

JsonResult
dpuJson(const soc::SocParams &params, const JsonConfig &cfg)
{
    soc::SocParams p = params;
    std::string text = makeRecords(cfg);
    const std::uint64_t bytes = text.size();
    p.ddrBytes = std::max<std::size_t>(
        p.ddrBytes, alignUp(bytes + (1 << 20), 1 << 20));
    soc::Soc s(p);
    s.memory().store().write(0, text.data(), bytes);

    const std::uint64_t chunk =
        alignUp((bytes + cfg.nCores - 1) / cfg.nCores, 4);

    std::vector<JsonTally> tallies(cfg.nCores);
    for (unsigned id = 0; id < cfg.nCores; ++id) {
        s.start(id, [&, id](core::DpCore &c) {
            rt::DmsCtl ctl(c, s.dmsFor(id));
            // Cores other than the first also read the byte just
            // before their chunk: a record is theirs to skip only
            // when it STRADDLES the boundary, i.e. when that byte
            // is not a newline.
            std::uint64_t begin = std::uint64_t(id) * chunk;
            if (begin >= bytes)
                return;
            unsigned lead = id > 0 ? 1 : 0;
            begin -= lead;
            // Read the chunk plus padding; the extra bytes cover a
            // record straddling the boundary (Section 5.5).
            std::uint64_t want =
                std::min<std::uint64_t>(chunk + lead + padBytes,
                                        bytes - begin);

            // Triple-buffered 8 KB tiles, exactly as the paper.
            std::vector<char> local;
            local.reserve(want);
            rt::StreamReader in(ctl, begin, want, 0, 8192, 3, 0, 0);
            in.forEach([&](std::uint32_t off, std::uint32_t blen) {
                std::size_t at = local.size();
                local.resize(at + blen);
                c.dmem().read(off, local.data() + at, blen);
            });

            // Skip into the first whole record; parse through the
            // chunk end until the straddling record closes.
            std::uint64_t from = 0;
            if (id > 0) {
                while (from < local.size() && local[from] != '\n')
                    ++from;
                ++from; // one past the newline
            }
            std::uint64_t to = std::min<std::uint64_t>(
                chunk + lead, local.size());
            while (to < local.size() && local[to - 1] != '\n')
                ++to;
            if (from >= to)
                return;

            std::uint64_t span = to - from;
            JsonTally t = parseSpan(local.data() + from, span);
            tallies[id] = t;

            // Cost model: the jump-table parser runs the dispatch
            // loop at ~6 cycles/byte plus ~30 cycles of value
            // materialization per field. The branchy SAJSON port
            // pays 13.2 cycles/byte in the pipeline (Section 5.5)
            // plus front-end stalls — its "large number of
            // instructions" thrashes the 8 KB I-cache — which is
            // what pins the whole chip at ~645 MB/s.
            if (cfg.branchyParser)
                c.cycles(sim::Cycles(span * 33));
            else
                c.cycles(sim::Cycles(span * 6));
            c.cycles(t.fields * 30);
        });
    }
    sim::Tick t = s.run();
    sim_assert(s.allFinished(), "JSON kernels deadlocked");

    JsonResult r;
    r.seconds = double(t) * 1e-12;
    r.bytes = bytes;
    for (const JsonTally &pt : tallies) {
        r.tally.records += pt.records;
        r.tally.fields += pt.fields;
        r.tally.intSum += pt.intSum;
    }
    return r;
}

JsonResult
xeonJson(const JsonConfig &cfg)
{
    std::string text = makeRecords(cfg);
    JsonResult r;
    r.bytes = text.size();
    r.tally = parseSpan(text.data(), text.size());

    // Anchored on the paper's measurement: SAJSON parses this record
    // mix at 5.2 GB/s on the 36-core box at IPC 3.05 (Section 5.5),
    // i.e. ~48 uops per byte.
    xeon::XeonModel m;
    m.scalarOps(double(r.bytes) * 48.0);
    m.streamBytes(double(r.bytes));
    m.endPhase();
    r.seconds = m.seconds();
    return r;
}

AppResult
jsonApp(const JsonConfig &cfg)
{
    JsonResult d = dpuJson(soc::dpu40nm(), cfg);
    JsonResult x = xeonJson(cfg);
    AppResult r;
    r.name = cfg.branchyParser ? "JSON (branchy)" : "JSON parsing";
    r.dpuSeconds = d.seconds;
    r.xeonSeconds = x.seconds;
    r.workUnits = double(d.bytes);
    r.unitName = "bytes";
    r.matched = d.tally == x.tally;
    return r;
}

} // namespace dpu::apps

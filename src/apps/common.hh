/**
 * @file
 * Shared scaffolding for the co-design applications (Section 5):
 * the DPU-vs-Xeon result record with the paper's performance/watt
 * metric, and helpers for staging workload data in simulated DDR.
 */

#ifndef DPU_APPS_COMMON_HH
#define DPU_APPS_COMMON_HH

#include <cstdint>
#include <string>
#include <vector>

#include "soc/soc.hh"
#include "soc/soc_params.hh"
#include "xeon/xeon_model.hh"

namespace dpu::apps {

/** One application's head-to-head outcome. */
struct AppResult
{
    std::string name;
    double dpuSeconds = 0;
    double xeonSeconds = 0;
    /** Work-per-run for throughput reporting (e.g. bytes, tuples). */
    double workUnits = 0;
    const char *unitName = "bytes";
    /** Functional agreement between DPU and baseline outputs. */
    bool matched = false;

    /** Performance/watt gain, the Figure 14/16 metric. */
    double
    gain(double dpu_watts = 6.0,
         double xeon_watts = soc::xeonTdpWatts) const
    {
        return (xeonSeconds / dpuSeconds) * (xeon_watts / dpu_watts);
    }

    double dpuThroughput() const { return workUnits / dpuSeconds; }
    double xeonThroughput() const { return workUnits / xeonSeconds; }
};

/** Copy a host vector into simulated DDR at @p addr. */
template <typename T>
inline void
stage(soc::Soc &s, mem::Addr addr, const std::vector<T> &v)
{
    s.memory().store().write(addr, v.data(), v.size() * sizeof(T));
}

/** Read a host vector back out of simulated DDR. */
template <typename T>
inline std::vector<T>
unstage(soc::Soc &s, mem::Addr addr, std::size_t n)
{
    std::vector<T> v(n);
    s.memory().store().read(addr, v.data(), n * sizeof(T));
    return v;
}

/** Round @p x up to a multiple of @p align. */
constexpr std::uint64_t
alignUp(std::uint64_t x, std::uint64_t align)
{
    return (x + align - 1) / align * align;
}

} // namespace dpu::apps

#endif // DPU_APPS_COMMON_HH

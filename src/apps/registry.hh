/**
 * @file
 * The app-kernel registry: every Section 5 co-design application as
 * a uniform, enumerable value instead of a bespoke call signature.
 *
 * An AppSpec bundles one application's name, default config, string
 * config mutators, head-to-head runner (kernel factory + result
 * validator, returning the usual AppResult), and — for the offload
 * scheduler — a serving-job factory that instantiates the app's
 * kernel on an arbitrary dpCore group instead of a whole chip.
 *
 * This registry is the sole entry path: the old per-app
 * free-function wrappers (hllApp, svmApp, ...) are gone from the
 * public headers. Enumerate registry() or look up findApp(name);
 * the typed head-to-head runners live in the internal apps/entry.hh.
 */

#ifndef DPU_APPS_REGISTRY_HH
#define DPU_APPS_REGISTRY_HH

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "apps/common.hh"

namespace dpu::apps {

/** Opaque shared handle to one app's config struct. */
using ConfigHandle = std::shared_ptr<void>;

/**
 * Per-request resources a serving job is instantiated against: the
 * long-lived serving chip, the core-group's lane span, and a
 * job-private DDR arena for inputs/outputs.
 */
struct ServingContext
{
    soc::Soc *soc = nullptr;
    unsigned baseCore = 0;       ///< first core of the group
    unsigned nLanes = 1;         ///< cores in the group
    mem::Addr arena = 0;         ///< DDR scratch base (job-private)
    std::uint64_t arenaBytes = 0;
    std::uint64_t seed = 0;      ///< per-request seed
};

/**
 * One dispatched request, instantiated on a core group. stage()
 * runs host-side before dispatch (places inputs in DDR through the
 * backing store); lane() is the kernel body executed on core
 * baseCore+lane for every lane; validate() runs host-side after all
 * lanes acked and checks the outputs (again via the backing store,
 * which DMS writes reach directly).
 */
struct ServingJob
{
    std::function<void()> stage;
    std::function<void(core::DpCore &, unsigned lane)> lane;
    std::function<bool()> validate;
    double workUnits = 0;
    const char *unitName = "items";
};

/** One registered application. */
struct AppSpec
{
    /** Registry key, e.g. "hll-crc", "groupby-low". */
    std::string name;
    /** One-line description. */
    std::string summary;
    /** Figure 14 gain anchor (0 = not a Figure 14 bar). */
    double paperGain = 0;

    /** Fresh config with this entry's defaults. */
    std::function<ConfigHandle()> makeConfig;

    /**
     * Mutate @p cfg field @p key to @p value (decimal/bool/enum
     * token). @return false on unknown key or unparsable value.
     */
    std::function<bool(const ConfigHandle &cfg, std::string_view key,
                       std::string_view value)>
        set;

    /**
     * Full head-to-head: build the DPU kernel, run it and the Xeon
     * baseline, validate agreement. The AppResult carries the
     * validator verdict in .matched.
     */
    std::function<AppResult(const ConfigHandle &cfg)> run;

    /** Instantiate the app as a core-group serving job. */
    std::function<ServingJob(const ConfigHandle &cfg,
                             const ServingContext &ctx)>
        serve;
};

/** All registered apps, in Figure 14 row order. */
const std::vector<AppSpec> &registry();

/** Look up an app by name; nullptr when absent. */
const AppSpec *findApp(std::string_view name);

/**
 * Convenience: run app @p name with @p opts applied over the
 * defaults. Asserts the name and every option resolve.
 */
AppResult runApp(std::string_view name,
                 std::initializer_list<
                     std::pair<std::string_view, std::string_view>>
                     opts = {});

} // namespace dpu::apps

#endif // DPU_APPS_REGISTRY_HH

#include "apps/serving.hh"

#include <algorithm>
#include <cstring>
#include <limits>
#include <vector>

#include "rt/dms_ctl.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "util/crc32.hh"
#include "util/murmur64.hh"

namespace dpu::apps::serving {

namespace {

/** Contiguous [begin, begin+count) share of @p total for @p lane. */
struct Slice
{
    std::uint64_t begin = 0;
    std::uint64_t count = 0;
};

Slice
laneSlice(std::uint64_t total, unsigned n_lanes, unsigned lane)
{
    const std::uint64_t per = (total + n_lanes - 1) / n_lanes;
    const std::uint64_t b = std::min<std::uint64_t>(total, lane * per);
    const std::uint64_t e = std::min<std::uint64_t>(total, b + per);
    return {b, e - b};
}

std::uint64_t
align64(std::uint64_t v)
{
    return (v + 63) & ~std::uint64_t(63);
}

/** Dump @p bytes of DMEM at @p src_off to DDR @p dst, synchronous. */
void
dumpToDdr(rt::DmsCtl &ctl, std::uint16_t src_off, mem::Addr dst,
          std::uint32_t bytes)
{
    ctl.dmemToDdr().rows(bytes / 4).width(4).from(src_off).to(dst)
        .event(6).noAutoInc().push(1);
    ctl.wfe(6);
    ctl.clearEvent(6);
}

} // namespace

// ----------------------------------------------------------------
// SQL filter: FILT scan over a uint32 column slice
// ----------------------------------------------------------------

ServingJob
filterJob(const sql::FilterConfig &cfg, const ServingContext &ctx)
{
    const std::uint64_t rows =
        std::uint64_t(cfg.rowsPerCore) * ctx.nLanes;
    const std::uint32_t tile = std::min<std::uint32_t>(
        cfg.tileBytes ? cfg.tileBytes : 8192, 8192);
    sim_assert(tile % 4 == 0, "tile must be element aligned");
    const mem::Addr data_base = ctx.arena;
    const mem::Addr res_base = ctx.arena + align64(rows * 4);
    sim_assert(res_base + ctx.nLanes * 8 <=
                   ctx.arena + ctx.arenaBytes,
               "filter job overruns its arena");

    soc::Soc *s = ctx.soc;
    const std::uint64_t seed = ctx.seed ^ cfg.seed;
    auto column = [=] {
        sim::Rng rng{seed};
        std::vector<std::uint32_t> v(rows);
        for (auto &x : v)
            x = std::uint32_t(rng.below(1000));
        return v;
    };

    ServingJob job;
    job.workUnits = double(rows);
    job.unitName = "tuples";
    job.stage = [=] { stage(*s, data_base, column()); };
    job.lane = [=](core::DpCore &c, unsigned lane) {
        Slice sl = laneSlice(rows, ctx.nLanes, lane);
        if (!sl.count)
            return;
        rt::DmsCtl ctl(c, s->dmsFor(c.id()));
        const std::uint32_t bv_off = 2 * tile;
        std::uint64_t passed = 0;
        rt::StreamReader in(ctl, data_base + sl.begin * 4,
                            sl.count * 4, 0, tile, 2, 0, 0);
        in.forEach([&](std::uint32_t off, std::uint32_t blen) {
            passed += c.filt(off, blen / 4, 4, cfg.lo, cfg.hi,
                             bv_off);
        });
        const std::uint32_t out_off = bv_off + tile / 8;
        c.dmem().store<std::uint64_t>(out_off, passed);
        c.dualIssue(2, 2);
        dumpToDdr(ctl, std::uint16_t(out_off), res_base + lane * 8,
                  8);
    };
    job.validate = [=] {
        auto v = column();
        std::uint64_t expect = 0;
        for (std::uint32_t x : v)
            expect += (x >= cfg.lo && x <= cfg.hi);
        std::uint64_t got = 0;
        for (unsigned l = 0; l < ctx.nLanes; ++l)
            got += unstage<std::uint64_t>(*s, res_base + l * 8,
                                          1)[0];
        return got == expect;
    };
    return job;
}

// ----------------------------------------------------------------
// Group-by (low NDV): per-lane DMEM sum tables, host merge
// ----------------------------------------------------------------

ServingJob
groupByJob(const sql::GroupByConfig &cfg, const ServingContext &ctx)
{
    sim_assert(cfg.ndv > 0 && cfg.ndv <= 1024,
               "serving group-by needs the table in DMEM (ndv %u)",
               cfg.ndv);
    const std::uint64_t rows = cfg.nRows;
    const std::uint32_t tab_bytes = cfg.ndv * 8;
    const mem::Addr data_base = ctx.arena; // (key,val) uint32 pairs
    const mem::Addr res_base = ctx.arena + align64(rows * 8);
    sim_assert(res_base + std::uint64_t(ctx.nLanes) * tab_bytes <=
                   ctx.arena + ctx.arenaBytes,
               "group-by job overruns its arena");

    soc::Soc *s = ctx.soc;
    const std::uint64_t seed = ctx.seed ^ cfg.seed;
    auto table = [=] {
        sim::Rng rng{seed};
        std::vector<std::uint32_t> v(rows * 2);
        for (std::uint64_t r = 0; r < rows; ++r) {
            v[r * 2] = std::uint32_t(rng.below(cfg.ndv));
            v[r * 2 + 1] = std::uint32_t(rng.below(1 << 16));
        }
        return v;
    };

    ServingJob job;
    job.workUnits = double(rows);
    job.unitName = "rows";
    job.stage = [=] { stage(*s, data_base, table()); };
    job.lane = [=](core::DpCore &c, unsigned lane) {
        Slice sl = laneSlice(rows, ctx.nLanes, lane);
        if (!sl.count)
            return;
        rt::DmsCtl ctl(c, s->dmsFor(c.id()));
        constexpr std::uint32_t tile = 8192;
        const std::uint32_t tab_off = 2 * tile;
        for (std::uint32_t g = 0; g < cfg.ndv; ++g)
            c.dmem().store<std::uint64_t>(tab_off + g * 8, 0);
        c.dualIssue(cfg.ndv / 4 + 1, cfg.ndv / 4 + 1);

        rt::StreamReader in(ctl, data_base + sl.begin * 8,
                            sl.count * 8, 0, tile, 2, 0, 0);
        in.forEach([&](std::uint32_t off, std::uint32_t blen) {
            for (std::uint32_t i = 0; i < blen; i += 8) {
                std::uint32_t key =
                    c.dmem().load<std::uint32_t>(off + i);
                std::uint32_t val =
                    c.dmem().load<std::uint32_t>(off + i + 4);
                std::uint64_t sum = c.dmem().load<std::uint64_t>(
                    tab_off + key * 8);
                c.dmem().store<std::uint64_t>(tab_off + key * 8,
                                              sum + val);
                // 2 loads + rmw, paired with index arithmetic.
                c.dualIssue(3, 3);
            }
        });
        dumpToDdr(ctl, std::uint16_t(tab_off),
                  res_base + std::uint64_t(lane) * tab_bytes,
                  tab_bytes);
    };
    job.validate = [=] {
        auto v = table();
        std::vector<std::uint64_t> expect(cfg.ndv, 0);
        for (std::uint64_t r = 0; r < rows; ++r)
            expect[v[r * 2]] += v[r * 2 + 1];
        std::vector<std::uint64_t> got(cfg.ndv, 0);
        for (unsigned l = 0; l < ctx.nLanes; ++l) {
            auto part = unstage<std::uint64_t>(
                *s, res_base + std::uint64_t(l) * tab_bytes,
                cfg.ndv);
            for (std::uint32_t g = 0; g < cfg.ndv; ++g)
                got[g] += part[g];
        }
        return got == expect;
    };
    return job;
}

// ----------------------------------------------------------------
// HLL: per-lane register files, merged and replayed host-side
// ----------------------------------------------------------------

ServingJob
hllJob(const HllConfig &cfg, const ServingContext &ctx)
{
    const std::uint32_t m = 1u << cfg.pBits;
    sim_assert(m <= 8 * 1024, "register file exceeds DMEM budget");
    const std::uint64_t n = cfg.nElements;
    const mem::Addr data_base = ctx.arena;
    const mem::Addr res_base = ctx.arena + align64(n * 8);
    sim_assert(res_base + std::uint64_t(ctx.nLanes) * m <=
                   ctx.arena + ctx.arenaBytes,
               "HLL job overruns its arena");

    soc::Soc *s = ctx.soc;
    HllConfig gen = cfg;
    gen.seed = ctx.seed ^ cfg.seed;

    ServingJob job;
    job.workUnits = double(n);
    job.unitName = "elements";
    job.stage = [=] { stage(*s, data_base, hlldetail::makeElements(gen)); };
    job.lane = [=](core::DpCore &c, unsigned lane) {
        Slice sl = laneSlice(n, ctx.nLanes, lane);
        if (!sl.count)
            return;
        rt::DmsCtl ctl(c, s->dmsFor(c.id()));
        constexpr std::uint32_t tile = 4096;
        const std::uint32_t reg_off = 2 * tile;
        std::vector<std::uint8_t> regs(m, 0);
        for (std::uint32_t i = 0; i < m; ++i)
            c.dmem().store<std::uint8_t>(reg_off + i, 0);
        c.dualIssue(m / 8, m / 8);

        rt::StreamReader in(ctl, data_base + sl.begin * 8,
                            sl.count * 8, 0, tile, 2, 0, 0);
        in.forEach([&](std::uint32_t off, std::uint32_t blen) {
            for (std::uint32_t i = 0; i < blen; i += 8) {
                std::uint64_t e =
                    c.dmem().load<std::uint64_t>(off + i);
                std::uint64_t h;
                if (cfg.hash == HllHash::Crc32) {
                    std::uint32_t lo = c.crcHash64(e);
                    std::uint32_t hi =
                        c.crcHash(lo ^ std::uint32_t(e >> 32));
                    h = (std::uint64_t(hi) << 32) | lo;
                } else {
                    h = util::murmur64Key(e);
                    for (std::uint64_t k = 0;
                         k < util::murmur64MulCount(8); ++k)
                        c.mul(64);
                    c.alu(10);
                }
                if (cfg.useNtz)
                    (void)c.ntz(h << cfg.pBits | 1);
                else
                    (void)c.nlz(h << cfg.pBits | 1);
                hlldetail::update(h, cfg.pBits, cfg.useNtz, regs);
                c.dualIssue(3, 3);
            }
        });
        c.dmem().write(reg_off, regs.data(), m);
        c.dualIssue(m / 8, m / 8);
        dumpToDdr(ctl, std::uint16_t(reg_off),
                  res_base + std::uint64_t(lane) * m, m);
    };
    job.validate = [=] {
        auto data = hlldetail::makeElements(gen);
        bool ok = true;
        std::vector<std::uint8_t> merged(m, 0);
        for (unsigned l = 0; l < ctx.nLanes; ++l) {
            Slice sl = laneSlice(n, ctx.nLanes, l);
            std::vector<std::uint8_t> regs(m, 0);
            for (std::uint64_t i = 0; i < sl.count; ++i) {
                std::uint64_t e = data[sl.begin + i];
                std::uint64_t h;
                if (cfg.hash == HllHash::Crc32) {
                    std::uint32_t lo = util::crc32Key64(e);
                    std::uint32_t hi =
                        util::crc32Key(lo ^ std::uint32_t(e >> 32));
                    h = (std::uint64_t(hi) << 32) | lo;
                } else {
                    h = util::murmur64Key(e);
                }
                hlldetail::update(h, cfg.pBits, cfg.useNtz, regs);
            }
            auto got = unstage<std::uint8_t>(
                *s, res_base + std::uint64_t(l) * m, m);
            ok = ok && got == regs;
            for (std::uint32_t i = 0; i < m; ++i)
                merged[i] = std::max(merged[i], regs[i]);
        }
        // The merged sketch must also estimate the true
        // cardinality within the usual HLL error band.
        double err =
            std::abs(hlldetail::estimate(merged) -
                     double(cfg.cardinality)) /
            double(cfg.cardinality);
        return ok && err < 0.1;
    };
    return job;
}

// ----------------------------------------------------------------
// JSON: boundary-exact per-lane parse, summed tallies
// ----------------------------------------------------------------

ServingJob
jsonJob(const JsonConfig &cfg, const ServingContext &ctx)
{
    JsonConfig gen = cfg;
    gen.seed = ctx.seed ^ cfg.seed;
    // Generate once at job-build time: the text's size fixes the
    // chunking and every lane's slice.
    auto text = std::make_shared<std::string>(
        jsondetail::makeRecords(gen));
    const std::uint64_t bytes = text->size();
    constexpr std::uint32_t pad = 1024; // Section 5.5's padding
    const mem::Addr data_base = ctx.arena;
    const mem::Addr res_base = ctx.arena + align64(bytes + pad);
    sim_assert(res_base + ctx.nLanes * 24 <=
                   ctx.arena + ctx.arenaBytes,
               "JSON job overruns its arena");
    const std::uint64_t chunk =
        ((bytes + ctx.nLanes - 1) / ctx.nLanes + 3) & ~3ull;

    soc::Soc *s = ctx.soc;

    ServingJob job;
    job.workUnits = double(bytes);
    job.unitName = "bytes";
    job.stage = [=] {
        s->memory().store().write(data_base, text->data(), bytes);
    };
    job.lane = [=](core::DpCore &c, unsigned lane) {
        rt::DmsCtl ctl(c, s->dmsFor(c.id()));
        std::uint64_t begin = std::uint64_t(lane) * chunk;
        JsonTally t;
        if (begin < bytes) {
            unsigned lead = lane > 0 ? 1 : 0;
            begin -= lead;
            std::uint64_t want = std::min<std::uint64_t>(
                chunk + lead + pad, bytes - begin);
            std::vector<char> local;
            local.reserve(want);
            rt::StreamReader in(ctl, data_base + begin, want, 0,
                                8192, 3, 0, 0);
            in.forEach([&](std::uint32_t off, std::uint32_t blen) {
                std::size_t at = local.size();
                local.resize(at + blen);
                c.dmem().read(off, local.data() + at, blen);
            });
            std::uint64_t from = 0;
            if (lane > 0) {
                while (from < local.size() && local[from] != '\n')
                    ++from;
                ++from;
            }
            std::uint64_t to = std::min<std::uint64_t>(
                chunk + lead, local.size());
            while (to < local.size() && local[to - 1] != '\n')
                ++to;
            if (from < to) {
                std::uint64_t span = to - from;
                t = jsondetail::parseSpan(local.data() + from, span);
                // Same cost model as dpuJson (Section 5.5).
                if (cfg.branchyParser)
                    c.cycles(sim::Cycles(span * 33));
                else
                    c.cycles(sim::Cycles(span * 6));
                c.cycles(t.fields * 30);
            }
        }
        const std::uint32_t out_off = 24 * 1024;
        c.dmem().store<std::uint64_t>(out_off, t.records);
        c.dmem().store<std::uint64_t>(out_off + 8, t.fields);
        c.dmem().store<std::uint64_t>(out_off + 16, t.intSum);
        c.dualIssue(6, 6);
        dumpToDdr(ctl, out_off, res_base + lane * 24, 24);
    };
    job.validate = [=] {
        JsonTally expect =
            jsondetail::parseSpan(text->data(), bytes);
        JsonTally got;
        for (unsigned l = 0; l < ctx.nLanes; ++l) {
            auto w =
                unstage<std::uint64_t>(*s, res_base + l * 24, 3);
            got.records += w[0];
            got.fields += w[1];
            got.intSum += w[2];
        }
        return got == expect;
    };
    return job;
}

// ----------------------------------------------------------------
// SVM inference: classify a staged test batch against weights
// ----------------------------------------------------------------

ServingJob
svmJob(const SvmConfig &cfg, const ServingContext &ctx)
{
    const std::uint32_t dims = cfg.dims;
    sim_assert(dims > 0 && dims * 4 <= 2048,
               "weight vector must fit its DMEM slot");
    const std::uint64_t n = cfg.nTest;
    const std::uint32_t row_bytes = dims * 4;
    const mem::Addr w_base = ctx.arena;
    const mem::Addr x_base = ctx.arena + align64(row_bytes);
    const mem::Addr res_base = x_base + align64(n * row_bytes);
    sim_assert(res_base + ctx.nLanes * 8 <=
                   ctx.arena + ctx.arenaBytes,
               "SVM job overruns its arena");

    soc::Soc *s = ctx.soc;
    const std::uint64_t seed = ctx.seed ^ cfg.seed;
    auto model = [=] {
        sim::Rng rng{seed};
        std::vector<std::int32_t> v(dims + n * std::uint64_t(dims));
        for (auto &x : v)
            x = std::int32_t(rng.below(2048)) - 1024;
        return v; // weights first, then samples row-major
    };

    ServingJob job;
    job.workUnits = double(n);
    job.unitName = "samples";
    job.stage = [=] {
        auto v = model();
        s->memory().store().write(w_base, v.data(), row_bytes);
        s->memory().store().write(x_base, v.data() + dims,
                                  n * std::uint64_t(row_bytes));
    };
    job.lane = [=](core::DpCore &c, unsigned lane) {
        Slice sl = laneSlice(n, ctx.nLanes, lane);
        if (!sl.count)
            return;
        rt::DmsCtl ctl(c, s->dmsFor(c.id()));
        // Whole samples per tile so no row straddles a buffer.
        const std::uint32_t per_tile =
            std::max<std::uint32_t>(1, 4096 / row_bytes);
        const std::uint32_t tile = per_tile * row_bytes;
        const std::uint32_t w_off = 2 * tile;

        ctl.ddrToDmem().rows(dims).width(4).from(w_base).to(w_off)
            .event(7).noAutoInc().push(0);
        ctl.wfe(7);
        ctl.clearEvent(7);

        std::uint64_t positive = 0;
        rt::StreamReader in(ctl, x_base + sl.begin * row_bytes,
                            sl.count * row_bytes, 0, tile, 2, 0, 0);
        in.forEach([&](std::uint32_t off, std::uint32_t blen) {
            for (std::uint32_t r = 0; r < blen; r += row_bytes) {
                std::int64_t dot = 0;
                for (std::uint32_t d = 0; d < dims; ++d) {
                    std::int32_t w = std::int32_t(
                        c.dmem().load<std::uint32_t>(w_off + d * 4));
                    std::int32_t x =
                        std::int32_t(c.dmem().load<std::uint32_t>(
                            off + r + d * 4));
                    dot += std::int64_t(w) * x;
                    // Q10.22 MAC on the iterative multiplier.
                    c.mul(32);
                }
                positive += dot > 0;
                c.dualIssue(2, 2);
            }
        });
        const std::uint32_t out_off = w_off + 2048;
        c.dmem().store<std::uint64_t>(out_off, positive);
        c.dualIssue(2, 2);
        dumpToDdr(ctl, std::uint16_t(out_off), res_base + lane * 8,
                  8);
    };
    job.validate = [=] {
        auto v = model();
        std::uint64_t expect = 0;
        for (std::uint64_t r = 0; r < n; ++r) {
            std::int64_t dot = 0;
            for (std::uint32_t d = 0; d < dims; ++d)
                dot += std::int64_t(v[d]) *
                       v[dims + r * dims + d];
            expect += dot > 0;
        }
        std::uint64_t got = 0;
        for (unsigned l = 0; l < ctx.nLanes; ++l)
            got += unstage<std::uint64_t>(*s, res_base + l * 8,
                                          1)[0];
        return got == expect;
    };
    return job;
}

// ----------------------------------------------------------------
// Similarity search: posting-list scan against a dense query table
// ----------------------------------------------------------------

ServingJob
simSearchJob(const SimSearchConfig &cfg, const ServingContext &ctx)
{
    sim_assert(cfg.vocab > 0 && cfg.vocab * 4 <= 8192,
               "serving simsearch needs the query table in DMEM");
    const std::uint64_t n_post =
        std::uint64_t(cfg.nDocs) * cfg.avgTermsPerDoc;
    const std::uint32_t q_bytes = cfg.vocab * 4;
    const mem::Addr q_base = ctx.arena;
    const mem::Addr p_base = ctx.arena + align64(q_bytes);
    const mem::Addr res_base = p_base + align64(n_post * 8);
    sim_assert(res_base + ctx.nLanes * 8 <=
                   ctx.arena + ctx.arenaBytes,
               "simsearch job overruns its arena");

    soc::Soc *s = ctx.soc;
    const std::uint64_t seed = ctx.seed ^ cfg.seed;
    auto query = [=] {
        sim::Rng rng{seed};
        std::vector<std::int32_t> q(cfg.vocab, 0);
        for (std::uint32_t t = 0; t < cfg.termsPerQuery; ++t)
            q[rng.below(cfg.vocab)] =
                std::int32_t(1 + rng.below(1 << 10));
        return q;
    };
    auto postings = [=] {
        sim::Rng rng{seed + 1};
        std::vector<std::uint32_t> v(n_post * 2);
        for (std::uint64_t i = 0; i < n_post; ++i) {
            v[i * 2] = std::uint32_t(rng.below(cfg.vocab));
            v[i * 2 + 1] = std::uint32_t(1 + rng.below(1 << 10));
        }
        return v;
    };

    ServingJob job;
    job.workUnits = double(n_post);
    job.unitName = "postings";
    job.stage = [=] {
        stage(*s, q_base, query());
        stage(*s, p_base, postings());
    };
    job.lane = [=](core::DpCore &c, unsigned lane) {
        Slice sl = laneSlice(n_post, ctx.nLanes, lane);
        if (!sl.count)
            return;
        rt::DmsCtl ctl(c, s->dmsFor(c.id()));
        constexpr std::uint32_t tile = 8192;
        const std::uint32_t q_off = 2 * tile;

        ctl.ddrToDmem().rows(cfg.vocab).width(4).from(q_base)
            .to(q_off).event(7).noAutoInc().push(0);
        ctl.wfe(7);
        ctl.clearEvent(7);

        std::int64_t score = 0;
        rt::StreamReader in(ctl, p_base + sl.begin * 8,
                            sl.count * 8, 0, tile, 2, 0, 0);
        in.forEach([&](std::uint32_t off, std::uint32_t blen) {
            for (std::uint32_t i = 0; i < blen; i += 8) {
                std::uint32_t term =
                    c.dmem().load<std::uint32_t>(off + i);
                std::int32_t qw = std::int32_t(
                    c.dmem().load<std::uint32_t>(q_off + term * 4));
                c.dualIssue(3, 3);
                if (qw) {
                    std::int32_t w =
                        std::int32_t(c.dmem().load<std::uint32_t>(
                            off + i + 4));
                    score += std::int64_t(qw) * w;
                    c.mul(32); // Q10.22 accumulate
                }
            }
        });
        const std::uint32_t out_off = q_off + q_bytes;
        c.dmem().store<std::uint64_t>(out_off,
                                      std::uint64_t(score));
        c.dualIssue(2, 2);
        dumpToDdr(ctl, std::uint16_t(out_off), res_base + lane * 8,
                  8);
    };
    job.validate = [=] {
        auto q = query();
        auto v = postings();
        std::int64_t expect = 0;
        for (std::uint64_t i = 0; i < n_post; ++i)
            expect += std::int64_t(q[v[i * 2]]) *
                      std::int32_t(v[i * 2 + 1]);
        std::int64_t got = 0;
        for (unsigned l = 0; l < ctx.nLanes; ++l)
            got += std::int64_t(unstage<std::uint64_t>(
                *s, res_base + l * 8, 1)[0]);
        return got == expect;
    };
    return job;
}

// ----------------------------------------------------------------
// Disparity: row-banded SAD argmin over a shift range
// ----------------------------------------------------------------

namespace {

/** First-minimum SAD argmin shared by lane and validator. */
std::uint8_t
sadArgmin(const std::uint8_t *left, const std::uint8_t *right,
          std::uint32_t width, std::uint32_t x, unsigned max_shift,
          unsigned window)
{
    const int hw = int(window) / 2;
    unsigned best = 0;
    std::int64_t best_sad = std::numeric_limits<std::int64_t>::max();
    for (unsigned sft = 0; sft <= max_shift; ++sft) {
        std::int64_t sad = 0;
        for (int dx = -hw; dx <= hw; ++dx) {
            int lx = int(x) + dx;
            int rx = lx - int(sft);
            if (lx < 0 || lx >= int(width) || rx < 0 ||
                rx >= int(width))
                continue;
            sad += std::abs(int(left[lx]) - int(right[rx]));
        }
        if (sad < best_sad) {
            best_sad = sad;
            best = sft;
        }
    }
    return std::uint8_t(best);
}

} // namespace

ServingJob
disparityJob(const DisparityConfig &cfg, const ServingContext &ctx)
{
    const std::uint32_t w = cfg.width, h = cfg.height;
    sim_assert(w % 4 == 0 && w <= 4096,
               "serving disparity row must fit a DMEM buffer");
    const std::uint64_t wh = std::uint64_t(w) * h;
    const mem::Addr l_base = ctx.arena;
    const mem::Addr r_base = ctx.arena + align64(wh);
    const mem::Addr d_base = r_base + align64(wh);
    sim_assert(d_base + align64(wh) <= ctx.arena + ctx.arenaBytes,
               "disparity job overruns its arena");

    soc::Soc *s = ctx.soc;
    const std::uint64_t seed = ctx.seed ^ cfg.seed;
    auto images = [=] {
        sim::Rng rng{seed};
        std::vector<std::uint8_t> v(wh * 2);
        for (auto &px : v)
            px = std::uint8_t(rng.below(256));
        return v; // left then right
    };

    ServingJob job;
    job.workUnits = double(wh);
    job.unitName = "pixels";
    job.stage = [=] {
        auto v = images();
        s->memory().store().write(l_base, v.data(), wh);
        s->memory().store().write(r_base, v.data() + wh, wh);
    };
    job.lane = [=](core::DpCore &c, unsigned lane) {
        Slice sl = laneSlice(h, ctx.nLanes, lane);
        if (!sl.count)
            return;
        rt::DmsCtl ctl(c, s->dmsFor(c.id()));
        const std::uint32_t l_off = 0, r_off = 4096,
                            o_off = 8192;
        std::vector<std::uint8_t> lrow(w), rrow(w), orow(w);
        for (std::uint64_t r = sl.begin; r < sl.begin + sl.count;
             ++r) {
            ctl.resetArena();
            ctl.ddrToDmem().rows(w / 4).width(4)
                .from(l_base + r * w).to(l_off).event(0)
                .noAutoInc().push(0);
            ctl.ddrToDmem().rows(w / 4).width(4)
                .from(r_base + r * w).to(r_off).event(1)
                .noAutoInc().push(0);
            ctl.wfe(0);
            ctl.clearEvent(0);
            ctl.wfe(1);
            ctl.clearEvent(1);
            c.dmem().read(l_off, lrow.data(), w);
            c.dmem().read(r_off, rrow.data(), w);
            for (std::uint32_t x = 0; x < w; ++x) {
                orow[x] = sadArgmin(lrow.data(), rrow.data(), w, x,
                                    cfg.maxShift, cfg.window);
                // One |a-b| accumulate bundle per (shift, tap).
                c.dualIssue((cfg.maxShift + 1) * cfg.window,
                            (cfg.maxShift + 1) * cfg.window);
            }
            c.dmem().write(o_off, orow.data(), w);
            c.dualIssue(w / 4, w / 4);
            dumpToDdr(ctl, o_off, d_base + r * w, w);
        }
    };
    job.validate = [=] {
        auto v = images();
        const std::uint8_t *left = v.data();
        const std::uint8_t *right = v.data() + wh;
        auto got = unstage<std::uint8_t>(*s, d_base, wh);
        for (std::uint64_t r = 0; r < h; ++r)
            for (std::uint32_t x = 0; x < w; ++x)
                if (got[r * w + x] !=
                    sadArgmin(left + r * w, right + r * w, w, x,
                              cfg.maxShift, cfg.window))
                    return false;
        return true;
    };
    return job;
}

} // namespace dpu::apps::serving

/**
 * @file
 * TPCH-like analytic queries (Section 5.3, Figure 16).
 *
 * A scaled-down dbgen produces columnar lineitem / orders /
 * customer / part tables in simulated DDR. Five representative
 * queries run as hand-planned operator pipelines:
 *
 *   Q1  scan lineitem, date filter, 6-group aggregate (merge op)
 *   Q3  customer segment ⋈ orders date ⋈ lineitem, revenue by
 *       order, top-10
 *   Q6  pure filter + single aggregate
 *   Q12 lineitem shipmode/date filters ⋈ orders, priority counts
 *   Q14 part promo types ⋈ lineitem, promo revenue ratio
 *
 * Every DPU plan distributes rows with the DMS hardware partitioner
 * (the paper's "partitioning provides a natural way to parallelize
 * the operation among the cores"), keeps per-core hash tables and
 * aggregates in DMEM, and reduces with ATE RPCs. The Xeon baseline
 * evaluates the same plans functionally and is charged stream +
 * random-probe traffic on the roofline model.
 */

#ifndef DPU_APPS_SQL_TPCH_HH
#define DPU_APPS_SQL_TPCH_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "apps/common.hh"

namespace dpu::apps::sql {

/** Scale knob: rows ~= scale * TPCH SF 0.01. */
struct TpchConfig
{
    double scale = 1.0;
    std::uint64_t seed = 77;
    unsigned nCores = 32;

    std::uint32_t nLineitem() const
    {
        return std::uint32_t(48000 * scale);
    }
    std::uint32_t nOrders() const
    {
        return std::uint32_t(12000 * scale);
    }
    std::uint32_t nCustomers() const
    {
        return std::uint32_t(1200 * scale);
    }
    std::uint32_t nParts() const
    {
        return std::uint32_t(1600 * scale);
    }
};

/** One query's outcome: named integer aggregates, exact on both
 *  platforms (prices are integer cents, discounts integer %). */
struct QueryResult
{
    std::string query;
    double seconds = 0;
    std::map<std::string, std::uint64_t> values;
};

/** The supported queries. */
extern const char *const tpchQueries[5];

QueryResult dpuTpch(const soc::SocParams &params,
                    const TpchConfig &cfg, const std::string &query);
QueryResult xeonTpch(const TpchConfig &cfg, const std::string &query);

/** Figure 16 entry for one query. */
AppResult tpchApp(const TpchConfig &cfg, const std::string &query);

} // namespace dpu::apps::sql

#endif // DPU_APPS_SQL_TPCH_HH

/**
 * @file
 * The SQL filter primitive (Section 5.3, Figure 15).
 *
 * The DMS fetches a single column into double-buffered DMEM tiles;
 * the dpCore's BVLD + FILT instructions produce the selection bit
 * vector at about one tuple per cycle, for an end-to-end rate of
 * 482 Mtuples/s (1.65 cycles/tuple) on one core and ~9.6 GB/s on
 * 32. The Xeon baseline is an AVX2 compare loop bounded by
 * effective memory bandwidth.
 */

#ifndef DPU_APPS_SQL_FILTER_HH
#define DPU_APPS_SQL_FILTER_HH

#include <cstdint>

#include "apps/common.hh"

namespace dpu::apps::sql {

/** Parameters for one filter experiment. */
struct FilterConfig
{
    std::uint32_t rowsPerCore = 1 << 20;
    std::uint32_t tileBytes = 8192;   ///< DMEM tile per buffer
    unsigned nCores = 32;
    std::uint32_t lo = 100, hi = 799; ///< inclusive predicate
    std::uint64_t seed = 1;
    /** Write the selection bit vector back to DDR. */
    bool writeBitvector = true;
};

/** Outcome of a filter run. */
struct FilterResult
{
    double seconds = 0;
    std::uint64_t rows = 0;
    std::uint64_t passed = 0;

    double mtuplesPerSec() const { return rows / seconds / 1e6; }
    double gbPerSec() const { return rows * 4.0 / seconds / 1e9; }
    /** Per-core cycles per tuple at 800 MHz (Figure 15's metric). */
    double
    cyclesPerTuple(unsigned n_cores) const
    {
        return 0.8e9 * n_cores / (rows / seconds);
    }
};

/** Run the filter on the DPU simulator. */
FilterResult dpuFilter(const soc::SocParams &params,
                       const FilterConfig &cfg);

/** Run the functional AVX2 baseline through the Xeon model. */
FilterResult xeonFilter(const FilterConfig &cfg);

} // namespace dpu::apps::sql

#endif // DPU_APPS_SQL_FILTER_HH

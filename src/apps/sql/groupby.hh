/**
 * @file
 * SQL grouping and aggregation (Section 5.3).
 *
 * Two regimes from Figure 14:
 *
 *  - Low NDV: the per-group table fits in every DMEM; each core
 *    streams its slice through the DMS and aggregates locally at
 *    line rate, then a cheap merge runs over the per-core tables.
 *    Both platforms are bandwidth bound, so the 6.7x gain is the
 *    bandwidth-per-watt ratio.
 *
 *  - High NDV: the table exceeds DMEM, so data is partitioned until
 *    each partition's table fits. The DPU needs ONE round: the DMS
 *    hardware-partitions 32 ways while each core software-partitions
 *    a further 32 ways in the same pass (the paper's 1024-way
 *    one-round partitioning); the Xeon needs TWO software rounds.
 *    Hence the larger 9.7x gain.
 *
 * SUM aggregation over (key u32, value u32) columns; keys are dense
 * in [0, ndv).
 */

#ifndef DPU_APPS_SQL_GROUPBY_HH
#define DPU_APPS_SQL_GROUPBY_HH

#include <cstdint>
#include <map>

#include "apps/common.hh"

namespace dpu::apps::sql {

/** One group-by experiment. */
struct GroupByConfig
{
    std::uint32_t nRows = 1 << 20;
    std::uint32_t ndv = 64;       ///< distinct groups (dense keys)
    std::uint64_t seed = 11;
    unsigned nCores = 32;
};

/** Aggregated output and timing. */
struct GroupByResult
{
    double seconds = 0;
    std::uint64_t rows = 0;
    /** group key -> sum (for cross-validation). */
    std::map<std::uint32_t, std::uint64_t> groups;

    double gbPerSec() const { return rows * 8.0 / seconds / 1e9; }
};

/** Low-NDV plan on the DPU (table fits DMEM; merge operator). */
GroupByResult dpuGroupByLowNdv(const soc::SocParams &params,
                               const GroupByConfig &cfg);

/** High-NDV plan on the DPU (one 1024-way partition round). */
GroupByResult dpuGroupByHighNdv(const soc::SocParams &params,
                                const GroupByConfig &cfg);

/** Xeon baseline, low NDV (single bandwidth-bound pass). */
GroupByResult xeonGroupByLowNdv(const GroupByConfig &cfg);

/** Xeon baseline, high NDV (two software partition rounds). */
GroupByResult xeonGroupByHighNdv(const GroupByConfig &cfg);

} // namespace dpu::apps::sql

#endif // DPU_APPS_SQL_GROUPBY_HH

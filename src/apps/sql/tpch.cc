#include "apps/sql/tpch.hh"

#include <algorithm>

#include "rt/dms_ctl.hh"
#include "rt/partition.hh"
#include "rt/sync.hh"
#include "sim/rng.hh"

namespace dpu::apps::sql {

const char *const tpchQueries[5] = {"Q1", "Q3", "Q6", "Q12", "Q14"};

namespace {

// ----------------------------------------------------------------
// dbgen-lite
// ----------------------------------------------------------------

/** Day numbers span 1992-01-01 .. 1998-12-31 (2555 days). */
constexpr std::uint32_t dayMax = 2555;

struct Db
{
    // lineitem, column order as staged (see stageDb):
    std::vector<std::uint32_t> l_orderkey, l_quantity, l_extprice,
        l_discount, l_shipdate, l_partkey, l_returnflag,
        l_linestatus, l_shipmode, l_commitdate, l_receiptdate;
    // orders
    std::vector<std::uint32_t> o_orderkey, o_custkey, o_orderdate,
        o_priority;
    // customer
    std::vector<std::uint32_t> c_mktsegment; // custkey is dense 1..n
    // part
    std::vector<std::uint32_t> p_type;       // partkey is dense 1..n
};

Db
makeDb(const TpchConfig &cfg)
{
    Db db;
    sim::Rng rng{cfg.seed};
    const std::uint32_t nO = cfg.nOrders();
    const std::uint32_t nL = cfg.nLineitem();
    const std::uint32_t nC = cfg.nCustomers();
    const std::uint32_t nP = cfg.nParts();

    db.c_mktsegment.resize(nC);
    for (auto &v : db.c_mktsegment)
        v = std::uint32_t(rng.below(5));
    db.p_type.resize(nP);
    for (auto &v : db.p_type)
        v = std::uint32_t(rng.below(150));

    db.o_orderkey.resize(nO);
    db.o_custkey.resize(nO);
    db.o_orderdate.resize(nO);
    db.o_priority.resize(nO);
    for (std::uint32_t i = 0; i < nO; ++i) {
        db.o_orderkey[i] = i + 1;
        db.o_custkey[i] = std::uint32_t(rng.below(nC)) + 1;
        db.o_orderdate[i] = std::uint32_t(rng.below(dayMax));
        db.o_priority[i] = std::uint32_t(rng.below(5));
    }

    auto push_line = [&](std::uint32_t okey, std::uint32_t odate) {
        db.l_orderkey.push_back(okey);
        db.l_quantity.push_back(std::uint32_t(rng.below(50)) + 1);
        db.l_extprice.push_back(
            std::uint32_t(rng.below(950000)) + 100); // cents
        db.l_discount.push_back(std::uint32_t(rng.below(11))); // %
        std::uint32_t ship =
            std::min<std::uint32_t>(odate + 1 +
                                        std::uint32_t(rng.below(120)),
                                    dayMax);
        db.l_shipdate.push_back(ship);
        db.l_partkey.push_back(std::uint32_t(rng.below(nP)) + 1);
        db.l_returnflag.push_back(std::uint32_t(rng.below(3)));
        db.l_linestatus.push_back(std::uint32_t(rng.below(2)));
        db.l_shipmode.push_back(std::uint32_t(rng.below(7)));
        std::uint32_t commit = std::min(ship +
                                            std::uint32_t(
                                                rng.below(30)),
                                        dayMax);
        db.l_commitdate.push_back(commit);
        db.l_receiptdate.push_back(
            std::min(commit + std::uint32_t(rng.below(30)), dayMax));
    };

    while (db.l_orderkey.size() < nL) {
        std::uint32_t o = std::uint32_t(rng.below(nO));
        unsigned lines = 1 + unsigned(rng.below(7));
        for (unsigned k = 0;
             k < lines && db.l_orderkey.size() < nL; ++k)
            push_line(db.o_orderkey[o], db.o_orderdate[o]);
    }
    return db;
}

/** Simulated-DDR addresses of the staged columnar tables. */
struct Staged
{
    mem::Addr lineitem; ///< 11 columns, stride = nL*4
    mem::Addr orders;   ///< 4 columns, stride = nO*4
    mem::Addr customer; ///< 1 column (mktsegment)
    mem::Addr part;     ///< 1 column (type)
    mem::Addr scratch;  ///< per-core result regions
    std::uint32_t lStride, oStride;
};

Staged
stageDb(soc::Soc &s, const Db &db)
{
    Staged st;
    const std::uint32_t nL = std::uint32_t(db.l_orderkey.size());
    const std::uint32_t nO = std::uint32_t(db.o_orderkey.size());
    st.lStride = nL * 4;
    st.oStride = nO * 4;

    mem::Addr at = 4096;
    st.lineitem = at;
    const std::vector<std::uint32_t> *lcols[11] = {
        &db.l_orderkey, &db.l_quantity, &db.l_extprice,
        &db.l_discount, &db.l_shipdate, &db.l_partkey,
        &db.l_returnflag, &db.l_linestatus, &db.l_shipmode,
        &db.l_commitdate, &db.l_receiptdate};
    for (unsigned c = 0; c < 11; ++c)
        stage(s, at + c * st.lStride, *lcols[c]);
    at = alignUp(at + 11ull * st.lStride + 4096, 4096);

    st.orders = at;
    const std::vector<std::uint32_t> *ocols[4] = {
        &db.o_orderkey, &db.o_custkey, &db.o_orderdate,
        &db.o_priority};
    for (unsigned c = 0; c < 4; ++c)
        stage(s, at + c * st.oStride, *ocols[c]);
    at = alignUp(at + 4ull * st.oStride + 4096, 4096);

    st.customer = at;
    stage(s, at, db.c_mktsegment);
    at = alignUp(at + db.c_mktsegment.size() * 4 + 4096, 4096);

    st.part = at;
    stage(s, at, db.p_type);
    at = alignUp(at + db.p_type.size() * 4 + 4096, 4096);

    st.scratch = at;
    return st;
}

std::size_t
ddrBudget(const TpchConfig &cfg)
{
    return alignUp(std::size_t(cfg.nLineitem()) * 4 * 11 +
                       std::size_t(cfg.nOrders()) * 4 * 4 +
                       (8 << 20),
                   1 << 20);
}

// Query predicates shared by both platforms.
constexpr std::uint32_t q1CutDay = 2200;
constexpr std::uint32_t q3Segment = 1;
constexpr std::uint32_t q3CutDay = 1100;
constexpr std::uint32_t q6Year0 = 1095, q6Year1 = 1460;
constexpr std::uint32_t q6Disc = 6, q6Qty = 24;
constexpr std::uint32_t q12ModeA = 2, q12ModeB = 4;
constexpr std::uint32_t q12Year0 = 1460, q12Year1 = 1825;
constexpr std::uint32_t q14Month0 = 1185, q14Month1 = 1215;
constexpr bool
promoPart(std::uint32_t type)
{
    return type < 25;
}

// ----------------------------------------------------------------
// Kernel-side helpers
// ----------------------------------------------------------------

/** Ring layout shared by all TPCH pipelines. */
constexpr std::uint16_t ringBase = 0;
constexpr std::uint16_t ringBuf = 4096 + 4;
constexpr std::uint8_t ringBufs = 2;
constexpr std::uint8_t ringEvent = 16;
constexpr std::uint32_t tblOff = 10 * 1024;   // per-core hash/agg
constexpr std::uint32_t bmpOff = 22 * 1024;   // bitmaps
constexpr std::uint32_t syncOff = 26 * 1024;  // barrier words
constexpr int doneEvent = 30;

/** Issue one hardware-partitioned scan over a lineitem/orders
 *  column window and consume the rows on this core. */
void
partitionedScan(rt::DmsCtl &ctl, unsigned id, mem::Addr base,
                std::uint32_t n_rows, std::uint32_t col_stride,
                std::uint16_t col_mask, std::uint32_t chunk_rows,
                const std::function<void(const std::uint32_t *)>
                    &on_row,
                sim::Cycles per_row_cycles)
{
    core::DpCore &c = ctl.dpCore();
    const std::uint8_t n_cols =
        std::uint8_t(__builtin_popcount(col_mask));
    if (id == 0) {
        rt::PartitionJob job;
        job.table = base;
        job.nRows = n_rows;
        job.nCols = n_cols;
        job.colWidth = 4;
        job.colStride = col_stride;
        job.colMask = col_mask;
        job.scheme.kind = rt::PartitionScheme::Kind::HashRadix;
        job.dstBase = ringBase;
        job.dstBufBytes = ringBuf;
        job.dstNBufs = ringBufs;
        job.dstFirstEvent = ringEvent;
        job.doneEvent = doneEvent;
        job.chunkRows = chunk_rows;
        rt::runPartition(ctl, job);
    }
    const unsigned tuple = n_cols * 4u;
    std::uint32_t fields[16];
    rt::consumePartition(
        ctl, ringBase, ringBuf, ringBufs, ringEvent,
        [&](std::uint32_t off, std::uint32_t rows) {
            for (std::uint32_t i = 0; i < rows; ++i) {
                for (unsigned f = 0; f < n_cols; ++f)
                    fields[f] = c.dmem().load<std::uint32_t>(
                        off + i * tuple + f * 4);
                on_row(fields);
            }
            c.dualIssue(rows * per_row_cycles,
                        rows * (n_cols / 2 + 1));
        });
    if (id == 0) {
        ctl.wfe(unsigned(doneEvent));
        ctl.clearEvent(unsigned(doneEvent));
    }
}

/** Build a DMEM bitmap from a dense 4 B column (id = position+1). */
void
streamBitmap(rt::DmsCtl &ctl, mem::Addr col, std::uint32_t n,
             std::uint32_t bmp_off,
             const std::function<bool(std::uint32_t)> &pred)
{
    core::DpCore &c = ctl.dpCore();
    for (std::uint32_t i = 0; i <= n / 8; ++i)
        c.dmem().store<std::uint8_t>(bmp_off + i, 0);
    c.dualIssue(n / 16, n / 8);
    // Bitmaps are small (<256 B); the column streams through two
    // 1 KB buffers placed just above, clear of the sync words.
    rt::StreamReader in(ctl, col, std::uint64_t(n) * 4,
                        std::uint16_t(bmp_off + 512), 1024, 2, 8, 0);
    std::uint32_t idx = 0;
    in.forEach([&](std::uint32_t off, std::uint32_t blen) {
        for (std::uint32_t i = 0; i < blen; i += 4, ++idx) {
            if (pred(c.dmem().load<std::uint32_t>(off + i))) {
                std::uint32_t bit = idx + 1; // ids are 1-based
                std::uint8_t b = c.dmem().load<std::uint8_t>(
                    bmp_off + bit / 8);
                c.dmem().store<std::uint8_t>(
                    bmp_off + bit / 8,
                    std::uint8_t(b | (1u << (bit % 8))));
            }
        }
        c.dualIssue(blen / 4 * 2, blen / 4 * 2);
    });
}

bool
testBit(core::DpCore &c, std::uint32_t bmp_off, std::uint32_t id)
{
    return (c.dmem().load<std::uint8_t>(bmp_off + id / 8) >>
            (id % 8)) & 1;
}

} // namespace

// ----------------------------------------------------------------
// DPU plans
// ----------------------------------------------------------------

QueryResult
dpuTpch(const soc::SocParams &params, const TpchConfig &cfg,
        const std::string &query)
{
    Db db = makeDb(cfg);
    soc::SocParams p = params;
    p.ddrBytes = std::max(p.ddrBytes, ddrBudget(cfg));
    soc::Soc s(p);
    Staged st = stageDb(s, db);
    const std::uint32_t nL = std::uint32_t(db.l_orderkey.size());
    const std::uint32_t nO = std::uint32_t(db.o_orderkey.size());
    const unsigned n_cores = cfg.nCores;

    rt::AteBarrier barrier(0, syncOff, n_cores);
    // Q6/Q12/Q14 reduce into core 0's DMEM with ATE fetch-adds.
    for (unsigned w = 0; w < 8; ++w)
        s.core(0).dmem().store<std::uint64_t>(syncOff + 64 + w * 8,
                                              0);

    QueryResult r;
    r.query = query;

    // Per-core partial results gathered after the run.
    std::vector<std::map<std::uint32_t, std::uint64_t>> q3rev(
        n_cores);
    std::vector<std::array<std::uint64_t, 24>> q1agg(
        n_cores, std::array<std::uint64_t, 24>{});

    for (unsigned id = 0; id < n_cores; ++id) {
        s.start(id, [&, id](core::DpCore &c) {
            rt::DmsCtl ctl(c, s.dmsFor(id));
            ate::Ate &ate = s.ateFor(id);

            if (query == "Q1") {
                // scan cols 0..7, filter shipdate, 6-group agg.
                // Project {orderkey, qty, price, disc, shipdate,
                // returnflag, linestatus} out of the 11 columns.
                partitionedScan(
                    ctl, id, st.lineitem, nL, st.lStride, 0x00DF,
                    256,
                    [&](const std::uint32_t *f) {
                        if (f[4] > q1CutDay)
                            return;
                        unsigned g = f[5] * 2 + f[6]; // flag,status
                        auto &a = q1agg[id];
                        a[g * 4 + 0] += f[1];            // qty
                        a[g * 4 + 1] += f[2];            // price
                        a[g * 4 + 2] +=
                            std::uint64_t(f[2]) * (100 - f[3]);
                        a[g * 4 + 3] += 1;               // count
                    },
                    8);
                barrier.arrive(c, ate);
                // Merge operator: core 0 pulls the per-core tables
                // over the ATE (24 words each; tiny).
                // (Values live host-side; charge the RPCs.)
                if (id == 0) {
                    for (unsigned w = 0; w < 24 * n_cores; w += 8)
                        (void)ate.remoteLoad(
                            c, (w / 24) % n_cores,
                            mem::dmemAddr((w / 24) % n_cores,
                                          tblOff),
                            8);
                    c.dualIssue(24 * n_cores, 24 * n_cores);
                }
            } else if (query == "Q6") {
                std::uint64_t local = 0;
                partitionedScan(
                    ctl, id, st.lineitem, nL, st.lStride, 0x001F,
                    256,
                    [&](const std::uint32_t *f) {
                        if (f[4] >= q6Year0 && f[4] < q6Year1 &&
                            f[3] >= q6Disc - 1 &&
                            f[3] <= q6Disc + 1 && f[1] < q6Qty)
                            local += std::uint64_t(f[2]) * f[3];
                    },
                    6);
                // Single global sum: ATE fetch-add at core 0.
                ate.fetchAdd(c, id / 32 * 32,
                             mem::dmemAddr(id / 32 * 32,
                                           syncOff + 64),
                             std::int64_t(local), 8);
                barrier.arrive(c, ate);
            } else if (query == "Q3") {
                // 1. customer segment bitmap (dense custkeys).
                streamBitmap(ctl, st.customer, cfg.nCustomers(),
                             bmpOff, [&](std::uint32_t seg) {
                                 return seg == q3Segment;
                             });
                barrier.arrive(c, ate);

                // 2. partition orders; keep qualifying orderkeys in
                // a DMEM hash set (open addressing, 1024 slots).
                constexpr std::uint32_t slots = 1024;
                for (std::uint32_t i = 0; i < slots; ++i)
                    c.dmem().store<std::uint64_t>(tblOff + i * 8, 0);
                c.dualIssue(slots / 2, slots);
                partitionedScan(
                    ctl, id, st.orders, nO, st.oStride, 0x0007, 256,
                    [&](const std::uint32_t *f) {
                        // f = orderkey, custkey, orderdate
                        if (f[2] >= q3CutDay ||
                            !testBit(c, bmpOff, f[1]))
                            return;
                        std::uint32_t slot =
                            (c.crcHash(f[0]) >> 10) & (slots - 1);
                        while (c.dmem().load<std::uint32_t>(
                                   tblOff + slot * 8) != 0)
                            slot = (slot + 1) & (slots - 1);
                        c.dmem().store<std::uint32_t>(
                            tblOff + slot * 8, f[0]);
                        c.dualIssue(4, 4);
                    },
                    8);
                barrier.arrive(c, ate);

                // 3. partition lineitem; co-partitioned probing
                // (same key column -> same core), revenue by order.
                // Project {orderkey, price, disc, shipdate}.
                partitionedScan(
                    ctl, id, st.lineitem, nL, st.lStride, 0x001D,
                    256,
                    [&](const std::uint32_t *f) {
                        if (f[3] <= q3CutDay)
                            return;
                        std::uint32_t slot =
                            (c.crcHash(f[0]) >> 10) & (slots - 1);
                        while (true) {
                            std::uint32_t k =
                                c.dmem().load<std::uint32_t>(
                                    tblOff + slot * 8);
                            if (k == 0)
                                return; // no matching order
                            if (k == f[0])
                                break;
                            slot = (slot + 1) & (slots - 1);
                            c.dualIssue(1, 1);
                        }
                        std::uint64_t rev =
                            std::uint64_t(f[1]) * (100 - f[2]);
                        q3rev[id][f[0]] += rev;
                        std::uint32_t cur =
                            c.dmem().load<std::uint32_t>(
                                tblOff + slot * 8 + 4);
                        c.dmem().store<std::uint32_t>(
                            tblOff + slot * 8 + 4,
                            cur + std::uint32_t(rev / 100));
                        c.dualIssue(6, 4);
                    },
                    8);
                barrier.arrive(c, ate);
            } else if (query == "Q12") {
                // Build orderkey -> priority map per core.
                constexpr std::uint32_t slots = 1024;
                for (std::uint32_t i = 0; i < slots; ++i)
                    c.dmem().store<std::uint64_t>(tblOff + i * 8, 0);
                c.dualIssue(slots / 2, slots);
                partitionedScan(
                    ctl, id, st.orders, nO, st.oStride, 0x000F, 256,
                    [&](const std::uint32_t *f) {
                        std::uint32_t slot =
                            (c.crcHash(f[0]) >> 10) & (slots - 1);
                        while (c.dmem().load<std::uint32_t>(
                                   tblOff + slot * 8) != 0)
                            slot = (slot + 1) & (slots - 1);
                        c.dmem().store<std::uint32_t>(
                            tblOff + slot * 8, f[0]);
                        c.dmem().store<std::uint32_t>(
                            tblOff + slot * 8 + 4, f[3]);
                        c.dualIssue(4, 4);
                    },
                    6);
                barrier.arrive(c, ate);

                std::uint64_t cnt[4] = {0, 0, 0, 0};
                // Project {orderkey, shipdate, shipmode,
                // commitdate, receiptdate}.
                partitionedScan(
                    ctl, id, st.lineitem, nL, st.lStride, 0x0711,
                    256,
                    [&](const std::uint32_t *f) {
                        std::uint32_t mode = f[2];
                        if (mode != q12ModeA && mode != q12ModeB)
                            return;
                        if (!(f[3] < f[4] && f[1] < f[3] &&
                              f[4] >= q12Year0 && f[4] < q12Year1))
                            return;
                        std::uint32_t slot =
                            (c.crcHash(f[0]) >> 10) & (slots - 1);
                        while (c.dmem().load<std::uint32_t>(
                                   tblOff + slot * 8) != f[0])
                            slot = (slot + 1) & (slots - 1);
                        std::uint32_t prio =
                            c.dmem().load<std::uint32_t>(
                                tblOff + slot * 8 + 4);
                        unsigned hi = prio < 2 ? 0 : 1;
                        cnt[(mode == q12ModeA ? 0 : 2) + hi] += 1;
                        c.dualIssue(6, 5);
                    },
                    10);
                for (unsigned k = 0; k < 4; ++k)
                    ate.fetchAdd(c, id / 32 * 32,
                                 mem::dmemAddr(id / 32 * 32,
                                               syncOff + 64 + k * 8),
                                 std::int64_t(cnt[k]), 8);
                barrier.arrive(c, ate);
            } else if (query == "Q14") {
                // Promo-part bitmap, then one lineitem scan.
                streamBitmap(ctl, st.part, cfg.nParts(), bmpOff,
                             [&](std::uint32_t type) {
                                 return promoPart(type);
                             });
                barrier.arrive(c, ate);
                std::uint64_t promo = 0, total = 0;
                // Project {orderkey, price, disc, ship, partkey}.
                partitionedScan(
                    ctl, id, st.lineitem, nL, st.lStride, 0x003D,
                    256,
                    [&](const std::uint32_t *f) {
                        if (f[3] < q14Month0 || f[3] >= q14Month1)
                            return;
                        std::uint64_t rev =
                            std::uint64_t(f[1]) * (100 - f[2]);
                        total += rev;
                        if (testBit(c, bmpOff, f[4]))
                            promo += rev;
                    },
                    8);
                ate.fetchAdd(c, id / 32 * 32,
                             mem::dmemAddr(id / 32 * 32,
                                           syncOff + 64),
                             std::int64_t(promo), 8);
                ate.fetchAdd(c, id / 32 * 32,
                             mem::dmemAddr(id / 32 * 32,
                                           syncOff + 72),
                             std::int64_t(total), 8);
                barrier.arrive(c, ate);
            } else {
                fatal("unknown TPCH query '%s'", query.c_str());
            }
        });
    }
    sim::Tick t = s.run();
    sim_assert(s.allFinished(), "TPCH %s deadlocked",
               query.c_str());
    r.seconds = double(t) * 1e-12;

    // Collect the functional results.
    if (query == "Q1") {
        for (unsigned g = 0; g < 6; ++g) {
            std::uint64_t sums[4] = {0, 0, 0, 0};
            for (unsigned id = 0; id < n_cores; ++id)
                for (unsigned k = 0; k < 4; ++k)
                    sums[k] += q1agg[id][g * 4 + k];
            std::string base = "g" + std::to_string(g) + "_";
            r.values[base + "qty"] = sums[0];
            r.values[base + "price"] = sums[1];
            r.values[base + "disc_price"] = sums[2];
            r.values[base + "count"] = sums[3];
        }
    } else if (query == "Q6") {
        r.values["revenue"] =
            s.core(0).dmem().load<std::uint64_t>(syncOff + 64);
    } else if (query == "Q3") {
        std::map<std::uint32_t, std::uint64_t> all;
        for (auto &m : q3rev)
            for (auto &[k, v] : m)
                all[k] += v;
        std::vector<std::pair<std::uint64_t, std::uint32_t>> top;
        for (auto &[k, v] : all)
            top.push_back({v, k});
        std::sort(top.begin(), top.end(),
                  [](auto &a, auto &b) {
                      return a.first != b.first ? a.first > b.first
                                                : a.second < b.second;
                  });
        std::uint64_t sum10 = 0;
        for (std::size_t i = 0; i < top.size() && i < 10; ++i) {
            sum10 += top[i].first;
            r.values["top" + std::to_string(i) + "_key"] =
                top[i].second;
        }
        r.values["top10_revenue"] = sum10;
        r.values["groups"] = all.size();
    } else if (query == "Q12") {
        static const char *names[4] = {"modeA_high", "modeA_low",
                                       "modeB_high", "modeB_low"};
        for (unsigned k = 0; k < 4; ++k)
            r.values[names[k]] =
                s.core(0).dmem().load<std::uint64_t>(syncOff + 64 +
                                                     k * 8);
    } else if (query == "Q14") {
        r.values["promo_revenue"] =
            s.core(0).dmem().load<std::uint64_t>(syncOff + 64);
        r.values["total_revenue"] =
            s.core(0).dmem().load<std::uint64_t>(syncOff + 72);
    }
    return r;
}

// ----------------------------------------------------------------
// Xeon plans (functional + roofline charges)
// ----------------------------------------------------------------

QueryResult
xeonTpch(const TpchConfig &cfg, const std::string &query)
{
    Db db = makeDb(cfg);
    const std::uint32_t nL = std::uint32_t(db.l_orderkey.size());
    const std::uint32_t nO = std::uint32_t(db.o_orderkey.size());
    xeon::XeonModel m;
    QueryResult r;
    r.query = query;

    // Probe spill factor: at the paper's scale hash tables exceed
    // the LLC, so a fraction of probes are DRAM-random; the DPU
    // avoids this with DMEM-resident co-partitioned tables.
    const double probe_spill = 0.4;

    if (query == "Q1") {
        std::uint64_t sums[6][4] = {};
        for (std::uint32_t i = 0; i < nL; ++i) {
            if (db.l_shipdate[i] > q1CutDay)
                continue;
            unsigned g =
                db.l_returnflag[i] * 2 + db.l_linestatus[i];
            sums[g][0] += db.l_quantity[i];
            sums[g][1] += db.l_extprice[i];
            sums[g][2] += std::uint64_t(db.l_extprice[i]) *
                          (100 - db.l_discount[i]);
            sums[g][3] += 1;
        }
        for (unsigned g = 0; g < 6; ++g) {
            std::string base = "g" + std::to_string(g) + "_";
            r.values[base + "qty"] = sums[g][0];
            r.values[base + "price"] = sums[g][1];
            r.values[base + "disc_price"] = sums[g][2];
            r.values[base + "count"] = sums[g][3];
        }
        m.streamBytes(double(nL) * 24); // 6 used columns
        m.scalarOps(double(nL) * 10);
        m.endPhase();
    } else if (query == "Q6") {
        std::uint64_t rev = 0;
        for (std::uint32_t i = 0; i < nL; ++i) {
            if (db.l_shipdate[i] >= q6Year0 &&
                db.l_shipdate[i] < q6Year1 &&
                db.l_discount[i] >= q6Disc - 1 &&
                db.l_discount[i] <= q6Disc + 1 &&
                db.l_quantity[i] < q6Qty)
                rev += std::uint64_t(db.l_extprice[i]) *
                       db.l_discount[i];
        }
        r.values["revenue"] = rev;
        m.streamBytes(double(nL) * 16);
        m.simdOps(double(nL) * 6);
        m.endPhase();
    } else if (query == "Q3") {
        std::vector<bool> seg(cfg.nCustomers() + 1, false);
        for (std::uint32_t i = 0; i < cfg.nCustomers(); ++i)
            seg[i + 1] = db.c_mktsegment[i] == q3Segment;
        std::vector<bool> okeep(nO + 1, false);
        for (std::uint32_t i = 0; i < nO; ++i)
            okeep[db.o_orderkey[i]] =
                db.o_orderdate[i] < q3CutDay && seg[db.o_custkey[i]];
        std::map<std::uint32_t, std::uint64_t> all;
        for (std::uint32_t i = 0; i < nL; ++i) {
            if (db.l_shipdate[i] <= q3CutDay ||
                !okeep[db.l_orderkey[i]])
                continue;
            all[db.l_orderkey[i]] +=
                std::uint64_t(db.l_extprice[i]) *
                (100 - db.l_discount[i]);
        }
        std::vector<std::pair<std::uint64_t, std::uint32_t>> top;
        for (auto &[k, v] : all)
            top.push_back({v, k});
        std::sort(top.begin(), top.end(),
                  [](auto &a, auto &b) {
                      return a.first != b.first ? a.first > b.first
                                                : a.second < b.second;
                  });
        std::uint64_t sum10 = 0;
        for (std::size_t i = 0; i < top.size() && i < 10; ++i) {
            sum10 += top[i].first;
            r.values["top" + std::to_string(i) + "_key"] =
                top[i].second;
        }
        r.values["top10_revenue"] = sum10;
        r.values["groups"] = all.size();

        m.streamBytes(double(cfg.nCustomers()) * 4 +
                      double(nO) * 12 + double(nL) * 16);
        m.randomBytes(double(nL) * 64 * probe_spill);
        m.scalarOps(double(nL) * 12 + double(nO) * 8);
        m.endPhase();
    } else if (query == "Q12") {
        std::vector<std::uint32_t> prio(nO + 1, 0);
        for (std::uint32_t i = 0; i < nO; ++i)
            prio[db.o_orderkey[i]] = db.o_priority[i];
        std::uint64_t cnt[4] = {0, 0, 0, 0};
        std::uint64_t probes = 0;
        for (std::uint32_t i = 0; i < nL; ++i) {
            std::uint32_t mode = db.l_shipmode[i];
            if (mode != q12ModeA && mode != q12ModeB)
                continue;
            if (!(db.l_commitdate[i] < db.l_receiptdate[i] &&
                  db.l_shipdate[i] < db.l_commitdate[i] &&
                  db.l_receiptdate[i] >= q12Year0 &&
                  db.l_receiptdate[i] < q12Year1))
                continue;
            ++probes;
            unsigned hi = prio[db.l_orderkey[i]] < 2 ? 0 : 1;
            cnt[(mode == q12ModeA ? 0 : 2) + hi] += 1;
        }
        static const char *names[4] = {"modeA_high", "modeA_low",
                                       "modeB_high", "modeB_low"};
        for (unsigned k = 0; k < 4; ++k)
            r.values[names[k]] = cnt[k];
        m.streamBytes(double(nO) * 8 + double(nL) * 20);
        m.randomBytes(double(probes) * 64 * probe_spill);
        m.scalarOps(double(nL) * 8);
        m.endPhase();
    } else if (query == "Q14") {
        std::uint64_t promo = 0, total = 0;
        for (std::uint32_t i = 0; i < nL; ++i) {
            if (db.l_shipdate[i] < q14Month0 ||
                db.l_shipdate[i] >= q14Month1)
                continue;
            std::uint64_t rev = std::uint64_t(db.l_extprice[i]) *
                                (100 - db.l_discount[i]);
            total += rev;
            if (promoPart(db.p_type[db.l_partkey[i] - 1]))
                promo += rev;
        }
        r.values["promo_revenue"] = promo;
        r.values["total_revenue"] = total;
        m.streamBytes(double(cfg.nParts()) * 4 + double(nL) * 16);
        m.scalarOps(double(nL) * 8);
        m.endPhase();
    } else {
        fatal("unknown TPCH query '%s'", query.c_str());
    }
    r.seconds = m.seconds();
    return r;
}

AppResult
tpchApp(const TpchConfig &cfg, const std::string &query)
{
    QueryResult d = dpuTpch(soc::dpu40nm(), cfg, query);
    QueryResult x = xeonTpch(cfg, query);
    AppResult r;
    r.name = "TPCH " + query;
    r.dpuSeconds = d.seconds;
    r.xeonSeconds = x.seconds;
    r.workUnits = double(cfg.nLineitem());
    r.unitName = "lineitem rows";
    r.matched = d.values == x.values;
    return r;
}

} // namespace dpu::apps::sql

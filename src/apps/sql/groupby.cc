#include "apps/sql/groupby.hh"

#include "apps/entry.hh"

#include <vector>

#include "rt/dms_ctl.hh"
#include "rt/partition.hh"
#include "rt/sync.hh"
#include "sim/rng.hh"
#include "util/crc32.hh"

namespace dpu::apps::sql {

namespace {

struct Workload
{
    std::vector<std::uint32_t> keys;
    std::vector<std::uint32_t> vals;
};

Workload
makeWorkload(const GroupByConfig &cfg)
{
    Workload w;
    w.keys.resize(cfg.nRows);
    w.vals.resize(cfg.nRows);
    sim::Rng rng{cfg.seed};
    for (std::uint32_t i = 0; i < cfg.nRows; ++i) {
        w.keys[i] = std::uint32_t(rng.below(cfg.ndv));
        w.vals[i] = std::uint32_t(rng.below(1000)) + 1;
    }
    return w;
}

/** Reference aggregation for validation and the Xeon baselines. */
std::map<std::uint32_t, std::uint64_t>
referenceGroups(const Workload &w)
{
    std::map<std::uint32_t, std::uint64_t> m;
    for (std::size_t i = 0; i < w.keys.size(); ++i)
        m[w.keys[i]] += w.vals[i];
    return m;
}

/** DMEM layout shared by the group-by kernels. */
constexpr std::uint32_t tileBytes = 2048;
constexpr std::uint32_t keyTiles = 0;              // 2 x 2 KB
constexpr std::uint32_t valTiles = 2 * tileBytes;  // 2 x 2 KB
constexpr std::uint32_t aggTable = 8 * 1024;       // up to 16 KB
constexpr std::uint32_t syncWords = 26 * 1024;     // barrier/counter

} // namespace

// ----------------------------------------------------------------
// Low NDV
// ----------------------------------------------------------------

GroupByResult
dpuGroupByLowNdv(const soc::SocParams &params, const GroupByConfig &cfg)
{
    sim_assert(cfg.ndv <= 2048, "low-NDV table must fit DMEM");
    soc::SocParams p = params;
    const std::uint64_t n = cfg.nRows;
    const mem::Addr key_base = 0;
    const mem::Addr val_base = alignUp(n * 4 + (64 << 10), 4096);
    const mem::Addr tbl_base = alignUp(val_base * 2, 4096);
    const mem::Addr res_base =
        alignUp(tbl_base + 32ull * cfg.ndv * 8 + 4096, 4096);
    p.ddrBytes = std::max<std::size_t>(p.ddrBytes,
                                       res_base + cfg.ndv * 8 +
                                           (1 << 20));
    soc::Soc s(p);

    Workload w = makeWorkload(cfg);
    stage(s, key_base, w.keys);
    stage(s, val_base, w.vals);

    rt::AteBarrier barrier(0, syncWords, cfg.nCores);
    const std::uint32_t rows_per_core =
        std::uint32_t(n / cfg.nCores);

    for (unsigned id = 0; id < cfg.nCores; ++id) {
        s.start(id, [&, id](core::DpCore &c) {
            rt::DmsCtl ctl(c, s.dmsFor(id));

            // Zero the local table.
            for (std::uint32_t k = 0; k < cfg.ndv; ++k)
                c.dmem().store<std::uint64_t>(aggTable + k * 8, 0);
            c.dualIssue(cfg.ndv, cfg.ndv);

            const std::uint64_t my_bytes =
                std::uint64_t(rows_per_core) * 4;
            rt::StreamReader keys(ctl,
                                  key_base + id * my_bytes, my_bytes,
                                  keyTiles, tileBytes, 2, 0, 0);
            rt::StreamReader vals(ctl,
                                  val_base + id * my_bytes, my_bytes,
                                  valTiles, tileBytes, 2, 2, 1);

            // Lock-step the two streams manually.
            std::uint64_t consumed = 0;
            unsigned buf = 0;
            while (consumed < my_bytes) {
                ctl.wfe(0 + buf);
                ctl.wfe(2 + buf);
                std::uint32_t koff = keyTiles + buf * tileBytes;
                std::uint32_t voff = valTiles + buf * tileBytes;
                std::uint32_t cnt = std::uint32_t(
                    std::min<std::uint64_t>(tileBytes,
                                            my_bytes - consumed) / 4);
                for (std::uint32_t i = 0; i < cnt; ++i) {
                    std::uint32_t k = c.dmem().load<std::uint32_t>(
                        koff + i * 4);
                    std::uint32_t v = c.dmem().load<std::uint32_t>(
                        voff + i * 4);
                    std::uint64_t sum =
                        c.dmem().load<std::uint64_t>(aggTable + k * 8);
                    c.dmem().store<std::uint64_t>(aggTable + k * 8,
                                                  sum + v);
                }
                // 2 loads + 1 store on the LSU pipe, index + add on
                // the ALU pipe, per tuple.
                c.dualIssue(2 * cnt, 3 * cnt);
                ctl.clearEvent(0 + buf);
                ctl.clearEvent(2 + buf);
                consumed += cnt * 4;
                buf = 1 - buf;
            }

            // Dump the local table for the merge operator.
            auto dump = ctl.setupDmemToDdr(
                cfg.ndv * 2, 4, std::uint16_t(aggTable),
                tbl_base + std::uint64_t(id) * cfg.ndv * 8, 4, false);
            ctl.push(dump, 1);
            ctl.wfe(4);
            ctl.clearEvent(4);

            barrier.arrive(c, s.ateFor(id));

            // Merge operator on core 0: sum the 32 tables. Its
            // input is 32*ndv*8 bytes — tiny next to the scan
            // ("its overhead is very low", Section 5.3).
            if (id == 0) {
                for (std::uint32_t k = 0; k < cfg.ndv; ++k)
                    c.dmem().store<std::uint64_t>(aggTable + k * 8,
                                                  0);
                c.dualIssue(cfg.ndv, cfg.ndv);
                rt::StreamReader tabs(ctl, tbl_base,
                                      32ull * cfg.ndv * 8, keyTiles,
                                      tileBytes, 2, 0, 0);
                std::uint32_t k = 0;
                tabs.forEach([&](std::uint32_t off,
                                 std::uint32_t bytes) {
                    for (std::uint32_t i = 0; i < bytes; i += 8) {
                        std::uint64_t v =
                            c.dmem().load<std::uint64_t>(off + i);
                        std::uint64_t sum =
                            c.dmem().load<std::uint64_t>(aggTable +
                                                         k * 8);
                        c.dmem().store<std::uint64_t>(aggTable + k * 8,
                                                      sum + v);
                        k = (k + 1) % cfg.ndv;
                    }
                    c.dualIssue(bytes / 8 * 2, bytes / 8 * 3);
                });
                auto out = ctl.setupDmemToDdr(
                    cfg.ndv * 2, 4, std::uint16_t(aggTable), res_base,
                    5, false);
                ctl.push(out, 1);
                ctl.wfe(5);
            }
        });
    }
    sim::Tick t = s.run();
    sim_assert(s.allFinished(), "group-by kernels deadlocked");

    GroupByResult r;
    r.seconds = double(t) * 1e-12;
    r.rows = n;
    auto sums = unstage<std::uint64_t>(s, res_base, cfg.ndv);
    for (std::uint32_t k = 0; k < cfg.ndv; ++k)
        if (sums[k])
            r.groups[k] = sums[k];
    return r;
}

GroupByResult
xeonGroupByLowNdv(const GroupByConfig &cfg)
{
    Workload w = makeWorkload(cfg);
    GroupByResult r;
    r.groups = referenceGroups(w);
    r.rows = cfg.nRows;

    xeon::XeonModel m;
    // One bandwidth-bound pass; the table lives in L1.
    m.streamBytes(double(cfg.nRows) * 8);
    m.scalarOps(double(cfg.nRows) * 4);
    m.serialOps(double(cfg.ndv) * 36); // merge of per-thread tables
    m.endPhase();
    r.seconds = m.seconds();
    return r;
}

// ----------------------------------------------------------------
// High NDV
// ----------------------------------------------------------------

GroupByResult
dpuGroupByHighNdv(const soc::SocParams &params,
                  const GroupByConfig &cfg)
{
    soc::SocParams p = params;
    const std::uint64_t n = cfg.nRows;
    const unsigned n_parts = 1024; // 32-way hw x 32-way sw
    const std::uint64_t region_bytes =
        alignUp(n / n_parts * 8 * 4 + 1024, 256);
    const std::uint64_t res_region = 20 * 1024;

    const mem::Addr key_base = 0;
    const mem::Addr val_base = alignUp(n * 4 + 4096, 4096);
    const mem::Addr part_base = alignUp(val_base + n * 4 + 4096,
                                        4096);
    const mem::Addr res_base =
        alignUp(part_base + n_parts * region_bytes + 4096, 4096);
    p.ddrBytes = std::max<std::size_t>(
        p.ddrBytes, res_base + n_parts * res_region + (1 << 20));
    soc::Soc s(p);

    Workload w = makeWorkload(cfg);
    stage(s, key_base, w.keys);
    stage(s, val_base, w.vals);

    rt::AteBarrier barrier(0, syncWords, cfg.nCores);
    s.core(0).dmem().store<std::uint64_t>(syncWords + 32, 0);
    rt::AteCounter stealer(0, syncWords + 32);

    // Phase A DMEM layout: partition ring 2 x (2048+4) from 0;
    // 32 sub-partition buffers of 256 B from 6144; hash table and
    // tiles for phase B reuse the same space afterwards.
    constexpr std::uint32_t ringBase = 0;
    constexpr std::uint32_t ringBuf = 2048 + 4;
    constexpr std::uint32_t subBase = 6144;
    constexpr std::uint32_t subBuf = 512;

    // Host-side mirror of the DRAM length table each core would
    // keep in DDR (charged below).
    std::vector<std::vector<std::uint32_t>> part_len(
        cfg.nCores, std::vector<std::uint32_t>(32, 0));

    for (unsigned id = 0; id < cfg.nCores; ++id) {
        s.start(id, [&, id](core::DpCore &c) {
            rt::DmsCtl ctl(c, s.dmsFor(id));
            ate::Ate &ate = s.ateFor(id);

            if (id == 0) {
                rt::PartitionJob job;
                job.table = key_base;
                job.nRows = std::uint32_t(n);
                job.nCols = 2;
                job.colWidth = 4;
                job.colStride = std::uint32_t(val_base - key_base);
                job.scheme.kind =
                    rt::PartitionScheme::Kind::HashRadix;
                job.scheme.radixBits = 5;
                job.dstBase = ringBase;
                job.dstBufBytes = ringBuf;
                job.dstNBufs = 2;
                job.dstFirstEvent = 16;
                job.doneEvent = 30;
                rt::runPartition(ctl, job);
            }

            // --- Phase A: consume + 32-way software partition ---
            std::uint32_t sub_fill[32] = {};
            // Two round-robin flush descriptors (events 8/9) keep a
            // drain in flight behind the consume loop instead of
            // serializing on every 256 B sub-buffer.
            dms::Descriptor nop;
            rt::DescHandle flush_slots[2] = {ctl.setup(nop),
                                             ctl.setup(nop)};
            bool flush_pending[2] = {false, false};
            unsigned flush_rr = 0;
            auto flushSub = [&](unsigned sp) {
                if (sub_fill[sp] == 0)
                    return;
                unsigned slot = flush_rr;
                flush_rr ^= 1;
                unsigned ev = 8 + slot;
                if (flush_pending[slot]) {
                    ctl.wfe(ev);
                    ctl.clearEvent(ev);
                }
                dms::Descriptor d;
                d.type = dms::DescType::DmemToDdr;
                d.rows = sub_fill[sp] / 4;
                d.colWidth = 4;
                d.dmemAddr = std::uint16_t(subBase + sp * subBuf);
                d.ddrAddr = part_base +
                            (std::uint64_t(id) * 32 + sp) *
                                region_bytes +
                            part_len[id][sp] * 8;
                d.notifyEvent = std::int8_t(ev);
                sim_assert(part_len[id][sp] * 8 + sub_fill[sp] <=
                           region_bytes,
                           "software partition region overflow");
                ctl.rewrite(flush_slots[slot], d);
                ctl.push(flush_slots[slot], 1);
                flush_pending[slot] = true;
                part_len[id][sp] += sub_fill[sp] / 8;
                sub_fill[sp] = 0;
                c.dualIssue(6, 4);
            };
            auto flushDrain = [&] {
                for (unsigned slot = 0; slot < 2; ++slot) {
                    if (flush_pending[slot]) {
                        ctl.wfe(8 + slot);
                        ctl.clearEvent(8 + slot);
                        flush_pending[slot] = false;
                    }
                }
            };

            rt::consumePartition(
                ctl, ringBase, ringBuf, 2, 16,
                [&](std::uint32_t off, std::uint32_t rows) {
                    for (std::uint32_t i = 0; i < rows; ++i) {
                        std::uint32_t key =
                            c.dmem().load<std::uint32_t>(off + i * 8);
                        std::uint32_t val =
                            c.dmem().load<std::uint32_t>(off + i * 8 +
                                                         4);
                        unsigned sp =
                            (util::crc32Key(key) >> 5) & 31;
                        std::uint32_t dst =
                            subBase + sp * subBuf + sub_fill[sp];
                        c.dmem().store<std::uint32_t>(dst, key);
                        c.dmem().store<std::uint32_t>(dst + 4, val);
                        sub_fill[sp] += 8;
                        if (sub_fill[sp] == subBuf)
                            flushSub(sp);
                    }
                    // 2 loads + 2 stores (LSU), CRC + radix + fill
                    // bookkeeping (ALU) per tuple.
                    c.dualIssue(3 * rows, 4 * rows);
                    c.statGroup().counter("crcOps") += rows;
                });
            for (unsigned sp = 0; sp < 32; ++sp)
                flushSub(sp);
            flushDrain();
            if (id == 0)
                ctl.wfe(30); // hardware partition flush completed

            barrier.arrive(c, ate);

            // --- Phase B: work-steal the 1024 partitions ---
            constexpr std::uint32_t tblOff = aggTable; // 8 KB
            constexpr std::uint32_t tblSlots = 1024;
            while (true) {
                std::uint64_t j = stealer.next(c, ate);
                if (j >= n_parts)
                    break;
                // Recycle the descriptor arena each iteration; all
                // previously pushed descriptors were copied by the
                // DMAD at push time.
                ctl.resetArena();
                rt::DescHandle emit_slot = ctl.setup(nop);
                std::uint32_t len =
                    part_len[j / 32][j % 32]; // length-table read
                c.dualIssue(2, 2);
                if (len == 0) {
                    // Still emit an empty result header.
                    c.dmem().store<std::uint32_t>(tblOff - 4, 0);
                    dms::Descriptor d;
                    d.type = dms::DescType::DmemToDdr;
                    d.rows = 1;
                    d.colWidth = 4;
                    d.dmemAddr = std::uint16_t(tblOff - 4);
                    d.ddrAddr = res_base + j * res_region;
                    d.notifyEvent = 9;
                    ctl.rewrite(emit_slot, d);
                    ctl.push(emit_slot, 1);
                    ctl.wfe(9);
                    ctl.clearEvent(9);
                    continue;
                }

                for (std::uint32_t i = 0; i < tblSlots; ++i)
                    c.dmem().store<std::uint64_t>(tblOff + i * 8, 0);
                c.dualIssue(tblSlots / 2, tblSlots);

                mem::Addr src = part_base + j * region_bytes;
                rt::StreamReader in(ctl, src,
                                    std::uint64_t(len) * 8, 0,
                                    2 * tileBytes, 2, 0, 0);
                in.forEach([&](std::uint32_t off,
                               std::uint32_t bytes) {
                    for (std::uint32_t i = 0; i < bytes; i += 8) {
                        std::uint32_t key =
                            c.dmem().load<std::uint32_t>(off + i);
                        std::uint32_t val =
                            c.dmem().load<std::uint32_t>(off + i + 4);
                        // Partitioning consumed CRC bits [9:0]
                        // (5 hw + 5 sw), so every key in this
                        // partition shares them; index the table
                        // with the NEXT bits or linear probing
                        // degenerates into one giant cluster.
                        std::uint32_t slot =
                            (c.crcHash(key) >> 10) & (tblSlots - 1);
                        // Linear probe; keys are stored +1 so that
                        // 0 means empty (key 0 is legal).
                        while (true) {
                            std::uint32_t k =
                                c.dmem().load<std::uint32_t>(
                                    tblOff + slot * 8);
                            if (k == 0) {
                                c.dmem().store<std::uint32_t>(
                                    tblOff + slot * 8, key + 1);
                                c.dmem().store<std::uint32_t>(
                                    tblOff + slot * 8 + 4, val);
                                break;
                            }
                            if (k == key + 1) {
                                std::uint32_t sum =
                                    c.dmem().load<std::uint32_t>(
                                        tblOff + slot * 8 + 4);
                                c.dmem().store<std::uint32_t>(
                                    tblOff + slot * 8 + 4, sum + val);
                                break;
                            }
                            slot = (slot + 1) & (tblSlots - 1);
                            c.dualIssue(1, 1);
                        }
                        c.dualIssue(3, 4);
                    }
                });

                // Compact (key,sum) pairs to the front and emit.
                std::uint32_t groups = 0;
                for (std::uint32_t i = 0; i < tblSlots; ++i) {
                    std::uint32_t k = c.dmem().load<std::uint32_t>(
                        tblOff + i * 8);
                    if (k == 0)
                        continue;
                    std::uint32_t v = c.dmem().load<std::uint32_t>(
                        tblOff + i * 8 + 4);
                    c.dmem().store<std::uint32_t>(
                        tblOff + groups * 8, k - 1);
                    c.dmem().store<std::uint32_t>(
                        tblOff + groups * 8 + 4, v);
                    ++groups;
                }
                c.dualIssue(tblSlots, tblSlots * 2);
                c.dmem().store<std::uint32_t>(tblOff - 4, groups);

                dms::Descriptor d;
                d.type = dms::DescType::DmemToDdr;
                d.rows = 1 + groups * 2;
                d.colWidth = 4;
                d.dmemAddr = std::uint16_t(tblOff - 4);
                d.ddrAddr = res_base + j * res_region;
                d.notifyEvent = 9;
                ctl.rewrite(emit_slot, d);
                ctl.push(emit_slot, 1);
                ctl.wfe(9);
                ctl.clearEvent(9);
            }
        });
    }
    sim::Tick t = s.run();
    if (!s.allFinished()) {
        for (unsigned uid : s.unfinishedCores())
            warn("core %u stuck (blocks=%llu)", uid,
                 (unsigned long long)s.core(uid).statGroup().get(
                     "blocks"));
        warn("dmac stalls=%llu sealed=%llu rowsPart=%llu",
             (unsigned long long)s.dms().dmac().statGroup().get("partStalls"),
             (unsigned long long)s.dms().dmac().statGroup().get("partBuffersSealed"),
             (unsigned long long)s.dms().dmac().statGroup().get("rowsPartitioned"));
    }
    sim_assert(s.allFinished(), "high-NDV group-by deadlocked");

    GroupByResult r;
    r.seconds = double(t) * 1e-12;
    r.rows = n;
    for (unsigned j = 0; j < n_parts; ++j) {
        mem::Addr base = res_base + j * res_region;
        std::uint32_t groups =
            s.memory().store().load<std::uint32_t>(base);
        for (std::uint32_t g = 0; g < groups; ++g) {
            std::uint32_t k = s.memory().store().load<std::uint32_t>(
                base + 4 + g * 8);
            std::uint32_t v = s.memory().store().load<std::uint32_t>(
                base + 4 + g * 8 + 4);
            r.groups[k] += v;
        }
    }
    return r;
}

GroupByResult
xeonGroupByHighNdv(const GroupByConfig &cfg)
{
    Workload w = makeWorkload(cfg);
    GroupByResult r;
    r.groups = referenceGroups(w);
    r.rows = cfg.nRows;

    xeon::XeonModel m;
    const double n = cfg.nRows;
    // Round 1: 256-way software partition (radix out of cache,
    // non-temporal stores); round 2: another 256-way fan-out of
    // each partition. Two rounds because a single round cannot
    // produce enough partitions at full speed (Section 5.3 /
    // Polychroniou & Ross).
    for (int round = 0; round < 2; ++round) {
        m.streamBytes(n * 8);  // read
        m.streamBytes(n * 8);  // non-temporal write
        m.scalarOps(n * 6);    // hash + bucket bookkeeping
        m.endPhase();
    }
    // Aggregation pass: partitions now fit the cache hierarchy.
    m.streamBytes(n * 8);
    m.scalarOps(n * 8);
    m.endPhase();
    r.seconds = m.seconds();
    return r;
}

// ----------------------------------------------------------------
// Figure 14 wrappers
// ----------------------------------------------------------------

namespace {

AppResult
wrap(const char *name, const GroupByResult &d, const GroupByResult &x)
{
    AppResult r;
    r.name = name;
    r.dpuSeconds = d.seconds;
    r.xeonSeconds = x.seconds;
    r.workUnits = double(d.rows);
    r.unitName = "tuples";
    r.matched = d.groups == x.groups;
    return r;
}

} // namespace

AppResult
groupByLowApp(const GroupByConfig &cfg)
{
    return wrap("GroupBy Low-NDV",
                dpuGroupByLowNdv(soc::dpu40nm(), cfg),
                xeonGroupByLowNdv(cfg));
}

AppResult
groupByHighApp(const GroupByConfig &cfg)
{
    return wrap("GroupBy High-NDV",
                dpuGroupByHighNdv(soc::dpu40nm(), cfg),
                xeonGroupByHighNdv(cfg));
}

} // namespace dpu::apps::sql

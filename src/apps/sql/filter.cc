#include "apps/sql/filter.hh"

#include "apps/entry.hh"

#include <vector>

#include "rt/dms_ctl.hh"
#include "sim/rng.hh"

namespace dpu::apps::sql {

namespace {

/** Generate the column: uniform 0..999 so selectivity = span/1000. */
std::vector<std::uint32_t>
makeColumn(std::uint64_t rows, std::uint64_t seed)
{
    std::vector<std::uint32_t> col(rows);
    sim::Rng rng{seed};
    for (auto &v : col)
        v = std::uint32_t(rng.below(1000));
    return col;
}

} // namespace

FilterResult
dpuFilter(const soc::SocParams &params, const FilterConfig &cfg)
{
    soc::SocParams p = params;
    const std::uint64_t total_rows =
        std::uint64_t(cfg.rowsPerCore) * cfg.nCores;
    const std::uint64_t col_bytes = total_rows * 4;
    const mem::Addr col_base = 0;
    const mem::Addr bv_base = alignUp(col_bytes + (64 << 10), 4096);
    p.ddrBytes = std::max<std::size_t>(
        p.ddrBytes, alignUp(bv_base + total_rows / 8 + (1 << 20),
                            1 << 20));
    soc::Soc s(p);

    auto col = makeColumn(total_rows, cfg.seed);
    stage(s, col_base, col);

    std::vector<std::uint64_t> passed(cfg.nCores, 0);
    for (unsigned id = 0; id < cfg.nCores; ++id) {
        s.start(id, [&, id](core::DpCore &c) {
            rt::DmsCtl ctl(c, s.dmsFor(id));
            const std::uint64_t my_bytes =
                std::uint64_t(cfg.rowsPerCore) * 4;
            const mem::Addr my_col = col_base + id * my_bytes;
            const mem::Addr my_bv =
                bv_base + id * (cfg.rowsPerCore / 8);

            // Selection bit vectors accumulate in DMEM behind the
            // input tiles and drain via the write channel.
            const std::uint32_t in_base = 0;
            const std::uint32_t bv_off = 2 * cfg.tileBytes;
            const std::uint32_t bv_buf = cfg.tileBytes / 32;

            rt::StreamWriter writer(ctl, my_bv, std::uint16_t(bv_off),
                                    std::max(bv_buf, 64u), 2, 8, 1);

            rt::StreamReader reader(ctl, my_col, my_bytes,
                                    std::uint16_t(in_base),
                                    cfg.tileBytes, 2, 0);
            std::uint64_t hits = 0;
            reader.forEach([&](std::uint32_t off,
                               std::uint32_t bytes) {
                std::uint32_t n = bytes / 4;
                std::uint32_t out = cfg.writeBitvector
                                        ? writer.acquire()
                                        : bv_off;
                hits += c.filt(off, n, 4, cfg.lo, cfg.hi, out);
                if (cfg.writeBitvector)
                    writer.commit(alignUp(n / 8, 4));
            });
            if (cfg.writeBitvector)
                writer.finish();
            passed[id] = hits;
        });
    }
    sim::Tick t = s.run();

    FilterResult r;
    r.seconds = double(t) * 1e-12;
    r.rows = total_rows;
    for (auto h : passed)
        r.passed += h;
    return r;
}

FilterResult
xeonFilter(const FilterConfig &cfg)
{
    const std::uint64_t total_rows =
        std::uint64_t(cfg.rowsPerCore) * cfg.nCores;
    auto col = makeColumn(total_rows, cfg.seed);

    // Functional AVX2-style loop: 8-lane compare + movemask.
    std::uint64_t passed = 0;
    for (std::uint32_t v : col)
        passed += (v >= cfg.lo && v <= cfg.hi);

    xeon::XeonModel m;
    // Two vector compares + and + movemask per 8 lanes: ~4 element
    // ops per tuple; the stream bound dominates in practice.
    m.simdOps(double(total_rows) * 4);
    m.streamBytes(double(total_rows) * 4);
    if (cfg.writeBitvector)
        m.streamBytes(double(total_rows) / 8 * 2); // RFO + write
    m.endPhase();

    FilterResult r;
    r.seconds = m.seconds();
    r.rows = total_rows;
    r.passed = passed;
    return r;
}

AppResult
filterApp(const FilterConfig &cfg)
{
    FilterResult d = dpuFilter(soc::dpu40nm(), cfg);
    FilterResult x = xeonFilter(cfg);
    AppResult r;
    r.name = "SQL filter";
    r.dpuSeconds = d.seconds;
    r.xeonSeconds = x.seconds;
    r.workUnits = double(d.rows);
    r.unitName = "tuples";
    r.matched = d.passed == x.passed;
    return r;
}

} // namespace dpu::apps::sql

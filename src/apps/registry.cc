#include "apps/registry.hh"

#include "apps/entry.hh"

#include <charconv>

#include "apps/serving.hh"
#include "sim/logging.hh"

namespace dpu::apps {

namespace {

// ----------------------------------------------------------------
// Option-string parsing
// ----------------------------------------------------------------

bool
parseU64(std::string_view v, std::uint64_t &out)
{
    std::uint64_t r{};
    auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), r);
    if (ec != std::errc() || p != v.data() + v.size())
        return false;
    out = r;
    return true;
}

template <typename T>
bool
setInt(T &field, std::string_view v)
{
    std::uint64_t r;
    if (!parseU64(v, r))
        return false;
    field = T(r);
    return true;
}

bool
setDouble(double &field, std::string_view v)
{
    double r{};
    auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), r);
    if (ec != std::errc() || p != v.data() + v.size())
        return false;
    field = r;
    return true;
}

bool
setBool(bool &field, std::string_view v)
{
    if (v == "true" || v == "1") {
        field = true;
        return true;
    }
    if (v == "false" || v == "0") {
        field = false;
        return true;
    }
    return false;
}

template <typename C>
C &
as(const ConfigHandle &h)
{
    return *static_cast<C *>(h.get());
}

/** Build one AppSpec from typed callables. */
template <typename C>
AppSpec
makeSpec(std::string name, std::string summary, double paper_gain,
         C defaults,
         bool (*set_field)(C &, std::string_view, std::string_view),
         AppResult (*run)(const C &),
         ServingJob (*serve)(const C &, const ServingContext &))
{
    AppSpec spec;
    spec.name = std::move(name);
    spec.summary = std::move(summary);
    spec.paperGain = paper_gain;
    spec.makeConfig = [defaults] {
        return ConfigHandle(std::make_shared<C>(defaults));
    };
    spec.set = [set_field](const ConfigHandle &h, std::string_view k,
                           std::string_view v) {
        return set_field(as<C>(h), k, v);
    };
    spec.run = [run](const ConfigHandle &h) { return run(as<C>(h)); };
    spec.serve = [serve](const ConfigHandle &h,
                         const ServingContext &ctx) {
        return serve(as<C>(h), ctx);
    };
    return spec;
}

// ----------------------------------------------------------------
// Per-app field tables
// ----------------------------------------------------------------

bool
svmSet(SvmConfig &c, std::string_view k, std::string_view v)
{
    if (k == "nTrain") return setInt(c.nTrain, v);
    if (k == "nTest") return setInt(c.nTest, v);
    if (k == "dims") return setInt(c.dims, v);
    if (k == "c") return setDouble(c.c, v);
    if (k == "maxIters") return setInt(c.maxIters, v);
    if (k == "seed") return setInt(c.seed, v);
    if (k == "nCores") return setInt(c.nCores, v);
    return false;
}

bool
simSearchSet(SimSearchConfig &c, std::string_view k,
             std::string_view v)
{
    if (k == "nDocs") return setInt(c.nDocs, v);
    if (k == "vocab") return setInt(c.vocab, v);
    if (k == "avgTermsPerDoc") return setInt(c.avgTermsPerDoc, v);
    if (k == "nQueries") return setInt(c.nQueries, v);
    if (k == "termsPerQuery") return setInt(c.termsPerQuery, v);
    if (k == "topK") return setInt(c.topK, v);
    if (k == "zipf") return setDouble(c.zipf, v);
    if (k == "seed") return setInt(c.seed, v);
    if (k == "nCores") return setInt(c.nCores, v);
    if (k == "naiveDms") return setBool(c.naiveDms, v);
    return false;
}

bool
filterSet(sql::FilterConfig &c, std::string_view k,
          std::string_view v)
{
    if (k == "rowsPerCore") return setInt(c.rowsPerCore, v);
    if (k == "tileBytes") return setInt(c.tileBytes, v);
    if (k == "nCores") return setInt(c.nCores, v);
    if (k == "lo") return setInt(c.lo, v);
    if (k == "hi") return setInt(c.hi, v);
    if (k == "seed") return setInt(c.seed, v);
    if (k == "writeBitvector") return setBool(c.writeBitvector, v);
    return false;
}

bool
groupBySet(sql::GroupByConfig &c, std::string_view k,
           std::string_view v)
{
    if (k == "nRows") return setInt(c.nRows, v);
    if (k == "ndv") return setInt(c.ndv, v);
    if (k == "seed") return setInt(c.seed, v);
    if (k == "nCores") return setInt(c.nCores, v);
    return false;
}

bool
hllSet(HllConfig &c, std::string_view k, std::string_view v)
{
    if (k == "nElements") return setInt(c.nElements, v);
    if (k == "cardinality") return setInt(c.cardinality, v);
    if (k == "pBits") return setInt(c.pBits, v);
    if (k == "seed") return setInt(c.seed, v);
    if (k == "nCores") return setInt(c.nCores, v);
    if (k == "useNtz") return setBool(c.useNtz, v);
    if (k == "hash") {
        if (v == "crc32") {
            c.hash = HllHash::Crc32;
            return true;
        }
        if (v == "murmur64") {
            c.hash = HllHash::Murmur64;
            return true;
        }
        return false;
    }
    return false;
}

bool
jsonSet(JsonConfig &c, std::string_view k, std::string_view v)
{
    if (k == "nRecords") return setInt(c.nRecords, v);
    if (k == "seed") return setInt(c.seed, v);
    if (k == "nCores") return setInt(c.nCores, v);
    if (k == "branchyParser") return setBool(c.branchyParser, v);
    return false;
}

bool
disparitySet(DisparityConfig &c, std::string_view k,
             std::string_view v)
{
    if (k == "width") return setInt(c.width, v);
    if (k == "height") return setInt(c.height, v);
    if (k == "maxShift") return setInt(c.maxShift, v);
    if (k == "window") return setInt(c.window, v);
    if (k == "seed") return setInt(c.seed, v);
    if (k == "nCores") return setInt(c.nCores, v);
    return false;
}

// Typed run/serve adapters (unary function pointers for makeSpec).

AppResult runSvm(const SvmConfig &c) { return svmApp(c); }
AppResult runSimSearch(const SimSearchConfig &c)
{
    return simSearchApp(c);
}
AppResult runFilter(const sql::FilterConfig &c)
{
    return sql::filterApp(c);
}
AppResult runGroupByLow(const sql::GroupByConfig &c)
{
    return sql::groupByLowApp(c);
}
AppResult runGroupByHigh(const sql::GroupByConfig &c)
{
    return sql::groupByHighApp(c);
}
AppResult runHll(const HllConfig &c) { return hllApp(c); }
AppResult runJson(const JsonConfig &c) { return jsonApp(c); }
AppResult runDisparity(const DisparityConfig &c)
{
    return disparityApp(c);
}

std::vector<AppSpec>
buildRegistry()
{
    std::vector<AppSpec> r;

    r.push_back(makeSpec<SvmConfig>(
        "svm", "SMO training / fixed-point inference (Section 5.1)",
        15.0, SvmConfig{}, svmSet, runSvm, serving::svmJob));

    r.push_back(makeSpec<SimSearchConfig>(
        "simsearch", "tf-idf similarity scoring (Section 5.2)", 3.9,
        SimSearchConfig{}, simSearchSet, runSimSearch,
        serving::simSearchJob));

    {
        // Figure 14's operating point (8 MB of column per core).
        sql::FilterConfig f;
        f.rowsPerCore = 256 << 10;
        r.push_back(makeSpec<sql::FilterConfig>(
            "filter", "SQL predicate scan via FILT (Section 5.3)",
            6.7, f, filterSet, runFilter, serving::filterJob));
    }

    {
        sql::GroupByConfig low;
        low.ndv = 256;
        r.push_back(makeSpec<sql::GroupByConfig>(
            "groupby-low", "low-NDV aggregation (Section 5.3)", 6.7,
            low, groupBySet, runGroupByLow, serving::groupByJob));
    }
    {
        sql::GroupByConfig high;
        high.ndv = 256 << 10;
        r.push_back(makeSpec<sql::GroupByConfig>(
            "groupby-high",
            "high-NDV partitioned aggregation (Section 5.3)", 9.7,
            high, groupBySet, runGroupByHigh, serving::groupByJob));
    }

    r.push_back(makeSpec<HllConfig>(
        "hll-crc", "HyperLogLog with CRC32 hashing (Section 5.4)",
        9.0, HllConfig{}, hllSet, runHll, serving::hllJob));

    {
        HllConfig murmur;
        murmur.hash = HllHash::Murmur64;
        r.push_back(makeSpec<HllConfig>(
            "hll-murmur",
            "HyperLogLog with Murmur64 hashing (Section 5.4)", 1.5,
            murmur, hllSet, runHll, serving::hllJob));
    }

    r.push_back(makeSpec<JsonConfig>(
        "json", "jump-table JSON parsing (Section 5.5)", 8.0,
        JsonConfig{}, jsonSet, runJson, serving::jsonJob));

    r.push_back(makeSpec<DisparityConfig>(
        "disparity", "stereo disparity SAD argmin (Section 5.6)",
        8.6, DisparityConfig{}, disparitySet, runDisparity,
        serving::disparityJob));

    return r;
}

} // namespace

const std::vector<AppSpec> &
registry()
{
    static const std::vector<AppSpec> r = buildRegistry();
    return r;
}

const AppSpec *
findApp(std::string_view name)
{
    for (const AppSpec &spec : registry())
        if (spec.name == name)
            return &spec;
    return nullptr;
}

AppResult
runApp(std::string_view name,
       std::initializer_list<
           std::pair<std::string_view, std::string_view>>
           opts)
{
    const AppSpec *spec = findApp(name);
    sim_assert(spec, "unknown app \"%.*s\"", int(name.size()),
               name.data());
    ConfigHandle cfg = spec->makeConfig();
    for (const auto &[k, v] : opts)
        sim_assert(spec->set(cfg, k, v),
                   "app %s rejected option %.*s=%.*s",
                   spec->name.c_str(), int(k.size()), k.data(),
                   int(v.size()), v.data());
    return spec->run(cfg);
}

} // namespace dpu::apps

#include "apps/simsearch.hh"

#include "apps/entry.hh"

#include <algorithm>
#include <map>

#include "rt/dms_ctl.hh"
#include "rt/sync.hh"
#include "sim/rng.hh"
#include "util/fixed_point.hh"
#include "util/zipf.hh"

namespace dpu::apps {

namespace {

using util::Fx22;

constexpr std::uint32_t tileDocs = 128;

/** One posting: term, local doc id within its tile, tf-idf weight. */
struct Posting
{
    std::uint16_t term;
    std::uint16_t docLocal;
    std::int32_t weight; ///< Q10.22 raw
};
static_assert(sizeof(Posting) == 8);

struct Index
{
    std::uint32_t nDocs = 0, nTiles = 0, vocab = 0;
    /** Postings, tile-major; tileStart[t]..tileStart[t+1]. */
    std::vector<Posting> postings;
    std::vector<std::uint32_t> tileStart;
    /** Within a tile, postings sorted by term; per-(tile,term)
     *  ranges for the naive/Xeon useful-only access pattern. */
    std::map<std::pair<std::uint32_t, std::uint16_t>,
             std::pair<std::uint32_t, std::uint32_t>>
        termRange;
};

struct Query
{
    std::vector<std::pair<std::uint16_t, std::int32_t>> terms;
};

Index
makeIndex(const SimSearchConfig &cfg, sim::Rng &rng)
{
    Index ix;
    ix.nDocs = cfg.nDocs;
    ix.nTiles = (cfg.nDocs + tileDocs - 1) / tileDocs;
    ix.vocab = cfg.vocab;
    util::Zipf zipf(cfg.vocab, cfg.zipf);

    std::vector<std::vector<Posting>> per_tile(ix.nTiles);
    for (std::uint32_t d = 0; d < cfg.nDocs; ++d) {
        std::uint32_t t = d / tileDocs;
        unsigned n = cfg.avgTermsPerDoc / 2 +
                     unsigned(rng.below(cfg.avgTermsPerDoc));
        for (unsigned k = 0; k < n; ++k) {
            Posting p;
            p.term = std::uint16_t(zipf.sample(rng));
            p.docLocal = std::uint16_t(d % tileDocs);
            p.weight =
                Fx22::fromDouble(0.05 + rng.uniform() * 0.9).raw();
            per_tile[t].push_back(p);
        }
    }

    ix.tileStart.push_back(0);
    for (std::uint32_t t = 0; t < ix.nTiles; ++t) {
        auto &v = per_tile[t];
        std::sort(v.begin(), v.end(),
                  [](const Posting &a, const Posting &b) {
                      return a.term != b.term ? a.term < b.term
                                              : a.docLocal <
                                                    b.docLocal;
                  });
        std::uint32_t base = std::uint32_t(ix.postings.size());
        for (std::size_t i = 0; i < v.size(); ++i) {
            std::uint32_t at = base + std::uint32_t(i);
            if (i == 0 || v[i].term != v[i - 1].term)
                ix.termRange[{t, v[i].term}] = {at, at};
            ix.termRange[{t, v[i].term}].second = at + 1;
        }
        ix.postings.insert(ix.postings.end(), v.begin(), v.end());
        ix.tileStart.push_back(std::uint32_t(ix.postings.size()));
    }
    return ix;
}

std::vector<Query>
makeQueries(const SimSearchConfig &cfg, sim::Rng &rng)
{
    // Queries are page-title-like: hot topical terms, but distinct
    // topics — a term appears in at most two queries (pure Zipf
    // sampling would put the top terms in EVERY query, which real
    // title queries do not do).
    util::Zipf zipf(cfg.vocab, cfg.zipf);
    std::vector<Query> qs(cfg.nQueries);
    std::map<std::uint16_t, unsigned> uses;
    for (auto &q : qs) {
        unsigned attempts = 0;
        while (q.terms.size() < cfg.termsPerQuery) {
            std::uint16_t t = std::uint16_t(zipf.sample(rng));
            if (++attempts > 10000)
                t = std::uint16_t(rng.below(cfg.vocab));
            bool dup = false;
            for (auto &e : q.terms)
                dup |= e.first == t;
            if (dup || uses[t] >= 2)
                continue;
            ++uses[t];
            q.terms.push_back(
                {t, Fx22::fromDouble(0.2 + rng.uniform()).raw()});
        }
    }
    return qs;
}

/** term -> list of (query id, weight): the batch's lookup table. */
using TermMap =
    std::map<std::uint16_t,
             std::vector<std::pair<std::uint16_t, std::int32_t>>>;

TermMap
buildTermMap(const std::vector<Query> &qs)
{
    TermMap tm;
    for (std::uint16_t qi = 0; qi < qs.size(); ++qi)
        for (auto &e : qs[qi].terms)
            tm[e.first].push_back({qi, e.second});
    return tm;
}

/** Exact shared scoring used for validation and top-k building. */
struct Scores
{
    /** raw Q20.44-ish accumulators, [query][doc]. */
    std::vector<std::vector<std::int64_t>> acc;
};

void
finish(SimSearchResult &r, const SimSearchConfig &cfg,
       const Scores &sc)
{
    r.scoreChecksum = 0;
    r.topDocs.assign(cfg.nQueries, {});
    for (std::uint32_t q = 0; q < cfg.nQueries; ++q) {
        std::vector<std::uint32_t> order(cfg.nDocs);
        for (std::uint32_t d = 0; d < cfg.nDocs; ++d) {
            order[d] = d;
            r.scoreChecksum +=
                std::uint64_t(sc.acc[q][d]) * (d + 1);
        }
        std::partial_sort(
            order.begin(), order.begin() + cfg.topK, order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
                return sc.acc[q][a] != sc.acc[q][b]
                           ? sc.acc[q][a] > sc.acc[q][b]
                           : a < b;
            });
        r.topDocs[q].assign(order.begin(),
                            order.begin() + cfg.topK);
    }
}

} // namespace

SimSearchResult
dpuSimSearch(const soc::SocParams &params, const SimSearchConfig &cfg)
{
    sim::Rng rng{cfg.seed};
    Index ix = makeIndex(cfg, rng);
    auto queries = makeQueries(cfg, rng);
    TermMap tm = buildTermMap(queries);

    soc::SocParams p = params;
    const std::uint64_t bytes = ix.postings.size() * sizeof(Posting);
    p.ddrBytes = std::max<std::size_t>(
        p.ddrBytes, alignUp(bytes + (4 << 20), 1 << 20));
    soc::Soc s(p);
    s.memory().store().write(0, ix.postings.data(), bytes);

    Scores sc;
    sc.acc.assign(cfg.nQueries,
                  std::vector<std::int64_t>(cfg.nDocs, 0));

    s.core(0).dmem().store<std::uint64_t>(26 * 1024, 0);
    rt::AteCounter stealer(0, 26 * 1024);

    for (unsigned id = 0; id < cfg.nCores; ++id) {
        s.start(id, [&, id](core::DpCore &c) {
            rt::DmsCtl ctl(c, s.dmsFor(id));
            ate::Ate &ate = s.ateFor(id);
            core::IsaCosts isa = c.isa();

            // Work-steal tiles; the whole query batch's accumulator
            // for one tile (32 x 128 x 4 B = 16 KB) lives in DMEM.
            while (true) {
                std::uint64_t t = stealer.next(c, ate);
                if (t >= ix.nTiles)
                    break;
                ctl.resetArena();
                std::uint32_t first = ix.tileStart[t];
                std::uint32_t count = ix.tileStart[t + 1] - first;
                if (count == 0)
                    continue;

                // Zero the tile accumulator.
                c.dualIssue(cfg.nQueries * tileDocs / 2,
                            cfg.nQueries * tileDocs / 2);

                auto consume = [&](const Posting *pp,
                                   std::uint32_t n) {
                    for (std::uint32_t i = 0; i < n; ++i) {
                        const Posting &po = pp[i];
                        // Unpack + term lookup in the query map.
                        c.dualIssue(2, 4);
                        auto it = tm.find(po.term);
                        if (it == tm.end())
                            continue;
                        for (auto &[qi, wq] : it->second) {
                            // Q10.22 multiply-accumulate.
                            c.cycles(isa.mulCycles(22) + 2);
                            sc.acc[qi][t * tileDocs + po.docLocal] +=
                                std::int64_t(wq) *
                                std::int64_t(po.weight) >>
                                22;
                        }
                    }
                };

                if (cfg.naiveDms) {
                    // The naive scheme (Section 5.2): every
                    // (query-term, tile) range fetches a FULL 8 KB
                    // DMS buffer, uses the few postings it wanted,
                    // and discards the rest — the 0.26 GB/s case.
                    const std::uint32_t buf_rows = 8192 / 8;
                    const std::uint32_t total =
                        std::uint32_t(ix.postings.size());
                    for (auto &[term, lst] : tm) {
                        auto itr = ix.termRange.find(
                            {std::uint32_t(t), term});
                        if (itr == ix.termRange.end())
                            continue;
                        auto [a, b] = itr->second;
                        std::uint32_t fetch = std::min(
                            buf_rows, total - a);
                        auto h = ctl.setupDdrToDmem(
                            fetch * 2, 4, mem::Addr(a) * 8, 0, 0,
                            false);
                        ctl.push(h);
                        ctl.wfe(0);
                        consume(&ix.postings[a], b - a);
                        ctl.clearEvent(0);
                        ctl.resetArena();
                    }
                } else {
                    // Dynamic tiles: stream the whole block and
                    // consume everything (Section 5.2).
                    rt::StreamReader in(ctl, mem::Addr(first) * 8,
                                        std::uint64_t(count) * 8,
                                        16 * 1024, 4096, 2, 0, 0);
                    std::uint32_t at = first;
                    in.forEach([&](std::uint32_t,
                                   std::uint32_t blen) {
                        consume(&ix.postings[at], blen / 8);
                        at += blen / 8;
                    });
                }

                // Fold the tile's top-k candidates (cheap scan).
                c.dualIssue(cfg.nQueries * tileDocs,
                            cfg.nQueries * tileDocs / 2);
            }
        });
    }
    sim::Tick t = s.run();
    sim_assert(s.allFinished(), "simsearch kernels deadlocked");

    SimSearchResult r;
    r.seconds = double(t) * 1e-12;
    r.indexBytes = bytes;
    finish(r, cfg, sc);
    return r;
}

SimSearchResult
xeonSimSearch(const SimSearchConfig &cfg)
{
    sim::Rng rng{cfg.seed};
    Index ix = makeIndex(cfg, rng);
    auto queries = makeQueries(cfg, rng);
    TermMap tm = buildTermMap(queries);

    Scores sc;
    sc.acc.assign(cfg.nQueries,
                  std::vector<std::int64_t>(cfg.nDocs, 0));

    // Tiled CSR SpMM: only the query terms' postings are touched;
    // per-tile accumulators stay resident in the LLC.
    std::uint64_t useful = 0;
    std::uint64_t updates = 0;
    for (std::uint32_t t = 0; t < ix.nTiles; ++t) {
        for (auto &[term, lst] : tm) {
            auto itr = ix.termRange.find({t, term});
            if (itr == ix.termRange.end())
                continue;
            auto [a, b] = itr->second;
            useful += std::uint64_t(b - a) * sizeof(Posting);
            for (std::uint32_t i = a; i < b; ++i) {
                const Posting &po = ix.postings[i];
                for (auto &[qi, wq] : lst) {
                    sc.acc[qi][t * tileDocs + po.docLocal] +=
                        std::int64_t(wq) *
                        std::int64_t(po.weight) >>
                        22;
                    ++updates;
                }
            }
        }
    }

    xeon::XeonModel m;
    m.streamBytes(double(useful));
    m.scalarOps(double(updates) * 4 + double(useful) / 8 * 3);
    m.serialOps(double(cfg.nQueries) * cfg.topK * 64);
    m.endPhase();

    SimSearchResult r;
    r.seconds = m.seconds();
    r.indexBytes = ix.postings.size() * sizeof(Posting);
    finish(r, cfg, sc);
    return r;
}

AppResult
simSearchApp(const SimSearchConfig &cfg)
{
    SimSearchResult d = dpuSimSearch(soc::dpu40nm(), cfg);
    SimSearchResult x = xeonSimSearch(cfg);
    AppResult r;
    r.name = cfg.naiveDms ? "SimSearch (naive DMS)"
                          : "Similarity search";
    r.dpuSeconds = d.seconds;
    r.xeonSeconds = x.seconds;
    r.workUnits = double(d.indexBytes);
    r.unitName = "index bytes";
    r.matched = d.scoreChecksum == x.scoreChecksum &&
                d.topDocs == x.topDocs;
    return r;
}

} // namespace dpu::apps

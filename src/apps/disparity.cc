#include "apps/disparity.hh"

#include "apps/entry.hh"

#include <algorithm>
#include <cmath>

#include "rt/dms_ctl.hh"
#include "rt/sync.hh"
#include "sim/rng.hh"

namespace dpu::apps {

namespace {

struct Stereo
{
    std::uint32_t w, h;
    std::vector<std::uint8_t> left, right;
    std::vector<std::uint8_t> truth; ///< per-pixel true shift
};

/** Left image = smooth texture; right = left shifted by a
 *  piecewise-constant disparity field plus noise. */
Stereo
makeStereo(const DisparityConfig &cfg)
{
    Stereo st;
    st.w = cfg.width;
    st.h = cfg.height;
    st.left.resize(std::size_t(st.w) * st.h);
    st.right.resize(st.left.size());
    st.truth.resize(st.left.size());
    sim::Rng rng{cfg.seed};

    // Texture: sum of a few sinusoid-ish gradients + noise.
    for (std::uint32_t y = 0; y < st.h; ++y) {
        for (std::uint32_t x = 0; x < st.w; ++x) {
            int v = int(128 + 60 * std::sin(x * 0.21) +
                        40 * std::sin(y * 0.13 + x * 0.07));
            v += int(rng.below(17)) - 8;
            st.left[y * st.w + x] =
                std::uint8_t(std::clamp(v, 0, 255));
        }
    }
    // Disparity field: blocks of constant shift.
    const unsigned block = 64;
    std::vector<std::uint8_t> field(
        (st.w / block + 1) * (st.h / block + 1));
    for (auto &f : field)
        f = std::uint8_t(2 + rng.below(cfg.maxShift - 3));
    for (std::uint32_t y = 0; y < st.h; ++y) {
        for (std::uint32_t x = 0; x < st.w; ++x) {
            std::uint8_t d =
                field[(y / block) * (st.w / block + 1) + x / block];
            st.truth[y * st.w + x] = d;
            std::uint32_t sx = x + d < st.w ? x + d : st.w - 1;
            int v = st.left[y * st.w + sx] + int(rng.below(7)) - 3;
            st.right[y * st.w + x] =
                std::uint8_t(std::clamp(v, 0, 255));
        }
    }
    return st;
}

/** Shared functional kernel: box-filtered SAD argmin over shifts.
 *  Row band [y0, y1). */
void
disparityBand(const Stereo &st, const DisparityConfig &cfg,
              std::uint32_t y0, std::uint32_t y1,
              const std::vector<std::uint32_t> &sad_rows_scratch,
              std::vector<std::uint32_t> &best_cost,
              std::vector<std::uint8_t> &best_shift, unsigned shift)
{
    (void)sad_rows_scratch;
    const int r = int(cfg.window) / 2;
    const std::uint32_t w = st.w;
    for (std::uint32_t y = y0; y < y1; ++y) {
        for (std::uint32_t x = 0; x < w; ++x) {
            std::uint32_t cost = 0;
            for (int dy = -r; dy <= r; ++dy) {
                int yy = std::clamp(int(y) + dy, 0, int(st.h) - 1);
                for (int dx = -r; dx <= r; ++dx) {
                    int xx =
                        std::clamp(int(x) + dx, 0, int(w) - 1);
                    int xs = std::min<int>(xx + int(shift),
                                           int(w) - 1);
                    int d = int(st.left[yy * w + xs]) -
                            int(st.right[yy * w + xx]);
                    cost += std::uint32_t(d < 0 ? -d : d);
                }
            }
            std::size_t i = y * w + x;
            if (cost < best_cost[i]) {
                best_cost[i] = cost;
                best_shift[i] = std::uint8_t(shift);
            }
        }
    }
}

double
hitRate(const Stereo &st, const DisparityConfig &cfg,
        const std::vector<std::uint8_t> &got)
{
    std::uint64_t ok = 0, total = 0;
    for (std::uint32_t y = 0; y < st.h; ++y) {
        for (std::uint32_t x = 0; x + cfg.maxShift + cfg.window <
                                  st.w;
             ++x) {
            ++total;
            std::size_t i = y * st.w + x;
            int diff = int(got[i]) - int(st.truth[i]);
            ok += diff >= -1 && diff <= 1;
        }
    }
    return double(ok) / double(total);
}

} // namespace

DisparityResult
dpuDisparity(const soc::SocParams &params, const DisparityConfig &cfg)
{
    Stereo st = makeStereo(cfg);
    soc::SocParams p = params;
    const std::uint64_t px = std::uint64_t(st.w) * st.h;
    // Layout: left, right, cost map (4 B), shift map (1 B).
    const mem::Addr l_base = 0;
    const mem::Addr r_base = alignUp(px, 4096);
    const mem::Addr cost_base = alignUp(2 * r_base, 4096);
    const mem::Addr out_base = alignUp(cost_base + px * 4, 4096);
    p.ddrBytes = std::max<std::size_t>(
        p.ddrBytes, alignUp(out_base + px + (1 << 20), 1 << 20));
    soc::Soc s(p);
    stage(s, l_base, st.left);
    stage(s, r_base, st.right);

    std::vector<std::uint32_t> best_cost(px, ~0u);
    std::vector<std::uint8_t> best_shift(px, 0);

    rt::AteBarrier barrier(0, 26 * 1024, cfg.nCores);
    const std::uint32_t band = st.h / cfg.nCores;

    for (unsigned id = 0; id < cfg.nCores; ++id) {
        s.start(id, [&, id](core::DpCore &c) {
            rt::DmsCtl ctl(c, s.dmsFor(id));
            ate::Ate &ate = s.ateFor(id);
            std::uint32_t y0 = id * band;
            std::uint32_t y1 =
                id + 1 == cfg.nCores ? st.h : y0 + band;

            for (unsigned shift = 0; shift < cfg.maxShift; ++shift) {
                ctl.resetArena();
                // Stream the band's left+right rows (with halo) in;
                // stream the cost/argmin maps through DMEM and back.
                std::uint64_t band_px =
                    std::uint64_t(y1 - y0 + cfg.window) * st.w;
                rt::StreamReader inl(ctl,
                                     l_base + y0 * st.w,
                                     std::min<std::uint64_t>(
                                         band_px, px - y0 * st.w),
                                     0, 4096, 2, 0, 0);
                inl.forEach([&](std::uint32_t, std::uint32_t blen) {
                    c.cycles(blen / 16); // prefetch bookkeeping
                });
                rt::StreamReader inr(ctl,
                                     r_base + y0 * st.w,
                                     std::min<std::uint64_t>(
                                         band_px, px - y0 * st.w),
                                     0, 4096, 2, 0, 0);
                inr.forEach([&](std::uint32_t, std::uint32_t blen) {
                    c.cycles(blen / 16);
                });

                // The running min-cost map cannot stay resident:
                // DMEM holds the double-buffered image rows, halo
                // and argmin band, so the 4 B/px cost map streams
                // in and back out every shift.
                std::uint64_t n = std::uint64_t(y1 - y0) * st.w;
                rt::StreamReader inc(ctl, cost_base + y0 * st.w * 4,
                                     n * 4, 0, 4096, 2, 0, 0);
                inc.forEach([&](std::uint32_t, std::uint32_t blen) {
                    c.cycles(blen / 16);
                });

                disparityBand(st, cfg, y0, y1, {}, best_cost,
                              best_shift, shift);

                // Cost model: separable box SAD via running sums —
                // abs-diff + 2 incremental adds + compare/update,
                // dual-issued with the row loads/stores.
                c.dualIssue(4 * n, 3 * n);

                // Write back the updated min-cost / argmin rows.
                rt::StreamWriter outw(ctl,
                                      cost_base + y0 * st.w * 4,
                                      8192, 4096, 2, 8, 1);
                for (std::uint64_t done = 0; done < n * 4;
                     done += 4096) {
                    (void)outw.acquire();
                    outw.commit(std::uint32_t(
                        std::min<std::uint64_t>(4096, n * 4 - done)));
                }
                outw.finish();

                // Lockstep between vision kernels (Section 5.6).
                barrier.arrive(c, ate);
            }

            // Final argmin map out (1 B/px).
            std::uint64_t n = std::uint64_t(y1 - y0) * st.w;
            c.dmem().write(0, best_shift.data() + y0 * st.w,
                           std::min<std::uint64_t>(n, 8192));
            rt::StreamWriter outd(ctl, out_base + y0 * st.w, 8192,
                                  4096, 2, 8, 1);
            for (std::uint64_t done = 0; done < n; done += 4096) {
                (void)outd.acquire();
                outd.commit(std::uint32_t(alignUp(
                    std::min<std::uint64_t>(4096, n - done), 4)));
            }
            outd.finish();
        });
    }
    sim::Tick t = s.run();
    sim_assert(s.allFinished(), "disparity kernels deadlocked");

    DisparityResult r;
    r.seconds = double(t) * 1e-12;
    r.disparity = best_shift;
    r.groundTruthHitRate = hitRate(st, cfg, best_shift);
    return r;
}

DisparityResult
xeonDisparity(const DisparityConfig &cfg)
{
    Stereo st = makeStereo(cfg);
    const std::uint64_t px = std::uint64_t(st.w) * st.h;
    std::vector<std::uint32_t> best_cost(px, ~0u);
    std::vector<std::uint8_t> best_shift(px, 0);

    xeon::XeonModel m;
    for (unsigned shift = 0; shift < cfg.maxShift; ++shift) {
        disparityBand(st, cfg, 0, st.h, {}, best_cost, best_shift,
                      shift);
        // SD-VBS-style full-image passes per shift: read both
        // images, read+write the 4 B cost map and 1 B argmin map;
        // AVX2 integer abs-diff + running sums.
        m.streamBytes(double(px) * (1 + 1 + 8 + 2));
        m.simdOps(double(px) * 6);
        m.endPhase();
    }

    DisparityResult r;
    r.seconds = m.seconds();
    r.disparity = best_shift;
    r.groundTruthHitRate = hitRate(st, cfg, best_shift);
    return r;
}

AppResult
disparityApp(const DisparityConfig &cfg)
{
    DisparityResult d = dpuDisparity(soc::dpu40nm(), cfg);
    DisparityResult x = xeonDisparity(cfg);
    AppResult r;
    r.name = "Disparity";
    r.dpuSeconds = d.seconds;
    r.xeonSeconds = x.seconds;
    r.workUnits =
        double(cfg.width) * cfg.height * cfg.maxShift;
    r.unitName = "pixel-shifts";
    r.matched = d.disparity == x.disparity &&
                d.groundTruthHitRate > 0.80;
    return r;
}

} // namespace dpu::apps

/**
 * @file
 * Support Vector Machine training (Section 5.1).
 *
 * A variation of Cao et al.'s parallel SMO, as in the paper: every
 * iteration each dpCore scans its slice of the samples, maintains
 * the error cache f, and proposes its local maximum-violating pair;
 * a designated master reduces the proposals over the ATE, updates
 * the two alphas and the (linear-kernel) weight vector, and
 * broadcasts the update. Kernels are generated on the fly from
 * DMS-streamed samples — the paper found that faster than
 * maintaining a kernel cache on the DPU.
 *
 * All DPU arithmetic is Q10.22 fixed point; the coarser fixed-point
 * KKT tolerance converges in fewer iterations with no accuracy loss
 * (Section 5.1 reports ~35% fewer).
 */

#ifndef DPU_APPS_SVM_HH
#define DPU_APPS_SVM_HH

#include <cstdint>

#include "apps/common.hh"

namespace dpu::apps {

struct SvmConfig
{
    std::uint32_t nTrain = 8192;  ///< must divide by nCores
    std::uint32_t nTest = 2048;
    std::uint32_t dims = 28;      ///< HIGGS-like feature count
    double c = 1.0;               ///< SMO box constraint
    unsigned maxIters = 400;
    std::uint64_t seed = 17;
    unsigned nCores = 32;
};

struct SvmResult
{
    double seconds = 0;
    unsigned iterations = 0;
    double trainAccuracy = 0;
    double testAccuracy = 0;
};

SvmResult dpuSvm(const soc::SocParams &params, const SvmConfig &cfg);
SvmResult xeonSvm(const SvmConfig &cfg);

} // namespace dpu::apps

#endif // DPU_APPS_SVM_HH

/**
 * @file
 * Internal head-to-head entry points, one per Section 5 app.
 *
 * These are the typed run functions the registry's AppSpec adapters
 * call: DPU run + Xeon baseline + validation, folded into one
 * AppResult. They used to be declared in each app's public header
 * as deprecated free-function entry points; the registry
 * (apps/registry.hh) is now the sole public entry path, and this
 * header exists only so the definitions in the app .cc files and
 * the adapters in registry.cc agree on a signature. Do not include
 * it outside src/apps/.
 */

#ifndef DPU_APPS_ENTRY_HH
#define DPU_APPS_ENTRY_HH

#include "apps/common.hh"
#include "apps/disparity.hh"
#include "apps/hll.hh"
#include "apps/json.hh"
#include "apps/simsearch.hh"
#include "apps/sql/filter.hh"
#include "apps/sql/groupby.hh"
#include "apps/svm.hh"

namespace dpu::apps {

AppResult svmApp(const SvmConfig &cfg);
AppResult simSearchApp(const SimSearchConfig &cfg);
AppResult hllApp(const HllConfig &cfg);
AppResult jsonApp(const JsonConfig &cfg);
AppResult disparityApp(const DisparityConfig &cfg);

namespace sql {
AppResult filterApp(const FilterConfig &cfg);
AppResult groupByLowApp(const GroupByConfig &cfg);
AppResult groupByHighApp(const GroupByConfig &cfg);
} // namespace sql

} // namespace dpu::apps

#endif // DPU_APPS_ENTRY_HH

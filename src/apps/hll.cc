#include "apps/hll.hh"

#include "apps/entry.hh"

#include <cmath>
#include <vector>

#include "rt/dms_ctl.hh"
#include "rt/sync.hh"
#include "sim/rng.hh"
#include "util/crc32.hh"
#include "util/murmur64.hh"

namespace dpu::apps {

namespace hlldetail {

/** Synthetic multiset with a known number of distinct values. */
std::vector<std::uint64_t>
makeElements(const HllConfig &cfg)
{
    std::vector<std::uint64_t> v(cfg.nElements);
    sim::Rng rng{cfg.seed};
    for (auto &e : v) {
        // Distinct values are a bijective mix of 0..cardinality-1.
        std::uint64_t x = rng.below(cfg.cardinality);
        x = (x + 0x9e3779b97f4a7c15ull) * 0xbf58476d1ce4e5b9ull;
        e = x;
    }
    return v;
}

/**
 * The estimator update both platforms share. @return the register
 * index and rank for @p e. NTZ and NLZ variants are statistically
 * interchangeable on a well-behaved hash (Section 5.4).
 */
void
update(std::uint64_t h, unsigned p_bits, bool use_ntz,
          std::vector<std::uint8_t> &regs)
{
    unsigned rank;
    std::uint32_t idx;
    if (use_ntz) {
        // NTZ form: index from the low bits, rank from trailing
        // zeros of the remainder; the guard bit bounds the rank.
        idx = std::uint32_t(h) & ((1u << p_bits) - 1);
        std::uint64_t w = (h >> p_bits) | (1ull << (64 - p_bits));
        rank = unsigned(__builtin_ctzll(w)) + 1;
    } else {
        // Classic NLZ form: index from the top bits.
        idx = std::uint32_t(h >> (64 - p_bits));
        std::uint64_t w = (h << p_bits) | (1ull << (p_bits - 1));
        rank = unsigned(__builtin_clzll(w)) + 1;
    }
    if (rank > regs[idx])
        regs[idx] = std::uint8_t(rank);
}

/** Standard HLL harmonic-mean estimate with small-range correction. */
double
estimate(const std::vector<std::uint8_t> &regs)
{
    const double m = double(regs.size());
    double sum = 0;
    unsigned zeros = 0;
    for (std::uint8_t r : regs) {
        sum += std::ldexp(1.0, -int(r));
        zeros += r == 0;
    }
    const double alpha = 0.7213 / (1.0 + 1.079 / m);
    double e = alpha * m * m / sum;
    if (e <= 2.5 * m && zeros > 0)
        e = m * std::log(m / zeros);
    return e;
}

} // namespace hlldetail

using hlldetail::estimate;
using hlldetail::makeElements;
using hlldetail::update;

HllResult
dpuHll(const soc::SocParams &params, const HllConfig &cfg)
{
    soc::SocParams p = params;
    const std::uint64_t bytes = cfg.nElements * 8;
    const std::uint64_t chunk_bytes = 64 << 10;
    const std::uint64_t n_chunks =
        (bytes + chunk_bytes - 1) / chunk_bytes;
    const std::uint32_t m = 1u << cfg.pBits;
    const mem::Addr data_base = 0;
    const mem::Addr regs_base = alignUp(bytes + 4096, 4096);
    p.ddrBytes = std::max<std::size_t>(
        p.ddrBytes, regs_base + 32ull * m + (1 << 20));
    soc::Soc s(p);

    stage(s, data_base, makeElements(cfg));

    // DMEM layout: stream tiles 2 x 8 KB at 0; registers at 16 KB.
    constexpr std::uint32_t tile = 8192;
    constexpr std::uint32_t regOff = 16 * 1024;
    constexpr std::uint32_t syncOff = 26 * 1024;
    sim_assert(m <= 8 * 1024, "register file exceeds DMEM budget");

    s.core(0).dmem().store<std::uint64_t>(syncOff, 0);
    rt::AteCounter stealer(0, syncOff);
    rt::AteBarrier barrier(0, syncOff + 8, cfg.nCores);

    for (unsigned id = 0; id < cfg.nCores; ++id) {
        s.start(id, [&, id](core::DpCore &c) {
            rt::DmsCtl ctl(c, s.dmsFor(id));
            ate::Ate &ate = s.ateFor(id);

            for (std::uint32_t i = 0; i < m; ++i)
                c.dmem().store<std::uint8_t>(regOff + i, 0);
            c.dualIssue(m / 8, m / 8);

            std::vector<std::uint8_t> regs(m, 0);
            // Work stealing over 64 KB chunks (Section 5.4).
            while (true) {
                std::uint64_t j = stealer.next(c, ate);
                if (j >= n_chunks)
                    break;
                ctl.resetArena();
                std::uint64_t off = j * chunk_bytes;
                std::uint64_t len =
                    std::min(chunk_bytes, bytes - off);
                rt::StreamReader in(ctl, data_base + off, len, 0,
                                    tile, 2, 0, 0);
                in.forEach([&](std::uint32_t boff,
                               std::uint32_t blen) {
                    for (std::uint32_t i = 0; i < blen; i += 8) {
                        std::uint64_t e =
                            c.dmem().load<std::uint64_t>(boff + i);
                        std::uint64_t h;
                        if (cfg.hash == HllHash::Crc32) {
                            // Two chained CRC32 steps build a
                            // 64-bit-quality hash; each is one
                            // cycle.
                            std::uint32_t lo = c.crcHash64(e);
                            std::uint32_t hi =
                                c.crcHash(lo ^ std::uint32_t(e >> 32));
                            h = (std::uint64_t(hi) << 32) | lo;
                        } else {
                            h = util::murmur64Key(e);
                            // Charge the iterative multiplier for
                            // every 64x64 multiply murmur performs.
                            for (std::uint64_t k = 0;
                                 k < util::murmur64MulCount(8); ++k)
                                c.mul(64);
                            c.alu(10); // shifts/xors
                        }
                        // Register update path.
                        if (cfg.useNtz)
                            (void)c.ntz(h << cfg.pBits | 1);
                        else
                            (void)c.nlz(h << cfg.pBits | 1);
                        update(h, cfg.pBits, cfg.useNtz, regs);
                        // load + compare + conditional store, paired
                        // with the index arithmetic.
                        c.dualIssue(3, 3);
                    }
                });
            }

            // Publish registers (DMEM -> DDR) and merge at core 0.
            c.dmem().write(regOff, regs.data(), m);
            c.dualIssue(m / 8, m / 8);
            ctl.dmemToDdr().rows(m / 4).width(4)
                .from(regOff)
                .to(regs_base + std::uint64_t(id) * m)
                .event(4).noAutoInc().push(1);
            ctl.wfe(4);
            ctl.clearEvent(4);

            barrier.arrive(c, ate);

            if (id == 0) {
                // Max-merge the 32 register files; tiny next to the
                // scan.
                rt::StreamReader tabs(ctl, regs_base,
                                      std::uint64_t(cfg.nCores) * m,
                                      0, tile, 2, 0, 0);
                std::vector<std::uint8_t> merged(m, 0);
                std::uint32_t k = 0;
                tabs.forEach([&](std::uint32_t boff,
                                 std::uint32_t blen) {
                    for (std::uint32_t i = 0; i < blen; ++i) {
                        std::uint8_t r =
                            c.dmem().load<std::uint8_t>(boff + i);
                        if (r > merged[k])
                            merged[k] = r;
                        k = (k + 1) % m;
                    }
                    c.dualIssue(blen, blen);
                });
                c.dmem().write(regOff, merged.data(), m);
                ctl.dmemToDdr().rows(m / 4).width(4)
                    .from(regOff).to(regs_base)
                    .event(5).noAutoInc().push(1);
                ctl.wfe(5);
            }
        });
    }
    sim::Tick t = s.run();
    sim_assert(s.allFinished(), "HLL kernels deadlocked");

    HllResult r;
    r.seconds = double(t) * 1e-12;
    r.elements = cfg.nElements;
    auto merged = unstage<std::uint8_t>(s, regs_base, m);
    r.estimate = estimate(merged);
    return r;
}

HllResult
xeonHll(const HllConfig &cfg)
{
    auto data = makeElements(cfg);
    const std::uint32_t m = 1u << cfg.pBits;
    std::vector<std::uint8_t> regs(m, 0);
    for (std::uint64_t e : data) {
        std::uint64_t h;
        if (cfg.hash == HllHash::Crc32) {
            std::uint32_t lo = util::crc32Key64(e);
            std::uint32_t hi =
                util::crc32Key(lo ^ std::uint32_t(e >> 32));
            h = (std::uint64_t(hi) << 32) | lo;
        } else {
            h = util::murmur64Key(e);
        }
        update(h, cfg.pBits, cfg.useNtz, regs);
    }

    xeon::XeonModel model;
    const double n = double(cfg.nElements);
    model.streamBytes(n * 8);
    if (cfg.hash == HllHash::Crc32) {
        // SSE4.2 CRC32 runs at ~1/cycle; a few uops around it.
        model.scalarOps(n * 5);
    } else {
        // Murmur is ~10 fast uops on a full multiplier.
        model.scalarOps(n * 10);
    }
    model.scalarOps(n * 4); // tzcnt + register update
    model.serialOps(double(m) * 36);
    model.endPhase();

    HllResult r;
    r.seconds = model.seconds();
    r.elements = cfg.nElements;
    r.estimate = estimate(regs);
    return r;
}

AppResult
hllApp(const HllConfig &cfg)
{
    HllResult d = dpuHll(soc::dpu40nm(), cfg);
    HllResult x = xeonHll(cfg);
    AppResult r;
    r.name = cfg.hash == HllHash::Crc32 ? "HLL (CRC32)"
                                        : "HLL (Murmur64)";
    r.dpuSeconds = d.seconds;
    r.xeonSeconds = x.seconds;
    r.workUnits = double(cfg.nElements);
    r.unitName = "elements";
    // Same hash + same estimator on both sides: exact agreement,
    // and both must sit near the true cardinality.
    double err = std::abs(d.estimate - double(cfg.cardinality)) /
                 double(cfg.cardinality);
    r.matched = d.estimate == x.estimate && err < 0.05;
    return r;
}

} // namespace dpu::apps

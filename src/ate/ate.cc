#include "ate/ate.hh"

#include "sim/fault.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace dpu::ate {

namespace {

sim::Tick
cyc(sim::Cycles c)
{
    return sim::dpCoreClock.cyclesToTicks(c);
}

const char *
ateOpName(AteOp op)
{
    switch (op) {
      case AteOp::Load: return "Load";
      case AteOp::Store: return "Store";
      case AteOp::FetchAdd: return "FetchAdd";
      case AteOp::CompareSwap: return "CompareSwap";
      case AteOp::SwRpc: return "SwRpc";
    }
    return "?";
}

} // namespace

Ate::Ate(sim::EventQueue &eq_, std::vector<core::DpCore *> cores_,
         const AteParams &params)
    : eq(eq_), cores(std::move(cores_)),
      baseId(cores.empty() ? 0 : cores.front()->id()), p(params),
      stats("ate"), pending(cores.size()),
      lastDeliver(cores.size() * cores.size(), 0)
{
    stats.addFlushHook([this] { flushStats(); });
}

void
Ate::flushStats()
{
    shLoads.flushInto(stats, "loads");
    shStores.flushInto(stats, "stores");
    shFetchAdds.flushInto(stats, "fetchAdds");
    shCompareSwaps.flushInto(stats, "compareSwaps");
}

unsigned
Ate::local(unsigned global_id) const
{
    sim_assert(global_id >= baseId &&
               global_id - baseId < cores.size(),
               "core %u is outside this ATE complex", global_id);
    return global_id - baseId;
}

sim::Tick
Ate::oneWay(unsigned src, unsigned dst) const
{
    bool same_macro = src / core::coresPerMacro ==
                      dst / core::coresPerMacro;
    sim::Cycles c = 2 * p.localHop + (same_macro ? 0 : p.macroHop);
    return cyc(c);
}

sim::Tick
Ate::deliveryTick(unsigned src, unsigned dst)
{
    sim::Tick &last =
        lastDeliver[local(src) * cores.size() + local(dst)];
    sim::Tick t = std::max(eq.now() + oneWay(src, dst),
                           last + cyc(p.linkSpacing));
    last = t;
    return t;
}

std::uint64_t
Ate::doRemoteOp(unsigned target, AteOp op, mem::Addr addr,
                std::uint64_t a, std::uint64_t b, unsigned bytes,
                sim::Tick when, sim::Tick &op_done)
{
    sim_assert(bytes == 1 || bytes == 2 || bytes == 4 || bytes == 8,
               "bad ATE op width %u", bytes);
    core::DpCore &r = *cores[local(target)];
    const std::uint64_t mask =
        bytes == 8 ? ~0ull : ((1ull << (bytes * 8)) - 1);

    auto read = [&](sim::Tick t, sim::Tick &done) -> std::uint64_t {
        std::uint64_t v = 0;
        if (mem::isDmemAddr(addr)) {
            sim_assert(mem::dmemOwner(addr) == target,
                       "ATE op at core %u for DMEM it does not own",
                       target);
            r.dmem().read(mem::dmemOffset(addr), &v, bytes);
            done = t + cyc(1);
        } else {
            done = r.l1d().read(addr, &v, bytes, t);
        }
        return v & mask;
    };
    auto write = [&](std::uint64_t v, sim::Tick t, sim::Tick &done) {
        if (mem::isDmemAddr(addr)) {
            sim_assert(mem::dmemOwner(addr) == target,
                       "ATE op at core %u for DMEM it does not own",
                       target);
            r.dmem().write(mem::dmemOffset(addr), &v, bytes);
            done = t + cyc(1);
        } else {
            done = r.l1d().write(addr, &v, bytes, t);
        }
    };

    std::uint64_t old = 0;
    sim::Tick t = when;
    switch (op) {
      case AteOp::Load:
        old = read(t, t);
        t += cyc(p.opLoad);
        ++shLoads;
        break;
      case AteOp::Store:
        write(a & mask, t, t);
        t += cyc(p.opStore);
        ++shStores;
        break;
      case AteOp::FetchAdd: {
        old = read(t, t);
        write((old + std::uint64_t(std::int64_t(a))) & mask, t, t);
        t += cyc(p.opAmo);
        ++shFetchAdds;
        break;
      }
      case AteOp::CompareSwap: {
        old = read(t, t);
        if (old == (a & mask))
            write(b & mask, t, t);
        t += cyc(p.opAmo);
        ++shCompareSwaps;
        break;
      }
      default:
        panic("doRemoteOp on a software RPC");
    }

    // The op appears as a stall in the remote instruction stream.
    r.injectStall(t - when);
    op_done = t;
    return old;
}

void
Ate::issue(core::DpCore &c, unsigned target, AteOp op, mem::Addr addr,
           std::uint64_t a, std::uint64_t b, unsigned bytes)
{
    c.sync();
    Outstanding &o = pending[local(c.id())];
    // The ISA allows one outstanding request; back-to-back issues
    // without waitResponse are a programming error on chip, so here.
    sim_assert(!o.busy,
               "core %u issued a second ATE request while one is "
               "outstanding", c.id());
    o.busy = true;
    o.ready = false;
    const std::uint64_t gen = ++o.gen;

    const unsigned src = c.id();

    if (op == AteOp::SwRpc)
        panic("use swRpc() for software RPCs");

    // Fault plane: the request message can be lost in the crossbar
    // (the outstanding slot stays armed — recovery is a bounded wait
    // plus reissue) or its delivery can be delayed by `mag` ticks.
    if (sim::faultPlane().active()) {
        if (sim::faultPlane().fires(sim::FaultSite::AteDrop, eq.now(),
                                    int(src))) {
            ++stats.counter("droppedRequests");
            DPU_TRACE_INSTANT(sim::TraceCat::Ate, src, "reqDrop",
                              eq.now(), "target", target);
            return;
        }
        std::uint64_t extra = 0;
        if (sim::faultPlane().fires(sim::FaultSite::AteDelay,
                                    eq.now(), int(src), &extra)) {
            ++stats.counter("delayedRequests");
            // Charge the link too, so FIFO ordering holds.
            lastDeliver[local(src) * cores.size() + local(target)] +=
                extra;
        }
    }

    sim::Tick deliver = deliveryTick(src, target);

    // RPC round-trip span: 'b' at issue on the source core's track,
    // an 'X' for the remote op on the target's track, 'e' when the
    // response arrives back at the source.
    const char *op_name = ateOpName(op);
    std::uint32_t span_id = 0;
    if (DPU_TRACE_ARMED) {
        span_id = DPU_TRACE_NEXT_ID();
        DPU_TRACE_SPAN_BEGIN(sim::TraceCat::Ate, src, op_name,
                             span_id, eq.now(), "target", target,
                             nullptr, 0);
    }

    eq.schedule(deliver, [this, src, target, op, addr, a, b, bytes,
                          op_name, span_id, gen] {
        sim::Tick op_done = 0;
        sim::Tick op_start = eq.now();
        std::uint64_t value = doRemoteOp(target, op, addr, a, b,
                                         bytes, op_start, op_done);
        DPU_TRACE_COMPLETE(sim::TraceCat::Ate, target, op_name,
                           op_start, op_done - op_start, "src", src,
                           nullptr, 0);
        sim::Tick resp = op_done + oneWay(target, src);
        eq.schedule(resp, [this, src, value, op_name, span_id, gen] {
            if (span_id) {
                DPU_TRACE_SPAN_END(sim::TraceCat::Ate, src, op_name,
                                   span_id, eq.now());
            }
            Outstanding &out = pending[local(src)];
            if (out.gen != gen) {
                // The requester abandoned this request (bounded wait
                // timed out); drop the response on the floor.
                ++stats.counter("staleResponses");
                return;
            }
            out.ready = true;
            out.value = value;
            cores[local(src)]->wake(eq.now());
        }, sim::EvTag::Ate);
    }, sim::EvTag::Ate);
}

std::uint64_t
Ate::waitResponse(core::DpCore &c)
{
    Outstanding &o = pending[local(c.id())];
    sim_assert(o.busy, "waitResponse with no outstanding ATE request");
    c.blockUntil([&o] { return o.ready; });
    o.busy = false;
    return o.value;
}

bool
Ate::waitResponseFor(core::DpCore &c, sim::Tick timeout,
                     std::uint64_t &value)
{
    Outstanding &o = pending[local(c.id())];
    sim_assert(o.busy, "waitResponseFor with no outstanding request");
    c.sync();
    const sim::Tick deadline = eq.now() + timeout;
    core::DpCore *cp = &c;
    // Unconditional deadline wake; wake() is a no-op unless blocked,
    // and blockUntil re-checks its predicate on spurious wakes.
    eq.schedule(deadline, [this, cp] { cp->wake(eq.now()); },
                sim::EvTag::Ate);
    c.blockUntil(
        [this, &o, deadline] { return o.ready || eq.now() >= deadline; });
    if (!o.ready) {
        abandonRequest(c);
        return false;
    }
    o.busy = false;
    value = o.value;
    return true;
}

void
Ate::abandonRequest(core::DpCore &c)
{
    Outstanding &o = pending[local(c.id())];
    sim_assert(o.busy, "abandonRequest with no outstanding request");
    o.busy = false;
    o.ready = false;
    ++o.gen;
    ++stats.counter("abandonedRequests");
}

std::uint64_t
Ate::remoteLoad(core::DpCore &c, unsigned target, mem::Addr addr,
                unsigned bytes)
{
    issue(c, target, AteOp::Load, addr, 0, 0, bytes);
    return waitResponse(c);
}

void
Ate::remoteStore(core::DpCore &c, unsigned target, mem::Addr addr,
                 std::uint64_t value, unsigned bytes)
{
    issue(c, target, AteOp::Store, addr, value, 0, bytes);
    waitResponse(c);
}

std::uint64_t
Ate::fetchAdd(core::DpCore &c, unsigned target, mem::Addr addr,
              std::int64_t delta, unsigned bytes)
{
    issue(c, target, AteOp::FetchAdd, addr, std::uint64_t(delta), 0,
          bytes);
    return waitResponse(c);
}

std::uint64_t
Ate::compareSwap(core::DpCore &c, unsigned target, mem::Addr addr,
                 std::uint64_t expect, std::uint64_t desired,
                 unsigned bytes)
{
    issue(c, target, AteOp::CompareSwap, addr, expect, desired,
          bytes);
    return waitResponse(c);
}

void
Ate::swRpc(core::DpCore &c, unsigned target,
           std::function<void(core::DpCore &)> fn, bool wait)
{
    c.sync();
    Outstanding &o = pending[local(c.id())];
    sim_assert(!o.busy,
               "core %u issued an ATE sw RPC while a request is "
               "outstanding", c.id());
    o.busy = true;
    o.ready = false;
    const std::uint64_t gen = ++o.gen;
    ++stats.counter("swRpcs");

    const unsigned src = c.id();
    sim::Tick deliver = deliveryTick(src, target) + cyc(p.swDeliver);

    std::uint32_t span_id = 0;
    if (DPU_TRACE_ARMED) {
        span_id = DPU_TRACE_NEXT_ID();
        DPU_TRACE_SPAN_BEGIN(sim::TraceCat::Ate, src, "SwRpc",
                             span_id, eq.now(), "target", target,
                             nullptr, 0);
    }

    eq.schedule(deliver, [this, src, target, span_id, gen,
                          fn = std::move(fn)] {
        cores[local(target)]->postInterrupt(
            [this, src, target, span_id, gen, fn](core::DpCore &rc) {
                fn(rc);
                // Ack once the handler ran to completion.
                sim::Tick resp =
                    rc.now() + oneWay(target, src);
                eq.schedule(std::max(resp, eq.now()),
                            [this, src, span_id, gen] {
                                if (span_id) {
                                    DPU_TRACE_SPAN_END(
                                        sim::TraceCat::Ate, src,
                                        "SwRpc", span_id, eq.now());
                                }
                                unsigned l = local(src);
                                if (pending[l].gen != gen) {
                                    ++stats.counter(
                                        "staleResponses");
                                    return;
                                }
                                pending[l].ready = true;
                                pending[l].value = 0;
                                cores[l]->wake(eq.now());
                            },
                            sim::EvTag::Ate);
            });
    }, sim::EvTag::Ate);

    if (wait)
        waitResponse(c);
}

} // namespace dpu::ate

/**
 * @file
 * The Atomic Transaction Engine (Section 2.3).
 *
 * A two-level crossbar (8 dpCores per macro crossbar, 4 macros on
 * the top-level crossbar) carrying messages with guaranteed
 * point-to-point FIFO ordering. Messages are remote procedure calls
 * executed by hardware at the receiving dpCore:
 *
 *  - Hardware RPCs: load, store, atomic fetch-and-add and
 *    compare-and-swap on any DDR or DMEM address *at the remote
 *    core*. The op is injected into the remote pipeline (it appears
 *    as a stall there, no interrupt, no I-cache perturbation) and —
 *    crucially — DDR addresses go through the REMOTE core's cache,
 *    which is why pinning a shared structure to one owner core
 *    makes ATE access to it coherent without hardware coherence.
 *  - Software RPCs: interrupt the remote core and run a
 *    pre-installed handler to completion.
 *
 * A core may have one ATE request outstanding; it may overlap
 * independent instructions before blocking on the response
 * (Section 2.3, Figure 2).
 */

#ifndef DPU_ATE_ATE_HH
#define DPU_ATE_ATE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "core/dp_core.hh"
#include "mem/addr.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace dpu::ate {

/** Crossbar and op latencies (cycles at the 800 MHz core clock). */
struct AteParams
{
    /** dpCore <-> macro crossbar hop. */
    sim::Cycles localHop = 6;
    /** Macro crossbar <-> top-level crossbar extra hops (one way). */
    sim::Cycles macroHop = 10;
    /** Remote pipeline injection cost per op type. */
    sim::Cycles opLoad = 4;
    sim::Cycles opStore = 2;
    sim::Cycles opAmo = 8;
    /** Queueing + dispatch before the remote interrupt for sw RPCs. */
    sim::Cycles swDeliver = 24;
    /** Minimum spacing between deliveries on one (src,dst) pair. */
    sim::Cycles linkSpacing = 1;
};

/** Hardware RPC opcodes. */
enum class AteOp : std::uint8_t
{
    Load,
    Store,
    FetchAdd,
    CompareSwap,
    SwRpc,
};

/** The ATE block of one DPU. */
class Ate
{
  public:
    /**
     * @param cores The complex's dpCores in id order (the crossbar
     *              only spans one 32-core complex). Core ids in the
     *              public API are global; they are mapped onto this
     *              vector internally.
     */
    Ate(sim::EventQueue &eq, std::vector<core::DpCore *> cores,
        const AteParams &params = AteParams{});

    // ------------------------------------------------------------
    // Blocking hardware RPCs (issue + wait in one call)
    // ------------------------------------------------------------

    /** Remote load of 1/2/4/8 bytes at @p addr via core @p target. */
    std::uint64_t remoteLoad(core::DpCore &c, unsigned target,
                             mem::Addr addr, unsigned bytes);

    /** Remote store; see remoteLoad. */
    void remoteStore(core::DpCore &c, unsigned target, mem::Addr addr,
                     std::uint64_t value, unsigned bytes);

    /** Atomic fetch-and-add at the remote core; returns old value. */
    std::uint64_t fetchAdd(core::DpCore &c, unsigned target,
                           mem::Addr addr, std::int64_t delta,
                           unsigned bytes);

    /**
     * Atomic compare-and-swap at the remote core; returns the value
     * observed (== @p expect on success).
     */
    std::uint64_t compareSwap(core::DpCore &c, unsigned target,
                              mem::Addr addr, std::uint64_t expect,
                              std::uint64_t desired, unsigned bytes);

    // ------------------------------------------------------------
    // Split-phase interface ("process regular instructions before
    // eventually blocking for response", Section 2.3)
    // ------------------------------------------------------------

    /** Issue a hardware RPC without blocking (one outstanding). */
    void issue(core::DpCore &c, unsigned target, AteOp op,
               mem::Addr addr, std::uint64_t a = 0,
               std::uint64_t b = 0, unsigned bytes = 8);

    /** Block until the outstanding request's response arrives. */
    std::uint64_t waitResponse(core::DpCore &c);

    /**
     * Bounded waitResponse: give up after @p timeout ticks. On
     * timeout the outstanding request is abandoned (its generation
     * is bumped, so a late response is discarded as stale) and the
     * core may issue again — the primitive under rt::ReliableAte's
     * retry loop. @return true with @p value filled on response.
     */
    bool waitResponseFor(core::DpCore &c, sim::Tick timeout,
                         std::uint64_t &value);

    /**
     * Abandon the outstanding request without waiting; a response
     * already in flight is discarded on arrival (counted as
     * "staleResponses").
     */
    void abandonRequest(core::DpCore &c);

    // ------------------------------------------------------------
    // Software RPCs
    // ------------------------------------------------------------

    /**
     * Run @p fn on @p target's core (interrupt + handler). Blocks
     * until the handler has completed and the ack returned when
     * @p wait is true.
     */
    void swRpc(core::DpCore &c, unsigned target,
               std::function<void(core::DpCore &)> fn,
               bool wait = true);

    sim::StatGroup &statGroup() { return stats; }

  private:
    struct Outstanding
    {
        bool busy = false;
        bool ready = false;
        std::uint64_t value = 0;
        /** Bumped per issue and per abandon; an in-flight response
         *  whose captured generation mismatches is stale. */
        std::uint64_t gen = 0;
    };

    /** One-way message latency between two cores, in ticks. */
    sim::Tick oneWay(unsigned src, unsigned dst) const;

    /** FIFO-ordered delivery tick for the (src,dst) link. */
    sim::Tick deliveryTick(unsigned src, unsigned dst);

    /** Execute a hardware op at the remote core at @p when. */
    std::uint64_t doRemoteOp(unsigned target, AteOp op,
                             mem::Addr addr, std::uint64_t a,
                             std::uint64_t b, unsigned bytes,
                             sim::Tick when, sim::Tick &op_done);

    /** Global core id -> index into the complex's core vector. */
    unsigned local(unsigned global_id) const;

    sim::EventQueue &eq;
    std::vector<core::DpCore *> cores;
    unsigned baseId;
    AteParams p;
    sim::StatGroup stats;
    /** Deferred per-RPC counters (see sim/stats.hh); folded in by
     *  the group's flush hook. */
    sim::DeferredCounter shLoads, shStores, shFetchAdds,
        shCompareSwaps;
    void flushStats();

    std::vector<Outstanding> pending;
    /** lastDeliver[src * nCores + dst]. */
    std::vector<sim::Tick> lastDeliver;
};

} // namespace dpu::ate

#endif // DPU_ATE_ATE_HH

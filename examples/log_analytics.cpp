/**
 * @file
 * Real-time log/telemetry analytics — one of the intro's motivating
 * workloads: a stream of JSON telemetry records is parsed on the
 * dpCores (jump-table FSM, DMS triple buffering) and the number of
 * distinct entities is estimated with HyperLogLog (single-cycle
 * CRC32 hashing, NTZ ranks, ATE work stealing).
 *
 *   $ ./log_analytics [records] [distinct]
 */

#include <cstdio>
#include <cstdlib>

#include "apps/hll.hh"
#include "apps/json.hh"

using namespace dpu;
using namespace dpu::apps;

int
main(int argc, char **argv)
{
    sim::setVerbose(false);

    JsonConfig jcfg;
    jcfg.nRecords = argc > 1
                        ? std::uint32_t(std::atoi(argv[1]))
                        : 24 << 10;
    JsonResult parsed = dpuJson(soc::dpu40nm(), jcfg);
    std::printf("ingest : parsed %llu JSON records (%llu fields, "
                "%.1f MB) at %.2f GB/s on 32 dpCores\n",
                (unsigned long long)parsed.tally.records,
                (unsigned long long)parsed.tally.fields,
                parsed.bytes / 1e6, parsed.gbPerSec());

    HllConfig hcfg;
    hcfg.nElements = 1 << 21;
    hcfg.cardinality =
        argc > 2 ? std::uint64_t(std::atoll(argv[2])) : 1 << 18;
    HllResult est = dpuHll(soc::dpu40nm(), hcfg);
    double err = 100.0 * (est.estimate / double(hcfg.cardinality) -
                          1.0);
    std::printf("distinct: HLL over %llu events -> estimate %.0f "
                "(true %llu, error %+.2f%%) at %.2f GB/s\n",
                (unsigned long long)hcfg.nElements, est.estimate,
                (unsigned long long)hcfg.cardinality, err,
                est.gbPerSec());

    // The Murmur64 contrast from Section 5.4.
    hcfg.hash = HllHash::Murmur64;
    HllResult mur = dpuHll(soc::dpu40nm(), hcfg);
    std::printf("          (Murmur64 variant: %.2f GB/s — the "
                "iterative multiplier hurts, Section 5.4)\n",
                mur.gbPerSec());
    return 0;
}

/**
 * @file
 * SQL offload scenario (the paper's headline use case): a host —
 * the A9 complex, standing in for the commercial database the DPU
 * attaches to — posts query descriptors to the dpCores through the
 * MailBox Controller; the chip executes them with hardware
 * partitioning and DMEM-resident operators and reports
 * per-query results and perf/watt against the Xeon baseline.
 *
 *   $ ./sql_offload [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "apps/sql/tpch.hh"

using namespace dpu;
using namespace dpu::apps::sql;

int
main(int argc, char **argv)
{
    sim::setVerbose(false);
    TpchConfig cfg;
    cfg.scale = argc > 1 ? std::atof(argv[1]) : 1.0;

    std::printf("TPCH-like offload, scale %.2f: lineitem=%u rows, "
                "orders=%u, customer=%u, part=%u\n\n",
                cfg.scale, cfg.nLineitem(), cfg.nOrders(),
                cfg.nCustomers(), cfg.nParts());

    for (const char *q : tpchQueries) {
        QueryResult d = dpuTpch(soc::dpu40nm(), cfg, q);
        QueryResult x = xeonTpch(cfg, q);
        bool ok = d.values == x.values;
        double gain = (x.seconds / d.seconds) * (145.0 / 6.0);
        std::printf("%-4s  dpu %8.1f us   results %s   perf/watt "
                    "gain %5.2fx\n", q, d.seconds * 1e6,
                    ok ? "verified" : "MISMATCH", gain);
        int shown = 0;
        for (const auto &[k, v] : d.values) {
            if (shown++ == 3) {
                std::printf("        ...\n");
                break;
            }
            std::printf("        %-16s = %llu\n", k.c_str(),
                        (unsigned long long)v);
        }
    }
    return 0;
}

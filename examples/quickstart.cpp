/**
 * @file
 * Quickstart: the paper's Listing 1, line for line.
 *
 * Streams 16 MB of DRAM through a 32 KB DMEM with exactly three DMS
 * descriptors — two 1 KB ping-pong buffers plus one loop descriptor
 * (8191 iterations) — while the dpCore consumes each buffer between
 * wfe / clear_event, then prints the achieved bandwidth.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "rt/dms_ctl.hh"
#include "soc/soc.hh"

using namespace dpu;

int
main()
{
    sim::setVerbose(false);

    soc::SocParams params = soc::dpu40nm();
    params.ddrBytes = 24 << 20;
    soc::Soc dpu(params);

    // Fill 16 MB of simulated DRAM with word pattern i.
    const std::uint32_t total = 16 << 20;
    for (std::uint32_t i = 0; i < total / 4; ++i)
        dpu.memory().store().store<std::uint32_t>(i * 4, i);

    std::uint64_t checksum = 0;

    dpu.start(0, [&](core::DpCore &core) {
        rt::DmsCtl dms(core, dpu.dms());
        const mem::Addr src_addr = 0;
        const std::uint16_t dest_addr = 0;

        // dms_descriptor* desc0 =
        //     dms_setup_ddr_to_dmem(256, src_addr, dest_addr, event0);
        auto desc0 = dms.ddrToDmem().rows(256).width(4)
                         .from(src_addr).to(dest_addr)
                         .event(0).setup();
        // dms_descriptor* desc1 = dms_setup_ddr_to_dmem(256,
        //     src_addr, dest_addr + 1024, event1);
        auto desc1 = dms.ddrToDmem().rows(256).width(4)
                         .from(src_addr).to(dest_addr + 1024)
                         .event(1).setup();
        // dms_descriptor* loop = dms_setup_loop(desc0, 8191);
        auto loop = dms.setupLoop(desc0, 8191);

        dms.push(desc0);
        dms.push(desc1);
        dms.push(loop);

        unsigned events[] = {0, 1};
        unsigned buffer_index = 0;
        std::uint32_t count = 0;
        do {
            dms.wfe(events[buffer_index]);
            // consume_rows();
            std::uint32_t base = buffer_index ? 1024u : 0u;
            for (std::uint32_t i = 0; i < 256; ++i)
                checksum += core.dmem().load<std::uint32_t>(base +
                                                            i * 4);
            core.dualIssue(256, 256);
            dms.clearEvent(events[buffer_index]);
            buffer_index = 1 - buffer_index; // toggle index
        } while (++count != 16384);
    });

    sim::Tick t = dpu.run();

    std::uint64_t expect = 0;
    for (std::uint32_t i = 0; i < total / 4; ++i)
        expect += i;

    double ms = double(t) * 1e-9;
    double gbs = double(total) / (double(t) * 1e-12) / 1e9;
    std::printf("Listing 1: streamed 16 MB with 3 descriptors in "
                "%.3f ms (%.2f GB/s)\n", ms, gbs);
    std::printf("checksum %s (0x%llx)\n",
                checksum == expect ? "OK" : "MISMATCH",
                (unsigned long long)checksum);
    std::printf("(a single consuming dpCore is bound at 4 B/cycle "
                "= 3.2 GB/s; the DMS side runs at line rate)\n");
    return checksum == expect ? 0 : 1;
}

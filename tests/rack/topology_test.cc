/**
 * @file
 * ClusterTopology tests: the one builder constructs every tier,
 * validation catches every malformed shape with a message naming
 * the offending field, and the legacy parameter-struct projections
 * (boardParams/rackParams) agree with the fluent spec.
 */

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "sim/fault.hh"
#include "topo/topology.hh"

using namespace dpu;
using topo::ClusterTopology;

TEST(ClusterTopology, BuildsASoc)
{
    sim::faultPlane().reset();
    ClusterTopology t = ClusterTopology::soc().chip(soc::dpu16nm());
    EXPECT_EQ(t.validate(), "");
    EXPECT_EQ(t.tier(), topo::Tier::Soc);
    EXPECT_EQ(t.totalDpus(), 1u);
    sim::EventQueue q;
    auto s = t.buildSoc(q);
    ASSERT_TRUE(s);
    EXPECT_EQ(s->params().nComplexes,
              soc::dpu16nm().nComplexes);
}

TEST(ClusterTopology, BuildsABoardAndProjectsBoardParams)
{
    sim::faultPlane().reset();
    ClusterTopology t = ClusterTopology::board(4)
                            .threads(2)
                            .dmaRetries(7)
                            .lookahead(sim::Tick(100'000));
    EXPECT_EQ(t.validate(), "");
    EXPECT_EQ(t.totalDpus(), 4u);

    const board::BoardParams bp = t.boardParams();
    EXPECT_EQ(bp.nDpus, 4u);
    EXPECT_EQ(bp.threads, 2u);
    EXPECT_EQ(bp.dmaRetries, 7u);
    EXPECT_EQ(bp.lookahead, sim::Tick(100'000));

    auto b = t.buildBoard();
    ASSERT_TRUE(b);
    EXPECT_EQ(b->nDpus(), 4u);
}

TEST(ClusterTopology, BuildsARackAndProjectsRackParams)
{
    sim::faultPlane().reset();
    rack::NetParams np;
    np.hopLatency = sim::Tick(2'000'000);
    ClusterTopology t = ClusterTopology::rack(4, 2)
                            .network(np)
                            .replication(3);
    EXPECT_EQ(t.validate(), "");
    EXPECT_EQ(t.nBoards(), 4u);
    EXPECT_EQ(t.totalDpus(), 8u);

    const rack::RackParams rp = t.rackParams();
    EXPECT_EQ(rp.nBoards, 4u);
    EXPECT_EQ(rp.board.nDpus, 2u);
    EXPECT_EQ(rp.net.hopLatency, sim::Tick(2'000'000));
    EXPECT_EQ(t.placementParams().replication, 3u);

    auto r = t.buildRack();
    ASSERT_TRUE(r);
    EXPECT_EQ(r->nBoards(), 4u);
    EXPECT_EQ(r->nDpus(), 8u);
    EXPECT_EQ(r->net().params().hopLatency,
              sim::Tick(2'000'000));
}

TEST(ClusterTopology, LegacyBoardParamsPathStillCompiles)
{
    // The shim contract: the old construction path stays source-
    // compatible next to the builder.
    sim::faultPlane().reset();
    board::BoardParams bp;
    bp.nDpus = 2;
    board::Board b(bp);
    EXPECT_EQ(b.nDpus(), 2u);
}

TEST(ClusterTopologyValidation, NamesTheOffendingField)
{
    using topo::ClusterTopology;

    EXPECT_NE(ClusterTopology::board(0).validate().find("DPU"),
              std::string::npos);
    EXPECT_NE(
        ClusterTopology::rack(0, 2).validate().find("nBoards"),
        std::string::npos);
    EXPECT_NE(ClusterTopology::board(2).threads(0).validate().find(
                  "threads"),
              std::string::npos);

    board::LinkParams badLink;
    badLink.gbPerSec = 0;
    EXPECT_NE(ClusterTopology::board(2)
                  .link(badLink)
                  .validate()
                  .find("gbPerSec"),
              std::string::npos);

    rack::NetParams badNet;
    badNet.flitBytes = 0;
    EXPECT_NE(ClusterTopology::rack(2, 2)
                  .network(badNet)
                  .validate()
                  .find("flit"),
              std::string::npos);

    const std::string overRep =
        ClusterTopology::rack(2, 2).replication(4).validate();
    EXPECT_NE(overRep.find("replication 4"), std::string::npos);
    EXPECT_NE(overRep.find("2 boards"), std::string::npos);

    rack::PlacementParams halfAdmit;
    halfAdmit.admitWindow = 100;
    halfAdmit.admitPerWindow = 0;
    EXPECT_NE(ClusterTopology::rack(2, 2)
                  .placement(halfAdmit)
                  .validate()
                  .find("admit"),
              std::string::npos);

    // A valid spec reports no error.
    EXPECT_EQ(ClusterTopology::rack(2, 2).validate(), "");
}

TEST(ClusterTopologyValidation, DegenerateRackIsStillARack)
{
    // One board, one chip, replication 1: a valid (if pointless)
    // rack — the builder doesn't second-guess scale.
    ClusterTopology t =
        ClusterTopology::rack(1, 1).replication(1);
    EXPECT_EQ(t.validate(), "");
    sim::faultPlane().reset();
    auto r = t.buildRack();
    EXPECT_EQ(r->nDpus(), 1u);
}

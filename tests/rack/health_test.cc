/**
 * @file
 * Failure-detection tests: the HealthMonitor's hysteresis state
 * machine driven by raw observations, detection latency against an
 * injected crash, false-positive immunity under network-drop
 * bursts, the Probation rejoin hysteresis after a transient
 * outage, the brown-out controller's deadline-scoped shedding, the
 * S1 admission-window growth regression, the S2 failover-vs-
 * reroute attribution split, and a chaos slice where a board crash
 * overlaps an in-flight balancer migration — plus a determinism
 * wall across --threads {1, 2, 4} with detection and repair live.
 */

#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "host/offload.hh"
#include "rack/health.hh"
#include "rack/rack.hh"
#include "rack/scheduler.hh"
#include "rack/trace.hh"
#include "rack/workload.hh"
#include "sim/fault.hh"
#include "sim/stats_registry.hh"
#include "topo/topology.hh"

using namespace dpu;

namespace {

constexpr sim::Tick kUs = 1'000'000;
constexpr sim::Tick kMs = 1'000'000'000;

/** Keys with pairwise-distinct partitions all homed on one board
 *  (see balance_test.cc). */
std::vector<std::uint64_t>
coHomedKeys(unsigned want, unsigned parts, unsigned boards,
            unsigned *hot_out = nullptr)
{
    const unsigned hot =
        rack::partitionHome(rack::keyPartition(0, parts), boards);
    std::vector<std::uint64_t> keys;
    std::set<unsigned> seen;
    for (std::uint64_t k = 0; k < 65536 && keys.size() < want;
         ++k) {
        const unsigned p = rack::keyPartition(k, parts);
        if (rack::partitionHome(p, boards) != hot || seen.count(p))
            continue;
        seen.insert(p);
        keys.push_back(k);
    }
    if (hot_out)
        *hot_out = hot;
    return keys;
}

rack::RackRequest
keyedRequest(sim::Tick at, std::uint64_t key, std::uint64_t seed)
{
    return rack::makeRequest({at, key, 0, seed},
                             rack::servingMix());
}

/** A 4-board rack with one DPU per board (protocol tests only —
 *  the boards never run). */
rack::RackParams
smallRack()
{
    rack::RackParams rp;
    rp.nBoards = 4;
    rp.board.nDpus = 1;
    rp.board.soc.ddrBytes = std::size_t(16) << 20;
    return rp;
}

/** Detection knobs the integration tests share: 200 us heartbeat,
 *  50 us ack timeout, 2-miss suspect / 4-miss down / 3-ack rejoin
 *  hysteresis. */
rack::HealthParams
monitoredParams()
{
    rack::HealthParams hp;
    hp.heartbeatPeriod = 200 * kUs;
    hp.ackTimeout = 50 * kUs;
    hp.suspectAfter = 2;
    hp.downAfter = 4;
    hp.rejoinAfter = 3;
    return hp;
}

/** Detection knobs for the unit tests: armed (so observations
 *  register) but with the first probe round far past the test
 *  horizon, keeping probe acks out of the miss streaks. */
rack::HealthParams
quietMonitor()
{
    rack::HealthParams hp = monitoredParams();
    hp.heartbeatPeriod = 100 * kMs;
    return hp;
}

struct MonitoredRun
{
    sim::StatsSnapshot snap;
    rack::RackSummary sum;
    std::vector<rack::HealthTransition> transitions;
    std::vector<rack::BoardHealth> finalState;
    std::uint64_t drops = 0;
    std::uint64_t misses = 0;
    bool finished = false;
};

/**
 * The monitored end-to-end scenario: a 4 x 1 rack with the failure
 * detector live, optionally under the balancer + skew-step trace
 * (the chaos overlap shape). @p inspect, when set, runs against
 * the scheduler after the rack finishes — structural assertions on
 * the replica sets go there.
 */
MonitoredRun
runMonitoredScenario(
    unsigned threads, const char *faults,
    const rack::HealthParams &hp, bool skew = false,
    const std::function<void(rack::RackScheduler &)> &inspect = {})
{
    sim::faultPlane().reset();
    if (faults)
        sim::faultPlane().configure(faults, 42);

    soc::SocParams sp = soc::dpu40nm();
    sp.ddrBytes = std::size_t(64) << 20;

    auto spec = topo::ClusterTopology::rack(4, 1)
                    .chip(sp)
                    .threads(threads)
                    .health(hp);
    if (skew) {
        rack::BalanceParams bal;
        bal.window = 500 * kUs;
        bal.ewmaAlpha = 0.7;
        bal.hotFactor = 1.1;
        bal.maxMigrationsPerWindow = 2;
        bal.minPartitionLoad = 2.0;
        spec.balance(bal);
    }
    auto r = spec.buildRack();
    rack::RackScheduler sched(*r, host::OffloadParams{},
                              spec.placementParams());

    rack::TraceConfig tc;
    tc.ratePerSec = 25000;
    tc.durationSec = 0.006;
    tc.diurnalPeriodSec = 0.006;
    tc.nApps = unsigned(rack::servingMix().size());
    tc.seed = 33;
    if (skew) {
        tc.hotStepAtSec = 0.001;
        tc.hotStepFraction = 0.9;
        tc.hotStepKeys = coHomedKeys(
            3, spec.placementParams().keyPartitions, 4);
    }

    const std::vector<rack::TraceEvent> trace =
        rack::generateTrace(tc);
    const std::vector<rack::MixApp> mix = rack::servingMix();
    for (const rack::TraceEvent &ev : trace)
        sched.enqueueAt(ev.at, rack::makeRequest(ev, mix));
    sched.start();
    r->run();

    MonitoredRun out;
    out.finished = r->allFinished();
    out.sum = sched.summary();
    out.transitions = sched.health().transitions();
    for (unsigned b = 0; b < r->nBoards(); ++b)
        out.finalState.push_back(sched.health().state(b));
    out.drops = r->net().drops();
    out.misses = sched.health().missesSeen();
    if (inspect)
        inspect(sched);
    sim::faultPlane().reset();
    if (out.sum.serving.validationFailed == 0) {
        out.snap = sim::StatsRegistry::instance().snapshot();
        out.snap.counters["sim.finalTick"] = r->now();
    }
    return out;
}

/** The accounting identity every scenario must keep: one verdict
 *  per offered request. */
void
expectFullAttribution(const rack::RackSummary &sum)
{
    EXPECT_EQ(sum.offered, sum.admitted + sum.rejected +
                               sum.boardsDown + sum.netLost +
                               sum.shed);
}

} // namespace

// ----------------------------------------------------------------
// The detector state machine on raw observations
// ----------------------------------------------------------------

TEST(HealthDetector, MissHysteresisWalksHealthySuspectDown)
{
    sim::faultPlane().reset();
    rack::RackNet net(4, rack::NetParams{});
    rack::HealthMonitor mon(net, 4, quietMonitor());
    ASSERT_TRUE(mon.monitoring());

    mon.observeMiss(1, 10);
    mon.advanceTo(10);
    EXPECT_EQ(mon.state(1), rack::BoardHealth::Healthy);
    EXPECT_TRUE(mon.routable(1));

    mon.observeMiss(1, 20);
    mon.advanceTo(20);
    EXPECT_EQ(mon.state(1), rack::BoardHealth::Suspect);
    EXPECT_TRUE(mon.routable(1)) << "Suspect boards still serve";

    mon.observeMiss(1, 30);
    mon.advanceTo(30);
    EXPECT_EQ(mon.state(1), rack::BoardHealth::Suspect);

    mon.observeMiss(1, 40);
    mon.advanceTo(40);
    EXPECT_EQ(mon.state(1), rack::BoardHealth::Down);
    EXPECT_FALSE(mon.routable(1));

    // The other boards never moved, and the log holds exactly the
    // two transitions with their deciding observation ticks.
    EXPECT_EQ(mon.state(0), rack::BoardHealth::Healthy);
    ASSERT_EQ(mon.transitions().size(), 2u);
    EXPECT_EQ(mon.transitions()[0].at, 20u);
    EXPECT_EQ(mon.transitions()[0].to, rack::BoardHealth::Suspect);
    EXPECT_EQ(mon.transitions()[1].at, 40u);
    EXPECT_EQ(mon.transitions()[1].to, rack::BoardHealth::Down);
}

TEST(HealthDetector, AcksClearSuspectsAndWalkDownThroughProbation)
{
    sim::faultPlane().reset();
    rack::RackNet net(4, rack::NetParams{});
    rack::HealthMonitor mon(net, 4, quietMonitor());

    // Two misses suspect the board; one ack absolves it — misses
    // are ambiguous (drop or death), acks are not.
    mon.observeMiss(2, 10);
    mon.observeMiss(2, 20);
    mon.advanceTo(20);
    EXPECT_EQ(mon.state(2), rack::BoardHealth::Suspect);
    mon.observeAck(2, 30);
    mon.advanceTo(30);
    EXPECT_EQ(mon.state(2), rack::BoardHealth::Healthy);

    // Four misses take it Down; the first ack only reaches
    // Probation (still unroutable), a relapse goes straight back
    // Down, and rejoinAfter consecutive acks earn Healthy again.
    for (sim::Tick t = 40; t <= 70; t += 10)
        mon.observeMiss(2, t);
    mon.advanceTo(70);
    EXPECT_EQ(mon.state(2), rack::BoardHealth::Down);

    mon.observeAck(2, 80);
    mon.advanceTo(80);
    EXPECT_EQ(mon.state(2), rack::BoardHealth::Probation);
    EXPECT_FALSE(mon.routable(2));

    mon.observeMiss(2, 90);
    mon.advanceTo(90);
    EXPECT_EQ(mon.state(2), rack::BoardHealth::Down);

    mon.observeAck(2, 100);
    mon.observeAck(2, 110);
    mon.observeAck(2, 120);
    mon.advanceTo(120);
    EXPECT_EQ(mon.state(2), rack::BoardHealth::Healthy);
    EXPECT_TRUE(mon.routable(2));
}

TEST(HealthDetector, ObservationsResolveInTickOrderNotPushOrder)
{
    sim::faultPlane().reset();
    rack::HealthParams hp = quietMonitor();
    hp.downAfter = 3;
    rack::RackNet net(4, rack::NetParams{});
    rack::HealthMonitor mon(net, 4, hp);

    mon.observeMiss(0, 10);
    mon.observeMiss(0, 20);
    mon.advanceTo(20);
    EXPECT_EQ(mon.state(0), rack::BoardHealth::Suspect);

    // Pushed out of order: the ack (t=40) before the miss (t=30).
    // Tick order must win — the miss lands first (third consecutive
    // miss, Down), then the ack opens Probation. Push order would
    // instead absolve the board and leave it Healthy.
    mon.observeAck(0, 40);
    mon.observeMiss(0, 30);
    mon.advanceTo(50);
    EXPECT_EQ(mon.state(0), rack::BoardHealth::Probation);
}

// ----------------------------------------------------------------
// Detection latency, false positives, rejoin hysteresis
// ----------------------------------------------------------------

TEST(HealthIntegration, CrashIsDetectedWithinTheHysteresisBound)
{
    const rack::HealthParams hp = monitoredParams();
    const sim::Tick crashAt = 2 * kMs;
    const auto run = runMonitoredScenario(
        1, "rack.boardCrash@p=1,unit=1,from=2000000000,max=1", hp);
    ASSERT_FALSE(run.snap.counters.empty());
    EXPECT_TRUE(run.finished);
    expectFullAttribution(run.sum);
    EXPECT_EQ(run.sum.serving.submitted, run.sum.admitted);
    EXPECT_GT(run.sum.probes, 0u);

    // Detection latency: the detector may not know before the
    // crash, and must declare Down within downAfter heartbeat
    // rounds plus the ack timeout (request misses interleave and
    // only speed it up).
    const rack::HealthTransition *down = nullptr;
    for (const rack::HealthTransition &t : run.transitions)
        if (t.board == 1 && t.to == rack::BoardHealth::Down) {
            down = &t;
            break;
        }
    ASSERT_NE(down, nullptr) << "the crash was never detected";
    EXPECT_GE(down->at, crashAt);
    EXPECT_LE(down->at, crashAt +
                            sim::Tick(hp.downAfter) *
                                hp.heartbeatPeriod +
                            2 * hp.ackTimeout);

    // Repair made the board whole again: every owed re-replication
    // committed, the crash latch cleared, and heartbeats walked it
    // back through Probation to Healthy before the trace ended.
    EXPECT_GE(run.sum.repairsStarted, 1u);
    EXPECT_GE(run.sum.repairsCommitted, 1u);
    bool probation = false, rejoined = false;
    for (const rack::HealthTransition &t : run.transitions) {
        if (t.board != 1)
            continue;
        if (t.from == rack::BoardHealth::Down &&
            t.to == rack::BoardHealth::Probation)
            probation = true;
        else if (probation &&
                 t.from == rack::BoardHealth::Probation &&
                 t.to == rack::BoardHealth::Healthy)
            rejoined = true;
    }
    EXPECT_TRUE(probation) << "repair never cleared the latch";
    EXPECT_TRUE(rejoined) << "the board never rejoined";
    EXPECT_EQ(run.finalState[1], rack::BoardHealth::Healthy);
}

TEST(HealthIntegration, DropBurstsAloneNeverDeclareABoardDown)
{
    // A lossy fabric feeds the detector the same misses a dead
    // board would — the hysteresis must absorb them, because every
    // surviving ack refutes the death hypothesis.
    const auto run = runMonitoredScenario(1, "rack.netDrop@p=0.05",
                                          monitoredParams());
    ASSERT_FALSE(run.snap.counters.empty());
    EXPECT_GT(run.drops, 0u) << "the burst never fired";
    EXPECT_GT(run.misses, 0u) << "drops never reached the detector";
    for (const rack::HealthTransition &t : run.transitions)
        EXPECT_NE(t.to, rack::BoardHealth::Down)
            << "drops alone declared board " << t.board
            << " dead at tick " << t.at;
    for (unsigned b = 0; b < 4; ++b)
        EXPECT_TRUE(run.finalState[b] ==
                        rack::BoardHealth::Healthy ||
                    run.finalState[b] == rack::BoardHealth::Suspect)
            << "board " << b << " ended unroutable";
    expectFullAttribution(run.sum);
}

TEST(HealthIntegration, TransientOutageRejoinsThroughProbation)
{
    const rack::HealthParams hp = monitoredParams();
    const auto run = runMonitoredScenario(
        1,
        "rack.boardDown@p=1,unit=1,from=1500000000,to=3000000000",
        hp);
    ASSERT_FALSE(run.snap.counters.empty());

    // The board's life story: suspected, declared Down inside the
    // window, Probation on the first clean probe after it, Healthy
    // only after rejoinAfter consecutive probe acks.
    std::vector<rack::HealthTransition> mine;
    for (const rack::HealthTransition &t : run.transitions)
        if (t.board == 1)
            mine.push_back(t);
    ASSERT_EQ(mine.size(), 4u);
    EXPECT_EQ(mine[0].to, rack::BoardHealth::Suspect);
    EXPECT_EQ(mine[1].to, rack::BoardHealth::Down);
    EXPECT_EQ(mine[2].to, rack::BoardHealth::Probation);
    EXPECT_EQ(mine[3].to, rack::BoardHealth::Healthy);
    EXPECT_GE(mine[2].at, sim::Tick(3000000000))
        << "Probation opened while the outage was still active";

    // Rejoin hysteresis: Probation acks arrive one per heartbeat
    // round (nothing else routes to an unroutable board), so the
    // rejoin takes at least rejoinAfter - 1 further rounds.
    EXPECT_GE(mine[3].at - mine[2].at,
              sim::Tick(hp.rejoinAfter - 1) * hp.heartbeatPeriod);
    EXPECT_EQ(run.finalState[1], rack::BoardHealth::Healthy);
    expectFullAttribution(run.sum);
}

// ----------------------------------------------------------------
// The brown-out controller
// ----------------------------------------------------------------

TEST(BrownOut, SuspectReplicasShedOnlyDeadlineRiskyRequests)
{
    sim::faultPlane().reset();
    rack::Rack r(smallRack());
    rack::PlacementParams place;
    place.health = quietMonitor();
    rack::RackScheduler sched(r, {}, place);

    const std::uint64_t key = 0;
    const std::vector<unsigned> reps = sched.replicasOf(key);
    ASSERT_EQ(reps.size(), 2u);
    for (unsigned b : reps) {
        sched.health().observeMiss(b, 1 * kUs);
        sched.health().observeMiss(b, 2 * kUs);
    }
    sched.health().advanceTo(3 * kUs);
    ASSERT_EQ(sched.health().state(reps[0]),
              rack::BoardHealth::Suspect);
    ASSERT_EQ(sched.health().state(reps[1]),
              rack::BoardHealth::Suspect);

    // A 100 us deadline with a 25% budget: the 50 us ack-timeout
    // stall a Suspect board risks already blows it, on both
    // replicas — shed at the front-end instead of queueing doomed
    // work.
    rack::RackRequest tight = keyedRequest(10 * kUs, key, 7);
    tight.job.timeout = 100 * kUs;
    EXPECT_EQ(sched.enqueueAt(10 * kUs, std::move(tight)),
              rack::AdmitResult::Shed);
    EXPECT_EQ(sched.shedCount(), 1u);

    // A lazy deadline rides through the same suspect pair: shed is
    // deadline-scoped, not a blanket Suspect ban.
    rack::RackRequest lazy = keyedRequest(20 * kUs, key, 8);
    lazy.job.timeout = 10 * kMs;
    unsigned board = 99;
    EXPECT_EQ(sched.enqueueAt(20 * kUs, std::move(lazy), &board),
              rack::AdmitResult::Admitted);
    EXPECT_EQ(board, reps[0]);
    EXPECT_EQ(sched.shedCount(), 1u);
}

// ----------------------------------------------------------------
// S1: the admission window must not grow without the cap
// ----------------------------------------------------------------

TEST(RackAdmissionWindow, DepthStaysEmptyWithTheCapDisabled)
{
    sim::faultPlane().reset();
    rack::Rack r(smallRack());
    rack::RackScheduler sched(r, {}, rack::PlacementParams{});
    for (unsigned i = 0; i < 300; ++i) {
        const sim::Tick t = sim::Tick(i + 1) * 10 * kUs;
        ASSERT_EQ(sched.enqueueAt(t, keyedRequest(t, i, i)),
                  rack::AdmitResult::Admitted);
    }
    for (unsigned b = 0; b < r.nBoards(); ++b)
        EXPECT_EQ(sched.admitWindowDepth(b), 0u)
            << "board " << b
            << " accumulated window state with the cap disabled";
}

TEST(RackAdmissionWindow, DepthIsBoundedByThePerWindowCap)
{
    sim::faultPlane().reset();
    rack::Rack r(smallRack());
    rack::PlacementParams place;
    place.admitWindow = kMs;
    place.admitPerWindow = 4;
    rack::RackScheduler sched(r, {}, place);
    for (unsigned i = 0; i < 300; ++i) {
        const sim::Tick t = sim::Tick(i + 1) * 10 * kUs;
        sched.enqueueAt(t, keyedRequest(t, i, i));
        for (unsigned b = 0; b < r.nBoards(); ++b)
            ASSERT_LE(sched.admitWindowDepth(b),
                      std::size_t(place.admitPerWindow))
                << "board " << b << " at tick " << t;
    }
}

// ----------------------------------------------------------------
// S2: failovers are outages; admission re-routes are not
// ----------------------------------------------------------------

TEST(RackAttribution, AdmissionReroutesAreNotFailovers)
{
    sim::faultPlane().reset();
    rack::Rack r(smallRack());
    rack::PlacementParams place;
    place.admitWindow = kMs;
    place.admitPerWindow = 1;
    rack::RackScheduler sched(r, {}, place);

    const std::uint64_t key = 0;
    const std::vector<unsigned> reps = sched.replicasOf(key);
    ASSERT_EQ(reps.size(), 2u);

    unsigned b0 = 99, b1 = 99;
    EXPECT_EQ(sched.enqueueAt(10 * kUs,
                              keyedRequest(10 * kUs, key, 1), &b0),
              rack::AdmitResult::Admitted);
    EXPECT_EQ(b0, reps[0]);
    // The primary's window is full: the replica takes the load —
    // spreading, not failure.
    EXPECT_EQ(sched.enqueueAt(20 * kUs,
                              keyedRequest(20 * kUs, key, 2), &b1),
              rack::AdmitResult::Admitted);
    EXPECT_EQ(b1, reps[1]);
    EXPECT_EQ(sched.admitRerouteCount(), 1u);
    EXPECT_EQ(sched.summary().failovers, 0u);
    EXPECT_EQ(sched.enqueueAt(30 * kUs,
                              keyedRequest(30 * kUs, key, 3)),
              rack::AdmitResult::Rejected);
}

TEST(RackAttribution, OutageFailoversStayFailovers)
{
    sim::faultPlane().reset();
    rack::Rack r(smallRack());
    rack::RackScheduler sched(r, {}, rack::PlacementParams{});
    const std::vector<unsigned> reps = sched.replicasOf(0);
    ASSERT_EQ(reps.size(), 2u);
    const std::string spec = "rack.boardDown@p=1,unit=" +
                             std::to_string(reps[0]) +
                             ",to=100000000000";
    sim::faultPlane().configure(spec.c_str(), 42);

    unsigned b = 99;
    EXPECT_EQ(
        sched.enqueueAt(10 * kUs, keyedRequest(10 * kUs, 0, 1), &b),
        rack::AdmitResult::Admitted);
    EXPECT_EQ(b, reps[1]);
    const rack::RackSummary sum = sched.summary();
    EXPECT_EQ(sum.failovers, 1u);
    EXPECT_EQ(sum.admitReroutes, 0u);
    sim::faultPlane().reset();
}

// ----------------------------------------------------------------
// Chaos: a crash overlapping an in-flight migration + the wall
// ----------------------------------------------------------------

TEST(HealthChaos, CrashMidMigrationLeavesNoDoubleAssignment)
{
    // Crash the skew target board right after the hot step, while
    // balancer hand-offs are in flight: repair must abort the dead
    // transfers, evict the board everywhere, and restore
    // replication — with every partition owned exactly once and
    // every request attributed exactly once.
    unsigned hot = 0;
    coHomedKeys(1, rack::PlacementParams{}.keyPartitions, 4, &hot);
    const std::string spec =
        "rack.boardCrash@p=1,unit=" + std::to_string(hot) +
        ",from=1200000000,max=1";

    const auto inspect = [hot](rack::RackScheduler &sched) {
        const unsigned parts = sched.placement().keyPartitions;
        for (unsigned p = 0; p < parts; ++p)
            EXPECT_LT(sched.homeOf(p), 4u);
        for (std::uint64_t key = 0; key < 2048; ++key) {
            const std::vector<unsigned> reps =
                sched.replicasOf(key);
            ASSERT_FALSE(reps.empty());
            std::set<unsigned> uniq(reps.begin(), reps.end());
            EXPECT_EQ(uniq.size(), reps.size())
                << "key " << key
                << " is double-assigned after the repair";
            EXPECT_EQ(sched.homeOf(sched.partitionOf(key)),
                      reps[0])
                << "map and replica set disagree for key " << key;
        }
        (void)hot;
    };

    const auto a = runMonitoredScenario(
        1, spec.c_str(), monitoredParams(), true, inspect);
    ASSERT_FALSE(a.snap.counters.empty())
        << "scenario failed validation under the crash";
    EXPECT_TRUE(a.finished);
    expectFullAttribution(a.sum);
    EXPECT_EQ(a.sum.serving.submitted, a.sum.admitted)
        << "crash + migration overlap lost or duplicated jobs";
    EXPECT_GE(a.sum.repairsStarted, 1u);
    EXPECT_GE(a.sum.repairsCommitted, 1u);

    const auto b =
        runMonitoredScenario(2, spec.c_str(), monitoredParams(),
                             true);
    const auto diffs = sim::diffSnapshots(a.snap, b.snap);
    EXPECT_TRUE(diffs.empty())
        << diffs.size()
        << " stat(s) differ between threads 1 and 2 under the "
           "chaos schedule:\n"
        << sim::formatDiffs(diffs);
}

TEST(HealthChaos, TenRunDeterminismWallWithDetectionLive)
{
    const char *spec =
        "rack.boardCrash@p=1,unit=1,from=2000000000,max=1";
    const auto base =
        runMonitoredScenario(1, spec, monitoredParams());
    ASSERT_FALSE(base.snap.counters.empty());
    ASSERT_NE(base.snap.counters.find("health.probes"),
              base.snap.counters.end())
        << "the wall would not exercise the detector";
    ASSERT_NE(base.snap.counters.find("rack.repairCommitted"),
              base.snap.counters.end())
        << "the wall would not exercise the repair path";

    const unsigned threads[] = {2, 4, 1, 2, 4, 1, 2, 4, 1};
    for (unsigned i = 0; i < 9; ++i) {
        const auto run =
            runMonitoredScenario(threads[i], spec,
                                 monitoredParams());
        const auto diffs = sim::diffSnapshots(base.snap, run.snap);
        ASSERT_TRUE(diffs.empty())
            << "run " << i + 2 << " (--threads " << threads[i]
            << "): " << diffs.size() << " stat(s) differ:\n"
            << sim::formatDiffs(diffs);
    }
}

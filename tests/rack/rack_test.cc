/**
 * @file
 * Rack-tier tests: the trace generator's determinism and shape,
 * placement/replica purity, admission and failover semantics, and
 * the cluster determinism + golden contract — a fixed 2-board
 * trace-driven serving scenario must produce bit-identical stats
 * across reruns, across --threads counts, and under seeded fault
 * replay, and match the checked-in snapshot in
 * tests/golden/rack.json.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "host/offload.hh"
#include "rack/rack.hh"
#include "rack/scheduler.hh"
#include "rack/trace.hh"
#include "rack/workload.hh"
#include "sim/fault.hh"
#include "sim/stats.hh"
#include "sim/stats_registry.hh"
#include "topo/topology.hh"

using namespace dpu;

#ifndef DPU_GOLDEN_DIR
#error "build must define DPU_GOLDEN_DIR"
#endif

namespace {

rack::TraceConfig
scenarioTrace()
{
    rack::TraceConfig tc;
    tc.ratePerSec = 4000;
    tc.durationSec = 0.008;
    tc.diurnalPeriodSec = 0.008;
    tc.nApps = unsigned(rack::servingMix().size());
    tc.seed = 21;
    return tc;
}

/**
 * The canonical rack scenario: 2 boards x 2 DPUs, replication 2,
 * the serving mix driven by a fixed arrival trace. Returns the
 * full stats snapshot (plus the rack end tick); empty when serving
 * failed validation.
 */
sim::StatsSnapshot
runRackScenario(unsigned threads = 1, const char *faults = nullptr,
                std::uint64_t fault_seed = 42)
{
    sim::faultPlane().reset();
    if (faults)
        sim::faultPlane().configure(faults, fault_seed);

    soc::SocParams sp = soc::dpu40nm();
    sp.ddrBytes = std::size_t(32) << 20;
    auto r = topo::ClusterTopology::rack(2, 2)
                 .chip(sp)
                 .threads(threads)
                 .buildRack();
    rack::RackScheduler sched(*r, host::OffloadParams{},
                              rack::PlacementParams{});

    const std::vector<rack::TraceEvent> trace =
        rack::generateTrace(scenarioTrace());
    const std::vector<rack::MixApp> mix = rack::servingMix();
    for (const rack::TraceEvent &ev : trace)
        sched.enqueueAt(ev.at, rack::makeRequest(ev, mix));
    sched.start();
    r->run();

    const rack::RackSummary sum = sched.summary();
    sim::faultPlane().reset();
    if (sum.serving.validationFailed != 0)
        return {};
    sim::StatsSnapshot snap =
        sim::StatsRegistry::instance().snapshot();
    snap.counters["sim.finalTick"] = r->now();
    return snap;
}

bool
regenRequested()
{
    const char *v = std::getenv("DPU_REGEN_GOLDEN");
    return v && *v && std::string(v) != "0";
}

} // namespace

// ----------------------------------------------------------------
// Trace generator
// ----------------------------------------------------------------

TEST(ArrivalTrace, IsSeedDeterministicAndSorted)
{
    const rack::TraceConfig tc = scenarioTrace();
    const auto a = rack::generateTrace(tc);
    const auto b = rack::generateTrace(tc);
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].at, b[i].at);
        EXPECT_EQ(a[i].key, b[i].key);
        EXPECT_EQ(a[i].appIdx, b[i].appIdx);
        EXPECT_EQ(a[i].seed, b[i].seed);
        if (i)
            EXPECT_GE(a[i].at, a[i - 1].at);
        EXPECT_LT(a[i].appIdx, tc.nApps);
        EXPECT_LT(a[i].key, tc.nKeys);
    }
    rack::TraceConfig other = tc;
    other.seed = 22;
    const auto c = rack::generateTrace(other);
    EXPECT_TRUE(c.size() != a.size() || c[0].seed != a[0].seed);
}

TEST(ArrivalTrace, RateScalesTheEventCount)
{
    rack::TraceConfig lo = scenarioTrace();
    rack::TraceConfig hi = scenarioTrace();
    hi.ratePerSec = lo.ratePerSec * 4;
    const double nLo = double(rack::generateTrace(lo).size());
    const double nHi = double(rack::generateTrace(hi).size());
    ASSERT_GT(nLo, 0);
    EXPECT_NEAR(nHi / nLo, 4.0, 1.0);
}

TEST(ArrivalTrace, ZipfConcentratesMassOnHotKeys)
{
    const rack::ZipfSampler z(1 << 16, 0.99);
    // Web-like skew: the hottest 1% of keys carry well over a
    // third of the mass; uniform would give them 1%.
    EXPECT_GT(z.headMass((1 << 16) / 100), 0.35);
    EXPECT_LT(z.headMass((1 << 16) / 100), 0.95);
    EXPECT_DOUBLE_EQ(z.headMass(1 << 16), 1.0);
    EXPECT_EQ(z.sample(0.0), 0u);
    // And the zero-exponent sampler degrades to uniform-ish.
    const rack::ZipfSampler u(100, 0.0);
    EXPECT_NEAR(u.headMass(50), 0.5, 0.01);
}

// ----------------------------------------------------------------
// Placement laws at the scheduler level
// ----------------------------------------------------------------

TEST(RackPlacement, ReplicaGroupIsPureAndIndependentOfDpuCount)
{
    sim::faultPlane().reset();
    rack::RackParams small;
    small.nBoards = 4;
    small.board.nDpus = 1;
    small.board.soc.ddrBytes = std::size_t(16) << 20;
    rack::RackParams big;
    big.nBoards = 4;
    big.board.nDpus = 2;
    big.board.soc.ddrBytes = std::size_t(16) << 20;
    rack::Rack rs(small), rb(big);
    rack::RackScheduler ss(rs, {}, {});
    rack::RackScheduler sb(rb, {}, {});
    for (std::uint64_t k = 0; k < 256; ++k) {
        EXPECT_EQ(ss.partitionOf(k), sb.partitionOf(k));
        EXPECT_EQ(ss.primaryOf(k), sb.primaryOf(k));
        const auto ga = ss.replicasOf(k);
        const auto gb = sb.replicasOf(k);
        ASSERT_EQ(ga.size(), 2u);
        EXPECT_EQ(ga, gb);
        EXPECT_EQ(ga[0], ss.primaryOf(k));
        EXPECT_NE(ga[0], ga[1]);
    }
}

// ----------------------------------------------------------------
// Admission, failover, outage attribution
// ----------------------------------------------------------------

TEST(RackAdmission, WindowCapShedsExcessLoad)
{
    sim::faultPlane().reset();
    rack::RackParams rp;
    rp.nBoards = 2;
    rp.board.soc.ddrBytes = std::size_t(16) << 20;
    rack::Rack r(rp);
    rack::PlacementParams place;
    place.replication = 2;
    place.admitWindow = sim::Tick(1'000'000'000); // 1 ms
    place.admitPerWindow = 2;
    rack::RackScheduler sched(r, {}, place);

    // 16 arrivals inside one window, all to the same key: the
    // replica pair can admit 2 each, the rest are rejected.
    unsigned admitted = 0, rejected = 0;
    for (unsigned i = 0; i < 16; ++i) {
        rack::RackRequest req = rack::makeRequest(
            {sim::Tick(i * 1000), 7, 0, 1000 + i},
            rack::servingMix());
        const rack::AdmitResult res =
            sched.enqueueAt(sim::Tick(i * 1000), std::move(req));
        (res == rack::AdmitResult::Admitted ? admitted
                                            : rejected)++;
    }
    EXPECT_EQ(admitted, 4u);
    EXPECT_EQ(rejected, 12u);
    const rack::RackSummary sum = sched.summary();
    EXPECT_EQ(sum.offered, 16u);
    EXPECT_EQ(sum.admitted, 4u);
    EXPECT_EQ(sum.rejected, 12u);
    EXPECT_EQ(sum.boardsDown, 0u);
}

TEST(RackFailover, BoardOutageRedirectsToTheReplica)
{
    sim::faultPlane().reset();
    // Board 0 is down for the whole run.
    sim::faultPlane().configure(
        "rack.boardDown@p=1,unit=0,to=100000000000", 42);
    rack::RackParams rp;
    rp.nBoards = 2;
    rp.board.soc.ddrBytes = std::size_t(16) << 20;
    rack::Rack r(rp);
    rack::PlacementParams place;
    place.replication = 2;
    rack::RackScheduler sched(r, {}, place);

    unsigned toBoard1 = 0, offered = 0;
    for (std::uint64_t k = 0; k < 64; ++k) {
        rack::RackRequest req = rack::makeRequest(
            {sim::Tick(k * 1000), k, 0, 500 + k},
            rack::servingMix());
        unsigned board = 99;
        const rack::AdmitResult res = sched.enqueueAt(
            sim::Tick(k * 1000), std::move(req), &board);
        ++offered;
        ASSERT_EQ(res, rack::AdmitResult::Admitted);
        EXPECT_EQ(board, 1u);
        ++toBoard1;
    }
    const rack::RackSummary sum = sched.summary();
    EXPECT_EQ(sum.admitted, offered);
    // Keys whose primary was board 0 count as failovers.
    EXPECT_GT(sum.failovers, 0u);
    EXPECT_LT(sum.failovers, offered);
    sim::faultPlane().reset();
}

TEST(RackFailover, ReplicationOneTurnsOutageIntoLoss)
{
    sim::faultPlane().reset();
    sim::faultPlane().configure(
        "rack.boardDown@p=1,unit=0,to=100000000000", 42);
    rack::RackParams rp;
    rp.nBoards = 2;
    rp.board.soc.ddrBytes = std::size_t(16) << 20;
    rack::Rack r(rp);
    rack::PlacementParams place;
    place.replication = 1;
    rack::RackScheduler sched(r, {}, place);

    unsigned lost = 0, admitted = 0;
    for (std::uint64_t k = 0; k < 64; ++k) {
        rack::RackRequest req = rack::makeRequest(
            {sim::Tick(k * 1000), k, 0, 500 + k},
            rack::servingMix());
        const rack::AdmitResult res =
            sched.enqueueAt(sim::Tick(k * 1000), std::move(req));
        (res == rack::AdmitResult::BoardsDown ? lost : admitted)++;
    }
    EXPECT_GT(lost, 0u);
    EXPECT_GT(admitted, 0u);
    EXPECT_EQ(lost + admitted, 64u);
    const rack::RackSummary sum = sched.summary();
    EXPECT_EQ(sum.boardsDown, lost);
    EXPECT_EQ(sum.failovers, 0u);
    sim::faultPlane().reset();
}

TEST(RackNetFaults, DropsFailOverAndExhaustionIsNetLost)
{
    sim::faultPlane().reset();
    sim::faultPlane().configure("rack.netDrop@p=1", 42);
    rack::RackParams rp;
    rp.nBoards = 2;
    rp.board.soc.ddrBytes = std::size_t(16) << 20;
    rack::Rack r(rp);
    rack::PlacementParams place;
    place.replication = 2;
    rack::RackScheduler sched(r, {}, place);
    rack::RackRequest req = rack::makeRequest(
        {0, 3, 0, 77}, rack::servingMix());
    // p=1 drop on every delivery: both replicas burn wire time and
    // lose the request.
    EXPECT_EQ(sched.enqueueAt(0, std::move(req)),
              rack::AdmitResult::NetLost);
    const rack::RackSummary sum = sched.summary();
    EXPECT_EQ(sum.netLost, 1u);
    EXPECT_EQ(sum.admitted, 0u);
    EXPECT_EQ(r.net().drops(), 2u);
    sim::faultPlane().reset();
}

TEST(RackNetFaults, DroppedBytesNeverCountAsCarried)
{
    sim::faultPlane().reset();
    sim::faultPlane().configure("rack.netDrop@p=1", 42);
    rack::RackParams rp;
    rp.nBoards = 2;
    rp.board.soc.ddrBytes = std::size_t(16) << 20;
    rack::Rack r(rp);
    rack::PlacementParams place;
    place.replication = 2;
    rack::RackScheduler sched(r, {}, place);
    rack::RackRequest req = rack::makeRequest(
        {0, 3, 0, 77}, rack::servingMix());
    const std::uint64_t payload = req.bytes;
    EXPECT_EQ(sched.enqueueAt(0, std::move(req)),
              rack::AdmitResult::NetLost);
    // Both replica attempts burned wire time but carried nothing:
    // the payload lands in droppedBytes, never in the carried /
    // utilization accounting (the xfer_stat split).
    EXPECT_EQ(r.net().messages(), 2u);
    EXPECT_EQ(r.net().drops(), 2u);
    EXPECT_EQ(r.net().droppedBytes(), 2 * payload);
    EXPECT_EQ(r.net().bytesCarried(), 0u);
    EXPECT_EQ(r.net().migrationBytes(), 0u);
    sim::faultPlane().reset();

    // With the plane quiet the next delivery is carried normally.
    rack::RackRequest ok = rack::makeRequest(
        {1000, 3, 0, 78}, rack::servingMix());
    const std::uint64_t okBytes = ok.bytes;
    EXPECT_EQ(sched.enqueueAt(1000, std::move(ok)),
              rack::AdmitResult::Admitted);
    EXPECT_EQ(r.net().bytesCarried(), okBytes);
    EXPECT_EQ(r.net().droppedBytes(), 2 * payload);
}

TEST(RackAdmission, WindowBoundaryIsHalfOpen)
{
    // The cap covers the half-open window (now - admitWindow, now]:
    // an admission exactly admitWindow old has aged out. Before the
    // fix the front boundary was kept too, so a cap of 1 per 1000
    // ticks actually spanned 1001 ticks.
    sim::faultPlane().reset();
    rack::RackParams rp;
    rp.nBoards = 2;
    rp.board.soc.ddrBytes = std::size_t(16) << 20;
    rack::Rack r(rp);
    rack::PlacementParams place;
    place.replication = 1;
    place.admitWindow = 1000;
    place.admitPerWindow = 1;
    rack::RackScheduler sched(r, {}, place);

    auto offer = [&](sim::Tick at) {
        return sched.enqueueAt(
            at, rack::makeRequest({at, 7, 0, at + 1},
                                  rack::servingMix()));
    };
    EXPECT_EQ(offer(0), rack::AdmitResult::Admitted);
    // 999 ticks later the window (−1, 999] still holds tick 0.
    EXPECT_EQ(offer(999), rack::AdmitResult::Rejected);
    // At exactly 1000 the window is (0, 1000]: tick 0 has aged out.
    EXPECT_EQ(offer(1000), rack::AdmitResult::Admitted);
    const rack::RackSummary sum = sched.summary();
    EXPECT_EQ(sum.admitted, 2u);
    EXPECT_EQ(sum.rejected, 1u);
}

// ----------------------------------------------------------------
// End-to-end serving through the rack
// ----------------------------------------------------------------

TEST(RackServing, TraceDrivenRunServesEveryAdmittedRequest)
{
    const auto snap = runRackScenario();
    ASSERT_FALSE(snap.counters.empty())
        << "scenario failed validation";
    auto at = [&](const std::string &k) {
        auto it = snap.counters.find(k);
        return it == snap.counters.end() ? std::uint64_t(0)
                                         : it->second;
    };
    EXPECT_GT(at("rack.offered"), 0u);
    EXPECT_EQ(at("rack.offered"),
              at("rack.admitted") + at("rack.rejected") +
                  at("rack.boardsDown") + at("rack.netLost"));
    EXPECT_GT(at("racknet.msgs"), 0u);
}

// ----------------------------------------------------------------
// Determinism + golden
// ----------------------------------------------------------------

TEST(RackDeterminism, RerunsAreBitIdentical)
{
    const auto a = runRackScenario();
    const auto b = runRackScenario();
    ASSERT_FALSE(a.counters.empty());
    const auto diffs = sim::diffSnapshots(a, b);
    EXPECT_TRUE(diffs.empty())
        << diffs.size() << " stat(s) differ across reruns:\n"
        << sim::formatDiffs(diffs);
}

TEST(RackDeterminism, ThreadCountIsInvisible)
{
    const auto serial = runRackScenario(1);
    const auto threaded = runRackScenario(2);
    ASSERT_FALSE(serial.counters.empty());
    const auto diffs = sim::diffSnapshots(serial, threaded);
    EXPECT_TRUE(diffs.empty())
        << diffs.size()
        << " stat(s) differ between --threads 1 and 2:\n"
        << sim::formatDiffs(diffs);
}

TEST(RackDeterminism, FaultReplayIsBitIdentical)
{
    const char *spec =
        "rack.netDrop@p=0.05;rack.netDelay@p=0.1,mag=2000000;"
        "rack.boardDown@p=1,unit=0,from=2000000000,to=4000000000;"
        "link.drop@p=0.01";
    const auto a = runRackScenario(1, spec, 42);
    const auto b = runRackScenario(1, spec, 42);
    ASSERT_FALSE(a.counters.empty())
        << "scenario did not survive the fault schedule";
    const auto diffs = sim::diffSnapshots(a, b);
    EXPECT_TRUE(diffs.empty())
        << diffs.size()
        << " stat(s) differ across seeded fault replays:\n"
        << sim::formatDiffs(diffs);
    // And the schedule must be thread-count-invariant too.
    const auto c = runRackScenario(2, spec, 42);
    const auto tdiffs = sim::diffSnapshots(a, c);
    EXPECT_TRUE(tdiffs.empty())
        << tdiffs.size()
        << " stat(s) differ under faults between threads 1 and 2:\n"
        << sim::formatDiffs(tdiffs);
}

TEST(RackDeterminism, GoldenSnapshotMatches)
{
    const auto actual = runRackScenario();
    ASSERT_FALSE(actual.counters.empty());

    const std::string path =
        std::string(DPU_GOLDEN_DIR) + "/rack.json";
    if (regenRequested()) {
        std::ofstream os(path, std::ios::trunc);
        ASSERT_TRUE(os) << "cannot write " << path;
        actual.writeJson(os);
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream is(path);
    ASSERT_TRUE(is) << "missing golden file " << path
                    << " (run with DPU_REGEN_GOLDEN=1 to create)";
    std::stringstream buf;
    buf << is.rdbuf();
    sim::StatsSnapshot golden;
    std::string err;
    ASSERT_TRUE(
        sim::StatsSnapshot::readJson(buf.str(), golden, err))
        << path << ": " << err;

    const auto diffs = sim::diffSnapshots(golden, actual);
    EXPECT_TRUE(diffs.empty())
        << diffs.size() << " stat(s) drifted from " << path
        << ":\n"
        << sim::formatDiffs(diffs)
        << "(if the rack model change is intentional, regenerate "
           "with DPU_REGEN_GOLDEN=1)";
}

/**
 * @file
 * Balancer tests: LoadTracker windowing, the planMigrations
 * planning laws (hot detection, strict improvement, tie-breaks,
 * frozen partitions), and the RackScheduler's drain-then-switch
 * protocol end to end — the forwarding epoch, abort-on-drop with a
 * later-window retry, a board outage overlapping an active
 * migration with full request accounting, and a 10-run determinism
 * wall across --threads {1, 2, 4} while migrations are live.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "host/offload.hh"
#include "rack/balance.hh"
#include "rack/rack.hh"
#include "rack/scheduler.hh"
#include "rack/trace.hh"
#include "rack/workload.hh"
#include "sim/fault.hh"
#include "sim/stats_registry.hh"
#include "topo/topology.hh"

using namespace dpu;

namespace {

constexpr sim::Tick kUs = 1'000'000;
constexpr sim::Tick kMs = 1'000'000'000;

/**
 * Keys with pairwise-distinct partitions all homed on one board —
 * the adversarial skew shape: a hot step onto these keys piles
 * whole partitions onto a single board. Pure function of the
 * placement constants (rack::keyPartition / rack::partitionHome).
 */
std::vector<std::uint64_t>
coHomedKeys(unsigned want, unsigned parts, unsigned boards,
            unsigned *hot_out = nullptr)
{
    const unsigned hot =
        rack::partitionHome(rack::keyPartition(0, parts), boards);
    std::vector<std::uint64_t> keys;
    std::set<unsigned> seen;
    for (std::uint64_t k = 0; k < 65536 && keys.size() < want;
         ++k) {
        const unsigned p = rack::keyPartition(k, parts);
        if (rack::partitionHome(p, boards) != hot || seen.count(p))
            continue;
        seen.insert(p);
        keys.push_back(k);
    }
    if (hot_out)
        *hot_out = hot;
    return keys;
}

rack::RackRequest
keyedRequest(sim::Tick at, std::uint64_t key, std::uint64_t seed)
{
    return rack::makeRequest({at, key, 0, seed},
                             rack::servingMix());
}

/** A 4-board rack with one DPU per board (protocol tests only —
 *  the boards never run). */
rack::RackParams
smallRack()
{
    rack::RackParams rp;
    rp.nBoards = 4;
    rp.board.nDpus = 1;
    rp.board.soc.ddrBytes = std::size_t(16) << 20;
    return rp;
}

/** Balancer knobs the protocol tests share: 1 ms windows, raw
 *  window counts (alpha 1), a twitchy hot threshold. */
rack::PlacementParams
balancedPlace()
{
    rack::PlacementParams place;
    place.balance.window = kMs;
    place.balance.ewmaAlpha = 1.0;
    place.balance.hotFactor = 1.1;
    place.balance.minPartitionLoad = 2.0;
    return place;
}

/**
 * The balanced end-to-end scenario: a 4 x 1 rack under a skew-step
 * trace (90% of post-step traffic onto three partitions co-homed
 * on one board) with the balancer live. Returns the full stats
 * snapshot; optionally the rack summary and drain flag.
 */
sim::StatsSnapshot
runBalancedScenario(unsigned threads, const char *faults = nullptr,
                    rack::RackSummary *sum_out = nullptr,
                    bool *finished_out = nullptr)
{
    sim::faultPlane().reset();
    if (faults)
        sim::faultPlane().configure(faults, 42);

    soc::SocParams sp = soc::dpu40nm();
    sp.ddrBytes = std::size_t(64) << 20;

    rack::BalanceParams bal;
    bal.window = 500 * kUs;
    bal.ewmaAlpha = 0.7;
    bal.hotFactor = 1.1;
    bal.maxMigrationsPerWindow = 2;
    bal.minPartitionLoad = 2.0;

    auto spec = topo::ClusterTopology::rack(4, 1)
                    .chip(sp)
                    .threads(threads)
                    .balance(bal);
    auto r = spec.buildRack();
    rack::RackScheduler sched(*r, host::OffloadParams{},
                              spec.placementParams());

    rack::TraceConfig tc;
    tc.ratePerSec = 30000;
    tc.durationSec = 0.004;
    tc.diurnalPeriodSec = 0.004;
    tc.nApps = unsigned(rack::servingMix().size());
    tc.seed = 33;
    tc.hotStepAtSec = 0.001;
    tc.hotStepFraction = 0.9;
    tc.hotStepKeys = coHomedKeys(
        3, spec.placementParams().keyPartitions, 4);

    const std::vector<rack::TraceEvent> trace =
        rack::generateTrace(tc);
    const std::vector<rack::MixApp> mix = rack::servingMix();
    for (const rack::TraceEvent &ev : trace)
        sched.enqueueAt(ev.at, rack::makeRequest(ev, mix));
    sched.start();
    r->run();

    if (finished_out)
        *finished_out = r->allFinished();
    const rack::RackSummary sum = sched.summary();
    if (sum_out)
        *sum_out = sum;
    sim::faultPlane().reset();
    if (sum.serving.validationFailed != 0)
        return {};
    sim::StatsSnapshot snap =
        sim::StatsRegistry::instance().snapshot();
    snap.counters["sim.finalTick"] = r->now();
    return snap;
}

} // namespace

// ----------------------------------------------------------------
// LoadTracker
// ----------------------------------------------------------------

TEST(LoadTracker, WindowCountsFoldIntoAPrimedEwma)
{
    rack::LoadTracker t(3);
    t.record(0);
    t.record(0);
    t.record(1);
    EXPECT_EQ(t.windowLoad(0), 2u);
    EXPECT_EQ(t.windowLoad(1), 1u);
    EXPECT_DOUBLE_EQ(t.load(0), 0.0); // nothing rolled yet

    // The first roll primes each EWMA with its raw window count,
    // whatever alpha says — otherwise every rack would boot with a
    // (1 - alpha) bias toward zero load.
    t.roll(0.5);
    EXPECT_DOUBLE_EQ(t.load(0), 2.0);
    EXPECT_DOUBLE_EQ(t.load(1), 1.0);
    EXPECT_DOUBLE_EQ(t.load(2), 0.0);
    EXPECT_EQ(t.windowLoad(0), 0u); // window reset

    for (int i = 0; i < 4; ++i)
        t.record(0);
    t.roll(0.5);
    EXPECT_DOUBLE_EQ(t.load(0), 0.5 * 4 + 0.5 * 2);
    EXPECT_DOUBLE_EQ(t.load(1), 0.5); // decays toward silence
    EXPECT_EQ(t.totalLoad(0), 6u);    // lifetime, not windowed
    EXPECT_EQ(t.rollsDone(), 2u);
}

// ----------------------------------------------------------------
// planMigrations laws
// ----------------------------------------------------------------

TEST(MigrationPlan, MovesTheHeaviestEligiblePartitionToTheColdest)
{
    // Partitions 0..3 all live on board 0; the rest of the rack is
    // idle. Partition 3 sits below minPartitionLoad (default 4).
    std::vector<double> loads = {10, 30, 20, 1};
    std::vector<unsigned> home = {0, 0, 0, 0};
    rack::BalanceParams p;
    p.window = 1;
    const auto plan = rack::planMigrations(loads, home, 4, p);
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0].partition, 1u); // heaviest eligible
    EXPECT_EQ(plan[0].from, 0u);
    EXPECT_EQ(plan[0].to, 1u); // coldest; ties break low index
    EXPECT_DOUBLE_EQ(plan[0].load, 30.0);
    EXPECT_EQ(home[1], 1u); // the plan applies in place
}

TEST(MigrationPlan, BudgetAndStrictImprovementBoundThePlan)
{
    std::vector<double> loads = {10, 30, 20, 1};
    std::vector<unsigned> home = {0, 0, 0, 0};
    rack::BalanceParams p;
    p.window = 1;
    p.maxMigrationsPerWindow = 3;
    const auto plan = rack::planMigrations(loads, home, 4, p);
    // Two moves drain board 0 to {10, 1}; a third would have to
    // move 30 off board 1 onto an empty board, which is not a
    // strict improvement (30 -> 30), so the plan stops at two even
    // with budget left.
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan[0].partition, 1u);
    EXPECT_EQ(plan[0].to, 1u);
    EXPECT_EQ(plan[1].partition, 2u);
    EXPECT_EQ(plan[1].to, 2u);
    EXPECT_EQ(home[0], 0u);
    EXPECT_EQ(home[3], 0u);
}

TEST(MigrationPlan, ASingleMegaPartitionNeverOscillates)
{
    // One partition carries everything: moving it just relocates
    // the hot spot, so the strict-improvement guard keeps it put.
    std::vector<double> loads = {100};
    std::vector<unsigned> home = {0};
    rack::BalanceParams p;
    p.window = 1;
    p.maxMigrationsPerWindow = 4;
    EXPECT_TRUE(rack::planMigrations(loads, home, 4, p).empty());
    EXPECT_EQ(home[0], 0u);
}

TEST(MigrationPlan, FrozenAndFeatherweightPartitionsStayPut)
{
    std::vector<double> loads = {30, 3};
    std::vector<unsigned> home = {0, 0};
    rack::BalanceParams p;
    p.window = 1;
    std::vector<bool> frozen = {true, false};
    // Partition 0 is mid-migration (frozen) and partition 1 sits
    // below minPartitionLoad: a hot board with nothing movable.
    EXPECT_TRUE(
        rack::planMigrations(loads, home, 2, p, frozen).empty());
    frozen[0] = false;
    const auto plan =
        rack::planMigrations(loads, home, 2, p, frozen);
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0].partition, 0u);
    EXPECT_EQ(plan[0].to, 1u);
}

TEST(MigrationPlan, NeedsAtLeastTwoBoardsAndRealLoad)
{
    std::vector<double> loads = {50};
    std::vector<unsigned> home = {0};
    rack::BalanceParams p;
    p.window = 1;
    EXPECT_TRUE(rack::planMigrations(loads, home, 1, p).empty());
    // And a silent rack plans nothing (mean load 0).
    std::vector<double> idle = {0, 0};
    std::vector<unsigned> home2 = {0, 1};
    EXPECT_TRUE(rack::planMigrations(idle, home2, 2, p).empty());
}

// ----------------------------------------------------------------
// The drain-then-switch protocol at the scheduler
// ----------------------------------------------------------------

TEST(RackBalance, MigrationDrainsAtTheSourceThenSwitches)
{
    sim::faultPlane().reset();
    rack::Rack r(smallRack());
    const rack::PlacementParams place = balancedPlace();
    rack::RackScheduler sched(r, {}, place);

    unsigned hot = 0;
    const auto keys =
        coHomedKeys(2, place.keyPartitions, r.nBoards(), &hot);
    ASSERT_EQ(keys.size(), 2u);
    const unsigned p0 = sched.partitionOf(keys[0]);
    const unsigned p1 = sched.partitionOf(keys[1]);
    ASSERT_NE(p0, p1);
    ASSERT_EQ(sched.homeOf(p0), hot);
    ASSERT_EQ(sched.homeOf(p1), hot);

    // Window 1: both partitions hammer the hot board.
    for (unsigned i = 0; i < 98; ++i) {
        const sim::Tick t = 10 * kUs + i * 10 * kUs; // .. 980 us
        unsigned board = 99;
        ASSERT_EQ(sched.enqueueAt(
                      t, keyedRequest(t, keys[i % 2], i), &board),
                  rack::AdmitResult::Admitted);
        ASSERT_EQ(board, hot);
    }
    EXPECT_EQ(sched.migrationsStarted(), 0u);

    // The first arrivals past the 1 ms boundary trigger the roll
    // and one migration; its ~80 KB transfer is still on the wire
    // (~25 us), so this is the forwarding epoch: the map must keep
    // pointing at the source and the hit on the migrating
    // partition counts as forwarded.
    sim::Tick at = kMs + 100'000; // 1.0001 ms
    unsigned b0 = 99, b1 = 99;
    ASSERT_EQ(sched.enqueueAt(at, keyedRequest(at, keys[0], 1000),
                              &b0),
              rack::AdmitResult::Admitted);
    at += 100'000;
    ASSERT_EQ(sched.enqueueAt(at, keyedRequest(at, keys[1], 1001),
                              &b1),
              rack::AdmitResult::Admitted);
    EXPECT_EQ(sched.migrationsStarted(), 1u);
    EXPECT_EQ(sched.migrationsInFlight(), 1u);
    EXPECT_EQ(sched.migrationsCommitted(), 0u);
    EXPECT_EQ(b0, hot);
    EXPECT_EQ(b1, hot);
    EXPECT_EQ(sched.homeOf(p0), hot);
    EXPECT_EQ(sched.homeOf(p1), hot);
    // Exactly one of the two arrivals hit the migrating partition.
    EXPECT_EQ(sched.forwardedRequests(), 1u);

    // Past the transfer's delivery tick the map flips: exactly one
    // partition re-homed, and arrivals follow the new map.
    at = kMs + 100 * kUs; // 1.1 ms, safely past delivery
    unsigned c0 = 99, c1 = 99;
    ASSERT_EQ(sched.enqueueAt(at, keyedRequest(at, keys[0], 2000),
                              &c0),
              rack::AdmitResult::Admitted);
    ASSERT_EQ(sched.enqueueAt(at + 1000,
                              keyedRequest(at + 1000, keys[1], 2001),
                              &c1),
              rack::AdmitResult::Admitted);
    EXPECT_EQ(sched.migrationsCommitted(), 1u);
    EXPECT_EQ(sched.migrationsInFlight(), 0u);
    const unsigned h0 = sched.homeOf(p0);
    const unsigned h1 = sched.homeOf(p1);
    EXPECT_TRUE((h0 == hot) != (h1 == hot))
        << "exactly one partition should have moved";
    EXPECT_EQ(c0, h0);
    EXPECT_EQ(c1, h1);
    // The hand-off payload rode the net as Migration traffic.
    EXPECT_GT(r.net().migrationBytes(),
              place.balance.stateBytesBase);
    sim::faultPlane().reset();
}

TEST(RackBalance, DroppedTransferAbortsAndRetriesNextWindow)
{
    sim::faultPlane().reset();
    // The drop window brackets only the first boundary: the 1 ms
    // hand-off dies on the wire, the 2 ms retry sails through. No
    // request delivery falls inside the window.
    sim::faultPlane().configure(
        "rack.netDrop@p=1,from=900000000,to=1100000000", 42);
    rack::Rack r(smallRack());
    const rack::PlacementParams place = balancedPlace();
    rack::RackScheduler sched(r, {}, place);

    unsigned hot = 0;
    const auto keys =
        coHomedKeys(2, place.keyPartitions, r.nBoards(), &hot);
    ASSERT_EQ(keys.size(), 2u);
    const unsigned p0 = sched.partitionOf(keys[0]);
    const unsigned p1 = sched.partitionOf(keys[1]);

    // Window 1 load, stopping short of the drop window.
    for (unsigned i = 0; i < 88; ++i) {
        const sim::Tick t = 10 * kUs + i * 10 * kUs; // .. 880 us
        ASSERT_EQ(sched.enqueueAt(
                      t, keyedRequest(t, keys[i % 2], i), nullptr),
                  rack::AdmitResult::Admitted);
    }

    // First arrival past the boundary: the transfer (sent at the
    // 1 ms boundary, inside the drop window) was lost. Fault-safe
    // abort: nothing in flight, nothing frozen, the map untouched.
    sim::Tick at = kMs + 150 * kUs; // 1.15 ms
    unsigned b = 99;
    ASSERT_EQ(sched.enqueueAt(at, keyedRequest(at, keys[0], 500),
                              &b),
              rack::AdmitResult::Admitted);
    EXPECT_EQ(b, hot);
    EXPECT_EQ(sched.migrationsStarted(), 1u);
    EXPECT_EQ(sched.migrationsAborted(), 1u);
    EXPECT_EQ(sched.migrationsInFlight(), 0u);
    EXPECT_EQ(sched.migrationsCommitted(), 0u);
    EXPECT_EQ(sched.homeOf(p0), hot);
    EXPECT_EQ(sched.homeOf(p1), hot);

    // Keep the skew alive through window 2; the 2 ms boundary
    // retries outside the fault window and that attempt commits.
    unsigned i = 0;
    for (at = kMs + 200 * kUs; at <= 2 * kMs + 200 * kUs;
         at += 20 * kUs, ++i)
        ASSERT_EQ(sched.enqueueAt(
                      at, keyedRequest(at, keys[i % 2], 600 + i),
                      nullptr),
                  rack::AdmitResult::Admitted);
    EXPECT_EQ(sched.migrationsStarted(), 2u);
    EXPECT_EQ(sched.migrationsAborted(), 1u);
    EXPECT_EQ(sched.migrationsCommitted(), 1u);
    EXPECT_EQ(sched.migrationsInFlight(), 0u);
    const unsigned h0 = sched.homeOf(p0);
    const unsigned h1 = sched.homeOf(p1);
    EXPECT_TRUE((h0 == hot) != (h1 == hot))
        << "the retry should have re-homed exactly one partition";
    sim::faultPlane().reset();
}

// ----------------------------------------------------------------
// Chaos overlap + the determinism wall
// ----------------------------------------------------------------

TEST(RackBalance, BoardOutageMidMigrationKeepsFullAccounting)
{
    // Take the skew target board down across the post-step windows
    // where hand-offs are in flight: every offered request must
    // still be attributed exactly once, every admitted request
    // must reach exactly one board scheduler, and the whole
    // schedule must replay bit-identically under threads.
    unsigned hot = 0;
    coHomedKeys(1, rack::PlacementParams{}.keyPartitions, 4, &hot);
    const std::string spec =
        "rack.boardDown@p=1,unit=" + std::to_string(hot) +
        ",from=1200000000,to=2500000000";

    rack::RackSummary sum{};
    bool finished = false;
    const auto a =
        runBalancedScenario(1, spec.c_str(), &sum, &finished);
    ASSERT_FALSE(a.counters.empty())
        << "scenario failed validation under the outage";
    EXPECT_TRUE(finished);
    EXPECT_EQ(sum.offered, sum.admitted + sum.rejected +
                               sum.boardsDown + sum.netLost);
    EXPECT_EQ(sum.serving.submitted, sum.admitted)
        << "outage + migration overlap lost or duplicated jobs";
    EXPECT_GE(sum.migStarted, 1u)
        << "the balancer never reacted to the skew step";

    const auto b2 = runBalancedScenario(2, spec.c_str());
    const auto diffs = sim::diffSnapshots(a, b2);
    EXPECT_TRUE(diffs.empty())
        << diffs.size()
        << " stat(s) differ between threads 1 and 2 under the "
           "chaos schedule:\n"
        << sim::formatDiffs(diffs);
}

TEST(RackBalance, TenRunDeterminismWallWithActiveMigrations)
{
    const auto base = runBalancedScenario(1);
    ASSERT_FALSE(base.counters.empty());
    const auto it = base.counters.find("rack.migCommitted");
    ASSERT_NE(it, base.counters.end())
        << "scenario committed no migration — the wall would not "
           "exercise the balancer";
    EXPECT_GE(it->second, 1u);

    const unsigned threads[] = {2, 4, 1, 2, 4, 1, 2, 4, 1};
    for (unsigned i = 0; i < 9; ++i) {
        const auto snap = runBalancedScenario(threads[i]);
        const auto diffs = sim::diffSnapshots(base, snap);
        ASSERT_TRUE(diffs.empty())
            << "run " << i + 2 << " (--threads " << threads[i]
            << "): " << diffs.size() << " stat(s) differ:\n"
            << sim::formatDiffs(diffs);
    }
}

/**
 * @file
 * Xeon roofline-model tests: the max(compute, memory) + serial
 * phase semantics, the published calibration anchors (34.5 GB/s
 * effective stream bandwidth; SAJSON's 5.2 GB/s at 48 uops/byte),
 * and thread scaling.
 */

#include <gtest/gtest.h>

#include "xeon/xeon_model.hh"

using dpu::xeon::XeonModel;
using dpu::xeon::XeonParams;

TEST(XeonModel, MemoryBoundPhaseIsBytesOverBandwidth)
{
    XeonModel m;
    m.streamBytes(34.5e9); // one second worth
    m.endPhase();
    EXPECT_NEAR(m.seconds(), 1.0, 1e-9);
}

TEST(XeonModel, ComputeBoundPhaseUsesAllThreads)
{
    XeonParams p;
    XeonModel m(p, 36);
    // 36 cores x 2.3 GHz x 3 IPC = 248.4 G uops/s.
    m.scalarOps(248.4e9);
    m.endPhase();
    EXPECT_NEAR(m.seconds(), 1.0, 1e-6);
}

TEST(XeonModel, PhaseTakesMaxOfComputeAndMemory)
{
    XeonModel slow_mem;
    slow_mem.streamBytes(34.5e9);
    slow_mem.scalarOps(1e9); // negligible compute
    slow_mem.endPhase();

    XeonModel slow_cpu;
    slow_cpu.streamBytes(1e6);
    slow_cpu.scalarOps(248.4e9);
    slow_cpu.endPhase();

    EXPECT_NEAR(slow_mem.seconds(), 1.0, 1e-3);
    EXPECT_NEAR(slow_cpu.seconds(), 1.0, 1e-3);
}

TEST(XeonModel, SerialWorkAddsOnTop)
{
    XeonModel m;
    m.streamBytes(34.5e9);
    m.serialOps(2.3e9 * 3); // one second of one core
    m.endPhase();
    EXPECT_NEAR(m.seconds(), 2.0, 1e-3);
}

TEST(XeonModel, SimdDividesByLaneCount)
{
    XeonModel scalar, simd;
    scalar.scalarOps(8e9);
    simd.simdOps(8e9);
    scalar.endPhase();
    simd.endPhase();
    EXPECT_NEAR(scalar.seconds() / simd.seconds(), 8.0, 1e-6);
}

TEST(XeonModel, RandomBytesAreSlowerThanStreamed)
{
    XeonModel stream, random;
    stream.streamBytes(1e9);
    random.randomBytes(1e9);
    stream.endPhase();
    random.endPhase();
    EXPECT_GT(random.seconds(), 3.0 * stream.seconds());
}

TEST(XeonModel, FewerThreadsSlowCompute)
{
    XeonModel full(XeonParams{}, 36);
    XeonModel half(XeonParams{}, 18);
    full.scalarOps(1e10);
    half.scalarOps(1e10);
    full.endPhase();
    half.endPhase();
    EXPECT_NEAR(half.seconds() / full.seconds(), 2.0, 1e-6);
}

TEST(XeonModel, SajsonAnchorReproduces)
{
    // Section 5.5: SAJSON parses at 5.2 GB/s on the 36-core box.
    XeonModel m;
    const double bytes = 1e9;
    m.scalarOps(bytes * 48.0);
    m.streamBytes(bytes);
    m.endPhase();
    double gbs = bytes / m.seconds() / 1e9;
    EXPECT_NEAR(gbs, 5.2, 0.3);
}

TEST(XeonModel, OpenPhaseCountsTowardSeconds)
{
    XeonModel m;
    m.streamBytes(34.5e9);
    // No endPhase(): seconds() must still include it.
    EXPECT_NEAR(m.seconds(), 1.0, 1e-9);
    m.endPhase();
    EXPECT_NEAR(m.seconds(), 1.0, 1e-9);
}

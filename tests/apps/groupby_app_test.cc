/**
 * @file
 * Group-by tests (Section 5.3): exact aggregation agreement between
 * the DPU plans and the reference in both NDV regimes, and the
 * Figure 14 gain shape (high-NDV gain > low-NDV gain > 1).
 */

#include <gtest/gtest.h>

#include "apps/sql/groupby.hh"

using namespace dpu;
using namespace dpu::apps;
using namespace dpu::apps::sql;

TEST(GroupByApp, LowNdvExactAggregation)
{
    GroupByConfig cfg;
    cfg.nRows = 256 << 10;
    cfg.ndv = 64;
    AppResult r = groupByLowApp(cfg);
    EXPECT_TRUE(r.matched);
}

TEST(GroupByApp, LowNdvGainNearPaper)
{
    GroupByConfig cfg;
    cfg.nRows = 1 << 20;
    cfg.ndv = 256;
    AppResult r = groupByLowApp(cfg);
    // Figure 14: 6.7x. Both sides bandwidth-bound; the gain is the
    // bandwidth-per-watt ratio.
    EXPECT_GT(r.gain(), 4.5);
    EXPECT_LT(r.gain(), 9.5);
}

TEST(GroupByApp, HighNdvExactAggregation)
{
    GroupByConfig cfg;
    cfg.nRows = 256 << 10;
    cfg.ndv = 64 << 10;
    AppResult r = groupByHighApp(cfg);
    EXPECT_TRUE(r.matched);
}

TEST(GroupByApp, HighNdvGainExceedsLowNdv)
{
    GroupByConfig low, high;
    low.nRows = 1 << 20;
    low.ndv = 256;
    high.nRows = 1 << 20;
    high.ndv = 256 << 10;
    AppResult rl = groupByLowApp(low);
    AppResult rh = groupByHighApp(high);
    // Figure 14: 9.7x vs 6.7x — one hardware round beats two
    // software rounds.
    EXPECT_GT(rh.gain(), rl.gain());
    EXPECT_GT(rh.gain(), 6.0);
    EXPECT_LT(rh.gain(), 16.0);
}

/**
 * @file
 * Group-by tests (Section 5.3): exact aggregation agreement between
 * the DPU plans and the reference in both NDV regimes, and the
 * Figure 14 gain shape (high-NDV gain > low-NDV gain > 1).
 */

#include <gtest/gtest.h>

#include "apps/registry.hh"
#include "apps/sql/groupby.hh"

using namespace dpu;
using namespace dpu::apps;
using namespace dpu::apps::sql;

TEST(GroupByApp, LowNdvExactAggregation)
{
    AppResult r = runApp("groupby-low",
                         {{"nRows", "262144"}, {"ndv", "64"}});
    EXPECT_TRUE(r.matched);
}

TEST(GroupByApp, LowNdvGainNearPaper)
{
    AppResult r = runApp("groupby-low",
                         {{"nRows", "1048576"}, {"ndv", "256"}});
    // Figure 14: 6.7x. Both sides bandwidth-bound; the gain is the
    // bandwidth-per-watt ratio.
    EXPECT_GT(r.gain(), 4.5);
    EXPECT_LT(r.gain(), 9.5);
}

TEST(GroupByApp, HighNdvExactAggregation)
{
    AppResult r = runApp("groupby-high",
                         {{"nRows", "262144"}, {"ndv", "65536"}});
    EXPECT_TRUE(r.matched);
}

TEST(GroupByApp, HighNdvGainExceedsLowNdv)
{
    AppResult rl = runApp("groupby-low",
                          {{"nRows", "1048576"}, {"ndv", "256"}});
    AppResult rh = runApp("groupby-high",
                          {{"nRows", "1048576"}, {"ndv", "262144"}});
    // Figure 14: 9.7x vs 6.7x — one hardware round beats two
    // software rounds.
    EXPECT_GT(rh.gain(), rl.gain());
    EXPECT_GT(rh.gain(), 6.0);
    EXPECT_LT(rh.gain(), 16.0);
}

/**
 * @file
 * SQL filter primitive tests (Section 5.3, Figure 15): exact
 * selection counts vs the baseline, the single-core tuple rate near
 * the paper's 482 Mtuples/s (1.65 cycles/tuple), tile-size scaling,
 * and the 32-core aggregate approaching channel bandwidth.
 */

#include <gtest/gtest.h>

#include "apps/registry.hh"
#include "apps/sql/filter.hh"

using namespace dpu;
using namespace dpu::apps;
using namespace dpu::apps::sql;

TEST(FilterApp, DpuMatchesBaselineCount)
{
    AppResult r = runApp(
        "filter", {{"nCores", "4"}, {"rowsPerCore", "65536"}});
    EXPECT_TRUE(r.matched);
}

TEST(FilterApp, SingleCoreNear482Mtuples)
{
    FilterConfig cfg;
    cfg.nCores = 1;
    cfg.rowsPerCore = 1 << 20;
    cfg.tileBytes = 8192;
    FilterResult r = dpuFilter(soc::dpu40nm(), cfg);
    double cpt = r.cyclesPerTuple(1);
    // Paper: 482 Mtuples/s = 1.65 cycles/tuple end to end.
    EXPECT_GT(cpt, 1.4);
    EXPECT_LT(cpt, 2.2);
    EXPECT_GT(r.mtuplesPerSec(), 350.0);
    EXPECT_LT(r.mtuplesPerSec(), 700.0);
}

TEST(FilterApp, SmallTilesAreSlower)
{
    FilterConfig small, big;
    small.nCores = 1;
    small.rowsPerCore = 256 << 10;
    small.tileBytes = 512;
    big = small;
    big.tileBytes = 8192;
    FilterResult rs = dpuFilter(soc::dpu40nm(), small);
    FilterResult rb = dpuFilter(soc::dpu40nm(), big);
    EXPECT_LT(rs.mtuplesPerSec(), rb.mtuplesPerSec());
}

TEST(FilterApp, ThirtyTwoCoresNearChannelBandwidth)
{
    FilterConfig cfg;
    cfg.nCores = 32;
    cfg.rowsPerCore = 128 << 10;
    cfg.tileBytes = 8192;
    FilterResult r = dpuFilter(soc::dpu40nm(), cfg);
    // Paper: 9.6 GB/s across 32 dpCores.
    EXPECT_GT(r.gbPerSec(), 8.0);
    EXPECT_LT(r.gbPerSec(), 12.8);
}

TEST(FilterApp, SelectivityIsAsConfigured)
{
    FilterConfig cfg;
    cfg.nCores = 2;
    cfg.rowsPerCore = 128 << 10;
    cfg.lo = 0;
    cfg.hi = 499; // 50%
    FilterResult r = dpuFilter(soc::dpu40nm(), cfg);
    double sel = double(r.passed) / double(r.rows);
    EXPECT_NEAR(sel, 0.5, 0.02);
}

/**
 * @file
 * TPCH-like query tests (Section 5.3, Figure 16): exact aggregate
 * agreement between the DPU pipelines and the baseline plans for
 * every query, non-trivial results, and the perf/watt shape (every
 * query gains; join-heavy queries gain more than pure scans).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "apps/sql/tpch.hh"

using namespace dpu;
using namespace dpu::apps;
using namespace dpu::apps::sql;

namespace {

TpchConfig
smallCfg()
{
    TpchConfig cfg;
    cfg.scale = 0.5;
    return cfg;
}

} // namespace

class TpchQuery : public ::testing::TestWithParam<const char *>
{
};

TEST_P(TpchQuery, DpuMatchesBaselineExactly)
{
    AppResult r = tpchApp(smallCfg(), GetParam());
    EXPECT_TRUE(r.matched) << GetParam();
    EXPECT_GT(r.gain(), 1.0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpchQuery,
                         ::testing::ValuesIn(tpchQueries));

TEST(Tpch, ResultsAreNonTrivial)
{
    TpchConfig cfg = smallCfg();
    QueryResult q1 = xeonTpch(cfg, "Q1");
    std::uint64_t total = 0;
    for (auto &[k, v] : q1.values)
        total += v;
    EXPECT_GT(total, 0u);
    QueryResult q6 = xeonTpch(cfg, "Q6");
    EXPECT_GT(q6.values.at("revenue"), 0u);
    QueryResult q3 = xeonTpch(cfg, "Q3");
    EXPECT_GT(q3.values.at("groups"), 10u);
    QueryResult q12 = xeonTpch(cfg, "Q12");
    EXPECT_GT(q12.values.at("modeA_high") +
                  q12.values.at("modeA_low"),
              0u);
    QueryResult q14 = xeonTpch(cfg, "Q14");
    EXPECT_GT(q14.values.at("total_revenue"),
              q14.values.at("promo_revenue"));
}

TEST(Tpch, JoinQueriesGainMoreThanScans)
{
    TpchConfig cfg = smallCfg();
    AppResult q6 = tpchApp(cfg, "Q6");
    AppResult q3 = tpchApp(cfg, "Q3");
    // Scans are bandwidth-per-watt bound; joins add the DPU's
    // co-partitioned DMEM tables vs spilled Xeon probes.
    EXPECT_GT(q3.gain(), q6.gain());
}

TEST(Tpch, GeomeanGainInPaperBand)
{
    TpchConfig cfg = smallCfg();
    double log_sum = 0;
    for (const char *q : tpchQueries) {
        AppResult r = tpchApp(cfg, q);
        EXPECT_TRUE(r.matched) << q;
        log_sum += std::log(r.gain());
    }
    double geomean = std::exp(log_sum / 5);
    // Figure 16 reports an overall 15x against a COMMERCIAL
    // columnar engine; our baseline is a hand-written plan (which
    // flatters the Xeon), and our 5-query mix is scan-heavier, so
    // the reproduced geomean is conservative: scans gain 3-5x,
    // the join-heavy query >20x.
    EXPECT_GT(geomean, 4.5);
    EXPECT_LT(geomean, 30.0);
}

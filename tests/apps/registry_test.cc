/**
 * @file
 * App-registry tests: the registry is the single enumerable source
 * of the Section 5 co-design apps, so its invariants (stable
 * Figure 14 row order, total name lookup, string config mutation,
 * serving-job factories) are what bench_fig14, the offload
 * scheduler, and the serving bench all lean on.
 */

#include <gtest/gtest.h>

#include <set>

#include "apps/hll.hh"
#include "apps/registry.hh"

using namespace dpu;
using namespace dpu::apps;

TEST(AppRegistry, EnumeratesFigure14RowsInOrder)
{
    const std::vector<std::string> expect = {
        "svm",     "simsearch",  "filter",
        "groupby-low", "groupby-high", "hll-crc",
        "hll-murmur",  "json",    "disparity"};
    ASSERT_EQ(registry().size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i)
        EXPECT_EQ(registry()[i].name, expect[i]) << "row " << i;
}

TEST(AppRegistry, SpecsAreComplete)
{
    std::set<std::string> names;
    for (const AppSpec &spec : registry()) {
        EXPECT_TRUE(names.insert(spec.name).second)
            << "duplicate " << spec.name;
        EXPECT_FALSE(spec.summary.empty()) << spec.name;
        EXPECT_GT(spec.paperGain, 0.0) << spec.name;
        EXPECT_TRUE(spec.makeConfig != nullptr) << spec.name;
        EXPECT_TRUE(spec.set != nullptr) << spec.name;
        EXPECT_TRUE(spec.run != nullptr) << spec.name;
        EXPECT_TRUE(spec.serve != nullptr) << spec.name;
        EXPECT_TRUE(spec.makeConfig() != nullptr) << spec.name;
    }
}

TEST(AppRegistry, FindAppIsTotalOverRegisteredNames)
{
    for (const AppSpec &spec : registry())
        EXPECT_EQ(findApp(spec.name), &spec);
    EXPECT_EQ(findApp("not-an-app"), nullptr);
    EXPECT_EQ(findApp(""), nullptr);
}

TEST(AppRegistry, SettersAcceptKnownKeysAndRejectJunk)
{
    for (const AppSpec &spec : registry()) {
        ConfigHandle cfg = spec.makeConfig();
        // Every app's config carries a dataset seed.
        EXPECT_TRUE(spec.set(cfg, "seed", "42")) << spec.name;
        EXPECT_FALSE(spec.set(cfg, "noSuchKnob", "1")) << spec.name;
        EXPECT_FALSE(spec.set(cfg, "seed", "not-a-number"))
            << spec.name;
    }
}

TEST(AppRegistry, RunAppAppliesOverrides)
{
    // A tiny filter run: overrides must shrink it (fast) and the
    // head-to-head validation must still hold.
    AppResult r = runApp(
        "filter", {{"nCores", "2"}, {"rowsPerCore", "8192"}});
    EXPECT_TRUE(r.matched);
    EXPECT_EQ(r.name, "SQL filter");
}

TEST(AppRegistry, DeprecatedWrapperAgreesWithRegistry)
{
    // The legacy entry point must stay a thin wrapper: identical
    // config in, identical deterministic timings out.
    HllConfig cfg;
    cfg.nElements = 1 << 16;
    cfg.cardinality = 1 << 13;
    AppResult legacy = hllApp(cfg);
    AppResult reg = runApp("hll-crc", {{"nElements", "65536"},
                                       {"cardinality", "8192"}});
    EXPECT_EQ(legacy.dpuSeconds, reg.dpuSeconds);
    EXPECT_EQ(legacy.xeonSeconds, reg.xeonSeconds);
    EXPECT_EQ(legacy.matched, reg.matched);
}

/**
 * @file
 * App-registry tests: the registry is the single enumerable source
 * of the Section 5 co-design apps, so its invariants (stable
 * Figure 14 row order, total name lookup, string config mutation,
 * serving-job factories) are what bench_fig14, the offload
 * scheduler, and the serving bench all lean on.
 */

#include <gtest/gtest.h>

#include <set>

#include "apps/registry.hh"

using namespace dpu;
using namespace dpu::apps;

TEST(AppRegistry, EnumeratesFigure14RowsInOrder)
{
    const std::vector<std::string> expect = {
        "svm",     "simsearch",  "filter",
        "groupby-low", "groupby-high", "hll-crc",
        "hll-murmur",  "json",    "disparity"};
    ASSERT_EQ(registry().size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i)
        EXPECT_EQ(registry()[i].name, expect[i]) << "row " << i;
}

TEST(AppRegistry, SpecsAreComplete)
{
    std::set<std::string> names;
    for (const AppSpec &spec : registry()) {
        EXPECT_TRUE(names.insert(spec.name).second)
            << "duplicate " << spec.name;
        EXPECT_FALSE(spec.summary.empty()) << spec.name;
        EXPECT_GT(spec.paperGain, 0.0) << spec.name;
        EXPECT_TRUE(spec.makeConfig != nullptr) << spec.name;
        EXPECT_TRUE(spec.set != nullptr) << spec.name;
        EXPECT_TRUE(spec.run != nullptr) << spec.name;
        EXPECT_TRUE(spec.serve != nullptr) << spec.name;
        EXPECT_TRUE(spec.makeConfig() != nullptr) << spec.name;
    }
}

TEST(AppRegistry, FindAppIsTotalOverRegisteredNames)
{
    for (const AppSpec &spec : registry())
        EXPECT_EQ(findApp(spec.name), &spec);
    EXPECT_EQ(findApp("not-an-app"), nullptr);
    EXPECT_EQ(findApp(""), nullptr);
}

TEST(AppRegistry, SettersAcceptKnownKeysAndRejectJunk)
{
    for (const AppSpec &spec : registry()) {
        ConfigHandle cfg = spec.makeConfig();
        // Every app's config carries a dataset seed.
        EXPECT_TRUE(spec.set(cfg, "seed", "42")) << spec.name;
        EXPECT_FALSE(spec.set(cfg, "noSuchKnob", "1")) << spec.name;
        EXPECT_FALSE(spec.set(cfg, "seed", "not-a-number"))
            << spec.name;
    }
}

TEST(AppRegistry, RunAppAppliesOverrides)
{
    // A tiny filter run: overrides must shrink it (fast) and the
    // head-to-head validation must still hold.
    AppResult r = runApp(
        "filter", {{"nCores", "2"}, {"rowsPerCore", "8192"}});
    EXPECT_TRUE(r.matched);
    EXPECT_EQ(r.name, "SQL filter");
}

TEST(AppRegistry, TypedSpecRunAgreesWithStringOverrides)
{
    // The typed spec->run path and the string-override runApp path
    // must produce identical deterministic timings for the same
    // effective config.
    const AppSpec *spec = findApp("hll-crc");
    ASSERT_NE(spec, nullptr);
    ConfigHandle cfg = spec->makeConfig();
    ASSERT_TRUE(spec->set(cfg, "nElements", "65536"));
    ASSERT_TRUE(spec->set(cfg, "cardinality", "8192"));
    AppResult typed = spec->run(cfg);
    AppResult reg = runApp("hll-crc", {{"nElements", "65536"},
                                       {"cardinality", "8192"}});
    EXPECT_EQ(typed.dpuSeconds, reg.dpuSeconds);
    EXPECT_EQ(typed.xeonSeconds, reg.xeonSeconds);
    EXPECT_EQ(typed.matched, reg.matched);
}
